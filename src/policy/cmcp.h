// Core-Map Count based Priority replacement (CMCP) — the paper's
// contribution (section 3, Fig. 4).
//
// Resident pages are split into two groups:
//   * a regular FIFO list, and
//   * a priority group holding at most p * capacity pages, ordered by the
//     number of CPU cores mapping each page (auxiliary knowledge that only
//     PSPT can provide).
// When a unit becomes resident (or gains a mapping core), CMCP consults the
// core-map count and tries to place it in the priority group, displacing the
// lowest-priority member if the group is full and the newcomer maps more
// cores. A simple aging mechanism slowly demotes stale prioritized pages back
// to FIFO so dead shared pages cannot monopolize the group. Eviction takes
// the FIFO head, or — only when FIFO is empty — the lowest-priority page.
//
// The decisive property: no operation here reads or clears accessed bits, so
// CMCP incurs zero remote TLB invalidations for usage tracking.
#pragma once

#include <vector>

#include "common/intrusive_list.h"
#include "policy/replacement_policy.h"

namespace cmcp::policy {

struct CmcpConfig {
  /// Ratio of prioritized pages, 0 <= p <= 1. p -> 0 degenerates to FIFO;
  /// p -> 1 orders (almost) everything by core-map count (paper section 3).
  double p = 0.3;
  /// A prioritized page not refreshed (no new mapping core) within this many
  /// ticks falls back to FIFO. Ticks arrive at scanner cadence (~10 ms).
  std::uint32_t age_limit_ticks = 24;
  /// Disable aging entirely (ablation A1).
  bool aging_enabled = true;
};

class CmcpPolicy final : public ReplacementPolicy {
 public:
  CmcpPolicy(PolicyHost& host, const CmcpConfig& config);

  std::string_view name() const override { return "CMCP"; }

  void on_insert(mm::ResidentPage& page) override;
  void on_core_map_grow(mm::ResidentPage& page) override;
  mm::ResidentPage* pick_victim(CoreId faulting_core, Cycles& extra_cycles) override;
  void on_evict(mm::ResidentPage& page) override;
  void on_tick(Cycles now) override;

  /// Adjust p at runtime (dynamic-p controller). Does not retroactively
  /// demote; the group shrinks naturally through aging and displacement.
  void set_p(double p);
  double p() const { return config_.p; }

  bool parallel_local_safe() const override { return true; }

  std::int64_t tracked_pages() const override {
    return static_cast<std::int64_t>(fifo_.size() + priority_size_);
  }

  std::size_t fifo_size() const { return fifo_.size(); }
  std::size_t priority_size() const { return priority_size_; }
  std::uint64_t max_priority_pages() const { return max_priority_; }
  void stats(const StatVisitor& visit) const override;

 private:
  static constexpr std::uint8_t kFifo = 0;
  static constexpr std::uint8_t kPriority = 1;

  using PageList = IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node>;
  using AgeList = IntrusiveList<mm::ResidentPage, &mm::ResidentPage::aux_node>;

  unsigned bucket_of(unsigned core_map_count) const;
  mm::ResidentPage* lowest_priority_page();
  void promote(mm::ResidentPage& page);
  void demote_to_fifo(mm::ResidentPage& page);
  /// Place a page per the insertion rule; page must not be on any list.
  void place(mm::ResidentPage& page);

  PolicyHost& host_;
  CmcpConfig config_;
  std::uint64_t max_priority_ = 0;

  PageList fifo_;
  /// buckets_[c] holds prioritized pages mapped by c cores (FIFO inside a
  /// bucket). Index 0 unused; capped at num_cores.
  std::vector<PageList> buckets_;
  std::size_t priority_size_ = 0;
  unsigned lowest_bucket_hint_ = 1;

  /// Prioritized pages in refresh order (front == stalest) for aging.
  AgeList age_list_;
  std::uint64_t tick_count_ = 0;

  std::uint64_t promotions_ = 0;
  std::uint64_t displacements_ = 0;
  std::uint64_t aged_out_ = 0;
};

}  // namespace cmcp::policy
