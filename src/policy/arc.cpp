#include "policy/arc.h"

#include <algorithm>

#include "common/assert.h"

namespace cmcp::policy {

void ArcPolicy::GhostList::push(UnitIdx unit, std::size_t cap) {
  if (cap == 0) return;
  remove(unit);  // re-push refreshes the position
  if (unit >= nodes_.size()) nodes_.resize(unit + 1);
  Node& node = nodes_[unit];
  node.linked = true;
  node.prev = tail_;
  node.next = kInvalidUnit;
  if (tail_ != kInvalidUnit)
    nodes_[tail_].next = unit;
  else
    head_ = unit;
  tail_ = unit;
  ++size_;
  while (size_ > cap) remove(head_);
}

void ArcPolicy::GhostList::remove(UnitIdx unit) {
  if (!contains(unit)) return;
  Node& node = nodes_[unit];
  if (node.prev != kInvalidUnit)
    nodes_[node.prev].next = node.next;
  else
    head_ = node.next;
  if (node.next != kInvalidUnit)
    nodes_[node.next].prev = node.prev;
  else
    tail_ = node.prev;
  node = Node{};
  --size_;
}

ArcPolicy::ArcPolicy(PolicyHost& host) : host_(host) {}

void ArcPolicy::on_insert(mm::ResidentPage& page) {
  const UnitIdx unit = page.unit;
  const double c = static_cast<double>(host_.capacity_units());

  if (b1_.contains(unit)) {
    // Ghost hit in B1: recency list was too small — grow the target.
    ++ghost_hits_b1_;
    const double delta =
        std::max(1.0, static_cast<double>(b2_.size()) /
                          static_cast<double>(std::max<std::size_t>(b1_.size(), 1)));
    target_ = std::min(target_ + delta, c);
    b1_.remove(unit);
    page.where = kT2;  // refault == second reference
    t2_.push_back(page);
    return;
  }
  if (b2_.contains(unit)) {
    // Ghost hit in B2: frequency list was too small — shrink the target.
    ++ghost_hits_b2_;
    const double delta =
        std::max(1.0, static_cast<double>(b1_.size()) /
                          static_cast<double>(std::max<std::size_t>(b2_.size(), 1)));
    target_ = std::max(target_ - delta, 0.0);
    b2_.remove(unit);
    page.where = kT2;
    t2_.push_back(page);
    return;
  }
  // Cold page: recency list.
  page.where = kT1;
  t1_.push_back(page);
}

void ArcPolicy::on_core_map_grow(mm::ResidentPage& page) {
  // The fault-visible "hit" signal: another core started using the page.
  if (page.where == kT1) {
    t1_.erase(page);
    page.where = kT2;
    t2_.push_back(page);
    ++promotions_;
  } else {
    t2_.move_to_back(page);
  }
}

mm::ResidentPage* ArcPolicy::pick_victim(CoreId /*faulting_core*/,
                                         Cycles& /*extra_cycles*/) {
  // ARC's REPLACE: evict from T1 when it exceeds the adaptation target,
  // otherwise from T2.
  const bool from_t1 =
      !t1_.empty() &&
      (static_cast<double>(t1_.size()) > target_ || t2_.empty());
  mm::ResidentPage* victim = from_t1 ? t1_.front() : t2_.front();
  if (victim == nullptr) victim = t1_.front();
  return victim;
}

void ArcPolicy::on_evict(mm::ResidentPage& page) {
  const std::size_t c = host_.capacity_units();
  if (page.where == kT1) {
    t1_.erase(page);
    b1_.push(page.unit, c);
  } else {
    t2_.erase(page);
    b2_.push(page.unit, c);
  }
}

void ArcPolicy::stats(const StatVisitor& visit) const {
  visit("ghost_hits_b1", ghost_hits_b1_);
  visit("ghost_hits_b2", ghost_hits_b2_);
  visit("promotions", promotions_);
  visit("target", static_cast<std::uint64_t>(target_));
  visit("t1_size", t1_.size());
  visit("t2_size", t2_.size());
  visit("b1_size", b1_.size());
  visit("b2_size", b2_.size());
}

}  // namespace cmcp::policy
