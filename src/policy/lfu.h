// LFU approximation — extension baseline. Frequency is sampled from the
// accessed bit by the periodic scanner (one observation per scan), so like
// LRU it pays shootdowns for every sample (paper section 3 names LFU as
// equally afflicted).
#pragma once

#include <vector>

#include "common/intrusive_list.h"
#include "policy/replacement_policy.h"

namespace cmcp::policy {

class LfuPolicy final : public ReplacementPolicy {
 public:
  LfuPolicy() : buckets_(kMaxFreq + 1) {}

  std::string_view name() const override { return "LFU"; }
  bool wants_scanner() const override { return true; }

  void on_insert(mm::ResidentPage& page) override {
    page.bucket = 0;
    buckets_[0].push_back(page);
    ++size_;
  }

  void on_scan(mm::ResidentPage& page, bool referenced) override {
    if (!referenced || page.bucket >= kMaxFreq) return;
    buckets_[page.bucket].erase(page);
    ++page.bucket;
    buckets_[page.bucket].push_back(page);
  }

  mm::ResidentPage* pick_victim(CoreId /*faulting_core*/,
                                Cycles& /*extra_cycles*/) override {
    for (auto& bucket : buckets_) {
      if (mm::ResidentPage* p = bucket.front(); p != nullptr) return p;
    }
    return nullptr;
  }

  void on_evict(mm::ResidentPage& page) override {
    buckets_[page.bucket].erase(page);
    --size_;
  }

  bool parallel_local_safe() const override { return true; }

  std::int64_t tracked_pages() const override {
    return static_cast<std::int64_t>(size_);
  }

 private:
  static constexpr std::uint32_t kMaxFreq = 255;

  std::vector<IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace cmcp::policy
