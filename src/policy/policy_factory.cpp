#include "policy/policy_factory.h"

#include "common/assert.h"
#include "policy/arc.h"
#include "policy/clock_policy.h"
#include "policy/fifo.h"
#include "policy/lfu.h"
#include "policy/lru_approx.h"
#include "policy/random_policy.h"

namespace cmcp::policy {

std::unique_ptr<ReplacementPolicy> make_policy(PolicyHost& host,
                                               const PolicyParams& params) {
  switch (params.kind) {
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case PolicyKind::kLru:
      return std::make_unique<LruApproxPolicy>();
    case PolicyKind::kCmcp:
      return std::make_unique<CmcpPolicy>(host, params.cmcp);
    case PolicyKind::kClock:
      return std::make_unique<ClockPolicy>(host);
    case PolicyKind::kLfu:
      return std::make_unique<LfuPolicy>();
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(params.random_seed);
    case PolicyKind::kCmcpDynamicP:
      return std::make_unique<DynamicPCmcpPolicy>(host, params.dynamic_p);
    case PolicyKind::kArc:
      return std::make_unique<ArcPolicy>(host);
  }
  CMCP_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace cmcp::policy
