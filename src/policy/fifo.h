// FIFO replacement — the paper's baseline. No usage statistics, hence no
// extra shootdowns; victims are evicted in residency order.
#pragma once

#include "common/intrusive_list.h"
#include "policy/replacement_policy.h"

namespace cmcp::policy {

// Not `final`: FIFO is the natural base for decorators and counting
// wrappers (see tests and examples).
class FifoPolicy : public ReplacementPolicy {
 public:
  std::string_view name() const override { return "FIFO"; }

  void on_insert(mm::ResidentPage& page) override { queue_.push_back(page); }

  mm::ResidentPage* pick_victim(CoreId /*faulting_core*/,
                                Cycles& /*extra_cycles*/) override {
    return queue_.front();
  }

  void on_evict(mm::ResidentPage& page) override { queue_.erase(page); }

  bool parallel_local_safe() const override { return true; }

  std::int64_t tracked_pages() const override {
    return static_cast<std::int64_t>(queue_.size());
  }

  std::size_t queued() const { return queue_.size(); }

 private:
  IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node> queue_;
};

}  // namespace cmcp::policy
