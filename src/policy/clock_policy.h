// CLOCK (second chance) — extension baseline. The paper argues (section 3)
// that CLOCK suffers the same disease as LRU because it too relies on
// accessed bits; here the sampling happens inline at eviction time, and each
// cleared bit still costs a shootdown of every mapping core.
#pragma once

#include "common/intrusive_list.h"
#include "policy/replacement_policy.h"

namespace cmcp::policy {

class ClockPolicy : public ReplacementPolicy {
 public:
  explicit ClockPolicy(PolicyHost& host) : host_(host) {}

  std::string_view name() const override { return "CLOCK"; }

  void on_insert(mm::ResidentPage& page) override { ring_.push_back(page); }

  mm::ResidentPage* pick_victim(CoreId faulting_core, Cycles& extra_cycles) override;

  void on_evict(mm::ResidentPage& page) override { ring_.erase(page); }

  bool parallel_local_safe() const override { return true; }

  std::int64_t tracked_pages() const override {
    return static_cast<std::int64_t>(ring_.size());
  }

  void stats(const StatVisitor& visit) const override {
    visit("second_chances", second_chances_);
  }

 private:
  /// Max second chances granted per reclaim (bounds shootdown work).
  static constexpr std::size_t kMaxSweep = 8;

  PolicyHost& host_;
  IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node> ring_;
  std::uint64_t second_chances_ = 0;
};

}  // namespace cmcp::policy
