#include "policy/fifo.h"

// FifoPolicy is fully inline; this translation unit anchors the header.
