// Linux-style LRU approximation (paper section 5.1): two queues, active and
// inactive. Pages transit between them based on the accessed bit observed by
// the periodic scanner — which is exactly what makes this policy expensive on
// a many-core: every sampled bit costs a remote TLB shootdown.
#pragma once

#include "common/intrusive_list.h"
#include "policy/replacement_policy.h"

namespace cmcp::policy {

class LruApproxPolicy final : public ReplacementPolicy {
 public:
  std::string_view name() const override { return "LRU"; }

  bool wants_scanner() const override { return true; }

  void on_insert(mm::ResidentPage& page) override {
    page.where = kInactive;
    inactive_.push_back(page);
  }

  void on_scan(mm::ResidentPage& page, bool referenced) override;

  mm::ResidentPage* pick_victim(CoreId faulting_core, Cycles& extra_cycles) override;

  void on_evict(mm::ResidentPage& page) override;

  bool parallel_local_safe() const override { return true; }

  std::int64_t tracked_pages() const override {
    return static_cast<std::int64_t>(active_.size() + inactive_.size());
  }

  std::size_t active_size() const { return active_.size(); }
  std::size_t inactive_size() const { return inactive_.size(); }
  void stats(const StatVisitor& visit) const override;

 private:
  static constexpr std::uint8_t kInactive = 0;
  static constexpr std::uint8_t kActive = 1;

  IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node> inactive_;
  IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node> active_;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
};

}  // namespace cmcp::policy
