#include "policy/cmcp.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace cmcp::policy {

CmcpPolicy::CmcpPolicy(PolicyHost& host, const CmcpConfig& config)
    : host_(host), config_(config), buckets_(host.num_cores() + 1) {
  CMCP_CHECK_MSG(config_.p >= 0.0 && config_.p <= 1.0, "p must be in [0,1]");
  max_priority_ = static_cast<std::uint64_t>(
      std::floor(config_.p * static_cast<double>(host_.capacity_units())));
}

void CmcpPolicy::set_p(double p) {
  CMCP_CHECK_MSG(p >= 0.0 && p <= 1.0, "p must be in [0,1]");
  config_.p = p;
  max_priority_ = static_cast<std::uint64_t>(
      std::floor(p * static_cast<double>(host_.capacity_units())));
}

unsigned CmcpPolicy::bucket_of(unsigned core_map_count) const {
  CMCP_CHECK(core_map_count >= 1);
  return std::min<unsigned>(core_map_count,
                            static_cast<unsigned>(buckets_.size() - 1));
}

mm::ResidentPage* CmcpPolicy::lowest_priority_page() {
  if (priority_size_ == 0) return nullptr;
  // Buckets only ever shrink from the hint upward; re-scan from the hint.
  for (unsigned b = lowest_bucket_hint_; b < buckets_.size(); ++b) {
    if (!buckets_[b].empty()) {
      lowest_bucket_hint_ = b;
      return buckets_[b].front();
    }
  }
  // The hint can overshoot after demotions; fall back to a full scan.
  for (unsigned b = 1; b < buckets_.size(); ++b) {
    if (!buckets_[b].empty()) {
      lowest_bucket_hint_ = b;
      return buckets_[b].front();
    }
  }
  CMCP_CHECK_MSG(false, "priority_size_ out of sync with buckets");
  return nullptr;
}

void CmcpPolicy::promote(mm::ResidentPage& page) {
  const unsigned b = bucket_of(page.core_map_count);
  page.where = kPriority;
  page.bucket = b;
  page.age_stamp = tick_count_;
  buckets_[b].push_back(page);
  age_list_.push_back(page);
  ++priority_size_;
  lowest_bucket_hint_ = std::min(lowest_bucket_hint_, b);
  ++promotions_;
}

void CmcpPolicy::demote_to_fifo(mm::ResidentPage& page) {
  CMCP_CHECK(page.where == kPriority);
  buckets_[page.bucket].erase(page);
  age_list_.erase(page);
  --priority_size_;
  page.where = kFifo;
  fifo_.push_back(page);
}

void CmcpPolicy::place(mm::ResidentPage& page) {
  const unsigned count = page.core_map_count;
  if (count == 0) {
    // Prefetched, not yet mapped by anyone: plain FIFO material.
    page.where = kFifo;
    fifo_.push_back(page);
    return;
  }
  if (priority_size_ < max_priority_) {
    promote(page);
    return;
  }
  if (max_priority_ > 0) {
    mm::ResidentPage* lowest = lowest_priority_page();
    if (lowest != nullptr && lowest->core_map_count < count) {
      // Displace the least-shared prioritized page (paper's insertion rule).
      demote_to_fifo(*lowest);
      ++displacements_;
      promote(page);
      return;
    }
  }
  page.where = kFifo;
  fifo_.push_back(page);
}

void CmcpPolicy::on_insert(mm::ResidentPage& page) { place(page); }

void CmcpPolicy::on_core_map_grow(mm::ResidentPage& page) {
  if (page.where == kPriority) {
    // Re-bucket and refresh the aging position.
    const unsigned b = bucket_of(page.core_map_count);
    if (b != page.bucket) {
      buckets_[page.bucket].erase(page);
      page.bucket = b;
      buckets_[b].push_back(page);
    }
    page.age_stamp = tick_count_;
    age_list_.move_to_back(page);
    return;
  }
  // A FIFO page gained a mapping core: retry the priority placement without
  // losing its FIFO position on failure.
  fifo_.erase(page);
  place(page);
  // place() appended it to the FIFO tail on failure; FIFO order is by first
  // residency, so that is acceptable drift — the page just became "younger",
  // mirroring that it was touched by a new core.
}

mm::ResidentPage* CmcpPolicy::pick_victim(CoreId /*faulting_core*/,
                                          Cycles& /*extra_cycles*/) {
  if (mm::ResidentPage* head = fifo_.front(); head != nullptr) return head;
  return lowest_priority_page();
}

void CmcpPolicy::on_evict(mm::ResidentPage& page) {
  if (page.where == kPriority) {
    buckets_[page.bucket].erase(page);
    age_list_.erase(page);
    --priority_size_;
  } else {
    fifo_.erase(page);
  }
}

void CmcpPolicy::on_tick(Cycles /*now*/) {
  ++tick_count_;
  if (!config_.aging_enabled) return;
  // All prioritized pages slowly fall back to FIFO (paper section 3): demote
  // everything not refreshed within age_limit_ticks.
  while (mm::ResidentPage* stalest = age_list_.front()) {
    if (tick_count_ - stalest->age_stamp <= config_.age_limit_ticks) break;
    demote_to_fifo(*stalest);
    ++aged_out_;
  }
}

void CmcpPolicy::stats(const StatVisitor& visit) const {
  visit("promotions", promotions_);
  visit("displacements", displacements_);
  visit("aged_out", aged_out_);
  visit("priority_size", priority_size_);
  visit("fifo_size", fifo_.size());
}

}  // namespace cmcp::policy
