#include "policy/lru_approx.h"

namespace cmcp::policy {

void LruApproxPolicy::on_scan(mm::ResidentPage& page, bool referenced) {
  if (referenced) {
    if (page.where == kInactive) {
      if (!page.referenced) {
        // First observed reference is the fault that brought the page in;
        // real working-set membership needs a second one (Linux's
        // two-touch rule for inactive pages).
        page.referenced = true;
      } else {
        inactive_.erase(page);
        page.where = kActive;
        active_.push_back(page);
        ++promotions_;
      }
    } else {
      // Referenced while active: rotate to the young end.
      active_.move_to_back(page);
      page.referenced = true;
    }
  } else if (page.where == kActive) {
    if (page.referenced) {
      // First quiet window: strip the reference credit but keep the page
      // active (hysteresis smooths phase-structured workloads).
      page.referenced = false;
    } else {
      // Second quiet window: fell out of the working set.
      active_.erase(page);
      page.where = kInactive;
      inactive_.push_back(page);
      ++demotions_;
    }
  }
  // Unreferenced inactive pages simply age in place.
}

mm::ResidentPage* LruApproxPolicy::pick_victim(CoreId /*faulting_core*/,
                                               Cycles& /*extra_cycles*/) {
  if (mm::ResidentPage* victim = inactive_.front(); victim != nullptr) return victim;
  return active_.front();
}

void LruApproxPolicy::on_evict(mm::ResidentPage& page) {
  (page.where == kActive ? active_ : inactive_).erase(page);
}

void LruApproxPolicy::stats(const StatVisitor& visit) const {
  visit("promotions", promotions_);
  visit("demotions", demotions_);
  visit("active", active_.size());
  visit("inactive", inactive_.size());
}

}  // namespace cmcp::policy
