#include "policy/lfu.h"

// LfuPolicy is fully inline; this translation unit anchors the header.
