// Construction of replacement policies from a PolicyKind + parameters.
#pragma once

#include <memory>

#include "policy/cmcp.h"
#include "policy/dynamic_p.h"
#include "policy/replacement_policy.h"

namespace cmcp::policy {

struct PolicyParams {
  PolicyKind kind = PolicyKind::kFifo;
  CmcpConfig cmcp;          ///< used by kCmcp
  DynamicPConfig dynamic_p; ///< used by kCmcpDynamicP
  std::uint64_t random_seed = 0x5eedULL;  ///< used by kRandom
};

std::unique_ptr<ReplacementPolicy> make_policy(PolicyHost& host,
                                               const PolicyParams& params);

}  // namespace cmcp::policy
