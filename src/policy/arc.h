// ARC-f: an Adaptive Replacement Cache variant driven purely by
// fault-visible events — extension baseline.
//
// Classic ARC (Megiddo & Modha, FAST'03) balances a recency list T1 and a
// frequency list T2 using ghost lists B1/B2 of recently evicted pages: a
// refault that hits a ghost shifts the adaptation target toward the list
// that would have kept it. On a many-core with expensive access-bit
// sampling, ARC is interesting for the same reason CMCP is: its signals
// (faults and refaults) are free. The one adaptation: classic ARC promotes
// T1->T2 on cache *hits*, which the OS cannot see without scanning; ARC-f
// promotes on PSPT minor faults instead (a new core mapping the page — the
// same auxiliary signal CMCP uses).
#pragma once

#include <list>
#include <unordered_map>

#include "common/intrusive_list.h"
#include "policy/replacement_policy.h"

namespace cmcp::policy {

class ArcPolicy final : public ReplacementPolicy {
 public:
  explicit ArcPolicy(PolicyHost& host);

  std::string_view name() const override { return "ARC-f"; }

  void on_insert(mm::ResidentPage& page) override;
  void on_core_map_grow(mm::ResidentPage& page) override;
  mm::ResidentPage* pick_victim(CoreId faulting_core, Cycles& extra_cycles) override;
  void on_evict(mm::ResidentPage& page) override;

  std::int64_t tracked_pages() const override {
    return static_cast<std::int64_t>(t1_.size() + t2_.size());
  }

  std::size_t t1_size() const { return t1_.size(); }
  std::size_t t2_size() const { return t2_.size(); }
  std::size_t b1_size() const { return b1_.size(); }
  std::size_t b2_size() const { return b2_.size(); }
  double target() const { return target_; }
  void stats(const StatVisitor& visit) const override;

 private:
  static constexpr std::uint8_t kT1 = 0;
  static constexpr std::uint8_t kT2 = 1;

  /// Ghost list: bounded FIFO of evicted unit ids with O(1) membership.
  class GhostList {
   public:
    bool contains(UnitIdx unit) const { return pos_.contains(unit); }
    void push(UnitIdx unit, std::size_t cap);
    void remove(UnitIdx unit);
    std::size_t size() const { return pos_.size(); }

   private:
    std::list<UnitIdx> order_;  // front = oldest
    std::unordered_map<UnitIdx, std::list<UnitIdx>::iterator> pos_;
  };

  using PageList = IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node>;

  PolicyHost& host_;
  PageList t1_;  ///< seen once recently (front = LRU)
  PageList t2_;  ///< seen multiple times (front = LRU)
  GhostList b1_;
  GhostList b2_;
  double target_ = 0.0;  ///< desired size of T1 ("p" in the ARC paper)

  std::uint64_t ghost_hits_b1_ = 0;
  std::uint64_t ghost_hits_b2_ = 0;
  std::uint64_t promotions_ = 0;
};

}  // namespace cmcp::policy
