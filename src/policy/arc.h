// ARC-f: an Adaptive Replacement Cache variant driven purely by
// fault-visible events — extension baseline.
//
// Classic ARC (Megiddo & Modha, FAST'03) balances a recency list T1 and a
// frequency list T2 using ghost lists B1/B2 of recently evicted pages: a
// refault that hits a ghost shifts the adaptation target toward the list
// that would have kept it. On a many-core with expensive access-bit
// sampling, ARC is interesting for the same reason CMCP is: its signals
// (faults and refaults) are free. The one adaptation: classic ARC promotes
// T1->T2 on cache *hits*, which the OS cannot see without scanning; ARC-f
// promotes on PSPT minor faults instead (a new core mapping the page — the
// same auxiliary signal CMCP uses).
#pragma once

#include <cstddef>
#include <vector>

#include "common/intrusive_list.h"
#include "policy/replacement_policy.h"

namespace cmcp::policy {

class ArcPolicy final : public ReplacementPolicy {
 public:
  explicit ArcPolicy(PolicyHost& host);

  std::string_view name() const override { return "ARC-f"; }

  void on_insert(mm::ResidentPage& page) override;
  void on_core_map_grow(mm::ResidentPage& page) override;
  mm::ResidentPage* pick_victim(CoreId faulting_core, Cycles& extra_cycles) override;
  void on_evict(mm::ResidentPage& page) override;

  bool parallel_local_safe() const override { return true; }

  std::int64_t tracked_pages() const override {
    return static_cast<std::int64_t>(t1_.size() + t2_.size());
  }

  std::size_t t1_size() const { return t1_.size(); }
  std::size_t t2_size() const { return t2_.size(); }
  std::size_t b1_size() const { return b1_.size(); }
  std::size_t b2_size() const { return b2_.size(); }
  double target() const { return target_; }
  void stats(const StatVisitor& visit) const override;

 private:
  static constexpr std::uint8_t kT1 = 0;
  static constexpr std::uint8_t kT2 = 1;

  /// Ghost list: bounded FIFO of evicted unit ids with O(1) membership.
  /// Dense unit-indexed links (docs/performance.md), not a hash map: one
  /// lazily-grown node array doubles as membership bit and FIFO position,
  /// so push/remove/contains are pointer-free index chasing with a defined
  /// iteration order — the same layout discipline as the page tables.
  class GhostList {
   public:
    bool contains(UnitIdx unit) const {
      return unit < nodes_.size() && nodes_[unit].linked;
    }
    void push(UnitIdx unit, std::size_t cap);
    void remove(UnitIdx unit);
    std::size_t size() const { return size_; }

   private:
    struct Node {
      UnitIdx prev = kInvalidUnit;
      UnitIdx next = kInvalidUnit;
      bool linked = false;
    };

    std::vector<Node> nodes_;  ///< indexed by unit, grown on first sight
    UnitIdx head_ = kInvalidUnit;  ///< oldest
    UnitIdx tail_ = kInvalidUnit;  ///< newest
    std::size_t size_ = 0;
  };

  using PageList = IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node>;

  PolicyHost& host_;
  PageList t1_;  ///< seen once recently (front = LRU)
  PageList t2_;  ///< seen multiple times (front = LRU)
  GhostList b1_;
  GhostList b2_;
  double target_ = 0.0;  ///< desired size of T1 ("p" in the ARC paper)

  std::uint64_t ghost_hits_b1_ = 0;
  std::uint64_t ghost_hits_b2_ = 0;
  std::uint64_t promotions_ = 0;
};

}  // namespace cmcp::policy
