// Uniform-random eviction — extension baseline. Statistically unbiased, no
// usage tracking, no shootdown overhead; a useful lower bound on how much of
// CMCP's win comes from the priority signal versus merely avoiding scans.
#pragma once

#include <vector>

#include "common/rng.h"
#include "policy/replacement_policy.h"

namespace cmcp::policy {

class RandomPolicy final : public ReplacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  std::string_view name() const override { return "RANDOM"; }

  void on_insert(mm::ResidentPage& page) override {
    page.slot = static_cast<std::uint32_t>(pages_.size());
    pages_.push_back(&page);
  }

  mm::ResidentPage* pick_victim(CoreId /*faulting_core*/,
                                Cycles& /*extra_cycles*/) override {
    if (pages_.empty()) return nullptr;
    return pages_[rng_.next_below(pages_.size())];
  }

  void on_evict(mm::ResidentPage& page) override {
    // Swap-remove to keep O(1).
    const std::uint32_t s = page.slot;
    pages_[s] = pages_.back();
    pages_[s]->slot = s;
    pages_.pop_back();
  }

  bool parallel_local_safe() const override { return true; }

  std::int64_t tracked_pages() const override {
    return static_cast<std::int64_t>(pages_.size());
  }

 private:
  Rng rng_;
  std::vector<mm::ResidentPage*> pages_;
};

}  // namespace cmcp::policy
