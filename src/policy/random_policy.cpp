#include "policy/random_policy.h"

// RandomPolicy is fully inline; this translation unit anchors the header.
