// CMCP with runtime adaptation of p — the paper's stated future work
// (section 5.6: "determining the optimal value dynamically based on runtime
// performance feedback (such as page fault frequency)").
//
// A hill-climbing controller: every adaptation window it compares the
// eviction rate (== capacity-miss fault rate) against the previous window
// and keeps moving p in the direction that reduced it, reversing otherwise.
#pragma once

#include "policy/cmcp.h"

namespace cmcp::policy {

struct DynamicPConfig {
  CmcpConfig cmcp;               ///< cmcp.p is the starting point
  double step = 0.1;             ///< p adjustment per window
  std::uint32_t window_ticks = 4;  ///< ticks (scanner cadence) per window
  double min_p = 0.0;
  double max_p = 1.0;
};

class DynamicPCmcpPolicy final : public ReplacementPolicy {
 public:
  DynamicPCmcpPolicy(PolicyHost& host, const DynamicPConfig& config)
      : inner_(host, config.cmcp), config_(config) {}

  std::string_view name() const override { return "CMCP-dyn"; }

  void on_insert(mm::ResidentPage& page) override { inner_.on_insert(page); }
  void on_core_map_grow(mm::ResidentPage& page) override {
    inner_.on_core_map_grow(page);
  }

  mm::ResidentPage* pick_victim(CoreId faulting_core, Cycles& extra_cycles) override {
    ++window_evictions_;
    return inner_.pick_victim(faulting_core, extra_cycles);
  }

  void on_evict(mm::ResidentPage& page) override { inner_.on_evict(page); }

  bool parallel_local_safe() const override {
    return inner_.parallel_local_safe();
  }
  std::int64_t tracked_pages() const override { return inner_.tracked_pages(); }

  void on_tick(Cycles now) override;

  double current_p() const { return inner_.p(); }
  void stats(const StatVisitor& visit) const override {
    // Inner CMCP stats first so the controller's own names win on clashes.
    inner_.stats(visit);
    visit("adaptations", adaptations_);
    visit("p_permille", static_cast<std::uint64_t>(inner_.p() * 1000.0));
  }

 private:
  CmcpPolicy inner_;
  DynamicPConfig config_;
  std::uint32_t ticks_in_window_ = 0;
  std::uint64_t window_evictions_ = 0;
  std::uint64_t prev_window_evictions_ = 0;
  double direction_ = +1.0;
  bool have_baseline_ = false;
  std::uint64_t adaptations_ = 0;
};

}  // namespace cmcp::policy
