// Replacement-policy framework.
//
// Policies see residency events (insert / core-map growth / eviction),
// scanner events (for access-bit based policies), and are asked to pick
// victims. Anything that needs hardware state — reading or clearing accessed
// bits, which implies TLB shootdowns — goes through PolicyHost so the full
// cost (including the remote invalidations the paper measures) is charged to
// whoever triggered it.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/types.h"
#include "mm/page_registry.h"

namespace cmcp::policy {

/// Receives one (name, value) pair per policy statistic. Exporters use this
/// to dump *all* stats of any policy without knowing its keys.
using StatVisitor = std::function<void(std::string_view name, std::uint64_t value)>;

/// Services the memory manager provides to policies.
class PolicyHost {
 public:
  virtual ~PolicyHost() = default;

  /// Device capacity in mapping units (for CMCP's p ratio).
  virtual std::uint64_t capacity_units() const = 0;

  virtual unsigned num_cores() const = 0;

  /// Tenant identity of the address space this policy instance serves.
  /// Single-tenant hosts keep the default asid 0; policies may use it to
  /// label statistics or trace output but never see other spaces' pages.
  virtual Asid asid() const { return 0; }

  /// Read the accessed bit (any mapping core / any sub-entry) WITHOUT
  /// clearing it. Cheap: no shootdown.
  virtual bool unit_accessed(const mm::ResidentPage& page) const = 0;

  /// Current virtual time of a core (for timestamping inline shootdowns).
  virtual Cycles core_clock(CoreId core) const = 0;

  /// Clear the accessed bit(s) and shoot down the translation on every
  /// mapping core — the unavoidable price of usage sampling on x86.
  /// `now` is the initiator's virtual time when the clear happens; a policy
  /// issuing several clears in one decision MUST advance it by the returned
  /// cycles between calls (issuing them all at a stale timestamp makes each
  /// wait for the previous one's slot hold from an ever-older vantage,
  /// compounding into runaway virtual time). Returns the cycles consumed at
  /// `initiator` (charged by the caller via pick_victim's extra_cycles).
  virtual Cycles clear_accessed_and_shootdown(mm::ResidentPage& page,
                                              CoreId initiator, Cycles now) = 0;
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual std::string_view name() const = 0;

  /// A unit became resident; core_map_count is already filled in.
  virtual void on_insert(mm::ResidentPage& page) = 0;

  /// An additional core mapped an already-resident unit (PSPT minor fault).
  virtual void on_core_map_grow(mm::ResidentPage& page) { (void)page; }

  /// Choose the eviction victim. Must not return nullptr when at least one
  /// page is resident. `extra_cycles` receives any cost the decision itself
  /// incurred at `faulting_core` (e.g. CLOCK's second-chance shootdowns);
  /// policies with O(1) decisions leave it at 0.
  virtual mm::ResidentPage* pick_victim(CoreId faulting_core,
                                        Cycles& extra_cycles) = 0;

  /// The chosen victim is being evicted; unlink it from every policy list.
  virtual void on_evict(mm::ResidentPage& page) = 0;

  /// Scanner feedback: `referenced` is the accessed bit observed (and
  /// cleared) during the periodic scan. Only called when wants_scanner().
  virtual void on_scan(mm::ResidentPage& page, bool referenced) {
    (void)page;
    (void)referenced;
  }

  /// Whether the access-bit scanner daemon must run for this policy.
  virtual bool wants_scanner() const { return false; }

  /// Periodic maintenance at scanner cadence (CMCP aging, dynamic-p
  /// feedback). Runs even when wants_scanner() is false.
  virtual void on_tick(Cycles now) { (void)now; }

  /// True when the non-eviction hooks (on_insert, on_core_map_grow,
  /// on_tick) never read per-core machine state through the host (accessed
  /// bits via unit_accessed, clocks via core_clock). The parallel engine
  /// runs core-local accesses concurrently with those hooks only for such
  /// policies; pick_victim is unconstrained — eligible runs never evict.
  /// Every built-in policy qualifies; custom policies must opt in.
  virtual bool parallel_local_safe() const { return false; }

  /// Enumerate every policy-specific statistic as (name, value) pairs.
  /// Policies without stats keep the empty default.
  virtual void stats(const StatVisitor& visit) const { (void)visit; }

  /// Number of resident pages this policy currently tracks on its internal
  /// structures, or -1 when unknown (custom policies that don't override).
  /// SimCheck's policy-accounting invariant compares this against the page
  /// registry's resident-set size; every built-in policy reports it.
  virtual std::int64_t tracked_pages() const { return -1; }
};

}  // namespace cmcp::policy
