#include "policy/clock_policy.h"

#include <algorithm>

namespace cmcp::policy {

mm::ResidentPage* ClockPolicy::pick_victim(CoreId faulting_core,
                                           Cycles& extra_cycles) {
  // Sweep the hand: referenced pages get a second chance (bit cleared — at
  // shootdown cost — and rotated to the tail). The sweep is bounded per
  // reclaim, as in real kernels: under thrash nearly every page is
  // referenced and an unbounded sweep would shoot down the whole resident
  // set on every eviction.
  const std::size_t limit = std::min<std::size_t>(ring_.size(), kMaxSweep) + 1;
  // The probe timestamp advances with each cleared page: every shootdown in
  // the sweep happens after the previous one finished (issuing them all at
  // a stale timestamp would compound slot waits into runaway virtual time).
  Cycles now = host_.core_clock(faulting_core) + extra_cycles;
  for (std::size_t i = 0; i < limit; ++i) {
    mm::ResidentPage* hand = ring_.front();
    if (hand == nullptr) return nullptr;
    if (!host_.unit_accessed(*hand)) return hand;
    const Cycles spent =
        host_.clear_accessed_and_shootdown(*hand, faulting_core, now);
    extra_cycles += spent;
    now += spent;
    ring_.move_to_back(*hand);
    ++second_chances_;
  }
  return ring_.front();
}

}  // namespace cmcp::policy
