#include "policy/dynamic_p.h"

#include <algorithm>

namespace cmcp::policy {

void DynamicPCmcpPolicy::on_tick(Cycles now) {
  inner_.on_tick(now);
  if (++ticks_in_window_ < config_.window_ticks) return;
  ticks_in_window_ = 0;

  if (!have_baseline_) {
    // First complete window: just record and take an exploratory step.
    have_baseline_ = true;
  } else if (window_evictions_ > prev_window_evictions_) {
    // The last move made things worse; reverse course.
    direction_ = -direction_;
  }
  prev_window_evictions_ = window_evictions_;
  window_evictions_ = 0;

  const double next_p = std::clamp(inner_.p() + direction_ * config_.step,
                                   config_.min_p, config_.max_p);
  if (next_p != inner_.p()) {
    inner_.set_p(next_p);
    ++adaptations_;
  } else {
    // Pinned at a bound; probe back toward the interior next window.
    direction_ = -direction_;
  }
}

}  // namespace cmcp::policy
