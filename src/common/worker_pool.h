// The engine's one sanctioned host-thread pool (cmcp_lint rule
// `stray-thread` permits threading primitives only here and in the
// parallel-runner pair): a fixed set of workers draining a FIFO of Tasks.
//
// A Task is claimable: the thread that moves it kQueued -> kRunning owns the
// body. The coordinator uses this to steal a task it is about to wait on and
// run it inline — on a saturated or single-CPU host the engine then degrades
// to serial execution instead of blocking on a descheduled worker.
//
// wait() synchronizes: everything the claiming thread wrote before mark_done()
// happens-before the return of wait() (release store / acquire load on the
// task state).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cmcp::common {

/// One unit of work: a plain function pointer + context, claimable exactly
/// once per arm()/submit cycle. No allocation, reusable across cycles.
class Task {
 public:
  using Fn = void (*)(void* ctx);

  /// Prepare for one execution. Must not be armed or in flight.
  void arm(Fn fn, void* ctx) {
    fn_ = fn;
    ctx_ = ctx;
    state_.store(kIdle, std::memory_order_relaxed);
  }

  /// Atomically take ownership (kQueued -> kRunning). True if the caller
  /// must now execute run_claimed(). False: someone else owns or owned it.
  bool try_claim() {
    std::uint8_t expected = kQueued;
    return state_.compare_exchange_strong(expected, kRunning,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  /// Execute the body after a successful try_claim(), then publish kDone.
  void run_claimed() {
    fn_(ctx_);
    state_.store(kDone, std::memory_order_release);
    state_.notify_all();
  }

  /// Block until the task reaches kDone (acquire; see file comment).
  void wait() const {
    std::uint8_t s = state_.load(std::memory_order_acquire);
    while (s != kDone) {
      state_.wait(s, std::memory_order_relaxed);
      s = state_.load(std::memory_order_acquire);
    }
  }

  bool done() const { return state_.load(std::memory_order_acquire) == kDone; }

 private:
  friend class WorkerPool;
  static constexpr std::uint8_t kIdle = 0;
  static constexpr std::uint8_t kQueued = 1;
  static constexpr std::uint8_t kRunning = 2;
  static constexpr std::uint8_t kDone = 3;

  Fn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::atomic<std::uint8_t> state_{kIdle};
};

/// Fixed pool of host worker threads. Tasks are non-owning pointers: the
/// submitter keeps each Task alive until wait()/done() says it finished.
class WorkerPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: submit() then only marks
  /// tasks queued and the submitter's try_claim path runs them).
  explicit WorkerPool(unsigned num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(threads_.size()); }

  /// Queue an armed task. The task becomes claimable immediately (a worker
  /// or anyone calling try_claim may win it).
  void submit(Task* task);

 private:
  void worker_loop();

  Mutex mu_;
  CondVar cv_;
  std::deque<Task*> queue_ CMCP_GUARDED_BY(mu_);
  bool shutdown_ CMCP_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

/// Resolve a configured engine thread count: 1 (the default) defers to the
/// CMCP_SIM_THREADS environment variable — safe because results are
/// byte-identical at any count, and how the TSan CI job drives the whole
/// suite parallel without touching each test — and 0 means one thread per
/// host CPU. Explicit counts > 1 win over the environment.
unsigned resolve_thread_count(unsigned configured);

}  // namespace cmcp::common
