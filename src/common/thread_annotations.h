// Clang Thread Safety Analysis annotations (Abseil-style, CMCP_-prefixed).
//
// These macros attach compile-time lock-discipline contracts to types,
// fields and functions: which mutex guards which field, which capabilities a
// function requires, acquires or must not hold. Under Clang with
// `-Wthread-safety` (the `thread-safety` CI job builds with `-Werror`) a
// violated contract is a build failure; under GCC and MSVC every macro
// expands to nothing, so the annotations are zero-cost documentation.
//
// The repo's only annotated lock is `common::Mutex` (common/mutex.h) — raw
// `std::mutex` is banned outside that wrapper by cmcp_lint's `raw-mutex`
// rule. Conventions, the lock hierarchy and worked examples live in
// docs/static-analysis.md.
#pragma once

#if defined(__clang__)
#define CMCP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CMCP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define CMCP_CAPABILITY(x) CMCP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define CMCP_SCOPED_CAPABILITY CMCP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be read/written while holding the given capability.
#define CMCP_GUARDED_BY(x) CMCP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the given capability.
#define CMCP_PT_GUARDED_BY(x) CMCP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define CMCP_ACQUIRE(...) \
  CMCP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define CMCP_RELEASE(...) \
  CMCP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define CMCP_TRY_ACQUIRE(...) \
  CMCP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define CMCP_REQUIRES(...) \
  CMCP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself);
/// prevents self-deadlock on the non-reentrant common::Mutex.
#define CMCP_EXCLUDES(...) \
  CMCP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define CMCP_RETURN_CAPABILITY(x) \
  CMCP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: skip analysis of this function body. Used only for
/// quiescent-phase accessors that hand out references to guarded state
/// after all writer threads have joined; every use carries a comment
/// stating the phase argument (see docs/static-analysis.md).
#define CMCP_NO_THREAD_SAFETY_ANALYSIS \
  CMCP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
