// Fundamental types shared by every cmcp module.
//
// The simulator works in units of 4 kB "base pages". A mapping unit is one
// page of the configured page size (4 kB, 64 kB or 2 MB on the Xeon Phi) and
// therefore covers 1, 16 or 512 base pages.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>
#include <string_view>

namespace cmcp {

/// Simulated CPU cycles (virtual time).
using Cycles = std::uint64_t;

/// Identifier of a simulated CPU core, 0-based.
using CoreId = std::uint32_t;

/// Virtual page number in base-page (4 kB) units.
using Vpn = std::uint64_t;

/// Index of a mapping unit: Vpn >> log2(base pages per unit).
using UnitIdx = std::uint64_t;

/// Physical frame number of a device-resident mapping unit.
using Pfn = std::uint64_t;

/// Address-space (tenant) identifier, dense and 0-based. Single-workload
/// runs own the whole machine as asid 0.
using Asid = std::uint32_t;

inline constexpr std::uint64_t kBasePageBytes = 4096;
inline constexpr unsigned kBasePageShift = 12;

inline constexpr Pfn kInvalidPfn = std::numeric_limits<Pfn>::max();
inline constexpr Asid kInvalidAsid = std::numeric_limits<Asid>::max();
inline constexpr UnitIdx kInvalidUnit = std::numeric_limits<UnitIdx>::max();
inline constexpr CoreId kInvalidCore = std::numeric_limits<CoreId>::max();

/// Page sizes supported by the Knights Corner Xeon Phi MMU.
enum class PageSizeClass : std::uint8_t {
  k4K = 0,
  k64K = 1,  ///< experimental 16 x 4 kB grouped format (paper section 4)
  k2M = 2,
};

/// log2 of the number of base pages per mapping unit.
constexpr unsigned unit_shift(PageSizeClass c) {
  switch (c) {
    case PageSizeClass::k4K: return 0;
    case PageSizeClass::k64K: return 4;
    case PageSizeClass::k2M: return 9;
  }
  return 0;
}

/// Number of 4 kB base pages covered by one mapping unit.
constexpr std::uint64_t base_pages_per_unit(PageSizeClass c) {
  return std::uint64_t{1} << unit_shift(c);
}

/// Bytes covered by one mapping unit.
constexpr std::uint64_t unit_bytes(PageSizeClass c) {
  return kBasePageBytes << unit_shift(c);
}

constexpr std::string_view to_string(PageSizeClass c) {
  switch (c) {
    case PageSizeClass::k4K: return "4kB";
    case PageSizeClass::k64K: return "64kB";
    case PageSizeClass::k2M: return "2MB";
  }
  return "?";
}

/// Convert a base-page number to the mapping unit that contains it.
constexpr UnitIdx unit_of(Vpn vpn, PageSizeClass c) { return vpn >> unit_shift(c); }

/// First base page of a mapping unit.
constexpr Vpn first_vpn(UnitIdx unit, PageSizeClass c) { return unit << unit_shift(c); }

/// Page table organizations compared by the paper.
enum class PageTableKind : std::uint8_t {
  kRegular = 0,  ///< one shared set of page tables; shootdowns hit every core
  kPspt = 1,     ///< per-core partially separated page tables (CCGrid'13)
};

constexpr std::string_view to_string(PageTableKind k) {
  return k == PageTableKind::kRegular ? "regularPT" : "PSPT";
}

/// Replacement policies available in the library.
enum class PolicyKind : std::uint8_t {
  kFifo = 0,
  kLru = 1,       ///< Linux-style active/inactive approximation
  kCmcp = 2,      ///< the paper's contribution
  kClock = 3,     ///< second-chance; extension baseline
  kLfu = 4,       ///< least frequently used; extension baseline
  kRandom = 5,    ///< extension baseline
  kCmcpDynamicP = 6,  ///< CMCP with the paper's future-work feedback controller
  kArc = 7,           ///< fault-driven ARC variant; extension baseline
};

constexpr std::string_view to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kFifo: return "FIFO";
    case PolicyKind::kLru: return "LRU";
    case PolicyKind::kCmcp: return "CMCP";
    case PolicyKind::kClock: return "CLOCK";
    case PolicyKind::kLfu: return "LFU";
    case PolicyKind::kRandom: return "RANDOM";
    case PolicyKind::kCmcpDynamicP: return "CMCP-dyn";
    case PolicyKind::kArc: return "ARC-f";
  }
  return "?";
}

}  // namespace cmcp
