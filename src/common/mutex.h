// The repo's one blessed lock: a std::mutex wrapper carrying Clang Thread
// Safety Analysis annotations, plus its RAII guard.
//
// Raw `std::mutex` / `std::lock_guard` are banned outside this header
// (cmcp_lint rule `raw-mutex`): an unannotated mutex protects nothing at
// compile time, and the deterministic parallel engine on the roadmap must
// compile against `-Wthread-safety -Werror` from day one.
//
// Lock hierarchy (acquire strictly downward; documented, not yet
// machine-checked):
//
//   core::MemoryManager::scan_mu_        (scanner flush batch)
//     -> sim::Machine::shootdown_mu_     (invalidation-slot capability)
//       -> sim::trace::EventSink::mu_    (event buffer)
//   sim::PcieLink::mu_                   (leaf; never held across calls out)
//   metrics::ResultWriter::mu_           (leaf)
//   parallel-runner job state            (leaf)
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace cmcp::common {

/// Annotated non-reentrant mutual-exclusion capability.
class CMCP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CMCP_ACQUIRE() { mu_.lock(); }
  void unlock() CMCP_RELEASE() { mu_.unlock(); }
  bool try_lock() CMCP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard: holds `mu` for the enclosing scope.
class CMCP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) CMCP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() CMCP_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace cmcp::common
