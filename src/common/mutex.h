// The repo's one blessed lock: a std::mutex wrapper carrying Clang Thread
// Safety Analysis annotations, plus its RAII guard.
//
// Raw `std::mutex` / `std::lock_guard` are banned outside this header
// (cmcp_lint rule `raw-mutex`): an unannotated mutex protects nothing at
// compile time, and the deterministic parallel engine on the roadmap must
// compile against `-Wthread-safety -Werror` from day one.
//
// Lock hierarchy (acquire strictly downward; documented, not yet
// machine-checked):
//
//   core::AddressSpace::scan_mu_         (scanner flush batch)
//     -> sim::Machine::shootdown_mu_     (invalidation-slot capability)
//       -> sim::trace::EventSink::mu_    (event buffer)
//   sim::PcieLink::mu_                   (leaf; never held across calls out)
//   metrics::ResultWriter::mu_           (leaf)
//   common::WorkerPool::mu_              (leaf; task queue only)
//   parallel-runner job state            (leaf)
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace cmcp::common {

/// Annotated non-reentrant mutual-exclusion capability.
class CMCP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CMCP_ACQUIRE() { mu_.lock(); }
  void unlock() CMCP_RELEASE() { mu_.unlock(); }
  bool try_lock() CMCP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard: holds `mu` for the enclosing scope.
class CMCP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) CMCP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() CMCP_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with the annotated Mutex. `wait` must be called
/// with `mu` held (enforced by the analysis); the predicate loop is the
/// caller's job, as with std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) CMCP_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // condition_variable_any takes any BasicLockable, so it waits on the
  // annotated Mutex directly — no escape hatch back to std::mutex needed.
  std::condition_variable_any cv_;
};

}  // namespace cmcp::common
