#include "common/rng.h"

#include <cmath>

#include "common/assert.h"

namespace cmcp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CMCP_CHECK(bound > 0);
  // Debiased via rejection on the top of the range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) {
  CMCP_CHECK(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

std::uint64_t Rng::next_geometric(double mean) {
  CMCP_CHECK(mean > 0.0);
  const double u = next_double();
  // Inverse CDF of the exponential distribution, floored.
  return static_cast<std::uint64_t>(-mean * std::log1p(-u));
}

}  // namespace cmcp
