// Fixed-capacity bitset of CPU cores. PSPT tracks, per mapping unit, exactly
// which cores hold a private PTE; shootdown targeting and the CMCP core-map
// count both derive from this mask.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/assert.h"
#include "common/types.h"

namespace cmcp {

class CoreMask {
 public:
  /// Upper bound on simulated cores (Knights Corner has 61; leave headroom).
  static constexpr CoreId kMaxCores = 256;

  constexpr CoreMask() = default;

  void set(CoreId core) {
    CMCP_CHECK(core < kMaxCores);
    words_[core >> 6] |= std::uint64_t{1} << (core & 63);
  }

  void clear(CoreId core) {
    CMCP_CHECK(core < kMaxCores);
    words_[core >> 6] &= ~(std::uint64_t{1} << (core & 63));
  }

  bool test(CoreId core) const {
    CMCP_CHECK(core < kMaxCores);
    return (words_[core >> 6] >> (core & 63)) & 1;
  }

  void reset() { words_ = {}; }

  bool any() const {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }

  bool none() const { return !any(); }

  /// Number of set bits == number of mapping cores.
  unsigned count() const {
    unsigned c = 0;
    for (auto w : words_) c += static_cast<unsigned>(std::popcount(w));
    return c;
  }

  /// Invoke fn(CoreId) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(w));
        fn(static_cast<CoreId>(wi * 64 + bit));
        w &= w - 1;
      }
    }
  }

  /// All cores in [0, n).
  static CoreMask first_n(CoreId n) {
    CMCP_CHECK(n <= kMaxCores);
    CoreMask m;
    for (CoreId i = 0; i < n; ++i) m.set(i);
    return m;
  }

  friend bool operator==(const CoreMask&, const CoreMask&) = default;

  CoreMask operator|(const CoreMask& o) const {
    CoreMask r;
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] | o.words_[i];
    return r;
  }

  CoreMask operator&(const CoreMask& o) const {
    CoreMask r;
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] & o.words_[i];
    return r;
  }

 private:
  std::array<std::uint64_t, kMaxCores / 64> words_{};
};

}  // namespace cmcp
