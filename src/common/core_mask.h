// Fixed-capacity bitset of CPU cores. PSPT tracks, per mapping unit, exactly
// which cores hold a private PTE; shootdown targeting and the CMCP core-map
// count both derive from this mask.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/assert.h"
#include "common/types.h"

namespace cmcp {

class CoreMask {
 public:
  /// Upper bound on simulated cores. Knights Corner has 61, but the engine
  /// sweeps past the paper's hardware: the 512/1024-core bench rows probe
  /// where CMCP's no-shootdown advantage saturates, so leave room for 1024
  /// app cores plus scanner pseudo-cores. Masks are 17 words; hot loops
  /// over them are word-skipping, and the page tables store only the words
  /// the machine's core count needs (full-width CoreMask values live on
  /// the stack, where the headroom is cache-hot noise).
  static constexpr CoreId kMaxCores = 1088;

  constexpr CoreMask() = default;

  void set(CoreId core) {
    CMCP_CHECK(core < kMaxCores);
    words_[core >> 6] |= std::uint64_t{1} << (core & 63);
  }

  void clear(CoreId core) {
    CMCP_CHECK(core < kMaxCores);
    words_[core >> 6] &= ~(std::uint64_t{1} << (core & 63));
  }

  bool test(CoreId core) const {
    CMCP_CHECK(core < kMaxCores);
    return (words_[core >> 6] >> (core & 63)) & 1;
  }

  void reset() { words_ = {}; }

  bool any() const {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }

  bool none() const { return !any(); }

  /// Number of set bits == number of mapping cores.
  unsigned count() const { return count(words_.size()); }

  /// Number of set bits among the first `words` words. Hot callers that know
  /// the machine's live core count (sim::Machine caps at
  /// ceil(total_cores/64)) skip the always-zero tail of the fixed-capacity
  /// array — one word scanned instead of seventeen at the paper's 56 cores.
  unsigned count(std::size_t words) const {
    unsigned c = 0;
    for (std::size_t wi = 0; wi < words; ++wi)
      c += static_cast<unsigned>(std::popcount(words_[wi]));
    return c;
  }

  /// Invoke fn(CoreId) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each(words_.size(), static_cast<Fn&&>(fn));
  }

  /// for_each over the first `words` words only (see count(words)).
  template <typename Fn>
  void for_each(std::size_t words, Fn&& fn) const {
    for (std::size_t wi = 0; wi < words; ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(w));
        fn(static_cast<CoreId>(wi * 64 + bit));
        w &= w - 1;
      }
    }
  }

  /// Number of 64-bit words backing a full mask.
  static constexpr std::size_t kWords = kMaxCores / 64;

  /// Raw word access, for dense per-unit mask storage (mm::Pspt keeps only
  /// ceil(num_cores/64) words per unit and widens to a CoreMask at the
  /// API boundary).
  std::uint64_t word(std::size_t i) const { return words_[i]; }
  void set_word(std::size_t i, std::uint64_t w) { words_[i] = w; }

  /// All cores in [0, n).
  static CoreMask first_n(CoreId n) {
    CMCP_CHECK(n <= kMaxCores);
    CoreMask m;
    for (CoreId i = 0; i < n; ++i) m.set(i);
    return m;
  }

  friend bool operator==(const CoreMask&, const CoreMask&) = default;

  CoreMask operator|(const CoreMask& o) const {
    CoreMask r;
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] | o.words_[i];
    return r;
  }

  CoreMask operator&(const CoreMask& o) const {
    CoreMask r;
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] & o.words_[i];
    return r;
  }

 private:
  std::array<std::uint64_t, kMaxCores / 64> words_{};
};

}  // namespace cmcp
