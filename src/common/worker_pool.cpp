#include "common/worker_pool.h"

#include <algorithm>
#include <cstdlib>

namespace cmcp::common {

unsigned resolve_thread_count(unsigned configured) {
  if (configured == 1) {
    if (const char* env = std::getenv("CMCP_SIM_THREADS");
        env != nullptr && *env != '\0') {
      configured = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    }
  }
  if (configured == 0)
    configured = std::max(1u, std::thread::hardware_concurrency());
  return configured;
}

WorkerPool::WorkerPool(unsigned num_threads) {
  threads_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    LockGuard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::submit(Task* task) {
  task->state_.store(Task::kQueued, std::memory_order_release);
  {
    LockGuard lock(mu_);
    queue_.push_back(task);
  }
  cv_.notify_one();
}

void WorkerPool::worker_loop() {
  for (;;) {
    Task* task = nullptr;
    {
      LockGuard lock(mu_);
      while (queue_.empty() && !shutdown_) cv_.wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = queue_.front();
      queue_.pop_front();
    }
    // The coordinator may have stolen it (inline execution); losing the
    // claim is the common case on an oversubscribed host and is free.
    if (task->try_claim()) task->run_claimed();
  }
}

}  // namespace cmcp::common
