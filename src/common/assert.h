// Always-on invariant checks. The simulator is deterministic, so a violated
// invariant is a bug, never a data artifact; we abort loudly in every build
// type rather than propagate corrupted statistics into EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cmcp::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "cmcp: check failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace cmcp::detail

#define CMCP_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) ::cmcp::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CMCP_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) ::cmcp::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)
