// Deterministic PRNG (xoshiro256**) used by workload generators and the
// RANDOM baseline policy. std::mt19937_64 is avoided so seeds reproduce the
// same streams across standard library implementations.
#pragma once

#include <cstdint>

namespace cmcp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a single 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

  /// Geometric-ish small offset with parameter mean; used for banded sparsity.
  std::uint64_t next_geometric(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace cmcp
