// Minimal intrusive doubly-linked list. Replacement policies keep resident
// pages on queues; intrusive links give O(1) unlink without per-node heap
// allocation, which matters because every page fault touches these lists.
#pragma once

#include <cstddef>

#include "common/assert.h"

namespace cmcp {

struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return prev != nullptr; }
};

/// Intrusive list over T, where T derives from (or contains) a ListNode
/// reachable via the NodeOf functor. T must outlive its list membership.
template <typename T, ListNode T::* Member>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }
  std::size_t size() const { return size_; }

  void push_back(T& item) { insert_before(head_, node(item)); }
  void push_front(T& item) { insert_before(*head_.next, node(item)); }

  T* front() { return empty() ? nullptr : owner(head_.next); }
  T* back() { return empty() ? nullptr : owner(head_.prev); }

  /// Unlink item; item must currently be on this list.
  void erase(T& item) {
    ListNode& n = node(item);
    CMCP_CHECK_MSG(n.linked(), "erase of unlinked node");
    n.prev->next = n.next;
    n.next->prev = n.prev;
    n.prev = nullptr;
    n.next = nullptr;
    --size_;
  }

  T* pop_front() {
    T* item = front();
    if (item != nullptr) erase(*item);
    return item;
  }

  /// Move item to the back (most-recently-inserted position).
  void move_to_back(T& item) {
    erase(item);
    push_back(item);
  }

  static bool on_any_list(const T& item) { return (item.*Member).linked(); }

  /// Iterate in front-to-back order; fn may not mutate the list.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (ListNode* n = head_.next; n != &head_; n = n->next) fn(*owner(n));
  }

  T* next_of(T& item) {
    ListNode* n = node(item).next;
    return n == &head_ ? nullptr : owner(n);
  }

 private:
  static ListNode& node(T& item) { return item.*Member; }

  static T* owner(ListNode* n) {
    // Recover T* from the member pointer offset.
    const auto offset = reinterpret_cast<std::ptrdiff_t>(
        &(static_cast<T*>(nullptr)->*Member));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset);
  }

  void insert_before(ListNode& pos, ListNode& n) {
    CMCP_CHECK_MSG(!n.linked(), "insert of already-linked node");
    n.prev = pos.prev;
    n.next = &pos;
    pos.prev->next = &n;
    pos.prev = &n;
    ++size_;
  }

  ListNode head_;
  std::size_t size_ = 0;
};

}  // namespace cmcp
