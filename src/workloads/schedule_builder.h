// Helper for workload generators: builds the per-core op schedules that
// VectorStream replays. Page references are interleaved with proportional
// compute so the compute-to-data-movement ratio of the modelled application
// survives the translation into a schedule.
#pragma once

#include <memory>
#include <vector>

#include "common/assert.h"
#include "workloads/access_stream.h"

namespace cmcp::wl {

struct WorkloadParams {
  CoreId cores = 56;
  /// Footprint multiplier: 1.0 approximates the paper's "small" setups
  /// (NPB class B / SCALE 512 MB); ~2.5 the "big" ones (class C / 1.2 GB).
  double scale = 1.0;
  /// 0 = workload default.
  std::uint32_t iterations = 0;
  std::uint64_t seed = 1234;
  /// Compute cycles charged per referenced page; 0 = workload default.
  /// Calibrated so the PCIe link saturates around the paper's constraint
  /// levels at 56 cores (see DESIGN.md section 4).
  Cycles compute_per_page = 0;
};

class ScheduleBuilder {
 public:
  ScheduleBuilder(CoreId cores, Cycles compute_per_page)
      : compute_per_page_(compute_per_page), schedules_(cores) {
    CMCP_CHECK(cores > 0);
  }

  /// Reference `count` consecutive pages starting at `first` on `core`,
  /// `repeat` times each, with the per-page compute interval attached (the
  /// engine executes one page per event, so cores interleave at page
  /// granularity regardless of the range length).
  void touch(CoreId core, Vpn first, std::uint64_t count, bool write,
             std::uint16_t repeat = 1) {
    if (count == 0) return;
    schedules_[core].push_back(Op::access(
        first, write, static_cast<std::uint32_t>(count), repeat,
        compute_per_page_ * repeat));
  }

  /// Single-page touch with no attached compute.
  void touch_page(CoreId core, Vpn vpn, bool write, std::uint16_t repeat = 1) {
    schedules_[core].push_back(Op::access(vpn, write, 1, repeat));
  }

  /// Single-page touch with the standard compute interval.
  void touch_page_compute(CoreId core, Vpn vpn, bool write,
                          std::uint16_t repeat = 1) {
    schedules_[core].push_back(
        Op::access(vpn, write, 1, repeat, compute_per_page_ * repeat));
  }

  void compute(CoreId core, Cycles cycles) {
    if (cycles > 0) schedules_[core].push_back(Op::compute(cycles));
  }

  /// Append an arbitrary op (syscalls, custom patterns).
  void push_op(CoreId core, const Op& op) { schedules_[core].push_back(op); }

  /// Barrier across every core.
  void barrier_all() {
    for (auto& ops : schedules_) ops.push_back(Op::barrier());
  }

  /// Freeze and hand out the schedules (call once).
  std::vector<std::shared_ptr<const std::vector<Op>>> finish() {
    std::vector<std::shared_ptr<const std::vector<Op>>> result;
    result.reserve(schedules_.size());
    for (auto& ops : schedules_)
      result.push_back(std::make_shared<const std::vector<Op>>(std::move(ops)));
    schedules_.clear();
    return result;
  }

 private:
  Cycles compute_per_page_;
  std::vector<std::vector<Op>> schedules_;
};

/// Contiguous block partition of `total` items over `cores`; returns
/// [begin, end) of `core`'s share. Remainders spread over the low cores.
struct BlockRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t size() const { return end - begin; }
};

inline BlockRange block_partition(std::uint64_t total, CoreId cores, CoreId core) {
  CMCP_CHECK(core < cores);
  const std::uint64_t base = total / cores;
  const std::uint64_t extra = total % cores;
  const std::uint64_t begin =
      core * base + std::min<std::uint64_t>(core, extra);
  const std::uint64_t len = base + (core < extra ? 1 : 0);
  return BlockRange{begin, begin + len};
}

}  // namespace cmcp::wl
