#include "workloads/lu.h"

#include "workloads/partition_util.h"

namespace cmcp::wl {

namespace {
constexpr std::uint32_t kDefaultIterations = 4;
constexpr Cycles kDefaultComputePerPage = 26000;
}  // namespace

LuWorkload::LuWorkload(const LuParams& params) : params_(params) {
  const WorkloadParams& base = params_.base;
  const CoreId n = base.cores;
  const std::uint64_t u_pages = detail::scaled(params_.u_pages, base.scale);
  const std::uint64_t rsd_pages = detail::scaled(params_.rsd_pages, base.scale);
  const std::uint64_t flux_pages = detail::scaled(params_.flux_pages, base.scale);

  const Vpn u_base = 0;
  const Vpn rsd_base = u_base + u_pages;
  const Vpn flux_base = rsd_base + rsd_pages;
  footprint_ = flux_base + flux_pages;

  const std::uint32_t iterations =
      base.iterations != 0 ? base.iterations : kDefaultIterations;
  const Cycles cpp =
      base.compute_per_page != 0 ? base.compute_per_page : kDefaultComputePerPage;
  const std::uint32_t planes = std::max<std::uint32_t>(params_.planes, 1);

  Rng rng(base.seed);
  ScheduleBuilder sb(n, cpp);

  const std::uint64_t u_plane = std::max<std::uint64_t>(u_pages / planes, 1);
  const std::uint64_t rsd_plane = std::max<std::uint64_t>(rsd_pages / planes, 1);

  // Touch core c's partition of one plane plus halos. The upper sweep
  // (cross != 0) decomposes the plane across the memory layout: a fraction
  // of each block's segments is handled by a core 1-2 blocks away (stable
  // across iterations), spreading boundary pages over 3-6 cores — the
  // "somewhat less regular" profile of Fig. 6b.
  const auto sweep_plane = [&](Vpn region_base, std::uint64_t plane_pages,
                               std::uint32_t plane, std::uint64_t cross,
                               bool write) {
    const auto bounds =
        detail::jittered_bounds(plane_pages, n, params_.boundary_jitter, rng);
    const std::uint64_t halo = static_cast<std::uint64_t>(
        params_.halo_fraction * static_cast<double>(plane_pages) / n);
    const Vpn plane_base = region_base + static_cast<Vpn>(plane) * plane_pages;
    if (cross == 0) {
      for (CoreId c = 0; c < n; ++c)
        detail::touch_block_with_halo(sb, c, bounds, plane_base, halo, write,
                                      /*repeat=*/1, /*halo_repeat=*/2);
    } else {
      detail::ExchangeConfig cfg;
      cfg.segment_pages = 8;
      cfg.exchange_fraction = params_.exchange_fraction;
      cfg.max_distance = 2;
      cfg.phase_seed = cross * 0x2545f4914f6cdd1dULL + base.seed;
      for (CoreId c = 0; c < n; ++c) {
        // Halo strips of the nominal block edges, hot (read twice).
        if (halo > 0 && bounds[c] > 0) {
          const std::uint64_t h = std::min(halo, bounds[c]);
          sb.touch(c, plane_base + bounds[c] - h, h, false, 2);
        }
        if (halo > 0 && bounds[c + 1] < plane_pages) {
          const std::uint64_t h = std::min(halo, plane_pages - bounds[c + 1]);
          sb.touch(c, plane_base + bounds[c + 1], h, false, 2);
        }
        for (const auto& [first, len] :
             detail::exchange_runs(plane_pages, n, c, cfg))
          sb.touch(c, plane_base + first, len, write, 1);
      }
    }
    sb.barrier_all();  // wavefront step
  };

  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    // Residual evaluation: flux scratch streamed privately, rsd written.
    {
      const auto flux_bounds =
          detail::jittered_bounds(flux_pages, n, params_.boundary_jitter, rng);
      for (CoreId c = 0; c < n; ++c) {
        sb.touch(c, flux_base + flux_bounds[c],
                 flux_bounds[c + 1] - flux_bounds[c], /*write=*/true,
                 /*repeat=*/1);
      }
      sb.barrier_all();
    }

    // Lower sweep: forward over the planes, nominal decomposition.
    for (std::uint32_t k = 0; k < planes; ++k) {
      sweep_plane(rsd_base, rsd_plane, k, 0, /*write=*/true);
      sweep_plane(u_base, u_plane, k, 0, /*write=*/false);
    }
    // Upper sweep: backwards, cross decomposition of the same planes.
    for (std::uint32_t k = planes; k-- > 0;) {
      sweep_plane(rsd_base, rsd_plane, k, 1, /*write=*/false);
      sweep_plane(u_base, u_plane, k, 2, /*write=*/true);
    }
  }

  schedules_ = sb.finish();
}

std::unique_ptr<AccessStream> LuWorkload::make_stream(CoreId core) const {
  CMCP_CHECK(core < schedules_.size());
  return std::make_unique<VectorStream>(schedules_[core]);
}

}  // namespace cmcp::wl
