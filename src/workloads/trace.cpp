#include "workloads/trace.h"

#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace cmcp::wl {

void write_trace(const Workload& workload, std::ostream& os) {
  os << "cmcp-trace v1\n";
  os << "cores " << workload.num_cores() << '\n';
  os << "pages " << workload.footprint_base_pages() << '\n';
  for (CoreId c = 0; c < workload.num_cores(); ++c) {
    os << "core " << c << '\n';
    auto stream = workload.make_stream(c);
    for (;;) {
      const Op op = stream->next();
      if (op.kind == OpKind::kEnd) break;
      switch (op.kind) {
        case OpKind::kAccess:
          os << "a " << op.vpn << ' ' << op.count << ' ' << op.stride << ' '
             << op.repeat << ' ' << (op.write ? 'w' : 'r') << ' ' << op.cycles
             << '\n';
          break;
        case OpKind::kCompute:
          os << "c " << op.cycles << '\n';
          break;
        case OpKind::kBarrier:
          os << "b\n";
          break;
        case OpKind::kSyscall:
          os << "s " << op.cycles << ' ' << op.count << '\n';
          break;
        case OpKind::kEnd:
          break;
      }
    }
  }
}

void save_trace(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  CMCP_CHECK_MSG(out.good(), "cannot open trace output file");
  write_trace(workload, out);
}

std::unique_ptr<TraceWorkload> TraceWorkload::parse(std::istream& is) {
  auto trace = std::unique_ptr<TraceWorkload>(new TraceWorkload());
  std::string line;

  CMCP_CHECK_MSG(std::getline(is, line) && line == "cmcp-trace v1",
                 "not a cmcp trace (missing header)");

  std::vector<std::vector<Op>> schedules;
  std::vector<Op>* current = nullptr;
  std::uint64_t cores = 0;

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "cores") {
      CMCP_CHECK_MSG(ss >> cores && cores > 0, "bad cores line");
      schedules.resize(cores);
    } else if (tag == "pages") {
      CMCP_CHECK_MSG(static_cast<bool>(ss >> trace->pages_), "bad pages line");
    } else if (tag == "core") {
      std::uint64_t id = 0;
      CMCP_CHECK_MSG(ss >> id && id < schedules.size(), "bad core line");
      current = &schedules[id];
    } else if (tag == "a") {
      CMCP_CHECK_MSG(current != nullptr, "op before core line");
      Op op;
      op.kind = OpKind::kAccess;
      unsigned repeat = 1;
      char rw = 'r';
      CMCP_CHECK_MSG(static_cast<bool>(ss >> op.vpn >> op.count >> op.stride >>
                                       repeat >> rw >> op.cycles),
                     "bad access line");
      CMCP_CHECK_MSG(op.count > 0 && repeat > 0 && (rw == 'r' || rw == 'w'),
                     "bad access fields");
      op.repeat = static_cast<std::uint16_t>(repeat);
      op.write = rw == 'w';
      current->push_back(op);
    } else if (tag == "c") {
      CMCP_CHECK_MSG(current != nullptr, "op before core line");
      Cycles cycles = 0;
      CMCP_CHECK_MSG(static_cast<bool>(ss >> cycles), "bad compute line");
      current->push_back(Op::compute(cycles));
    } else if (tag == "b") {
      CMCP_CHECK_MSG(current != nullptr, "op before core line");
      current->push_back(Op::barrier());
    } else if (tag == "s") {
      CMCP_CHECK_MSG(current != nullptr, "op before core line");
      Cycles host = 0;
      std::uint32_t bytes = 0;
      CMCP_CHECK_MSG(static_cast<bool>(ss >> host >> bytes), "bad syscall line");
      current->push_back(Op::syscall(host, bytes));
    } else {
      CMCP_CHECK_MSG(false, "unknown trace tag");
    }
  }
  CMCP_CHECK_MSG(cores > 0, "trace declares no cores");
  CMCP_CHECK_MSG(trace->pages_ > 0, "trace declares no pages");

  trace->schedules_.reserve(cores);
  for (auto& ops : schedules)
    trace->schedules_.push_back(
        std::make_shared<const std::vector<Op>>(std::move(ops)));
  return trace;
}

std::unique_ptr<TraceWorkload> TraceWorkload::load(const std::string& path) {
  std::ifstream in(path);
  CMCP_CHECK_MSG(in.good(), "cannot open trace file");
  return parse(in);
}

std::unique_ptr<AccessStream> TraceWorkload::make_stream(CoreId core) const {
  CMCP_CHECK(core < schedules_.size());
  return std::make_unique<VectorStream>(schedules_[core]);
}

}  // namespace cmcp::wl
