// Synthetic workloads for unit tests, calibration and the adversarial
// ablation (the paper concedes in section 3 that access patterns exist for
// which the core-map-count heuristic misfires — A4 constructs one).
#pragma once

#include "common/rng.h"
#include "workloads/schedule_builder.h"

namespace cmcp::wl {

/// Every core touches pages uniformly at random over the footprint.
struct UniformParams {
  WorkloadParams base;
  std::uint64_t pages = 4096;
  std::uint64_t touches_per_core = 20000;
};

class UniformWorkload final : public Workload {
 public:
  explicit UniformWorkload(const UniformParams& params);

  std::string_view name() const override { return "uniform"; }
  CoreId num_cores() const override { return params_.base.cores; }
  std::uint64_t footprint_base_pages() const override { return params_.pages; }
  std::unique_ptr<AccessStream> make_stream(CoreId core) const override;

 private:
  UniformParams params_;
  std::vector<std::shared_ptr<const std::vector<Op>>> schedules_;
};

/// A hot region re-read every round by its owner plus a cold region streamed
/// once per round. Owner blocks are private; an optional shared fraction of
/// the hot region is read by all cores.
struct HotColdParams {
  WorkloadParams base;
  std::uint64_t hot_pages = 1024;
  std::uint64_t cold_pages = 8192;
  std::uint32_t rounds = 10;
  std::uint16_t hot_repeat = 4;
  /// Leading fraction of the hot region read by every core each round.
  double shared_hot_fraction = 0.25;
};

class HotColdWorkload final : public Workload {
 public:
  explicit HotColdWorkload(const HotColdParams& params);

  std::string_view name() const override { return "hotcold"; }
  CoreId num_cores() const override { return params_.base.cores; }
  std::uint64_t footprint_base_pages() const override {
    return params_.hot_pages + params_.cold_pages;
  }
  std::unique_ptr<AccessStream> make_stream(CoreId core) const override;

 private:
  HotColdParams params_;
  std::vector<std::shared_ptr<const std::vector<Op>>> schedules_;
};

/// Adversarial anti-CMCP pattern: a widely shared region is touched by every
/// core exactly once up front (inflating its core-map count) and never
/// again, while private regions stay hot. CMCP pins the dead shared pages;
/// only aging rescues it.
struct AdversarialParams {
  WorkloadParams base;
  std::uint64_t dead_shared_pages = 2048;
  std::uint64_t private_pages_per_core = 256;
  std::uint32_t rounds = 20;
  std::uint16_t private_repeat = 3;
};

class AdversarialWorkload final : public Workload {
 public:
  explicit AdversarialWorkload(const AdversarialParams& params);

  std::string_view name() const override { return "adversarial"; }
  CoreId num_cores() const override { return params_.base.cores; }
  std::uint64_t footprint_base_pages() const override {
    return params_.dead_shared_pages +
           static_cast<std::uint64_t>(params_.base.cores) *
               params_.private_pages_per_core;
  }
  std::unique_ptr<AccessStream> make_stream(CoreId core) const override;

 private:
  AdversarialParams params_;
  std::vector<std::shared_ptr<const std::vector<Op>>> schedules_;
};

}  // namespace cmcp::wl
