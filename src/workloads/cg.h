// NPB CG analogue: conjugate-gradient iterations over a banded sparse
// matrix in CSR layout.
//
// What matters to the memory manager is the per-core page footprint and its
// reuse structure, not the arithmetic:
//  * the matrix region dominates the footprint and is streamed once per
//    iteration by (mostly) one core — row blocks are re-balanced slightly
//    between iterations, which is what spreads boundary pages over two
//    cores and produces CG's measured sharing profile (paper Fig. 6a:
//    >50% of pages private, the rest almost all 2-core);
//  * the vector regions are hot: re-read every iteration by their owner and
//    by band neighbours (halo);
//  * small reduction pages are touched by every core each iteration.
#pragma once

#include "common/rng.h"
#include "workloads/schedule_builder.h"

namespace cmcp::wl {

struct CgParams {
  WorkloadParams base;
  /// Region sizes in base pages at scale 1.
  std::uint64_t matrix_pages = 25700;
  std::uint64_t x_pages = 2600;
  std::uint64_t y_pages = 2600;
  std::uint64_t reduction_pages = 64;
  /// Fraction of matrix pages an iteration actually visits. The sparse
  /// representation leaves much of the allocation untouched per pass, which
  /// is why CG tolerates memory constraint down to ~35-40% (paper Fig. 8).
  double matrix_touched_fraction = 0.42;
  /// Fraction of a block by which row-partition boundaries wander between
  /// iterations (models dynamic re-balancing of rows onto threads).
  double boundary_jitter = 0.22;
  /// Fraction of a vector block read from each band neighbour.
  double halo_fraction = 0.15;
};

class CgWorkload final : public Workload {
 public:
  explicit CgWorkload(const CgParams& params);

  std::string_view name() const override { return "cg"; }
  CoreId num_cores() const override { return params_.base.cores; }
  std::uint64_t footprint_base_pages() const override { return footprint_; }
  std::unique_ptr<AccessStream> make_stream(CoreId core) const override;

 private:
  CgParams params_;
  std::uint64_t footprint_ = 0;
  std::vector<std::shared_ptr<const std::vector<Op>>> schedules_;
};

}  // namespace cmcp::wl
