#include "workloads/workload_factory.h"

#include "common/assert.h"
#include "workloads/bt.h"
#include "workloads/cg.h"
#include "workloads/lu.h"
#include "workloads/stencil.h"

namespace cmcp::wl {

double paper_memory_fraction(PaperWorkload w) {
  switch (w) {
    case PaperWorkload::kBt: return 0.64;
    case PaperWorkload::kLu: return 0.66;
    case PaperWorkload::kCg: return 0.37;
    case PaperWorkload::kScale: return 0.50;
  }
  return 0.5;
}

double paper_best_p(PaperWorkload w) {
  switch (w) {
    // The paper does not state BT's optimum; our Fig. 9 sweep peaks at 0.9.
    case PaperWorkload::kBt: return 0.9;
    case PaperWorkload::kLu: return 0.7;
    // Paper section 5.6: CG favours a low ratio. (Our own sweep prefers a
    // higher one — see the deviation note in EXPERIMENTS.md — but the
    // paper-faithful value is used for the Fig. 7 reproduction.)
    case PaperWorkload::kCg: return 0.1;
    case PaperWorkload::kScale: return 0.7;
  }
  return 0.4;
}

std::unique_ptr<Workload> make_paper_workload(PaperWorkload which,
                                              const WorkloadParams& base,
                                              WorkloadSize size) {
  WorkloadParams params = base;
  // class C footprints are roughly 4x class B; SCALE big is 1.2 GB vs 512 MB.
  if (size == WorkloadSize::kBig && params.scale == 1.0)
    params.scale = which == PaperWorkload::kScale ? 2.4 : 4.0;

  switch (which) {
    case PaperWorkload::kCg: {
      CgParams p;
      p.base = params;
      return std::make_unique<CgWorkload>(p);
    }
    case PaperWorkload::kLu: {
      LuParams p;
      p.base = params;
      return std::make_unique<LuWorkload>(p);
    }
    case PaperWorkload::kBt: {
      BtParams p;
      p.base = params;
      return std::make_unique<BtWorkload>(p);
    }
    case PaperWorkload::kScale: {
      StencilParams p;
      p.base = params;
      return std::make_unique<StencilWorkload>(p);
    }
  }
  CMCP_CHECK_MSG(false, "unknown workload");
  return nullptr;
}

}  // namespace cmcp::wl
