// Multi-tenant workload composition: stack existing workloads side by side
// on one machine, each tenant getting a contiguous block of cores and a
// disjoint, unit-aligned slice of the virtual address range. The composition
// is pure bookkeeping — tenants' access streams are exactly the underlying
// workloads' streams; only the core ids and area bases shift.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "workloads/access_stream.h"

namespace cmcp::wl {

/// Where one tenant landed in the composed machine: its core block and its
/// computation-area slice (2 MB-aligned base so every unit size fits).
struct TenantPlacement {
  CoreId first_core = 0;
  CoreId num_cores = 0;
  Vpn area_base_vpn = 0;
  std::uint64_t footprint_base_pages = 0;
};

/// An ordered set of tenant workloads. Tenant i (== asid i) owns cores
/// [placement(i).first_core, +num_cores) and the virtual range starting at
/// placement(i).area_base_vpn. Placements are deterministic functions of the
/// add() order.
class MultiTenantSpec {
 public:
  /// Append a tenant; returns its asid.
  Asid add(std::unique_ptr<Workload> workload);

  std::size_t num_tenants() const { return tenants_.size(); }
  const Workload& tenant(Asid asid) const { return *tenants_[asid]; }

  /// Total app cores across tenants (core blocks are contiguous, in order).
  CoreId total_cores() const;

  /// Combined footprint in base pages (sum of per-tenant footprints).
  std::uint64_t total_footprint_base_pages() const;

  TenantPlacement placement(Asid asid) const;

  /// "cg+bt" style composed name for reports.
  std::string name() const;

 private:
  std::vector<std::unique_ptr<Workload>> tenants_;
};

}  // namespace cmcp::wl
