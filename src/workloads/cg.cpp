#include "workloads/cg.h"

#include <algorithm>

#include "workloads/partition_util.h"

namespace cmcp::wl {

namespace {
constexpr std::uint32_t kDefaultIterations = 8;
constexpr Cycles kDefaultComputePerPage = 20000;  // sparse SpMV: slow on
                                                  // in-order cores

// Deterministic membership for the sparse touched subset of the matrix.
// Sparsity is clustered (bands of populated rows, 32 pages = 128 kB), so a
// touched region occupies whole 64 kB groups — the reason CG keeps
// favouring 64 kB pages under pressure in Fig. 10c.
bool page_touched(Vpn page, std::uint64_t seed, double fraction) {
  std::uint64_t x = (page / 32) * 0x9e3779b97f4a7c15ULL + seed;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < fraction;
}
}  // namespace

CgWorkload::CgWorkload(const CgParams& params) : params_(params) {
  const WorkloadParams& base = params_.base;
  const CoreId n = base.cores;
  const std::uint64_t a_pages = detail::scaled(params_.matrix_pages, base.scale);
  const std::uint64_t x_pages = detail::scaled(params_.x_pages, base.scale);
  const std::uint64_t y_pages = detail::scaled(params_.y_pages, base.scale);
  const std::uint64_t red_pages = params_.reduction_pages;

  const Vpn a_base = 0;
  const Vpn x_base = a_base + a_pages;
  const Vpn y_base = x_base + x_pages;
  const Vpn red_base = y_base + y_pages;
  footprint_ = red_base + red_pages;

  const std::uint32_t iterations =
      base.iterations != 0 ? base.iterations : kDefaultIterations;
  const Cycles cpp =
      base.compute_per_page != 0 ? base.compute_per_page : kDefaultComputePerPage;

  Rng rng(base.seed);
  ScheduleBuilder sb(n, cpp);

  const std::uint64_t x_block = std::max<std::uint64_t>(x_pages / n, 1);
  const std::uint64_t x_halo = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(params_.halo_fraction *
                                 static_cast<double>(x_block)),
      1);

  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    // Row blocks re-balance slightly every iteration: the pages around each
    // boundary end up mapped by two cores (Fig. 6a's 2-core population).
    const auto a_bounds =
        detail::jittered_bounds(a_pages, n, params_.boundary_jitter, rng);
    const auto x_bounds =
        detail::jittered_bounds(x_pages, n, params_.boundary_jitter, rng);
    const auto y_bounds =
        detail::jittered_bounds(y_pages, n, params_.boundary_jitter, rng);

    // SpMV q = A p: stream the touched rows of the own block in order,
    // gathering from the hot x vector (own segment + band halo) as we go.
    for (CoreId c = 0; c < n; ++c) {
      // x gather list: own segment plus halo into both neighbours.
      std::vector<Vpn> x_list;
      const std::uint64_t xb = x_bounds[c];
      const std::uint64_t xe = x_bounds[c + 1];
      for (std::uint64_t p = xb > x_halo ? xb - x_halo : 0;
           p < std::min(xe + x_halo, x_pages); ++p)
        x_list.push_back(x_base + p);
      CMCP_CHECK(!x_list.empty());

      // Touched matrix rows: only the sparse subset of the allocated matrix
      // pages carries nonzeros an iteration visits (the paper attributes
      // CG's tolerance of memory constraint to exactly this sparsity).
      std::vector<Vpn> a_list;
      for (std::uint64_t p = a_bounds[c]; p < a_bounds[c + 1]; ++p)
        if (page_touched(p, base.seed, params_.matrix_touched_fraction))
          a_list.push_back(a_base + p);

      // Interleave: cycle the x gather list roughly twice per SpMV.
      const std::size_t x_every = std::max<std::size_t>(
          a_list.size() / (2 * x_list.size() + 1), 1);
      std::size_t xi = 0;
      for (std::size_t i = 0; i < a_list.size(); ++i) {
        sb.touch_page_compute(c, a_list[i], /*write=*/false);
        if (i % x_every == 0) {
          sb.touch_page_compute(c, x_list[xi % x_list.size()],
                                /*write=*/false, /*repeat=*/2);
          ++xi;
        }
      }
      // Write the own slice of q.
      sb.touch(c, y_base + y_bounds[c], y_bounds[c + 1] - y_bounds[c],
               /*write=*/true, /*repeat=*/1);
    }
    sb.barrier_all();

    // Dot products: re-read own q slice, reduce into the global pages.
    for (CoreId c = 0; c < n; ++c) {
      sb.touch(c, y_base + y_bounds[c], y_bounds[c + 1] - y_bounds[c],
               /*write=*/false, /*repeat=*/1);
      sb.touch(c, red_base, red_pages, /*write=*/true, /*repeat=*/1);
    }
    sb.barrier_all();

    // axpy updates of p/x: write own segment.
    for (CoreId c = 0; c < n; ++c) {
      sb.touch(c, x_base + x_bounds[c], x_bounds[c + 1] - x_bounds[c],
               /*write=*/true, /*repeat=*/1);
    }
    sb.barrier_all();
  }

  schedules_ = sb.finish();
}

std::unique_ptr<AccessStream> CgWorkload::make_stream(CoreId core) const {
  CMCP_CHECK(core < schedules_.size());
  return std::make_unique<VectorStream>(schedules_[core]);
}

}  // namespace cmcp::wl
