// NPB LU analogue: SSOR wavefront sweeps over a 3D grid.
//
// Each iteration performs a lower and an upper triangular sweep plane by
// plane (barrier-separated wavefront steps). The two sweeps decompose the
// planes along offset boundaries and exchange deeper halos, so pages spread
// over more cores than CG's (paper Fig. 6b: less regular, majority of pages
// still mapped by <= 3 cores, tail reaching ~6).
#pragma once

#include "common/rng.h"
#include "workloads/schedule_builder.h"

namespace cmcp::wl {

struct LuParams {
  WorkloadParams base;
  std::uint64_t u_pages = 12000;     ///< solution array (at scale 1)
  std::uint64_t rsd_pages = 9000;    ///< residual array
  std::uint64_t flux_pages = 3000;   ///< flux scratch
  std::uint32_t planes = 12;         ///< wavefront steps per sweep
  double boundary_jitter = 0.10;
  double halo_fraction = 0.12;
  /// Fraction of each block's segments processed by a displaced core in the
  /// upper sweep (cross decomposition, see partition_util.h).
  double exchange_fraction = 0.35;
};

class LuWorkload final : public Workload {
 public:
  explicit LuWorkload(const LuParams& params);

  std::string_view name() const override { return "lu"; }
  CoreId num_cores() const override { return params_.base.cores; }
  std::uint64_t footprint_base_pages() const override { return footprint_; }
  std::unique_ptr<AccessStream> make_stream(CoreId core) const override;

 private:
  LuParams params_;
  std::uint64_t footprint_ = 0;
  std::vector<std::shared_ptr<const std::vector<Op>>> schedules_;
};

}  // namespace cmcp::wl
