#include "workloads/access_stream.h"

// Interface + VectorStream are header-only; this TU anchors the vtables.
