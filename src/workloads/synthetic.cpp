#include "workloads/synthetic.h"

#include "workloads/partition_util.h"

namespace cmcp::wl {

UniformWorkload::UniformWorkload(const UniformParams& params) : params_(params) {
  const CoreId n = params_.base.cores;
  ScheduleBuilder sb(n, params_.base.compute_per_page);
  Rng rng(params_.base.seed);
  for (CoreId c = 0; c < n; ++c) {
    Rng core_rng(rng.next());
    for (std::uint64_t t = 0; t < params_.touches_per_core; ++t) {
      sb.touch_page(c, core_rng.next_below(params_.pages),
                    /*write=*/(core_rng.next() & 1) != 0);
    }
  }
  schedules_ = sb.finish();
}

std::unique_ptr<AccessStream> UniformWorkload::make_stream(CoreId core) const {
  CMCP_CHECK(core < schedules_.size());
  return std::make_unique<VectorStream>(schedules_[core]);
}

HotColdWorkload::HotColdWorkload(const HotColdParams& params) : params_(params) {
  const CoreId n = params_.base.cores;
  ScheduleBuilder sb(n, params_.base.compute_per_page);
  const Vpn hot_base = 0;
  const Vpn cold_base = params_.hot_pages;
  const std::uint64_t shared_hot = static_cast<std::uint64_t>(
      params_.shared_hot_fraction * static_cast<double>(params_.hot_pages));

  for (std::uint32_t round = 0; round < params_.rounds; ++round) {
    for (CoreId c = 0; c < n; ++c) {
      // Globally shared slice of the hot region.
      if (shared_hot > 0)
        sb.touch(c, hot_base, shared_hot, /*write=*/false, params_.hot_repeat);
      // Private hot block.
      const auto hot = block_partition(params_.hot_pages - shared_hot, n, c);
      if (hot.size() > 0)
        sb.touch(c, hot_base + shared_hot + hot.begin, hot.size(),
                 /*write=*/true, params_.hot_repeat);
      // Cold private stream.
      const auto cold = block_partition(params_.cold_pages, n, c);
      if (cold.size() > 0)
        sb.touch(c, cold_base + cold.begin, cold.size(), /*write=*/false, 1);
    }
    sb.barrier_all();
  }
  schedules_ = sb.finish();
}

std::unique_ptr<AccessStream> HotColdWorkload::make_stream(CoreId core) const {
  CMCP_CHECK(core < schedules_.size());
  return std::make_unique<VectorStream>(schedules_[core]);
}

AdversarialWorkload::AdversarialWorkload(const AdversarialParams& params)
    : params_(params) {
  const CoreId n = params_.base.cores;
  ScheduleBuilder sb(n, params_.base.compute_per_page);
  const Vpn shared_base = 0;
  const Vpn private_base = params_.dead_shared_pages;

  // Phase 1: every core reads the whole shared region once — every page
  // ends up with a maximal core-map count and is then never used again.
  for (CoreId c = 0; c < n; ++c)
    sb.touch(c, shared_base, params_.dead_shared_pages, /*write=*/false, 1);
  sb.barrier_all();

  // Phase 2: hot private working sets, repeatedly.
  for (std::uint32_t round = 0; round < params_.rounds; ++round) {
    for (CoreId c = 0; c < n; ++c) {
      const Vpn base =
          private_base + static_cast<Vpn>(c) * params_.private_pages_per_core;
      sb.touch(c, base, params_.private_pages_per_core, /*write=*/true,
               params_.private_repeat);
    }
    sb.barrier_all();
  }
  schedules_ = sb.finish();
}

std::unique_ptr<AccessStream> AdversarialWorkload::make_stream(CoreId core) const {
  CMCP_CHECK(core < schedules_.size());
  return std::make_unique<VectorStream>(schedules_[core]);
}

}  // namespace cmcp::wl
