// NPB BT analogue: block-tridiagonal solves along the x, y and z directions
// each iteration.
//
// The three directional solves decompose the same arrays along three
// different axes, so with row-major storage a page is owned by a different
// core in each phase — BT's sharing distribution is the flattest of the
// four workloads (paper Fig. 6c: pages spread up to ~8 cores, majority
// still <= 3).
#pragma once

#include "common/rng.h"
#include "workloads/schedule_builder.h"

namespace cmcp::wl {

struct BtParams {
  WorkloadParams base;
  std::uint64_t u_pages = 9000;    ///< solution (at scale 1)
  std::uint64_t rhs_pages = 9000;  ///< right-hand side
  std::uint64_t lhs_pages = 7000;  ///< factored block systems
  double boundary_jitter = 0.08;
  double halo_fraction = 0.12;
  /// Fraction of each block's segments processed by a displaced core in the
  /// y/z-direction solves (see partition_util.h, ExchangeConfig).
  double exchange_fraction = 0.30;
};

class BtWorkload final : public Workload {
 public:
  explicit BtWorkload(const BtParams& params);

  std::string_view name() const override { return "bt"; }
  CoreId num_cores() const override { return params_.base.cores; }
  std::uint64_t footprint_base_pages() const override { return footprint_; }
  std::unique_ptr<AccessStream> make_stream(CoreId core) const override;

 private:
  BtParams params_;
  std::uint64_t footprint_ = 0;
  std::vector<std::shared_ptr<const std::vector<Op>>> schedules_;
};

}  // namespace cmcp::wl
