// Shared partitioning helpers for the workload generators.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "common/types.h"
#include "workloads/schedule_builder.h"

namespace cmcp::wl::detail {

/// Block-partition boundaries over [0, total) with per-call jitter: boundary
/// i moves by up to +/- jitter_frac * block around its nominal position.
/// Models run-to-run re-balancing of loop iterations onto threads, the
/// mechanism that spreads block-boundary pages over neighbouring cores.
inline std::vector<std::uint64_t> jittered_bounds(std::uint64_t total, CoreId cores,
                                                  double jitter_frac, Rng& rng) {
  CMCP_CHECK(cores > 0);
  std::vector<std::uint64_t> bounds(cores + 1);
  bounds[0] = 0;
  bounds[cores] = total;
  const double block = static_cast<double>(total) / cores;
  const auto jitter = static_cast<std::int64_t>(jitter_frac * block);
  for (CoreId i = 1; i < cores; ++i) {
    const auto nominal = static_cast<std::int64_t>(block * i);
    std::int64_t b = nominal;
    if (jitter > 0)
      b += static_cast<std::int64_t>(rng.next_range(0, 2 * jitter)) - jitter;
    bounds[i] = static_cast<std::uint64_t>(std::clamp<std::int64_t>(
        b, 1, static_cast<std::int64_t>(total) - 1));
  }
  // Jitter can reorder adjacent boundaries at tiny blocks; restore order.
  std::sort(bounds.begin(), bounds.end());
  return bounds;
}

/// Same partition with every boundary shifted by `shift` pages (wrapping is
/// clamped): used to model phases that decompose the same array along a
/// different axis (LU's second sweep, BT's per-direction solves).
inline std::vector<std::uint64_t> shifted_bounds(std::uint64_t total, CoreId cores,
                                                 std::uint64_t shift, double jitter_frac,
                                                 Rng& rng) {
  std::vector<std::uint64_t> bounds = jittered_bounds(total, cores, jitter_frac, rng);
  for (CoreId i = 1; i < cores; ++i)
    bounds[i] = std::min(bounds[i] + shift, total - 1);
  std::sort(bounds.begin(), bounds.end());
  return bounds;
}

/// Touch a core's block [bounds[core], bounds[core+1]) of a region rooted at
/// `region_base`, plus `halo` pages into each neighbouring block. Halo pages
/// carry their own repeat count: boundary data is typically consulted more
/// than once per sweep.
inline void touch_block_with_halo(ScheduleBuilder& sb, CoreId core,
                                  const std::vector<std::uint64_t>& bounds,
                                  Vpn region_base, std::uint64_t halo, bool write,
                                  std::uint16_t repeat,
                                  std::uint16_t halo_repeat = 0) {
  if (halo_repeat == 0) halo_repeat = repeat;
  const std::uint64_t begin = bounds[core];
  const std::uint64_t end = bounds[core + 1];
  if (halo > 0 && begin > 0) {
    // Left halo (tail of the previous block) read before the sweep.
    const std::uint64_t h = std::min(halo, begin);
    sb.touch(core, region_base + begin - h, h, /*write=*/false, halo_repeat);
  }
  if (end > begin) sb.touch(core, region_base + begin, end - begin, write, repeat);
  if (halo > 0) {
    // Right halo (head of the next block) read after reaching the boundary.
    const std::uint64_t total = bounds.back();
    if (end < total) {
      const std::uint64_t h = std::min(halo, total - end);
      sb.touch(core, region_base + end, h, /*write=*/false, halo_repeat);
    }
  }
}

/// Segmented exchange partition: the region is cut into fixed segments;
/// most stay with their nominal block owner, but a deterministic fraction is
/// processed by a core 1..max_distance blocks away. This models solves that
/// decompose the same array along a different axis than the memory layout
/// (BT's directional solves, LU's upper sweep): block interiors stay mostly
/// private while exchanged segments give pages 2-4 mapping cores, producing
/// the heavy-tailed sharing distributions of Fig. 6b/6c.
struct ExchangeConfig {
  std::uint64_t segment_pages = 16;
  double exchange_fraction = 0.30;
  unsigned max_distance = 3;
  std::uint64_t phase_seed = 0;
};

inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Owner core of segment `seg` (segment index within the region).
inline CoreId exchange_owner(std::uint64_t seg, std::uint64_t total_segments,
                             CoreId cores, const ExchangeConfig& cfg) {
  const CoreId nominal = static_cast<CoreId>(
      std::min<std::uint64_t>(seg * cores / std::max<std::uint64_t>(total_segments, 1),
                              cores - 1));
  const std::uint64_t h = mix64(seg * 0x2545f4914f6cdd1dULL + cfg.phase_seed);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= cfg.exchange_fraction || cores < 2) return nominal;
  const unsigned d = 1 + static_cast<unsigned>(mix64(h) % cfg.max_distance);
  return static_cast<CoreId>((nominal + d) % cores);
}

/// Collect core `core`'s segments of a region under an exchange partition,
/// as (first_page, num_pages) runs in sweep order.
inline std::vector<std::pair<Vpn, std::uint64_t>> exchange_runs(
    std::uint64_t region_pages, CoreId cores, CoreId core,
    const ExchangeConfig& cfg) {
  std::vector<std::pair<Vpn, std::uint64_t>> runs;
  const std::uint64_t seg_pages = std::max<std::uint64_t>(cfg.segment_pages, 1);
  const std::uint64_t total_segments = (region_pages + seg_pages - 1) / seg_pages;
  for (std::uint64_t seg = 0; seg < total_segments; ++seg) {
    if (exchange_owner(seg, total_segments, cores, cfg) != core) continue;
    const Vpn first = seg * seg_pages;
    const std::uint64_t len = std::min(seg_pages, region_pages - first);
    if (!runs.empty() && runs.back().first + runs.back().second == first)
      runs.back().second += len;  // merge adjacent segments
    else
      runs.emplace_back(first, len);
  }
  return runs;
}

inline std::uint64_t scaled(std::uint64_t pages, double scale) {
  const auto v = static_cast<std::uint64_t>(static_cast<double>(pages) * scale);
  return std::max<std::uint64_t>(v, 1);
}

}  // namespace cmcp::wl::detail
