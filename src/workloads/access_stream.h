// Workload abstraction: each simulated core pulls a stream of operations —
// page references (optionally strided ranges), pure-compute intervals, and
// barriers. The replacement policies only ever observe the reference
// streams, so reproducing the paper's workloads means reproducing the
// *structure* of their per-core page footprints (Fig. 6), not their FLOPs.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace cmcp::wl {

enum class OpKind : std::uint8_t {
  kAccess,   ///< reference `count` consecutive base pages starting at vpn
  kCompute,  ///< advance the core clock by `cycles`
  kBarrier,  ///< wait for all cores
  kSyscall,  ///< offload a system call to the host (IHK model): the core
             ///< blocks for the IKC round trip + `cycles` of host service
             ///< + a `count`-byte payload transfer
  kEnd,      ///< stream exhausted (returned forever afterwards)
};

struct Op {
  OpKind kind = OpKind::kEnd;
  Vpn vpn = 0;               ///< kAccess: first base page
  std::uint32_t count = 1;   ///< kAccess: number of consecutive base pages
  std::uint32_t stride = 1;  ///< kAccess: base-page stride between references
  std::uint16_t repeat = 1;  ///< kAccess: references per touched page
  bool write = false;        ///< kAccess: read or write
  Cycles cycles = 0;         ///< kCompute; for kAccess: compute per page
                             ///< (the engine advances the clock by `cycles`
                             ///< after each page's references, modelling the
                             ///< arithmetic done on that page's data)

  static Op access(Vpn vpn, bool write = false, std::uint32_t count = 1,
                   std::uint16_t repeat = 1, Cycles compute_per_page = 0,
                   std::uint32_t stride = 1) {
    return Op{.kind = OpKind::kAccess,
              .vpn = vpn,
              .count = count,
              .stride = stride,
              .repeat = repeat,
              .write = write,
              .cycles = compute_per_page};
  }
  static Op compute(Cycles cycles) {
    return Op{.kind = OpKind::kCompute, .cycles = cycles};
  }
  static Op barrier() { return Op{.kind = OpKind::kBarrier}; }
  static Op syscall(Cycles host_service_cycles, std::uint32_t payload_bytes = 0) {
    return Op{.kind = OpKind::kSyscall,
              .count = payload_bytes,
              .cycles = host_service_cycles};
  }
  static Op end() { return Op{.kind = OpKind::kEnd}; }
};

class AccessStream {
 public:
  virtual ~AccessStream() = default;

  /// Next operation for this core. Must return kEnd forever once exhausted.
  virtual Op next() = 0;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string_view name() const = 0;

  /// Cores participating (streams exist for exactly [0, num_cores)).
  virtual CoreId num_cores() const = 0;

  /// Computation-area footprint in 4 kB base pages (before unit rounding).
  virtual std::uint64_t footprint_base_pages() const = 0;

  virtual std::unique_ptr<AccessStream> make_stream(CoreId core) const = 0;
};

/// Replays a fixed per-core schedule. Workload generators precompute their
/// (compact, op-level) schedules once; streams then replay them per core.
class VectorStream final : public AccessStream {
 public:
  explicit VectorStream(std::shared_ptr<const std::vector<Op>> ops)
      : ops_(std::move(ops)) {}

  Op next() override {
    if (pos_ >= ops_->size()) return Op::end();
    return (*ops_)[pos_++];
  }

 private:
  std::shared_ptr<const std::vector<Op>> ops_;
  std::size_t pos_ = 0;
};

}  // namespace cmcp::wl
