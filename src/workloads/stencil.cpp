#include "workloads/stencil.h"

#include <algorithm>

#include "workloads/partition_util.h"

namespace cmcp::wl {

namespace {
constexpr std::uint32_t kDefaultIterations = 6;
constexpr Cycles kDefaultComputePerPage = 13000;

// Deterministic membership for the touched subset of a field. Clustered in
// 16-page (64 kB) runs: untouched vertical levels are contiguous, so 64 kB
// groups are either fully active or fully idle (Fig. 10d's behaviour).
bool page_touched(Vpn page, std::uint64_t seed, double fraction) {
  std::uint64_t x = (page / 16) * 0xd1342543de82ef95ULL + seed;
  x ^= x >> 29;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 32;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < fraction;
}
}  // namespace

StencilWorkload::StencilWorkload(const StencilParams& params) : params_(params) {
  const WorkloadParams& base = params_.base;
  const CoreId n = base.cores;
  const std::uint32_t fields = std::max<std::uint32_t>(params_.fields, 1);
  const std::uint64_t field_pages = detail::scaled(params_.field_pages, base.scale);
  const std::uint64_t global_pages = params_.global_pages;

  footprint_ = static_cast<std::uint64_t>(fields) * field_pages + global_pages;
  const Vpn globals_base = static_cast<Vpn>(fields) * field_pages;

  const std::uint32_t iterations =
      base.iterations != 0 ? base.iterations : kDefaultIterations;
  const Cycles cpp =
      base.compute_per_page != 0 ? base.compute_per_page : kDefaultComputePerPage;

  Rng rng(base.seed);
  ScheduleBuilder sb(n, cpp);

  for (std::uint32_t step = 0; step < iterations; ++step) {
    // Dynamics: sweep the touched columns of every field, re-reading the
    // neighbour halo strips throughout the sweep (depth-2 stencil).
    for (std::uint32_t f = 0; f < fields; ++f) {
      const Vpn field_base = static_cast<Vpn>(f) * field_pages;
      const auto bounds =
          detail::jittered_bounds(field_pages, n, params_.boundary_jitter, rng);
      const std::uint64_t halo = std::max<std::uint64_t>(
          static_cast<std::uint64_t>(params_.halo_fraction *
                                     static_cast<double>(field_pages) / n),
          1);
      for (CoreId c = 0; c < n; ++c) {
        // Halo page list: tails of both neighbouring strips.
        std::vector<Vpn> halo_list;
        const std::uint64_t bb = bounds[c];
        const std::uint64_t be = bounds[c + 1];
        for (std::uint64_t h = 0; h < std::min(halo, bb); ++h)
          halo_list.push_back(field_base + bb - 1 - h);
        for (std::uint64_t h = 0; h < std::min(halo, field_pages - be); ++h)
          halo_list.push_back(field_base + be + h);

        // Touched columns of the own strip, in sweep order.
        std::vector<Vpn> own;
        for (std::uint64_t p = bb; p < be; ++p)
          if (page_touched(p + f * field_pages, base.seed,
                           params_.field_touched_fraction))
            own.push_back(field_base + p);

        const std::size_t halo_every =
            halo_list.empty()
                ? own.size() + 1
                : std::max<std::size_t>(own.size() / (2 * halo_list.size() + 1),
                                        1);
        std::size_t hi = 0;
        for (std::size_t i = 0; i < own.size(); ++i) {
          // Gather + update in place: read-modify-write of the column.
          sb.touch_page_compute(c, own[i], /*write=*/true, /*repeat=*/2);
          if (i % halo_every == 0 && !halo_list.empty()) {
            sb.touch_page_compute(c, halo_list[hi % halo_list.size()],
                                  /*write=*/false, /*repeat=*/2);
            ++hi;
          }
        }
      }
      sb.barrier_all();  // halo exchange point
    }
    // Diagnostics: global reductions touch the shared pages on every core.
    for (CoreId c = 0; c < n; ++c)
      sb.touch(c, globals_base, global_pages, /*write=*/true, /*repeat=*/1);
    // History output: offloaded write(2) calls through IHK's IKC channel.
    if (params_.io_bytes_per_step > 0) {
      for (CoreId c = 0; c < n; ++c)
        sb.push_op(c, Op::syscall(params_.io_host_service_cycles,
                                  params_.io_bytes_per_step));
    }
    sb.barrier_all();
  }

  schedules_ = sb.finish();
}

std::unique_ptr<AccessStream> StencilWorkload::make_stream(CoreId core) const {
  CMCP_CHECK(core < schedules_.size());
  return std::make_unique<VectorStream>(schedules_[core]);
}

}  // namespace cmcp::wl
