// Construction of the paper's four evaluation workloads by name, in the two
// sizes the paper uses (small: NPB class B / SCALE 512 MB; big: class C /
// SCALE 1.2 GB).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "workloads/access_stream.h"
#include "workloads/schedule_builder.h"

namespace cmcp::wl {

enum class PaperWorkload : std::uint8_t { kCg, kLu, kBt, kScale };

constexpr std::string_view to_string(PaperWorkload w) {
  switch (w) {
    case PaperWorkload::kCg: return "cg";
    case PaperWorkload::kLu: return "lu";
    case PaperWorkload::kBt: return "bt";
    case PaperWorkload::kScale: return "scale";
  }
  return "?";
}

inline constexpr PaperWorkload kAllPaperWorkloads[] = {
    PaperWorkload::kBt, PaperWorkload::kLu, PaperWorkload::kCg,
    PaperWorkload::kScale};

enum class WorkloadSize : std::uint8_t {
  kSmall,  ///< cg.B / lu.B / bt.B / SCALE (sml)
  kBig,    ///< cg.C / lu.C / bt.C / SCALE (big)
};

constexpr std::string_view size_suffix(WorkloadSize s) {
  return s == WorkloadSize::kSmall ? "B" : "C";
}

/// The memory fraction the paper applies per workload so that PSPT+FIFO
/// lands at 50-60% of the no-data-movement run (section 5.4): BT 64%,
/// LU 66%, CG 37%, SCALE ~50%.
double paper_memory_fraction(PaperWorkload w);

/// The best prioritized-page ratio per workload from our Fig. 9 sweep —
/// matching the paper's observation that CG favours a low ratio while LU
/// and SCALE favour high ones (section 5.6).
double paper_best_p(PaperWorkload w);

std::unique_ptr<Workload> make_paper_workload(PaperWorkload which,
                                              const WorkloadParams& base,
                                              WorkloadSize size = WorkloadSize::kSmall);

}  // namespace cmcp::wl
