// Trace record / replay.
//
// Any workload's per-core op schedules can be serialized to a compact text
// format and replayed later — so downstream users can drive the simulator
// with traces captured from their own applications (e.g. via a PIN/DynamoRIO
// pass reduced to page granularity) instead of the built-in generators.
//
// Format (line-oriented, '#' comments):
//   cmcp-trace v1
//   cores <N>
//   pages <footprint-base-pages>
//   core <id>
//   a <vpn> <count> <stride> <repeat> <w|r> <compute>   # access
//   c <cycles>                                          # compute
//   b                                                   # barrier
//   s <host-cycles> <payload-bytes>                     # offloaded syscall
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "workloads/access_stream.h"

namespace cmcp::wl {

/// Serialize a workload's full schedule.
void write_trace(const Workload& workload, std::ostream& os);
void save_trace(const Workload& workload, const std::string& path);

/// A workload replayed from a trace.
class TraceWorkload final : public Workload {
 public:
  /// Parse from a stream; aborts (CMCP_CHECK) on malformed input.
  static std::unique_ptr<TraceWorkload> parse(std::istream& is);
  static std::unique_ptr<TraceWorkload> load(const std::string& path);

  std::string_view name() const override { return "trace"; }
  CoreId num_cores() const override { return static_cast<CoreId>(schedules_.size()); }
  std::uint64_t footprint_base_pages() const override { return pages_; }
  std::unique_ptr<AccessStream> make_stream(CoreId core) const override;

 private:
  TraceWorkload() = default;

  std::uint64_t pages_ = 0;
  std::vector<std::shared_ptr<const std::vector<Op>>> schedules_;
};

}  // namespace cmcp::wl
