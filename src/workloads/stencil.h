// SCALE analogue: RIKEN's climate/weather stencil code — multiple field
// arrays over a horizontal grid with depth-2 halo exchange between
// neighbouring domain strips.
//
// Sharing profile (paper Fig. 6d): the strictest of the four — well over
// half the pages are core-private and essentially all the rest are shared by
// exactly two neighbouring cores, with a handful of globally shared pages
// (reductions, boundary conditions).
#pragma once

#include "common/rng.h"
#include "workloads/schedule_builder.h"

namespace cmcp::wl {

struct StencilParams {
  WorkloadParams base;
  std::uint32_t fields = 8;           ///< prognostic/diagnostic field arrays
  std::uint64_t field_pages = 3000;   ///< pages per field (at scale 1)
  std::uint64_t global_pages = 16;    ///< globally shared pages
  /// Fraction of each field's pages a time step visits (vertical-level
  /// padding and diagnostic-only levels stay untouched — this is why SCALE
  /// tolerates constraint down to ~55%, paper Fig. 8).
  double field_touched_fraction = 0.58;
  double halo_fraction = 0.16;        ///< depth-2 halo as block fraction
  double boundary_jitter = 0.02;      ///< static decomposition: tiny drift
  /// Per-core bytes written to the host filesystem per time step (history
  /// output). Issued as offloaded system calls (IHK model); 0 disables.
  std::uint32_t io_bytes_per_step = 0;
  Cycles io_host_service_cycles = 50000;  ///< host-side write(2) service time
};

class StencilWorkload final : public Workload {
 public:
  explicit StencilWorkload(const StencilParams& params);

  std::string_view name() const override { return "scale"; }
  CoreId num_cores() const override { return params_.base.cores; }
  std::uint64_t footprint_base_pages() const override { return footprint_; }
  std::unique_ptr<AccessStream> make_stream(CoreId core) const override;

 private:
  StencilParams params_;
  std::uint64_t footprint_ = 0;
  std::vector<std::shared_ptr<const std::vector<Op>>> schedules_;
};

}  // namespace cmcp::wl
