#include "workloads/multi_tenant.h"

#include "common/assert.h"

namespace cmcp::wl {

namespace {

/// 2 MB units are 512 base pages; aligning every tenant's base to that keeps
/// all page-size classes valid regardless of the machine configuration.
constexpr Vpn kAreaAlign = 512;

Vpn align_up(Vpn v) { return (v + kAreaAlign - 1) & ~(kAreaAlign - 1); }

}  // namespace

Asid MultiTenantSpec::add(std::unique_ptr<Workload> workload) {
  CMCP_CHECK(workload != nullptr);
  CMCP_CHECK(workload->num_cores() > 0);
  tenants_.push_back(std::move(workload));
  return static_cast<Asid>(tenants_.size() - 1);
}

CoreId MultiTenantSpec::total_cores() const {
  CoreId total = 0;
  for (const auto& t : tenants_) total += t->num_cores();
  return total;
}

std::uint64_t MultiTenantSpec::total_footprint_base_pages() const {
  std::uint64_t total = 0;
  for (const auto& t : tenants_) total += t->footprint_base_pages();
  return total;
}

TenantPlacement MultiTenantSpec::placement(Asid asid) const {
  CMCP_CHECK(asid < tenants_.size());
  TenantPlacement p;
  Vpn base = 0;
  for (Asid i = 0; i <= asid; ++i) {
    p.first_core += i == 0 ? 0 : tenants_[i - 1]->num_cores();
    p.area_base_vpn = base;
    base = align_up(base + tenants_[i]->footprint_base_pages());
  }
  p.num_cores = tenants_[asid]->num_cores();
  p.footprint_base_pages = tenants_[asid]->footprint_base_pages();
  return p;
}

std::string MultiTenantSpec::name() const {
  std::string out;
  for (const auto& t : tenants_) {
    if (!out.empty()) out += '+';
    out += t->name();
  }
  return out;
}

}  // namespace cmcp::wl
