#include "workloads/bt.h"

#include <algorithm>
#include <utility>

#include "workloads/partition_util.h"

namespace cmcp::wl {

namespace {
constexpr std::uint32_t kDefaultIterations = 5;
constexpr Cycles kDefaultComputePerPage = 34000;
constexpr std::uint64_t kInterleaveChunk = 8;  // pages per region per step
}  // namespace

BtWorkload::BtWorkload(const BtParams& params) : params_(params) {
  const WorkloadParams& base = params_.base;
  const CoreId n = base.cores;
  const std::uint64_t u_pages = detail::scaled(params_.u_pages, base.scale);
  const std::uint64_t rhs_pages = detail::scaled(params_.rhs_pages, base.scale);
  const std::uint64_t lhs_pages = detail::scaled(params_.lhs_pages, base.scale);

  const Vpn u_base = 0;
  const Vpn rhs_base = u_base + u_pages;
  const Vpn lhs_base = rhs_base + rhs_pages;
  footprint_ = lhs_base + lhs_pages;

  const std::uint32_t iterations =
      base.iterations != 0 ? base.iterations : kDefaultIterations;
  const Cycles cpp =
      base.compute_per_page != 0 ? base.compute_per_page : kDefaultComputePerPage;

  Rng rng(base.seed);
  ScheduleBuilder sb(n, cpp);

  struct Region {
    Vpn vbase;
    std::uint64_t pages;
    bool write;
  };

  // One phase: walk the listed arrays together, chunk-interleaved (a line
  // solve reads u and the factored lhs while updating rhs in place).
  //
  // phase_seed == 0 decomposes along the memory layout (jittered blocks).
  // Other seeds model the y/z-direction solves, which decompose the same 3D
  // arrays along a different axis: a fraction of each block's segments is
  // processed by a core 1-3 blocks away (see ExchangeConfig). Interiors stay
  // private; exchanged segments and halos give pages 2-6 mapping cores —
  // BT's flat-tailed distribution in Fig. 6c.
  const auto solve_phase = [&](std::initializer_list<Region> regions,
                               std::uint64_t phase_seed) {
    // Nominal bounds (for halo placement) are jittered per call.
    std::vector<std::vector<std::uint64_t>> nominal;
    for (const Region& r : regions)
      nominal.push_back(
          detail::jittered_bounds(r.pages, n, params_.boundary_jitter, rng));

    for (CoreId c = 0; c < n; ++c) {
      struct Cursor {
        Region region;
        std::vector<std::pair<Vpn, std::uint64_t>> runs;
        std::size_t run = 0;
        std::uint64_t off = 0;
        std::uint64_t halo_base = 0;  ///< first page of the right halo
        std::uint64_t halo = 0;
      };
      std::vector<Cursor> cursors;
      std::size_t ri = 0;
      for (const Region& r : regions) {
        Cursor cur;
        cur.region = r;
        const auto& bounds = nominal[ri++];
        const std::uint64_t block = std::max<std::uint64_t>(r.pages / n, 1);
        cur.halo = static_cast<std::uint64_t>(
            params_.halo_fraction * static_cast<double>(block));
        cur.halo_base = bounds[c + 1];
        if (phase_seed == 0) {
          cur.runs.emplace_back(bounds[c], bounds[c + 1] - bounds[c]);
        } else {
          detail::ExchangeConfig cfg;
          cfg.exchange_fraction = params_.exchange_fraction;
          cfg.phase_seed = phase_seed * 0x9e3779b97f4a7c15ULL + base.seed;
          cur.runs = detail::exchange_runs(r.pages, n, c, cfg);
        }
        // Halo reads ahead of the sweep: boundary strips of the
        // neighbouring nominal blocks.
        if (cur.halo > 0) {
          if (bounds[c] > 0) {
            const std::uint64_t h = std::min(cur.halo, bounds[c]);
            sb.touch(c, r.vbase + bounds[c] - h, h, false, 1);
          }
          if (bounds[c + 1] < r.pages) {
            const std::uint64_t h = std::min(cur.halo, r.pages - bounds[c + 1]);
            sb.touch(c, r.vbase + bounds[c + 1], h, false, 1);
          }
        }
        cursors.push_back(std::move(cur));
      }

      // Chunk-interleaved sweep across the arrays.
      bool more = true;
      std::uint32_t step = 0;
      while (more) {
        more = false;
        for (Cursor& cur : cursors) {
          if (cur.run >= cur.runs.size()) continue;
          const auto [first, len] = cur.runs[cur.run];
          const std::uint64_t todo =
              std::min(kInterleaveChunk, len - cur.off);
          sb.touch(c, cur.region.vbase + first + cur.off, todo,
                   cur.region.write, 1);
          cur.off += todo;
          if (cur.off >= len) {
            ++cur.run;
            cur.off = 0;
          }
          if (cur.run < cur.runs.size()) more = true;
        }
        // Periodic mid-sweep halo re-reads (boundary coupling terms are
        // consulted throughout a line solve), rotating over the halo band.
        if (++step % 4 == 0) {
          for (const Cursor& cur : cursors) {
            if (cur.halo == 0 || cur.halo_base >= cur.region.pages) continue;
            const std::uint64_t off = (step / 4) % cur.halo;
            if (cur.halo_base + off < cur.region.pages)
              sb.touch_page_compute(c, cur.region.vbase + cur.halo_base + off,
                                    false);
          }
        }
      }
    }
    sb.barrier_all();
  };

  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    // compute_rhs: u -> rhs along the memory layout.
    solve_phase(
        {Region{u_base, u_pages, false}, Region{rhs_base, rhs_pages, true}}, 0);
    // x / y / z solves: all three arrays; y and z decompose across the
    // layout (exchange partitions with fixed per-direction seeds, so the
    // owner sets are stable across iterations).
    for (std::uint64_t phase = 1; phase <= 3; ++phase) {
      solve_phase({Region{lhs_base, lhs_pages, true},
                   Region{rhs_base, rhs_pages, true},
                   Region{u_base, u_pages, false}},
                  phase);
    }
    // add: u += rhs.
    solve_phase(
        {Region{u_base, u_pages, true}, Region{rhs_base, rhs_pages, false}}, 0);
  }

  schedules_ = sb.finish();
}

std::unique_ptr<AccessStream> BtWorkload::make_stream(CoreId core) const {
  CMCP_CHECK(core < schedules_.size());
  return std::make_unique<VectorStream>(schedules_[core]);
}

}  // namespace cmcp::wl
