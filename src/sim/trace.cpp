#include "sim/trace.h"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "common/assert.h"

namespace cmcp::sim::trace {

namespace {

/// JSON string escaping (quotes, backslash, control characters).
void append_escaped(std::string& out, std::string_view text) {
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(ch >> 4) & 0xf];
          out += hex[ch & 0xf];
        } else {
          out += ch;
        }
    }
  }
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  append_escaped(out, text);
  out += '"';
  return out;
}

/// Exporter track for an event: PCIe transfers and slot holds live on their
/// dedicated tracks, everything else on the emitting core's track (the
/// scanner pseudo-core id already equals scanner_track()).
unsigned track_of(const EventSink& sink, const Event& event) {
  switch (event.kind) {
    case EventKind::kPcieTransfer:
      return event.a == 0 ? sink.pcie_h2d_track() : sink.pcie_d2h_track();
    case EventKind::kSlotHold:
      return sink.slot_track();
    default:
      return event.core;
  }
}

std::string track_name(const EventSink& sink, unsigned track) {
  if (track < sink.num_app_cores()) return "core " + std::to_string(track);
  if (track >= sink.scanner_track(0) &&
      track < sink.scanner_track(0) + sink.num_spaces()) {
    // One scanner pseudo-core per address space; the single-tenant name is
    // unchanged so schema-1 traces stay byte-identical.
    if (sink.num_spaces() == 1) return "scanner";
    return "scanner asid " + std::to_string(track - sink.scanner_track(0));
  }
  if (track == sink.pcie_h2d_track()) return "pcie host->device";
  if (track == sink.pcie_d2h_track()) return "pcie device->host";
  if (track == sink.slot_track()) return "invalidation slot";
  return "track " + std::to_string(track);
}

void append_args(std::string& out, const Event& event, bool include_asid) {
  const auto names = arg_names(event.kind);
  const std::uint64_t values[3] = {event.a, event.b, event.c};
  out += '{';
  bool first = true;
  if (event.unit != kInvalidUnit) {
    out += "\"unit\":" + std::to_string(event.unit);
    first = false;
  }
  for (int i = 0; i < 3; ++i) {
    if (names[i].empty()) continue;
    if (!first) out += ',';
    first = false;
    out += json_quote(names[i]) + ':' + std::to_string(values[i]);
  }
  // kSlotHold/kPcieTransfer render off their home core; keep it recoverable.
  if (event.kind == EventKind::kPcieTransfer || event.kind == EventKind::kSlotHold) {
    if (!first) out += ',';
    first = false;
    out += "\"core\":" + std::to_string(event.core);
  }
  // Tenant identity, serialized only for multi-tenant sinks so single-tenant
  // traces remain byte-identical to schema 1.
  if (include_asid) {
    if (!first) out += ',';
    out += "\"asid\":" + std::to_string(event.asid);
  }
  out += '}';
}

}  // namespace

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kMinorFault: return "minor_fault";
    case EventKind::kMajorFault: return "major_fault";
    case EventKind::kVictimPick: return "victim_pick";
    case EventKind::kEviction: return "eviction";
    case EventKind::kShootdown: return "shootdown";
    case EventKind::kSlotHold: return "slot_hold";
    case EventKind::kPcieTransfer: return "pcie_transfer";
    case EventKind::kScanPass: return "scan_pass";
    case EventKind::kBarrierWait: return "barrier_wait";
    case EventKind::kFaultInject: return "fault_inject";
    case EventKind::kFaultRetry: return "fault_retry";
    case EventKind::kFaultGiveUp: return "fault_give_up";
    case EventKind::kQuarantine: return "quarantine";
  }
  return "?";
}

std::array<std::string_view, 3> arg_names(EventKind kind) {
  switch (kind) {
    case EventKind::kMinorFault: return {"core_map_count", "prefetch_hit", ""};
    case EventKind::kMajorFault: return {"evicted", "pcie_wait", ""};
    case EventKind::kVictimPick: return {"core_map_count", "", ""};
    case EventKind::kEviction: return {"dirty", "targets", "writeback_bytes"};
    case EventKind::kShootdown: return {"targets", "units", "slot_wait"};
    case EventKind::kSlotHold: return {"targets", "", ""};
    case EventKind::kPcieTransfer: return {"dir", "bytes", "queue_wait"};
    case EventKind::kScanPass: return {"pages", "cleared", "flush_rounds"};
    case EventKind::kBarrierWait: return {"", "", ""};
    // "fault" is a sim::FaultKind ordinal; "detail" is the poisoned pfn for
    // ECC injects and the cost multiplier for straggler windows.
    case EventKind::kFaultInject: return {"fault", "attempt", "detail"};
    case EventKind::kFaultRetry: return {"fault", "attempt", "backoff"};
    case EventKind::kFaultGiveUp: return {"fault", "attempts", ""};
    case EventKind::kQuarantine: return {"pfn", "usable_capacity", ""};
  }
  return {"", "", ""};
}

std::string_view to_string(Format format) {
  return format == Format::kPerfetto ? "perfetto" : "jsonl";
}

bool parse_format(std::string_view text, Format* out) {
  if (text == "perfetto") {
    *out = Format::kPerfetto;
    return true;
  }
  if (text == "jsonl") {
    *out = Format::kJsonl;
    return true;
  }
  return false;
}

namespace {

/// Exporters serialize into this buffer and flush it to the stream in large
/// writes: a paper-scale trace is millions of events, and a stream insertion
/// per event spends more time in ostream bookkeeping (sentry, width/locale
/// handling) than in formatting. Identical bytes, ~order-of-magnitude fewer
/// stream operations.
constexpr std::size_t kExportFlushBytes = 1u << 20;

void flush_if_full(std::string& buffer, std::ostream& os) {
  if (buffer.size() < kExportFlushBytes) return;
  os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  buffer.clear();
}

}  // namespace

void export_perfetto(const EventSink& sink, const Metadata& meta,
                     std::ostream& os) {
  std::string buffer;
  buffer.reserve(kExportFlushBytes + (1u << 10));
  buffer += "{\"traceEvents\":[\n";
  // Thread-name metadata records: one per track, in track order.
  const unsigned tracks = sink.num_app_cores() + sink.num_spaces() + 3;
  const bool multi = sink.num_spaces() > 1;
  for (unsigned t = 0; t < tracks; ++t) {
    buffer += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(t) +
              ",\"name\":\"thread_name\",\"args\":{\"name\":" +
              json_quote(track_name(sink, t)) + "}},\n";
    flush_if_full(buffer, os);
  }
  const auto& events = sink.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    buffer += "{\"ph\":\"X\",\"pid\":1,\"tid\":" +
              std::to_string(track_of(sink, e)) + ",\"name\":" +
              json_quote(to_string(e.kind)) + ",\"ts\":" +
              std::to_string(e.start) + ",\"dur\":" +
              std::to_string(e.duration) + ",\"args\":";
    append_args(buffer, e, multi);
    buffer += '}';
    if (i + 1 != events.size()) buffer += ',';
    buffer += '\n';
    flush_if_full(buffer, os);
  }
  buffer +=
      "],\n\"displayTimeUnit\":\"ms\",\n\"metadata\":{\"clock_unit\":"
      "\"cycles\"";
  for (const auto& [key, value] : meta)
    buffer += ',' + json_quote(key) + ':' + json_quote(value);
  buffer += "}}\n";
  os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
}

void export_jsonl(const EventSink& sink, const Metadata& meta,
                  const Summary& summary, std::ostream& os) {
  std::string buffer;
  buffer.reserve(kExportFlushBytes + (1u << 10));
  const bool multi = sink.num_spaces() > 1;
  buffer +=
      "{\"type\":\"meta\",\"schema\":1,\"clock_unit\":\"cycles\",\"cores\":" +
      std::to_string(sink.num_app_cores());
  // Multi-tenant traces declare the space count; single-tenant meta lines
  // keep the exact schema-1 bytes.
  if (multi) buffer += ",\"spaces\":" + std::to_string(sink.num_spaces());
  buffer += ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : meta) {
    if (!first) buffer += ',';
    first = false;
    buffer += json_quote(key) + ':' + json_quote(value);
  }
  buffer += "}}\n";

  std::array<std::uint64_t, kNumEventKinds> by_kind{};
  for (const Event& e : sink.events()) {
    ++by_kind[static_cast<unsigned>(e.kind)];
    buffer += "{\"type\":\"event\",\"kind\":" + json_quote(to_string(e.kind)) +
              ",\"core\":" + std::to_string(e.core) +
              ",\"ts\":" + std::to_string(e.start) +
              ",\"dur\":" + std::to_string(e.duration) + ",\"args\":";
    append_args(buffer, e, multi);
    buffer += "}\n";
    flush_if_full(buffer, os);
  }

  buffer += "{\"type\":\"summary\",\"events\":" + std::to_string(sink.size()) +
            ",\"by_kind\":{";
  first = true;
  for (unsigned k = 0; k < kNumEventKinds; ++k) {
    if (by_kind[k] == 0) continue;
    if (!first) buffer += ',';
    first = false;
    buffer += json_quote(to_string(static_cast<EventKind>(k))) + ':' +
              std::to_string(by_kind[k]);
  }
  buffer += '}';
  for (const auto& [key, value] : summary)
    buffer += ',' + json_quote(key) + ':' + std::to_string(value);
  buffer += "}\n";
  os.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
}

void write_trace_file(const EventSink& sink, const Metadata& meta,
                      const Summary& summary, Format format,
                      const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::trunc);
  CMCP_CHECK_MSG(out.good(), "cannot open trace output file");
  if (format == Format::kPerfetto)
    export_perfetto(sink, meta, out);
  else
    export_jsonl(sink, meta, summary, out);
}

}  // namespace cmcp::sim::trace
