// The simulated many-core machine: per-core virtual clocks, per-core TLBs,
// per-core counters, the shared PCIe link and the IPI interconnect.
//
// One extra pseudo-core (id == num_cores) represents the dedicated
// hyperthread the paper uses for LRU's access-bit scanner: it has a clock and
// counters but never runs application work, so scanning consumes no
// application compute time — only its shootdowns disturb the app cores.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/core_mask.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "metrics/counters.h"
#include "sim/cost_model.h"
#include "sim/interconnect.h"
#include "sim/pcie_link.h"
#include "sim/tlb.h"
#include "sim/trace.h"

namespace cmcp::sim {

/// How remote TLB entries are invalidated.
enum class TlbCoherence : std::uint8_t {
  /// Software IPIs through the serialized invalidation slot — x86 reality
  /// and the default. Receivers take interrupts; initiators wait for acks.
  kIpiShootdown = 0,
  /// Hypothetical TLB directory hardware (DiDi-style): directed
  /// invalidations at bus cost, no interrupts, no global serialization.
  /// Used by the hardware-vs-software ablation.
  kHardwareDirectory = 1,
};

struct MachineConfig {
  CoreId num_cores = 56;
  PageSizeClass page_size = PageSizeClass::k4K;
  TlbCoherence tlb_coherence = TlbCoherence::kIpiShootdown;
  TlbConfig tlb;
  CostModel cost = CostModel::knc();
  /// Address spaces sharing the machine. Each space owns one scanner
  /// pseudo-core (id == num_cores + asid); the default of 1 is the paper's
  /// single-tenant machine with its lone scanner at id == num_cores.
  unsigned num_address_spaces = 1;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  const CostModel& cost() const { return config_.cost; }
  CoreId num_cores() const { return config_.num_cores; }

  /// Pseudo-core used by the access-bit scanner daemon of address space
  /// `asid` (one dedicated hyperthread per tenant).
  CoreId scanner_core(Asid asid = 0) const { return config_.num_cores + asid; }

  unsigned num_address_spaces() const { return config_.num_address_spaces; }

  /// App cores plus every scanner pseudo-core (valid core ids are
  /// [0, total_cores())).
  CoreId total_cores() const {
    return config_.num_cores + config_.num_address_spaces;
  }

  /// Which address space a core (app or scanner pseudo-core) belongs to.
  /// All-zero until set_core_space() assigns tenant core sets.
  Asid space_of_core(CoreId core) const { return core_space_[core]; }
  void set_core_space(CoreId core, Asid asid) { core_space_[core] = asid; }

  Cycles clock(CoreId core) const { return clocks_[core]; }
  void advance(CoreId core, Cycles amount) { clocks_[core] += amount; }
  void set_clock(CoreId core, Cycles value) { clocks_[core] = value; }

  Tlb& tlb(CoreId core) { return tlbs_[core]; }
  const Tlb& tlb(CoreId core) const { return tlbs_[core]; }
  metrics::CoreCounters& counters(CoreId core) { return counters_[core]; }
  const metrics::CoreCounters& counters(CoreId core) const { return counters_[core]; }

  PcieLink& pcie() { return pcie_; }
  /// Quiescent-phase accessor (post-run introspection): the interconnect is
  /// guarded by `shootdown_mu_` while shootdowns run. Asserts quiescence
  /// instead of trusting the caller — the engine brackets its run with
  /// set_engine_running(), so a mid-run call aborts deterministically.
  Interconnect& interconnect() CMCP_NO_THREAD_SAFETY_ANALYSIS {
    CMCP_CHECK_MSG(!engine_running_,
                   "interconnect() is a quiescent-phase accessor; while the "
                   "engine runs the interconnect is guarded by shootdown_mu_");
    return interconnect_;
  }

  /// Engine entry/exit bracket for the quiescent-phase assertions above.
  /// Only the engine's coordinator thread calls this.
  void set_engine_running(bool running) { engine_running_ = running; }

  /// Attach/detach the structured event sink. Null (the default) disables
  /// tracing; every emit point is then a single pointer test.
  void set_trace(trace::EventSink* sink) { trace_ = sink; }
  trace::EventSink* trace() const { return trace_; }

  /// Attach/detach the fault-injection plan (sim/fault_plan.h). Null (the
  /// default) is the perfect machine: every guarded site takes the exact
  /// pre-fault code path.
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* fault_plan() const { return faults_; }

  /// One PCIe transfer routed through the fault plan (when attached),
  /// emitting the kPcieTransfer trace event plus any fault/retry/give-up
  /// events. With no plan this is exactly pcie().transfer() + the same
  /// event the call sites used to emit inline — byte-identical traces.
  struct PcieTransferResult {
    Cycles done = 0;
    Cycles queue_wait = 0;
    Cycles recovery = 0;    ///< extra cycles the fault path cost
    unsigned failures = 0;  ///< injected failures (0 = clean transfer)
    bool gave_up = false;
  };
  PcieTransferResult pcie_transfer(CoreId core, PcieDir dir, Cycles ready_at,
                                   std::uint64_t bytes, UnitIdx unit,
                                   Asid asid);

  /// Perform a remote TLB shootdown of `units` on all cores in `targets`
  /// (the initiator must not be in the mask). Invalidates the receivers'
  /// TLB entries, charges interrupt cost to the receivers, and returns the
  /// cycles consumed at the initiator, which the caller adds to its clock.
  /// Also fills the initiator's shootdown/lock-wait counters.
  Cycles shootdown(CoreId initiator, Cycles now, const CoreMask& targets,
                   std::span<const UnitIdx> units) CMCP_EXCLUDES(shootdown_mu_);

  /// Batched shootdown: one slot acquisition and one IPI round for several
  /// (unit, mapping-cores) pairs — how the access-bit scanner flushes a run
  /// of cleared PTEs. Each receiver pays one interrupt plus INVLPG for the
  /// units it actually maps; remote-invalidation counters grow by that
  /// per-receiver unit count.
  struct BatchItem {
    UnitIdx unit;
    CoreMask targets;
  };
  Cycles shootdown_batch(CoreId initiator, Cycles now,
                         std::span<const BatchItem> items)
      CMCP_EXCLUDES(shootdown_mu_);

  /// Aggregate counters over application cores (excludes the scanner).
  metrics::CoreCounters aggregate_app_counters() const;

 private:
  /// Space owning the cores in `targets` (the shot-down unit's space: only
  /// its own cores can map it). Falls back to 0 for an empty mask.
  Asid space_of_targets(const CoreMask& targets) const {
    Asid out = 0;
    bool found = false;
    targets.for_each([&](CoreId t) {
      if (!found) {
        out = core_space_[t];
        found = true;
      }
    });
    return out;
  }

  /// Directed invalidation via the hypothetical TLB directory hardware.
  Cycles hw_invalidate(CoreId initiator, Cycles now, const CoreMask& targets,
                       std::span<const UnitIdx> units)
      CMCP_REQUIRES(shootdown_mu_);

  /// Lost-acknowledgement injection for one completed IPI round. Each lost
  /// ack costs the initiator an exponential-backoff timeout plus a re-sent
  /// (idempotent) IPI round that interrupts every receiver again; at the
  /// retry budget the initiator gives up on acks and polls remote state
  /// directly. Returns the extra initiator cycles. Runs with the slot held
  /// (it models the initiator still occupying the invalidation request).
  Cycles inject_ack_faults(CoreId initiator, Cycles ack_time,
                           const CoreMask& targets, UnitIdx unit, Asid asid)
      CMCP_REQUIRES(shootdown_mu_);

  MachineConfig config_;
  // Per-core state (clocks, TLBs, counters) is sharded by core id: the
  // current engine runs one thread, and the parallel engine will keep each
  // core's shard on its owning host thread. Shootdowns are the one path that
  // mutates *other* cores' shards — which is why the whole shootdown
  // protocol serializes on `shootdown_mu_` below, the lock modelling the
  // kernel's invalidation-request slot (paper section 5.5).
  std::vector<Cycles> clocks_;
  /// ceil(total_cores()/64): live word count for CoreMask scans on the
  /// shootdown path — target masks can never have bits past the machine's
  /// core range, so the fixed-capacity tail is skipped.
  std::size_t mask_words_ = CoreMask::kWords;
  std::vector<Tlb> tlbs_;
  std::vector<metrics::CoreCounters> counters_;
  /// Core -> owning address space, for tagging machine-level trace events.
  /// Written during setup, read-only while the engine runs.
  std::vector<Asid> core_space_;
  PcieLink pcie_;  ///< internally synchronized (see pcie_link.h)
  mutable common::Mutex shootdown_mu_;
  Interconnect interconnect_ CMCP_GUARDED_BY(shootdown_mu_);
  trace::EventSink* trace_ = nullptr;  ///< non-owning; null = disabled
  FaultPlan* faults_ = nullptr;        ///< non-owning; null = perfect machine
  /// True between the engine's set_engine_running(true/false) bracket;
  /// written only by the coordinator thread.
  bool engine_running_ = false;
};

}  // namespace cmcp::sim
