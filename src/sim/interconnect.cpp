#include "sim/interconnect.h"

#include <algorithm>

namespace cmcp::sim {

ShootdownTiming Interconnect::shootdown(Cycles now, unsigned num_targets,
                                        unsigned num_units) {
  ShootdownTiming t;
  if (num_targets == 0) return t;

  // Serialize on the shared invalidation-request slot.
  const Cycles acquired = std::max(now, slot_busy_until_);
  t.lock_wait = acquired - now;

  t.initiate = cost_->ipi_initiate + cost_->ipi_per_target * num_targets;
  // Receivers handle their IPIs in parallel; the initiator waits for the
  // slowest acknowledgment, which is one receiver's handling time.
  t.receiver_cost = cost_->ipi_receive + cost_->invlpg * num_units;
  t.ack_wait = t.receiver_cost;

  // The slot is held while the request structures are set up and the IPI
  // send loop runs; acks from different shootdowns overlap. The hold grows
  // with the target count, so address-space-wide shootdowns (regular page
  // tables) convoy far more than PSPT's narrow ones — the effect behind the
  // IPI loop "becoming extremely expensive when frequent page faults occur
  // simultaneously on a large number of CPU cores" (paper section 2.3).
  slot_busy_until_ = acquired + cost_->inval_slot_hold + t.initiate;

  ++total_shootdowns_;
  total_lock_wait_ += t.lock_wait;
  return t;
}

void Interconnect::reset() {
  slot_busy_until_ = 0;
  total_shootdowns_ = 0;
  total_lock_wait_ = 0;
}

}  // namespace cmcp::sim
