#include "sim/pcie_link.h"

#include <algorithm>

#include "sim/fault_plan.h"

namespace cmcp::sim {

Cycles PcieLink::transfer(PcieDir dir, Cycles ready_at, std::uint64_t bytes,
                          Cycles* queue_wait) {
  common::LockGuard lock(mu_);
  const int d = static_cast<int>(dir);
  const Cycles start = std::max(ready_at, busy_until_[d]);
  if (queue_wait != nullptr) *queue_wait = start - ready_at;
  const Cycles done = start + cost_->pcie_setup + cost_->pcie_transfer_cycles(bytes);
  busy_until_[d] = done;
  bytes_[d] += bytes;
  ++transfers_[d];
  return done;
}

PcieTransferOutcome PcieLink::transfer_with_faults(PcieDir dir,
                                                   Cycles ready_at,
                                                   std::uint64_t bytes,
                                                   FaultPlan& plan) {
  // Draw the decision before taking the channel mutex (plan has its own).
  const FaultPlan::PcieDecision decision = plan.next_pcie();
  const FaultPlanConfig& fc = plan.config();
  common::LockGuard lock(mu_);
  const int d = static_cast<int>(dir);
  PcieTransferOutcome out;
  out.start = std::max(ready_at, busy_until_[d]);
  out.queue_wait = out.start - ready_at;
  out.attempt_cost = cost_->pcie_setup + cost_->pcie_transfer_cycles(bytes);
  out.failures = decision.failures;
  out.gave_up = decision.sticky;
  Cycles t = out.start;
  for (unsigned attempt = 1; attempt <= out.failures; ++attempt) {
    t += out.attempt_cost;  // the failed attempt still occupied the channel
    // After the final sticky failure the initiator gives up on retrying and
    // resets the link; otherwise it backs off exponentially and replays.
    t += (out.gave_up && attempt == out.failures) ? fc.link_reset_cycles
                                                  : fc.backoff(attempt);
    bytes_[d] += bytes;  // junk bytes of the failed attempt
  }
  t += out.attempt_cost;  // the attempt that lands
  bytes_[d] += bytes;
  ++transfers_[d];
  busy_until_[d] = t;
  out.done = t;
  out.recovery = out.done - (out.start + out.attempt_cost);
  return out;
}

void PcieLink::reset() {
  common::LockGuard lock(mu_);
  busy_until_[0] = busy_until_[1] = 0;
  bytes_[0] = bytes_[1] = 0;
  transfers_[0] = transfers_[1] = 0;
}

}  // namespace cmcp::sim
