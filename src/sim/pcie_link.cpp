#include "sim/pcie_link.h"

#include <algorithm>

namespace cmcp::sim {

Cycles PcieLink::transfer(PcieDir dir, Cycles ready_at, std::uint64_t bytes,
                          Cycles* queue_wait) {
  common::LockGuard lock(mu_);
  const int d = static_cast<int>(dir);
  const Cycles start = std::max(ready_at, busy_until_[d]);
  if (queue_wait != nullptr) *queue_wait = start - ready_at;
  const Cycles done = start + cost_->pcie_setup + cost_->pcie_transfer_cycles(bytes);
  busy_until_[d] = done;
  bytes_[d] += bytes;
  ++transfers_[d];
  return done;
}

void PcieLink::reset() {
  common::LockGuard lock(mu_);
  busy_until_[0] = busy_until_[1] = 0;
  bytes_[0] = bytes_[1] = 0;
  transfers_[0] = transfers_[1] = 0;
}

}  // namespace cmcp::sim
