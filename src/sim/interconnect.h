// IPI-based remote TLB shootdown timing.
//
// x86 has no remote TLB invalidation instruction: the initiator loops over
// target cores sending IPIs and spins until every receiver acknowledges.
// Kernel shootdown request structures are protected by a lock; concurrent
// shootdowns serialize on it. The paper measured up to 8x growth in cycles
// spent in this synchronization under LRU scanning (section 5.5) — the
// invalidation slot below reproduces that effect.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sim/cost_model.h"

namespace cmcp::sim {

/// Timing outcome of one shootdown, from the initiator's perspective.
struct ShootdownTiming {
  Cycles lock_wait = 0;      ///< waited for the invalidation-request slot
  Cycles initiate = 0;       ///< IPI send loop at the initiator
  Cycles ack_wait = 0;       ///< waiting for the slowest receiver's ack
  Cycles receiver_cost = 0;  ///< cost charged to EACH receiver

  Cycles initiator_total() const { return lock_wait + initiate + ack_wait; }
};

class Interconnect {
 public:
  explicit Interconnect(const CostModel& cost) : cost_(&cost) {}

  /// Compute the timing of a shootdown of `num_units` translations sent to
  /// `num_targets` cores, initiated at time `now`. Advances the shared
  /// invalidation slot. num_targets may be 0 (PSPT often finds no other
  /// mapping core): no IPI is sent and only local work remains.
  ShootdownTiming shootdown(Cycles now, unsigned num_targets, unsigned num_units);

  Cycles slot_busy_until() const { return slot_busy_until_; }
  std::uint64_t total_shootdowns() const { return total_shootdowns_; }
  Cycles total_lock_wait() const { return total_lock_wait_; }

  void reset();

 private:
  const CostModel* cost_;
  Cycles slot_busy_until_ = 0;
  std::uint64_t total_shootdowns_ = 0;
  Cycles total_lock_wait_ = 0;
};

}  // namespace cmcp::sim
