// Shared host <-> device PCIe link.
//
// Modelled as two independent directional channels (PCIe is full duplex),
// each a busy-until timeline: a transfer occupies its channel for
// setup + bytes/bandwidth, and concurrent faults queue behind each other.
// This queueing — not raw latency — is what degrades throughput as the
// memory constraint tightens (paper Fig. 8 / Fig. 10).
//
// The link is one of the two genuinely shared hardware resources in the
// machine (the other is the invalidation slot), so it is internally
// synchronized: its busy-until timelines and byte counters sit behind an
// annotated mutex, ready for the parallel engine's concurrent faults.
#pragma once

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/cost_model.h"

namespace cmcp::sim {

class FaultPlan;

enum class PcieDir : std::uint8_t {
  kHostToDevice = 0,  ///< page fetch
  kDeviceToHost = 1,  ///< dirty write-back
};

/// Completion record of a fault-aware transfer. With zero failures it is
/// arithmetic-identical to the plain transfer() path.
struct PcieTransferOutcome {
  Cycles done = 0;          ///< completion time of the (final) attempt
  Cycles queue_wait = 0;    ///< wait for the channel before the first attempt
  Cycles start = 0;         ///< first attempt's start time
  Cycles attempt_cost = 0;  ///< setup + payload cycles of one attempt
  Cycles recovery = 0;      ///< extra cycles beyond a clean transfer
  unsigned failures = 0;    ///< failed attempts before the data landed
  bool gave_up = false;     ///< retry budget exhausted; link reset taken
};

class PcieLink {
 public:
  explicit PcieLink(const CostModel& cost) : cost_(&cost) {}

  /// Schedule a transfer that can start at `ready_at`. Returns its completion
  /// time; `*queue_wait` receives the cycles spent waiting for the channel.
  Cycles transfer(PcieDir dir, Cycles ready_at, std::uint64_t bytes,
                  Cycles* queue_wait) CMCP_EXCLUDES(mu_);

  /// transfer() with `plan` deciding whether this transfer fails. Failed
  /// attempts and their backoff gaps occupy the channel (the descriptor
  /// holds its slot until the replay lands); a sticky failure exhausts the
  /// retry budget, resets the link, and then completes. The simulated
  /// protocol always delivers the data — what faults cost is time.
  PcieTransferOutcome transfer_with_faults(PcieDir dir, Cycles ready_at,
                                           std::uint64_t bytes,
                                           FaultPlan& plan)
      CMCP_EXCLUDES(mu_);

  std::uint64_t bytes_moved(PcieDir dir) const CMCP_EXCLUDES(mu_) {
    common::LockGuard lock(mu_);
    return bytes_[static_cast<int>(dir)];
  }
  std::uint64_t transfers(PcieDir dir) const CMCP_EXCLUDES(mu_) {
    common::LockGuard lock(mu_);
    return transfers_[static_cast<int>(dir)];
  }

  void reset() CMCP_EXCLUDES(mu_);

 private:
  const CostModel* cost_;  ///< immutable after construction
  mutable common::Mutex mu_;
  Cycles busy_until_[2] CMCP_GUARDED_BY(mu_) = {0, 0};
  std::uint64_t bytes_[2] CMCP_GUARDED_BY(mu_) = {0, 0};
  std::uint64_t transfers_[2] CMCP_GUARDED_BY(mu_) = {0, 0};
};

}  // namespace cmcp::sim
