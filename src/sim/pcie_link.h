// Shared host <-> device PCIe link.
//
// Modelled as two independent directional channels (PCIe is full duplex),
// each a busy-until timeline: a transfer occupies its channel for
// setup + bytes/bandwidth, and concurrent faults queue behind each other.
// This queueing — not raw latency — is what degrades throughput as the
// memory constraint tightens (paper Fig. 8 / Fig. 10).
//
// The link is one of the two genuinely shared hardware resources in the
// machine (the other is the invalidation slot), so it is internally
// synchronized: its busy-until timelines and byte counters sit behind an
// annotated mutex, ready for the parallel engine's concurrent faults.
#pragma once

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/cost_model.h"

namespace cmcp::sim {

enum class PcieDir : std::uint8_t {
  kHostToDevice = 0,  ///< page fetch
  kDeviceToHost = 1,  ///< dirty write-back
};

class PcieLink {
 public:
  explicit PcieLink(const CostModel& cost) : cost_(&cost) {}

  /// Schedule a transfer that can start at `ready_at`. Returns its completion
  /// time; `*queue_wait` receives the cycles spent waiting for the channel.
  Cycles transfer(PcieDir dir, Cycles ready_at, std::uint64_t bytes,
                  Cycles* queue_wait) CMCP_EXCLUDES(mu_);

  std::uint64_t bytes_moved(PcieDir dir) const CMCP_EXCLUDES(mu_) {
    common::LockGuard lock(mu_);
    return bytes_[static_cast<int>(dir)];
  }
  std::uint64_t transfers(PcieDir dir) const CMCP_EXCLUDES(mu_) {
    common::LockGuard lock(mu_);
    return transfers_[static_cast<int>(dir)];
  }

  void reset() CMCP_EXCLUDES(mu_);

 private:
  const CostModel* cost_;  ///< immutable after construction
  mutable common::Mutex mu_;
  Cycles busy_until_[2] CMCP_GUARDED_BY(mu_) = {0, 0};
  std::uint64_t bytes_[2] CMCP_GUARDED_BY(mu_) = {0, 0};
  std::uint64_t transfers_[2] CMCP_GUARDED_BY(mu_) = {0, 0};
};

}  // namespace cmcp::sim
