#include "sim/cost_model.h"

namespace cmcp::sim {

CostModel CostModel::knc() { return CostModel{}; }

}  // namespace cmcp::sim
