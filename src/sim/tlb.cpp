#include "sim/tlb.h"

#include "common/assert.h"

namespace cmcp::sim {

Tlb::Tlb(std::uint32_t capacity) : capacity_(capacity), slots_(capacity) {
  CMCP_CHECK(capacity > 0);
  free_.reserve(capacity);
  for (std::uint32_t i = capacity; i-- > 0;) free_.push_back(i);
}

void Tlb::unlink(std::uint32_t s) {
  Slot& slot = slots_[s];
  if (slot.prev != kNil)
    slots_[slot.prev].next = slot.next;
  else
    mru_ = slot.next;
  if (slot.next != kNil)
    slots_[slot.next].prev = slot.prev;
  else
    lru_ = slot.prev;
  slot.prev = slot.next = kNil;
}

void Tlb::push_mru(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.prev = kNil;
  slot.next = mru_;
  if (mru_ != kNil) slots_[mru_].prev = s;
  mru_ = s;
  if (lru_ == kNil) lru_ = s;
}

void Tlb::insert(UnitIdx unit) {
  if (unit >= slot_of_.size()) reserve_units(unit + 1);
  if (const std::uint32_t s = slot_of_[unit]; s != kNil) {
    // Already present (e.g. re-walk after an access-bit refresh); touch it.
    if (s != mru_) {
      unlink(s);
      push_mru(s);
    }
    return;
  }
  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
    ++occupancy_;
  } else {
    CMCP_CHECK(lru_ != kNil);
    s = lru_;
    slot_of_[slots_[s].unit] = kNil;
    unlink(s);
  }
  slots_[s].unit = unit;
  slot_of_[unit] = s;
  push_mru(s);
}

bool Tlb::invalidate(UnitIdx unit) {
  const std::uint32_t s = slot_of(unit);
  if (s == kNil) return false;
  slot_of_[unit] = kNil;
  unlink(s);
  slots_[s].unit = kInvalidUnit;
  free_.push_back(s);
  --occupancy_;
  return true;
}

void Tlb::flush() {
  // Walk the LRU chain instead of clearing the whole unit index: the chain
  // holds at most `capacity_` entries while the index spans every unit.
  for (std::uint32_t s = mru_; s != kNil;) {
    const std::uint32_t next = slots_[s].next;
    slot_of_[slots_[s].unit] = kNil;
    slots_[s] = Slot{};
    s = next;
  }
  free_.clear();
  for (std::uint32_t i = capacity_; i-- > 0;) free_.push_back(i);
  mru_ = lru_ = kNil;
  occupancy_ = 0;
}

}  // namespace cmcp::sim
