#include "sim/tlb.h"

#include "common/assert.h"

namespace cmcp::sim {

Tlb::Tlb(std::uint32_t capacity) : capacity_(capacity), slots_(capacity) {
  CMCP_CHECK(capacity > 0);
  free_.reserve(capacity);
  for (std::uint32_t i = capacity; i-- > 0;) free_.push_back(i);
  map_.reserve(capacity * 2);
}

void Tlb::unlink(std::uint32_t s) {
  Slot& slot = slots_[s];
  if (slot.prev != kNil)
    slots_[slot.prev].next = slot.next;
  else
    mru_ = slot.next;
  if (slot.next != kNil)
    slots_[slot.next].prev = slot.prev;
  else
    lru_ = slot.prev;
  slot.prev = slot.next = kNil;
}

void Tlb::push_mru(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.prev = kNil;
  slot.next = mru_;
  if (mru_ != kNil) slots_[mru_].prev = s;
  mru_ = s;
  if (lru_ == kNil) lru_ = s;
}

bool Tlb::lookup(UnitIdx unit) {
  auto it = map_.find(unit);
  if (it == map_.end()) return false;
  const std::uint32_t s = it->second;
  if (s != mru_) {
    unlink(s);
    push_mru(s);
  }
  return true;
}

void Tlb::insert(UnitIdx unit) {
  if (auto it = map_.find(unit); it != map_.end()) {
    // Already present (e.g. re-walk after an access-bit refresh); touch it.
    const std::uint32_t s = it->second;
    if (s != mru_) {
      unlink(s);
      push_mru(s);
    }
    return;
  }
  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    CMCP_CHECK(lru_ != kNil);
    s = lru_;
    map_.erase(slots_[s].unit);
    unlink(s);
  }
  slots_[s].unit = unit;
  map_.emplace(unit, s);
  push_mru(s);
}

bool Tlb::invalidate(UnitIdx unit) {
  auto it = map_.find(unit);
  if (it == map_.end()) return false;
  const std::uint32_t s = it->second;
  map_.erase(it);
  unlink(s);
  slots_[s].unit = kInvalidUnit;
  free_.push_back(s);
  return true;
}

void Tlb::flush() {
  map_.clear();
  free_.clear();
  for (std::uint32_t i = capacity_; i-- > 0;) free_.push_back(i);
  for (auto& s : slots_) s = Slot{};
  mru_ = lru_ = kNil;
}

}  // namespace cmcp::sim
