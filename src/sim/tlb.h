// Per-core data TLB model.
//
// Modelled as a fully associative, true-LRU buffer with a fixed number of
// entries for the active page-size class, approximating the Knights Corner
// dTLB (64 x 4 kB entries; fewer entries for the larger formats). A 64 kB
// group occupies a single entry — that is exactly the benefit the hint bit
// buys (paper section 4).
//
// The unit -> slot index is a dense direct-indexed array (the unit index is
// the slot-array subscript; docs/performance.md): a lookup — the single
// hottest operation in the whole simulator, one per simulated reference per
// core — is one bounds check and one load, no hashing. The LRU order lives
// in an intrusive prev/next chain over the fixed slot pool, as before.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cmcp::sim {

struct TlbConfig {
  std::uint32_t entries_4k = 64;
  std::uint32_t entries_64k = 32;
  std::uint32_t entries_2m = 8;

  std::uint32_t entries_for(PageSizeClass c) const {
    switch (c) {
      case PageSizeClass::k4K: return entries_4k;
      case PageSizeClass::k64K: return entries_64k;
      case PageSizeClass::k2M: return entries_2m;
    }
    return entries_4k;
  }
};

class Tlb {
 public:
  Tlb(std::uint32_t capacity);

  /// True if `unit` is cached; refreshes its LRU position on hit.
  bool lookup(UnitIdx unit) {
    const std::uint32_t s = slot_of(unit);
    if (s == kNil) return false;
    if (s != mru_) {
      unlink(s);
      push_mru(s);
    }
    return true;
  }

  /// Install a translation, evicting the LRU entry when full.
  void insert(UnitIdx unit);

  /// Drop one translation (INVLPG). Returns true if it was present —
  /// receivers of a shootdown IPI only pay the INVLPG cost for cached
  /// entries but always pay the interrupt cost.
  bool invalidate(UnitIdx unit);

  /// Drop everything (full flush).
  void flush();

  /// Size the unit index for units [0, n) so steady-state insert() never
  /// grows it (the memory manager calls this with the area's num_units()).
  void reserve_units(UnitIdx n) {
    if (n > slot_of_.size()) slot_of_.resize(n, kNil);
  }

  std::uint32_t capacity() const { return capacity_; }
  std::size_t occupancy() const { return occupancy_; }

  /// Invoke fn(UnitIdx) for every cached translation, in MRU -> LRU order.
  /// Read-only introspection for SimCheck's TLB-vs-PTE invariant; does not
  /// refresh LRU positions.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (std::uint32_t s = mru_; s != kNil; s = slots_[s].next)
      fn(slots_[s].unit);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    UnitIdx unit = kInvalidUnit;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  std::uint32_t slot_of(UnitIdx unit) const {
    return unit < slot_of_.size() ? slot_of_[unit] : kNil;
  }

  void unlink(std::uint32_t s);
  void push_mru(std::uint32_t s);

  std::uint32_t capacity_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t mru_ = kNil;
  std::uint32_t lru_ = kNil;
  std::vector<std::uint32_t> slot_of_;  ///< [unit] -> slot index or kNil
  std::size_t occupancy_ = 0;
};

}  // namespace cmcp::sim
