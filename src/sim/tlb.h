// Per-core data TLB model.
//
// Modelled as a fully associative, true-LRU buffer with a fixed number of
// entries for the active page-size class, approximating the Knights Corner
// dTLB (64 x 4 kB entries; fewer entries for the larger formats). A 64 kB
// group occupies a single entry — that is exactly the benefit the hint bit
// buys (paper section 4).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace cmcp::sim {

struct TlbConfig {
  std::uint32_t entries_4k = 64;
  std::uint32_t entries_64k = 32;
  std::uint32_t entries_2m = 8;

  std::uint32_t entries_for(PageSizeClass c) const {
    switch (c) {
      case PageSizeClass::k4K: return entries_4k;
      case PageSizeClass::k64K: return entries_64k;
      case PageSizeClass::k2M: return entries_2m;
    }
    return entries_4k;
  }
};

class Tlb {
 public:
  Tlb(std::uint32_t capacity);

  /// True if `unit` is cached; refreshes its LRU position on hit.
  bool lookup(UnitIdx unit);

  /// Install a translation, evicting the LRU entry when full.
  void insert(UnitIdx unit);

  /// Drop one translation (INVLPG). Returns true if it was present —
  /// receivers of a shootdown IPI only pay the INVLPG cost for cached
  /// entries but always pay the interrupt cost.
  bool invalidate(UnitIdx unit);

  /// Drop everything (full flush).
  void flush();

  std::uint32_t capacity() const { return capacity_; }
  std::size_t occupancy() const { return map_.size(); }

  /// Invoke fn(UnitIdx) for every cached translation, in no particular
  /// order. Read-only introspection for SimCheck's TLB-vs-PTE invariant;
  /// does not refresh LRU positions.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [unit, slot] : map_) fn(unit);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    UnitIdx unit = kInvalidUnit;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  void unlink(std::uint32_t s);
  void push_mru(std::uint32_t s);

  std::uint32_t capacity_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t mru_ = kNil;
  std::uint32_t lru_ = kNil;
  std::unordered_map<UnitIdx, std::uint32_t> map_;
};

}  // namespace cmcp::sim
