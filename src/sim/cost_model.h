// Unit-cost parameters of the simulated Knights Corner class machine.
//
// The paper does not claim absolute cycle counts; its results are driven by
// *counts* of events (page faults, remote TLB invalidations, dTLB misses,
// bytes moved over PCIe) multiplied by per-event costs. These defaults are
// calibrated to the 5110P: 1.053 GHz in-order cores, ~6 GB/s measured PCIe
// bandwidth (paper section 3), slow 4-level page walks, and IPI round trips
// in the microsecond range as reported for KNC-class interconnects.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace cmcp::sim {

struct CostModel {
  // --- core-local memory system -------------------------------------------
  Cycles tlb_hit = 1;  ///< translation found in the dTLB
  /// Translation-stall cost charged per dTLB-missing page visit. One "visit"
  /// in the simulation stands for all the scattered references the real
  /// application makes to that page's cache lines, so this is the aggregate
  /// walk cost of a visit, not a single 4-level walk (KNC's in-order cores
  /// stall fully on walks; Table 1's dTLB-miss volumes make translation
  /// ~5-15% of runtime at 4 kB). Larger formats miss 16x / 512x less often
  /// per byte, which is the entire upside of Fig. 10's large pages.
  Cycles tlb_walk_4k = 2500;
  Cycles tlb_walk_64k = 2500;  ///< 64 kB groups walk the same 4 kB tree
  Cycles tlb_walk_2m = 2000;   ///< 2 MB entries terminate one level early
  Cycles memory_access = 6;    ///< cost of the data reference itself

  // --- fault handling -------------------------------------------------------
  Cycles fault_entry = 600;      ///< trap + kernel entry/exit on a fault
  Cycles pte_setup = 40;         ///< writing one 4 kB PTE
  Cycles pte_copy_lookup = 250;  ///< PSPT: consulting other cores' tables
  Cycles policy_op = 80;         ///< replacement-policy bookkeeping per fault

  // --- TLB shootdown ---------------------------------------------------------
  Cycles ipi_initiate = 600;     ///< initiator-side setup of one shootdown
  Cycles ipi_per_target = 250;   ///< per-target cost of the IPI loop
  /// Interrupt handling at each receiver (invalidation requests are queued,
  /// so one interrupt may drain several; this is the amortized cost).
  Cycles ipi_receive = 1400;
  Cycles invlpg = 40;            ///< one INVLPG at the receiver
  /// Base hold of the serialized invalidation-request slot; the slot is
  /// additionally held for the IPI send loop (ipi_initiate +
  /// ipi_per_target * targets), so concurrent shootdowns convoy — the lock
  /// whose cycles grew up to 8x under LRU in the paper's section 5.5.
  Cycles inval_slot_hold = 600;
  /// Dedicated hyperthreads running the access-bit scanner (paper 5.1:
  /// "we dedicated some of the hyperthreads to the page usage statistics
  /// collection"). Scan work parallelizes across them; their shootdowns
  /// still serialize on the invalidation slot.
  unsigned scanner_threads = 4;
  /// Cleared PTEs the scanner flushes per IPI round (invalidation requests
  /// are queued and batched; receivers INVLPG the whole run at once).
  unsigned scanner_flush_batch = 16;

  // --- hypothetical hardware TLB coherence -----------------------------------
  /// Costs of the directory-based remote invalidation hardware the paper's
  /// related work discusses (Villavieja et al., "DiDi", PACT'11) and that
  /// section 2.3 asks vendors for: the initiator writes one directory
  /// command per target core and the hardware drops the entry without
  /// interrupting the receiver.
  Cycles hw_inval_lookup = 60;      ///< directory lookup per invalidation
  Cycles hw_inval_per_target = 40;  ///< per-target directed invalidate

  // --- page table locking ----------------------------------------------------
  /// Regular page tables serialize fault handling behind an address-space
  /// wide lock; PSPT uses per-core locks with a short critical section.
  Cycles regular_pt_lock_hold = 900;
  Cycles pspt_lock_hold = 150;

  // --- host <-> device data movement ----------------------------------------
  double clock_ghz = 1.053;           ///< core clock, cycles per ns
  double pcie_gb_per_s = 6.0;         ///< paper's measured bandwidth
  Cycles pcie_setup = 1600;           ///< per-transfer DMA setup (~1.5 us)

  // --- syscall offload (IHK/IKC, paper section 2) ----------------------------
  /// "heavy system calls are shipped to and executed on the host": the
  /// request/response ride the IKC channel over PCIe and the caller blocks.
  Cycles syscall_local = 900;          ///< trap + IKC marshalling on the card
  Cycles syscall_host_dispatch = 2500; ///< host-side delegate wakeup/dispatch
  std::uint64_t syscall_message_bytes = 256;  ///< IKC request+response size

  // --- LRU scanning -----------------------------------------------------------
  /// Virtual-time period of the access-bit scanner (paper: 10 ms timer).
  Cycles scan_period = 10'000'000;    ///< 10 ms at ~1 GHz
  Cycles scan_pte_read = 25;          ///< reading/clearing one 4 kB sub-PTE

  /// Cycles to transfer `bytes` over PCIe excluding queueing and setup.
  Cycles pcie_transfer_cycles(std::uint64_t bytes) const {
    const double ns = static_cast<double>(bytes) / pcie_gb_per_s;  // GB/s == B/ns
    return static_cast<Cycles>(ns * clock_ghz);
  }

  Cycles walk_cost(PageSizeClass c) const {
    switch (c) {
      case PageSizeClass::k4K: return tlb_walk_4k;
      case PageSizeClass::k64K: return tlb_walk_64k;
      case PageSizeClass::k2M: return tlb_walk_2m;
    }
    return tlb_walk_4k;
  }

  /// Cost of writing the PTEs that define one mapping unit. 64 kB units
  /// require initializing all 16 grouped 4 kB entries (paper section 4);
  /// a 2 MB unit is a single PDE.
  Cycles map_cost(PageSizeClass c) const {
    switch (c) {
      case PageSizeClass::k4K: return pte_setup;
      case PageSizeClass::k64K: return pte_setup * 16;
      case PageSizeClass::k2M: return pte_setup;
    }
    return pte_setup;
  }

  /// Default model of the evaluated 5110P card.
  static CostModel knc();
};

}  // namespace cmcp::sim
