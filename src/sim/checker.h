// SimCheck — runtime protocol-invariant checking.
//
// The paper's argument rests on protocol bookkeeping being exactly right:
// CMCP's victim ranking is only meaningful if the per-page core-map count
// always equals the number of per-core PSPT mappings, and the "no remote TLB
// invalidations for usage tracking" claim only holds if every eviction is
// provably preceded by shootdowns to precisely the mapping cores. A silent
// accounting bug would skew every reproduced figure, so the invariants are
// checked as first-class objects rather than ad-hoc asserts.
//
// A Checker examines simulator state at well-defined checkpoints (after an
// eviction, after a scan pass, at end of run) and reports structured
// violations. The CheckRegistry owns the checkers, throttles full-state
// sweeps with per-checkpoint strides, and dispatches violations to a
// handler — by default a loud abort that prints the offending unit/core and
// the tail of the structured event trace (when one is attached), so the
// diagnostic arrives with the protocol history that led to it.
//
// Cost discipline: checkers are compiled in only when CMCP_SIMCHECK_ENABLED
// is 1 (CMake option CMCP_SIMCHECK, default ON outside Release builds).
// When compiled out, every checkpoint in the fault path disappears
// entirely — the hot path is byte-for-byte the same simulation, verified by
// the trace-determinism CI step. Checkers never mutate simulator state, so
// even a compiled-in, enabled registry changes no virtual-time outcome.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "sim/trace.h"

#if !defined(CMCP_SIMCHECK_ENABLED)
// Built outside CMake (e.g. a header-only consumer): default to checking.
#define CMCP_SIMCHECK_ENABLED 1
#endif

namespace cmcp::sim {

/// One detected invariant violation, structured for programmatic handling
/// (tests install capturing handlers; the default handler aborts).
struct CheckViolation {
  std::string checker;    ///< Checker::name() that reported it
  std::string invariant;  ///< short rule id, e.g. "core-map-count"
  std::string message;    ///< human-readable specifics
  UnitIdx unit = kInvalidUnit;  ///< offending mapping unit, if any
  CoreId core = kInvalidCore;   ///< offending core, if any
};

/// Where in the protocol a sweep runs. Eviction/fault sweeps are strided
/// (full-state checks after every event would be quadratic); scan and
/// end-of-run sweeps always run.
enum class CheckPoint : std::uint8_t {
  kAfterFault = 0,
  kAfterEviction,
  kAfterScan,
  kEndOfRun,
};

inline constexpr unsigned kNumCheckPoints = 4;

std::string_view to_string(CheckPoint point);

/// One invariant (or family of invariants) over live simulator state.
/// check() must be read-only with respect to the simulation: it may keep
/// private history (e.g. last-seen clocks) but must not perturb any state a
/// policy or the memory manager observes.
class Checker {
 public:
  virtual ~Checker() = default;

  virtual std::string_view name() const = 0;

  /// Examine current state; append one CheckViolation per violated
  /// invariant. `point` lets history-keeping checkers (clock monotonicity)
  /// update their baseline on every call.
  virtual void check(CheckPoint point, std::vector<CheckViolation>& out) = 0;
};

/// Owns registered checkers and runs them at checkpoints.
class CheckRegistry {
 public:
  using Handler = std::function<void(const CheckViolation&)>;

  CheckRegistry();

  void add(std::unique_ptr<Checker> checker);

  /// Replace the violation handler. The default prints a structured
  /// diagnostic (plus the last trace events, when an event source is
  /// attached) and aborts — a violated invariant in a deterministic
  /// simulator is a bug, never a data artifact.
  void set_handler(Handler handler);

  /// Attach the run's event sink so diagnostics carry the last protocol
  /// events leading up to the violation. Non-owning; may be null.
  void set_event_source(const trace::EventSink* sink) { events_ = sink; }

  /// Sweep throttling: run a full sweep only every `stride`-th call for
  /// `point` (0 disables that checkpoint entirely). Defaults: fault 64,
  /// eviction 16, scan 1, end-of-run 1.
  void set_stride(CheckPoint point, std::uint64_t stride);

  /// Checkpoint entry: honors the stride, then runs every checker and
  /// dispatches any violations to the handler.
  void run(CheckPoint point);

  /// Unconditional sweep (ignores strides). Tests and end-of-run use this.
  void run_now(CheckPoint point);

  std::size_t num_checkers() const { return checkers_.size(); }
  std::uint64_t sweeps() const { return sweeps_; }
  std::uint64_t violations() const { return violations_; }

  /// Number of trace events included in a default-handler diagnostic.
  static constexpr std::size_t kDiagnosticEventTail = 16;

 private:
  void report(const CheckViolation& violation);

  std::vector<std::unique_ptr<Checker>> checkers_;
  Handler handler_;
  const trace::EventSink* events_ = nullptr;
  std::uint64_t calls_[kNumCheckPoints] = {};
  std::uint64_t strides_[kNumCheckPoints];
  std::uint64_t sweeps_ = 0;
  std::uint64_t violations_ = 0;
};

/// Format `violation` (and the last few events of `events`, if non-null)
/// into a multi-line diagnostic. Exposed for the default handler and tests.
std::string format_violation(const CheckViolation& violation,
                             const trace::EventSink* events);

}  // namespace cmcp::sim
