#include "sim/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/assert.h"

namespace cmcp::sim {

namespace {

/// splitmix64 finalizer: the stateless straggler decision hash. Mirrors the
/// mixer cmcp::Rng uses for seed expansion, so one seed drives well-spread,
/// order-independent per-(core, window) decisions.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) from a hash value (same construction as Rng::next_double).
double unit_double(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Shortest decimal form of `value` that parses back to the same double, so
/// to_spec()/parse() round-trips are exact and specs stay readable.
std::string fmt_double(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

bool parse_uint(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  *out = value;
  return true;
}

bool parse_double(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  if (value < 0.0 || value > 1.0) return false;  // rates are probabilities
  *out = value;
  return true;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPcieTransient: return "pcie-transient";
    case FaultKind::kPcieSticky: return "pcie-sticky";
    case FaultKind::kShootdownAck: return "shootdown-ack";
    case FaultKind::kEccPoison: return "ecc-poison";
    case FaultKind::kStraggler: return "straggler";
  }
  return "?";
}

Cycles FaultPlanConfig::backoff(unsigned attempt) const {
  CMCP_CHECK(attempt >= 1);
  const unsigned shift = std::min(attempt - 1, 62u);
  Cycles value = backoff_base;
  // Saturating shift: doubling past the cap cannot wrap.
  for (unsigned i = 0; i < shift && value < backoff_cap; ++i) value <<= 1;
  return std::min(value, backoff_cap);
}

std::string FaultPlanConfig::to_spec() const {
  std::string spec = "seed=" + std::to_string(seed);
  spec += ",pcie=" + fmt_double(pcie_transient_rate);
  spec += ",sticky=" + fmt_double(pcie_sticky_rate);
  spec += ",ack=" + fmt_double(shootdown_ack_rate);
  spec += ",poison=" + std::to_string(poison_frames);
  spec += ",straggler=" + fmt_double(straggler_rate);
  const FaultPlanConfig defaults;
  if (max_retries != defaults.max_retries)
    spec += ",retries=" + std::to_string(max_retries);
  if (backoff_base != defaults.backoff_base)
    spec += ",backoff=" + std::to_string(backoff_base);
  if (backoff_cap != defaults.backoff_cap)
    spec += ",cap=" + std::to_string(backoff_cap);
  if (link_reset_cycles != defaults.link_reset_cycles)
    spec += ",reset=" + std::to_string(link_reset_cycles);
  if (ecc_detect_cycles != defaults.ecc_detect_cycles)
    spec += ",ecc=" + std::to_string(ecc_detect_cycles);
  if (straggler_mult != defaults.straggler_mult)
    spec += ",mult=" + std::to_string(straggler_mult);
  if (straggler_window != defaults.straggler_window)
    spec += ",window=" + std::to_string(straggler_window);
  return spec;
}

bool FaultPlanConfig::parse(std::string_view spec, FaultPlanConfig* out) {
  *out = FaultPlanConfig{};
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) {
      if (spec.empty()) break;  // an empty spec is the default (disabled) plan
      return false;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    std::uint64_t u = 0;
    if (key == "seed") {
      if (!parse_uint(value, &out->seed)) return false;
    } else if (key == "pcie") {
      if (!parse_double(value, &out->pcie_transient_rate)) return false;
    } else if (key == "sticky") {
      if (!parse_double(value, &out->pcie_sticky_rate)) return false;
    } else if (key == "ack") {
      if (!parse_double(value, &out->shootdown_ack_rate)) return false;
    } else if (key == "poison") {
      if (!parse_uint(value, &out->poison_frames)) return false;
    } else if (key == "straggler") {
      if (!parse_double(value, &out->straggler_rate)) return false;
    } else if (key == "retries") {
      if (!parse_uint(value, &u) || u == 0) return false;
      out->max_retries = static_cast<unsigned>(u);
    } else if (key == "backoff") {
      if (!parse_uint(value, &out->backoff_base)) return false;
    } else if (key == "cap") {
      if (!parse_uint(value, &out->backoff_cap)) return false;
    } else if (key == "reset") {
      if (!parse_uint(value, &out->link_reset_cycles)) return false;
    } else if (key == "ecc") {
      if (!parse_uint(value, &out->ecc_detect_cycles)) return false;
    } else if (key == "mult") {
      if (!parse_uint(value, &u) || u == 0) return false;
      out->straggler_mult = static_cast<unsigned>(u);
    } else if (key == "window") {
      if (!parse_uint(value, &out->straggler_window) ||
          out->straggler_window == 0)
        return false;
    } else {
      return false;
    }
    if (comma == spec.size()) break;
  }
  return true;
}

FaultPlan::FaultPlan(const FaultPlanConfig& config)
    : config_(config),
      pcie_rng_(mix64(config.seed ^ 0x70636965ULL)),
      ack_rng_(mix64(config.seed ^ 0x61636bULL)),
      ecc_rng_(mix64(config.seed ^ 0x656363ULL)) {}

FaultPlan::PcieDecision FaultPlan::next_pcie() {
  common::LockGuard lock(mu_);
  // One draw per transfer regardless of outcome keeps the decision stream
  // aligned across rate changes of OTHER kinds.
  const double r = pcie_rng_.next_double();
  PcieDecision d;
  if (r < config_.pcie_sticky_rate) {
    d.failures = config_.max_retries;
    d.sticky = true;
  } else if (r < config_.pcie_sticky_rate + config_.pcie_transient_rate) {
    d.failures = 1;
  }
  return d;
}

bool FaultPlan::next_ack_lost() {
  common::LockGuard lock(mu_);
  return ack_rng_.next_double() < config_.shootdown_ack_rate;
}

void FaultPlan::select_poison(std::uint64_t capacity_units,
                              std::uint64_t frames_per_unit) {
  common::LockGuard lock(mu_);
  CMCP_CHECK(frames_per_unit > 0);
  poison_.clear();
  if (config_.poison_frames == 0 || capacity_units == 0) return;
  // Keep at least one usable frame: a fully poisoned device is a config
  // error, not a scenario the recovery protocol can degrade through.
  const std::uint64_t count =
      std::min(config_.poison_frames, capacity_units - 1);
  std::vector<std::uint64_t> slots;
  slots.reserve(count);
  while (slots.size() < count) {
    const std::uint64_t slot = ecc_rng_.next_below(capacity_units);
    if (std::find(slots.begin(), slots.end(), slot) != slots.end()) continue;
    slots.push_back(slot);
  }
  for (const std::uint64_t slot : slots) {
    Poison p;
    p.pfn = slot * frames_per_unit;
    p.latent = ecc_rng_.next_double() < 0.5;
    poison_.push_back(p);
  }
}

bool FaultPlan::surfaces_at_alloc(Pfn pfn) {
  common::LockGuard lock(mu_);
  for (Poison& p : poison_) {
    if (p.pfn != pfn || p.latent || p.surfaced) continue;
    p.surfaced = true;
    return true;
  }
  return false;
}

bool FaultPlan::surfaces_at_evict(Pfn pfn) {
  common::LockGuard lock(mu_);
  for (Poison& p : poison_) {
    if (p.pfn != pfn || !p.latent || p.surfaced) continue;
    p.surfaced = true;
    return true;
  }
  return false;
}

unsigned FaultPlan::straggler_mult_at(CoreId core, Cycles now,
                                      bool* window_start) {
  *window_start = false;
  if (config_.straggler_rate <= 0.0) return 1;
  const std::uint64_t window = now / config_.straggler_window;
  const std::uint64_t h =
      mix64(config_.seed ^ mix64(0x73747261ULL + core) ^ mix64(window));
  if (unit_double(h) >= config_.straggler_rate) return 1;
  common::LockGuard lock(mu_);
  if (core >= straggler_emitted_.size())
    straggler_emitted_.resize(core + 1, ~std::uint64_t{0});
  if (straggler_emitted_[core] != window) {
    straggler_emitted_[core] = window;
    *window_start = true;
  }
  return config_.straggler_mult;
}

void FaultPlan::count(FaultKind kind, Asid asid, std::uint64_t injected,
                      Cycles recovery_cycles) {
  stats_.injected[static_cast<unsigned>(kind)] += injected;
  stats_.recovery_cycles += recovery_cycles;
  if (asid >= stats_.per_asid_faults.size()) {
    stats_.per_asid_faults.resize(asid + 1, 0);
    stats_.per_asid_recovery.resize(asid + 1, 0);
  }
  stats_.per_asid_faults[asid] += injected;
  stats_.per_asid_recovery[asid] += recovery_cycles;
}

void FaultPlan::record(FaultKind kind, Asid asid, std::uint64_t injected,
                       std::uint64_t retries, bool gave_up,
                       Cycles recovery_cycles) {
  common::LockGuard lock(mu_);
  count(kind, asid, injected, recovery_cycles);
  stats_.retries += retries;
  if (gave_up) ++stats_.give_ups;
}

void FaultPlan::record_quarantine() {
  common::LockGuard lock(mu_);
  ++stats_.frames_quarantined;
}

void FaultPlan::record_straggler_cycles(Cycles extra) {
  common::LockGuard lock(mu_);
  stats_.straggler_cycles += extra;
}

FaultStats FaultPlan::stats() const {
  common::LockGuard lock(mu_);
  return stats_;
}

}  // namespace cmcp::sim
