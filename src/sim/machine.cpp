#include "sim/machine.h"

#include <array>

#include "common/assert.h"

namespace cmcp::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config), pcie_(config_.cost), interconnect_(config_.cost) {
  CMCP_CHECK(config_.num_cores > 0);
  CMCP_CHECK(config_.num_address_spaces > 0);
  CMCP_CHECK(config_.num_cores + config_.num_address_spaces - 1 <
             CoreMask::kMaxCores);
  const std::uint32_t tlb_entries = config_.tlb.entries_for(config_.page_size);
  // One scanner pseudo-core per address space (id == num_cores + asid).
  const CoreId total = config_.num_cores + config_.num_address_spaces;
  clocks_.assign(total, 0);
  counters_.assign(total, metrics::CoreCounters{});
  tlbs_.reserve(total);
  for (CoreId i = 0; i < total; ++i) tlbs_.emplace_back(tlb_entries);
  core_space_.assign(total, 0);
  for (unsigned s = 0; s < config_.num_address_spaces; ++s)
    core_space_[config_.num_cores + s] = s;
}

Cycles Machine::shootdown(CoreId initiator, Cycles now, const CoreMask& targets,
                          std::span<const UnitIdx> units) {
  CMCP_CHECK(!targets.test(initiator));
  const unsigned num_targets = targets.count();
  if (num_targets == 0 || units.empty()) return 0;

  // The invalidation-request slot: every shootdown in the machine holds it,
  // exactly like the kernel lock the paper measures (section 5.5).
  common::LockGuard slot(shootdown_mu_);

  if (config_.tlb_coherence == TlbCoherence::kHardwareDirectory)
    return hw_invalidate(initiator, now, targets, units);

  const ShootdownTiming t = interconnect_.shootdown(
      now, num_targets, static_cast<unsigned>(units.size()));

  metrics::CoreCounters& init_ctr = counters_[initiator];
  ++init_ctr.shootdowns_initiated;
  init_ctr.cycles_lock_wait += t.lock_wait;
  init_ctr.cycles_shootdown += t.initiate + t.ack_wait;

  if (trace_ != nullptr) {
    trace_->emit({trace::EventKind::kShootdown, initiator, now,
                  t.initiator_total(), units[0], num_targets, units.size(),
                  t.lock_wait, space_of_targets(targets)});
    const Cycles acquired = now + t.lock_wait;
    trace_->emit({trace::EventKind::kSlotHold, initiator, acquired,
                  interconnect_.slot_busy_until() - acquired, units[0],
                  num_targets, 0, 0, core_space_[initiator]});
  }

  targets.for_each([&](CoreId target) {
    metrics::CoreCounters& ctr = counters_[target];
    ++ctr.ipis_received;
    ctr.remote_invalidations_received += units.size();
    ctr.cycles_interrupt += t.receiver_cost;
    advance(target, t.receiver_cost);
    Tlb& target_tlb = tlbs_[target];
    for (const UnitIdx unit : units) target_tlb.invalidate(unit);
  });

  return t.initiator_total();
}

Cycles Machine::hw_invalidate(CoreId initiator, Cycles now,
                              const CoreMask& targets,
                              std::span<const UnitIdx> units) {
  // Directory hardware: the initiator issues one directed invalidation per
  // (unit, target); receivers lose the entry without being interrupted.
  metrics::CoreCounters& init_ctr = counters_[initiator];
  ++init_ctr.shootdowns_initiated;
  Cycles cycles = 0;
  for (const UnitIdx unit : units) {
    cycles += config_.cost.hw_inval_lookup;
    targets.for_each([&](CoreId target) {
      cycles += config_.cost.hw_inval_per_target;
      ++counters_[target].remote_invalidations_received;
      tlbs_[target].invalidate(unit);
    });
  }
  init_ctr.cycles_shootdown += cycles;
  if (trace_ != nullptr)
    trace_->emit({trace::EventKind::kShootdown, initiator, now, cycles,
                  units[0], targets.count(), units.size(), 0,
                  space_of_targets(targets)});
  return cycles;
}

Cycles Machine::shootdown_batch(CoreId initiator, Cycles now,
                                std::span<const BatchItem> items) {
  if (items.empty()) return 0;
  common::LockGuard slot(shootdown_mu_);
  CoreMask union_targets;
  for (const BatchItem& item : items) union_targets = union_targets | item.targets;
  union_targets.clear(initiator);
  const unsigned num_targets = union_targets.count();
  if (num_targets == 0) return 0;

  if (config_.tlb_coherence == TlbCoherence::kHardwareDirectory) {
    Cycles cycles = 0;
    for (const BatchItem& item : items) {
      CoreMask targets = item.targets;
      targets.clear(initiator);
      const std::array<UnitIdx, 1> unit = {item.unit};
      cycles += hw_invalidate(initiator, now, targets, unit);
    }
    return cycles;
  }

  const ShootdownTiming t = interconnect_.shootdown(
      now, num_targets, static_cast<unsigned>(items.size()));

  metrics::CoreCounters& init_ctr = counters_[initiator];
  ++init_ctr.shootdowns_initiated;
  init_ctr.cycles_lock_wait += t.lock_wait;

  if (trace_ != nullptr) {
    const Cycles acquired = now + t.lock_wait;
    trace_->emit({trace::EventKind::kSlotHold, initiator, acquired,
                  interconnect_.slot_busy_until() - acquired, kInvalidUnit,
                  num_targets, 0, 0, core_space_[initiator]});
  }

  Cycles slowest_receiver = 0;
  union_targets.for_each([&](CoreId target) {
    metrics::CoreCounters& ctr = counters_[target];
    ++ctr.ipis_received;
    Tlb& target_tlb = tlbs_[target];
    std::uint64_t mine = 0;
    for (const BatchItem& item : items) {
      if (!item.targets.test(target)) continue;
      ++mine;
      target_tlb.invalidate(item.unit);
    }
    ctr.remote_invalidations_received += mine;
    const Cycles receiver_cost = config_.cost.ipi_receive + config_.cost.invlpg * mine;
    ctr.cycles_interrupt += receiver_cost;
    advance(target, receiver_cost);
    slowest_receiver = std::max(slowest_receiver, receiver_cost);
  });

  const Cycles initiator_cost = t.lock_wait + t.initiate + slowest_receiver;
  init_ctr.cycles_shootdown += t.initiate + slowest_receiver;
  if (trace_ != nullptr)
    trace_->emit({trace::EventKind::kShootdown, initiator, now, initiator_cost,
                  kInvalidUnit, num_targets, items.size(), t.lock_wait,
                  space_of_targets(union_targets)});
  return initiator_cost;
}

metrics::CoreCounters Machine::aggregate_app_counters() const {
  metrics::CoreCounters sum;
  for (CoreId i = 0; i < config_.num_cores; ++i) sum += counters_[i];
  return sum;
}

}  // namespace cmcp::sim
