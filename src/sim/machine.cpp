#include "sim/machine.h"

#include <array>

#include "common/assert.h"
#include "sim/fault_plan.h"

namespace cmcp::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config), pcie_(config_.cost), interconnect_(config_.cost) {
  CMCP_CHECK(config_.num_cores > 0);
  CMCP_CHECK(config_.num_address_spaces > 0);
  CMCP_CHECK(config_.num_cores + config_.num_address_spaces - 1 <
             CoreMask::kMaxCores);
  const std::uint32_t tlb_entries = config_.tlb.entries_for(config_.page_size);
  // One scanner pseudo-core per address space (id == num_cores + asid).
  const CoreId total = config_.num_cores + config_.num_address_spaces;
  mask_words_ = (static_cast<std::size_t>(total) + 63u) / 64u;
  clocks_.assign(total, 0);
  counters_.assign(total, metrics::CoreCounters{});
  tlbs_.reserve(total);
  for (CoreId i = 0; i < total; ++i) tlbs_.emplace_back(tlb_entries);
  core_space_.assign(total, 0);
  for (unsigned s = 0; s < config_.num_address_spaces; ++s)
    core_space_[config_.num_cores + s] = s;
}

Cycles Machine::shootdown(CoreId initiator, Cycles now, const CoreMask& targets,
                          std::span<const UnitIdx> units) {
  CMCP_CHECK(!targets.test(initiator));
  const unsigned num_targets = targets.count(mask_words_);
  if (num_targets == 0 || units.empty()) return 0;

  // The invalidation-request slot: every shootdown in the machine holds it,
  // exactly like the kernel lock the paper measures (section 5.5).
  common::LockGuard slot(shootdown_mu_);

  if (config_.tlb_coherence == TlbCoherence::kHardwareDirectory)
    return hw_invalidate(initiator, now, targets, units);

  const ShootdownTiming t = interconnect_.shootdown(
      now, num_targets, static_cast<unsigned>(units.size()));

  metrics::CoreCounters& init_ctr = counters_[initiator];
  ++init_ctr.shootdowns_initiated;
  init_ctr.cycles_lock_wait += t.lock_wait;
  init_ctr.cycles_shootdown += t.initiate + t.ack_wait;

  if (trace_ != nullptr) {
    trace_->emit({trace::EventKind::kShootdown, initiator, now,
                  t.initiator_total(), units[0], num_targets, units.size(),
                  t.lock_wait, space_of_targets(targets)});
    const Cycles acquired = now + t.lock_wait;
    trace_->emit({trace::EventKind::kSlotHold, initiator, acquired,
                  interconnect_.slot_busy_until() - acquired, units[0],
                  num_targets, 0, 0, core_space_[initiator]});
  }

  targets.for_each(mask_words_, [&](CoreId target) {
    metrics::CoreCounters& ctr = counters_[target];
    ++ctr.ipis_received;
    ctr.remote_invalidations_received += units.size();
    ctr.cycles_interrupt += t.receiver_cost;
    advance(target, t.receiver_cost);
    Tlb& target_tlb = tlbs_[target];
    for (const UnitIdx unit : units) target_tlb.invalidate(unit);
  });

  Cycles extra = 0;
  if (faults_ != nullptr) {
    extra = inject_ack_faults(initiator, now + t.initiator_total(), targets,
                              units[0], core_space_[initiator]);
    init_ctr.cycles_shootdown += extra;
  }
  return t.initiator_total() + extra;
}

Cycles Machine::inject_ack_faults(CoreId initiator, Cycles ack_time,
                                  const CoreMask& targets, UnitIdx unit,
                                  Asid asid) {
  const FaultPlanConfig& fc = faults_->config();
  constexpr auto kAck = static_cast<std::uint64_t>(FaultKind::kShootdownAck);
  metrics::CoreCounters& init_ctr = counters_[initiator];
  Cycles extra = 0;
  Cycles t = ack_time;
  unsigned attempt = 0;
  bool gave_up = false;
  while (faults_->next_ack_lost()) {
    ++attempt;
    if (trace_ != nullptr)
      trace_->emit({trace::EventKind::kFaultInject, initiator, t, 0, unit,
                    kAck, attempt, 0, asid});
    if (attempt >= fc.max_retries) {
      // Budget exhausted: stop re-sending and poll remote TLB state
      // directly. The invalidations were delivered with the first IPI round
      // (re-sends are idempotent), so the poll observes them complete and
      // TLB coherence holds.
      const Cycles poll = fc.backoff(attempt);
      if (trace_ != nullptr)
        trace_->emit({trace::EventKind::kFaultGiveUp, initiator, t, poll,
                      unit, kAck, attempt, 0, asid});
      extra += poll;
      gave_up = true;
      break;
    }
    // Timeout (exponential backoff), then a re-sent IPI round. Receivers
    // recognize the duplicate and ack without repeating PTE work, but still
    // pay the interrupt.
    const Cycles wait = fc.backoff(attempt);
    if (trace_ != nullptr)
      trace_->emit({trace::EventKind::kFaultRetry, initiator, t,
                    wait + config_.cost.ipi_initiate, unit, kAck, attempt,
                    wait, asid});
    extra += wait + config_.cost.ipi_initiate;
    t += wait + config_.cost.ipi_initiate;
    targets.for_each(mask_words_, [&](CoreId target) {
      metrics::CoreCounters& ctr = counters_[target];
      ++ctr.ipis_received;
      ctr.cycles_interrupt += config_.cost.ipi_receive;
      advance(target, config_.cost.ipi_receive);
    });
  }
  if (attempt > 0) {
    const unsigned retries = attempt - (gave_up ? 1u : 0u);
    init_ctr.faults_injected += attempt;
    init_ctr.fault_retries += retries;
    if (gave_up) ++init_ctr.fault_give_ups;
    init_ctr.cycles_recovery += extra;
    faults_->record(FaultKind::kShootdownAck, asid, attempt, retries, gave_up,
                    extra);
  }
  return extra;
}

Cycles Machine::hw_invalidate(CoreId initiator, Cycles now,
                              const CoreMask& targets,
                              std::span<const UnitIdx> units) {
  // Directory hardware: the initiator issues one directed invalidation per
  // (unit, target); receivers lose the entry without being interrupted.
  metrics::CoreCounters& init_ctr = counters_[initiator];
  ++init_ctr.shootdowns_initiated;
  Cycles cycles = 0;
  for (const UnitIdx unit : units) {
    cycles += config_.cost.hw_inval_lookup;
    targets.for_each(mask_words_, [&](CoreId target) {
      cycles += config_.cost.hw_inval_per_target;
      ++counters_[target].remote_invalidations_received;
      tlbs_[target].invalidate(unit);
    });
  }
  init_ctr.cycles_shootdown += cycles;
  if (trace_ != nullptr)
    trace_->emit({trace::EventKind::kShootdown, initiator, now, cycles,
                  units[0], targets.count(), units.size(), 0,
                  space_of_targets(targets)});
  return cycles;
}

Cycles Machine::shootdown_batch(CoreId initiator, Cycles now,
                                std::span<const BatchItem> items) {
  if (items.empty()) return 0;
  common::LockGuard slot(shootdown_mu_);
  CoreMask union_targets;
  for (const BatchItem& item : items) union_targets = union_targets | item.targets;
  union_targets.clear(initiator);
  const unsigned num_targets = union_targets.count(mask_words_);
  if (num_targets == 0) return 0;

  if (config_.tlb_coherence == TlbCoherence::kHardwareDirectory) {
    Cycles cycles = 0;
    for (const BatchItem& item : items) {
      CoreMask targets = item.targets;
      targets.clear(initiator);
      const std::array<UnitIdx, 1> unit = {item.unit};
      cycles += hw_invalidate(initiator, now, targets, unit);
    }
    return cycles;
  }

  const ShootdownTiming t = interconnect_.shootdown(
      now, num_targets, static_cast<unsigned>(items.size()));

  metrics::CoreCounters& init_ctr = counters_[initiator];
  ++init_ctr.shootdowns_initiated;
  init_ctr.cycles_lock_wait += t.lock_wait;

  if (trace_ != nullptr) {
    const Cycles acquired = now + t.lock_wait;
    trace_->emit({trace::EventKind::kSlotHold, initiator, acquired,
                  interconnect_.slot_busy_until() - acquired, kInvalidUnit,
                  num_targets, 0, 0, core_space_[initiator]});
  }

  Cycles slowest_receiver = 0;
  union_targets.for_each(mask_words_, [&](CoreId target) {
    metrics::CoreCounters& ctr = counters_[target];
    ++ctr.ipis_received;
    Tlb& target_tlb = tlbs_[target];
    std::uint64_t mine = 0;
    for (const BatchItem& item : items) {
      if (!item.targets.test(target)) continue;
      ++mine;
      target_tlb.invalidate(item.unit);
    }
    ctr.remote_invalidations_received += mine;
    const Cycles receiver_cost = config_.cost.ipi_receive + config_.cost.invlpg * mine;
    ctr.cycles_interrupt += receiver_cost;
    advance(target, receiver_cost);
    slowest_receiver = std::max(slowest_receiver, receiver_cost);
  });

  const Cycles initiator_cost = t.lock_wait + t.initiate + slowest_receiver;
  init_ctr.cycles_shootdown += t.initiate + slowest_receiver;
  if (trace_ != nullptr)
    trace_->emit({trace::EventKind::kShootdown, initiator, now, initiator_cost,
                  kInvalidUnit, num_targets, items.size(), t.lock_wait,
                  space_of_targets(union_targets)});
  Cycles extra = 0;
  if (faults_ != nullptr) {
    extra = inject_ack_faults(initiator, now + initiator_cost, union_targets,
                              kInvalidUnit, core_space_[initiator]);
    init_ctr.cycles_shootdown += extra;
  }
  return initiator_cost + extra;
}

Machine::PcieTransferResult Machine::pcie_transfer(CoreId core, PcieDir dir,
                                                   Cycles ready_at,
                                                   std::uint64_t bytes,
                                                   UnitIdx unit, Asid asid) {
  PcieTransferResult r;
  if (faults_ == nullptr) {
    r.done = pcie_.transfer(dir, ready_at, bytes, &r.queue_wait);
  } else {
    const PcieTransferOutcome out =
        pcie_.transfer_with_faults(dir, ready_at, bytes, *faults_);
    r.done = out.done;
    r.queue_wait = out.queue_wait;
    r.recovery = out.recovery;
    r.failures = out.failures;
    r.gave_up = out.gave_up;
    if (out.failures > 0) {
      const FaultPlanConfig& fc = faults_->config();
      const FaultKind kind = out.gave_up ? FaultKind::kPcieSticky
                                         : FaultKind::kPcieTransient;
      const auto kind_ord = static_cast<std::uint64_t>(kind);
      const unsigned retries = out.failures - (out.gave_up ? 1u : 0u);
      metrics::CoreCounters& ctr = counters_[core];
      ctr.faults_injected += out.failures;
      ctr.fault_retries += retries;
      if (out.gave_up) ++ctr.fault_give_ups;
      ctr.cycles_recovery += out.recovery;
      if (trace_ != nullptr) {
        Cycles t = out.start;
        for (unsigned attempt = 1; attempt <= out.failures; ++attempt) {
          trace_->emit({trace::EventKind::kFaultInject, core, t,
                        out.attempt_cost, unit, kind_ord, attempt, 0, asid});
          t += out.attempt_cost;
          if (out.gave_up && attempt == out.failures) {
            trace_->emit({trace::EventKind::kFaultGiveUp, core, t,
                          fc.link_reset_cycles, unit, kind_ord, attempt, 0,
                          asid});
            t += fc.link_reset_cycles;
          } else {
            const Cycles wait = fc.backoff(attempt);
            trace_->emit({trace::EventKind::kFaultRetry, core, t, wait, unit,
                          kind_ord, attempt, wait, asid});
            t += wait;
          }
        }
      }
      faults_->record(kind, asid, out.failures, retries, out.gave_up,
                      out.recovery);
    }
  }
  if (trace_ != nullptr)
    trace_->emit({trace::EventKind::kPcieTransfer, core, ready_at,
                  r.done - ready_at, unit, static_cast<std::uint64_t>(dir),
                  bytes, r.queue_wait, asid});
  return r;
}

metrics::CoreCounters Machine::aggregate_app_counters() const {
  metrics::CoreCounters sum;
  for (CoreId i = 0; i < config_.num_cores; ++i) sum += counters_[i];
  return sum;
}

}  // namespace cmcp::sim
