#include "sim/checker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace cmcp::sim {

std::string_view to_string(CheckPoint point) {
  switch (point) {
    case CheckPoint::kAfterFault: return "after_fault";
    case CheckPoint::kAfterEviction: return "after_eviction";
    case CheckPoint::kAfterScan: return "after_scan";
    case CheckPoint::kEndOfRun: return "end_of_run";
  }
  return "?";
}

std::string format_violation(const CheckViolation& violation,
                             const trace::EventSink* events) {
  std::string out = "cmcp: SimCheck invariant violation\n";
  out += "  checker   : " + violation.checker + "\n";
  out += "  invariant : " + violation.invariant + "\n";
  out += "  detail    : " + violation.message + "\n";
  if (violation.unit != kInvalidUnit)
    out += "  unit      : " + std::to_string(violation.unit) + "\n";
  if (violation.core != kInvalidCore)
    out += "  core      : " + std::to_string(violation.core) + "\n";
  if (events != nullptr && !events->empty()) {
    const std::size_t tail =
        std::min(CheckRegistry::kDiagnosticEventTail, events->size());
    out += "  last " + std::to_string(tail) + " trace events:\n";
    const auto& all = events->events();
    for (std::size_t i = all.size() - tail; i < all.size(); ++i) {
      const trace::Event& e = all[i];
      out += "    [" + std::to_string(i) + "] " +
             std::string(to_string(e.kind)) +
             " core=" + std::to_string(e.core) +
             " ts=" + std::to_string(e.start) +
             " dur=" + std::to_string(e.duration);
      if (e.unit != kInvalidUnit) out += " unit=" + std::to_string(e.unit);
      out += '\n';
    }
  }
  return out;
}

CheckRegistry::CheckRegistry() {
  strides_[static_cast<unsigned>(CheckPoint::kAfterFault)] = 64;
  strides_[static_cast<unsigned>(CheckPoint::kAfterEviction)] = 16;
  strides_[static_cast<unsigned>(CheckPoint::kAfterScan)] = 1;
  strides_[static_cast<unsigned>(CheckPoint::kEndOfRun)] = 1;
  handler_ = [this](const CheckViolation& violation) {
    std::fputs(format_violation(violation, events_).c_str(), stderr);
    std::abort();
  };
}

void CheckRegistry::add(std::unique_ptr<Checker> checker) {
  checkers_.push_back(std::move(checker));
}

void CheckRegistry::set_handler(Handler handler) {
  handler_ = std::move(handler);
}

void CheckRegistry::set_stride(CheckPoint point, std::uint64_t stride) {
  strides_[static_cast<unsigned>(point)] = stride;
}

void CheckRegistry::run(CheckPoint point) {
  const unsigned idx = static_cast<unsigned>(point);
  const std::uint64_t stride = strides_[idx];
  if (stride == 0) return;
  if (++calls_[idx] % stride != 0) return;
  run_now(point);
}

void CheckRegistry::run_now(CheckPoint point) {
  ++sweeps_;
  std::vector<CheckViolation> found;
  for (const auto& checker : checkers_) {
    found.clear();
    checker->check(point, found);
    for (const CheckViolation& violation : found) report(violation);
  }
}

void CheckRegistry::report(const CheckViolation& violation) {
  ++violations_;
  handler_(violation);
}

}  // namespace cmcp::sim
