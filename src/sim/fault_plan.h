// sim::FaultPlan — seeded, virtual-time-deterministic fault injection.
//
// A FaultPlan perturbs the machine model with four failure modes drawn from
// real tiered-memory deployments:
//
//   kPcieTransient   a PCIe transfer fails once, then succeeds on retry
//   kPcieSticky      a PCIe transfer keeps failing until the retry budget is
//                    exhausted; recovery resets the link and replays
//   kShootdownAck    a TLB-shootdown acknowledgement is lost; the initiator
//                    times out, re-sends the (idempotent) IPI round, and at
//                    the budget polls remote state directly
//   kEccPoison       a device frame is ECC-poisoned; the poison surfaces the
//                    moment data lands on it (at allocation) or when it is
//                    next touched by the eviction path (latent), and the
//                    frame is quarantined out of the allocator
//   kStraggler       a core's memory-access cost is inflated by an integer
//                    multiplier for a window of virtual time
//
// Determinism contract: every decision is drawn from seeded per-kind
// cmcp::Rng streams (or a pure hash of (seed, core, window) for
// stragglers), all costs are integer virtual cycles, and the engine is
// single-threaded — so a fixed (workload seed, FaultPlanConfig) pair
// replays bit-identically, including across `-j` parallel_runner execution
// where each simulation owns a private plan. No wallclock anywhere
// (cmcp_lint enforces this repo-wide).
//
// The plan only injects; recovery lives where the paper's protocol lives —
// PcieLink replays transfers, Machine re-sends IPI rounds, AddressSpace /
// FrameAllocator quarantine poisoned frames and re-allocate. See
// docs/robustness.md for the recovery state machine.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace cmcp::sim {

enum class FaultKind : std::uint8_t {
  kPcieTransient = 0,
  kPcieSticky = 1,
  kShootdownAck = 2,
  kEccPoison = 3,
  kStraggler = 4,
};

inline constexpr unsigned kNumFaultKinds = 5;

std::string_view to_string(FaultKind kind);

/// All knobs of a fault schedule. Round-trips through to_spec()/parse()
/// (the CLI `--faults=` value and the RunSpec metadata entry), so a trace
/// header fully reproduces the schedule.
struct FaultPlanConfig {
  std::uint64_t seed = 1;         ///< seeds the per-kind decision streams

  // Per-kind incidence. Rates are probabilities per opportunity (one PCIe
  // transfer, one shootdown ack wait, one (core, window) pair); poison is an
  // absolute frame count drawn once at startup.
  double pcie_transient_rate = 0.0;
  double pcie_sticky_rate = 0.0;
  double shootdown_ack_rate = 0.0;
  std::uint64_t poison_frames = 0;
  double straggler_rate = 0.0;

  // Recovery protocol constants (virtual cycles; never wallclock).
  unsigned max_retries = 6;          ///< bounded retry budget per operation
  Cycles backoff_base = 2'000;       ///< first backoff; doubles per attempt
  Cycles backoff_cap = 1'000'000;    ///< exponential backoff saturates here
  Cycles link_reset_cycles = 200'000;  ///< sticky-PCIe give-up fallback cost
  Cycles ecc_detect_cycles = 5'000;  ///< detect + retire one poisoned frame
  unsigned straggler_mult = 4;       ///< access-cost multiplier in a window
  Cycles straggler_window = 2'000'000;  ///< straggler window length

  /// A plan with nothing to inject. Disabled plans are never constructed, so
  /// the simulation takes the exact pre-fault code paths (byte-identical
  /// traces and summaries).
  bool enabled() const {
    return pcie_transient_rate > 0.0 || pcie_sticky_rate > 0.0 ||
           shootdown_ack_rate > 0.0 || poison_frames > 0 ||
           straggler_rate > 0.0;
  }

  /// Exponential backoff before retry `attempt` (1-based):
  /// min(backoff_base << (attempt - 1), backoff_cap).
  Cycles backoff(unsigned attempt) const;

  /// Canonical spec string, e.g. "seed=7,pcie=0.01,sticky=0,ack=0,poison=2,
  /// straggler=0". Extended knobs are appended only when non-default, so
  /// specs stay short and parse(to_spec()) is the identity.
  std::string to_spec() const;

  /// Parse a spec string (comma-separated key=value). Returns false on an
  /// unknown key or malformed value; `out` is default-initialized first.
  static bool parse(std::string_view spec, FaultPlanConfig* out);
};

/// Aggregate fault/recovery accounting for the resilience report.
struct FaultStats {
  std::uint64_t injected[kNumFaultKinds] = {};
  std::uint64_t retries = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t frames_quarantined = 0;
  Cycles recovery_cycles = 0;   ///< extra cycles spent recovering
  Cycles straggler_cycles = 0;  ///< inflation endured in straggler windows
  /// Per-tenant blast radius, indexed by asid (grown on demand).
  std::vector<std::uint64_t> per_asid_faults;
  std::vector<Cycles> per_asid_recovery;

  std::uint64_t total_injected() const {
    std::uint64_t total = 0;
    for (const std::uint64_t n : injected) total += n;
    return total;
  }
};

/// Live injection state for one simulation. Internally synchronized like
/// PcieLink: the engine is single-threaded today, but the accounting must
/// stay safe under the planned parallel engine.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanConfig& config);

  const FaultPlanConfig& config() const { return config_; }

  /// Decision for the next PCIe transfer, drawn once per transfer.
  struct PcieDecision {
    unsigned failures = 0;  ///< failed attempts before the data lands
    bool sticky = false;    ///< budget exhausted; link reset taken
  };
  PcieDecision next_pcie() CMCP_EXCLUDES(mu_);

  /// One ack-wait decision: true = this round's acknowledgement is lost.
  bool next_ack_lost() CMCP_EXCLUDES(mu_);

  /// Draw `poison_frames` distinct frame slots from [0, capacity_units).
  /// Each is 50/50 at-allocation vs latent (surfaces on eviction touch).
  /// Called once by the simulation constructor; pfns are slot *
  /// frames_per_unit, matching FrameAllocator's layout.
  void select_poison(std::uint64_t capacity_units,
                     std::uint64_t frames_per_unit) CMCP_EXCLUDES(mu_);

  /// Does ECC poison surface when data first lands on `pfn`? Consumes the
  /// poison: subsequent calls for the same frame return false.
  bool surfaces_at_alloc(Pfn pfn) CMCP_EXCLUDES(mu_);

  /// Does latent ECC poison surface when the eviction path touches `pfn`?
  bool surfaces_at_evict(Pfn pfn) CMCP_EXCLUDES(mu_);

  /// Access-cost multiplier for `core` at virtual time `now` (1 = healthy).
  /// `window_start` is set on the first query of an afflicted (core, window)
  /// pair, so the caller emits exactly one inject event per window. The
  /// decision itself is a pure hash of (seed, core, window index): no state,
  /// no draw-order dependence.
  unsigned straggler_mult_at(CoreId core, Cycles now, bool* window_start)
      CMCP_EXCLUDES(mu_);

  // -- accounting (called by the recovery sites) ----------------------------
  void record(FaultKind kind, Asid asid, std::uint64_t injected,
              std::uint64_t retries, bool gave_up, Cycles recovery_cycles)
      CMCP_EXCLUDES(mu_);
  void record_quarantine() CMCP_EXCLUDES(mu_);
  void record_straggler_cycles(Cycles extra) CMCP_EXCLUDES(mu_);

  FaultStats stats() const CMCP_EXCLUDES(mu_);

 private:
  struct Poison {
    Pfn pfn = kInvalidPfn;
    bool latent = false;    ///< surfaces on eviction touch, not allocation
    bool surfaced = false;  ///< consumed (frame already quarantined)
  };

  void count(FaultKind kind, Asid asid, std::uint64_t injected,
             Cycles recovery_cycles) CMCP_REQUIRES(mu_);

  const FaultPlanConfig config_;
  mutable common::Mutex mu_;
  Rng pcie_rng_ CMCP_GUARDED_BY(mu_);
  Rng ack_rng_ CMCP_GUARDED_BY(mu_);
  Rng ecc_rng_ CMCP_GUARDED_BY(mu_);
  std::vector<Poison> poison_ CMCP_GUARDED_BY(mu_);
  /// Last straggler window index a start event was emitted for, per core.
  std::vector<std::uint64_t> straggler_emitted_ CMCP_GUARDED_BY(mu_);
  FaultStats stats_ CMCP_GUARDED_BY(mu_);
};

}  // namespace cmcp::sim
