// sim::trace — structured event tracing for the virtual-time engine.
//
// Every cycle the paper accounts for (faults, victim picks, evictions, TLB
// shootdowns, PCIe queueing, scanner passes, barriers) can be recorded as a
// timestamped event and replayed as a timeline: one track per core plus
// tracks for the PCIe link directions and the serialized invalidation slot.
//
// Tracing is off by default and must not perturb the hot path: emitting
// classes hold a `trace::EventSink*` that is null when disabled, and every
// emit point is a single pointer test away from a no-op. Events are plain
// PODs appended to a flat vector (allocation amortized, no per-event heap
// traffic), so an enabled trace changes no virtual-time outcome either —
// identical configuration still gives byte-identical traces.
//
// Two exporters ship with the sink:
//   * Chrome/Perfetto trace-event JSON (open in https://ui.perfetto.dev or
//     chrome://tracing); timestamps are virtual cycles, shown as "us".
//   * JSONL — one self-describing JSON object per line (meta header, one
//     line per event, summary footer) for scripts.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace cmcp::sim::trace {

enum class EventKind : std::uint8_t {
  kMinorFault = 0,   ///< PSPT PTE copy / preload or prefetch first touch
  kMajorFault,       ///< host -> device data movement fault
  kVictimPick,       ///< replacement policy chose an eviction victim
  kEviction,         ///< unmap + shootdown + (dirty) write-back
  kShootdown,        ///< remote TLB invalidation round (initiator view)
  kSlotHold,         ///< invalidation-request slot occupancy
  kPcieTransfer,     ///< one queued transfer on the PCIe link
  kScanPass,         ///< one access-bit scanner sweep
  kBarrierWait,      ///< core idle at a workload barrier
  // Fault-injection protocol (sim/fault_plan.h). Appended after the schema-1
  // kinds: a run with faults disabled emits none of them, and the JSONL
  // summary omits zero-count kinds, so no-fault traces stay byte-identical.
  kFaultInject,      ///< one injected fault (kind-specific payload)
  kFaultRetry,       ///< bounded retry after a failure, with backoff
  kFaultGiveUp,      ///< retry budget exhausted; fallback path taken
  kQuarantine,       ///< poisoned frame retired from the allocator
};

inline constexpr unsigned kNumEventKinds = 13;

std::string_view to_string(EventKind kind);

/// Names of the a/b/c payload fields per kind ("" = unused).
std::array<std::string_view, 3> arg_names(EventKind kind);

/// One timed event. `start` and `duration` are virtual cycles; `core` is the
/// emitting core (the scanner pseudo-core for scan passes). `unit` is the
/// mapping unit involved or kInvalidUnit. The a/b/c payload fields are
/// kind-specific — see arg_names() and docs/observability.md. `asid` is the
/// address space the event belongs to; it stays 0 (and is never serialized)
/// in single-tenant runs, so their traces are byte-identical to schema 1.
/// It is deliberately the LAST member: existing positional brace-inits keep
/// compiling and default it to 0.
struct Event {
  EventKind kind;
  CoreId core;
  Cycles start;
  Cycles duration;
  UnitIdx unit;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  Asid asid = 0;
};

/// Flat, append-only event buffer. A null `EventSink*` is the disabled
/// ("null sink") state: emit points guard on the pointer and cost one
/// predictable branch.
///
/// Emission is internally synchronized: emitters (today one engine thread;
/// under the planned parallel engine, one per host thread) may call emit()
/// concurrently without corrupting the buffer. Read-side accessors are
/// quiescent-phase only — export after the run, when no emitter is live.
/// Concurrent emission is memory-safe but its interleaving is not
/// deterministic; the parallel engine must shard sinks per core and merge
/// by timestamp to keep the byte-identical-trace guarantee.
class EventSink {
 public:
  EventSink() { events_.reserve(kInitialCapacity); }

  void emit(const Event& event) CMCP_EXCLUDES(mu_) {
    common::LockGuard lock(mu_);
    events_.push_back(event);
  }

  /// Quiescent-phase accessor: hands out a reference to the guarded buffer,
  /// valid only once every emitter has finished (exporters run post-run).
  const std::vector<Event>& events() const CMCP_NO_THREAD_SAFETY_ANALYSIS {
    return events_;
  }
  std::size_t size() const CMCP_EXCLUDES(mu_) {
    common::LockGuard lock(mu_);
    return events_.size();
  }
  bool empty() const CMCP_EXCLUDES(mu_) {
    common::LockGuard lock(mu_);
    return events_.empty();
  }
  void clear() CMCP_EXCLUDES(mu_) {
    common::LockGuard lock(mu_);
    events_.clear();
  }

  /// Number of application cores, set by the simulation when the sink is
  /// attached; fixes the track layout (scanner/PCIe/slot tracks follow).
  void set_num_app_cores(unsigned n) { num_app_cores_ = n; }
  unsigned num_app_cores() const { return num_app_cores_; }

  /// Number of address spaces sharing the machine. Each space owns one
  /// scanner pseudo-core (id == num_app_cores + asid), so the scanner-track
  /// block widens with it. Defaults to 1 — the single-tenant layout, whose
  /// serialized form is unchanged from schema 1.
  void set_num_spaces(unsigned n) { num_spaces_ = n == 0 ? 1 : n; }
  unsigned num_spaces() const { return num_spaces_; }

  // Track ids used by the exporters. Scanner tracks occupy
  // [num_app_cores, num_app_cores + num_spaces); PCIe/slot tracks follow.
  unsigned scanner_track(unsigned asid = 0) const { return num_app_cores_ + asid; }
  unsigned pcie_h2d_track() const { return num_app_cores_ + num_spaces_ + 0; }
  unsigned pcie_d2h_track() const { return num_app_cores_ + num_spaces_ + 1; }
  unsigned slot_track() const { return num_app_cores_ + num_spaces_ + 2; }

 private:
  static constexpr std::size_t kInitialCapacity = 4096;
  mutable common::Mutex mu_;
  std::vector<Event> events_ CMCP_GUARDED_BY(mu_);
  /// Set once when the sink is attached, before any emitter runs.
  unsigned num_app_cores_ = 0;
  unsigned num_spaces_ = 1;
};

/// Trace/metadata header entries: ordered (name, value) string pairs
/// (metrics::RunSpec::describe() produces these).
using Metadata = std::vector<std::pair<std::string, std::string>>;

/// End-of-run aggregate counters for the JSONL summary footer.
using Summary = std::vector<std::pair<std::string, std::uint64_t>>;

enum class Format : std::uint8_t {
  kPerfetto = 0,  ///< Chrome trace-event JSON
  kJsonl = 1,     ///< line-delimited JSON (meta, events, summary)
};

std::string_view to_string(Format format);

/// Parse "perfetto" / "jsonl"; returns false on anything else.
bool parse_format(std::string_view text, Format* out);

/// Chrome/Perfetto trace-event JSON: {"traceEvents": [...], "metadata": ...}
/// with thread-name metadata records naming every track.
void export_perfetto(const EventSink& sink, const Metadata& meta,
                     std::ostream& os);

/// JSONL: meta header line, one line per event (named payload fields),
/// summary footer (per-kind event counts plus caller-provided counters).
void export_jsonl(const EventSink& sink, const Metadata& meta,
                  const Summary& summary, std::ostream& os);

/// Export to `path` in `format`, creating parent directories as needed.
void write_trace_file(const EventSink& sink, const Metadata& meta,
                      const Summary& summary, Format format,
                      const std::string& path);

}  // namespace cmcp::sim::trace
