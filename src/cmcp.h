// Umbrella header: the public API of the cmcp library.
//
// Quick tour:
//   * core/simulation.h      — configure and run one experiment
//   * policy/*               — replacement policies (CMCP, FIFO, LRU, ...)
//   * mm/*                   — page tables (regular / PSPT), frames, pages
//   * sim/*                  — the many-core machine model and cost model
//   * workloads/*            — the paper's four workloads + synthetics
//   * metrics/*              — counters, tables, results, experiment runner
//   * sim/trace.h            — structured event tracing + exporters
#pragma once

#include "core/memory_manager.h"
#include "core/simulation.h"
#include "metrics/experiment.h"
#include "metrics/parallel_runner.h"
#include "metrics/result_writer.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "sim/trace.h"
#include "mm/phi64k.h"
#include "policy/cmcp.h"
#include "policy/policy_factory.h"
#include "workloads/bt.h"
#include "workloads/cg.h"
#include "workloads/lu.h"
#include "workloads/stencil.h"
#include "workloads/synthetic.h"
#include "workloads/trace.h"
#include "workloads/workload_factory.h"
