// Frame-partitioning / QoS policies for multi-tenant runs.
//
// When several address spaces contend for one FrameAllocator the coordinator
// asks this policy two questions on every capacity miss:
//
//   1. may_allocate(asid): may this tenant take a free frame right now?
//      (A static reserve can say "no" even when free frames exist, because
//      they are earmarked for tenants still under their floor.)
//   2. choose_victim_space(asid): when no frame may be taken, which address
//      space must evict one of its own resident units?
//
// PartitionKind::kNone reduces exactly to the pre-refactor single-tenant
// behavior: allocate while frames remain, evict from yourself when full.
// All tie-breaks are deterministic (lowest asid) so multi-tenant runs stay
// bit-reproducible.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "mm/frame_allocator.h"

namespace cmcp::mm {

enum class PartitionKind : std::uint8_t {
  kNone = 0,              ///< free-for-all; each tenant evicts from itself
  kStaticReserve = 1,     ///< per-tenant guaranteed floors (coremap-style split)
  kProportionalShare = 2, ///< weighted targets; evict the noisiest neighbor
};

constexpr std::string_view to_string(PartitionKind k) {
  switch (k) {
    case PartitionKind::kNone: return "none";
    case PartitionKind::kStaticReserve: return "static-reserve";
    case PartitionKind::kProportionalShare: return "proportional-share";
  }
  return "?";
}

/// Per-tenant QoS parameters. `reserve_units` is the guaranteed floor under
/// kStaticReserve; `weight` drives kProportionalShare targets.
struct TenantShare {
  std::uint64_t reserve_units = 0;
  std::uint64_t weight = 1;
};

class FramePartition {
 public:
  FramePartition() = default;

  /// `shares[i]` parameterizes asid i. Floors are clamped so their sum never
  /// exceeds the allocator capacity (excess is trimmed from the highest
  /// asids, deterministically).
  FramePartition(PartitionKind kind, std::uint64_t capacity,
                 std::vector<TenantShare> shares);

  PartitionKind kind() const { return kind_; }
  std::uint64_t num_tenants() const { return shares_.size(); }
  std::uint64_t capacity() const { return capacity_; }

  /// Recompute floors and targets against a changed capacity — the
  /// degradation path when quarantined frames shrink the allocator's usable
  /// pool mid-run. Floors re-clamp against the new capacity (trimmed from
  /// the highest asids; they never underflow) and proportional targets are
  /// re-apportioned, so tenants shrink instead of crashing.
  void set_capacity(std::uint64_t capacity);

  /// Guaranteed floor for `asid` (0 unless kStaticReserve).
  std::uint64_t reserve_of(Asid asid) const;

  /// Proportional-share target for `asid` (largest-remainder apportionment
  /// of the capacity by weight; equals capacity for single tenant / kNone).
  std::uint64_t target_of(Asid asid) const;

  /// Whether `asid` may take a free frame from `alloc` right now.
  bool may_allocate(Asid asid, const FrameAllocator& alloc) const;

  /// Which address space must evict so `asid` can make progress. Always
  /// returns a space with at least one resident frame; returns `asid` itself
  /// under kNone and whenever no better-loaded neighbor exists.
  Asid choose_victim_space(Asid asid, const FrameAllocator& alloc) const;

 private:
  /// Clamp floors and apportion targets for the current capacity_.
  void rebuild();

  PartitionKind kind_ = PartitionKind::kNone;
  std::uint64_t capacity_ = 0;
  std::vector<TenantShare> shares_;
  std::vector<std::uint64_t> targets_;  ///< precomputed proportional targets
};

}  // namespace cmcp::mm
