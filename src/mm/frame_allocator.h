// Device-RAM frame allocator for the computation area.
//
// The memory constraint of the experiments is expressed here: the allocator
// is created with `capacity` frames of one mapping unit each — e.g. 37% of
// cg.B's footprint — and the host side is treated as an infinite backing
// store reached over PCIe.
//
// Multi-tenant runs share one allocator between address spaces: every
// allocation is tagged with the owning asid so partition policies and the
// frame-ownership invariant checker can account per-tenant usage. Single
// tenant callers use the default owner (asid 0) and see exactly the
// pre-refactor behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cmcp::mm {

class FrameAllocator {
 public:
  /// `capacity` frames; for 64 kB units frame numbers are multiples of 16 so
  /// the Phi alignment rule (paper section 4) holds by construction.
  FrameAllocator(std::uint64_t capacity, PageSizeClass size);

  /// Returns kInvalidPfn when the device memory is exhausted (the caller
  /// must evict first). The frame is charged to `owner`.
  Pfn allocate(Asid owner = 0);

  void free(Pfn pfn);

  /// Retire an allocated frame (ECC poison): it is uncharged from its owner
  /// but never returns to the free list, shrinking usable capacity for the
  /// rest of the run. Quarantined frames are neither free nor in use.
  void quarantine(Pfn pfn);

  bool is_quarantined(Pfn pfn) const;
  std::uint64_t quarantined_count() const { return quarantined_count_; }
  /// Frames the allocator can still serve: capacity minus the quarantine
  /// list. FramePartition targets are recomputed against this after every
  /// quarantine (core::MemoryManager::on_frames_quarantined).
  std::uint64_t usable_capacity() const {
    return capacity_ - quarantined_count_;
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t in_use() const {
    return capacity_ - free_.size() - quarantined_count_;
  }
  std::uint64_t free_count() const { return free_.size(); }
  bool full() const { return free_.empty(); }

  std::uint64_t frames_per_unit() const { return frames_per_unit_; }

  /// Frames currently charged to `owner`. Cheap: a counter, not a scan.
  std::uint64_t in_use_by(Asid owner) const {
    return owner < in_use_by_.size() ? in_use_by_[owner] : 0;
  }

  /// Owner of an allocated frame; kInvalidAsid when the frame is free.
  Asid owner_of(Pfn pfn) const;

  /// Frees every frame still charged to `owner` (tenant exit). Returns the
  /// number of frames reclaimed.
  std::uint64_t release_all(Asid owner);

 private:
  std::uint64_t capacity_;
  std::uint64_t frames_per_unit_;
  std::vector<Pfn> free_;
  /// Double-free / double-allocate detection (always on: the check is one
  /// byte test per event and eviction bugs corrupt every statistic). Byte
  /// storage, not vector<bool>: the proxy-reference bit masking costs more
  /// than the byte it saves on a structure this small.
  std::vector<std::uint8_t> allocated_;
  /// Owner asid per frame slot; only meaningful where allocated_[slot] != 0.
  std::vector<Asid> owners_;
  /// Per-asid allocated-frame counts, grown on demand.
  std::vector<std::uint64_t> in_use_by_;
  /// Retired (ECC-poisoned) slots: never free, never allocatable again.
  std::vector<std::uint8_t> quarantined_;
  std::uint64_t quarantined_count_ = 0;
};

}  // namespace cmcp::mm
