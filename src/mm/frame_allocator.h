// Device-RAM frame allocator for the computation area.
//
// The memory constraint of the experiments is expressed here: the allocator
// is created with `capacity` frames of one mapping unit each — e.g. 37% of
// cg.B's footprint — and the host side is treated as an infinite backing
// store reached over PCIe.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cmcp::mm {

class FrameAllocator {
 public:
  /// `capacity` frames; for 64 kB units frame numbers are multiples of 16 so
  /// the Phi alignment rule (paper section 4) holds by construction.
  FrameAllocator(std::uint64_t capacity, PageSizeClass size);

  /// Returns kInvalidPfn when the device memory is exhausted (the caller
  /// must evict first).
  Pfn allocate();

  void free(Pfn pfn);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t in_use() const { return capacity_ - free_.size(); }
  bool full() const { return free_.empty(); }

 private:
  std::uint64_t capacity_;
  std::uint64_t frames_per_unit_;
  std::vector<Pfn> free_;
  /// Double-free / double-allocate detection (always on: the check is one
  /// byte test per event and eviction bugs corrupt every statistic). Byte
  /// storage, not vector<bool>: the proxy-reference bit masking costs more
  /// than the byte it saves on a structure this small.
  std::vector<std::uint8_t> allocated_;
};

}  // namespace cmcp::mm
