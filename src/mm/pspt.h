// Per-core Partially Separated Page Tables (paper section 2.3, CCGrid'13).
//
// Each core owns a private set of PTEs for the computation area; a core maps
// a unit only when it actually touches it. A per-unit directory records the
// mapping-core mask, giving O(1) answers to the two questions regular tables
// cannot answer: "whose TLB can hold this translation?" (shootdown targeting)
// and "how many cores map this page?" (CMCP's priority signal).
//
// Storage is dense and direct-indexed (docs/performance.md): the unit index
// is the slot. The per-core "PTE" is a single flag byte — the frame number
// need not be replicated per core because the PSPT coherence invariant
// (all private PTEs of a virtual page name the same frame) pins it to the
// directory entry. Every query on the per-access path is one or two indexed
// loads; no hashing anywhere.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "mm/page_table.h"

namespace cmcp::mm {

class Pspt final : public PageTable {
 public:
  explicit Pspt(CoreId num_cores);

  PageTableKind kind() const override { return PageTableKind::kPspt; }

  bool has_mapping(CoreId core, UnitIdx unit) const override;
  bool any_mapping(UnitIdx unit) const override;
  void map(CoreId core, UnitIdx unit, Pfn pfn) override;
  CoreMask unmap_all(UnitIdx unit) override;
  CoreMask mapping_cores(UnitIdx unit) const override;
  unsigned core_map_count(UnitIdx unit) const override;
  Pfn pfn_of(UnitIdx unit) const override;

  void mark_accessed(CoreId core, UnitIdx unit) override;
  void mark_dirty(CoreId core, UnitIdx unit) override;
  bool test_accessed(UnitIdx unit, unsigned* pte_reads) const override;
  bool clear_accessed(UnitIdx unit) override;
  bool test_dirty(UnitIdx unit) const override;
  void clear_dirty(UnitIdx unit) override;
  std::uint64_t mapped_units() const override { return mapped_units_; }

  void reserve_units(UnitIdx n) override;

  /// Per-core view, for tests and the Fig. 6 analysis.
  std::uint64_t mapped_units_of_core(CoreId core) const {
    return mapped_of_core_[core];
  }

  // --- test-only fault injection ------------------------------------------
  // SimCheck's checker-detects-the-bug coverage needs a way to corrupt the
  // directory the way a real accounting bug would (count drifting from the
  // mask, mask gaining a core without a PTE). Never called by product code.
  void corrupt_count_for_test(UnitIdx unit, unsigned count);
  void corrupt_mask_add_core_for_test(UnitIdx unit, CoreId core);

 private:
  /// Private-PTE flag byte. kValid doubles as "entry exists" — a zero byte
  /// is exactly "this core does not map this unit", so freshly grown
  /// storage is correct without initialization beyond zeroing.
  enum PteFlags : std::uint8_t {
    kValid = 1u << 0,
    kAccessed = 1u << 1,
    kDirty = 1u << 2,
  };

  /// Directory entry WITHOUT the mapping mask: the mask lives in the
  /// parallel `masks_` array at runtime width (ceil(num_cores/64) words
  /// per unit, not CoreMask::kWords). At the paper's 56 cores that is one
  /// word per unit instead of seventeen — the directory is touched on
  /// every fault and eviction, and shrinking the entry from three cache
  /// lines to one is worth the widening copy at the CoreMask API boundary.
  struct UnitInfo {
    Pfn pfn = kInvalidPfn;
    unsigned count = 0;
    /// Directory entry liveness. Deliberately separate from `count`, which
    /// the corruption test hooks may set to arbitrary values (including 0)
    /// without the unit ceasing to exist.
    bool present = false;
  };

  std::uint64_t* mask_of(UnitIdx unit) {
    return &masks_[static_cast<std::size_t>(unit) * mask_words_];
  }
  const std::uint64_t* mask_of(UnitIdx unit) const {
    return &masks_[static_cast<std::size_t>(unit) * mask_words_];
  }

  /// Widen a unit's stored mask words to a full CoreMask.
  CoreMask widen(const std::uint64_t* w) const {
    CoreMask m;
    for (unsigned i = 0; i < mask_words_; ++i) m.set_word(i, w[i]);
    return m;
  }

  /// Invoke fn(CoreId) for every mapping core of `unit`, ascending.
  template <typename Fn>
  void for_each_mapping(UnitIdx unit, Fn&& fn) const {
    const std::uint64_t* w = mask_of(unit);
    for (unsigned wi = 0; wi < mask_words_; ++wi) {
      std::uint64_t word = w[wi];
      while (word != 0) {
        fn(static_cast<CoreId>(wi * 64 + std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  /// Grow per-unit storage to cover `unit` (amortized; steady-state runs
  /// never hit the growth path because MemoryManager pre-reserves).
  void ensure_unit(UnitIdx unit);

  CoreId num_cores_;
  unsigned mask_words_;                            ///< ceil(num_cores/64)
  std::vector<std::vector<std::uint8_t>> tables_;  ///< [core][unit] flag byte
  std::vector<UnitInfo> directory_;                ///< [unit]
  std::vector<std::uint64_t> masks_;  ///< [unit * mask_words_] mapping mask
  std::vector<std::uint64_t> mapped_of_core_;      ///< [core] valid PTE count
  std::uint64_t mapped_units_ = 0;                 ///< present directory entries
};

}  // namespace cmcp::mm
