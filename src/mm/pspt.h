// Per-core Partially Separated Page Tables (paper section 2.3, CCGrid'13).
//
// Each core owns a private set of PTEs for the computation area; a core maps
// a unit only when it actually touches it. A per-unit directory records the
// mapping-core mask, giving O(1) answers to the two questions regular tables
// cannot answer: "whose TLB can hold this translation?" (shootdown targeting)
// and "how many cores map this page?" (CMCP's priority signal).
#pragma once

#include <unordered_map>
#include <vector>

#include "mm/page_table.h"

namespace cmcp::mm {

class Pspt final : public PageTable {
 public:
  explicit Pspt(CoreId num_cores);

  PageTableKind kind() const override { return PageTableKind::kPspt; }

  bool has_mapping(CoreId core, UnitIdx unit) const override;
  bool any_mapping(UnitIdx unit) const override;
  void map(CoreId core, UnitIdx unit, Pfn pfn) override;
  CoreMask unmap_all(UnitIdx unit) override;
  CoreMask mapping_cores(UnitIdx unit) const override;
  unsigned core_map_count(UnitIdx unit) const override;
  Pfn pfn_of(UnitIdx unit) const override;

  void mark_accessed(CoreId core, UnitIdx unit) override;
  void mark_dirty(CoreId core, UnitIdx unit) override;
  bool test_accessed(UnitIdx unit, unsigned* pte_reads) const override;
  bool clear_accessed(UnitIdx unit) override;
  bool test_dirty(UnitIdx unit) const override;
  void clear_dirty(UnitIdx unit) override;
  std::uint64_t mapped_units() const override { return directory_.size(); }

  /// Per-core view, for tests and the Fig. 6 analysis.
  std::uint64_t mapped_units_of_core(CoreId core) const {
    return tables_[core].size();
  }

  // --- test-only fault injection ------------------------------------------
  // SimCheck's checker-detects-the-bug coverage needs a way to corrupt the
  // directory the way a real accounting bug would (count drifting from the
  // mask, mask gaining a core without a PTE). Never called by product code.
  void corrupt_count_for_test(UnitIdx unit, unsigned count);
  void corrupt_mask_add_core_for_test(UnitIdx unit, CoreId core);

 private:
  struct Pte {
    Pfn pfn = kInvalidPfn;
    bool accessed = false;
    bool dirty = false;
  };

  struct UnitInfo {
    Pfn pfn = kInvalidPfn;
    CoreMask mapping;
    unsigned count = 0;
  };

  CoreId num_cores_;
  std::vector<std::unordered_map<UnitIdx, Pte>> tables_;  ///< per-core PTEs
  std::unordered_map<UnitIdx, UnitInfo> directory_;
};

}  // namespace cmcp::mm
