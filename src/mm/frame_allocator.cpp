#include "mm/frame_allocator.h"

#include "common/assert.h"

namespace cmcp::mm {

FrameAllocator::FrameAllocator(std::uint64_t capacity, PageSizeClass size)
    : capacity_(capacity), frames_per_unit_(base_pages_per_unit(size)) {
  CMCP_CHECK(capacity > 0);
  free_.reserve(capacity);
  // LIFO free list; hand out ascending frame numbers first.
  for (std::uint64_t i = capacity; i-- > 0;) free_.push_back(i * frames_per_unit_);
  allocated_.assign(capacity, 0);
}

Pfn FrameAllocator::allocate() {
  if (free_.empty()) return kInvalidPfn;
  const Pfn pfn = free_.back();
  free_.pop_back();
  const auto slot = pfn / frames_per_unit_;
  CMCP_CHECK(allocated_[slot] == 0);
  allocated_[slot] = 1;
  return pfn;
}

void FrameAllocator::free(Pfn pfn) {
  CMCP_CHECK(pfn % frames_per_unit_ == 0);
  const auto slot = pfn / frames_per_unit_;
  CMCP_CHECK(slot < capacity_);
  CMCP_CHECK_MSG(allocated_[slot] != 0, "double free of device frame");
  allocated_[slot] = 0;
  free_.push_back(pfn);
}

}  // namespace cmcp::mm
