#include "mm/frame_allocator.h"

#include "common/assert.h"

namespace cmcp::mm {

FrameAllocator::FrameAllocator(std::uint64_t capacity, PageSizeClass size)
    : capacity_(capacity), frames_per_unit_(base_pages_per_unit(size)) {
  CMCP_CHECK(capacity > 0);
  free_.reserve(capacity);
  // LIFO free list; hand out ascending frame numbers first.
  for (std::uint64_t i = capacity; i-- > 0;) free_.push_back(i * frames_per_unit_);
  allocated_.assign(capacity, 0);
  owners_.assign(capacity, kInvalidAsid);
  quarantined_.assign(capacity, 0);
}

Pfn FrameAllocator::allocate(Asid owner) {
  if (free_.empty()) return kInvalidPfn;
  const Pfn pfn = free_.back();
  free_.pop_back();
  const auto slot = pfn / frames_per_unit_;
  CMCP_CHECK(allocated_[slot] == 0);
  allocated_[slot] = 1;
  owners_[slot] = owner;
  if (owner >= in_use_by_.size()) in_use_by_.resize(owner + 1, 0);
  ++in_use_by_[owner];
  return pfn;
}

void FrameAllocator::free(Pfn pfn) {
  CMCP_CHECK(pfn % frames_per_unit_ == 0);
  const auto slot = pfn / frames_per_unit_;
  CMCP_CHECK(slot < capacity_);
  CMCP_CHECK_MSG(allocated_[slot] != 0, "double free of device frame");
  allocated_[slot] = 0;
  const Asid owner = owners_[slot];
  CMCP_CHECK(owner < in_use_by_.size() && in_use_by_[owner] > 0);
  --in_use_by_[owner];
  owners_[slot] = kInvalidAsid;
  free_.push_back(pfn);
}

void FrameAllocator::quarantine(Pfn pfn) {
  CMCP_CHECK(pfn % frames_per_unit_ == 0);
  const auto slot = pfn / frames_per_unit_;
  CMCP_CHECK(slot < capacity_);
  CMCP_CHECK_MSG(allocated_[slot] != 0,
                 "quarantine of a frame that is not allocated");
  CMCP_CHECK_MSG(quarantined_[slot] == 0, "double quarantine of device frame");
  allocated_[slot] = 0;
  const Asid owner = owners_[slot];
  CMCP_CHECK(owner < in_use_by_.size() && in_use_by_[owner] > 0);
  --in_use_by_[owner];
  owners_[slot] = kInvalidAsid;
  // Deliberately NOT pushed onto free_: the frame is retired for the run.
  quarantined_[slot] = 1;
  ++quarantined_count_;
}

bool FrameAllocator::is_quarantined(Pfn pfn) const {
  CMCP_CHECK(pfn % frames_per_unit_ == 0);
  const auto slot = pfn / frames_per_unit_;
  CMCP_CHECK(slot < capacity_);
  return quarantined_[slot] != 0;
}

Asid FrameAllocator::owner_of(Pfn pfn) const {
  CMCP_CHECK(pfn % frames_per_unit_ == 0);
  const auto slot = pfn / frames_per_unit_;
  CMCP_CHECK(slot < capacity_);
  return allocated_[slot] ? owners_[slot] : kInvalidAsid;
}

std::uint64_t FrameAllocator::release_all(Asid owner) {
  std::uint64_t reclaimed = 0;
  for (std::uint64_t slot = 0; slot < capacity_; ++slot) {
    if (allocated_[slot] != 0 && owners_[slot] == owner) {
      free(slot * frames_per_unit_);
      ++reclaimed;
    }
  }
  return reclaimed;
}

}  // namespace cmcp::mm
