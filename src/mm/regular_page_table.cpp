#include "mm/regular_page_table.h"

#include "common/assert.h"

namespace cmcp::mm {

RegularPageTable::RegularPageTable(CoreId num_cores)
    : num_cores_(num_cores), all_cores_(CoreMask::first_n(num_cores)) {}

bool RegularPageTable::has_mapping(CoreId /*core*/, UnitIdx unit) const {
  return entries_.contains(unit);
}

bool RegularPageTable::any_mapping(UnitIdx unit) const { return entries_.contains(unit); }

void RegularPageTable::map(CoreId /*core*/, UnitIdx unit, Pfn pfn) {
  auto [it, inserted] = entries_.try_emplace(unit, Entry{.pfn = pfn});
  CMCP_CHECK_MSG(inserted || it->second.pfn == pfn, "remap to a different frame");
}

CoreMask RegularPageTable::unmap_all(UnitIdx unit) {
  const auto erased = entries_.erase(unit);
  CMCP_CHECK_MSG(erased == 1, "unmap of an unmapped unit");
  // Centralized book-keeping: any core may have cached this translation.
  return all_cores_;
}

CoreMask RegularPageTable::mapping_cores(UnitIdx unit) const {
  return entries_.contains(unit) ? all_cores_ : CoreMask{};
}

unsigned RegularPageTable::core_map_count(UnitIdx unit) const {
  // The precise count is unobtainable; report the pessimistic bound.
  return entries_.contains(unit) ? num_cores_ : 0;
}

Pfn RegularPageTable::pfn_of(UnitIdx unit) const {
  auto it = entries_.find(unit);
  return it == entries_.end() ? kInvalidPfn : it->second.pfn;
}

void RegularPageTable::mark_accessed(CoreId /*core*/, UnitIdx unit) {
  auto it = entries_.find(unit);
  CMCP_CHECK(it != entries_.end());
  it->second.accessed = true;
}

void RegularPageTable::mark_dirty(CoreId /*core*/, UnitIdx unit) {
  auto it = entries_.find(unit);
  CMCP_CHECK(it != entries_.end());
  it->second.dirty = true;
}

bool RegularPageTable::test_accessed(UnitIdx unit, unsigned* pte_reads) const {
  if (pte_reads != nullptr) *pte_reads = 1;
  auto it = entries_.find(unit);
  return it != entries_.end() && it->second.accessed;
}

bool RegularPageTable::clear_accessed(UnitIdx unit) {
  auto it = entries_.find(unit);
  if (it == entries_.end()) return false;
  const bool was = it->second.accessed;
  it->second.accessed = false;
  return was;
}

bool RegularPageTable::test_dirty(UnitIdx unit) const {
  auto it = entries_.find(unit);
  return it != entries_.end() && it->second.dirty;
}

void RegularPageTable::clear_dirty(UnitIdx unit) {
  auto it = entries_.find(unit);
  if (it != entries_.end()) it->second.dirty = false;
}

}  // namespace cmcp::mm
