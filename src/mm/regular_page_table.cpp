#include "mm/regular_page_table.h"

#include "common/assert.h"

namespace cmcp::mm {

RegularPageTable::RegularPageTable(CoreId num_cores)
    : num_cores_(num_cores), all_cores_(CoreMask::first_n(num_cores)) {}

void RegularPageTable::reserve_units(UnitIdx n) {
  if (n > entries_.size()) entries_.resize(n);
}

bool RegularPageTable::has_mapping(CoreId /*core*/, UnitIdx unit) const {
  return entry(unit) != nullptr;
}

bool RegularPageTable::any_mapping(UnitIdx unit) const {
  return entry(unit) != nullptr;
}

void RegularPageTable::map(CoreId /*core*/, UnitIdx unit, Pfn pfn) {
  if (unit >= entries_.size()) reserve_units(unit + 1);
  Entry& e = entries_[unit];
  if ((e.flags & kPresent) == 0) {
    e = Entry{.pfn = pfn, .flags = kPresent};
    ++mapped_;
    return;
  }
  CMCP_CHECK_MSG(e.pfn == pfn, "remap to a different frame");
}

CoreMask RegularPageTable::unmap_all(UnitIdx unit) {
  Entry* e = entry(unit);
  CMCP_CHECK_MSG(e != nullptr, "unmap of an unmapped unit");
  *e = Entry{};
  --mapped_;
  // Centralized book-keeping: any core may have cached this translation.
  return all_cores_;
}

CoreMask RegularPageTable::mapping_cores(UnitIdx unit) const {
  return entry(unit) != nullptr ? all_cores_ : CoreMask{};
}

unsigned RegularPageTable::core_map_count(UnitIdx unit) const {
  // The precise count is unobtainable; report the pessimistic bound.
  return entry(unit) != nullptr ? num_cores_ : 0;
}

Pfn RegularPageTable::pfn_of(UnitIdx unit) const {
  const Entry* e = entry(unit);
  return e == nullptr ? kInvalidPfn : e->pfn;
}

void RegularPageTable::mark_accessed(CoreId /*core*/, UnitIdx unit) {
  Entry* e = entry(unit);
  CMCP_CHECK(e != nullptr);
  e->flags |= kAccessed;
}

void RegularPageTable::mark_dirty(CoreId /*core*/, UnitIdx unit) {
  Entry* e = entry(unit);
  CMCP_CHECK(e != nullptr);
  e->flags |= kDirty;
}

bool RegularPageTable::test_accessed(UnitIdx unit, unsigned* pte_reads) const {
  if (pte_reads != nullptr) *pte_reads = 1;
  const Entry* e = entry(unit);
  return e != nullptr && (e->flags & kAccessed) != 0;
}

bool RegularPageTable::clear_accessed(UnitIdx unit) {
  Entry* e = entry(unit);
  if (e == nullptr) return false;
  const bool was = (e->flags & kAccessed) != 0;
  e->flags &= static_cast<std::uint8_t>(~kAccessed);
  return was;
}

bool RegularPageTable::test_dirty(UnitIdx unit) const {
  const Entry* e = entry(unit);
  return e != nullptr && (e->flags & kDirty) != 0;
}

void RegularPageTable::clear_dirty(UnitIdx unit) {
  Entry* e = entry(unit);
  if (e != nullptr) e->flags &= static_cast<std::uint8_t>(~kDirty);
}

}  // namespace cmcp::mm
