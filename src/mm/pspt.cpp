#include "mm/pspt.h"

#include "common/assert.h"

namespace cmcp::mm {

Pspt::Pspt(CoreId num_cores)
    : num_cores_(num_cores),
      mask_words_((num_cores + 63u) / 64u),
      tables_(num_cores),
      mapped_of_core_(num_cores, 0) {}

void Pspt::reserve_units(UnitIdx n) {
  if (n <= directory_.size()) return;
  directory_.resize(n);
  masks_.resize(static_cast<std::size_t>(n) * mask_words_, 0);
  for (auto& table : tables_) table.resize(n, 0);
}

void Pspt::ensure_unit(UnitIdx unit) {
  if (unit >= directory_.size()) reserve_units(unit + 1);
}

bool Pspt::has_mapping(CoreId core, UnitIdx unit) const {
  CMCP_CHECK(core < num_cores_);
  const auto& table = tables_[core];
  return unit < table.size() && (table[unit] & kValid) != 0;
}

bool Pspt::any_mapping(UnitIdx unit) const {
  return unit < directory_.size() && directory_[unit].present;
}

void Pspt::map(CoreId core, UnitIdx unit, Pfn pfn) {
  CMCP_CHECK(core < num_cores_);
  ensure_unit(unit);
  std::uint8_t& pte = tables_[core][unit];
  CMCP_CHECK_MSG((pte & kValid) == 0, "core already maps this unit");
  UnitInfo& info = directory_[unit];
  if (!info.present) {
    info.present = true;
    info.pfn = pfn;
    ++mapped_units_;
  }
  // Private PTEs for the same virtual address must define the same
  // translation on every core (paper section 2.3).
  CMCP_CHECK_MSG(info.pfn == pfn, "PSPT coherence violation: divergent pfn");
  std::uint64_t& word = mask_of(unit)[core >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (core & 63);
  CMCP_CHECK((word & bit) == 0);
  pte = kValid;
  word |= bit;
  ++info.count;
  ++mapped_of_core_[core];
}

CoreMask Pspt::unmap_all(UnitIdx unit) {
  CMCP_CHECK_MSG(unit < directory_.size() && directory_[unit].present,
                 "unmap of an unmapped unit");
  for_each_mapping(unit, [&](CoreId core) {
    std::uint8_t& pte = tables_[core][unit];
    CMCP_CHECK((pte & kValid) != 0);
    pte = 0;
    --mapped_of_core_[core];
  });
  std::uint64_t* w = mask_of(unit);
  const CoreMask affected = widen(w);
  for (unsigned i = 0; i < mask_words_; ++i) w[i] = 0;
  directory_[unit] = UnitInfo{};
  --mapped_units_;
  return affected;
}

CoreMask Pspt::mapping_cores(UnitIdx unit) const {
  return unit < directory_.size() ? widen(mask_of(unit)) : CoreMask{};
}

unsigned Pspt::core_map_count(UnitIdx unit) const {
  return unit < directory_.size() ? directory_[unit].count : 0;
}

Pfn Pspt::pfn_of(UnitIdx unit) const {
  return unit < directory_.size() && directory_[unit].present
             ? directory_[unit].pfn
             : kInvalidPfn;
}

void Pspt::mark_accessed(CoreId core, UnitIdx unit) {
  CMCP_CHECK(core < num_cores_);
  auto& table = tables_[core];
  CMCP_CHECK(unit < table.size() && (table[unit] & kValid) != 0);
  table[unit] |= kAccessed;
}

void Pspt::mark_dirty(CoreId core, UnitIdx unit) {
  CMCP_CHECK(core < num_cores_);
  auto& table = tables_[core];
  CMCP_CHECK(unit < table.size() && (table[unit] & kValid) != 0);
  table[unit] |= kDirty;
}

bool Pspt::test_accessed(UnitIdx unit, unsigned* pte_reads) const {
  if (unit >= directory_.size() || !directory_[unit].present) {
    if (pte_reads != nullptr) *pte_reads = 0;
    return false;
  }
  // The scanner must consult every mapping core's private PTE.
  unsigned reads = 0;
  bool accessed = false;
  for_each_mapping(unit, [&](CoreId core) {
    ++reads;
    const std::uint8_t pte = tables_[core][unit];
    CMCP_CHECK((pte & kValid) != 0);
    if ((pte & kAccessed) != 0) accessed = true;
  });
  if (pte_reads != nullptr) *pte_reads = reads;
  return accessed;
}

bool Pspt::clear_accessed(UnitIdx unit) {
  if (unit >= directory_.size() || !directory_[unit].present) return false;
  bool was = false;
  for_each_mapping(unit, [&](CoreId core) {
    std::uint8_t& pte = tables_[core][unit];
    CMCP_CHECK((pte & kValid) != 0);
    was = was || (pte & kAccessed) != 0;
    pte &= static_cast<std::uint8_t>(~kAccessed);
  });
  return was;
}

bool Pspt::test_dirty(UnitIdx unit) const {
  if (unit >= directory_.size() || !directory_[unit].present) return false;
  bool dirty = false;
  for_each_mapping(unit, [&](CoreId core) {
    if ((tables_[core][unit] & kDirty) != 0) dirty = true;
  });
  return dirty;
}

void Pspt::clear_dirty(UnitIdx unit) {
  if (unit >= directory_.size() || !directory_[unit].present) return;
  for_each_mapping(unit, [&](CoreId core) {
    tables_[core][unit] &= static_cast<std::uint8_t>(~kDirty);
  });
}

void Pspt::corrupt_count_for_test(UnitIdx unit, unsigned count) {
  CMCP_CHECK_MSG(unit < directory_.size() && directory_[unit].present,
                 "corrupting an unmapped unit");
  directory_[unit].count = count;
}

void Pspt::corrupt_mask_add_core_for_test(UnitIdx unit, CoreId core) {
  CMCP_CHECK_MSG(unit < directory_.size() && directory_[unit].present,
                 "corrupting an unmapped unit");
  CMCP_CHECK(core < num_cores_);
  mask_of(unit)[core >> 6] |= std::uint64_t{1} << (core & 63);
}

}  // namespace cmcp::mm
