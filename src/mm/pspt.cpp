#include "mm/pspt.h"

#include "common/assert.h"

namespace cmcp::mm {

Pspt::Pspt(CoreId num_cores) : num_cores_(num_cores), tables_(num_cores) {}

bool Pspt::has_mapping(CoreId core, UnitIdx unit) const {
  CMCP_CHECK(core < num_cores_);
  return tables_[core].contains(unit);
}

bool Pspt::any_mapping(UnitIdx unit) const { return directory_.contains(unit); }

void Pspt::map(CoreId core, UnitIdx unit, Pfn pfn) {
  CMCP_CHECK(core < num_cores_);
  auto [pte_it, pte_inserted] = tables_[core].try_emplace(unit, Pte{.pfn = pfn});
  CMCP_CHECK_MSG(pte_inserted, "core already maps this unit");
  auto [dir_it, dir_inserted] =
      directory_.try_emplace(unit, UnitInfo{.pfn = pfn, .mapping = {}, .count = 0});
  UnitInfo& info = dir_it->second;
  // Private PTEs for the same virtual address must define the same
  // translation on every core (paper section 2.3).
  CMCP_CHECK_MSG(info.pfn == pfn, "PSPT coherence violation: divergent pfn");
  CMCP_CHECK(!info.mapping.test(core));
  info.mapping.set(core);
  ++info.count;
}

CoreMask Pspt::unmap_all(UnitIdx unit) {
  auto it = directory_.find(unit);
  CMCP_CHECK_MSG(it != directory_.end(), "unmap of an unmapped unit");
  const CoreMask affected = it->second.mapping;
  affected.for_each([&](CoreId core) {
    const auto erased = tables_[core].erase(unit);
    CMCP_CHECK(erased == 1);
  });
  directory_.erase(it);
  return affected;
}

CoreMask Pspt::mapping_cores(UnitIdx unit) const {
  auto it = directory_.find(unit);
  return it == directory_.end() ? CoreMask{} : it->second.mapping;
}

unsigned Pspt::core_map_count(UnitIdx unit) const {
  auto it = directory_.find(unit);
  return it == directory_.end() ? 0 : it->second.count;
}

Pfn Pspt::pfn_of(UnitIdx unit) const {
  auto it = directory_.find(unit);
  return it == directory_.end() ? kInvalidPfn : it->second.pfn;
}

void Pspt::mark_accessed(CoreId core, UnitIdx unit) {
  auto it = tables_[core].find(unit);
  CMCP_CHECK(it != tables_[core].end());
  it->second.accessed = true;
}

void Pspt::mark_dirty(CoreId core, UnitIdx unit) {
  auto it = tables_[core].find(unit);
  CMCP_CHECK(it != tables_[core].end());
  it->second.dirty = true;
}

bool Pspt::test_accessed(UnitIdx unit, unsigned* pte_reads) const {
  auto it = directory_.find(unit);
  if (it == directory_.end()) {
    if (pte_reads != nullptr) *pte_reads = 0;
    return false;
  }
  // The scanner must consult every mapping core's private PTE.
  unsigned reads = 0;
  bool accessed = false;
  it->second.mapping.for_each([&](CoreId core) {
    ++reads;
    auto pte = tables_[core].find(unit);
    CMCP_CHECK(pte != tables_[core].end());
    if (pte->second.accessed) accessed = true;
  });
  if (pte_reads != nullptr) *pte_reads = reads;
  return accessed;
}

bool Pspt::clear_accessed(UnitIdx unit) {
  auto it = directory_.find(unit);
  if (it == directory_.end()) return false;
  bool was = false;
  it->second.mapping.for_each([&](CoreId core) {
    auto pte = tables_[core].find(unit);
    CMCP_CHECK(pte != tables_[core].end());
    was = was || pte->second.accessed;
    pte->second.accessed = false;
  });
  return was;
}

bool Pspt::test_dirty(UnitIdx unit) const {
  auto it = directory_.find(unit);
  if (it == directory_.end()) return false;
  bool dirty = false;
  it->second.mapping.for_each([&](CoreId core) {
    auto pte = tables_[core].find(unit);
    if (pte != tables_[core].end() && pte->second.dirty) dirty = true;
  });
  return dirty;
}

void Pspt::corrupt_count_for_test(UnitIdx unit, unsigned count) {
  auto it = directory_.find(unit);
  CMCP_CHECK_MSG(it != directory_.end(), "corrupting an unmapped unit");
  it->second.count = count;
}

void Pspt::corrupt_mask_add_core_for_test(UnitIdx unit, CoreId core) {
  auto it = directory_.find(unit);
  CMCP_CHECK_MSG(it != directory_.end(), "corrupting an unmapped unit");
  it->second.mapping.set(core);
}

void Pspt::clear_dirty(UnitIdx unit) {
  auto it = directory_.find(unit);
  if (it == directory_.end()) return;
  it->second.mapping.for_each([&](CoreId core) {
    auto pte = tables_[core].find(unit);
    if (pte != tables_[core].end()) pte->second.dirty = false;
  });
}

}  // namespace cmcp::mm
