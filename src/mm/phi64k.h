// Faithful model of the Xeon Phi experimental 64 kB page table entry format
// (paper section 4, Fig. 5).
//
// A 64 kB mapping is 16 consecutive 4 kB PTEs covering a contiguous,
// 64 kB-aligned region, with a hint bit telling the TLB to cache the whole
// group as one entry. Hardware-set attributes behave unusually: on the first
// write, the CPU sets the dirty bit of the *k+1-th* sub-entry rather than the
// first one, and the accessed bit works the same way — so the OS must iterate
// all 16 sub-entries when retrieving statistics. A consequence the paper
// highlights: page sizes may be freely mixed inside one 2 MB block.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.h"
#include "common/types.h"

namespace cmcp::mm {

struct SubPte {
  Pfn pfn = kInvalidPfn;
  bool present = false;
  bool hint64k = false;  ///< the "64" flag in Fig. 5
  bool accessed = false;
  bool dirty = false;
};

class Phi64kGroup {
 public:
  static constexpr unsigned kSubEntries = 16;

  /// Install a 64 kB mapping: base_pfn must be 64 kB aligned (16 frames).
  /// All 16 sub-entries are initialized and the hint bit set on each.
  void map(Pfn base_pfn) {
    CMCP_CHECK_MSG(base_pfn % kSubEntries == 0, "64kB frame misaligned");
    for (unsigned i = 0; i < kSubEntries; ++i) {
      sub_[i] = SubPte{.pfn = base_pfn + i, .present = true, .hint64k = true};
    }
  }

  void unmap() { sub_ = {}; }

  bool present() const { return sub_[0].present; }
  Pfn base_pfn() const { return sub_[0].pfn; }

  /// Hardware behaviour on the k-th reference of the group: the accessed bit
  /// lands in sub-entry (k+1) mod 16 (paper: "sets the dirty bit of the
  /// corresponding 4kB entry instead of setting it in the first mapping").
  void hw_mark_accessed(unsigned k) {
    CMCP_CHECK(present());
    sub_[(k + 1) % kSubEntries].accessed = true;
  }

  void hw_mark_dirty(unsigned k) {
    CMCP_CHECK(present());
    sub_[(k + 1) % kSubEntries].dirty = true;
  }

  /// OS-side statistics retrieval must iterate every sub-entry; the return
  /// value carries how many PTE reads that cost (for the scanner's budget).
  bool any_accessed(unsigned* pte_reads) const {
    if (pte_reads != nullptr) *pte_reads = kSubEntries;
    for (const auto& s : sub_)
      if (s.accessed) return true;
    return false;
  }

  bool any_dirty(unsigned* pte_reads) const {
    if (pte_reads != nullptr) *pte_reads = kSubEntries;
    for (const auto& s : sub_)
      if (s.dirty) return true;
    return false;
  }

  void clear_accessed() {
    for (auto& s : sub_) s.accessed = false;
  }

  void clear_dirty() {
    for (auto& s : sub_) s.dirty = false;
  }

  const SubPte& sub(unsigned i) const { return sub_[i]; }

 private:
  std::array<SubPte, kSubEntries> sub_{};
};

}  // namespace cmcp::mm
