#include "mm/frame_partition.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/assert.h"

namespace cmcp::mm {

FramePartition::FramePartition(PartitionKind kind, std::uint64_t capacity,
                               std::vector<TenantShare> shares)
    : kind_(kind), capacity_(capacity), shares_(std::move(shares)) {
  CMCP_CHECK(capacity_ > 0);
  if (shares_.empty()) shares_.push_back(TenantShare{});
  rebuild();
}

void FramePartition::set_capacity(std::uint64_t capacity) {
  CMCP_CHECK(capacity > 0);
  if (capacity == capacity_) return;
  capacity_ = capacity;
  // Floors were already clamped against the old capacity; re-clamping
  // against a smaller one only shrinks them further, so repeated shrinks
  // compose and nothing can underflow.
  rebuild();
}

void FramePartition::rebuild() {
  // Clamp floors so they can always be honored: trim excess from the
  // highest asids first (deterministic, and earlier tenants are treated as
  // higher priority by convention).
  std::uint64_t total_reserve = 0;
  for (auto& s : shares_) {
    s.reserve_units = std::min(s.reserve_units, capacity_);
    total_reserve += s.reserve_units;
  }
  for (std::size_t i = shares_.size(); total_reserve > capacity_ && i-- > 0;) {
    const std::uint64_t trim =
        std::min(shares_[i].reserve_units, total_reserve - capacity_);
    shares_[i].reserve_units -= trim;
    total_reserve -= trim;
  }

  // Largest-remainder apportionment of the capacity by weight. A zero total
  // weight degenerates to equal shares. Remainder frames go to the largest
  // fractional parts, ties to the lowest asid.
  targets_.assign(shares_.size(), 0);
  std::uint64_t total_weight = 0;
  for (const auto& s : shares_) total_weight += s.weight;
  const std::size_t n = shares_.size();
  std::uint64_t assigned = 0;
  std::vector<std::pair<std::uint64_t, std::size_t>> rem;  // (remainder, asid)
  rem.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = total_weight == 0 ? 1 : shares_[i].weight;
    const std::uint64_t tw = total_weight == 0 ? n : total_weight;
    targets_[i] = capacity_ * w / tw;
    assigned += targets_[i];
    rem.emplace_back(capacity_ * w % tw, i);
  }
  std::sort(rem.begin(), rem.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;  // larger remainder first
    return a.second < b.second;                        // then lower asid
  });
  for (std::size_t k = 0; assigned < capacity_ && k < rem.size(); ++k) {
    // Tenants with zero weight get no remainder frame unless every weight
    // is zero (the equal-share degenerate case).
    if (total_weight != 0 && shares_[rem[k].second].weight == 0) continue;
    ++targets_[rem[k].second];
    ++assigned;
  }
  // Weighted-zero corner: all remainder frames skipped. Hand them to the
  // lowest asid with nonzero weight so the targets still sum to capacity.
  for (std::size_t i = 0; assigned < capacity_ && i < n; ++i) {
    if (total_weight == 0 || shares_[i].weight != 0) {
      targets_[i] += capacity_ - assigned;
      assigned = capacity_;
    }
  }
}

std::uint64_t FramePartition::reserve_of(Asid asid) const {
  if (kind_ != PartitionKind::kStaticReserve) return 0;
  return asid < shares_.size() ? shares_[asid].reserve_units : 0;
}

std::uint64_t FramePartition::target_of(Asid asid) const {
  if (shares_.size() <= 1) return capacity_;
  return asid < targets_.size() ? targets_[asid] : 0;
}

bool FramePartition::may_allocate(Asid asid, const FrameAllocator& alloc) const {
  if (alloc.full()) return false;
  switch (kind_) {
    case PartitionKind::kNone:
    case PartitionKind::kProportionalShare:
      // Work-conserving: any free frame may be used by anyone.
      return true;
    case PartitionKind::kStaticReserve: {
      // A tenant under its own floor always may allocate. Otherwise the
      // free pool must keep enough frames to cover every *other* tenant's
      // unmet reserve.
      if (alloc.in_use_by(asid) < reserve_of(asid)) return true;
      std::uint64_t earmarked = 0;
      for (Asid j = 0; j < shares_.size(); ++j) {
        if (j == asid) continue;
        const std::uint64_t used = alloc.in_use_by(j);
        const std::uint64_t floor = shares_[j].reserve_units;
        if (used < floor) earmarked += floor - used;
      }
      return alloc.free_count() > earmarked;
    }
  }
  return !alloc.full();
}

Asid FramePartition::choose_victim_space(Asid asid,
                                         const FrameAllocator& alloc) const {
  const auto n = static_cast<Asid>(shares_.size());
  if (kind_ == PartitionKind::kNone || n <= 1) return asid;

  if (kind_ == PartitionKind::kStaticReserve) {
    // Self-evict while over your own floor; otherwise reclaim from the
    // neighbor with the largest overage (ties: lowest asid).
    if (alloc.in_use_by(asid) > reserve_of(asid) && alloc.in_use_by(asid) > 0)
      return asid;
    Asid best = kInvalidAsid;
    std::uint64_t best_over = 0;
    for (Asid j = 0; j < n; ++j) {
      const std::uint64_t used = alloc.in_use_by(j);
      const std::uint64_t floor = shares_[j].reserve_units;
      if (used > floor && used - floor > best_over) {
        best = j;
        best_over = used - floor;
      }
    }
    if (best != kInvalidAsid) return best;
    // Everyone exactly at floor: evict from the heaviest user (lowest asid
    // on ties), falling back to self.
    Asid heaviest = asid;
    std::uint64_t heaviest_used = alloc.in_use_by(asid);
    for (Asid j = 0; j < n; ++j) {
      if (alloc.in_use_by(j) > heaviest_used) {
        heaviest = j;
        heaviest_used = alloc.in_use_by(j);
      }
    }
    return heaviest;
  }

  // Proportional share: priority-evict the noisiest neighbor — the tenant
  // furthest over its target. Prefer the faulting tenant on ties so a tenant
  // at target churns its own pages instead of a neighbor's.
  Asid best = asid;
  std::int64_t best_over = std::numeric_limits<std::int64_t>::min();
  if (alloc.in_use_by(asid) > 0) {
    best_over = static_cast<std::int64_t>(alloc.in_use_by(asid)) -
                static_cast<std::int64_t>(target_of(asid));
  }
  for (Asid j = 0; j < n; ++j) {
    if (j == asid || alloc.in_use_by(j) == 0) continue;
    const std::int64_t over = static_cast<std::int64_t>(alloc.in_use_by(j)) -
                              static_cast<std::int64_t>(target_of(j));
    if (over > best_over) {
      best = j;
      best_over = over;
    }
  }
  return best;
}

}  // namespace cmcp::mm
