// Registry of device-resident pages plus the per-page metadata replacement
// policies hang their bookkeeping on.
//
// ResidentPage objects are pool-allocated and pointer-stable for their
// residency lifetime, so policies can keep them on intrusive lists without
// extra allocation on the fault path. The unit -> page index is a dense
// direct-indexed vector (docs/performance.md): find() is one load, and
// for_each — the scanner's and SimCheck's view of the resident set —
// iterates in ascending unit order, which makes every downstream
// tie-break independent of hash-table layout (docs/invariants.md).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/intrusive_list.h"
#include "common/types.h"

namespace cmcp::mm {

struct ResidentPage {
  UnitIdx unit = kInvalidUnit;
  Pfn pfn = kInvalidPfn;
  /// Cached number of mapping cores, maintained by the memory manager as
  /// PSPT minor faults add mappings. Regular tables keep it at the core
  /// count (the information is unobtainable there).
  unsigned core_map_count = 0;
  /// Monotonic insertion sequence number (FIFO arbitration, test oracles).
  std::uint64_t seq = 0;
  Cycles inserted_at = 0;
  /// For prefetched pages: when the PCIe transfer lands. A touch before
  /// this time stalls until the data arrives. 0 for demand-fetched pages.
  Cycles ready_at = 0;

  // --- policy-owned state -------------------------------------------------
  ListNode main_node;  ///< FIFO list / LRU active+inactive / CMCP bucket
  ListNode aux_node;   ///< CMCP aging list; unused by other policies
  std::uint8_t where = 0;       ///< policy-defined location tag
  std::uint32_t bucket = 0;     ///< CMCP priority bucket / LFU frequency
  std::uint64_t age_stamp = 0;  ///< CMCP aging timestamp
  std::uint32_t slot = 0;       ///< RANDOM policy index
  bool referenced = false;      ///< scanner-fed reference info
};

class PageRegistry {
 public:
  PageRegistry() = default;

  /// Create metadata for a unit becoming resident in frame pfn.
  ResidentPage& insert(UnitIdx unit, Pfn pfn, Cycles now);

  /// Remove metadata on eviction. The page must already be unlinked from
  /// every policy list.
  void erase(ResidentPage& page);

  ResidentPage* find(UnitIdx unit) {
    return unit < by_unit_.size() ? by_unit_[unit] : nullptr;
  }
  const ResidentPage* find(UnitIdx unit) const {
    return unit < by_unit_.size() ? by_unit_[unit] : nullptr;
  }

  std::size_t size() const { return size_; }

  /// Size the index for units [0, n) so steady-state insert() never grows
  /// it (the memory manager calls this with the area's num_units()).
  void reserve_units(UnitIdx n) {
    if (n > by_unit_.size()) by_unit_.resize(n, nullptr);
  }

  /// Iterate all resident pages in ascending unit order (scanner); fn must
  /// not insert/erase.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (ResidentPage* page : by_unit_)
      if (page != nullptr) fn(*page);
  }

  /// Read-only iteration (SimCheck sweeps, exporters), ascending unit order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const ResidentPage* page : by_unit_)
      if (page != nullptr) fn(*page);
  }

 private:
  std::vector<ResidentPage*> by_unit_;  ///< [unit] -> resident page or null
  std::size_t size_ = 0;
  std::vector<std::unique_ptr<ResidentPage>> pool_;
  std::vector<ResidentPage*> free_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cmcp::mm
