// The computation area: the virtual range PSPT manages privately per core
// (paper Fig. 3 — kernel and regular user mappings stay shared; only the
// computation area gets per-core PTEs and hierarchical placement).
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "common/types.h"

namespace cmcp::mm {

class ComputationArea {
 public:
  ComputationArea() = default;

  /// [base_vpn, base_vpn + num_base_pages) in 4 kB page units. The base must
  /// be aligned to the mapping-unit size so 64 kB / 2 MB groups line up.
  ComputationArea(Vpn base_vpn, std::uint64_t num_base_pages, PageSizeClass size)
      : base_vpn_(base_vpn), num_base_pages_(num_base_pages), size_(size) {
    const std::uint64_t per_unit = base_pages_per_unit(size);
    CMCP_CHECK_MSG(base_vpn % per_unit == 0, "computation area misaligned for page size");
    // Round the footprint up to whole mapping units.
    num_units_ = (num_base_pages + per_unit - 1) / per_unit;
  }

  Vpn base_vpn() const { return base_vpn_; }
  std::uint64_t num_base_pages() const { return num_base_pages_; }
  std::uint64_t num_units() const { return num_units_; }
  PageSizeClass page_size() const { return size_; }

  bool contains(Vpn vpn) const {
    return vpn >= base_vpn_ && vpn < base_vpn_ + num_base_pages_;
  }

  /// Mapping unit index (0-based within the area) containing `vpn`.
  UnitIdx unit_of(Vpn vpn) const {
    CMCP_CHECK(contains(vpn));
    return (vpn - base_vpn_) >> unit_shift(size_);
  }

  std::uint64_t footprint_bytes() const { return num_base_pages_ * kBasePageBytes; }

 private:
  Vpn base_vpn_ = 0;
  std::uint64_t num_base_pages_ = 0;
  std::uint64_t num_units_ = 0;
  PageSizeClass size_ = PageSizeClass::k4K;
};

}  // namespace cmcp::mm
