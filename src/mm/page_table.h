// Page table abstraction over the computation area.
//
// Two concrete organizations (paper section 2.3):
//  * RegularPageTable — one shared set of translations. The kernel cannot
//    tell which cores cached a translation, so an unmap must shoot down
//    every core, and the core-map count is unobtainable.
//  * Pspt — per-core private PTEs for the computation area. Unmaps target
//    exactly the mapping cores, and the number of mapping cores per unit is
//    available as auxiliary knowledge — the input to CMCP.
//
// Translations are tracked per mapping unit (4 kB / 64 kB / 2 MB); accessed
// and dirty bits carry the semantics the access-bit scanner depends on.
#pragma once

#include "common/core_mask.h"
#include "common/types.h"

namespace cmcp::mm {

class PageTable {
 public:
  virtual ~PageTable() = default;

  virtual PageTableKind kind() const = 0;

  /// Is `unit` translated from `core`'s point of view (its walk would hit)?
  virtual bool has_mapping(CoreId core, UnitIdx unit) const = 0;

  /// Is `unit` mapped by at least one core (i.e. resident and reachable)?
  virtual bool any_mapping(UnitIdx unit) const = 0;

  /// Install a translation for `core`. For regular tables the entry becomes
  /// visible to every core at once. pfn is the device frame.
  virtual void map(CoreId core, UnitIdx unit, Pfn pfn) = 0;

  /// Remove the translation on every core; returns the set of cores whose
  /// TLBs may cache it and therefore must be shot down.
  virtual CoreMask unmap_all(UnitIdx unit) = 0;

  /// Cores whose TLB may hold `unit` (regular: every core; PSPT: the
  /// mapping set).
  virtual CoreMask mapping_cores(UnitIdx unit) const = 0;

  /// Number of cores mapping `unit`. Only PSPT can answer precisely; the
  /// regular table pessimistically reports the full core count (paper: the
  /// information "cannot be obtained from regular page tables").
  virtual unsigned core_map_count(UnitIdx unit) const = 0;

  virtual Pfn pfn_of(UnitIdx unit) const = 0;

  // --- hardware-set attribute bits ---------------------------------------
  virtual void mark_accessed(CoreId core, UnitIdx unit) = 0;
  virtual void mark_dirty(CoreId core, UnitIdx unit) = 0;

  /// True if any PTE (any core, any sub-entry) has the accessed bit set.
  /// `pte_reads` (optional) receives the number of PTE words the OS had to
  /// inspect — 16x more for 64 kB groups, one per mapping core under PSPT.
  virtual bool test_accessed(UnitIdx unit, unsigned* pte_reads) const = 0;

  /// Clear the accessed bit(s). Returns whether any was set. Clearing makes
  /// the cached TLB copies stale, so the caller MUST follow with a shootdown
  /// of mapping_cores() — the invariant the paper's whole argument rests on.
  virtual bool clear_accessed(UnitIdx unit) = 0;

  virtual bool test_dirty(UnitIdx unit) const = 0;
  virtual void clear_dirty(UnitIdx unit) = 0;

  /// Resident units currently mapped (for scanner iteration).
  virtual std::uint64_t mapped_units() const = 0;

  /// Size the table for units [0, n). Both implementations store per-unit
  /// state in dense direct-indexed arrays (docs/performance.md); the memory
  /// manager calls this once with the computation area's num_units() so the
  /// per-access path never grows storage. Optional: tables also grow lazily
  /// on map(), which keeps ad-hoc construction in tests cheap.
  virtual void reserve_units(UnitIdx n) = 0;
};

}  // namespace cmcp::mm
