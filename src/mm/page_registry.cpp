#include "mm/page_registry.h"

#include "common/assert.h"

namespace cmcp::mm {

ResidentPage& PageRegistry::insert(UnitIdx unit, Pfn pfn, Cycles now) {
  ResidentPage* page;
  if (!free_.empty()) {
    page = free_.back();
    free_.pop_back();
  } else {
    pool_.push_back(std::make_unique<ResidentPage>());
    page = pool_.back().get();
  }
  *page = ResidentPage{};  // reset all metadata and policy state
  page->unit = unit;
  page->pfn = pfn;
  page->seq = next_seq_++;
  page->inserted_at = now;
  if (unit >= by_unit_.size()) reserve_units(unit + 1);
  CMCP_CHECK_MSG(by_unit_[unit] == nullptr, "unit already resident");
  by_unit_[unit] = page;
  ++size_;
  return *page;
}

void PageRegistry::erase(ResidentPage& page) {
  CMCP_CHECK_MSG(!page.main_node.linked() && !page.aux_node.linked(),
                 "evicting a page still on a policy list");
  CMCP_CHECK(page.unit < by_unit_.size() && by_unit_[page.unit] == &page);
  by_unit_[page.unit] = nullptr;
  --size_;
  free_.push_back(&page);
}

}  // namespace cmcp::mm
