#include "mm/page_registry.h"

#include "common/assert.h"

namespace cmcp::mm {

ResidentPage& PageRegistry::insert(UnitIdx unit, Pfn pfn, Cycles now) {
  ResidentPage* page;
  if (!free_.empty()) {
    page = free_.back();
    free_.pop_back();
  } else {
    pool_.push_back(std::make_unique<ResidentPage>());
    page = pool_.back().get();
  }
  *page = ResidentPage{};  // reset all metadata and policy state
  page->unit = unit;
  page->pfn = pfn;
  page->seq = next_seq_++;
  page->inserted_at = now;
  auto [it, inserted] = map_.emplace(unit, page);
  CMCP_CHECK_MSG(inserted, "unit already resident");
  return *page;
}

void PageRegistry::erase(ResidentPage& page) {
  CMCP_CHECK_MSG(!page.main_node.linked() && !page.aux_node.linked(),
                 "evicting a page still on a policy list");
  const auto erased = map_.erase(page.unit);
  CMCP_CHECK(erased == 1);
  free_.push_back(&page);
}

ResidentPage* PageRegistry::find(UnitIdx unit) {
  auto it = map_.find(unit);
  return it == map_.end() ? nullptr : it->second;
}

const ResidentPage* PageRegistry::find(UnitIdx unit) const {
  auto it = map_.find(unit);
  return it == map_.end() ? nullptr : it->second;
}

}  // namespace cmcp::mm
