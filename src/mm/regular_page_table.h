// Traditional process model: one set of page tables shared by all cores.
#pragma once

#include <unordered_map>

#include "mm/page_table.h"

namespace cmcp::mm {

class RegularPageTable final : public PageTable {
 public:
  explicit RegularPageTable(CoreId num_cores);

  PageTableKind kind() const override { return PageTableKind::kRegular; }

  bool has_mapping(CoreId core, UnitIdx unit) const override;
  bool any_mapping(UnitIdx unit) const override;
  void map(CoreId core, UnitIdx unit, Pfn pfn) override;
  CoreMask unmap_all(UnitIdx unit) override;
  CoreMask mapping_cores(UnitIdx unit) const override;
  unsigned core_map_count(UnitIdx unit) const override;
  Pfn pfn_of(UnitIdx unit) const override;

  void mark_accessed(CoreId core, UnitIdx unit) override;
  void mark_dirty(CoreId core, UnitIdx unit) override;
  bool test_accessed(UnitIdx unit, unsigned* pte_reads) const override;
  bool clear_accessed(UnitIdx unit) override;
  bool test_dirty(UnitIdx unit) const override;
  void clear_dirty(UnitIdx unit) override;
  std::uint64_t mapped_units() const override { return entries_.size(); }

 private:
  struct Entry {
    Pfn pfn = kInvalidPfn;
    bool accessed = false;
    bool dirty = false;
  };

  CoreId num_cores_;
  CoreMask all_cores_;
  std::unordered_map<UnitIdx, Entry> entries_;
};

}  // namespace cmcp::mm
