// Traditional process model: one set of page tables shared by all cores.
//
// Entries live in a dense direct-indexed vector (the unit index is the
// slot; docs/performance.md) — present/accessed/dirty are flag bits, so a
// walk is a single indexed load.
#pragma once

#include <cstdint>
#include <vector>

#include "mm/page_table.h"

namespace cmcp::mm {

class RegularPageTable final : public PageTable {
 public:
  explicit RegularPageTable(CoreId num_cores);

  PageTableKind kind() const override { return PageTableKind::kRegular; }

  bool has_mapping(CoreId core, UnitIdx unit) const override;
  bool any_mapping(UnitIdx unit) const override;
  void map(CoreId core, UnitIdx unit, Pfn pfn) override;
  CoreMask unmap_all(UnitIdx unit) override;
  CoreMask mapping_cores(UnitIdx unit) const override;
  unsigned core_map_count(UnitIdx unit) const override;
  Pfn pfn_of(UnitIdx unit) const override;

  void mark_accessed(CoreId core, UnitIdx unit) override;
  void mark_dirty(CoreId core, UnitIdx unit) override;
  bool test_accessed(UnitIdx unit, unsigned* pte_reads) const override;
  bool clear_accessed(UnitIdx unit) override;
  bool test_dirty(UnitIdx unit) const override;
  void clear_dirty(UnitIdx unit) override;
  std::uint64_t mapped_units() const override { return mapped_; }

  void reserve_units(UnitIdx n) override;

 private:
  enum EntryFlags : std::uint8_t {
    kPresent = 1u << 0,
    kAccessed = 1u << 1,
    kDirty = 1u << 2,
  };

  struct Entry {
    Pfn pfn = kInvalidPfn;
    std::uint8_t flags = 0;
  };

  Entry* entry(UnitIdx unit) {
    return unit < entries_.size() && (entries_[unit].flags & kPresent) != 0
               ? &entries_[unit]
               : nullptr;
  }
  const Entry* entry(UnitIdx unit) const {
    return const_cast<RegularPageTable*>(this)->entry(unit);
  }

  CoreId num_cores_;
  CoreMask all_cores_;
  std::vector<Entry> entries_;  ///< [unit]
  std::uint64_t mapped_ = 0;
};

}  // namespace cmcp::mm
