#include "metrics/table.h"

#include <filesystem>

#include "metrics/result_writer.h"
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace cmcp::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CMCP_CHECK(!headers_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  CMCP_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::to_markdown(std::ostream& os) const {
  // Column widths for aligned output.
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::to_csv(std::ostream& os) const {
  // One CSV serialization path project-wide: ResultWriter owns the rules.
  ResultWriter::write_csv_row(os, headers_);
  for (const auto& row : rows_) ResultWriter::write_csv_row(os, row);
}

std::string Table::markdown() const {
  std::ostringstream ss;
  to_markdown(ss);
  return ss.str();
}

std::string Table::csv() const {
  std::ostringstream ss;
  to_csv(ss);
  return ss.str();
}

void Table::save_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  CMCP_CHECK_MSG(out.good(), "cannot open CSV output file");
  to_csv(out);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string fmt_percent(double ratio, int precision) {
  return fmt_double(ratio * 100.0, precision) + "%";
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace cmcp::metrics
