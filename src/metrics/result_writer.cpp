#include "metrics/result_writer.h"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace cmcp::metrics {

namespace {

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(ch >> 4) & 0xf];
          out += hex[ch & 0xf];
        } else {
          out += ch;
        }
    }
  }
}

std::string json_quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  append_json_escaped(out, text);
  out += '"';
  return out;
}

std::string fmt_double_shortest(double v) {
  // Shortest representation that round-trips — deterministic and exact.
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  CMCP_CHECK(ec == std::errc());
  return std::string(buf, end);
}

}  // namespace

ResultWriter::Row& ResultWriter::Row::set_raw(std::string name, std::string text,
                                              bool quoted) {
  for (Field& f : fields_) {
    if (f.name == name) {
      f.text = std::move(text);
      f.quoted_in_json = quoted;
      return *this;
    }
  }
  fields_.push_back({std::move(name), std::move(text), quoted});
  return *this;
}

ResultWriter::Row& ResultWriter::Row::set(std::string name, std::string value) {
  return set_raw(std::move(name), std::move(value), true);
}
ResultWriter::Row& ResultWriter::Row::set(std::string name,
                                          std::string_view value) {
  return set_raw(std::move(name), std::string(value), true);
}
ResultWriter::Row& ResultWriter::Row::set(std::string name, const char* value) {
  return set_raw(std::move(name), std::string(value), true);
}
ResultWriter::Row& ResultWriter::Row::set(std::string name, double value) {
  return set_raw(std::move(name), fmt_double_shortest(value), false);
}
ResultWriter::Row& ResultWriter::Row::set(std::string name, bool value) {
  return set_raw(std::move(name), value ? "true" : "false", false);
}
ResultWriter::Row& ResultWriter::Row::set(std::string name, std::uint64_t value) {
  return set_raw(std::move(name), std::to_string(value), false);
}
ResultWriter::Row& ResultWriter::Row::set(std::string name, std::int64_t value) {
  return set_raw(std::move(name), std::to_string(value), false);
}

ResultWriter::Row& ResultWriter::add_row() {
  common::LockGuard lock(mu_);
  rows_.emplace_back();
  return rows_.back();
}

std::size_t ResultWriter::rows() const {
  common::LockGuard lock(mu_);
  return rows_.size();
}

ResultWriter& ResultWriter::meta(std::string name, std::string value) {
  common::LockGuard lock(mu_);
  meta_.emplace_back(std::move(name), std::move(value));
  return *this;
}

std::vector<std::string> ResultWriter::columns_locked() const {
  std::vector<std::string> cols;
  for (const Row& row : rows_)
    for (const Row::Field& f : row.fields_)
      if (std::find(cols.begin(), cols.end(), f.name) == cols.end())
        cols.push_back(f.name);
  return cols;
}

std::vector<std::string> ResultWriter::columns() const {
  common::LockGuard lock(mu_);
  return columns_locked();
}

void ResultWriter::write_csv_row(std::ostream& os,
                                 const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c != 0) os << ',';
    // Values are simple identifiers/numbers; quote only when needed.
    if (cells[c].find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char ch : cells[c]) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << cells[c];
    }
  }
  os << '\n';
}

void ResultWriter::write_rows_csv(std::ostream& os,
                                  const std::vector<std::string>& cols) const {
  std::vector<std::string> cells(cols.size());
  for (const Row& row : rows_) {
    for (auto& c : cells) c.clear();
    for (const Row::Field& f : row.fields_) {
      const auto it = std::find(cols.begin(), cols.end(), f.name);
      cells[static_cast<std::size_t>(it - cols.begin())] = f.text;
    }
    write_csv_row(os, cells);
  }
}

void ResultWriter::to_csv(std::ostream& os) const {
  common::LockGuard lock(mu_);
  const auto cols = columns_locked();
  write_csv_row(os, cols);
  write_rows_csv(os, cols);
}

std::string ResultWriter::csv() const {
  std::ostringstream ss;
  to_csv(ss);
  return ss.str();
}

void ResultWriter::save_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::trunc);
  CMCP_CHECK_MSG(out.good(), "cannot open CSV output file");
  to_csv(out);
}

void ResultWriter::append_csv(const std::string& path) const {
  common::LockGuard lock(mu_);
  const auto cols = columns_locked();
  std::ostringstream header_ss;
  write_csv_row(header_ss, cols);
  std::string header = header_ss.str();
  if (!header.empty() && header.back() == '\n') header.pop_back();

  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  bool fresh = true;
  {
    std::ifstream in(p);
    std::string existing;
    if (in.good() && std::getline(in, existing)) {
      fresh = false;
      if (!existing.empty() && existing.back() == '\r') existing.pop_back();
      CMCP_CHECK_MSG(existing == header,
                     "CSV schema mismatch: existing header differs");
    }
  }
  std::ofstream out(p, std::ios::app);
  CMCP_CHECK_MSG(out.good(), "cannot open CSV output file");
  if (fresh) out << header << '\n';
  write_rows_csv(out, cols);
}

void ResultWriter::to_json(std::ostream& os) const {
  common::LockGuard lock(mu_);
  os << "{\"schema_version\":" << kSchemaVersion << ",\n\"meta\":{";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i != 0) os << ',';
    os << json_quoted(meta_[i].first) << ':' << json_quoted(meta_[i].second);
  }
  os << "},\n\"rows\":[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << '{';
    const Row& row = rows_[r];
    for (std::size_t f = 0; f < row.fields_.size(); ++f) {
      if (f != 0) os << ',';
      const Row::Field& field = row.fields_[f];
      os << json_quoted(field.name) << ':';
      if (field.quoted_in_json)
        os << json_quoted(field.text);
      else
        os << field.text;
    }
    os << '}';
    if (r + 1 != rows_.size()) os << ',';
    os << '\n';
  }
  os << "]}\n";
}

std::string ResultWriter::json() const {
  std::ostringstream ss;
  to_json(ss);
  return ss.str();
}

void ResultWriter::save_json(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::trunc);
  CMCP_CHECK_MSG(out.good(), "cannot open JSON output file");
  to_json(out);
}

}  // namespace cmcp::metrics
