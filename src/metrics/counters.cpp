#include "metrics/counters.h"

// CoreCounters is a plain aggregate; this TU anchors the header.
