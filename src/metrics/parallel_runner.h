// Thread-parallel experiment runner. Every Simulation is a self-contained
// deterministic computation, so independent RunSpecs execute concurrently
// with bit-identical results to serial execution — the bench sweeps
// (hundreds of runs) use this to saturate the build machine.
#pragma once

#include <functional>
#include <vector>

#include "metrics/experiment.h"

namespace cmcp::metrics {

/// Run every spec (order-preserving result vector) on up to `threads`
/// worker threads. threads == 0 picks the hardware concurrency.
std::vector<core::SimulationResult> run_specs_parallel(
    const std::vector<RunSpec>& specs, unsigned threads = 0);

/// Generic variant: evaluate `jobs[i]()` concurrently into slot i. Each job
/// must be independent of the others. If any job throws, the first exception
/// (in completion order) is rethrown on the calling thread after all workers
/// have drained, and the remaining unclaimed jobs are skipped.
std::vector<core::SimulationResult> run_jobs_parallel(
    const std::vector<std::function<core::SimulationResult()>>& jobs,
    unsigned threads = 0);

}  // namespace cmcp::metrics
