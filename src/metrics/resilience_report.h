// Resilience report: the human-readable summary of one fault-injected run —
// what was injected, what it cost to recover, and how much capacity was
// lost. Printed by cmcp_sim when a FaultPlan was active; the machine-
// readable counterpart is the fault rows result_summary() appends to the
// JSONL trace summary.
#pragma once

#include <string>

#include "sim/fault_plan.h"

namespace cmcp::metrics {

/// Multi-line report (trailing newline included):
///
///   resilience report
///     faults injected      42 (pcie_transient=30 ... straggler=2)
///     recovery retries     37
///     give-ups             1
///     frames quarantined   2 (capacity lost 1.6%)
///     mean recovery cost   8123 cycles/fault
///     straggler inflation  120000 cycles
///     tenant 0             faults=30 recovery=61000 cycles
///
/// `capacity_units` is the allocator's nominal capacity (the denominator of
/// "capacity lost"); per-tenant lines appear only for tenants that saw at
/// least one fault.
std::string format_resilience_report(const sim::FaultPlanConfig& config,
                                     const sim::FaultStats& stats,
                                     std::uint64_t capacity_units);

}  // namespace cmcp::metrics
