// Comparison of two wall-clock bench documents (bench/wallclock.cpp emits
// them through metrics::ResultWriter) so CI can gate on throughput
// regressions: rows are matched by name, the chosen metric is compared with
// a relative tolerance, and a missing row is itself a failure — silently
// dropping a phase must not read as "no regression".
//
// The parser is deliberately minimal, like check/trace_lint: ResultWriter
// writes one row object per line, so targeted field extraction is enough and
// the tool stays free of a JSON dependency the container may not have.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cmcp::metrics {

/// One bench row as loaded from a BENCH_*.json document. Only the fields
/// the comparison needs; absent numeric fields read as 0.
struct BenchRow {
  std::string name;
  std::string kind;  ///< "sim" or "micro"
  double ns_per_ref = 0.0;
  double refs_per_sec = 0.0;
};

/// Load all named rows from a ResultWriter JSON document. Returns an empty
/// vector on malformed input (the caller distinguishes via ok flag).
struct BenchDoc {
  std::vector<BenchRow> rows;
  bool ok = false;  ///< document parsed and contained at least one row
};

BenchDoc load_bench_json(std::istream& in);
BenchDoc load_bench_file(const std::string& path);

struct CompareOptions {
  /// Relative slowdown tolerated before a row counts as regressed:
  /// current must stay >= baseline * (1 - tolerance) on a higher-is-better
  /// metric (and <= baseline * (1 + tolerance) on a lower-is-better one).
  double tolerance = 0.25;
  /// Metric to compare: "refs_per_sec" (higher is better) or "ns_per_ref"
  /// (lower is better).
  std::string metric = "refs_per_sec";
  /// When > 0, at least one compared row must show current/baseline >=
  /// this speedup factor (used to assert a claimed improvement landed).
  /// With a `rows` filter the requirement hardens to EVERY selected row —
  /// a narrowed comparison names exactly the rows the claim is about.
  double require_speedup = 0.0;
  /// When non-empty, only baseline rows whose name contains this substring
  /// are compared (missing-row detection included). Lets CI gate a
  /// specific claim ("the fig7 rows got faster") without coupling it to
  /// unrelated rows' noise.
  std::string rows;
};

struct RowComparison {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  /// Improvement factor normalized so > 1 always means faster.
  double speedup = 0.0;
  bool regressed = false;
};

struct CompareResult {
  std::vector<RowComparison> rows;
  std::vector<std::string> missing;  ///< baseline rows absent from current
  double best_speedup = 0.0;
  bool speedup_met = true;  ///< require_speedup satisfied (or not requested)
  /// A `rows` filter that selects nothing — a typo'd filter must fail
  /// loudly, not gate on zero rows.
  bool empty_selection = false;
  bool ok() const {
    if (!missing.empty() || !speedup_met || empty_selection) return false;
    for (const RowComparison& r : rows)
      if (r.regressed) return false;
    return true;
  }
};

CompareResult compare_bench(const BenchDoc& baseline, const BenchDoc& current,
                            const CompareOptions& options);

/// Human-readable report of a comparison (one line per row + verdict).
void print_comparison(const CompareResult& result, const CompareOptions& options,
                      std::ostream& os);

}  // namespace cmcp::metrics
