// Per-core event counters — the observables of Table 1 plus the cycle
// breakdown used in section 5.5's analysis of LRU.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace cmcp::metrics {

struct CoreCounters {
  // Event counts (Table 1 columns).
  std::uint64_t accesses = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t major_faults = 0;  ///< "page faults" in Table 1: data movement
  std::uint64_t minor_faults = 0;  ///< PSPT PTE-copy faults (no data movement)
  /// Invalidation requests received from other cores ("remote TLB
  /// invalidations" in Table 1) — one per (shootdown, unit) pair.
  std::uint64_t remote_invalidations_received = 0;
  std::uint64_t ipis_received = 0;
  std::uint64_t shootdowns_initiated = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t prefetches = 0;     ///< readahead transfers issued
  std::uint64_t prefetch_hits = 0;  ///< first touches served by readahead
  std::uint64_t syscalls = 0;       ///< system calls offloaded to the host

  // Data movement.
  std::uint64_t pcie_bytes_in = 0;   ///< host -> device (page fetch)
  std::uint64_t pcie_bytes_out = 0;  ///< device -> host (dirty write-back)

  // Fault injection (zero unless a sim::FaultPlan is attached).
  std::uint64_t faults_injected = 0;  ///< faults observed on this core
  std::uint64_t fault_retries = 0;    ///< recovery retries performed
  std::uint64_t fault_give_ups = 0;   ///< retry budgets exhausted

  // Cycle breakdown.
  Cycles cycles_compute = 0;     ///< workload compute ops
  Cycles cycles_mem = 0;         ///< TLB hits/walks + data references
  Cycles cycles_fault = 0;       ///< kernel fault handling excl. waits below
  Cycles cycles_pcie_wait = 0;   ///< waiting on the shared PCIe link
  Cycles cycles_shootdown = 0;   ///< initiating shootdowns
  Cycles cycles_interrupt = 0;   ///< servicing remote invalidation IPIs
  Cycles cycles_lock_wait = 0;   ///< page-table and invalidation-slot locks
  Cycles cycles_barrier = 0;     ///< idle at workload barriers
  Cycles cycles_syscall = 0;     ///< blocked on host-offloaded system calls
  Cycles cycles_recovery = 0;    ///< retry/backoff/quarantine recovery cost
  Cycles cycles_straggler = 0;   ///< extra cycles from straggler inflation

  CoreCounters& operator+=(const CoreCounters& o) {
    accesses += o.accesses;
    dtlb_misses += o.dtlb_misses;
    major_faults += o.major_faults;
    minor_faults += o.minor_faults;
    remote_invalidations_received += o.remote_invalidations_received;
    ipis_received += o.ipis_received;
    shootdowns_initiated += o.shootdowns_initiated;
    evictions += o.evictions;
    writebacks += o.writebacks;
    prefetches += o.prefetches;
    prefetch_hits += o.prefetch_hits;
    syscalls += o.syscalls;
    pcie_bytes_in += o.pcie_bytes_in;
    pcie_bytes_out += o.pcie_bytes_out;
    faults_injected += o.faults_injected;
    fault_retries += o.fault_retries;
    fault_give_ups += o.fault_give_ups;
    cycles_compute += o.cycles_compute;
    cycles_mem += o.cycles_mem;
    cycles_fault += o.cycles_fault;
    cycles_pcie_wait += o.cycles_pcie_wait;
    cycles_shootdown += o.cycles_shootdown;
    cycles_interrupt += o.cycles_interrupt;
    cycles_lock_wait += o.cycles_lock_wait;
    cycles_barrier += o.cycles_barrier;
    cycles_syscall += o.cycles_syscall;
    cycles_recovery += o.cycles_recovery;
    cycles_straggler += o.cycles_straggler;
    return *this;
  }
};

}  // namespace cmcp::metrics
