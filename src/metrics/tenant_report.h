// Multi-tenant reporting: turn a core::MultiTenantResult into ResultWriter
// rows (one per tenant) plus run-level fairness metadata.
//
// Columns per tenant: identity (asid, workload, policy, core placement),
// capacity accounting (footprint / partition target / reserve floor /
// frames held at end), fault behaviour (accesses, major/minor faults,
// fault rate per million accesses, evictions), shootdown interference
// (initiated, remote invalidations received, and one `invals_from_<j>`
// column per tenant j giving the remote TLB entries j's shootdowns
// invalidated on this tenant's cores), and timing (makespan, progress
// rate = accesses per kilocycle).
//
// Run-level meta: shared capacity, partition kind, overall makespan, and
// the Jain fairness index over per-tenant progress rates
// (J = (Σx)² / (n·Σx²); 1.0 = perfectly fair, 1/n = one tenant starved).
// When solo-run makespans are provided, per-tenant `slowdown` columns
// (co-run makespan / solo makespan) and the fairness index over
// 1/slowdown are added — the classic co-run degradation view.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/result_writer.h"

namespace cmcp::core {
struct MultiTenantResult;
}  // namespace cmcp::core

namespace cmcp::metrics {

/// Jain's fairness index over `xs` (each x >= 0). Returns 1.0 for empty or
/// all-zero input (nothing to be unfair about).
double jain_fairness(const std::vector<double>& xs);

struct TenantReportOptions {
  /// Solo-run makespans (one per tenant, asid order) for slowdown columns;
  /// empty = skip slowdown reporting.
  std::vector<std::uint64_t> solo_makespans;
};

/// Append one row per tenant (plus run meta) to `out`.
void write_tenant_report(const core::MultiTenantResult& result,
                         ResultWriter& out,
                         const TenantReportOptions& options = {});

}  // namespace cmcp::metrics
