#include "metrics/tenant_report.h"

#include <string>

#include "common/assert.h"
#include "core/multi_tenant.h"

namespace cmcp::metrics {

double jain_fairness(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  const auto n = static_cast<double>(xs.size());
  return (sum * sum) / (n * sum_sq);
}

void write_tenant_report(const core::MultiTenantResult& result,
                         ResultWriter& out,
                         const TenantReportOptions& options) {
  const std::size_t n = result.tenants.size();
  const bool have_solo = !options.solo_makespans.empty();
  if (have_solo)
    CMCP_CHECK_MSG(options.solo_makespans.size() == n,
                   "one solo makespan per tenant, in asid order");

  std::vector<double> progress_rates;
  std::vector<double> speedups;  // 1/slowdown, for the fairness-of-slowdown view
  progress_rates.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    const core::TenantResult& tr = result.tenants[t];
    ResultWriter::Row& row = out.add_row();
    row.set("asid", static_cast<std::uint64_t>(t))
        .set("workload", tr.workload_name)
        .set("policy", tr.policy_name)
        .set("first_core", static_cast<std::uint64_t>(tr.first_core))
        .set("num_cores", static_cast<std::uint64_t>(tr.num_cores))
        .set("footprint_units", tr.footprint_units)
        .set("capacity_target_units", tr.capacity_target_units)
        .set("reserve_units", tr.reserve_units)
        .set("resident_units_end", tr.resident_units_end)
        .set("accesses", tr.total.accesses)
        .set("major_faults", tr.total.major_faults)
        .set("minor_faults", tr.total.minor_faults)
        .set("evictions", tr.total.evictions + tr.scanner.evictions)
        .set("writebacks", tr.total.writebacks + tr.scanner.writebacks)
        .set("shootdowns_initiated",
             tr.total.shootdowns_initiated + tr.scanner.shootdowns_initiated)
        .set("remote_invals_received", tr.total.remote_invalidations_received)
        .set("scans", tr.scans)
        .set("makespan", static_cast<std::uint64_t>(tr.makespan));

    // Fault rate per million accesses (Table 1's normalization).
    const double accesses = static_cast<double>(tr.total.accesses);
    row.set("major_faults_per_maccess",
            accesses > 0.0
                ? static_cast<double>(tr.total.major_faults) * 1e6 / accesses
                : 0.0);
    row.set("minor_faults_per_maccess",
            accesses > 0.0
                ? static_cast<double>(tr.total.minor_faults) * 1e6 / accesses
                : 0.0);

    // Interference matrix row for this tenant as RECEIVER: how many of its
    // TLB entries each tenant's shootdowns invalidated remotely.
    for (std::size_t cause = 0; cause < n; ++cause)
      row.set("invals_from_" + std::to_string(cause),
              result.interference[cause * n + t]);

    const double rate =
        tr.makespan > 0 ? accesses * 1e3 / static_cast<double>(tr.makespan)
                        : 0.0;
    row.set("progress_rate_kcyc", rate);
    progress_rates.push_back(rate);

    if (have_solo) {
      const double solo = static_cast<double>(options.solo_makespans[t]);
      const double slowdown =
          solo > 0.0 ? static_cast<double>(tr.makespan) / solo : 0.0;
      row.set("solo_makespan", options.solo_makespans[t]);
      row.set("slowdown", slowdown);
      speedups.push_back(slowdown > 0.0 ? 1.0 / slowdown : 0.0);
    }
  }

  out.meta("partition", result.partition_kind);
  out.meta("shared_capacity_units",
           std::to_string(result.shared_capacity_units));
  out.meta("num_tenants", std::to_string(n));
  out.meta("makespan", std::to_string(result.makespan));
  out.meta("jain_fairness_progress",
           std::to_string(jain_fairness(progress_rates)));
  if (have_solo)
    out.meta("jain_fairness_slowdown", std::to_string(jain_fairness(speedups)));
}

}  // namespace cmcp::metrics
