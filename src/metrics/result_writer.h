// Unified machine-readable results API: every CSV/JSON artifact the CLI and
// the bench binaries export goes through this one writer, so the quoting
// rules, header layout and schema versioning live in a single place.
//
// A ResultWriter is a list of rows of named fields plus optional run
// metadata. Columns are the union of field names in first-seen order; a row
// missing a column emits an empty cell. CSV output is a plain header + rows
// (appendable: the header is written only when the file is created, and an
// existing header must match — a schema drift aborts instead of silently
// mixing layouts). JSON output wraps rows and metadata in a
// schema-versioned document:
//
//   {"schema_version": 1, "meta": {...}, "rows": [{...}, ...]}
//
// Thread safety: `add_row()` and `meta()` may be called concurrently (the
// parallel experiment runner appends from worker jobs); the container is
// guarded by an annotated mutex and rows live in a deque so the returned
// `Row&` stays valid across concurrent appends. Filling the returned row is
// the creating thread's business — finish filling every row before calling
// any serialization function.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cmcp::metrics {

class ResultWriter {
 public:
  static constexpr int kSchemaVersion = 1;

  class Row {
   public:
    Row& set(std::string name, std::string value);
    Row& set(std::string name, std::string_view value);
    Row& set(std::string name, const char* value);
    Row& set(std::string name, double value);
    Row& set(std::string name, bool value);
    Row& set(std::string name, std::uint64_t value);
    Row& set(std::string name, std::int64_t value);
    Row& set(std::string name, int value) {
      return set(std::move(name), static_cast<std::int64_t>(value));
    }
    Row& set(std::string name, unsigned value) {
      return set(std::move(name), static_cast<std::uint64_t>(value));
    }

   private:
    friend class ResultWriter;
    struct Field {
      std::string name;
      std::string text;
      bool quoted_in_json;  ///< string vs number/bool literal
    };
    Row& set_raw(std::string name, std::string text, bool quoted);
    std::vector<Field> fields_;
  };

  /// Append an empty row; fill it through the returned reference. Safe to
  /// call from concurrent jobs; the reference stays valid as others append.
  Row& add_row() CMCP_EXCLUDES(mu_);
  std::size_t rows() const CMCP_EXCLUDES(mu_);

  /// Run metadata, emitted as the JSON "meta" object (CSV ignores it).
  ResultWriter& meta(std::string name, std::string value) CMCP_EXCLUDES(mu_);

  // --- CSV -----------------------------------------------------------------
  void to_csv(std::ostream& os) const CMCP_EXCLUDES(mu_);
  std::string csv() const;
  /// Truncate-write `path` (parent directories created).
  void save_csv(const std::string& path) const;
  /// Append rows to `path`; writes the header only when creating the file
  /// and aborts if an existing header does not match this writer's columns.
  void append_csv(const std::string& path) const CMCP_EXCLUDES(mu_);

  /// The one CSV serialization primitive (escaping + row layout) — also
  /// used by metrics::Table so every CSV the project writes agrees.
  static void write_csv_row(std::ostream& os,
                            const std::vector<std::string>& cells);

  // --- JSON ----------------------------------------------------------------
  void to_json(std::ostream& os) const CMCP_EXCLUDES(mu_);
  std::string json() const;
  void save_json(const std::string& path) const;

  /// Column names (union over rows, first-seen order).
  std::vector<std::string> columns() const CMCP_EXCLUDES(mu_);

 private:
  std::vector<std::string> columns_locked() const CMCP_REQUIRES(mu_);
  void write_rows_csv(std::ostream& os, const std::vector<std::string>& cols)
      const CMCP_REQUIRES(mu_);

  mutable common::Mutex mu_;
  /// Deque, not vector: `add_row()` hands out references that must survive
  /// later appends from other jobs.
  std::deque<Row> rows_ CMCP_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::string>> meta_ CMCP_GUARDED_BY(mu_);
};

}  // namespace cmcp::metrics
