// Small table builder with markdown and CSV rendering — every bench binary
// reports its figure/table through this so outputs are uniform and easy to
// diff against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cmcp::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  void to_markdown(std::ostream& os) const;
  void to_csv(std::ostream& os) const;
  std::string markdown() const;
  std::string csv() const;

  /// Write CSV to `path`, creating parent directories if needed.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers shared by benches.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double ratio, int precision = 1);  ///< 0.38 -> "38.0%"
std::string fmt_u64(std::uint64_t v);

}  // namespace cmcp::metrics
