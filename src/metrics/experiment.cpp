#include "metrics/experiment.h"

#include <cstdlib>
#include <sstream>

namespace cmcp::metrics {

std::string RunSpec::label() const {
  std::ostringstream ss;
  ss << to_string(workload) << '.' << size_suffix(size) << ' '
     << to_string(pt_kind) << '+' << to_string(policy.kind) << ' ' << cores
     << "c " << to_string(page_size);
  if (preload) ss << " (no data movement)";
  return ss.str();
}

core::SimulationConfig RunSpec::to_config() const {
  core::SimulationConfig config;
  config.machine.num_cores = cores;
  config.machine.page_size = page_size;
  config.pt_kind = pt_kind;
  config.policy = policy;
  config.preload = preload;
  config.memory_fraction = memory_fraction > 0.0
                               ? memory_fraction
                               : wl::paper_memory_fraction(workload);
  config.faults = faults;
  config.threads = threads;
  config.simcheck = simcheck;
  return config;
}

core::SimulationConfig to_config(const RunSpec& spec) {
  return spec.to_config();
}

namespace {

std::string fmt_double_meta(double v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

}  // namespace

sim::trace::Metadata RunSpec::describe() const {
  sim::trace::Metadata meta;
  meta.emplace_back("workload", std::string(to_string(workload)));
  meta.emplace_back("size", std::string(size_suffix(size)));
  meta.emplace_back("cores", std::to_string(cores));
  meta.emplace_back("pt_kind", std::string(to_string(pt_kind)));
  meta.emplace_back("policy", std::string(to_string(policy.kind)));
  meta.emplace_back("memory_fraction",
                    fmt_double_meta(memory_fraction > 0.0
                                        ? memory_fraction
                                        : wl::paper_memory_fraction(workload)));
  meta.emplace_back("preload", preload ? "true" : "false");
  meta.emplace_back("page_size", std::string(to_string(page_size)));
  meta.emplace_back("seed", std::to_string(seed));
  meta.emplace_back("scale", fmt_double_meta(scale));
  switch (policy.kind) {
    case PolicyKind::kCmcp:
      meta.emplace_back("cmcp_p", fmt_double_meta(policy.cmcp.p));
      meta.emplace_back("cmcp_age_limit_ticks",
                        std::to_string(policy.cmcp.age_limit_ticks));
      meta.emplace_back("cmcp_aging",
                        policy.cmcp.aging_enabled ? "true" : "false");
      break;
    case PolicyKind::kCmcpDynamicP:
      meta.emplace_back("cmcp_p", fmt_double_meta(policy.dynamic_p.cmcp.p));
      meta.emplace_back("dyn_step", fmt_double_meta(policy.dynamic_p.step));
      meta.emplace_back("dyn_window_ticks",
                        std::to_string(policy.dynamic_p.window_ticks));
      break;
    case PolicyKind::kRandom:
      meta.emplace_back("random_seed", std::to_string(policy.random_seed));
      break;
    default:
      break;
  }
  if (faults.enabled()) {
    // Only when enabled: legacy headers must stay byte-identical. The spec
    // string alone reproduces the schedule; seed and retry budget are also
    // broken out for trace_lint's give-up rule.
    meta.emplace_back("faults", faults.to_spec());
    meta.emplace_back("fault_seed", std::to_string(faults.seed));
    meta.emplace_back("fault_max_retries", std::to_string(faults.max_retries));
  }
  return meta;
}

core::SimulationResult run_spec(const RunSpec& spec) {
  wl::WorkloadParams base;
  base.cores = spec.cores;
  base.seed = spec.seed;
  if (spec.scale > 0.0) base.scale = spec.scale;
  const auto workload = wl::make_paper_workload(spec.workload, base, spec.size);
  if (spec.trace_path.empty())
    return core::run_simulation(spec.to_config(), *workload);

  sim::trace::EventSink sink;
  core::SimulationConfig config = spec.to_config();
  config.trace = &sink;
  const auto result = core::run_simulation(config, *workload);
  sim::trace::write_trace_file(sink, spec.describe(), result_summary(result),
                               spec.trace_format, spec.trace_path);
  return result;
}

sim::trace::Summary result_summary(const core::SimulationResult& result) {
  sim::trace::Summary s;
  s.emplace_back("makespan", result.makespan);
  s.emplace_back("accesses", result.app_total.accesses);
  s.emplace_back("dtlb_misses", result.app_total.dtlb_misses);
  s.emplace_back("major_faults", result.app_total.major_faults);
  s.emplace_back("minor_faults", result.app_total.minor_faults);
  s.emplace_back("remote_invals",
                 result.app_total.remote_invalidations_received);
  s.emplace_back("evictions", result.app_total.evictions);
  s.emplace_back("writebacks", result.app_total.writebacks);
  s.emplace_back("pcie_bytes_in", result.app_total.pcie_bytes_in);
  s.emplace_back("pcie_bytes_out", result.app_total.pcie_bytes_out);
  s.emplace_back("scans", result.scans);
  s.emplace_back("footprint_units", result.footprint_units);
  s.emplace_back("capacity_units", result.capacity_units);
  if (result.faults_enabled) {
    // Gated so fault-free summaries stay byte-identical to pre-fault runs.
    const sim::FaultStats& fs = result.fault_stats;
    s.emplace_back("faults_injected", fs.total_injected());
    s.emplace_back("fault_retries", fs.retries);
    s.emplace_back("fault_give_ups", fs.give_ups);
    s.emplace_back("frames_quarantined", fs.frames_quarantined);
    s.emplace_back("recovery_cycles", fs.recovery_cycles);
    s.emplace_back("straggler_cycles", fs.straggler_cycles);
  }
  for (const auto& [name, value] : result.policy_stats)
    s.emplace_back("policy." + name, value);
  return s;
}

double relative_performance(const core::SimulationResult& baseline,
                            const core::SimulationResult& run) {
  if (run.makespan == 0) return 0.0;
  return static_cast<double>(baseline.makespan) /
         static_cast<double>(run.makespan);
}

bool fast_mode() { return std::getenv("CMCP_BENCH_FAST") != nullptr; }

std::vector<CoreId> paper_core_counts() {
  if (fast_mode()) return {8, 24, 56};
  return {8, 16, 24, 32, 40, 48, 56};
}

}  // namespace cmcp::metrics
