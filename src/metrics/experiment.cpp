#include "metrics/experiment.h"

#include <cstdlib>
#include <sstream>

namespace cmcp::metrics {

std::string RunSpec::label() const {
  std::ostringstream ss;
  ss << to_string(workload) << '.' << size_suffix(size) << ' '
     << to_string(pt_kind) << '+' << to_string(policy.kind) << ' ' << cores
     << "c " << to_string(page_size);
  if (preload) ss << " (no data movement)";
  return ss.str();
}

core::SimulationConfig to_config(const RunSpec& spec) {
  core::SimulationConfig config;
  config.machine.num_cores = spec.cores;
  config.machine.page_size = spec.page_size;
  config.pt_kind = spec.pt_kind;
  config.policy = spec.policy;
  config.preload = spec.preload;
  config.memory_fraction = spec.memory_fraction > 0.0
                               ? spec.memory_fraction
                               : wl::paper_memory_fraction(spec.workload);
  return config;
}

core::SimulationResult run_spec(const RunSpec& spec) {
  wl::WorkloadParams base;
  base.cores = spec.cores;
  base.seed = spec.seed;
  if (spec.scale > 0.0) base.scale = spec.scale;
  const auto workload = wl::make_paper_workload(spec.workload, base, spec.size);
  return core::run_simulation(to_config(spec), *workload);
}

double relative_performance(const core::SimulationResult& baseline,
                            const core::SimulationResult& run) {
  if (run.makespan == 0) return 0.0;
  return static_cast<double>(baseline.makespan) /
         static_cast<double>(run.makespan);
}

bool fast_mode() { return std::getenv("CMCP_BENCH_FAST") != nullptr; }

std::vector<CoreId> paper_core_counts() {
  if (fast_mode()) return {8, 24, 56};
  return {8, 16, 24, 32, 40, 48, 56};
}

}  // namespace cmcp::metrics
