#include "metrics/parallel_runner.h"

#include <atomic>
#include <thread>

#include "common/assert.h"

namespace cmcp::metrics {

std::vector<core::SimulationResult> run_jobs_parallel(
    const std::vector<std::function<core::SimulationResult()>>& jobs,
    unsigned threads) {
  std::vector<core::SimulationResult> results(jobs.size());
  if (jobs.empty()) return results;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, jobs.size());

  if (threads == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = jobs[i]();
    return results;
  }

  // Work stealing via a shared atomic cursor: jobs have wildly different
  // durations (56-core runs dwarf 8-core ones), so static partitioning
  // would leave workers idle.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      results[i] = jobs[i]();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

std::vector<core::SimulationResult> run_specs_parallel(
    const std::vector<RunSpec>& specs, unsigned threads) {
  std::vector<std::function<core::SimulationResult()>> jobs;
  jobs.reserve(specs.size());
  for (const RunSpec& spec : specs)
    jobs.emplace_back([spec] { return run_spec(spec); });
  return run_jobs_parallel(jobs, threads);
}

}  // namespace cmcp::metrics
