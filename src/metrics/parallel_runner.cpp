#include "metrics/parallel_runner.h"

#include <atomic>
#include <exception>
#include <thread>

#include "common/assert.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cmcp::metrics {

namespace {

/// State shared by the worker pool. The claim cursor is lock-free; the
/// error slot is the annotated-mutex path (a job that throws must surface
/// its exception on the calling thread, not std::terminate the process —
/// which is what an exception escaping a std::thread body does).
struct SharedState {
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  common::Mutex mu;
  std::exception_ptr first_error CMCP_GUARDED_BY(mu);
};

}  // namespace

std::vector<core::SimulationResult> run_jobs_parallel(
    const std::vector<std::function<core::SimulationResult()>>& jobs,
    unsigned threads) {
  std::vector<core::SimulationResult> results(jobs.size());
  if (jobs.empty()) return results;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, jobs.size());

  if (threads == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = jobs[i]();
    return results;
  }

  // Work stealing via a shared atomic cursor: jobs have wildly different
  // durations (56-core runs dwarf 8-core ones), so static partitioning
  // would leave workers idle. Each worker writes only its claimed slot of
  // `results`, so the result vector needs no lock.
  SharedState shared;
  const auto worker = [&] {
    for (;;) {
      if (shared.failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = shared.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = jobs[i]();
      } catch (...) {
        common::LockGuard lock(shared.mu);
        if (shared.first_error == nullptr)
          shared.first_error = std::current_exception();
        shared.failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  {
    common::LockGuard lock(shared.mu);
    if (shared.first_error != nullptr) std::rethrow_exception(shared.first_error);
  }
  return results;
}

std::vector<core::SimulationResult> run_specs_parallel(
    const std::vector<RunSpec>& specs, unsigned threads) {
  std::vector<std::function<core::SimulationResult()>> jobs;
  jobs.reserve(specs.size());
  for (const RunSpec& spec : specs)
    jobs.emplace_back([spec] { return run_spec(spec); });
  return run_jobs_parallel(jobs, threads);
}

}  // namespace cmcp::metrics
