#include "metrics/bench_compare.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <string_view>

namespace cmcp::metrics {

namespace {

/// Position just past `"key":` and any following spaces, or npos. Accepts
/// whitespace after the colon so hand-edited (pretty-printed) baselines
/// parse the same as ResultWriter's compact output.
std::size_t value_begin(std::string_view text, std::string_view key) {
  const std::string needle = '"' + std::string(key) + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string_view::npos) return std::string_view::npos;
  std::size_t begin = pos + needle.size();
  while (begin < text.size() && (text[begin] == ' ' || text[begin] == '\t'))
    ++begin;
  return begin < text.size() ? begin : std::string_view::npos;
}

std::optional<std::string> find_string(std::string_view text,
                                       std::string_view key) {
  const std::size_t begin = value_begin(text, key);
  if (begin == std::string_view::npos || text[begin] != '"')
    return std::nullopt;
  const std::size_t end = text.find('"', begin + 1);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(text.substr(begin + 1, end - begin - 1));
}

std::optional<double> find_number(std::string_view text, std::string_view key) {
  const std::size_t begin = value_begin(text, key);
  if (begin == std::string_view::npos) return std::nullopt;
  const std::string num(text.substr(begin, text.find_first_of(",}", begin) - begin));
  char* end = nullptr;
  const double value = std::strtod(num.c_str(), &end);
  if (end == num.c_str()) return std::nullopt;
  return value;
}

bool higher_is_better(std::string_view metric) { return metric != "ns_per_ref"; }

double metric_of(const BenchRow& row, std::string_view metric) {
  return metric == "ns_per_ref" ? row.ns_per_ref : row.refs_per_sec;
}

}  // namespace

BenchDoc load_bench_json(std::istream& in) {
  BenchDoc doc;
  std::string line;
  while (std::getline(in, line)) {
    // ResultWriter emits one row object per line inside the "rows" array;
    // only lines carrying a "name" field are bench rows.
    if (line.empty() || line[0] != '{') continue;
    const auto name = find_string(line, "name");
    if (!name) continue;
    BenchRow row;
    row.name = *name;
    if (const auto kind = find_string(line, "kind")) row.kind = *kind;
    if (const auto v = find_number(line, "ns_per_ref")) row.ns_per_ref = *v;
    if (const auto v = find_number(line, "refs_per_sec")) row.refs_per_sec = *v;
    doc.rows.push_back(std::move(row));
  }
  doc.ok = !doc.rows.empty();
  return doc;
}

BenchDoc load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};
  return load_bench_json(in);
}

CompareResult compare_bench(const BenchDoc& baseline, const BenchDoc& current,
                            const CompareOptions& options) {
  CompareResult result;
  const bool higher = higher_is_better(options.metric);
  for (const BenchRow& base : baseline.rows) {
    if (!options.rows.empty() &&
        base.name.find(options.rows) == std::string::npos)
      continue;
    const BenchRow* cur = nullptr;
    for (const BenchRow& c : current.rows) {
      if (c.name == base.name) {
        cur = &c;
        break;
      }
    }
    if (cur == nullptr) {
      result.missing.push_back(base.name);
      continue;
    }
    RowComparison cmp;
    cmp.name = base.name;
    cmp.baseline = metric_of(base, options.metric);
    cmp.current = metric_of(*cur, options.metric);
    if (cmp.baseline > 0.0 && cmp.current > 0.0) {
      cmp.speedup = higher ? cmp.current / cmp.baseline
                           : cmp.baseline / cmp.current;
      cmp.regressed = cmp.speedup < 1.0 - options.tolerance;
    } else {
      // A zero/absent measurement cannot be compared; treat as regression
      // so a truncated document never passes the gate.
      cmp.regressed = true;
    }
    if (cmp.speedup > result.best_speedup) result.best_speedup = cmp.speedup;
    result.rows.push_back(std::move(cmp));
  }
  result.empty_selection =
      !options.rows.empty() && result.rows.empty() && result.missing.empty();
  if (options.require_speedup > 0.0) {
    if (options.rows.empty()) {
      result.speedup_met = result.best_speedup >= options.require_speedup;
    } else {
      // A filtered comparison names exactly the rows the speedup claim is
      // about, so every one of them must deliver it (and an empty
      // selection must not read as "met").
      result.speedup_met = !result.rows.empty();
      for (const RowComparison& row : result.rows)
        if (row.speedup < options.require_speedup) result.speedup_met = false;
    }
  }
  return result;
}

void print_comparison(const CompareResult& result, const CompareOptions& options,
                      std::ostream& os) {
  os << "bench_compare: metric=" << options.metric
     << " tolerance=" << options.tolerance;
  if (!options.rows.empty()) os << " rows~\"" << options.rows << '"';
  os << '\n';
  if (!options.rows.empty() && result.rows.empty() && result.missing.empty())
    os << "  (no baseline row matches the filter)\n";
  for (const RowComparison& row : result.rows) {
    os << "  " << (row.regressed ? "REGRESSED " : "ok        ") << row.name
       << ": " << row.baseline << " -> " << row.current << " (x" << row.speedup
       << ")\n";
  }
  for (const std::string& name : result.missing)
    os << "  MISSING   " << name << ": present in baseline only\n";
  if (options.require_speedup > 0.0)
    os << "  best speedup x" << result.best_speedup << " (required x"
       << options.require_speedup << (result.speedup_met ? ", met" : ", NOT met")
       << ")\n";
  os << (result.ok() ? "PASS" : "FAIL") << '\n';
}

}  // namespace cmcp::metrics
