// Experiment runner shared by the bench binaries: one RunSpec describes one
// cell of a paper figure/table; run_spec() builds the workload + simulation
// and returns the observables.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/simulation.h"
#include "sim/trace.h"
#include "workloads/workload_factory.h"

namespace cmcp::metrics {

struct RunSpec {
  wl::PaperWorkload workload = wl::PaperWorkload::kCg;
  wl::WorkloadSize size = wl::WorkloadSize::kSmall;
  CoreId cores = 56;
  PageTableKind pt_kind = PageTableKind::kPspt;
  policy::PolicyParams policy;
  /// Memory provided as a fraction of the footprint; <= 0 selects the
  /// paper's per-workload constraint (section 5.4).
  double memory_fraction = -1.0;
  bool preload = false;  ///< no-data-movement baseline
  PageSizeClass page_size = PageSizeClass::k4K;
  std::uint64_t seed = 1234;
  /// Footprint multiplier override (0 = workload-size default).
  double scale = 0.0;

  /// When non-empty, run_spec() records a structured event trace of the run
  /// and exports it here in `trace_format` (see sim/trace.h).
  std::string trace_path;
  sim::trace::Format trace_format = sim::trace::Format::kPerfetto;

  /// Deterministic fault injection (docs/robustness.md). Default-disabled:
  /// the run then takes the exact pre-fault code paths and emits
  /// byte-identical artifacts. Serialized in describe() only when enabled,
  /// so legacy trace headers stay unchanged.
  sim::FaultPlanConfig faults;

  /// Host worker threads for the engine (core/engine.h). Execution knob,
  /// not experiment identity: results and traces are thread-count
  /// invariant, so describe() deliberately omits it — headers must stay
  /// byte-identical across --threads values.
  unsigned threads = 1;
  /// Registers the SimCheck invariant checkpoints (no-op in CMCP_SIMCHECK=
  /// OFF builds). Also an execution knob: checkpoints are pure observers,
  /// so describe() omits it too.
  bool simcheck = true;

  /// Human-oriented one-line summary (lossy; legends, progress lines).
  std::string label() const;

  /// The full simulation configuration this spec denotes. Together with
  /// describe(), a RunSpec round-trips: to_config() is the executable form,
  /// describe() the serialized one.
  core::SimulationConfig to_config() const;

  /// Every field as ordered (name, value) pairs — the trace/JSON metadata
  /// header, so an exported artifact records exactly which cell of which
  /// figure produced it.
  sim::trace::Metadata describe() const;
};

core::SimulationConfig to_config(const RunSpec& spec);

/// Build the workload and run the full simulation for one spec. When
/// spec.trace_path is set, also records and exports the event trace.
core::SimulationResult run_spec(const RunSpec& spec);

/// Headline counters of a result as ordered (name, value) pairs, policy
/// stats included under a "policy." prefix — the JSONL trace summary and
/// the machine-readable exports share this one list.
sim::trace::Summary result_summary(const core::SimulationResult& result);

/// baseline runtime / run runtime — "relative performance" in the paper's
/// figures (1.0 == as fast as the unconstrained baseline).
double relative_performance(const core::SimulationResult& baseline,
                            const core::SimulationResult& run);

/// True when the CMCP_BENCH_FAST environment variable is set: benches shrink
/// their sweeps for quick smoke runs.
bool fast_mode();

/// Core-count sweep used by Fig. 6/7 and Table 1 (the paper's x-axis).
std::vector<CoreId> paper_core_counts();

}  // namespace cmcp::metrics
