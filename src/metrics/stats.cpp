#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace cmcp::metrics {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

double cycles_to_seconds(Cycles cycles, const sim::CostModel& cost) {
  return static_cast<double>(cycles) / (cost.clock_ghz * 1e9);
}

}  // namespace cmcp::metrics
