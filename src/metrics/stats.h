// Small statistics helpers for reporting.
#pragma once

#include <span>

#include "common/types.h"
#include "sim/cost_model.h"

namespace cmcp::metrics {

struct Summary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};

Summary summarize(std::span<const double> values);

/// Convert virtual cycles to wall seconds at the modelled clock.
double cycles_to_seconds(Cycles cycles, const sim::CostModel& cost);

}  // namespace cmcp::metrics
