#include "metrics/resilience_report.h"

#include <sstream>

namespace cmcp::metrics {

std::string format_resilience_report(const sim::FaultPlanConfig& config,
                                     const sim::FaultStats& stats,
                                     std::uint64_t capacity_units) {
  std::ostringstream ss;
  ss << "resilience report (faults=" << config.to_spec() << ")\n";

  ss << "  faults injected      " << stats.total_injected() << " (";
  for (unsigned k = 0; k < sim::kNumFaultKinds; ++k) {
    if (k > 0) ss << ' ';
    ss << sim::to_string(static_cast<sim::FaultKind>(k)) << '='
       << stats.injected[k];
  }
  ss << ")\n";

  ss << "  recovery retries     " << stats.retries << "\n";
  ss << "  give-ups             " << stats.give_ups << "\n";

  ss << "  frames quarantined   " << stats.frames_quarantined;
  if (capacity_units > 0) {
    const double lost = 100.0 * static_cast<double>(stats.frames_quarantined) /
                        static_cast<double>(capacity_units);
    ss << " (capacity lost " << lost << "%)";
  }
  ss << "\n";

  // Straggler inflation is endured, not recovered from, so it has its own
  // line and is excluded from the per-fault recovery mean.
  std::uint64_t recovered_faults = 0;
  for (unsigned k = 0; k < sim::kNumFaultKinds; ++k) {
    if (static_cast<sim::FaultKind>(k) == sim::FaultKind::kStraggler) continue;
    recovered_faults += stats.injected[k];
  }
  const double mean =
      recovered_faults == 0
          ? 0.0
          : static_cast<double>(stats.recovery_cycles) /
                static_cast<double>(recovered_faults);
  ss << "  mean recovery cost   " << mean << " cycles/fault\n";
  ss << "  straggler inflation  " << stats.straggler_cycles << " cycles\n";

  for (std::size_t asid = 0; asid < stats.per_asid_faults.size(); ++asid) {
    if (stats.per_asid_faults[asid] == 0) continue;
    const Cycles rec = asid < stats.per_asid_recovery.size()
                           ? stats.per_asid_recovery[asid]
                           : 0;
    ss << "  tenant " << asid << "             faults="
       << stats.per_asid_faults[asid] << " recovery=" << rec << " cycles\n";
  }
  return ss.str();
}

}  // namespace cmcp::metrics
