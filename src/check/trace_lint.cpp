#include "check/trace_lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "sim/trace.h"

namespace cmcp::check {

namespace {

// --- minimal JSON field extraction -----------------------------------------
// The exporter writes flat one-line objects with unescaped keys and numeric
// or simple-string values, so targeted field lookups are sufficient (and
// keep the linter free of a JSON dependency the container may not have).

std::optional<std::uint64_t> find_uint(std::string_view text,
                                       std::string_view key) {
  const std::string needle = '"' + std::string(key) + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  if (i >= text.size() ||
      std::isdigit(static_cast<unsigned char>(text[i])) == 0)
    return std::nullopt;
  std::uint64_t value = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])) != 0)
    value = value * 10 + static_cast<std::uint64_t>(text[i++] - '0');
  return value;
}

std::optional<std::string_view> find_string(std::string_view text,
                                            std::string_view key) {
  const std::string needle = '"' + std::string(key) + "\":\"";
  const std::size_t pos = text.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::size_t begin = pos + needle.size();
  const std::size_t end = text.find('"', begin);
  if (end == std::string_view::npos) return std::nullopt;
  return text.substr(begin, end - begin);
}

/// Protocol residency as reconstructible from the event stream. Units that
/// never appear (preloaded, never-faulted) stay kUnknown.
enum class Residency : std::uint8_t { kUnknown = 0, kResident, kEvicted };

struct UnitState {
  Residency residency = Residency::kUnknown;
  /// A host->device transfer of this unit has been seen and not yet
  /// consumed by a major fault (fault/resolve pairing).
  bool fetch_pending = false;
};

/// Unit indices are address-space-local, so all protocol state is keyed by
/// (asid, unit). Single-tenant traces omit the asid field and everything
/// lands on asid 0 — exactly the pre-multi-tenant behavior. Unit indices
/// stay far below 2^48, so packing is collision-free.
constexpr std::uint64_t kNoPick = ~0ULL;
std::uint64_t unit_key(std::uint64_t asid, std::uint64_t unit) {
  return (asid << 48) | unit;
}
std::uint64_t key_unit(std::uint64_t key) { return key & ((1ULL << 48) - 1); }
std::uint64_t key_asid(std::uint64_t key) { return key >> 48; }

struct CoreState {
  std::uint64_t last_pick = kNoPick;  ///< victim_pick awaiting its eviction
  std::unordered_set<std::uint64_t> shot_since_pick;
  std::unordered_set<std::uint64_t> writeback_since_pick;
  /// The address space this core faults for, learned from its first fault.
  std::uint64_t bound_asid = 0;
  bool has_bound_asid = false;
};

class Linter {
 public:
  explicit Linter(LintResult& result) : result_(result) {}

  void line(std::size_t number, std::string_view text) {
    ++result_.lines;
    if (text.empty()) return;
    const auto type = find_string(text, "type");
    if (!type) {
      issue(number, "parse-error", "line has no \"type\" field");
      return;
    }
    if (saw_summary_)
      issue(number, "trailing-line", "content after the summary footer");
    if (*type == "meta") {
      if (number != 1)
        issue(number, "missing-meta", "meta line must be the first line");
      saw_meta_ = true;
      // Multi-tenant traces declare their space count; absent means 1.
      if (const auto spaces = find_uint(text, "spaces")) spaces_ = *spaces;
      // Fault-injected traces declare their retry budget (a quoted config
      // string); absent means the FaultPlanConfig default.
      if (const auto retries = find_string(text, "fault_max_retries")) {
        std::uint64_t value = 0;
        for (const char ch : *retries) {
          if (ch < '0' || ch > '9') return;
          value = value * 10 + static_cast<std::uint64_t>(ch - '0');
        }
        max_retries_ = value;
      }
      return;
    }
    if (*type == "summary") {
      summary(number, text);
      return;
    }
    if (*type == "event") {
      if (!saw_meta_ && !complained_meta_) {
        issue(number, "missing-meta", "events before any meta header");
        complained_meta_ = true;
      }
      event(number, text);
      return;
    }
    issue(number, "parse-error",
          "unknown line type \"" + std::string(*type) + '"');
  }

  void finish(std::size_t last_line) {
    if (!saw_meta_ && !complained_meta_ && result_.lines > 0)
      issue(1, "missing-meta", "trace has no meta header");
    if (!saw_summary_ && result_.lines > 0)
      issue(last_line, "missing-summary", "trace has no summary footer");
  }

 private:
  void issue(std::size_t line, std::string rule, std::string message) {
    result_.issues.push_back({line, std::move(rule), std::move(message)});
  }

  CoreState& core_state(std::uint64_t core) { return cores_[core]; }

  void event(std::size_t number, std::string_view text) {
    ++result_.events;
    // Top-level fields live before "args"; unit and the kind-specific
    // payload after it. Splitting first keeps the lookups unambiguous
    // (pcie/slot events repeat "core" inside args).
    const std::size_t args_pos = text.find("\"args\":");
    const std::string_view head =
        args_pos == std::string_view::npos ? text : text.substr(0, args_pos);
    const std::string_view args =
        args_pos == std::string_view::npos ? std::string_view{}
                                           : text.substr(args_pos);

    const auto kind = find_string(head, "kind");
    const auto core = find_uint(head, "core");
    const auto ts = find_uint(head, "ts");
    const auto dur = find_uint(head, "dur");
    if (!kind || !core || !ts || !dur) {
      issue(number, "parse-error", "event line missing kind/core/ts/dur");
      return;
    }
    ++by_kind_[std::string(*kind)];
    const auto unit = find_uint(args, "unit");
    const auto asid_field = find_uint(args, "asid");
    const std::uint64_t asid = asid_field.value_or(0);
    if (asid_field && *asid_field >= spaces_)
      issue(number, "asid-out-of-range",
            "event carries asid " + std::to_string(*asid_field) +
                " but the meta header declares " + std::to_string(spaces_) +
                " spaces");

    if (*kind == "minor_fault") {
      fault_ts(number, *core, asid, *ts);
      if (!unit) return issue(number, "parse-error", "minor_fault without unit");
      fill_asid(number, *core, asid);
      UnitState& st = units_[unit_key(asid, *unit)];
      if (st.residency == Residency::kEvicted)
        issue(number, "use-after-evict",
              "minor fault on unit " + std::to_string(*unit) +
                  " after its eviction (no refetch in between)");
      st.residency = Residency::kResident;
    } else if (*kind == "major_fault") {
      fault_ts(number, *core, asid, *ts);
      if (!unit) return issue(number, "parse-error", "major_fault without unit");
      fill_asid(number, *core, asid);
      UnitState& st = units_[unit_key(asid, *unit)];
      if (!st.fetch_pending)
        issue(number, "major-fault-without-transfer",
              "major fault on unit " + std::to_string(*unit) +
                  " with no host->device transfer to resolve it");
      st.fetch_pending = false;
      st.residency = Residency::kResident;
    } else if (*kind == "victim_pick") {
      if (!unit) return issue(number, "parse-error", "victim_pick without unit");
      CoreState& cs = core_state(*core);
      cs.last_pick = unit_key(asid, *unit);
      cs.shot_since_pick.clear();
      cs.writeback_since_pick.clear();
    } else if (*kind == "shootdown") {
      // Scanner batches carry no unit; per-unit eviction shootdowns do.
      if (unit) core_state(*core).shot_since_pick.insert(unit_key(asid, *unit));
    } else if (*kind == "pcie_transfer") {
      const auto dir = find_uint(args, "dir");
      if (!dir) return issue(number, "parse-error", "pcie_transfer without dir");
      if (!unit) return;  // syscall round-trips move no page data
      if (*dir == 0) {    // host->device: a fetch
        UnitState& st = units_[unit_key(asid, *unit)];
        if (st.residency == Residency::kResident)
          issue(number, "refetch-while-resident",
                "host->device transfer of unit " + std::to_string(*unit) +
                    " which is already resident");
        st.residency = Residency::kResident;
        st.fetch_pending = true;
      } else {  // device->host: a write-back
        core_state(*core).writeback_since_pick.insert(unit_key(asid, *unit));
      }
    } else if (*kind == "eviction") {
      eviction(number, *core, unit, asid_field, args);
    } else if (*kind == "scan_pass") {
      // Scanner passes are stamped with the pseudo-core's tick time, so
      // they join the per-(asid, core) monotonicity watermark.
      fault_ts(number, *core, asid, *ts);
      // One scanner per address space; passes of DIFFERENT spaces may
      // overlap in global time, so the no-overlap invariant is per space.
      Cycles& scan_end = scan_end_[asid];
      if (*ts < scan_end)
        issue(number, "scan-overlap",
              "scan pass starts at " + std::to_string(*ts) +
                  " before the previous pass ended at " +
                  std::to_string(scan_end));
      scan_end = *ts + *dur;
    } else if (*kind == "slot_hold") {
      if (*ts < slot_end_)
        issue(number, "slot-overlap",
              "invalidation slot held from " + std::to_string(*ts) +
                  " while the previous hold ran to " +
                  std::to_string(slot_end_));
      slot_end_ = *ts + *dur;
    } else if (*kind == "barrier_wait") {
      fault_ts(number, *core, asid, *ts);
    } else if (*kind == "fault_inject") {
      const auto fault = find_uint(args, "fault");
      if (!fault)
        return issue(number, "parse-error", "fault_inject without fault kind");
      ++pending_faults_[fault_key(*core, *fault)];
      // An ECC inject names the poisoned frame in its detail arg; poison
      // surfacing on an already-retired frame means data was (re)filled
      // into a quarantined frame.
      if (*fault == 3) {  // FaultKind::kEccPoison
        const auto pfn = find_uint(args, "detail");
        if (pfn && quarantined_pfns_.count(*pfn) != 0)
          issue(number, "fill-from-quarantined-frame",
                "ECC poison surfaces on frame " + std::to_string(*pfn) +
                    " which is already quarantined");
      }
    } else if (*kind == "fault_retry") {
      const auto fault = find_uint(args, "fault");
      if (!fault)
        return issue(number, "parse-error", "fault_retry without fault kind");
      std::uint64_t& pending = pending_faults_[fault_key(*core, *fault)];
      if (pending == 0)
        issue(number, "retry-without-failure",
              "core " + std::to_string(*core) + " retries fault kind " +
                  std::to_string(*fault) + " with no injected failure pending");
      else
        --pending;
    } else if (*kind == "fault_give_up") {
      const auto fault = find_uint(args, "fault");
      const auto attempts = find_uint(args, "attempts");
      if (!fault || !attempts)
        return issue(number, "parse-error",
                     "fault_give_up without fault/attempts");
      std::uint64_t& pending = pending_faults_[fault_key(*core, *fault)];
      if (pending == 0)
        issue(number, "retry-without-failure",
              "core " + std::to_string(*core) + " gives up on fault kind " +
                  std::to_string(*fault) + " with no injected failure pending");
      else
        --pending;
      // Recovery is bounded retry: giving up EARLY abandons an operation the
      // protocol still owed retries.
      if (*attempts < max_retries_)
        issue(number, "give-up-without-max-retries",
              "give-up after " + std::to_string(*attempts) +
                  " attempts but the declared retry budget is " +
                  std::to_string(max_retries_));
    } else if (*kind == "quarantine") {
      const auto pfn = find_uint(args, "pfn");
      if (!pfn) return issue(number, "parse-error", "quarantine without pfn");
      if (!quarantined_pfns_.insert(*pfn).second)
        issue(number, "fill-from-quarantined-frame",
              "frame " + std::to_string(*pfn) +
                  " quarantined twice — it must have been handed out again");
    } else {
      issue(number, "parse-error",
            "unknown event kind \"" + std::string(*kind) + '"');
    }
  }

  void eviction(std::size_t number, std::uint64_t core,
                std::optional<std::uint64_t> unit,
                std::optional<std::uint64_t> asid_field,
                std::string_view args) {
    if (!unit) return issue(number, "parse-error", "eviction without unit");
    const auto dirty = find_uint(args, "dirty");
    const auto targets = find_uint(args, "targets");
    const auto wb_bytes = find_uint(args, "writeback_bytes");
    if (!dirty || !targets || !wb_bytes)
      return issue(number, "parse-error",
                   "eviction missing dirty/targets/writeback_bytes");
    // In a multi-tenant trace the unit index alone is ambiguous: the victim's
    // asid is what lets anyone attribute the eviction (QoS eviction runs on
    // a core of a DIFFERENT space, so the core id is no substitute).
    if (spaces_ > 1 && !asid_field)
      issue(number, "eviction-missing-asid",
            "multi-tenant eviction of unit " + std::to_string(*unit) +
                " does not carry the victim's asid");
    const std::uint64_t asid = asid_field.value_or(0);

    UnitState& st = units_[unit_key(asid, *unit)];
    if (st.residency == Residency::kEvicted)
      issue(number, "double-evict",
            "unit " + std::to_string(*unit) +
                " evicted again without becoming resident (frame double-free)");
    else if (st.residency == Residency::kUnknown)
      issue(number, "evict-nonresident",
            "eviction of unit " + std::to_string(*unit) +
                " that the trace never saw become resident");
    st.residency = Residency::kEvicted;
    st.fetch_pending = false;

    CoreState& cs = core_state(core);
    if (cs.last_pick != unit_key(asid, *unit))
      issue(number, "eviction-without-pick",
            "eviction of unit " + std::to_string(*unit) + " on core " +
                std::to_string(core) +
                (cs.last_pick == kNoPick
                     ? std::string(" with no pending victim_pick")
                     : " but the pending victim_pick chose unit " +
                           std::to_string(key_unit(cs.last_pick)) +
                           " of asid " + std::to_string(key_asid(cs.last_pick))));
    cs.last_pick = kNoPick;

    // targets counts every mapping core including the initiator; a remote
    // shootdown event is mandatory once anyone else maps the unit. With a
    // single mapper the sole PTE may belong to the initiator, whose INVLPG
    // is local and emits nothing.
    if (*targets >= 2 && cs.shot_since_pick.count(unit_key(asid, *unit)) == 0)
      issue(number, "eviction-without-shootdown",
            "unit " + std::to_string(*unit) + " was mapped by " +
                std::to_string(*targets) +
                " cores but no shootdown of it precedes the eviction");

    if (*dirty != 0) {
      if (*wb_bytes == 0)
        issue(number, "writeback-mismatch",
              "dirty eviction of unit " + std::to_string(*unit) +
                  " reports zero writeback bytes");
      if (cs.writeback_since_pick.count(unit_key(asid, *unit)) == 0)
        issue(number, "writeback-mismatch",
              "dirty eviction of unit " + std::to_string(*unit) +
                  " has no device->host transfer preceding it");
    } else if (*wb_bytes != 0) {
      issue(number, "writeback-mismatch",
            "clean eviction of unit " + std::to_string(*unit) +
                " reports " + std::to_string(*wb_bytes) + " writeback bytes");
    }
  }

  /// No cross-asid TLB fill: every core faults for exactly one address
  /// space (its own); the binding is learned from the core's first fault.
  /// Evictions and picks are exempt — QoS eviction legitimately evicts a
  /// NEIGHBOR's unit from a core of the faulting space.
  void fill_asid(std::size_t number, std::uint64_t core, std::uint64_t asid) {
    CoreState& cs = core_state(core);
    if (!cs.has_bound_asid) {
      cs.bound_asid = asid;
      cs.has_bound_asid = true;
      return;
    }
    if (cs.bound_asid != asid)
      issue(number, "cross-asid-fill",
            "core " + std::to_string(core) + " fills a translation for asid " +
                std::to_string(asid) + " but belongs to asid " +
                std::to_string(cs.bound_asid));
  }

  /// Per-(asid, core) monotonicity over the kinds stamped with the emitting
  /// core's own clock at emission time: faults, barrier waits and scanner
  /// passes. A reordered stream here would mean the engine (or a batching
  /// exporter) merged events out of virtual-time order — the bug class the
  /// parallel engine's coordinator-only emission rule exists to prevent.
  /// Evictions/picks/shootdowns are stamped mid-access and legitimately
  /// interleave out of timestamp order with the enclosing fault event, so
  /// they are excluded.
  void fault_ts(std::size_t number, std::uint64_t core, std::uint64_t asid,
                Cycles ts) {
    const std::uint64_t key = unit_key(asid, core);
    const auto it = ts_watermark_.find(key);
    if (it != ts_watermark_.end() && ts < it->second) {
      issue(number, "core-time-regression",
            "core " + std::to_string(core) + " (asid " + std::to_string(asid) +
                ") timestamp " + std::to_string(ts) +
                " precedes earlier event at " + std::to_string(it->second));
      it->second = ts;
      return;
    }
    ts_watermark_[key] = ts;
  }

  void summary(std::size_t number, std::string_view text) {
    saw_summary_ = true;
    const auto total = find_uint(text, "events");
    if (!total) {
      issue(number, "parse-error", "summary without \"events\" count");
    } else if (*total != result_.events) {
      issue(number, "summary-count-mismatch",
            "summary claims " + std::to_string(*total) + " events but " +
                std::to_string(result_.events) + " event lines precede it");
    }
    // by_kind cross-check: every kind we counted must appear with the same
    // count (kinds with zero occurrences are omitted by the exporter).
    // Sorted so mismatch issues come out in a stable order regardless of
    // hash-table layout (docs/invariants.md: iteration order is result).
    std::vector<std::string_view> kinds;
    kinds.reserve(by_kind_.size());
    // cmcp-lint: allow(unordered-iteration) — collect-then-sort: the walk
    // only gathers keys, and the sort below erases the hash order.
    for (const auto& [kind, count] : by_kind_) kinds.push_back(kind);
    std::sort(kinds.begin(), kinds.end());
    for (const std::string_view kind : kinds) {
      const std::uint64_t count = by_kind_.find(std::string(kind))->second;
      const auto claimed = find_uint(text, kind);
      if (!claimed || *claimed != count)
        issue(number, "summary-count-mismatch",
              "summary by_kind." + std::string(kind) + " = " +
                  (claimed ? std::to_string(*claimed) : std::string("absent")) +
                  " but the stream has " + std::to_string(count));
    }
  }

  /// Key for the per-(core, fault-kind) pending-failure ledger.
  static std::uint64_t fault_key(std::uint64_t core, std::uint64_t fault) {
    return (core << 3) | fault;
  }

  LintResult& result_;
  std::unordered_map<std::uint64_t, UnitState> units_;  ///< by (asid, unit)
  std::unordered_map<std::uint64_t, CoreState> cores_;
  /// Injected failures not yet consumed by a retry/give-up, per
  /// (core, fault kind).
  std::unordered_map<std::uint64_t, std::uint64_t> pending_faults_;
  std::unordered_set<std::uint64_t> quarantined_pfns_;
  std::uint64_t max_retries_ = 6;  ///< meta "fault_max_retries"; default 6
  std::unordered_map<std::string, std::uint64_t> by_kind_;
  std::uint64_t spaces_ = 1;  ///< meta "spaces" field; 1 = single-tenant
  std::unordered_map<std::uint64_t, Cycles> scan_end_;  ///< by asid
  /// fault/barrier/scan timestamp watermark, by (asid, core).
  std::unordered_map<std::uint64_t, Cycles> ts_watermark_;
  Cycles slot_end_ = 0;
  bool saw_meta_ = false;
  bool complained_meta_ = false;
  bool saw_summary_ = false;
};

}  // namespace

LintResult lint_jsonl_trace(std::istream& in) {
  LintResult result;
  Linter linter(result);
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) linter.line(++number, line);
  linter.finish(number);
  return result;
}

LintResult lint_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    LintResult result;
    result.issues.push_back({0, "io-error", "cannot open " + path});
    return result;
  }
  return lint_jsonl_trace(in);
}

}  // namespace cmcp::check
