// Offline protocol linter for JSONL event traces (sim::trace::export_jsonl).
//
// Where SimCheck (sim/checker.h) inspects live state, the linter replays a
// recorded run through a protocol state machine and verifies the event
// stream itself is a legal history of the paper's eviction protocol:
//
//   missing-meta / missing-summary / trailing-line / parse-error
//                              well-formed stream framing
//   major-fault-without-transfer  every major fault consumed a host->device
//                              transfer of its unit (fault/resolve pairing)
//   refetch-while-resident     no second fetch of a resident unit
//   use-after-evict            no minor fault on an evicted unit
//   double-evict / evict-nonresident
//                              no frame freed twice, nothing evicted that
//                              was never resident
//   eviction-without-pick      every eviction paired with a victim_pick of
//                              the same unit on the same core
//   eviction-without-shootdown an eviction whose unit was mapped by >= 2
//                              cores was preceded by a shootdown of exactly
//                              that unit (the invariant the paper's no-
//                              usage-tracking-invalidations claim rests on)
//   writeback-mismatch         dirty evictions carry a device->host
//                              transfer and bytes; clean ones carry neither
//   scan-overlap               scanner passes never overlap in time
//                              (per address space — each has its own
//                              scanner; different spaces may overlap)
//   slot-overlap               invalidation-slot holds are serialized
//   core-time-regression       per-core fault/barrier timestamps are
//                              monotone
//   summary-count-mismatch     the footer's counts match the stream
//
// Fault-injected traces (docs/robustness.md) add three recovery-protocol
// rules over the fault_inject / fault_retry / fault_give_up / quarantine
// events:
//
//   retry-without-failure      every retry (and give-up) consumes a
//                              previously injected failure of the same
//                              (core, fault kind) — recovery never runs
//                              for a fault that did not happen
//   give-up-without-max-retries a give-up only after the full retry budget
//                              (meta "fault_max_retries", default 6) was
//                              spent — recovery never abandons early
//   fill-from-quarantined-frame a quarantined frame is retired for the run:
//                              it is never quarantined again and ECC poison
//                              never surfaces on it a second time
//
// Multi-tenant traces (meta "spaces" > 1) carry an asid on every event and
// all unit state above is keyed by (asid, unit); three rules are specific
// to them:
//
//   asid-out-of-range          event asid must be < the declared space count
//   eviction-missing-asid      evictions must carry the victim's asid (a QoS
//                              eviction runs on another space's core, so the
//                              core id cannot attribute the freed frame)
//   cross-asid-fill            a core only ever faults for its own space
//                              (binding learned from its first fault)
//
// The linter is deliberately independent of the simulator's in-memory
// structures — it parses the JSON lines directly, so it also guards the
// exporter's format against regressions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cmcp::check {

struct LintIssue {
  std::size_t line = 0;  ///< 1-based line number in the trace file
  std::string rule;      ///< rule id, e.g. "eviction-without-shootdown"
  std::string message;   ///< human-readable specifics
};

struct LintResult {
  std::vector<LintIssue> issues;
  std::uint64_t lines = 0;   ///< total lines read
  std::uint64_t events = 0;  ///< event lines replayed
  bool ok() const { return issues.empty(); }
};

/// Replay a JSONL trace from `in` through the protocol state machine.
LintResult lint_jsonl_trace(std::istream& in);

/// Convenience: open `path` and lint it. An unreadable file reports a
/// single "io-error" issue on line 0.
LintResult lint_trace_file(const std::string& path);

}  // namespace cmcp::check
