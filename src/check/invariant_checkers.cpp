#include "check/invariant_checkers.h"

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/address_space.h"
#include "mm/pspt.h"

namespace cmcp::check {

namespace {

using sim::CheckPoint;
using sim::CheckViolation;

/// PSPT consistency (paper section 2.3): for every resident unit the
/// directory's core-map count, the mapping-core mask, the per-core private
/// PTEs, and the ResidentPage's cached count must all agree — CMCP's whole
/// priority signal is this number. One instance per address space (each
/// space owns its own table and registry).
class PsptConsistencyChecker final : public sim::Checker {
 public:
  PsptConsistencyChecker(const core::AddressSpace& space, std::string name)
      : space_(space), name_(std::move(name)) {}

  std::string_view name() const override { return name_; }

  void check(CheckPoint /*point*/, std::vector<CheckViolation>& out) override {
    const mm::PageTable& pt = space_.page_table();
    std::uint64_t mapped_resident = 0;
    std::uint64_t count_sum = 0;
    space_.registry().for_each([&](const mm::ResidentPage& pg) {
      const unsigned count = pt.core_map_count(pg.unit);
      const CoreMask mask = pt.mapping_cores(pg.unit);
      count_sum += count;
      if (count > 0) ++mapped_resident;
      if (mask.count() != count)
        out.push_back({std::string(name()), "core-map-count",
                       "directory count " + std::to_string(count) +
                           " != mapping-mask population " +
                           std::to_string(mask.count()),
                       pg.unit, kInvalidCore});
      if (pg.core_map_count != count)
        out.push_back({std::string(name()), "cached-count",
                       "ResidentPage::core_map_count " +
                           std::to_string(pg.core_map_count) +
                           " != page-table count " + std::to_string(count),
                       pg.unit, kInvalidCore});
      if (pt.any_mapping(pg.unit) != (count > 0))
        out.push_back({std::string(name()), "any-mapping",
                       "any_mapping() disagrees with core_map_count()",
                       pg.unit, kInvalidCore});
      mask.for_each([&](CoreId core) {
        if (!pt.has_mapping(core, pg.unit))
          out.push_back({std::string(name()), "mask-without-pte",
                         "mapping mask names a core with no private PTE",
                         pg.unit, core});
      });
      if (count > 0 && pt.pfn_of(pg.unit) != pg.pfn)
        out.push_back({std::string(name()), "pfn-mismatch",
                       "page-table pfn " + std::to_string(pt.pfn_of(pg.unit)) +
                           " != registry pfn " + std::to_string(pg.pfn),
                       pg.unit, kInvalidCore});
    });
    // Dangling-translation sweep: every mapped unit must be resident, so
    // the table may not hold more units than the registry accounts for.
    if (pt.mapped_units() != mapped_resident)
      out.push_back({std::string(name()), "dangling-translation",
                     "page table maps " + std::to_string(pt.mapped_units()) +
                         " units but only " + std::to_string(mapped_resident) +
                         " resident units are mapped",
                     kInvalidUnit, kInvalidCore});
    // PSPT cross-foot: the directory's counts must sum to the per-core
    // table populations (catches count drift that preserves the mask).
    if (const auto* pspt = dynamic_cast<const mm::Pspt*>(&pt)) {
      std::uint64_t per_core_sum = 0;
      for (CoreId c = 0; c < space_.num_cores(); ++c)
        per_core_sum += pspt->mapped_units_of_core(c);
      if (per_core_sum != count_sum)
        out.push_back({std::string(name()), "count-crossfoot",
                       "sum of directory counts " + std::to_string(count_sum) +
                           " != sum of per-core PTE populations " +
                           std::to_string(per_core_sum),
                       kInvalidUnit, kInvalidCore});
    }
  }

 private:
  const core::AddressSpace& space_;
  const std::string name_;
};

/// TLB/PTE coherence: a valid TLB entry without a live PTE would let a core
/// use a translation the protocol believes it tore down — the exact failure
/// shootdown targeting exists to prevent. The engine applies invalidations
/// synchronously, so at every checkpoint no invalidation is in flight and
/// the invariant is strict: cached => mapped. Each core's cached units are
/// checked against its OWN address space's table (unit indices are
/// space-local; the core -> space map disambiguates them).
class TlbConsistencyChecker final : public sim::Checker {
 public:
  TlbConsistencyChecker(const core::MemoryManager& mm,
                        const sim::Machine& machine)
      : mm_(mm), machine_(machine) {}

  std::string_view name() const override { return "tlb-consistency"; }

  void check(CheckPoint /*point*/, std::vector<CheckViolation>& out) override {
    for (CoreId core = 0; core < machine_.num_cores(); ++core) {
      const mm::PageTable& pt =
          mm_.space(machine_.space_of_core(core)).page_table();
      machine_.tlb(core).for_each_entry([&](UnitIdx unit) {
        if (!pt.has_mapping(core, unit))
          out.push_back({std::string(name()), "stale-tlb-entry",
                         "TLB caches a translation with no live PTE "
                         "(missed shootdown?)",
                         unit, core});
      });
    }
  }

 private:
  const core::MemoryManager& mm_;
  const sim::Machine& machine_;
};

/// Frame accounting: the allocator's in-use count must equal the number of
/// resident pages across every address space (each holds exactly one
/// frame), and no two resident pages — of any space — may share a frame. A
/// double-free or double-allocate here corrupts every downstream figure.
class FrameRefcountChecker final : public sim::Checker {
 public:
  explicit FrameRefcountChecker(const core::MemoryManager& mm) : mm_(mm) {}

  std::string_view name() const override { return "frame-refcount"; }

  void check(CheckPoint /*point*/, std::vector<CheckViolation>& out) override {
    const mm::FrameAllocator& alloc = mm_.allocator();
    std::uint64_t resident_total = 0;
    for (Asid s = 0; s < mm_.num_spaces(); ++s)
      resident_total += mm_.space(s).registry().size();
    if (alloc.in_use() != resident_total)
      out.push_back({std::string(name()), "in-use-vs-resident",
                     "allocator has " + std::to_string(alloc.in_use()) +
                         " frames in use but " +
                         std::to_string(resident_total) +
                         " pages are resident",
                     kInvalidUnit, kInvalidCore});
    seen_.clear();
    for (Asid s = 0; s < mm_.num_spaces(); ++s) {
      mm_.space(s).registry().for_each([&](const mm::ResidentPage& pg) {
        if (pg.pfn == kInvalidPfn) {
          out.push_back({std::string(name()), "invalid-pfn",
                         "resident page holds kInvalidPfn", pg.unit,
                         kInvalidCore});
          return;
        }
        if (!seen_.insert(pg.pfn).second)
          out.push_back({std::string(name()), "frame-aliased",
                         "frame " + std::to_string(pg.pfn) +
                             " is held by more than one resident page",
                         pg.unit, kInvalidCore});
      });
    }
  }

 private:
  const core::MemoryManager& mm_;
  std::unordered_set<Pfn> seen_;  ///< scratch, reused across sweeps
};

/// Frame ownership (multi-tenant QoS accounting): every frame a space's
/// resident page holds must be recorded by the allocator as owned by that
/// space's asid, each space's resident-set size must equal the allocator's
/// per-tenant in-use count, and the per-tenant counts must cross-foot to
/// the total. The partition policy's floors and targets are computed from
/// these counters — drift here silently breaks the QoS guarantees.
class FrameOwnershipChecker final : public sim::Checker {
 public:
  explicit FrameOwnershipChecker(const core::MemoryManager& mm) : mm_(mm) {}

  std::string_view name() const override { return "frame-ownership"; }

  void check(CheckPoint /*point*/, std::vector<CheckViolation>& out) override {
    const mm::FrameAllocator& alloc = mm_.allocator();
    std::uint64_t owned_total = 0;
    for (Asid s = 0; s < mm_.num_spaces(); ++s) {
      const core::AddressSpace& space = mm_.space(s);
      space.registry().for_each([&](const mm::ResidentPage& pg) {
        if (pg.pfn == kInvalidPfn) return;  // frame-refcount reports this
        const Asid owner = alloc.owner_of(pg.pfn);
        if (owner != s)
          out.push_back({std::string(name()), "wrong-owner",
                         "frame " + std::to_string(pg.pfn) +
                             " is resident in space " + std::to_string(s) +
                             " but the allocator records owner " +
                             (owner == kInvalidAsid ? std::string("<free>")
                                                    : std::to_string(owner)),
                         pg.unit, kInvalidCore});
      });
      const std::uint64_t held = alloc.in_use_by(s);
      if (held != space.registry().size())
        out.push_back({std::string(name()), "per-space-count",
                       "allocator says space " + std::to_string(s) +
                           " holds " + std::to_string(held) +
                           " frames but its registry has " +
                           std::to_string(space.registry().size()) +
                           " resident pages",
                       kInvalidUnit, kInvalidCore});
      owned_total += held;
    }
    if (owned_total != alloc.in_use())
      out.push_back({std::string(name()), "ownership-crossfoot",
                     "per-tenant in-use counts sum to " +
                         std::to_string(owned_total) + " but " +
                         std::to_string(alloc.in_use()) +
                         " frames are in use",
                     kInvalidUnit, kInvalidCore});
  }

 private:
  const core::MemoryManager& mm_;
};

/// Quarantine integrity (fault injection, docs/robustness.md): a
/// quarantined frame is retired for the run — the allocator must record no
/// owner for it, no address space may still hold it in a resident set, the
/// quarantine bitmap must cross-foot to the cached count, and the frame
/// partition must have been recomputed against the shrunk usable capacity
/// (the MemoryManager::on_frames_quarantined hook fired). A frame that
/// leaks back into service re-exposes the ECC poison the quarantine exists
/// to contain.
class FrameQuarantineChecker final : public sim::Checker {
 public:
  explicit FrameQuarantineChecker(const core::MemoryManager& mm) : mm_(mm) {}

  std::string_view name() const override { return "frame-quarantine"; }

  void check(CheckPoint /*point*/, std::vector<CheckViolation>& out) override {
    const mm::FrameAllocator& alloc = mm_.allocator();
    std::uint64_t scanned = 0;
    for (std::uint64_t slot = 0; slot < alloc.capacity(); ++slot) {
      const Pfn pfn = slot * alloc.frames_per_unit();
      if (!alloc.is_quarantined(pfn)) continue;
      ++scanned;
      const Asid owner = alloc.owner_of(pfn);
      if (owner != kInvalidAsid)
        out.push_back({std::string(name()), "quarantined-with-owner",
                       "quarantined frame " + std::to_string(pfn) +
                           " is still charged to asid " +
                           std::to_string(owner),
                       kInvalidUnit, kInvalidCore});
    }
    if (scanned != alloc.quarantined_count())
      out.push_back({std::string(name()), "quarantine-crossfoot",
                     "quarantine bitmap marks " + std::to_string(scanned) +
                         " frames but the counter says " +
                         std::to_string(alloc.quarantined_count()),
                     kInvalidUnit, kInvalidCore});
    for (Asid s = 0; s < mm_.num_spaces(); ++s) {
      mm_.space(s).registry().for_each([&](const mm::ResidentPage& pg) {
        if (pg.pfn == kInvalidPfn) return;  // frame-refcount reports this
        if (alloc.is_quarantined(pg.pfn))
          out.push_back({std::string(name()), "resident-on-quarantined",
                         "space " + std::to_string(s) +
                             " holds quarantined frame " +
                             std::to_string(pg.pfn) + " resident",
                         pg.unit, kInvalidCore});
      });
    }
    if (mm_.partition().capacity() != alloc.usable_capacity())
      out.push_back({std::string(name()), "stale-partition-capacity",
                     "partition targets computed for " +
                         std::to_string(mm_.partition().capacity()) +
                         " frames but usable capacity is " +
                         std::to_string(alloc.usable_capacity()),
                     kInvalidUnit, kInvalidCore});
  }

 private:
  const core::MemoryManager& mm_;
};

/// Policy accounting: every built-in policy reports how many pages its
/// internal lists track; that number must equal the resident-set size of
/// the policy's own address space (pinned preload runs bypass policy
/// bookkeeping and are exempt).
class PolicyAccountingChecker final : public sim::Checker {
 public:
  PolicyAccountingChecker(const core::AddressSpace& space, std::string name)
      : space_(space), name_(std::move(name)) {}

  std::string_view name() const override { return name_; }

  void check(CheckPoint /*point*/, std::vector<CheckViolation>& out) override {
    if (space_.pinned()) return;
    const std::int64_t tracked = space_.policy().tracked_pages();
    if (tracked < 0) return;  // custom policy without introspection
    const auto resident = static_cast<std::int64_t>(space_.registry().size());
    if (tracked != resident)
      out.push_back({std::string(name()), "list-size-vs-resident",
                     std::string(space_.policy().name()) + " tracks " +
                         std::to_string(tracked) + " pages but " +
                         std::to_string(resident) + " are resident",
                     kInvalidUnit, kInvalidCore});
  }

 private:
  const core::AddressSpace& space_;
  const std::string name_;
};

/// Virtual-time sanity: a core clock running backwards would silently
/// reorder every queueing decision after it (PCIe, invalidation slot, page
/// table locks) — the determinism guarantee would still "pass" while
/// modelling a different machine. Covers every scanner pseudo-core (one per
/// address space).
class ClockMonotonicityChecker final : public sim::Checker {
 public:
  explicit ClockMonotonicityChecker(const sim::Machine& machine)
      : machine_(machine),
        last_(static_cast<std::size_t>(machine.total_cores()), 0) {}

  std::string_view name() const override { return "clock-monotonic"; }

  void check(CheckPoint /*point*/, std::vector<CheckViolation>& out) override {
    for (CoreId core = 0; core < machine_.total_cores(); ++core) {
      const Cycles now = machine_.clock(core);
      if (now < last_[core])
        out.push_back({std::string(name()), "clock-regression",
                       "clock moved from " + std::to_string(last_[core]) +
                           " back to " + std::to_string(now),
                       kInvalidUnit, core});
      last_[core] = now;
    }
  }

 private:
  const sim::Machine& machine_;
  std::vector<Cycles> last_;  ///< indexed by core, scanner pseudo-cores last
};

/// "pspt-consistency" when the manager has one space (the pre-refactor
/// name, kept stable for tooling); "pspt-consistency/asid2" per space
/// otherwise.
std::string scoped_name(const char* base, const core::MemoryManager& mm,
                        Asid asid) {
  if (mm.num_spaces() <= 1) return base;
  return std::string(base) + "/asid" + std::to_string(asid);
}

}  // namespace

std::unique_ptr<sim::Checker> make_pspt_consistency_checker(
    const core::MemoryManager& mm) {
  return std::make_unique<PsptConsistencyChecker>(
      mm.space(0), scoped_name("pspt-consistency", mm, 0));
}

std::unique_ptr<sim::Checker> make_tlb_consistency_checker(
    const core::MemoryManager& mm, const sim::Machine& machine) {
  return std::make_unique<TlbConsistencyChecker>(mm, machine);
}

std::unique_ptr<sim::Checker> make_frame_refcount_checker(
    const core::MemoryManager& mm) {
  return std::make_unique<FrameRefcountChecker>(mm);
}

std::unique_ptr<sim::Checker> make_frame_ownership_checker(
    const core::MemoryManager& mm) {
  return std::make_unique<FrameOwnershipChecker>(mm);
}

std::unique_ptr<sim::Checker> make_frame_quarantine_checker(
    const core::MemoryManager& mm) {
  return std::make_unique<FrameQuarantineChecker>(mm);
}

std::unique_ptr<sim::Checker> make_policy_accounting_checker(
    const core::MemoryManager& mm) {
  return std::make_unique<PolicyAccountingChecker>(
      mm.space(0), scoped_name("policy-accounting", mm, 0));
}

std::unique_ptr<sim::Checker> make_clock_monotonicity_checker(
    const sim::Machine& machine) {
  return std::make_unique<ClockMonotonicityChecker>(machine);
}

void register_default_checkers(sim::CheckRegistry& registry,
                               const core::MemoryManager& mm,
                               const sim::Machine& machine) {
  for (Asid s = 0; s < mm.num_spaces(); ++s)
    registry.add(std::make_unique<PsptConsistencyChecker>(
        mm.space(s), scoped_name("pspt-consistency", mm, s)));
  registry.add(make_tlb_consistency_checker(mm, machine));
  registry.add(make_frame_refcount_checker(mm));
  registry.add(make_frame_ownership_checker(mm));
  registry.add(make_frame_quarantine_checker(mm));
  for (Asid s = 0; s < mm.num_spaces(); ++s)
    registry.add(std::make_unique<PolicyAccountingChecker>(
        mm.space(s), scoped_name("policy-accounting", mm, s)));
  registry.add(make_clock_monotonicity_checker(machine));
}

}  // namespace cmcp::check
