// SimCheck's concrete invariant checkers over the live memory-management
// protocol state. Each checker encodes one claim the paper's results depend
// on; docs/invariants.md catalogues them with their paper justification.
//
//   pspt-consistency   core-map count == mapping mask == per-core PTEs
//   tlb-consistency    no cached translation without a live PTE
//   frame-refcount     frames in use == resident pages, one frame per page
//   frame-ownership    every frame owned by exactly the space holding it;
//                      per-tenant in-use counts match registries and cross-foot
//   frame-quarantine   quarantined (ECC-poisoned) frames carry no owner, sit
//                      in no resident set, cross-foot to the cached count,
//                      and the partition saw the shrunk usable capacity
//   policy-accounting  policy list sizes == resident-set size
//   clock-monotonic    per-core virtual clocks never run backwards
//
// Per-space checkers (pspt-consistency, policy-accounting) are registered
// once per address space; with more than one space their names gain an
// "/asid<N>" suffix so violations localize to a tenant.
//
// All factories take the objects by reference; the checkers are read-only
// observers and must not outlive the MemoryManager / Machine they watch.
#pragma once

#include <memory>

#include "core/memory_manager.h"
#include "sim/checker.h"
#include "sim/machine.h"

namespace cmcp::check {

std::unique_ptr<sim::Checker> make_pspt_consistency_checker(
    const core::MemoryManager& mm);

std::unique_ptr<sim::Checker> make_tlb_consistency_checker(
    const core::MemoryManager& mm, const sim::Machine& machine);

std::unique_ptr<sim::Checker> make_frame_refcount_checker(
    const core::MemoryManager& mm);

std::unique_ptr<sim::Checker> make_frame_ownership_checker(
    const core::MemoryManager& mm);

std::unique_ptr<sim::Checker> make_frame_quarantine_checker(
    const core::MemoryManager& mm);

std::unique_ptr<sim::Checker> make_policy_accounting_checker(
    const core::MemoryManager& mm);

std::unique_ptr<sim::Checker> make_clock_monotonicity_checker(
    const sim::Machine& machine);

/// Register the full default suite (everything above) on `registry`.
void register_default_checkers(sim::CheckRegistry& registry,
                               const core::MemoryManager& mm,
                               const sim::Machine& machine);

}  // namespace cmcp::check
