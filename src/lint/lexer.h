// Token-level C++ lexer for cmcp_lint (src/lint/lint.h).
//
// Produces a comment- and whitespace-free token stream with line numbers,
// which is exactly the abstraction level the domain rules need: banned
// identifiers, banned token sequences (`std :: mutex`), template-argument
// key types, and macro argument lists. It handles the lexical constructs
// that break naive grep — line continuations, raw strings, digit
// separators, multi-character operators — without needing a full frontend,
// so the linter builds everywhere the simulator builds (no libclang
// dependency; the container toolchain is GCC-only).
//
// Suppression comments are collected during lexing:
//   // cmcp-lint: allow(rule-id)            one rule
//   // cmcp-lint: allow(rule-a, rule-b)     several rules
// An allowance applies to the comment's own line and to the following line
// (so it can sit above the offending statement). Every suppression must
// carry a justification in prose next to it — reviewed by humans, not by
// the tool.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cmcp::lint {

enum class TokKind : unsigned char {
  kIdent = 0,   ///< identifier or keyword
  kNumber,      ///< integer or floating literal (with suffixes)
  kString,      ///< string literal (incl. raw strings); text excludes quotes
  kChar,        ///< character literal
  kPunct,       ///< operator/punctuator, maximal munch ("::", "<=", "->", ...)
};

struct Token {
  TokKind kind;
  std::string text;
  unsigned line;  ///< 1-based source line
};

/// One `cmcp-lint: allow(...)` occurrence.
struct Allowance {
  unsigned line;     ///< line the comment starts on
  std::string rule;  ///< rule id, or "*" for all rules
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Allowance> allows;
};

/// Lex `source`. Never fails: unterminated constructs are closed at EOF
/// (the linter is a reporting tool, not a compiler).
LexResult lex(std::string_view source);

/// True if a kNumber token text is a floating-point literal
/// (decimal point, binary/decimal exponent, or f/F suffix).
bool is_float_literal(std::string_view number_text);

}  // namespace cmcp::lint
