#include "lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "lint/lexer.h"

namespace cmcp::lint {
namespace {

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// Hot-path directories where storage layout is part of the performance
/// contract (docs/performance.md).
bool in_hot_dirs(std::string_view path) {
  return starts_with(path, "src/mm/") || starts_with(path, "src/sim/") ||
         starts_with(path, "src/core/") || starts_with(path, "src/policy/");
}

bool in_src(std::string_view path) { return starts_with(path, "src/"); }

bool in_src_tools_bench(std::string_view path) {
  return starts_with(path, "src/") || starts_with(path, "tools/") ||
         starts_with(path, "bench/");
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

using Tokens = std::vector<Token>;

bool is_ident(const Tokens& ts, std::size_t i, std::string_view name) {
  return i < ts.size() && ts[i].kind == TokKind::kIdent && ts[i].text == name;
}

bool is_punct(const Tokens& ts, std::size_t i, std::string_view text) {
  return i < ts.size() && ts[i].kind == TokKind::kPunct && ts[i].text == text;
}

template <std::size_t N>
bool ident_in(const Tokens& ts, std::size_t i,
              const std::array<std::string_view, N>& set) {
  if (i >= ts.size() || ts[i].kind != TokKind::kIdent) return false;
  return std::find(set.begin(), set.end(), ts[i].text) != set.end();
}

/// `ts[i]` must be "<". Returns the token range [i+1, end) of the FIRST
/// top-level template argument (up to `,` or the matching close), and sets
/// `after_close` to the index just past the matching ">" (or npos if
/// unbalanced). Token-level angle matching is sound here because callers
/// only invoke it right after a known container name.
std::pair<std::size_t, std::size_t> first_template_arg(
    const Tokens& ts, std::size_t i, std::size_t* after_close = nullptr) {
  if (after_close != nullptr) *after_close = std::string::npos;
  int depth = 1;
  int paren = 0;
  std::size_t first_end = std::string::npos;
  std::size_t j = i + 1;
  for (; j < ts.size() && depth > 0; ++j) {
    const Token& t = ts[j];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[") ++paren;
    else if (t.text == ")" || t.text == "]") --paren;
    else if (paren == 0 && t.text == "<") ++depth;
    else if (paren == 0 && t.text == ">") --depth;
    else if (paren == 0 && t.text == ">>") depth -= 2;
    else if (paren == 0 && t.text == "," && depth == 1 &&
             first_end == std::string::npos) {
      first_end = j;
    }
    if (depth <= 0) {
      if (first_end == std::string::npos) first_end = j;
      if (after_close != nullptr) *after_close = j + 1;
      return {i + 1, first_end};
    }
  }
  return {i + 1, first_end == std::string::npos ? j : first_end};
}

/// Strip leading cv-qualifiers and `ns::` qualifications from a template
/// argument range; returns the start of the unqualified part.
std::size_t strip_qualifiers(const Tokens& ts, std::size_t begin,
                             std::size_t end) {
  std::size_t b = begin;
  while (b < end && (is_ident(ts, b, "const") || is_ident(ts, b, "typename")))
    ++b;
  while (b + 1 < end && ts[b].kind == TokKind::kIdent && is_punct(ts, b + 1, "::"))
    b += 2;
  return b;
}

/// Call-expression context for a free function: `ts[i]` is the callee
/// identifier and `ts[i+1]` is "(". Returns false for member calls
/// (`x.time(`), qualified non-std calls (`Foo::time(`), and declarations
/// (`Cycles clock(`), true for plain or `std::`-qualified calls.
bool is_free_call(const Tokens& ts, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = ts[i - 1];
  if (prev.kind == TokKind::kIdent) {
    // Keywords that legally precede a call expression still mean a call;
    // any other identifier means `ReturnType name(` — a declaration.
    constexpr std::array<std::string_view, 6> kCallContextKeywords = {
        "return", "else", "do", "throw", "co_return", "co_yield"};
    return std::find(kCallContextKeywords.begin(), kCallContextKeywords.end(),
                     prev.text) != kCallContextKeywords.end();
  }
  if (prev.kind == TokKind::kPunct) {
    if (prev.text == "." || prev.text == "->") return false;  // member call
    if (prev.text == "::")
      return i >= 2 && is_ident(ts, i - 2, "std");  // std::time(..) only
    if (prev.text == "~" || prev.text == "&") return false;  // dtor/addr-of
  }
  return true;
}

struct Ctx {
  std::string_view path;
  const Tokens& ts;
  std::vector<Finding>& out;

  void report(unsigned line, std::string_view rule, std::string message) const {
    out.push_back(
        Finding{std::string(path), line, std::string(rule), std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

constexpr std::array<std::string_view, 4> kHashContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};
constexpr std::array<std::string_view, 4> kOrderedContainers = {
    "map", "set", "multimap", "multiset"};
constexpr std::array<std::string_view, 4> kIndexTypes = {"UnitIdx", "Pfn",
                                                         "Vpn", "CoreId"};

/// hash-keyed-index: unordered container keyed by a dense simulation index
/// in a hot-path directory. The repo's storage discipline (docs/
/// performance.md, PR "dense direct-indexed storage") is a direct-indexed
/// vector; a hash map both costs more per access and leaks hash iteration
/// order into anything that walks it.
void rule_hash_keyed_index(const Ctx& c) {
  if (!in_hot_dirs(c.path)) return;
  for (std::size_t i = 0; i + 1 < c.ts.size(); ++i) {
    if (!ident_in(c.ts, i, kHashContainers) || !is_punct(c.ts, i + 1, "<"))
      continue;
    auto [begin, end] = first_template_arg(c.ts, i + 1);
    std::size_t b = strip_qualifiers(c.ts, begin, end);
    if (b + 1 == end && ident_in(c.ts, b, kIndexTypes)) {
      c.report(c.ts[i].line, "hash-keyed-index",
               "std::" + c.ts[i].text + " keyed by " + c.ts[b].text +
                   ": use dense direct-indexed storage on hot paths "
                   "(docs/performance.md)");
    }
  }
}

/// ordered-pointer-key / hashed-pointer-key: container keyed by a pointer.
/// Pointer order (and pointer hash) follows the allocator, which is not
/// deterministic across runs — any walk of such a container can leak
/// address-dependent order into results (docs/invariants.md).
void rule_pointer_keys(const Ctx& c) {
  if (!in_src(c.path)) return;
  for (std::size_t i = 0; i + 1 < c.ts.size(); ++i) {
    const bool hashed = ident_in(c.ts, i, kHashContainers);
    const bool ordered = ident_in(c.ts, i, kOrderedContainers) && i >= 2 &&
                         is_punct(c.ts, i - 1, "::") &&
                         is_ident(c.ts, i - 2, "std");
    if ((!hashed && !ordered) || !is_punct(c.ts, i + 1, "<")) continue;
    auto [begin, end] = first_template_arg(c.ts, i + 1);
    if (end > begin && end <= c.ts.size() && is_punct(c.ts, end - 1, "*")) {
      c.report(c.ts[i].line, hashed ? "hashed-pointer-key" : "ordered-pointer-key",
               "std::" + c.ts[i].text +
                   " keyed by a pointer: address order is nondeterministic "
                   "across runs; key by a stable id instead");
    }
  }
}

/// pointer-address-cast: converting a pointer to an integer. An address is
/// run-dependent; once it is an integer it can silently flow into traces,
/// hashes or tie-breaks.
void rule_pointer_address_cast(const Ctx& c) {
  if (!in_src(c.path)) return;
  constexpr std::array<std::string_view, 2> kIntPtr = {"uintptr_t",
                                                       "intptr_t"};
  for (std::size_t i = 0; i + 1 < c.ts.size(); ++i) {
    if (is_ident(c.ts, i, "reinterpret_cast") && is_punct(c.ts, i + 1, "<")) {
      auto [begin, end] = first_template_arg(c.ts, i + 1);
      for (std::size_t j = begin; j < end && j < c.ts.size(); ++j) {
        if (ident_in(c.ts, j, kIntPtr)) {
          c.report(c.ts[i].line, "pointer-address-cast",
                   "pointer cast to " + c.ts[j].text +
                       ": addresses are run-dependent and must not reach "
                       "simulation state or output");
          break;
        }
      }
    }
    // C-style: (uintptr_t)p or (std::uintptr_t)p
    if (is_punct(c.ts, i, "(")) {
      std::size_t j = i + 1;
      if (is_ident(c.ts, j, "std") && is_punct(c.ts, j + 1, "::")) j += 2;
      if (ident_in(c.ts, j, kIntPtr) && is_punct(c.ts, j + 1, ")")) {
        c.report(c.ts[i].line, "pointer-address-cast",
                 "C-style pointer-to-" + c.ts[j].text +
                     " cast: addresses are run-dependent");
      }
    }
  }
}

/// wallclock-time: reading the host clock anywhere but the wallclock
/// benchmark. Simulated time comes exclusively from core clocks (`Cycles`);
/// wall-clock reads make runs irreproducible.
void rule_wallclock_time(const Ctx& c) {
  if (!in_src_tools_bench(c.path)) return;
  if (c.path == "bench/wallclock.cpp") return;  // the sanctioned consumer
  constexpr std::array<std::string_view, 4> kClockTypes = {
      "steady_clock", "system_clock", "high_resolution_clock", "chrono"};
  constexpr std::array<std::string_view, 8> kClockCalls = {
      "time",      "clock",     "clock_gettime", "gettimeofday",
      "localtime", "gmtime",    "mktime",        "difftime"};
  for (std::size_t i = 0; i < c.ts.size(); ++i) {
    if (ident_in(c.ts, i, kClockTypes)) {
      c.report(c.ts[i].line, "wallclock-time",
               "wall-clock source std::" + c.ts[i].text +
                   " outside bench/wallclock.cpp: simulated time must come "
                   "from core clocks only");
      continue;
    }
    if (ident_in(c.ts, i, kClockCalls) && is_punct(c.ts, i + 1, "(") &&
        is_free_call(c.ts, i)) {
      c.report(c.ts[i].line, "wallclock-time",
               "call to " + c.ts[i].text +
                   "() outside bench/wallclock.cpp reads the host clock");
    }
  }
}

/// unseeded-entropy: raw entropy sources outside the seeded common::Rng.
/// Every random stream must derive from the run's logged seed so any run
/// can be replayed bit-for-bit (docs/invariants.md).
void rule_unseeded_entropy(const Ctx& c) {
  if (!in_src_tools_bench(c.path)) return;
  if (c.path == "src/common/rng.cpp" || c.path == "src/common/rng.h")
    return;  // the sanctioned wrapper
  constexpr std::array<std::string_view, 9> kEngines = {
      "random_device", "mt19937",       "mt19937_64",
      "minstd_rand",   "minstd_rand0",  "default_random_engine",
      "ranlux24",      "ranlux48",      "knuth_b"};
  constexpr std::array<std::string_view, 7> kCalls = {
      "rand", "srand", "random", "srandom", "rand_r", "drand48", "lrand48"};
  for (std::size_t i = 0; i < c.ts.size(); ++i) {
    if (ident_in(c.ts, i, kEngines)) {
      c.report(c.ts[i].line, "unseeded-entropy",
               "raw entropy source " + c.ts[i].text +
                   " outside common::Rng: randomness must flow from the "
                   "run's logged seed");
      continue;
    }
    if (ident_in(c.ts, i, kCalls) && is_punct(c.ts, i + 1, "(") &&
        is_free_call(c.ts, i)) {
      c.report(c.ts[i].line, "unseeded-entropy",
               "call to " + c.ts[i].text +
                   "() bypasses the seeded common::Rng");
    }
  }
}

/// float-virtual-time: virtual time is integral `Cycles` by contract —
/// float accumulation drifts with evaluation order and breaks the
/// byte-identical trace invariant. Two shapes: a float variable named like
/// a time quantity, and a float literal initializing a Cycles variable.
void rule_float_virtual_time(const Ctx& c) {
  if (!in_src(c.path)) return;
  auto names_time = [](std::string_view name) {
    std::string lower(name);
    for (char& ch : lower) ch = static_cast<char>(std::tolower(
        static_cast<unsigned char>(ch)));
    return lower.find("cycle") != std::string::npos ||
           (lower.find("tick") != std::string::npos &&
            lower.find("stick") == std::string::npos);  // "sticky" != a tick
  };
  for (std::size_t i = 0; i + 1 < c.ts.size(); ++i) {
    // (a) `double fetch_cycles` — but not `double cycles_to_seconds(...)`,
    // which converts OUT of virtual time and is a function anyway.
    if ((is_ident(c.ts, i, "double") || is_ident(c.ts, i, "float")) &&
        c.ts[i + 1].kind == TokKind::kIdent && names_time(c.ts[i + 1].text) &&
        !is_punct(c.ts, i + 2, "(")) {
      c.report(c.ts[i].line, "float-virtual-time",
               "floating-point variable '" + c.ts[i + 1].text +
                   "' holds virtual time: use integral Cycles "
                   "(docs/invariants.md)");
    }
    // (b) `Cycles x = <init containing a float literal>` without an
    // explicit static_cast acknowledging the rounding.
    if (is_ident(c.ts, i, "Cycles") && c.ts[i + 1].kind == TokKind::kIdent &&
        is_punct(c.ts, i + 2, "=")) {
      bool has_float = false;
      bool has_cast = false;
      for (std::size_t j = i + 3; j < c.ts.size() && !is_punct(c.ts, j, ";");
           ++j) {
        if (c.ts[j].kind == TokKind::kNumber && is_float_literal(c.ts[j].text))
          has_float = true;
        if (is_ident(c.ts, j, "static_cast")) has_cast = true;
      }
      if (has_float && !has_cast) {
        c.report(c.ts[i].line, "float-virtual-time",
                 "float literal assigned into Cycles '" + c.ts[i + 1].text +
                     "': virtual time is integral; make rounding explicit");
      }
    }
  }
}

/// check-side-effect: a mutation inside a check macro argument. CMCP_CHECK
/// is always-on but SimCheck points compile out in Release — any side
/// effect inside either splits behaviour between build modes and violates
/// the "checking is observation-only" invariant.
void rule_check_side_effect(const Ctx& c) {
  if (!in_src_tools_bench(c.path)) return;
  constexpr std::array<std::string_view, 4> kMacros = {
      "CMCP_CHECK", "CMCP_CHECK_MSG", "CMCP_SIMCHECK_POINT", "CMCP_ASSERT"};
  constexpr std::array<std::string_view, 13> kMutators = {
      "++", "--", "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
      "<<=", ">>="};
  for (std::size_t i = 0; i + 1 < c.ts.size(); ++i) {
    if (!ident_in(c.ts, i, kMacros) || !is_punct(c.ts, i + 1, "(")) continue;
    int depth = 1;
    for (std::size_t j = i + 2; j < c.ts.size() && depth > 0; ++j) {
      const Token& t = c.ts[j];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(") ++depth;
      else if (t.text == ")") --depth;
      else if (std::find(kMutators.begin(), kMutators.end(), t.text) !=
               kMutators.end()) {
        // `[=]` / `[x = y]` lambda captures are not argument mutations.
        if (t.text == "=" && j > 0 && (is_punct(c.ts, j - 1, "[") ||
                                       is_punct(c.ts, j - 1, "&")))
          continue;
        c.report(t.line, "check-side-effect",
                 "side effect ('" + t.text + "') inside " + c.ts[i].text +
                     " argument: checks must be observation-only "
                     "(docs/invariants.md)");
        break;
      }
    }
  }
}

/// raw-mutex: std synchronization primitives outside the annotated wrapper.
/// common::Mutex carries the clang thread-safety capability and the
/// documented lock hierarchy; a raw std::mutex is invisible to both.
void rule_raw_mutex(const Ctx& c) {
  if (!in_src_tools_bench(c.path)) return;
  if (c.path == "src/common/mutex.h") return;  // the wrapper itself
  constexpr std::array<std::string_view, 14> kSync = {
      "mutex",         "timed_mutex",   "recursive_mutex",
      "recursive_timed_mutex",          "shared_mutex",
      "shared_timed_mutex",             "lock_guard",
      "unique_lock",   "scoped_lock",   "shared_lock",
      "condition_variable",             "condition_variable_any",
      "call_once",     "once_flag"};
  for (std::size_t i = 2; i < c.ts.size(); ++i) {
    if (ident_in(c.ts, i, kSync) && is_punct(c.ts, i - 1, "::") &&
        is_ident(c.ts, i - 2, "std")) {
      c.report(c.ts[i].line, "raw-mutex",
               "std::" + c.ts[i].text +
                   " outside common/mutex.h: use the annotated common::Mutex "
                   "/ common::LockGuard (thread-safety analysis + lock "
                   "hierarchy)");
    }
  }
}

/// stray-thread: threading primitives outside the two sanctioned
/// parallelism entry points — metrics/parallel_runner (independent runs in
/// parallel) and common/worker_pool (the engine's local-span pool,
/// core/engine.h). Everything else in the simulation core is
/// single-threaded by contract; keeping thread creation in audited files
/// is what makes that contract checkable.
void rule_stray_thread(const Ctx& c) {
  if (!in_src(c.path)) return;
  if (c.path == "src/metrics/parallel_runner.cpp" ||
      c.path == "src/metrics/parallel_runner.h" ||
      c.path == "src/common/worker_pool.cpp" ||
      c.path == "src/common/worker_pool.h")
    return;
  constexpr std::array<std::string_view, 16> kThreading = {
      "thread",       "jthread",       "async",
      "future",       "shared_future", "promise",
      "packaged_task", "atomic",       "atomic_flag",
      "atomic_bool",  "barrier",       "latch",
      "counting_semaphore",            "binary_semaphore",
      "stop_source",  "stop_token"};
  for (std::size_t i = 2; i < c.ts.size(); ++i) {
    if (ident_in(c.ts, i, kThreading) && is_punct(c.ts, i - 1, "::") &&
        is_ident(c.ts, i - 2, "std")) {
      c.report(c.ts[i].line, "stray-thread",
               "std::" + c.ts[i].text +
                   " outside metrics/parallel_runner and common/worker_pool: "
                   "the simulation core is single-threaded by contract");
    }
  }
}

/// volatile-qualifier: volatile is neither atomicity nor ordering; in this
/// codebase it can only hide a missing common::Mutex.
void rule_volatile(const Ctx& c) {
  if (!in_src_tools_bench(c.path)) return;
  for (std::size_t i = 0; i < c.ts.size(); ++i) {
    if (is_ident(c.ts, i, "volatile")) {
      c.report(c.ts[i].line, "volatile-qualifier",
               "volatile is not a synchronization mechanism; use "
               "common::Mutex or redesign");
    }
  }
}

/// unordered-iteration: walking an unordered container declared in the same
/// file. Iteration order is unspecified; anything derived from the walk
/// (output rows, tie-breaks, accumulation into floats) becomes
/// run-dependent. The sanctioned pattern is collect-then-sort — suppress
/// with an allow() comment at such sites.
void rule_unordered_iteration(const Ctx& c) {
  if (!in_src(c.path)) return;
  // Pass 1: names declared with an unordered container type in this file.
  std::vector<std::string_view> names;
  for (std::size_t i = 0; i + 1 < c.ts.size(); ++i) {
    if (!ident_in(c.ts, i, kHashContainers) || !is_punct(c.ts, i + 1, "<"))
      continue;
    std::size_t after = std::string::npos;
    first_template_arg(c.ts, i + 1, &after);
    if (after != std::string::npos && after < c.ts.size() &&
        c.ts[after].kind == TokKind::kIdent) {
      names.push_back(c.ts[after].text);
    }
  }
  if (names.empty()) return;
  auto is_tracked = [&](const Token& t) {
    return t.kind == TokKind::kIdent &&
           std::find(names.begin(), names.end(), t.text) != names.end();
  };
  for (std::size_t i = 0; i + 1 < c.ts.size(); ++i) {
    // `name.begin()` / `name.cbegin()`
    if (is_tracked(c.ts[i]) &&
        (is_punct(c.ts, i + 1, ".") || is_punct(c.ts, i + 1, "->")) &&
        (is_ident(c.ts, i + 2, "begin") || is_ident(c.ts, i + 2, "cbegin")) &&
        is_punct(c.ts, i + 3, "(")) {
      c.report(c.ts[i].line, "unordered-iteration",
               "iterating unordered container '" + c.ts[i].text +
                   "': order is unspecified — collect and sort first "
                   "(docs/invariants.md)");
      continue;
    }
    // `for ( ... : name )`
    if (!is_ident(c.ts, i, "for") || !is_punct(c.ts, i + 1, "(")) continue;
    int depth = 1;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t j = i + 2; j < c.ts.size() && depth > 0; ++j) {
      const Token& t = c.ts[j];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(") ++depth;
      else if (t.text == ")") {
        --depth;
        if (depth == 0) close = j;
      } else if (t.text == ":" && depth == 1 && colon == std::string::npos) {
        colon = j;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    if (close - colon > 4) continue;  // range expr more complex than x/this->x
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (is_tracked(c.ts[j])) {
        c.report(c.ts[i].line, "unordered-iteration",
                 "range-for over unordered container '" + c.ts[j].text +
                     "': order is unspecified — collect and sort first "
                     "(docs/invariants.md)");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// An allowance covers its own line and the next code line after the
/// comment (not merely line+1: the justification prose may continue over
/// several comment lines before the code it excuses).
bool allowed(const std::vector<Allowance>& allows, const Tokens& ts,
             const Finding& f) {
  for (const Allowance& a : allows) {
    if (a.rule != "*" && a.rule != f.rule) continue;
    if (a.line == f.line) return true;
    unsigned next_code_line = 0;
    for (const Token& t : ts) {
      if (t.line > a.line) {
        next_code_line = t.line;
        break;
      }
    }
    if (next_code_line != 0 && f.line == next_code_line) return true;
  }
  return false;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"hash-keyed-index",
       "unordered container keyed by UnitIdx/Pfn/Vpn/CoreId in hot-path dirs"},
      {"ordered-pointer-key", "std::map/set keyed by a pointer"},
      {"hashed-pointer-key", "unordered container keyed by a pointer"},
      {"pointer-address-cast", "pointer cast to uintptr_t/intptr_t"},
      {"wallclock-time", "host clock read outside bench/wallclock.cpp"},
      {"unseeded-entropy", "raw entropy source outside common::Rng"},
      {"float-virtual-time", "floating-point values holding virtual time"},
      {"check-side-effect", "mutation inside CMCP_CHECK/SIMCHECK arguments"},
      {"raw-mutex", "std synchronization primitive outside common/mutex.h"},
      {"stray-thread",
       "threading primitive outside metrics/parallel_runner / "
       "common/worker_pool"},
      {"volatile-qualifier", "volatile used as a synchronization tool"},
      {"unordered-iteration", "iteration over an unordered container"},
  };
  return kCatalog;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content) {
  const LexResult lexed = lex(content);
  std::vector<Finding> raw;
  const Ctx c{path, lexed.tokens, raw};
  rule_hash_keyed_index(c);
  rule_pointer_keys(c);
  rule_pointer_address_cast(c);
  rule_wallclock_time(c);
  rule_unseeded_entropy(c);
  rule_float_virtual_time(c);
  rule_check_side_effect(c);
  rule_raw_mutex(c);
  rule_stray_thread(c);
  rule_volatile(c);
  rule_unordered_iteration(c);

  std::vector<Finding> kept;
  for (Finding& f : raw) {
    if (!allowed(lexed.allows, lexed.tokens, f)) kept.push_back(std::move(f));
  }
  sort_findings(kept);
  return kept;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

}  // namespace cmcp::lint
