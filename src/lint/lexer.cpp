#include "lint/lexer.h"

#include <cctype>

namespace cmcp::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character punctuators, longest first within each leading char so a
/// linear scan implements maximal munch. Single chars fall through.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>",                          // 3 chars
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",  // 2 chars
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    ".*", "##",
};

/// Parse `cmcp-lint: allow(a, b)` out of a comment body; append allowances.
void scan_allow_comment(std::string_view comment, unsigned line,
                        std::vector<Allowance>& out) {
  const std::string_view kTag = "cmcp-lint:";
  std::size_t pos = comment.find(kTag);
  if (pos == std::string_view::npos) return;
  pos += kTag.size();
  while (pos < comment.size() && comment[pos] == ' ') ++pos;
  const std::string_view kAllow = "allow(";
  if (comment.compare(pos, kAllow.size(), kAllow) != 0) return;
  pos += kAllow.size();
  const std::size_t close = comment.find(')', pos);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(pos, close - pos);
  while (!list.empty()) {
    std::size_t comma = list.find(',');
    std::string_view item = list.substr(0, comma);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (!item.empty()) out.push_back(Allowance{line, std::string(item)});
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) step();
    return std::move(result_);
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  /// Advance one char, tracking lines. Callers that consume multi-char
  /// constructs loop over this so `\n` inside them still counts.
  char take() {
    char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void emit(TokKind kind, std::string text, unsigned line) {
    result_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void step() {
    const char c = peek();
    // Line continuation: splice, but the newline still advances line_.
    if (c == '\\' && (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
      take();
      while (peek() != '\n' && peek() != '\0') take();
      if (peek() == '\n') take();
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      take();
      return;
    }
    if (c == '/' && peek(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      block_comment();
      return;
    }
    if (is_ident_start(c)) {
      ident_or_raw_string();
      return;
    }
    if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
      number();
      return;
    }
    if (c == '"') {
      string_literal();
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    punct();
  }

  void line_comment() {
    const unsigned line = line_;
    std::size_t start = pos_;
    while (peek() != '\n' && peek() != '\0') take();
    scan_allow_comment(src_.substr(start, pos_ - start), line, result_.allows);
  }

  void block_comment() {
    const unsigned line = line_;
    std::size_t start = pos_;
    take();  // '/'
    take();  // '*'
    while (pos_ < src_.size() && !(peek() == '*' && peek(1) == '/')) take();
    if (pos_ < src_.size()) {
      take();
      take();
    }
    scan_allow_comment(src_.substr(start, pos_ - start), line, result_.allows);
  }

  void ident_or_raw_string() {
    const unsigned line = line_;
    std::string text;
    while (is_ident_char(peek())) text.push_back(take());
    // Raw string: R"delim( ... )delim" — also LR / u8R / uR / UR prefixes.
    if (peek() == '"' &&
        (text == "R" || text == "LR" || text == "u8R" || text == "uR" ||
         text == "UR")) {
      take();  // opening quote
      std::string delim;
      while (peek() != '(' && peek() != '\0' && delim.size() < 16)
        delim.push_back(take());
      if (peek() == '(') take();
      const std::string close = ")" + delim + "\"";
      std::string body;
      while (pos_ < src_.size()) {
        if (src_.compare(pos_, close.size(), close) == 0) {
          for (std::size_t i = 0; i < close.size(); ++i) take();
          break;
        }
        body.push_back(take());
      }
      emit(TokKind::kString, std::move(body), line);
      return;
    }
    // Ordinary string/char encoding prefixes glue to the literal.
    if ((peek() == '"' || peek() == '\'') &&
        (text == "L" || text == "u" || text == "U" || text == "u8")) {
      if (peek() == '"')
        string_literal();
      else
        char_literal();
      return;
    }
    emit(TokKind::kIdent, std::move(text), line);
  }

  void number() {
    const unsigned line = line_;
    std::string text;
    text.push_back(take());
    while (pos_ < src_.size()) {
      const char c = peek();
      if (is_ident_char(c) || c == '.' || c == '\'') {
        text.push_back(take());
        // Exponent signs belong to the literal: 1e+9, 0x1p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (peek() == '+' || peek() == '-') &&
            (text.find("0x") != 0 || c == 'p' || c == 'P')) {
          text.push_back(take());
        }
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, std::move(text), line);
  }

  void string_literal() {
    const unsigned line = line_;
    take();  // opening quote
    std::string text;
    while (pos_ < src_.size() && peek() != '"') {
      if (peek() == '\\' && pos_ + 1 < src_.size()) text.push_back(take());
      if (pos_ < src_.size()) text.push_back(take());
    }
    if (pos_ < src_.size()) take();  // closing quote
    emit(TokKind::kString, std::move(text), line);
  }

  void char_literal() {
    const unsigned line = line_;
    take();  // opening quote
    std::string text;
    while (pos_ < src_.size() && peek() != '\'') {
      if (peek() == '\\' && pos_ + 1 < src_.size()) text.push_back(take());
      if (pos_ < src_.size()) text.push_back(take());
    }
    if (pos_ < src_.size()) take();  // closing quote
    emit(TokKind::kChar, std::move(text), line);
  }

  void punct() {
    const unsigned line = line_;
    for (std::string_view p : kPuncts) {
      if (src_.compare(pos_, p.size(), p) == 0) {
        for (std::size_t i = 0; i < p.size(); ++i) take();
        emit(TokKind::kPunct, std::string(p), line);
        return;
      }
    }
    emit(TokKind::kPunct, std::string(1, take()), line);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  unsigned line_ = 1;
  LexResult result_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

bool is_float_literal(std::string_view t) {
  if (t.empty()) return false;
  const bool hex = t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X');
  bool has_point = false;
  bool has_exp = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '.') has_point = true;
    if (!hex && (c == 'e' || c == 'E') && i > 0) has_exp = true;
    if (hex && (c == 'p' || c == 'P')) has_exp = true;
  }
  if (has_point || has_exp) return true;
  // Suffix-only floats: 1f. A hex digit 'f' is not a suffix.
  if (!hex && (t.back() == 'f' || t.back() == 'F')) return true;
  return false;
}

}  // namespace cmcp::lint
