// cmcp_lint: domain-specific determinism & concurrency rules for this repo.
//
// Generic linters (clang-tidy, compiler warnings) cannot know this
// codebase's contracts: virtual time is integral `Cycles`, hot state is
// dense unit-indexed (docs/performance.md), traces must be byte-identical
// across runs and SimCheck modes (docs/invariants.md), and all
// synchronization goes through the annotated `common::Mutex` wrapper
// (common/mutex.h). Each rule here mechanizes one of those contracts as a
// reviewable, CI-gated check over the token stream of every translation
// unit in compile_commands.json plus every header under the source tree.
//
// Rule catalog (ids are stable; suppress with `// cmcp-lint: allow(id)`):
//   hash-keyed-index       unordered container keyed by UnitIdx/Pfn/Vpn/
//                          CoreId in hot-path dirs (mm, sim, core, policy):
//                          dense direct-indexed storage is the repo layout
//                          discipline — and hash iteration order leaks.
//   ordered-pointer-key    std::map/set keyed by a pointer: comparison
//                          order follows the allocator, not the simulation.
//   hashed-pointer-key     unordered container keyed by a pointer: same
//                          leak through the hash of the address.
//   pointer-address-cast   casting a pointer to uintptr_t/intptr_t: address
//                          values must never reach simulation results.
//   wallclock-time         wall-clock reads (std::chrono clocks, time(),
//                          gettimeofday...) outside bench/wallclock.cpp:
//                          virtual time comes from core clocks only.
//   unseeded-entropy       rand()/std::random_device/raw engine types
//                          outside common/rng.cpp: all randomness flows
//                          from the seeded, logged common::Rng.
//   float-virtual-time     float/double variables holding cycles/ticks, or
//                          float literals assigned into Cycles variables:
//                          virtual time is integral by contract.
//   check-side-effect      ++/--/assignment inside CMCP_CHECK /
//                          CMCP_CHECK_MSG / CMCP_SIMCHECK_POINT arguments:
//                          checks must be observation-only (SimCheck ON vs
//                          OFF must produce byte-identical traces).
//   raw-mutex              std::mutex / lock types outside common/mutex.h:
//                          the wrapper carries the thread-safety
//                          annotations and the documented lock hierarchy.
//   stray-thread           std::thread/async/atomic outside
//                          metrics/parallel_runner: one sanctioned
//                          parallelism entry point keeps determinism
//                          auditable.
//   volatile-qualifier     volatile is not a synchronization tool.
//   unordered-iteration    range-for / .begin() iteration over a local
//                          unordered container: iteration order is
//                          unspecified and must not reach output paths
//                          unsorted.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cmcp::lint {

struct Finding {
  std::string path;     ///< repo-relative, forward slashes
  unsigned line = 0;    ///< 1-based
  std::string rule;     ///< rule id from the catalog
  std::string message;  ///< one-line diagnosis
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The stable rule catalog, in reporting order.
const std::vector<RuleInfo>& rule_catalog();

/// Lint one file's contents. `path` must be repo-relative with forward
/// slashes (e.g. "src/mm/pspt.h"); it selects which rules apply and which
/// exemptions hold. Findings are ordered by line.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view content);

/// Stable ordering for reports: by path, then line, then rule id.
void sort_findings(std::vector<Finding>& findings);

}  // namespace cmcp::lint
