#include "core/multi_tenant.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <queue>

#include "check/invariant_checkers.h"
#include "common/assert.h"

namespace cmcp::core {

namespace {

std::uint64_t shared_capacity_for(const MultiTenantConfig& config,
                                  const std::vector<mm::ComputationArea>& areas) {
  if (config.capacity_units_override != 0) return config.capacity_units_override;
  std::uint64_t total_units = 0;
  for (const mm::ComputationArea& a : areas) total_units += a.num_units();
  const double frac = std::max(config.memory_fraction, 0.0);
  const auto cap = static_cast<std::uint64_t>(
      std::ceil(frac * static_cast<double>(total_units)));
  return std::max<std::uint64_t>(cap, 1);
}

}  // namespace

MultiTenantResult run_multi_tenant(const MultiTenantConfig& config,
                                   const wl::MultiTenantSpec& spec,
                                   const std::vector<TenantRunConfig>& tenant_configs) {
  const auto num_tenants = static_cast<Asid>(spec.num_tenants());
  CMCP_CHECK(num_tenants > 0);
  CMCP_CHECK_MSG(tenant_configs.size() == num_tenants,
                 "one TenantRunConfig per tenant, in asid order");

  // --- machine: all tenants' core blocks + one scanner pseudo-core each ----
  sim::MachineConfig mc = config.machine;
  mc.num_cores = spec.total_cores();
  mc.num_address_spaces = num_tenants;
  sim::Machine machine(mc);
  for (Asid t = 0; t < num_tenants; ++t) {
    const wl::TenantPlacement p = spec.placement(t);
    for (CoreId c = 0; c < p.num_cores; ++c)
      machine.set_core_space(p.first_core + c, t);
  }

  // --- address spaces over one shared allocator ----------------------------
  std::vector<mm::ComputationArea> areas;
  areas.reserve(num_tenants);
  for (Asid t = 0; t < num_tenants; ++t) {
    const wl::TenantPlacement p = spec.placement(t);
    areas.emplace_back(p.area_base_vpn, p.footprint_base_pages,
                       mc.page_size);
  }
  const std::uint64_t capacity = shared_capacity_for(config, areas);

  std::vector<AddressSpaceSpec> specs;
  specs.reserve(num_tenants);
  for (Asid t = 0; t < num_tenants; ++t) {
    AddressSpaceSpec s;
    s.area = areas[t];
    s.config.pt_kind = tenant_configs[t].pt_kind;
    s.config.policy = tenant_configs[t].policy;
    s.config.custom_policy = tenant_configs[t].custom_policy;
    s.config.prefetch_degree = tenant_configs[t].prefetch_degree;
    s.config.async_writeback = tenant_configs[t].async_writeback;
    s.config.capacity_units = tenant_configs[t].capacity_units;
    s.share = tenant_configs[t].share;
    specs.push_back(std::move(s));
  }
  MemoryManager mm(machine, specs, capacity, config.partition);

  if (config.trace != nullptr) {
    config.trace->set_num_app_cores(machine.num_cores());
    config.trace->set_num_spaces(num_tenants);
    machine.set_trace(config.trace);
  }
  sim::FaultPlanConfig fault_config = config.faults;
  if (!fault_config.enabled()) {
    // CI chaos hook — see core::Simulation's constructor.
    if (const char* env = std::getenv("CMCP_CHAOS_FAULTS");
        env != nullptr && *env != '\0') {
      CMCP_CHECK_MSG(sim::FaultPlanConfig::parse(env, &fault_config),
                     "malformed CMCP_CHAOS_FAULTS spec");
    }
  }
  std::unique_ptr<sim::FaultPlan> faults;
  if (fault_config.enabled()) {
    faults = std::make_unique<sim::FaultPlan>(fault_config);
    faults->select_poison(mm.capacity_units(),
                          mm.allocator().frames_per_unit());
    machine.set_fault_plan(faults.get());
  }
  std::unique_ptr<sim::CheckRegistry> checks;
#if CMCP_SIMCHECK_ENABLED
  if (config.simcheck) {
    checks = std::make_unique<sim::CheckRegistry>();
    check::register_default_checkers(*checks, mm, machine);
    checks->set_event_source(config.trace);
    mm.set_check_registry(checks.get());
  }
#endif

  // --- the deterministic interleaving engine -------------------------------
  // Same structure as core::Simulation::run(), with barriers scoped to each
  // tenant's core block instead of the whole machine.
  const CoreId n = machine.num_cores();

  enum class CoreState : std::uint8_t { kRunning, kAtBarrier, kDone };
  struct PerCore {
    std::unique_ptr<wl::AccessStream> stream;
    Asid tenant = 0;
    Vpn area_base = 0;
    CoreState state = CoreState::kRunning;
    wl::Op pending;              ///< in-progress access op
    std::uint32_t progress = 0;  ///< pages of `pending` already processed
    bool has_pending = false;
  };
  std::vector<PerCore> cores(n);
  struct TenantGroup {
    CoreId first_core = 0;
    CoreId num_cores = 0;
    CoreId active = 0;      ///< cores not yet done
    CoreId at_barrier = 0;  ///< cores waiting at the tenant's current barrier
  };
  std::vector<TenantGroup> groups(num_tenants);
  for (Asid t = 0; t < num_tenants; ++t) {
    const wl::TenantPlacement p = spec.placement(t);
    groups[t] = {p.first_core, p.num_cores, p.num_cores, 0};
    for (CoreId c = 0; c < p.num_cores; ++c) {
      PerCore& pc = cores[p.first_core + c];
      pc.stream = spec.tenant(t).make_stream(c);
      pc.tenant = t;
      pc.area_base = p.area_base_vpn;
    }
  }

  // Min-heap of (clock, core) with lazy re-push on stale entries.
  struct HeapEntry {
    Cycles time;
    CoreId core;
    bool operator>(const HeapEntry& o) const {
      return time != o.time ? time > o.time : core > o.core;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (CoreId c = 0; c < n; ++c) heap.push({0, c});

  const auto release_barrier_if_complete = [&](Asid tenant) {
    TenantGroup& g = groups[tenant];
    if (g.active == 0 || g.at_barrier != g.active) return;
    Cycles tmax = 0;
    for (CoreId c = g.first_core; c < g.first_core + g.num_cores; ++c) {
      if (cores[c].state == CoreState::kAtBarrier)
        tmax = std::max(tmax, machine.clock(c));
    }
    for (CoreId c = g.first_core; c < g.first_core + g.num_cores; ++c) {
      if (cores[c].state != CoreState::kAtBarrier) continue;
      machine.counters(c).cycles_barrier += tmax - machine.clock(c);
      if (sim::trace::EventSink* tr = machine.trace())
        tr->emit({sim::trace::EventKind::kBarrierWait, c, machine.clock(c),
                  tmax - machine.clock(c), kInvalidUnit, 0, 0, 0, tenant});
      machine.set_clock(c, tmax);
      cores[c].state = CoreState::kRunning;
      heap.push({tmax, c});
    }
    g.at_barrier = 0;
  };

  while (!heap.empty()) {
    const auto [time, core] = heap.top();
    heap.pop();
    if (cores[core].state != CoreState::kRunning) continue;
    const Cycles actual = machine.clock(core);
    if (actual != time) {
      // Clock advanced (shootdown interrupts) since this entry was pushed.
      heap.push({actual, core});
      continue;
    }

    mm.run_periodic(actual);

    PerCore& pc = cores[core];
    // One page of an in-progress access op per engine event: shared
    // resources (PCIe link, invalidation slot, page-table locks) are
    // then updated in near-global time order, so queueing is resolved
    // at page granularity.
    if (pc.has_pending) {
      const wl::Op& op = pc.pending;
      const Vpn vpn =
          pc.area_base + op.vpn + static_cast<Vpn>(pc.progress) * op.stride;
      for (std::uint16_t r = 0; r < op.repeat; ++r) {
        const Cycles now = machine.clock(core);
        machine.advance(core, mm.access(core, vpn, op.write, now));
      }
      if (op.cycles > 0) {
        machine.counters(core).cycles_compute += op.cycles;
        machine.advance(core, op.cycles);
      }
      if (++pc.progress >= op.count) pc.has_pending = false;
      heap.push({machine.clock(core), core});
      continue;
    }

    const wl::Op op = pc.stream->next();
    switch (op.kind) {
      case wl::OpKind::kAccess: {
        CMCP_CHECK(op.count > 0);
        pc.pending = op;
        pc.progress = 0;
        pc.has_pending = true;
        heap.push({machine.clock(core), core});
        break;
      }
      case wl::OpKind::kCompute: {
        machine.counters(core).cycles_compute += op.cycles;
        machine.advance(core, op.cycles);
        heap.push({machine.clock(core), core});
        break;
      }
      case wl::OpKind::kSyscall: {
        // IHK offload round trip over the SHARED PCIe link — a syscall-heavy
        // tenant queues behind (and delays) its neighbors' page traffic.
        const sim::CostModel& cost = machine.cost();
        metrics::CoreCounters& ctr = machine.counters(core);
        const Cycles start = machine.clock(core) + cost.syscall_local;
        const sim::Machine::PcieTransferResult req = machine.pcie_transfer(
            core, sim::PcieDir::kDeviceToHost, start,
            cost.syscall_message_bytes + op.count, kInvalidUnit, pc.tenant);
        const Cycles host_done = req.done + cost.syscall_host_dispatch + op.cycles;
        const sim::Machine::PcieTransferResult resp = machine.pcie_transfer(
            core, sim::PcieDir::kHostToDevice, host_done,
            cost.syscall_message_bytes, kInvalidUnit, pc.tenant);
        ++ctr.syscalls;
        ctr.cycles_syscall += resp.done - machine.clock(core);
        machine.set_clock(core, resp.done);
        heap.push({machine.clock(core), core});
        break;
      }
      case wl::OpKind::kBarrier: {
        pc.state = CoreState::kAtBarrier;
        ++groups[pc.tenant].at_barrier;
        release_barrier_if_complete(pc.tenant);
        break;
      }
      case wl::OpKind::kEnd: {
        pc.state = CoreState::kDone;
        --groups[pc.tenant].active;
        // A barrier pending among the tenant's remaining cores may now be
        // complete.
        release_barrier_if_complete(pc.tenant);
        break;
      }
    }
  }
  for (Asid t = 0; t < num_tenants; ++t)
    CMCP_CHECK_MSG(groups[t].active == 0 && groups[t].at_barrier == 0,
                   "engine deadlock: cores stuck at a tenant barrier");
  if (checks != nullptr) checks->run_now(sim::CheckPoint::kEndOfRun);

  // --- collect -------------------------------------------------------------
  MultiTenantResult result;
  result.shared_capacity_units = capacity;
  result.partition_kind = std::string(mm::to_string(config.partition));
  result.interference = mm.interference();
  result.tenants.resize(num_tenants);
  for (Asid t = 0; t < num_tenants; ++t) {
    const TenantGroup& g = groups[t];
    TenantResult& tr = result.tenants[t];
    const AddressSpace& space = mm.space(t);
    tr.workload_name = std::string(spec.tenant(t).name());
    tr.policy_name = std::string(space.policy().name());
    tr.first_core = g.first_core;
    tr.num_cores = g.num_cores;
    for (CoreId c = g.first_core; c < g.first_core + g.num_cores; ++c) {
      tr.makespan = std::max(tr.makespan, machine.clock(c));
      tr.total += machine.counters(c);
    }
    tr.scanner = machine.counters(machine.scanner_core(t));
    space.policy().stats([&](std::string_view name, std::uint64_t value) {
      tr.policy_stats.emplace_back(std::string(name), value);
    });
    tr.footprint_units = space.area().num_units();
    tr.capacity_target_units = mm.partition().target_of(t);
    tr.reserve_units = mm.partition().reserve_of(t);
    tr.resident_units_end = mm.allocator().in_use_by(t);
    tr.scans = space.scans_completed();
    result.makespan = std::max(result.makespan, tr.makespan);
  }
  if (faults != nullptr) {
    result.faults_enabled = true;
    result.fault_config = faults->config();
    result.fault_stats = faults->stats();
  }
  return result;
}

}  // namespace cmcp::core
