#include "core/multi_tenant.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "check/invariant_checkers.h"
#include "common/assert.h"
#include "core/engine.h"

namespace cmcp::core {

namespace {

std::uint64_t shared_capacity_for(const MultiTenantConfig& config,
                                  const std::vector<mm::ComputationArea>& areas) {
  if (config.capacity_units_override != 0) return config.capacity_units_override;
  std::uint64_t total_units = 0;
  for (const mm::ComputationArea& a : areas) total_units += a.num_units();
  const double frac = std::max(config.memory_fraction, 0.0);
  const auto cap = static_cast<std::uint64_t>(
      std::ceil(frac * static_cast<double>(total_units)));
  return std::max<std::uint64_t>(cap, 1);
}

}  // namespace

MultiTenantResult run_multi_tenant(const MultiTenantConfig& config,
                                   const wl::MultiTenantSpec& spec,
                                   const std::vector<TenantRunConfig>& tenant_configs) {
  const auto num_tenants = static_cast<Asid>(spec.num_tenants());
  CMCP_CHECK(num_tenants > 0);
  CMCP_CHECK_MSG(tenant_configs.size() == num_tenants,
                 "one TenantRunConfig per tenant, in asid order");

  // --- machine: all tenants' core blocks + one scanner pseudo-core each ----
  sim::MachineConfig mc = config.machine;
  mc.num_cores = spec.total_cores();
  mc.num_address_spaces = num_tenants;
  sim::Machine machine(mc);
  for (Asid t = 0; t < num_tenants; ++t) {
    const wl::TenantPlacement p = spec.placement(t);
    for (CoreId c = 0; c < p.num_cores; ++c)
      machine.set_core_space(p.first_core + c, t);
  }

  // --- address spaces over one shared allocator ----------------------------
  std::vector<mm::ComputationArea> areas;
  areas.reserve(num_tenants);
  for (Asid t = 0; t < num_tenants; ++t) {
    const wl::TenantPlacement p = spec.placement(t);
    areas.emplace_back(p.area_base_vpn, p.footprint_base_pages,
                       mc.page_size);
  }
  const std::uint64_t capacity = shared_capacity_for(config, areas);

  std::vector<AddressSpaceSpec> specs;
  specs.reserve(num_tenants);
  for (Asid t = 0; t < num_tenants; ++t) {
    AddressSpaceSpec s;
    s.area = areas[t];
    s.config.pt_kind = tenant_configs[t].pt_kind;
    s.config.policy = tenant_configs[t].policy;
    s.config.custom_policy = tenant_configs[t].custom_policy;
    s.config.prefetch_degree = tenant_configs[t].prefetch_degree;
    s.config.async_writeback = tenant_configs[t].async_writeback;
    s.config.capacity_units = tenant_configs[t].capacity_units;
    s.share = tenant_configs[t].share;
    specs.push_back(std::move(s));
  }
  MemoryManager mm(machine, specs, capacity, config.partition);

  if (config.trace != nullptr) {
    config.trace->set_num_app_cores(machine.num_cores());
    config.trace->set_num_spaces(num_tenants);
    machine.set_trace(config.trace);
  }
  sim::FaultPlanConfig fault_config = config.faults;
  if (!fault_config.enabled()) {
    // CI chaos hook — see core::Simulation's constructor.
    if (const char* env = std::getenv("CMCP_CHAOS_FAULTS");
        env != nullptr && *env != '\0') {
      CMCP_CHECK_MSG(sim::FaultPlanConfig::parse(env, &fault_config),
                     "malformed CMCP_CHAOS_FAULTS spec");
    }
  }
  std::unique_ptr<sim::FaultPlan> faults;
  if (fault_config.enabled()) {
    faults = std::make_unique<sim::FaultPlan>(fault_config);
    faults->select_poison(mm.capacity_units(),
                          mm.allocator().frames_per_unit());
    machine.set_fault_plan(faults.get());
  }
  std::unique_ptr<sim::CheckRegistry> checks;
#if CMCP_SIMCHECK_ENABLED
  if (config.simcheck) {
    checks = std::make_unique<sim::CheckRegistry>();
    check::register_default_checkers(*checks, mm, machine);
    checks->set_event_source(config.trace);
    mm.set_check_registry(checks.get());
  }
#endif

  // --- the deterministic interleaving engine -------------------------------
  // The shared engine (core/engine.h), with one barrier group per tenant:
  // barriers synchronize only within a tenant's core block, and each tenant
  // finishes independently.
  const CoreId n = machine.num_cores();
  std::vector<EngineCoreInit> cores(n);
  std::vector<EngineGroup> groups(num_tenants);
  for (Asid t = 0; t < num_tenants; ++t) {
    const wl::TenantPlacement p = spec.placement(t);
    groups[t] = {p.first_core, p.num_cores};
    for (CoreId c = 0; c < p.num_cores; ++c) {
      EngineCoreInit& init = cores[p.first_core + c];
      init.stream = spec.tenant(t).make_stream(c);
      init.tenant = t;
      init.area_base = p.area_base_vpn;
    }
  }
  run_engine(machine, mm, cores, groups, config.threads);
  if (checks != nullptr) checks->run_now(sim::CheckPoint::kEndOfRun);

  // --- collect -------------------------------------------------------------
  MultiTenantResult result;
  result.shared_capacity_units = capacity;
  result.partition_kind = std::string(mm::to_string(config.partition));
  result.interference = mm.interference();
  result.tenants.resize(num_tenants);
  for (Asid t = 0; t < num_tenants; ++t) {
    const EngineGroup& g = groups[t];
    TenantResult& tr = result.tenants[t];
    const AddressSpace& space = mm.space(t);
    tr.workload_name = std::string(spec.tenant(t).name());
    tr.policy_name = std::string(space.policy().name());
    tr.first_core = g.first_core;
    tr.num_cores = g.num_cores;
    for (CoreId c = g.first_core; c < g.first_core + g.num_cores; ++c) {
      tr.makespan = std::max(tr.makespan, machine.clock(c));
      tr.total += machine.counters(c);
    }
    tr.scanner = machine.counters(machine.scanner_core(t));
    space.policy().stats([&](std::string_view name, std::uint64_t value) {
      tr.policy_stats.emplace_back(std::string(name), value);
    });
    tr.footprint_units = space.area().num_units();
    tr.capacity_target_units = mm.partition().target_of(t);
    tr.reserve_units = mm.partition().reserve_of(t);
    tr.resident_units_end = mm.allocator().in_use_by(t);
    tr.scans = space.scans_completed();
    result.makespan = std::max(result.makespan, tr.makespan);
  }
  if (faults != nullptr) {
    result.faults_enabled = true;
    result.fault_config = faults->config();
    result.fault_stats = faults->stats();
  }
  return result;
}

}  // namespace cmcp::core
