#include "core/simulation.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "check/invariant_checkers.h"
#include "common/assert.h"
#include "core/engine.h"

namespace cmcp::core {

double SimulationResult::avg_major_faults_per_core() const {
  if (per_core.empty()) return 0.0;
  return static_cast<double>(app_total.major_faults) /
         static_cast<double>(per_core.size());
}

double SimulationResult::avg_remote_invalidations_per_core() const {
  if (per_core.empty()) return 0.0;
  return static_cast<double>(app_total.remote_invalidations_received) /
         static_cast<double>(per_core.size());
}

double SimulationResult::avg_dtlb_misses_per_core() const {
  if (per_core.empty()) return 0.0;
  return static_cast<double>(app_total.dtlb_misses) /
         static_cast<double>(per_core.size());
}

sim::MachineConfig Simulation::machine_config_for(const SimulationConfig& config,
                                                  const wl::Workload& workload) {
  sim::MachineConfig mc = config.machine;
  mc.num_cores = workload.num_cores();
  return mc;
}

mm::ComputationArea Simulation::area_for(const SimulationConfig& config,
                                         const wl::Workload& workload) {
  // Align the base to the largest unit so any page size is valid.
  const Vpn base = (config.area_base_vpn + 511) & ~Vpn{511};
  return mm::ComputationArea(base, workload.footprint_base_pages(),
                             config.machine.page_size);
}

MemoryManagerConfig Simulation::mm_config_for(const SimulationConfig& config,
                                              const mm::ComputationArea& area) {
  MemoryManagerConfig mmc;
  mmc.pt_kind = config.pt_kind;
  mmc.policy = config.policy;
  mmc.custom_policy = config.custom_policy;
  mmc.preload = config.preload;
  mmc.prefetch_degree = config.prefetch_degree;
  mmc.async_writeback = config.async_writeback;
  if (config.capacity_units_override != 0) {
    mmc.capacity_units = config.capacity_units_override;
  } else {
    const double frac = std::max(config.memory_fraction, 0.0);
    mmc.capacity_units = static_cast<std::uint64_t>(
        std::ceil(frac * static_cast<double>(area.num_units())));
  }
  mmc.capacity_units = std::max<std::uint64_t>(mmc.capacity_units, 1);
  if (config.preload)
    mmc.capacity_units = std::max(mmc.capacity_units, area.num_units());
  return mmc;
}

Simulation::Simulation(const SimulationConfig& config, const wl::Workload& workload)
    : config_(config),
      workload_(workload),
      machine_(machine_config_for(config, workload)),
      area_(area_for(config, workload)),
      mm_(machine_, area_, mm_config_for(config, area_)) {
  if (config_.trace != nullptr) {
    config_.trace->set_num_app_cores(machine_.num_cores());
    machine_.set_trace(config_.trace);
  }
  sim::FaultPlanConfig fc = config_.faults;
  if (!fc.enabled()) {
    // CI chaos hook: an explicitly configured plan always wins, but a run
    // with faults off picks up CMCP_CHAOS_FAULTS so the whole fast suite
    // can be replayed under a fault mix without touching each test.
    if (const char* env = std::getenv("CMCP_CHAOS_FAULTS");
        env != nullptr && *env != '\0') {
      CMCP_CHECK_MSG(sim::FaultPlanConfig::parse(env, &fc),
                     "malformed CMCP_CHAOS_FAULTS spec");
    }
  }
  if (fc.enabled()) {
    faults_ = std::make_unique<sim::FaultPlan>(fc);
    faults_->select_poison(mm_.capacity_units(),
                           mm_.allocator().frames_per_unit());
    machine_.set_fault_plan(faults_.get());
  }
#if CMCP_SIMCHECK_ENABLED
  if (config_.simcheck) {
    checks_ = std::make_unique<sim::CheckRegistry>();
    check::register_default_checkers(*checks_, mm_, machine_);
    checks_->set_event_source(config_.trace);
    mm_.set_check_registry(checks_.get());
  }
#endif
}

SimulationResult Simulation::run() {
  CMCP_CHECK_MSG(!ran_, "Simulation::run is single-use");
  ran_ = true;

  const CoreId n = machine_.num_cores();
  std::vector<EngineCoreInit> cores(n);
  for (CoreId c = 0; c < n; ++c) {
    cores[c].stream = workload_.make_stream(c);
    cores[c].area_base = area_.base_vpn();
  }
  // One barrier group spanning the whole machine: wl::OpKind::kBarrier
  // synchronizes every core.
  const EngineGroup group{0, n};
  run_engine(machine_, mm_, cores, std::span<const EngineGroup>(&group, 1),
             config_.threads);
  if (checks_ != nullptr) checks_->run_now(sim::CheckPoint::kEndOfRun);

  SimulationResult result;
  for (CoreId c = 0; c < n; ++c)
    result.makespan = std::max(result.makespan, machine_.clock(c));
  result.per_core.reserve(n);
  for (CoreId c = 0; c < n; ++c) result.per_core.push_back(machine_.counters(c));
  result.app_total = machine_.aggregate_app_counters();
  result.scanner = machine_.counters(machine_.scanner_core());
  result.footprint_units = area_.num_units();
  result.capacity_units = mm_.capacity_units();
  result.scans = mm_.scans_completed();
  result.sharing_histogram = mm_.sharing_histogram();
  const policy::ReplacementPolicy& pol = mm_.policy();
  result.policy_name = std::string(pol.name());
  pol.stats([&](std::string_view name, std::uint64_t value) {
    result.policy_stats.emplace_back(std::string(name), value);
  });
  if (faults_ != nullptr) {
    result.faults_enabled = true;
    result.fault_config = faults_->config();
    result.fault_stats = faults_->stats();
  }
  return result;
}

SimulationResult run_simulation(const SimulationConfig& config,
                                const wl::Workload& workload) {
  Simulation sim(config, workload);
  return sim.run();
}

}  // namespace cmcp::core
