#include "core/simulation.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <queue>

#include "check/invariant_checkers.h"
#include "common/assert.h"

namespace cmcp::core {

double SimulationResult::avg_major_faults_per_core() const {
  if (per_core.empty()) return 0.0;
  return static_cast<double>(app_total.major_faults) /
         static_cast<double>(per_core.size());
}

double SimulationResult::avg_remote_invalidations_per_core() const {
  if (per_core.empty()) return 0.0;
  return static_cast<double>(app_total.remote_invalidations_received) /
         static_cast<double>(per_core.size());
}

double SimulationResult::avg_dtlb_misses_per_core() const {
  if (per_core.empty()) return 0.0;
  return static_cast<double>(app_total.dtlb_misses) /
         static_cast<double>(per_core.size());
}

sim::MachineConfig Simulation::machine_config_for(const SimulationConfig& config,
                                                  const wl::Workload& workload) {
  sim::MachineConfig mc = config.machine;
  mc.num_cores = workload.num_cores();
  return mc;
}

mm::ComputationArea Simulation::area_for(const SimulationConfig& config,
                                         const wl::Workload& workload) {
  // Align the base to the largest unit so any page size is valid.
  const Vpn base = (config.area_base_vpn + 511) & ~Vpn{511};
  return mm::ComputationArea(base, workload.footprint_base_pages(),
                             config.machine.page_size);
}

MemoryManagerConfig Simulation::mm_config_for(const SimulationConfig& config,
                                              const mm::ComputationArea& area) {
  MemoryManagerConfig mmc;
  mmc.pt_kind = config.pt_kind;
  mmc.policy = config.policy;
  mmc.custom_policy = config.custom_policy;
  mmc.preload = config.preload;
  mmc.prefetch_degree = config.prefetch_degree;
  mmc.async_writeback = config.async_writeback;
  if (config.capacity_units_override != 0) {
    mmc.capacity_units = config.capacity_units_override;
  } else {
    const double frac = std::max(config.memory_fraction, 0.0);
    mmc.capacity_units = static_cast<std::uint64_t>(
        std::ceil(frac * static_cast<double>(area.num_units())));
  }
  mmc.capacity_units = std::max<std::uint64_t>(mmc.capacity_units, 1);
  if (config.preload)
    mmc.capacity_units = std::max(mmc.capacity_units, area.num_units());
  return mmc;
}

Simulation::Simulation(const SimulationConfig& config, const wl::Workload& workload)
    : config_(config),
      workload_(workload),
      machine_(machine_config_for(config, workload)),
      area_(area_for(config, workload)),
      mm_(machine_, area_, mm_config_for(config, area_)) {
  if (config_.trace != nullptr) {
    config_.trace->set_num_app_cores(machine_.num_cores());
    machine_.set_trace(config_.trace);
  }
  sim::FaultPlanConfig fc = config_.faults;
  if (!fc.enabled()) {
    // CI chaos hook: an explicitly configured plan always wins, but a run
    // with faults off picks up CMCP_CHAOS_FAULTS so the whole fast suite
    // can be replayed under a fault mix without touching each test.
    if (const char* env = std::getenv("CMCP_CHAOS_FAULTS");
        env != nullptr && *env != '\0') {
      CMCP_CHECK_MSG(sim::FaultPlanConfig::parse(env, &fc),
                     "malformed CMCP_CHAOS_FAULTS spec");
    }
  }
  if (fc.enabled()) {
    faults_ = std::make_unique<sim::FaultPlan>(fc);
    faults_->select_poison(mm_.capacity_units(),
                           mm_.allocator().frames_per_unit());
    machine_.set_fault_plan(faults_.get());
  }
#if CMCP_SIMCHECK_ENABLED
  if (config_.simcheck) {
    checks_ = std::make_unique<sim::CheckRegistry>();
    check::register_default_checkers(*checks_, mm_, machine_);
    checks_->set_event_source(config_.trace);
    mm_.set_check_registry(checks_.get());
  }
#endif
}

SimulationResult Simulation::run() {
  CMCP_CHECK_MSG(!ran_, "Simulation::run is single-use");
  ran_ = true;

  const CoreId n = machine_.num_cores();

  enum class CoreState : std::uint8_t { kRunning, kAtBarrier, kDone };
  struct PerCore {
    std::unique_ptr<wl::AccessStream> stream;
    CoreState state = CoreState::kRunning;
    wl::Op pending;            ///< in-progress access op
    std::uint32_t progress = 0;  ///< pages of `pending` already processed
    bool has_pending = false;
  };
  std::vector<PerCore> cores(n);
  for (CoreId c = 0; c < n; ++c) cores[c].stream = workload_.make_stream(c);

  // Min-heap of (clock, core) with lazy re-push on stale entries.
  struct HeapEntry {
    Cycles time;
    CoreId core;
    bool operator>(const HeapEntry& o) const {
      return time != o.time ? time > o.time : core > o.core;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (CoreId c = 0; c < n; ++c) heap.push({0, c});

  CoreId active = n;       // cores not yet done
  CoreId at_barrier = 0;   // cores waiting at the current barrier

  const auto release_barrier_if_complete = [&] {
    if (active == 0 || at_barrier != active) return;
    Cycles tmax = 0;
    for (CoreId c = 0; c < n; ++c) {
      if (cores[c].state == CoreState::kAtBarrier)
        tmax = std::max(tmax, machine_.clock(c));
    }
    for (CoreId c = 0; c < n; ++c) {
      if (cores[c].state != CoreState::kAtBarrier) continue;
      machine_.counters(c).cycles_barrier += tmax - machine_.clock(c);
      if (sim::trace::EventSink* tr = machine_.trace())
        tr->emit({sim::trace::EventKind::kBarrierWait, c, machine_.clock(c),
                  tmax - machine_.clock(c), kInvalidUnit, 0, 0, 0});
      machine_.set_clock(c, tmax);
      cores[c].state = CoreState::kRunning;
      heap.push({tmax, c});
    }
    at_barrier = 0;
  };

  while (!heap.empty()) {
    const auto [time, core] = heap.top();
    heap.pop();
    if (cores[core].state != CoreState::kRunning) continue;
    const Cycles actual = machine_.clock(core);
    if (actual != time) {
      // Clock advanced (shootdown interrupts) since this entry was pushed.
      heap.push({actual, core});
      continue;
    }

    mm_.run_periodic(actual);

    PerCore& pc = cores[core];
    // One page of an in-progress access op per engine event: shared
    // resources (PCIe link, invalidation slot, page-table locks) are
    // then updated in near-global time order, so queueing is resolved
    // at page granularity.
    if (pc.has_pending) {
      const wl::Op& op = pc.pending;
      const Vpn vpn = area_.base_vpn() + op.vpn +
                      static_cast<Vpn>(pc.progress) * op.stride;
      for (std::uint16_t r = 0; r < op.repeat; ++r) {
        const Cycles now = machine_.clock(core);
        machine_.advance(core, mm_.access(core, vpn, op.write, now));
      }
      if (op.cycles > 0) {
        machine_.counters(core).cycles_compute += op.cycles;
        machine_.advance(core, op.cycles);
      }
      if (++pc.progress >= op.count) pc.has_pending = false;
      heap.push({machine_.clock(core), core});
      continue;
    }

    const wl::Op op = pc.stream->next();
    switch (op.kind) {
      case wl::OpKind::kAccess: {
        CMCP_CHECK(op.count > 0);
        pc.pending = op;
        pc.progress = 0;
        pc.has_pending = true;
        heap.push({machine_.clock(core), core});
        break;
      }
      case wl::OpKind::kCompute: {
        machine_.counters(core).cycles_compute += op.cycles;
        machine_.advance(core, op.cycles);
        heap.push({machine_.clock(core), core});
        break;
      }
      case wl::OpKind::kSyscall: {
        // IHK offload: request over IKC/PCIe, host service, response back.
        // The calling core blocks for the whole round trip (paper section
        // 2.1: "heavy system calls are shipped to and executed on the
        // host").
        const sim::CostModel& cost = machine_.cost();
        metrics::CoreCounters& ctr = machine_.counters(core);
        const Cycles start = machine_.clock(core) + cost.syscall_local;
        const sim::Machine::PcieTransferResult req = machine_.pcie_transfer(
            core, sim::PcieDir::kDeviceToHost, start,
            cost.syscall_message_bytes + op.count, kInvalidUnit, 0);
        const Cycles host_done = req.done + cost.syscall_host_dispatch + op.cycles;
        const sim::Machine::PcieTransferResult resp = machine_.pcie_transfer(
            core, sim::PcieDir::kHostToDevice, host_done,
            cost.syscall_message_bytes, kInvalidUnit, 0);
        ++ctr.syscalls;
        ctr.cycles_syscall += resp.done - machine_.clock(core);
        machine_.set_clock(core, resp.done);
        heap.push({machine_.clock(core), core});
        break;
      }
      case wl::OpKind::kBarrier: {
        pc.state = CoreState::kAtBarrier;
        ++at_barrier;
        release_barrier_if_complete();
        break;
      }
      case wl::OpKind::kEnd: {
        pc.state = CoreState::kDone;
        --active;
        // A barrier pending among the remaining cores may now be complete.
        release_barrier_if_complete();
        break;
      }
    }
  }
  CMCP_CHECK_MSG(active == 0 && at_barrier == 0,
                 "engine deadlock: cores stuck at a barrier");
  if (checks_ != nullptr) checks_->run_now(sim::CheckPoint::kEndOfRun);

  SimulationResult result;
  for (CoreId c = 0; c < n; ++c)
    result.makespan = std::max(result.makespan, machine_.clock(c));
  result.per_core.reserve(n);
  for (CoreId c = 0; c < n; ++c) result.per_core.push_back(machine_.counters(c));
  result.app_total = machine_.aggregate_app_counters();
  result.scanner = machine_.counters(machine_.scanner_core());
  result.footprint_units = area_.num_units();
  result.capacity_units = mm_.capacity_units();
  result.scans = mm_.scans_completed();
  result.sharing_histogram = mm_.sharing_histogram();
  const policy::ReplacementPolicy& pol = mm_.policy();
  result.policy_name = std::string(pol.name());
  pol.stats([&](std::string_view name, std::uint64_t value) {
    result.policy_stats.emplace_back(std::string(name), value);
  });
  if (faults_ != nullptr) {
    result.faults_enabled = true;
    result.fault_config = faults_->config();
    result.fault_stats = faults_->stats();
  }
  return result;
}

SimulationResult run_simulation(const SimulationConfig& config,
                                const wl::Workload& workload) {
  Simulation sim(config, workload);
  return sim.run();
}

}  // namespace cmcp::core
