#include "core/engine.h"

#include <algorithm>
#include <array>

#include "common/assert.h"
#include "common/worker_pool.h"
#include "sim/trace.h"

namespace cmcp::core {

namespace {

// Heap keys pack (virtual time, core id) into one u64 so a single integer
// compare is the engine's event order: 11 low bits cover CoreMask::kMaxCores
// simulated cores; virtual times stay far below 2^53.
constexpr unsigned kCoreBits = 11;
constexpr std::uint64_t kCoreIdMask = (std::uint64_t{1} << kCoreBits) - 1;
constexpr std::uint64_t kMaxKey = ~std::uint64_t{0};

std::uint64_t pack(Cycles time, CoreId core) {
  return (time << kCoreBits) | core;
}

/// 4-ary min-heap over packed keys, one entry per runnable core. Unlike
/// the old lazy-push priority_queue there are no duplicate entries: a stale
/// root is corrected in place (replace_root), which only sifts down because
/// clocks are monotone. Four-way branching halves the sift depth of a
/// binary heap (3 levels instead of 6 at 56 cores) and the four children
/// of a node share one cache line; replace_root runs once per engine event,
/// so this is the engine loop's hottest data structure.
class EventHeap {
 public:
  void reserve(std::size_t n) { keys_.reserve(n); }
  bool empty() const { return keys_.empty(); }
  std::uint64_t root() const { return keys_[0]; }

  /// Smallest key other than the root (kMaxKey when the root is alone):
  /// the run-batching horizon. In any d-ary min-heap the second-smallest
  /// key is one of the root's children.
  std::uint64_t second_min() const {
    const std::size_t n = std::min<std::size_t>(keys_.size(), 5);
    std::uint64_t m = kMaxKey;
    for (std::size_t c = 1; c < n; ++c) m = std::min(m, keys_[c]);
    return m;
  }

  void push(std::uint64_t key) {
    keys_.push_back(key);
    std::size_t i = keys_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (keys_[parent] <= keys_[i]) break;
      std::swap(keys_[parent], keys_[i]);
      i = parent;
    }
  }

  void replace_root(std::uint64_t key) {
    keys_[0] = key;
    sift_down();
  }

  void pop_root() {
    keys_[0] = keys_.back();
    keys_.pop_back();
    if (!keys_.empty()) sift_down();
  }

 private:
  void sift_down() {
    const std::size_t n = keys_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) return;
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < last; ++c)
        if (keys_[c] < keys_[best]) best = c;
      if (keys_[i] <= keys_[best]) return;
      std::swap(keys_[i], keys_[best]);
      i = best;
    }
  }

  std::vector<std::uint64_t> keys_;
};

enum class CoreState : std::uint8_t { kRunning, kAtBarrier, kDone };

class Engine;

/// Context handed to a worker running one core's local span.
struct SpanCtx {
  Engine* engine = nullptr;
  CoreId core = 0;
};

struct PerCore {
  wl::AccessStream* stream = nullptr;
  Asid tenant = 0;
  Vpn area_base = 0;
  CoreId group = 0;
  CoreState state = CoreState::kRunning;
  wl::Op pending;              ///< in-progress access op
  std::uint32_t progress = 0;  ///< pages of `pending` already processed
  bool has_pending = false;
  /// A local span fetches ops it cannot execute (syscall/barrier/end); the
  /// coordinator consumes this instead of pulling the stream again.
  wl::Op fetched;
  bool has_fetched = false;
  /// Parallel mode: a span task for this core is queued or running; the
  /// coordinator must complete it before reading the core's state.
  bool span_inflight = false;
  common::Task task;
  SpanCtx span_ctx;
};

struct GroupState {
  CoreId first_core = 0;
  CoreId num_cores = 0;
  CoreId active = 0;      ///< cores not yet done
  CoreId at_barrier = 0;  ///< cores waiting at the group's current barrier
};

class Engine {
 public:
  Engine(sim::Machine& machine, MemoryManager& mm,
         std::span<EngineCoreInit> inits, std::span<const EngineGroup> groups,
         unsigned threads)
      : machine_(machine), mm_(mm) {
    const CoreId n = machine_.num_cores();
    CMCP_CHECK(inits.size() == n);
    CMCP_CHECK(n < (CoreId{1} << kCoreBits));
    // PerCore holds a Task (atomic state), so the array is built in place.
    cores_ = std::make_unique<PerCore[]>(n);
    groups_.reserve(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const EngineGroup& eg = groups[g];
      groups_.push_back({eg.first_core, eg.num_cores, eg.num_cores, 0});
      for (CoreId c = eg.first_core; c < eg.first_core + eg.num_cores; ++c)
        cores_[c].group = static_cast<CoreId>(g);
    }
    for (CoreId c = 0; c < n; ++c) {
      PerCore& pc = cores_[c];
      pc.stream = inits[c].stream.get();
      pc.tenant = inits[c].tenant;
      pc.area_base = inits[c].area_base;
      pc.span_ctx = {this, c};
    }
    threads_ = common::resolve_thread_count(threads);
    par_ = parallel_eligible();
    if (par_) pool_ = std::make_unique<common::WorkerPool>(threads_ - 1);
  }

  void run();

  /// Worker body: execute `core`'s stream on real state as long as every
  /// event is core-local (TLB hit / PTE refill / compute); stop before the
  /// first event needing shared state and leave the cursor for the
  /// coordinator. Touches only core-own state — see engine.h.
  void run_local_span(CoreId core) {
    PerCore& pc = cores_[core];
    AddressSpace& space = mm_.space(0);  // parallel gate: single space
    metrics::CoreCounters& ctr = machine_.counters(core);
    for (;;) {
      if (pc.has_pending) {
        const wl::Op& op = pc.pending;
        while (pc.progress < op.count) {
          const Vpn vpn = pc.area_base + op.vpn +
                          static_cast<Vpn>(pc.progress) * op.stride;
          std::uint16_t r = 0;
          for (; r < op.repeat; ++r) {
            const Cycles c = space.try_local_access(core, vpn, op.write);
            if (c == AddressSpace::kNotLocal) break;
            machine_.advance(core, c);
          }
          if (r < op.repeat) {
            // Only the page's FIRST reference can miss: the repeats that
            // follow hit the entry it just installed (no shootdowns exist
            // in an eligible run). The coordinator replays the whole page
            // through the fault path, so stopping mid-page would
            // double-charge the executed repeats.
            CMCP_CHECK(r == 0);
            return;
          }
          if (op.cycles > 0) {
            ctr.cycles_compute += op.cycles;
            machine_.advance(core, op.cycles);
          }
          ++pc.progress;
        }
        pc.has_pending = false;
      }
      const wl::Op op = pc.stream->next();
      switch (op.kind) {
        case wl::OpKind::kAccess:
          CMCP_CHECK(op.count > 0);
          pc.pending = op;
          pc.progress = 0;
          pc.has_pending = true;
          break;
        case wl::OpKind::kCompute:
          ctr.cycles_compute += op.cycles;
          machine_.advance(core, op.cycles);
          break;
        default:
          pc.fetched = op;
          pc.has_fetched = true;
          return;
      }
    }
  }

 private:
  /// Parallel local spans are sound only when every TLB-hit/refill truly
  /// touches core-own state and no shared interaction can observe it
  /// mid-flight: one address space, per-core PSPT rows, no scanner, no
  /// possible eviction (capacity covers the footprint), no fault plan
  /// (stragglers retime every access), no SimCheck sweeps (they read other
  /// cores' state), and a policy whose non-eviction hooks never read
  /// per-core machine state. Everything else runs the serial path, which
  /// is byte-identical anyway.
  bool parallel_eligible() const {
    if (threads_ <= 1) return false;
    if (machine_.fault_plan() != nullptr) return false;
    if (mm_.check_registry() != nullptr) return false;
    if (mm_.num_spaces() != 1) return false;
    const AddressSpace& space = mm_.space(0);
    if (space.page_table().kind() != PageTableKind::kPspt) return false;
    if (space.scanner_enabled()) return false;
    if (!space.policy().parallel_local_safe()) return false;
    if (!space.pinned() && mm_.capacity_units() < space.area().num_units())
      return false;
    return true;
  }

  static void span_entry(void* ctx) {
    SpanCtx* sc = static_cast<SpanCtx*>(ctx);
    sc->engine->run_local_span(sc->core);
  }

  void dispatch_span(CoreId core) {
    PerCore& pc = cores_[core];
    pc.task.arm(&Engine::span_entry, &pc.span_ctx);
    pool_->submit(&pc.task);
    pc.span_inflight = true;
  }

  /// Rendezvous with `core`'s span before touching its state: steal the
  /// task if no worker picked it up yet (runs it inline — on a saturated
  /// host the engine degrades to serial instead of blocking), else wait.
  void complete_span(CoreId core) {
    PerCore& pc = cores_[core];
    if (pc.task.try_claim())
      pc.task.run_claimed();
    else
      pc.task.wait();
    pc.span_inflight = false;
  }

  void release_barrier_if_complete(CoreId group) {
    GroupState& g = groups_[group];
    if (g.active == 0 || g.at_barrier != g.active) return;
    const CoreId end = g.first_core + g.num_cores;
    Cycles tmax = 0;
    for (CoreId c = g.first_core; c < end; ++c) {
      if (cores_[c].state == CoreState::kAtBarrier)
        tmax = std::max(tmax, machine_.clock(c));
    }
    for (CoreId c = g.first_core; c < end; ++c) {
      if (cores_[c].state != CoreState::kAtBarrier) continue;
      machine_.counters(c).cycles_barrier += tmax - machine_.clock(c);
      if (sim::trace::EventSink* tr = machine_.trace())
        tr->emit({sim::trace::EventKind::kBarrierWait, c, machine_.clock(c),
                  tmax - machine_.clock(c), kInvalidUnit, 0, 0, 0,
                  cores_[c].tenant});
      machine_.set_clock(c, tmax);
      cores_[c].state = CoreState::kRunning;
      heap_.push(pack(tmax, c));
    }
    g.at_barrier = 0;
  }

  /// Execute ONE engine event for `core` (assumed at the heap root): one
  /// page of an in-progress access op, or the next stream op. Shared
  /// resources (PCIe link, page-table locks, invalidation slot) are thereby
  /// updated in near-global time order, so queueing is resolved at page
  /// granularity. Returns false when the core left the heap (barrier/end).
  bool execute_event(CoreId core) {
    PerCore& pc = cores_[core];
    if (pc.has_pending) {
      const wl::Op& op = pc.pending;
      const Vpn vpn =
          pc.area_base + op.vpn + static_cast<Vpn>(pc.progress) * op.stride;
      for (std::uint16_t r = 0; r < op.repeat; ++r) {
        const Cycles now = machine_.clock(core);
        machine_.advance(core, mm_.access(core, vpn, op.write, now));
      }
      if (op.cycles > 0) {
        machine_.counters(core).cycles_compute += op.cycles;
        machine_.advance(core, op.cycles);
      }
      if (++pc.progress >= op.count) pc.has_pending = false;
      return true;
    }

    wl::Op op;
    if (pc.has_fetched) {
      op = pc.fetched;
      pc.has_fetched = false;
    } else {
      op = pc.stream->next();
    }
    switch (op.kind) {
      case wl::OpKind::kAccess: {
        CMCP_CHECK(op.count > 0);
        pc.pending = op;
        pc.progress = 0;
        pc.has_pending = true;
        return true;
      }
      case wl::OpKind::kCompute: {
        machine_.counters(core).cycles_compute += op.cycles;
        machine_.advance(core, op.cycles);
        return true;
      }
      case wl::OpKind::kSyscall: {
        // IHK offload: request over IKC/PCIe, host service, response back.
        // The calling core blocks for the whole round trip (paper section
        // 2.1: "heavy system calls are shipped to and executed on the
        // host"). The shared link makes a syscall-heavy tenant queue behind
        // (and delay) its neighbors' page traffic.
        const sim::CostModel& cost = machine_.cost();
        metrics::CoreCounters& ctr = machine_.counters(core);
        const Cycles start = machine_.clock(core) + cost.syscall_local;
        const sim::Machine::PcieTransferResult req = machine_.pcie_transfer(
            core, sim::PcieDir::kDeviceToHost, start,
            cost.syscall_message_bytes + op.count, kInvalidUnit, pc.tenant);
        const Cycles host_done =
            req.done + cost.syscall_host_dispatch + op.cycles;
        const sim::Machine::PcieTransferResult resp = machine_.pcie_transfer(
            core, sim::PcieDir::kHostToDevice, host_done,
            cost.syscall_message_bytes, kInvalidUnit, pc.tenant);
        ++ctr.syscalls;
        ctr.cycles_syscall += resp.done - machine_.clock(core);
        machine_.set_clock(core, resp.done);
        return true;
      }
      case wl::OpKind::kBarrier: {
        pc.state = CoreState::kAtBarrier;
        ++groups_[pc.group].at_barrier;
        heap_.pop_root();
        release_barrier_if_complete(pc.group);
        return false;
      }
      case wl::OpKind::kEnd: {
        pc.state = CoreState::kDone;
        --groups_[pc.group].active;
        heap_.pop_root();
        // A barrier pending among the group's remaining cores may now be
        // complete.
        release_barrier_if_complete(pc.group);
        return false;
      }
    }
    return true;  // unreachable
  }

  sim::Machine& machine_;
  MemoryManager& mm_;
  std::unique_ptr<PerCore[]> cores_;
  std::vector<GroupState> groups_;
  EventHeap heap_;
  Cycles next_due_ = 0;
  unsigned threads_ = 1;
  bool par_ = false;
  std::unique_ptr<common::WorkerPool> pool_;
};

void Engine::run() {
  const CoreId n = machine_.num_cores();
  heap_.reserve(n);
  for (CoreId c = 0; c < n; ++c) heap_.push(pack(0, c));
  next_due_ = mm_.next_periodic_due();
  machine_.set_engine_running(true);

  while (!heap_.empty()) {
    const std::uint64_t rootkey = heap_.root();
    const CoreId core = static_cast<CoreId>(rootkey & kCoreIdMask);
    PerCore& pc = cores_[core];
    if (pc.span_inflight) complete_span(core);
    const Cycles time = rootkey >> kCoreBits;
    const Cycles actual = machine_.clock(core);
    if (actual != time) {
      // Clock advanced (shootdown interrupts, or a completed local span)
      // since this key was set.
      heap_.replace_root(pack(actual, core));
      continue;
    }

    // Periodic work due at or before this event fires first, exactly as
    // when the old engine called run_periodic before every event — for
    // events below next_due_ that call was a no-op, so only batch starts
    // need it. Batches never cross next_due_ (the horizon caps them).
    if (actual >= next_due_) {
      mm_.run_periodic(actual);
      next_due_ = mm_.next_periodic_due();
    }

    // Run batching: keep executing THIS core's events while its packed
    // clock stays the global minimum. Other cores' keys can only be stale
    // LOW (their clocks move up, never down), so the horizon is
    // conservative: the batch can only end early, never late. The first
    // event always runs — the root is the true minimum, matching the old
    // engine's behavior even when run_periodic just advanced this clock.
    const std::uint64_t limit =
        std::min(heap_.second_min(), next_due_ << kCoreBits);
    bool requeue = true;
    do {
      if (!execute_event(core)) {
        requeue = false;
        break;
      }
    } while (pack(machine_.clock(core), core) < limit);

    if (requeue) {
      heap_.replace_root(pack(machine_.clock(core), core));
      // The core now waits for its next turn; in parallel mode a worker
      // uses that wait to run its core-local events ahead of time.
      if (par_) dispatch_span(core);
    }
  }

  machine_.set_engine_running(false);
  for (const GroupState& g : groups_)
    CMCP_CHECK_MSG(g.active == 0 && g.at_barrier == 0,
                   "engine deadlock: cores stuck at a barrier");
}

}  // namespace

void run_engine(sim::Machine& machine, MemoryManager& mm,
                std::span<EngineCoreInit> cores,
                std::span<const EngineGroup> groups, unsigned threads) {
  Engine engine(machine, mm, cores, groups, threads);
  engine.run();
}

}  // namespace cmcp::core
