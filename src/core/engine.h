// The deterministic virtual-time engine, shared by core::Simulation (one
// barrier group spanning the machine) and core::run_multi_tenant (one group
// per tenant core block). Replaces the twin heap loops both used to carry.
//
// Serial semantics (threads == 1) are byte-identical to the original
// engines: always execute the op of the earliest core next, ties broken by
// core id, so shared-resource queueing (PCIe link, page-table locks,
// invalidation slot) resolves in a single reproducible order.
//
// Two optimizations keep those semantics bit-exact (docs/performance.md):
//
//  * Indexed heap, run batching. One packed (time << 11 | core) key per
//    runnable core in a binary min-heap. After popping the earliest core the
//    engine keeps executing ITS events while its packed clock stays below
//    the horizon — the second-smallest heap key, capped by the next periodic
//    tick. Heap keys only go stale LOW (shootdown interrupts advance
//    receivers' clocks), so the horizon is a conservative bound and the
//    batched order equals the one-event-at-a-time order exactly.
//
//  * Parallel local spans (threads > 1, eligible runs). Core-LOCAL events —
//    TLB hits, PTE refills, compute — touch only core-own state (the core's
//    TLB, counters, clock and private PSPT row), so they commute with
//    everything and execute directly on real state from pool workers, while
//    the coordinator thread applies every SHARED interaction (faults,
//    syscalls, barriers, scanner ticks) in exact (virtual_time, core_id)
//    order. Local events emit no trace events, so traces, counters and
//    results are byte-identical at any thread count. Runs where local
//    events could touch shared state fall back to the serial path: see
//    Engine::parallel_eligible.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/memory_manager.h"
#include "sim/machine.h"
#include "workloads/access_stream.h"

namespace cmcp::core {

/// One simulated core's slice of the run.
struct EngineCoreInit {
  std::unique_ptr<wl::AccessStream> stream;
  Asid tenant = 0;     ///< address space the core belongs to
  Vpn area_base = 0;   ///< base VPN of the tenant's computation area
};

/// One barrier group: wl::OpKind::kBarrier synchronizes the cores
/// [first_core, first_core + num_cores) and nobody else.
struct EngineGroup {
  CoreId first_core = 0;
  CoreId num_cores = 0;
};

/// Run every core's stream to completion. `cores` has one entry per app
/// core; `groups` partitions them (group index == tenant asid for
/// multi-tenant runs, one all-cores group otherwise). `threads` > 1 enables
/// the parallel local-span mode when the run is eligible; 1 is the exact
/// serial engine. Aborts via CMCP_CHECK if any group deadlocks at a barrier.
void run_engine(sim::Machine& machine, MemoryManager& mm,
                std::span<EngineCoreInit> cores,
                std::span<const EngineGroup> groups, unsigned threads);

}  // namespace cmcp::core
