// The OS-level hierarchical memory manager (paper's proposed model,
// Fig. 1b/1c): the computation area is partially resident in device RAM and
// backed by host memory over PCIe.
//
// Since the multi-tenant refactor this class is a *coordinator*: it owns the
// shared FrameAllocator, the frame-partition (QoS) policy, and N
// core::AddressSpace instances — each with its own page table, registry and
// replacement policy — contending for the shared frames, PCIe link and
// invalidation slot of one sim::Machine. Single-tenant construction (the
// legacy three-argument constructor) builds exactly one space owning every
// core and behaves byte-identically to the pre-refactor manager; the
// accessors that used to expose "the" page table / policy / area delegate to
// space 0 so existing callers and tests keep working unchanged.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/address_space.h"
#include "mm/address.h"
#include "mm/frame_allocator.h"
#include "mm/frame_partition.h"
#include "mm/page_registry.h"
#include "mm/page_table.h"
#include "policy/policy_factory.h"
#include "policy/replacement_policy.h"
#include "sim/checker.h"
#include "sim/machine.h"

namespace cmcp::core {

/// Factory for user-defined replacement policies (see examples/custom_policy).
/// The host handed to the factory is the policy's AddressSpace.
using PolicyFactory = std::function<std::unique_ptr<policy::ReplacementPolicy>(
    policy::PolicyHost&)>;

struct MemoryManagerConfig {
  PageTableKind pt_kind = PageTableKind::kPspt;
  policy::PolicyParams policy;
  /// When set, overrides `policy` with a user-supplied implementation.
  PolicyFactory custom_policy;
  /// Device frames available to the computation area, in mapping units.
  /// Single-tenant: the shared allocator capacity. Per-tenant specs: the
  /// nominal capacity this space's policy reasons about (0 = derive from
  /// the partition target).
  std::uint64_t capacity_units = 0;
  /// Sequential prefetch: on a major fault, also fetch up to this many
  /// following non-resident units — but only into FREE frames (prefetch
  /// never evicts). 0 disables. Extension feature; see
  /// bench/ablation_prefetch.
  unsigned prefetch_degree = 0;
  /// Asynchronous dirty write-back: the evicting core queues the transfer
  /// and continues (the frame's old contents are staged in a bounce
  /// buffer); the write still occupies the PCIe link. Default off — the
  /// paper's kernel writes back synchronously.
  bool async_writeback = false;
  /// "No data movement" baseline: all units start resident (and pinned —
  /// capacity must cover the footprint). First touches become cheap PTE
  /// faults with no PCIe traffic, matching data that was allocated on the
  /// device to begin with.
  bool preload = false;
};

/// One tenant of a multi-tenant manager.
struct AddressSpaceSpec {
  mm::ComputationArea area;
  MemoryManagerConfig config;
  /// QoS parameters consumed by the frame partition.
  mm::TenantShare share;
};

class MemoryManager final {
 public:
  /// Single-tenant (legacy) construction: one address space owning every
  /// core, PartitionKind::kNone. Byte-identical to the pre-refactor manager.
  MemoryManager(sim::Machine& machine, const mm::ComputationArea& area,
                const MemoryManagerConfig& config);

  /// Multi-tenant construction: one address space per spec (asid == index),
  /// all contending for `shared_capacity_units` frames under `partition`.
  /// The machine must have been built with
  /// MachineConfig::num_address_spaces == specs.size(); core -> space
  /// assignment is the caller's job via Machine::set_core_space.
  MemoryManager(sim::Machine& machine, const std::vector<AddressSpaceSpec>& specs,
                std::uint64_t shared_capacity_units, mm::PartitionKind partition);

  /// One reference by `core` to base page `vpn` at virtual time `now`,
  /// routed to the core's address space. Returns the cycles the reference
  /// consumed on `core` (the caller advances the core clock).
  Cycles access(CoreId core, Vpn vpn, bool write, Cycles now);

  /// Run scanner / policy ticks that are due at or before `watermark`, for
  /// every address space in asid order. The engine calls this with a
  /// monotonically non-decreasing global time.
  void run_periodic(Cycles watermark);

  /// Earliest pending periodic tick over all spaces: run_periodic(w) is a
  /// no-op for any w below this, so the engine batches events between due
  /// times without calling into the manager at all.
  Cycles next_periodic_due() const {
    Cycles due = ~Cycles{0};
    for (const std::unique_ptr<AddressSpace>& space : spaces_)
      due = std::min(due, space->next_tick());
    return due;
  }

  // --- multi-tenant surface ------------------------------------------------
  unsigned num_spaces() const { return static_cast<unsigned>(spaces_.size()); }
  AddressSpace& space(Asid asid) { return *spaces_[asid]; }
  const AddressSpace& space(Asid asid) const { return *spaces_[asid]; }
  const mm::FramePartition& partition() const { return partition_; }

  /// Pick the victim space for a denied allocation by `requester` and make
  /// it evict one unit (initiated by `core`, the faulting core). Returns
  /// cycles consumed at `core`. Exactly one frame becomes free — unless
  /// latent ECC poison surfaces on the victim frame (it is quarantined and
  /// the caller must evict again).
  Cycles evict_for(Asid requester, CoreId core, Cycles now);

  /// Called by a space right after it quarantines a frame: recompute the
  /// partition's floors and targets against the shrunk usable capacity so
  /// tenants degrade proportionally instead of crashing.
  void on_frames_quarantined() {
    partition_.set_capacity(allocator_.usable_capacity());
  }

  /// Shootdown-interference accounting: `cause` invalidated `units` TLB
  /// entries on `receiver`'s cores. Mirrors the per-receiver
  /// remote_invalidations_received counter exactly. Only recorded when
  /// num_spaces() > 1 (callers gate, keeping the single-tenant path free).
  void record_interference(Asid cause, Asid receiver, std::uint64_t units) {
    interference_[cause * spaces_.size() + receiver] += units;
  }

  /// interference()[cause * num_spaces() + receiver] = remote TLB entries
  /// invalidated on `receiver`'s cores by shootdowns `cause` initiated.
  const std::vector<std::uint64_t>& interference() const { return interference_; }

  // --- single-tenant compatibility (delegates to space 0) ------------------
  const mm::PageTable& page_table() const { return spaces_[0]->page_table(); }
  const mm::PageRegistry& registry() const { return spaces_[0]->registry(); }
  const mm::FrameAllocator& allocator() const { return allocator_; }
  /// Mutable allocator access for SimCheck fault-injection tests ONLY
  /// (mirrors AddressSpace::mutable_page_table_for_test).
  mm::FrameAllocator& mutable_allocator_for_test() { return allocator_; }
  /// Shared device capacity in mapping units (the allocator's capacity).
  std::uint64_t capacity_units() const { return allocator_.capacity(); }
  const mm::ComputationArea& area() const { return spaces_[0]->area(); }
  policy::ReplacementPolicy& policy() { return spaces_[0]->policy(); }
  const policy::ReplacementPolicy& policy() const { return spaces_[0]->policy(); }
  bool scanner_enabled() const { return spaces_[0]->scanner_enabled(); }
  std::uint64_t scans_completed() const { return spaces_[0]->scans_completed(); }
  bool pinned() const { return spaces_[0]->pinned(); }

  /// Attach a SimCheck registry (non-owning, may be null). Every address
  /// space then runs invariant sweeps at its protocol checkpoints. Only
  /// effective when CMCP_SIMCHECK_ENABLED compiles the call sites in.
  void set_check_registry(sim::CheckRegistry* checks) { checks_ = checks; }
  sim::CheckRegistry* check_registry() const { return checks_; }

  /// Mutable page-table access for SimCheck fault-injection tests ONLY
  /// (e.g. Pspt::corrupt_count_for_test). Product code must never use it.
  mm::PageTable& mutable_page_table_for_test() {
    return spaces_[0]->mutable_page_table_for_test();
  }

  /// Histogram of resident units by number of mapping cores (space 0).
  std::vector<std::uint64_t> sharing_histogram() const {
    return spaces_[0]->sharing_histogram();
  }

 private:
  sim::Machine& machine_;
  mm::FrameAllocator allocator_;
  mm::FramePartition partition_;
  std::vector<std::unique_ptr<AddressSpace>> spaces_;

  sim::CheckRegistry* checks_ = nullptr;  ///< non-owning; null = unchecked

  /// Engine-thread-only (like the per-space fault-path state): flattened
  /// [cause][receiver] matrix of remote TLB invalidations across spaces.
  std::vector<std::uint64_t> interference_;

  friend class AddressSpace;
};

}  // namespace cmcp::core
