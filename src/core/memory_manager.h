// The OS-level hierarchical memory manager (paper's proposed model,
// Fig. 1b/1c): the computation area is partially resident in device RAM and
// backed by host memory over PCIe; this class handles every memory
// reference, TLB fill, page fault, eviction, shootdown and transfer, and
// charges the cycle costs to the right core and category.
#pragma once

#include <functional>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "mm/address.h"
#include "mm/frame_allocator.h"
#include "mm/page_registry.h"
#include "mm/page_table.h"
#include "policy/policy_factory.h"
#include "policy/replacement_policy.h"
#include "sim/checker.h"
#include "sim/machine.h"

namespace cmcp::core {

/// Factory for user-defined replacement policies (see examples/custom_policy).
using PolicyFactory = std::function<std::unique_ptr<policy::ReplacementPolicy>(
    policy::PolicyHost&)>;

struct MemoryManagerConfig {
  PageTableKind pt_kind = PageTableKind::kPspt;
  policy::PolicyParams policy;
  /// When set, overrides `policy` with a user-supplied implementation.
  PolicyFactory custom_policy;
  /// Device frames available to the computation area, in mapping units.
  std::uint64_t capacity_units = 0;
  /// Sequential prefetch: on a major fault, also fetch up to this many
  /// following non-resident units — but only into FREE frames (prefetch
  /// never evicts). 0 disables. Extension feature; see
  /// bench/ablation_prefetch.
  unsigned prefetch_degree = 0;
  /// Asynchronous dirty write-back: the evicting core queues the transfer
  /// and continues (the frame's old contents are staged in a bounce
  /// buffer); the write still occupies the PCIe link. Default off — the
  /// paper's kernel writes back synchronously.
  bool async_writeback = false;
  /// "No data movement" baseline: all units start resident (and pinned —
  /// capacity must cover the footprint). First touches become cheap PTE
  /// faults with no PCIe traffic, matching data that was allocated on the
  /// device to begin with.
  bool preload = false;
};

class MemoryManager final : public policy::PolicyHost {
 public:
  MemoryManager(sim::Machine& machine, const mm::ComputationArea& area,
                const MemoryManagerConfig& config);

  /// One reference by `core` to base page `vpn` at virtual time `now`.
  /// Returns the cycles the reference consumed on `core` (the caller
  /// advances the core clock).
  Cycles access(CoreId core, Vpn vpn, bool write, Cycles now);

  /// Run scanner / policy ticks that are due at or before `watermark`.
  /// The engine calls this with a monotonically non-decreasing global time.
  void run_periodic(Cycles watermark);

  // --- PolicyHost ----------------------------------------------------------
  std::uint64_t capacity_units() const override { return config_.capacity_units; }
  unsigned num_cores() const override { return machine_.num_cores(); }
  bool unit_accessed(const mm::ResidentPage& page) const override;
  Cycles core_clock(CoreId core) const override;
  Cycles clear_accessed_and_shootdown(mm::ResidentPage& page, CoreId initiator,
                                      Cycles now) override;

  // --- introspection -------------------------------------------------------
  const mm::PageTable& page_table() const { return *page_table_; }
  const mm::PageRegistry& registry() const { return registry_; }
  const mm::FrameAllocator& allocator() const { return allocator_; }
  const mm::ComputationArea& area() const { return area_; }
  policy::ReplacementPolicy& policy() { return *policy_; }
  const policy::ReplacementPolicy& policy() const { return *policy_; }
  bool scanner_enabled() const { return policy_->wants_scanner(); }
  std::uint64_t scans_completed() const CMCP_EXCLUDES(scan_mu_) {
    common::LockGuard lock(scan_mu_);
    return scans_completed_;
  }
  bool pinned() const { return pinned_; }

  /// Attach a SimCheck registry (non-owning, may be null). The memory
  /// manager then runs invariant sweeps at its protocol checkpoints. Only
  /// effective when CMCP_SIMCHECK_ENABLED compiles the call sites in.
  void set_check_registry(sim::CheckRegistry* checks) { checks_ = checks; }
  sim::CheckRegistry* check_registry() const { return checks_; }

  /// Mutable page-table access for SimCheck fault-injection tests ONLY
  /// (e.g. Pspt::corrupt_count_for_test). Product code must never use it.
  mm::PageTable& mutable_page_table_for_test() { return *page_table_; }

  /// Histogram of resident units by number of mapping cores:
  /// result[c] = units currently mapped by exactly c cores (Fig. 6 data).
  std::vector<std::uint64_t> sharing_histogram() const;

 private:
  /// Evict one unit chosen by the policy; returns cycles consumed at
  /// `faulting_core` and frees a frame.
  Cycles evict_one(CoreId faulting_core, Cycles now);

  /// Issue sequential prefetches following `unit`; returns issue cycles.
  Cycles prefetch_after(CoreId core, UnitIdx unit, Cycles now);

  /// Shoot down `unit` on `targets`, handling the initiator's own TLB
  /// locally. Returns initiator cycles.
  Cycles shootdown_unit(CoreId initiator, Cycles now, CoreMask targets,
                        UnitIdx unit);

  void preload_all();

  sim::Machine& machine_;
  mm::ComputationArea area_;
  MemoryManagerConfig config_;
  std::unique_ptr<mm::PageTable> page_table_;
  mm::FrameAllocator allocator_;
  mm::PageRegistry registry_;
  std::unique_ptr<policy::ReplacementPolicy> policy_;

  /// Address-space-wide page-table lock (regular tables only).
  Cycles pt_lock_busy_until_ = 0;

  sim::CheckRegistry* checks_ = nullptr;  ///< non-owning; null = unchecked

  /// Serializes the access-bit scanner: at most one sweep mutates the flush
  /// batch at a time. Ordered above Machine::shootdown_mu_ (the sweep
  /// flushes batches into the invalidation slot while holding this lock) —
  /// see the hierarchy in common/mutex.h.
  mutable common::Mutex scan_mu_;
  /// Scanner shootdown batch, reused across scan passes (reserved once in
  /// the constructor so a sweep allocates nothing).
  std::vector<sim::Machine::BatchItem> scan_flush_ CMCP_GUARDED_BY(scan_mu_);
  std::uint64_t scans_completed_ CMCP_GUARDED_BY(scan_mu_) = 0;

  /// Engine-thread-only: run_periodic's watermark cursor. The engine calls
  /// run_periodic from exactly one thread (its contract), so this needs no
  /// lock — the early-out check must stay cheap on the per-step path.
  Cycles next_tick_ = 0;
  /// Pinned mode: preloaded with full capacity — no evictions ever, policy
  /// bookkeeping bypassed.
  bool pinned_ = false;
};

}  // namespace cmcp::core
