// One tenant's address space: asid + computation area + its own page table
// (PSPT or regular), page registry, replacement-policy instance and scanner
// state. The fault path, eviction protocol and scanner sweeps that used to
// live directly on core::MemoryManager now run here, per space; the
// MemoryManager coordinates N of these over one shared FrameAllocator and
// one sim::Machine (shared PCIe link, shared invalidation slot).
//
// An AddressSpace is the PolicyHost of its policy: policies see only their
// own space's resident set — no cross-tenant leakage — and can read their
// tenant identity via asid().
#pragma once

#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "mm/address.h"
#include "mm/frame_allocator.h"
#include "mm/page_registry.h"
#include "mm/page_table.h"
#include "policy/replacement_policy.h"
#include "sim/checker.h"
#include "sim/machine.h"

namespace cmcp::core {

class MemoryManager;
struct MemoryManagerConfig;

class AddressSpace final : public policy::PolicyHost {
 public:
  /// `policy_capacity_units` is the device capacity this space's policy
  /// reasons about (CMCP's p ratio): the full allocator capacity for single
  /// tenant, the partition target/nominal share for multi-tenant.
  AddressSpace(MemoryManager& mm, Asid asid, const mm::ComputationArea& area,
               const MemoryManagerConfig& config,
               std::uint64_t policy_capacity_units);
  ~AddressSpace() override;

  /// One reference by `core` to base page `vpn` at virtual time `now`.
  /// Returns the cycles the reference consumed on `core`.
  Cycles access(CoreId core, Vpn vpn, bool write, Cycles now);

  /// Sentinel: the reference is not servable by the core-local fast path.
  static constexpr Cycles kNotLocal = ~Cycles{0};

  /// The TLB-hit / PTE-refill fast path of access(), factored out so the
  /// parallel engine's local spans and the serial fault path share one
  /// implementation. Returns the cycles consumed, or kNotLocal when the
  /// reference needs the shared fault path (the state is then untouched).
  ///
  /// Touches ONLY core-own state — core's TLB, core's counters, and (PSPT)
  /// core's private PTE row — which is the parallel engine's local-phase
  /// contract (docs/architecture.md). With a regular page table the PTE is
  /// shared, so this path is engine-thread-only there.
  Cycles try_local_access(CoreId core, Vpn vpn, bool write) {
    const sim::CostModel& cost = machine_.cost();
    metrics::CoreCounters& ctr = machine_.counters(core);
    const UnitIdx unit = area_.unit_of(vpn);
    sim::Tlb& tlb = machine_.tlb(core);

    if (tlb.lookup(unit)) {
      const Cycles c = cost.tlb_hit + cost.memory_access;
      if (write) page_table_->mark_dirty(core, unit);
      ++ctr.accesses;
      ctr.cycles_mem += c;
      return c;
    }

    if (page_table_->has_mapping(core, unit)) {
      // Walk hit a valid PTE: refill the TLB, set attribute bits.
      page_table_->mark_accessed(core, unit);
      if (write) page_table_->mark_dirty(core, unit);
      tlb.insert(unit);
      const Cycles c = cost.walk_cost(area_.page_size()) + cost.memory_access;
      ++ctr.accesses;
      ++ctr.dtlb_misses;
      ctr.cycles_mem += c;
      return c;
    }
    return kNotLocal;
  }

  /// Run this space's scanner / policy ticks due at or before `watermark`.
  void run_periodic(Cycles watermark);

  /// Virtual time of the next pending periodic tick: run_periodic(w) is a
  /// no-op for any w below this. The engine caches the minimum over spaces
  /// so its hot loop skips the per-event run_periodic call entirely.
  Cycles next_tick() const { return next_tick_; }

  /// Evict one unit chosen by this space's policy; returns cycles consumed
  /// at `faulting_core` (which may belong to ANOTHER space under QoS
  /// priority eviction) and frees a frame in the shared allocator — unless
  /// latent ECC poison surfaces on the victim's frame, in which case the
  /// frame is quarantined instead and the caller's allocate loop must evict
  /// again.
  Cycles evict_one(CoreId faulting_core, Cycles now);

  // --- PolicyHost ----------------------------------------------------------
  std::uint64_t capacity_units() const override { return policy_capacity_units_; }
  unsigned num_cores() const override;
  Asid asid() const override { return asid_; }
  bool unit_accessed(const mm::ResidentPage& page) const override;
  Cycles core_clock(CoreId core) const override;
  Cycles clear_accessed_and_shootdown(mm::ResidentPage& page, CoreId initiator,
                                      Cycles now) override;

  // --- introspection -------------------------------------------------------
  const mm::PageTable& page_table() const { return *page_table_; }
  const mm::PageRegistry& registry() const { return registry_; }
  const mm::ComputationArea& area() const { return area_; }
  policy::ReplacementPolicy& policy() { return *policy_; }
  const policy::ReplacementPolicy& policy() const { return *policy_; }
  bool scanner_enabled() const { return policy_->wants_scanner(); }
  std::uint64_t scans_completed() const CMCP_EXCLUDES(scan_mu_) {
    common::LockGuard lock(scan_mu_);
    return scans_completed_;
  }
  bool pinned() const { return pinned_; }

  /// Mutable page-table access for SimCheck fault-injection tests ONLY.
  mm::PageTable& mutable_page_table_for_test() { return *page_table_; }

  /// Histogram of resident units by number of mapping cores (Fig. 6 data).
  std::vector<std::uint64_t> sharing_histogram() const;

 private:
  Cycles prefetch_after(CoreId core, UnitIdx unit, Cycles now);

  /// Allocate a frame for this space, screening each candidate against the
  /// fault plan's ECC poison set: poisoned frames are quarantined (cost
  /// added to `*cycles`, events stamped at `base + *cycles`) and the next
  /// free frame is tried. With no plan attached this is exactly the
  /// pre-fault may_allocate + allocate sequence. `honor_partition` is false
  /// on the retry directly after an eviction this tenant ordered (the
  /// pre-fault contract: it paid for the frame and takes it).
  Pfn allocate_frame(CoreId core, Cycles base, Cycles* cycles,
                     bool honor_partition);

  /// Retire `pfn` (ECC poison surfaced): quarantine it in the shared
  /// allocator, shrink the partition, emit trace events and account the
  /// recovery. Returns the detection cost in cycles.
  Cycles quarantine_frame(CoreId core, Cycles at, Pfn pfn, UnitIdx unit);

  /// Shoot down `unit` on `targets`, handling the initiator's own TLB
  /// locally. Returns initiator cycles.
  Cycles shootdown_unit(CoreId initiator, Cycles now, const CoreMask& targets,
                        UnitIdx unit);

  void preload_all();

  MemoryManager& mm_;
  sim::Machine& machine_;
  mm::FrameAllocator& allocator_;  ///< shared across spaces, owned by mm_
  Asid asid_;
  mm::ComputationArea area_;
  std::unique_ptr<mm::PageTable> page_table_;
  mm::PageRegistry registry_;
  std::unique_ptr<policy::ReplacementPolicy> policy_;
  std::uint64_t policy_capacity_units_;
  unsigned prefetch_degree_;
  bool async_writeback_;

  /// Address-space-wide page-table lock (regular tables only).
  Cycles pt_lock_busy_until_ = 0;

  /// Serializes this space's access-bit scanner: at most one sweep mutates
  /// the flush batch at a time. Ordered above Machine::shootdown_mu_ (the
  /// sweep flushes batches into the invalidation slot while holding this
  /// lock) — see the hierarchy in common/mutex.h.
  mutable common::Mutex scan_mu_;
  /// Scanner shootdown batch, reused across scan passes (reserved once in
  /// the constructor so a sweep allocates nothing).
  std::vector<sim::Machine::BatchItem> scan_flush_ CMCP_GUARDED_BY(scan_mu_);
  std::uint64_t scans_completed_ CMCP_GUARDED_BY(scan_mu_) = 0;

  /// Engine-thread-only: run_periodic's watermark cursor (the engine calls
  /// run_periodic from exactly one thread, its contract).
  Cycles next_tick_ = 0;
  /// Pinned mode: preloaded with full capacity — no evictions ever.
  bool pinned_ = false;

  friend class MemoryManager;
};

}  // namespace cmcp::core
