#include "core/address_space.h"

#include <algorithm>
#include <array>
#include <vector>

#include "common/assert.h"
#include "core/memory_manager.h"
#include "mm/pspt.h"
#include "mm/regular_page_table.h"
#include "policy/policy_factory.h"
#include "sim/fault_plan.h"

namespace cmcp::core {

namespace {

std::unique_ptr<mm::PageTable> make_page_table(PageTableKind kind, CoreId cores,
                                               UnitIdx num_units) {
  std::unique_ptr<mm::PageTable> pt;
  if (kind == PageTableKind::kRegular)
    pt = std::make_unique<mm::RegularPageTable>(cores);
  else
    pt = std::make_unique<mm::Pspt>(cores);
  pt->reserve_units(num_units);
  return pt;
}

}  // namespace

// SimCheck checkpoints compile out entirely in Release (CMCP_SIMCHECK=OFF):
// the fault path then carries no extra branch at all, which the
// trace-determinism CI step verifies byte-for-byte.
#if CMCP_SIMCHECK_ENABLED
#define CMCP_SIMCHECK_POINT(point)                 \
  do {                                             \
    if (sim::CheckRegistry* cr = mm_.check_registry(); cr != nullptr) \
      cr->run(sim::CheckPoint::point);             \
  } while (0)
#else
#define CMCP_SIMCHECK_POINT(point) \
  do {                             \
  } while (0)
#endif

AddressSpace::AddressSpace(MemoryManager& mm, Asid asid,
                           const mm::ComputationArea& area,
                           const MemoryManagerConfig& config,
                           std::uint64_t policy_capacity_units)
    : mm_(mm),
      machine_(mm.machine_),
      allocator_(mm.allocator_),
      asid_(asid),
      area_(area),
      page_table_(
          make_page_table(config.pt_kind, machine_.num_cores(), area.num_units())),
      policy_capacity_units_(policy_capacity_units),
      prefetch_degree_(config.prefetch_degree),
      async_writeback_(config.async_writeback) {
  CMCP_CHECK(policy_capacity_units_ > 0);
  policy_ = config.custom_policy ? config.custom_policy(*this)
                                 : policy::make_policy(*this, config.policy);
  // Dense unit-indexed storage (docs/performance.md) is sized once here so
  // the per-access path never grows a vector: the registry's unit index and
  // every TLB's unit -> slot array. TLB reservation is grow-only, so with
  // several spaces every core's TLB ends up covering the largest area it
  // could ever cache (each core only ever holds its own space's units).
  registry_.reserve_units(area_.num_units());
  for (CoreId c = 0; c < machine_.num_cores(); ++c)
    machine_.tlb(c).reserve_units(area_.num_units());
  machine_.tlb(machine_.scanner_core(asid_)).reserve_units(area_.num_units());
  scan_flush_.reserve(machine_.cost().scanner_flush_batch);
  next_tick_ = machine_.cost().scan_period;
  if (config.preload) {
    CMCP_CHECK_MSG(config.capacity_units >= area_.num_units(),
                   "preload requires capacity covering the footprint");
    pinned_ = true;
    preload_all();
  }
}

AddressSpace::~AddressSpace() = default;

unsigned AddressSpace::num_cores() const { return machine_.num_cores(); }

void AddressSpace::preload_all() {
  // Residency without mappings: data was placed in device RAM up front, and
  // cores establish PTEs on first touch (minor faults, no PCIe traffic).
  for (UnitIdx unit = 0; unit < area_.num_units(); ++unit) {
    const Pfn pfn = allocator_.allocate(asid_);
    CMCP_CHECK(pfn != kInvalidPfn);
    registry_.insert(unit, pfn, 0);
  }
}

Cycles AddressSpace::access(CoreId core, Vpn vpn, bool write, Cycles now) {
  // TLB hit / PTE refill: one shared implementation with the parallel
  // engine's local spans (header). Touches nothing when it declines.
  const Cycles fast = try_local_access(core, vpn, write);
  if (fast != kNotLocal) return fast;

  const sim::CostModel& cost = machine_.cost();
  metrics::CoreCounters& ctr = machine_.counters(core);
  ++ctr.accesses;

  const UnitIdx unit = area_.unit_of(vpn);
  sim::Tlb& tlb = machine_.tlb(core);

  // dTLB miss, walk found no valid PTE: page fault.
  ++ctr.dtlb_misses;
  const Cycles mem_cycles = cost.walk_cost(area_.page_size());
  ctr.cycles_mem += mem_cycles;
  Cycles fault_cycles = cost.fault_entry;
  Cycles lock_wait = 0;
  Cycles pcie_wait = 0;

  if (page_table_->kind() == PageTableKind::kRegular) {
    // Address-space-wide lock: every fault in the process serializes here.
    const Cycles at = now + mem_cycles + fault_cycles;
    const Cycles acquired = std::max(at, pt_lock_busy_until_);
    lock_wait = acquired - at;
  } else {
    // PSPT: synchronization only between affected cores; short hold.
    fault_cycles += cost.pspt_lock_hold;
  }

  sim::trace::EventSink* const tr = machine_.trace();
  bool was_major = false;
  std::uint64_t trace_map_count = 0;
  std::uint64_t trace_prefetch_hit = 0;
  std::uint64_t trace_evicted = 0;

  mm::ResidentPage* page = registry_.find(unit);
  if (page != nullptr) {
    // Resident but not mapped by this core (PSPT private PTE miss, a
    // preloaded unit's first touch, or a prefetched unit): copy the
    // translation — no data moves.
    ++ctr.minor_faults;
    fault_cycles += cost.pte_copy_lookup + cost.map_cost(area_.page_size());
    if (page->ready_at != 0) {
      // First touch of a prefetched unit: its transfer may still be in
      // flight; stall until the data lands.
      const Cycles at = now + mem_cycles + fault_cycles + lock_wait;
      if (page->ready_at > at) pcie_wait += page->ready_at - at;
      page->ready_at = 0;
      ++ctr.prefetch_hits;
      trace_prefetch_hit = 1;
    }
    page_table_->map(core, unit, page->pfn);
    page->core_map_count = page_table_->core_map_count(unit);
    trace_map_count = page->core_map_count;
    if (!pinned_) policy_->on_core_map_grow(*page);
  } else {
    // Major fault: the unit lives in host memory.
    CMCP_CHECK_MSG(!pinned_, "pinned run should never take a major fault");
    ++ctr.major_faults;
    was_major = true;

    // The partition decides whether this tenant may take a free frame; when
    // it may not (pool exhausted or frames earmarked for under-floor
    // neighbors), the partition also picks which space must evict. Under
    // PartitionKind::kNone this reduces exactly to "allocate; if full,
    // evict from yourself" — the pre-refactor behavior. With a fault plan
    // attached, ECC-poisoned frames surfacing at allocation (and latent
    // poison swallowing the frame an eviction was meant to free) re-enter
    // the loop; each quarantine consumes its poison, so it terminates.
    Pfn pfn = allocate_frame(core, now + mem_cycles + lock_wait, &fault_cycles,
                             /*honor_partition=*/true);
    while (pfn == kInvalidPfn) {
      fault_cycles +=
          mm_.evict_for(asid_, core, now + mem_cycles + fault_cycles + lock_wait);
      trace_evicted = 1;
      pfn = allocate_frame(core, now + mem_cycles + lock_wait, &fault_cycles,
                           /*honor_partition=*/false);
    }

    // Fetch the unit's data from the host.
    const Cycles ready = now + mem_cycles + fault_cycles + lock_wait;
    const sim::Machine::PcieTransferResult xfer = machine_.pcie_transfer(
        core, sim::PcieDir::kHostToDevice, ready, unit_bytes(area_.page_size()),
        unit, asid_);
    pcie_wait += xfer.done - ready;
    ctr.pcie_bytes_in += unit_bytes(area_.page_size());

    mm::ResidentPage& fresh = registry_.insert(unit, pfn, now);
    page_table_->map(core, unit, pfn);
    fresh.core_map_count = page_table_->core_map_count(unit);
    fault_cycles += cost.map_cost(area_.page_size()) + cost.policy_op;
    policy_->on_insert(fresh);

    if (prefetch_degree_ > 0)
      fault_cycles += prefetch_after(core, unit, xfer.done);
  }

  if (page_table_->kind() == PageTableKind::kRegular) {
    // Lock is held across the table update (and any shootdown inside
    // evict_one), but not across the PCIe transfer.
    pt_lock_busy_until_ =
        now + mem_cycles + fault_cycles + lock_wait + cost.regular_pt_lock_hold;
    fault_cycles += cost.regular_pt_lock_hold;
  }

  page_table_->mark_accessed(core, unit);
  if (write) page_table_->mark_dirty(core, unit);
  tlb.insert(unit);

  ctr.cycles_fault += fault_cycles;
  ctr.cycles_lock_wait += lock_wait;
  ctr.cycles_pcie_wait += pcie_wait;
  const Cycles mem_tail = cost.memory_access;
  ctr.cycles_mem += mem_tail;
  const Cycles total = mem_cycles + fault_cycles + lock_wait + pcie_wait + mem_tail;
  if (tr != nullptr) {
    if (was_major)
      tr->emit({sim::trace::EventKind::kMajorFault, core, now, total, unit,
                trace_evicted, pcie_wait, 0, asid_});
    else
      tr->emit({sim::trace::EventKind::kMinorFault, core, now, total, unit,
                trace_map_count, trace_prefetch_hit, 0, asid_});
  }
  CMCP_SIMCHECK_POINT(kAfterFault);
  return total;
}

Cycles AddressSpace::prefetch_after(CoreId core, UnitIdx unit, Cycles now) {
  // Sequential readahead into free frames only: prefetch must never evict
  // (a wrong guess would then cost a real page its residency), and under a
  // static reserve it must not raid frames earmarked for under-floor
  // neighbors either. The transfers queue on the PCIe link asynchronously;
  // the issuing core only pays the per-request setup.
  const sim::CostModel& cost = machine_.cost();
  metrics::CoreCounters& ctr = machine_.counters(core);
  Cycles issue_cycles = 0;
  UnitIdx next = unit + 1;
  for (unsigned i = 0; i < prefetch_degree_; ++i, ++next) {
    if (next >= area_.num_units()) break;
    if (!mm_.partition().may_allocate(asid_, allocator_)) break;
    if (registry_.find(next) != nullptr) continue;
    if (page_table_->any_mapping(next)) continue;
    const Pfn pfn = allocate_frame(core, now, &issue_cycles,
                                   /*honor_partition=*/true);
    if (pfn == kInvalidPfn) break;  // quarantines may have drained the pool
    const sim::Machine::PcieTransferResult xfer = machine_.pcie_transfer(
        core, sim::PcieDir::kHostToDevice, now, unit_bytes(area_.page_size()),
        next, asid_);
    mm::ResidentPage& pg = registry_.insert(next, pfn, now);
    pg.ready_at = xfer.done;
    pg.core_map_count = 0;  // no core maps it yet
    policy_->on_insert(pg);
    ctr.pcie_bytes_in += unit_bytes(area_.page_size());
    ++ctr.prefetches;
    issue_cycles += cost.policy_op;  // request setup
  }
  return issue_cycles;
}

Pfn AddressSpace::allocate_frame(CoreId core, Cycles base, Cycles* cycles,
                                 bool honor_partition) {
  sim::FaultPlan* const plan = machine_.fault_plan();
  for (;;) {
    if (honor_partition && !mm_.partition().may_allocate(asid_, allocator_))
      return kInvalidPfn;
    const Pfn pfn = allocator_.allocate(asid_);
    if (pfn == kInvalidPfn) return pfn;
    if (plan == nullptr || !plan->surfaces_at_alloc(pfn)) return pfn;
    // ECC poison surfaced while the kernel scrubbed the fresh frame:
    // quarantine it and try the next free frame. Capacity just shrank, so
    // the partition is consulted again before the retry.
    *cycles += quarantine_frame(core, base + *cycles, pfn, kInvalidUnit);
    honor_partition = true;
  }
}

Cycles AddressSpace::quarantine_frame(CoreId core, Cycles at, Pfn pfn,
                                      UnitIdx unit) {
  sim::FaultPlan* const plan = machine_.fault_plan();
  const sim::FaultPlanConfig& fc = plan->config();
  allocator_.quarantine(pfn);
  CMCP_CHECK_MSG(allocator_.usable_capacity() > 0,
                 "every device frame is quarantined");
  mm_.on_frames_quarantined();
  metrics::CoreCounters& ctr = machine_.counters(core);
  ++ctr.faults_injected;
  ctr.cycles_recovery += fc.ecc_detect_cycles;
  plan->record(sim::FaultKind::kEccPoison, asid_, 1, 0, false,
               fc.ecc_detect_cycles);
  plan->record_quarantine();
  if (sim::trace::EventSink* tr = machine_.trace()) {
    constexpr auto kEcc =
        static_cast<std::uint64_t>(sim::FaultKind::kEccPoison);
    tr->emit({sim::trace::EventKind::kFaultInject, core, at,
              fc.ecc_detect_cycles, unit, kEcc, 1, pfn, asid_});
    tr->emit({sim::trace::EventKind::kQuarantine, core, at,
              fc.ecc_detect_cycles, unit, pfn, allocator_.usable_capacity(),
              0, asid_});
  }
  return fc.ecc_detect_cycles;
}

Cycles AddressSpace::shootdown_unit(CoreId initiator, Cycles now,
                                    const CoreMask& targets, UnitIdx unit) {
  const sim::CostModel& cost = machine_.cost();
  const std::array<UnitIdx, 1> units = {unit};
  const bool self = targets.test(initiator);
  // Cross-tenant interference accounting: every remote invalidation lands
  // on THIS space's cores (only they can map this space's units); the cause
  // is whoever initiates — under QoS priority eviction that can be a
  // faulting core of another space.
  if (mm_.num_spaces() > 1)
    mm_.record_interference(machine_.space_of_core(initiator), asid_,
                            targets.count() - (self ? 1u : 0u));
  if (!self) return machine_.shootdown(initiator, now, targets, units);
  // The initiator invalidates its own TLB directly (INVLPG, no IPI); only
  // this path pays for a mask copy to drop the initiator bit.
  machine_.tlb(initiator).invalidate(unit);
  CoreMask remote = targets;
  remote.clear(initiator);
  return cost.invlpg + machine_.shootdown(initiator, now, remote, units);
}

Cycles AddressSpace::evict_one(CoreId faulting_core, Cycles now) {
  const sim::CostModel& cost = machine_.cost();
  metrics::CoreCounters& ctr = machine_.counters(faulting_core);

  Cycles cycles = cost.policy_op;
  mm::ResidentPage* victim = policy_->pick_victim(faulting_core, cycles);
  CMCP_CHECK_MSG(victim != nullptr, "no victim with resident pages present");

  sim::trace::EventSink* const tr = machine_.trace();
  if (tr != nullptr)
    tr->emit({sim::trace::EventKind::kVictimPick, faulting_core, now, cycles,
              victim->unit, victim->core_map_count, 0, 0, asid_});

  const UnitIdx unit = victim->unit;
  const bool dirty = page_table_->test_dirty(unit);
  std::uint64_t trace_targets = 0;
  if (page_table_->any_mapping(unit)) {
    const CoreMask affected = page_table_->unmap_all(unit);
    trace_targets = affected.count();
    cycles += shootdown_unit(faulting_core, now + cycles, affected, unit);
  }
  // (Prefetched-but-never-touched units have no mappings to tear down.)

  if (dirty) {
    // Write-back of the evicted unit to host memory. Synchronous by
    // default (the paper's kernel); with async_writeback the core only
    // queues the transfer — the link still carries the bytes.
    const Cycles ready = now + cycles;
    const sim::Machine::PcieTransferResult xfer = machine_.pcie_transfer(
        faulting_core, sim::PcieDir::kDeviceToHost, ready,
        unit_bytes(area_.page_size()), unit, asid_);
    ctr.pcie_bytes_out += unit_bytes(area_.page_size());
    ++ctr.writebacks;
    if (async_writeback_) {
      cycles += cost.policy_op;  // staging/queueing only
    } else {
      ctr.cycles_pcie_wait += xfer.done - ready;
      cycles += xfer.done - ready;
    }
  }

  policy_->on_evict(*victim);
  sim::FaultPlan* const plan = machine_.fault_plan();
  if (plan != nullptr && plan->surfaces_at_evict(victim->pfn)) {
    // Latent ECC poison surfaces as the eviction path touches the frame:
    // quarantine instead of free. The faulting tenant's allocate loop sees
    // no frame and orders another eviction.
    cycles += quarantine_frame(faulting_core, now + cycles, victim->pfn, unit);
  } else {
    allocator_.free(victim->pfn);
  }
  registry_.erase(*victim);
  ++ctr.evictions;
  if (tr != nullptr)
    tr->emit({sim::trace::EventKind::kEviction, faulting_core, now, cycles,
              unit, dirty ? 1u : 0u, trace_targets,
              dirty ? unit_bytes(area_.page_size()) : 0, asid_});
  CMCP_SIMCHECK_POINT(kAfterEviction);
  return cycles;
}

bool AddressSpace::unit_accessed(const mm::ResidentPage& page) const {
  return page_table_->test_accessed(page.unit, nullptr);
}

Cycles AddressSpace::core_clock(CoreId core) const {
  return machine_.clock(core);
}

Cycles AddressSpace::clear_accessed_and_shootdown(mm::ResidentPage& page,
                                                  CoreId initiator, Cycles now) {
  const bool was_set = page_table_->clear_accessed(page.unit);
  if (!was_set) return 0;
  // Cached TLB copies are now stale; x86 requires invalidating them on
  // every core that may hold one.
  const CoreMask targets = page_table_->mapping_cores(page.unit);
  return shootdown_unit(initiator, now, targets, page.unit);
}

void AddressSpace::run_periodic(Cycles watermark) {
  const sim::CostModel& cost = machine_.cost();
  while (watermark >= next_tick_) {
    const Cycles tick_time = next_tick_;
    next_tick_ += cost.scan_period;

    if (policy_->wants_scanner() && !pinned_) {
      // The scanner daemon runs on this space's dedicated hyperthread
      // (paper section 5.1): its cycles accrue to the pseudo-core, not to
      // the app cores — but every cleared bit shoots down the mapping
      // cores. One sweep at a time: the sweep owns the reused flush batch
      // for its whole duration.
      common::LockGuard scan_lock(scan_mu_);
      const CoreId scanner = machine_.scanner_core(asid_);
      if (machine_.clock(scanner) < tick_time)
        machine_.set_clock(scanner, tick_time);
      Cycles read_cycles = 0;
      const unsigned sub_entries =
          area_.page_size() == PageSizeClass::k64K ? 16u : 1u;
      std::uint64_t scanned = 0;
      std::uint64_t cleared = 0;
      std::uint64_t flush_rounds = 0;
      // Reused across scan passes (reserved once in the constructor) so a
      // sweep allocates nothing.
      std::vector<sim::Machine::BatchItem>& flush = scan_flush_;
      flush.clear();
      const auto flush_batch = [&] {
        if (flush.empty()) return;
        ++flush_rounds;
        // One slot acquisition + one IPI round per run of cleared PTEs,
        // charged to the scanner's own clock as it happens so concurrent
        // shootdowns queue against a current timestamp.
        if (mm_.num_spaces() > 1) {
          std::uint64_t remote = 0;
          for (const sim::Machine::BatchItem& item : flush) {
            CoreMask t = item.targets;
            t.clear(scanner);
            remote += t.count();
          }
          mm_.record_interference(asid_, asid_, remote);
        }
        machine_.advance(scanner, machine_.shootdown_batch(
                                      scanner, machine_.clock(scanner), flush));
        flush.clear();
      };
      registry_.for_each([&](mm::ResidentPage& pg) {
        ++scanned;
        unsigned pte_reads = 0;
        const bool referenced = page_table_->test_accessed(pg.unit, &pte_reads);
        read_cycles += cost.scan_pte_read * std::max(1u, pte_reads) * sub_entries;
        if (referenced) {
          ++cleared;
          const CoreMask targets = page_table_->mapping_cores(pg.unit);
          page_table_->clear_accessed(pg.unit);
          flush.push_back({pg.unit, targets});
          if (flush.size() >= cost.scanner_flush_batch) flush_batch();
        }
        policy_->on_scan(pg, referenced);
      });
      flush_batch();
      // PTE reads parallelize over the dedicated scanner hyperthreads.
      machine_.advance(scanner, read_cycles / std::max(1u, cost.scanner_threads));
      ++scans_completed_;
      if (sim::trace::EventSink* tr = machine_.trace())
        tr->emit({sim::trace::EventKind::kScanPass, scanner, tick_time,
                  machine_.clock(scanner) - tick_time, kInvalidUnit, scanned,
                  cleared, flush_rounds, asid_});
      // Timer ticks that fire while the scanner is still busy are skipped
      // (a periodic timer cannot re-enter its own handler); without this the
      // scan backlog would grow without bound under heavy shootdown load.
      if (machine_.clock(scanner) > next_tick_) {
        const Cycles period = cost.scan_period;
        const Cycles behind = machine_.clock(scanner) - next_tick_;
        next_tick_ += (behind / period + 1) * period;
      }
      CMCP_SIMCHECK_POINT(kAfterScan);
    }

    policy_->on_tick(tick_time);
  }
}

std::vector<std::uint64_t> AddressSpace::sharing_histogram() const {
  std::vector<std::uint64_t> hist(machine_.num_cores() + 1, 0);
  // core_map_count is one indexed load per unit (dense directory), so this
  // whole histogram is a single linear sweep.
  for (UnitIdx unit = 0; unit < area_.num_units(); ++unit) {
    const unsigned c = page_table_->core_map_count(unit);
    if (c > 0) ++hist[std::min<std::size_t>(c, hist.size() - 1)];
  }
  return hist;
}

}  // namespace cmcp::core
