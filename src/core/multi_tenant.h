// Multi-tenant run facade: N workloads, each in its own core::AddressSpace,
// contending for one shared FrameAllocator and one sim::Machine under a
// frame-partition (QoS) policy.
//
// The engine is the same deterministic virtual-time interleaver as
// core::Simulation — per-core clocks, min-heap ordered by (time, core id) —
// with one multi-tenant twist: barriers synchronize only WITHIN a tenant
// (each workload's barrier group is its own core block), and each tenant
// finishes independently. Identical configuration => bit-identical results
// and traces, tenants included.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/memory_manager.h"
#include "metrics/counters.h"
#include "mm/frame_partition.h"
#include "sim/checker.h"
#include "sim/fault_plan.h"
#include "sim/machine.h"
#include "workloads/multi_tenant.h"

namespace cmcp::core {

/// Core-layer knobs for one tenant (the workload itself lives in the
/// wl::MultiTenantSpec at the same index).
struct TenantRunConfig {
  PageTableKind pt_kind = PageTableKind::kPspt;
  policy::PolicyParams policy;
  /// When set, overrides `policy` with a user-supplied implementation.
  PolicyFactory custom_policy;
  unsigned prefetch_degree = 0;
  bool async_writeback = false;
  /// Nominal capacity this tenant's policy reasons about (CMCP p ratio);
  /// 0 = use the partition target.
  std::uint64_t capacity_units = 0;
  /// QoS parameters consumed by the frame partition.
  mm::TenantShare share;
};

struct MultiTenantConfig {
  sim::MachineConfig machine;  ///< num_cores / num_address_spaces are derived
  mm::PartitionKind partition = mm::PartitionKind::kNone;

  /// Shared device capacity as a fraction of the COMBINED footprint (>= 1
  /// means unconstrained). Ignored when capacity_units_override != 0.
  double memory_fraction = 1.0;
  std::uint64_t capacity_units_override = 0;

  /// Host worker threads for the engine (core/engine.h); same semantics as
  /// core::SimulationConfig::threads. Multi-tenant runs always take the
  /// serial engine path today, so this only standardizes the plumbing.
  unsigned threads = 1;

  /// Structured event tracing (non-owning; null = disabled). Events carry
  /// each tenant's asid and the exporters serialize it (spaces > 1).
  sim::trace::EventSink* trace = nullptr;

  /// SimCheck protocol-invariant sweeps (see core::SimulationConfig).
  bool simcheck = true;

  /// Deterministic fault injection (docs/robustness.md); same semantics as
  /// core::SimulationConfig::faults, including the CMCP_CHAOS_FAULTS
  /// environment fallback when disabled here.
  sim::FaultPlanConfig faults;
};

/// Per-tenant observables of one multi-tenant run.
struct TenantResult {
  std::string workload_name;
  std::string policy_name;
  CoreId first_core = 0;
  CoreId num_cores = 0;
  Cycles makespan = 0;  ///< max finish time over this tenant's cores
  metrics::CoreCounters total;  ///< summed over this tenant's app cores
  metrics::CoreCounters scanner;
  std::vector<std::pair<std::string, std::uint64_t>> policy_stats;
  std::uint64_t footprint_units = 0;
  std::uint64_t capacity_target_units = 0;  ///< partition target
  std::uint64_t reserve_units = 0;          ///< static-reserve floor
  std::uint64_t resident_units_end = 0;     ///< frames held at end of run
  std::uint64_t scans = 0;
};

struct MultiTenantResult {
  Cycles makespan = 0;  ///< max over all cores == machine runtime
  std::vector<TenantResult> tenants;
  /// Flattened [cause][receiver] matrix: remote TLB entries invalidated on
  /// `receiver`'s cores by shootdowns `cause` initiated (row-major,
  /// interference[cause * tenants.size() + receiver]).
  std::vector<std::uint64_t> interference;
  std::uint64_t shared_capacity_units = 0;
  std::string partition_kind;

  /// Fault-injection accounting (all-zero unless faults_enabled). The
  /// per-asid vectors in fault_stats are the per-tenant blast radius.
  /// fault_config is the EFFECTIVE plan — it reflects CMCP_CHAOS_FAULTS
  /// when the env hook injected one, unlike MultiTenantConfig::faults.
  bool faults_enabled = false;
  sim::FaultPlanConfig fault_config;
  sim::FaultStats fault_stats;
};

/// Run the composed workloads to completion. `tenant_configs` must have one
/// entry per tenant in `spec` (asid order).
MultiTenantResult run_multi_tenant(const MultiTenantConfig& config,
                                   const wl::MultiTenantSpec& spec,
                                   const std::vector<TenantRunConfig>& tenant_configs);

}  // namespace cmcp::core
