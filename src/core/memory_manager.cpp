#include "core/memory_manager.h"

#include "common/assert.h"
#include "sim/fault_plan.h"

namespace cmcp::core {

namespace {

/// Partition shares for the legacy single-tenant constructor: one tenant,
/// no reserve, weight 1 — PartitionKind::kNone ignores them anyway.
std::vector<mm::TenantShare> single_tenant_shares() {
  return {mm::TenantShare{}};
}

std::vector<mm::TenantShare> shares_of(const std::vector<AddressSpaceSpec>& specs) {
  std::vector<mm::TenantShare> out;
  out.reserve(specs.size());
  for (const AddressSpaceSpec& s : specs) out.push_back(s.share);
  return out;
}

}  // namespace

MemoryManager::MemoryManager(sim::Machine& machine, const mm::ComputationArea& area,
                             const MemoryManagerConfig& config)
    : machine_(machine),
      allocator_(config.capacity_units, area.page_size()),
      partition_(mm::PartitionKind::kNone, config.capacity_units,
                 single_tenant_shares()),
      interference_(1, 0) {
  CMCP_CHECK(config.capacity_units > 0);
  spaces_.push_back(std::make_unique<AddressSpace>(*this, 0, area, config,
                                                   config.capacity_units));
}

MemoryManager::MemoryManager(sim::Machine& machine,
                             const std::vector<AddressSpaceSpec>& specs,
                             std::uint64_t shared_capacity_units,
                             mm::PartitionKind partition)
    : machine_(machine),
      allocator_(shared_capacity_units, specs.at(0).area.page_size()),
      partition_(partition, shared_capacity_units, shares_of(specs)),
      interference_(specs.size() * specs.size(), 0) {
  CMCP_CHECK(shared_capacity_units > 0);
  CMCP_CHECK_MSG(machine.num_address_spaces() == specs.size(),
                 "machine must be built with one scanner pseudo-core per space");
  for (Asid asid = 0; asid < specs.size(); ++asid) {
    const AddressSpaceSpec& spec = specs[asid];
    CMCP_CHECK_MSG(spec.area.page_size() == specs[0].area.page_size(),
                   "all tenants must share one mapping-unit size");
    // The nominal capacity this space's policy reasons about (CMCP's p
    // ratio): an explicit per-tenant value wins, otherwise the partition
    // target. Under kNone the targets still apportion the capacity by
    // weight — allocation stays free-for-all, but each policy gets a
    // sensible denominator instead of believing it owns the whole device.
    const std::uint64_t nominal = spec.config.capacity_units != 0
                                      ? spec.config.capacity_units
                                      : partition_.target_of(asid);
    spaces_.push_back(
        std::make_unique<AddressSpace>(*this, asid, spec.area, spec.config, nominal));
  }
}

Cycles MemoryManager::access(CoreId core, Vpn vpn, bool write, Cycles now) {
  Cycles c = spaces_[machine_.space_of_core(core)]->access(core, vpn, write, now);
  sim::FaultPlan* const plan = machine_.fault_plan();
  if (plan != nullptr) {
    // Straggler core: every access inside the afflicted window costs
    // `straggler_mult` times as much (a thermally throttled or contended
    // core). The decision is a pure hash of (seed, core, window index), so
    // it is independent of evaluation order and replays bit-identically.
    bool window_start = false;
    const std::uint64_t mult = plan->straggler_mult_at(core, now, &window_start);
    if (mult > 1) {
      const Cycles extra = c * (mult - 1);
      metrics::CoreCounters& ctr = machine_.counters(core);
      ctr.cycles_straggler += extra;
      const Asid asid = machine_.space_of_core(core);
      if (window_start) {
        ++ctr.faults_injected;
        plan->record(sim::FaultKind::kStraggler, asid, 1, 0, false, 0);
        if (sim::trace::EventSink* tr = machine_.trace()) {
          constexpr auto kStrag =
              static_cast<std::uint64_t>(sim::FaultKind::kStraggler);
          tr->emit({sim::trace::EventKind::kFaultInject, core, now,
                    plan->config().straggler_window, kInvalidUnit, kStrag, 1,
                    mult, asid});
        }
      }
      plan->record_straggler_cycles(extra);
      c += extra;
    }
  }
  return c;
}

void MemoryManager::run_periodic(Cycles watermark) {
  for (const std::unique_ptr<AddressSpace>& space : spaces_)
    space->run_periodic(watermark);
}

Cycles MemoryManager::evict_for(Asid requester, CoreId core, Cycles now) {
  const Asid victim_space = partition_.choose_victim_space(requester, allocator_);
  return spaces_[victim_space]->evict_one(core, now);
}

}  // namespace cmcp::core
