// Public facade: run one workload on one machine/memory-management
// configuration and collect the observables the paper reports.
//
// The engine is a deterministic virtual-time interleaver: every core owns a
// private cycle clock, and the engine always executes the op of the
// earliest core next (ties broken by core id), so shared-resource queueing
// (PCIe link, page-table locks, invalidation slot) is resolved in a single
// reproducible order. Identical configuration => bit-identical results.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/memory_manager.h"
#include "metrics/counters.h"
#include "sim/checker.h"
#include "sim/fault_plan.h"
#include "sim/machine.h"
#include "workloads/access_stream.h"

namespace cmcp::core {

struct SimulationConfig {
  sim::MachineConfig machine;
  PageTableKind pt_kind = PageTableKind::kPspt;
  policy::PolicyParams policy;
  /// When set, overrides `policy` with a user-supplied implementation
  /// (examples/custom_policy.cpp).
  PolicyFactory custom_policy;

  /// Device memory granted to the computation area, as a fraction of its
  /// footprint — the paper's "% of memory provided" axis. Values >= 1 mean
  /// no constraint. Ignored when capacity_units_override != 0.
  double memory_fraction = 1.0;
  std::uint64_t capacity_units_override = 0;

  /// "No data movement" baseline: preload everything into device RAM
  /// (forces effective capacity >= footprint).
  bool preload = false;

  /// Sequential readahead degree on major faults (0 = off).
  unsigned prefetch_degree = 0;

  /// Queue dirty write-backs instead of blocking the evicting core.
  bool async_writeback = false;

  /// Base of the computation area (2 MB aligned so all unit sizes fit).
  Vpn area_base_vpn = 0;

  /// Host worker threads for the engine (core/engine.h). 1 (default) is the
  /// exact serial engine — and defers to the CMCP_SIM_THREADS environment
  /// variable, the TSan CI hook; 0 means one thread per host CPU. Results
  /// and traces are byte-identical at any value.
  unsigned threads = 1;

  /// Structured event tracing: when non-null, every fault, victim pick,
  /// eviction, shootdown, PCIe transfer, scanner pass and barrier wait is
  /// recorded into this sink (non-owning). Null = tracing disabled; the
  /// hot path then only pays a pointer test at each emit point.
  sim::trace::EventSink* trace = nullptr;

  /// SimCheck: run the default protocol-invariant checkers (src/check/) at
  /// the memory manager's checkpoints and once at end of run. Only
  /// effective when CMCP_SIMCHECK_ENABLED compiles the machinery in; a
  /// violated invariant aborts with a structured diagnostic (override via
  /// Simulation::check_registry()->set_handler). See docs/invariants.md.
  bool simcheck = true;

  /// Deterministic fault injection (docs/robustness.md). Disabled (the
  /// default all-zero-rate config) constructs no plan, so every code path
  /// is the exact pre-fault one — byte-identical traces and summaries.
  /// When disabled here, the CMCP_CHAOS_FAULTS environment variable (a
  /// to_spec()-format string) may inject a plan — the CI chaos job's hook.
  sim::FaultPlanConfig faults;
};

struct SimulationResult {
  Cycles makespan = 0;  ///< max core finish time == runtime
  std::vector<metrics::CoreCounters> per_core;  ///< app cores only
  metrics::CoreCounters app_total;
  metrics::CoreCounters scanner;

  /// Replacement-policy identity and its full statistics (collected through
  /// policy::ReplacementPolicy::stats() at end of run), so exporters can
  /// dump every policy counter without knowing the keys.
  std::string policy_name;
  std::vector<std::pair<std::string, std::uint64_t>> policy_stats;

  std::uint64_t footprint_units = 0;
  std::uint64_t capacity_units = 0;
  std::uint64_t scans = 0;

  /// hist[c] = resident units mapped by exactly c cores at end of run
  /// (Fig. 6 uses unconstrained PSPT runs so this reflects true sharing).
  std::vector<std::uint64_t> sharing_histogram;

  /// Fault-injection accounting (all-zero unless faults_enabled).
  /// fault_config is the EFFECTIVE plan — it reflects CMCP_CHAOS_FAULTS
  /// when the env hook injected one, unlike SimulationConfig::faults.
  bool faults_enabled = false;
  sim::FaultPlanConfig fault_config;
  sim::FaultStats fault_stats;

  double avg_major_faults_per_core() const;
  double avg_remote_invalidations_per_core() const;
  double avg_dtlb_misses_per_core() const;
};

class Simulation {
 public:
  Simulation(const SimulationConfig& config, const wl::Workload& workload);

  /// Run to completion and return the collected results. Single use.
  SimulationResult run();

  /// The machine (for inspection in tests; valid after construction).
  sim::Machine& machine() { return machine_; }
  MemoryManager& memory_manager() { return mm_; }

  /// The SimCheck registry, or null when checking is disabled (config or
  /// CMCP_SIMCHECK=OFF build). Tests use it to install capturing handlers
  /// and to trigger unconditional sweeps.
  sim::CheckRegistry* check_registry() { return checks_.get(); }

  /// The fault plan, or null when fault injection is disabled.
  sim::FaultPlan* fault_plan() { return faults_.get(); }

 private:
  static sim::MachineConfig machine_config_for(const SimulationConfig& config,
                                               const wl::Workload& workload);
  static mm::ComputationArea area_for(const SimulationConfig& config,
                                      const wl::Workload& workload);
  static MemoryManagerConfig mm_config_for(const SimulationConfig& config,
                                           const mm::ComputationArea& area);

  const SimulationConfig config_;
  const wl::Workload& workload_;
  sim::Machine machine_;
  mm::ComputationArea area_;
  MemoryManager mm_;
  /// Null when SimCheck is disabled (by config or compiled out).
  std::unique_ptr<sim::CheckRegistry> checks_;
  /// Null when fault injection is disabled (the common case).
  std::unique_ptr<sim::FaultPlan> faults_;
  bool ran_ = false;
};

/// Convenience: configure + run in one call.
SimulationResult run_simulation(const SimulationConfig& config,
                                const wl::Workload& workload);

}  // namespace cmcp::core
