// Wall-clock benchmark harness for the simulator itself: how fast does the
// host machine push simulated memory references through the engine?
//
// Two kinds of phases:
//   * sim   — full paper-shaped runs (fig6 sharing, fig7 56-core scalability,
//             fig8 memory-constrained) timed end to end, reporting
//             ns per simulated reference and references/second.
//   * micro — hand-timed loops over the hot data structures (PTE walk, TLB
//             hit, fault+evict cycle, scanner sweep), the operations the
//             fault path executes millions of times per simulated second.
//
// The result is a machine-readable BENCH document through
// metrics::ResultWriter (see docs/performance.md for the schema and how CI
// gates on it via tools/bench_compare):
//
//   wallclock [--json FILE] [--repeat N] [--filter SUBSTR]
//
// Numbers are only comparable within one build configuration: commit JSONs
// from the `release` preset (-O2 -DNDEBUG, SimCheck off) exclusively.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "cmcp.h"
#include "core/multi_tenant.h"
#include "metrics/experiment.h"
#include "metrics/result_writer.h"
#include "mm/frame_partition.h"
#include "mm/page_registry.h"
#include "mm/pspt.h"
#include "policy/fifo.h"
#include "sim/fault_plan.h"
#include "sim/pcie_link.h"
#include "sim/tlb.h"
#include "workloads/multi_tenant.h"

using namespace cmcp;

namespace {

using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Peak resident set size of this process in kB (Linux ru_maxrss unit).
std::uint64_t peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss);
}

struct PhaseResult {
  std::string name;
  std::string kind;  ///< "sim" | "micro"
  std::uint64_t refs = 0;
  double wall_ns = 0.0;
  double build_ns = 0.0;  ///< sim only: workload + machine construction
  std::uint64_t makespan = 0;  ///< sim only
  std::uint64_t rss_kb = 0;    ///< peak RSS observed after the phase
};

/// Best-of-N timed run of fn() -> (refs, ns). Keeping the minimum wall time
/// filters scheduler noise without averaging away real regressions.
template <typename Fn>
PhaseResult best_of(const std::string& name, const std::string& kind,
                    unsigned repeat, Fn&& fn) {
  PhaseResult best;
  best.name = name;
  best.kind = kind;
  for (unsigned i = 0; i < repeat; ++i) {
    PhaseResult r = fn();
    if (i == 0 || r.wall_ns < best.wall_ns) {
      r.name = name;
      r.kind = kind;
      best = r;
    }
  }
  best.rss_kb = peak_rss_kb();
  return best;
}

PhaseResult run_sim_phase(const metrics::RunSpec& spec) {
  PhaseResult r;
  const auto t0 = Clock::now();
  wl::WorkloadParams base;
  base.cores = spec.cores;
  base.seed = spec.seed;
  if (spec.scale > 0.0) base.scale = spec.scale;
  const auto workload = wl::make_paper_workload(spec.workload, base, spec.size);
  core::SimulationConfig config = spec.to_config();
  core::Simulation sim(config, *workload);
  const auto t1 = Clock::now();
  const auto result = sim.run();
  const auto t2 = Clock::now();
  r.refs = result.app_total.accesses;
  r.build_ns = ns_between(t0, t1);
  r.wall_ns = ns_between(t1, t2);
  r.makespan = result.makespan;
  return r;
}

/// Multi-tenant sim phase: `tenants` paper workloads (alternating cg / bt)
/// stacked on one machine under proportional-share partitioning, sized so
/// the shared device stays contended. Exercises the coordinator paths the
/// single-tenant rows cannot: per-space fault/evict/scan, cross-space QoS
/// victim picks, and frame-ownership accounting.
PhaseResult run_mt_phase(unsigned tenants, CoreId cores_per_tenant,
                         double memory_fraction) {
  PhaseResult r;
  const auto t0 = Clock::now();
  wl::WorkloadParams base;
  base.cores = cores_per_tenant;
  wl::MultiTenantSpec spec;
  std::vector<core::TenantRunConfig> tenant_configs(tenants);
  for (unsigned t = 0; t < tenants; ++t) {
    const wl::PaperWorkload w =
        (t % 2 == 0) ? wl::PaperWorkload::kCg : wl::PaperWorkload::kBt;
    spec.add(wl::make_paper_workload(w, base));
    tenant_configs[t].policy.kind = PolicyKind::kCmcp;
    tenant_configs[t].policy.cmcp.p = wl::paper_best_p(w);
  }
  core::MultiTenantConfig config;
  config.partition = mm::PartitionKind::kProportionalShare;
  config.memory_fraction = memory_fraction;
  const auto t1 = Clock::now();
  const core::MultiTenantResult result =
      core::run_multi_tenant(config, spec, tenant_configs);
  const auto t2 = Clock::now();
  for (const core::TenantResult& t : result.tenants)
    r.refs += t.total.accesses;
  r.build_ns = ns_between(t0, t1);
  r.wall_ns = ns_between(t1, t2);
  r.makespan = result.makespan;
  return r;
}

// --- micro phases -----------------------------------------------------------

PhaseResult micro_tlb_hit(std::uint64_t iters) {
  sim::Tlb tlb(64);
  for (UnitIdx u = 0; u < 64; ++u) tlb.insert(u);
  PhaseResult r;
  const auto t0 = Clock::now();
  std::uint64_t hits = 0;
  UnitIdx u = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    hits += tlb.lookup(u) ? 1 : 0;
    u = (u + 1) & 63;
  }
  r.wall_ns = ns_between(t0, Clock::now());
  r.refs = iters;
  if (hits != iters) std::fprintf(stderr, "tlb_hit: unexpected misses\n");
  return r;
}

PhaseResult micro_pte_walk(std::uint64_t iters) {
  constexpr CoreId kCores = 56;
  constexpr UnitIdx kUnits = 1 << 15;
  mm::Pspt pt(kCores);
  for (UnitIdx u = 0; u < kUnits; ++u) pt.map(u % kCores, u, u * 16);
  PhaseResult r;
  const auto t0 = Clock::now();
  std::uint64_t mapped = 0;
  UnitIdx u = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const CoreId core = static_cast<CoreId>(u % kCores);
    if (pt.has_mapping(core, u)) {
      pt.mark_accessed(core, u);
      ++mapped;
    }
    u = (u + 1) & (kUnits - 1);
  }
  r.wall_ns = ns_between(t0, Clock::now());
  r.refs = iters;
  if (mapped != iters) std::fprintf(stderr, "pte_walk: unexpected misses\n");
  return r;
}

PhaseResult micro_fault_evict(std::uint64_t iters) {
  constexpr std::uint64_t kResident = 1024;
  constexpr UnitIdx kSpace = 1 << 16;  // bounded so dense tables stay small
  mm::PageRegistry reg;
  policy::FifoPolicy policy;
  for (UnitIdx u = 0; u < kResident; ++u)
    policy.on_insert(reg.insert(u, u, /*now=*/0));
  PhaseResult r;
  UnitIdx next = kResident;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    Cycles extra = 0;
    mm::ResidentPage* victim = policy.pick_victim(0, extra);
    policy.on_evict(*victim);
    reg.erase(*victim);
    mm::ResidentPage& pg = reg.insert(next, next, /*now=*/0);
    policy.on_insert(pg);
    // FIFO recycles a unit ~kResident insertions after its eviction, long
    // after it left the registry, so wrapped ids never collide.
    next = (next + 1) % kSpace;
  }
  r.wall_ns = ns_between(t0, Clock::now());
  r.refs = iters;
  return r;
}

PhaseResult micro_scan_sweep(std::uint64_t sweeps) {
  constexpr CoreId kCores = 56;
  constexpr UnitIdx kUnits = 1 << 14;
  mm::Pspt pt(kCores);
  mm::PageRegistry reg;
  for (UnitIdx u = 0; u < kUnits; ++u) {
    pt.map(u % kCores, u, u * 16);
    if (u % 3 == 0) pt.map((u + 1) % kCores, u, u * 16);
    reg.insert(u, u * 16, /*now=*/0);
    if ((u & 7) != 0) pt.mark_accessed(u % kCores, u);
  }
  PhaseResult r;
  std::uint64_t referenced = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t s = 0; s < sweeps; ++s) {
    reg.for_each([&](mm::ResidentPage& pg) {
      unsigned reads = 0;
      if (pt.test_accessed(pg.unit, &reads)) {
        ++referenced;
        pt.clear_accessed(pg.unit);
        pt.mark_accessed(pg.unit % kCores, pg.unit);  // re-arm for next sweep
      }
    });
  }
  r.wall_ns = ns_between(t0, Clock::now());
  r.refs = sweeps * kUnits;
  if (referenced == 0) std::fprintf(stderr, "scan_sweep: nothing referenced\n");
  return r;
}

PhaseResult micro_fault_recovery(std::uint64_t iters) {
  // Fault-path micro: seeded injection draws plus the retry/backoff episode
  // arithmetic of transfer_with_faults, with a straggler hash query per
  // iteration. The rates keep ~6% of transfers on the recovery path, so both
  // the healthy branch and the episode math are timed.
  const sim::CostModel cost = sim::CostModel::knc();
  sim::PcieLink link(cost);
  sim::FaultPlanConfig fc;
  fc.seed = 9;
  fc.pcie_transient_rate = 0.05;
  fc.pcie_sticky_rate = 0.01;
  fc.straggler_rate = 0.1;
  sim::FaultPlan plan(fc);
  PhaseResult r;
  Cycles now = 0;
  std::uint64_t failures = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const sim::PcieTransferOutcome out = link.transfer_with_faults(
        sim::PcieDir::kHostToDevice, now, 4096, plan);
    failures += out.failures;
    bool window_start = false;
    (void)plan.straggler_mult_at(static_cast<CoreId>(i & 7), now,
                                 &window_start);
    now = out.done;
  }
  r.wall_ns = ns_between(t0, Clock::now());
  r.refs = iters;
  if (failures == 0)
    std::fprintf(stderr, "fault_recovery: nothing injected\n");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  unsigned repeat = 2;
  std::string filter;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = static_cast<unsigned>(std::atoi(argv[++i]));
      if (repeat == 0) repeat = 1;
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      filter = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json FILE] [--repeat N] [--filter SUBSTR] "
                   "[--threads N]\n",
                   argv[0]);
      return 2;
    }
  }

  const bool fast = metrics::fast_mode();
  const CoreId paper_cores = fast ? 8 : 56;
  const std::uint64_t micro_iters = fast ? 2'000'000 : 20'000'000;
  const std::uint64_t micro_sweeps = fast ? 50 : 500;

  struct SimCase {
    const char* name;
    wl::PaperWorkload workload;
    PageTableKind pt;
    PolicyKind policy;
    double memory_fraction;  ///< <= 0 selects the paper's per-workload value
    CoreId cores = 0;        ///< 0 = paper_cores (8 fast / 56 full)
    double scale = 0.0;      ///< 0 = workload default; else fixed scale
    bool full_mode_only = false;
  };
  const SimCase sims[] = {
      // Fig. 6 shape: unconstrained PSPT, sharing histogram path exercised.
      {"fig6_bt_sharing", wl::PaperWorkload::kBt, PageTableKind::kPspt,
       PolicyKind::kCmcp, 1.0},
      // Fig. 7 shapes at the paper's max core count and memory constraint.
      {"fig7_bt_cmcp", wl::PaperWorkload::kBt, PageTableKind::kPspt,
       PolicyKind::kCmcp, -1.0},
      {"fig7_cg_cmcp", wl::PaperWorkload::kCg, PageTableKind::kPspt,
       PolicyKind::kCmcp, -1.0},
      {"fig7_bt_lru", wl::PaperWorkload::kBt, PageTableKind::kPspt,
       PolicyKind::kLru, -1.0},
      {"fig7_bt_regular_fifo", wl::PaperWorkload::kBt, PageTableKind::kRegular,
       PolicyKind::kFifo, -1.0},
      // Fig. 7 at the paper's full 56 cores even in fast mode, scale-shrunk
      // there so CI's fast bench job still gates the 56-core engine rows
      // (the plain fig7 rows drop to 8 cores under CMCP_BENCH_FAST).
      {"fig7_bt_cmcp_56c", wl::PaperWorkload::kBt, PageTableKind::kPspt,
       PolicyKind::kCmcp, -1.0, 56, fast ? 0.5 : 0.0},
      {"fig7_cg_cmcp_56c", wl::PaperWorkload::kCg, PageTableKind::kPspt,
       PolicyKind::kCmcp, -1.0, 56, fast ? 0.5 : 0.0},
      // Past-the-paper sweep rows: where does CMCP's no-shootdown advantage
      // saturate? Full workload scale — per-core iteration counts already
      // shrink as cores grow, so even 512 cores is a sub-second row and can
      // run in CI fast mode; 1024 is full-mode only.
      {"sweep_bt_cmcp_512c", wl::PaperWorkload::kBt, PageTableKind::kPspt,
       PolicyKind::kCmcp, -1.0, 512},
      {"sweep_bt_cmcp_1024c", wl::PaperWorkload::kBt, PageTableKind::kPspt,
       PolicyKind::kCmcp, -1.0, 1024, 0.0, /*full_mode_only=*/true},
      // Fig. 8 shape: memory-constrained CG (heavy fault + eviction traffic).
      {"fig8_cg_constrained", wl::PaperWorkload::kCg, PageTableKind::kPspt,
       PolicyKind::kCmcp, 0.25},
  };

  std::vector<PhaseResult> phases;
  const auto want = [&](const char* name) {
    return filter.empty() || std::string(name).find(filter) != std::string::npos;
  };

  for (const SimCase& c : sims) {
    if (!want(c.name)) continue;
    if (c.full_mode_only && fast) continue;
    metrics::RunSpec spec;
    spec.workload = c.workload;
    spec.cores = c.cores != 0 ? c.cores : paper_cores;
    spec.pt_kind = c.pt;
    spec.policy.kind = c.policy;
    spec.policy.cmcp.p = wl::paper_best_p(c.workload);
    spec.memory_fraction = c.memory_fraction;
    spec.scale = c.scale;
    spec.threads = threads;
    phases.push_back(
        best_of(c.name, "sim", repeat, [&] { return run_sim_phase(spec); }));
    std::printf("%-22s %10.1f ms  %8.1f ns/ref\n", phases.back().name.c_str(),
                phases.back().wall_ns / 1e6,
                phases.back().wall_ns /
                    static_cast<double>(std::max<std::uint64_t>(
                        phases.back().refs, 1)));
  }

  // Multi-tenant rows: total app cores match the single-tenant rows so
  // ns/ref is comparable; memory_fraction is of the COMBINED footprint,
  // tight enough that cross-tenant eviction pressure is constant.
  struct MtCase {
    const char* name;
    unsigned tenants;
    double memory_fraction;
  };
  const MtCase mts[] = {
      {"mt2_cg_bt_prop", 2, 0.5},
      {"mt4_cg_bt_prop", 4, 0.5},
  };
  for (const MtCase& c : mts) {
    if (!want(c.name)) continue;
    const CoreId per_tenant = static_cast<CoreId>(
        std::max<unsigned>(1, paper_cores / c.tenants));
    phases.push_back(best_of(c.name, "sim", repeat, [&] {
      return run_mt_phase(c.tenants, per_tenant, c.memory_fraction);
    }));
    std::printf("%-22s %10.1f ms  %8.1f ns/ref\n", phases.back().name.c_str(),
                phases.back().wall_ns / 1e6,
                phases.back().wall_ns /
                    static_cast<double>(std::max<std::uint64_t>(
                        phases.back().refs, 1)));
  }

  struct MicroCase {
    const char* name;
    std::function<PhaseResult()> fn;
  };
  const MicroCase micros[] = {
      {"micro_tlb_hit", [&] { return micro_tlb_hit(micro_iters); }},
      {"micro_pte_walk", [&] { return micro_pte_walk(micro_iters); }},
      {"micro_fault_evict", [&] { return micro_fault_evict(micro_iters / 4); }},
      {"micro_scan_sweep", [&] { return micro_scan_sweep(micro_sweeps); }},
      {"micro_fault_recovery",
       [&] { return micro_fault_recovery(micro_iters / 4); }},
  };
  for (const MicroCase& m : micros) {
    if (!want(m.name)) continue;
    phases.push_back(best_of(m.name, "micro", repeat, m.fn));
    std::printf("%-22s %10.1f ms  %8.1f ns/op\n", phases.back().name.c_str(),
                phases.back().wall_ns / 1e6,
                phases.back().wall_ns /
                    static_cast<double>(std::max<std::uint64_t>(
                        phases.back().refs, 1)));
  }

  metrics::ResultWriter writer;
  writer.meta("bench", "wallclock");
  writer.meta("build_type",
#ifdef NDEBUG
              "NDEBUG"
#else
              "assertions"
#endif
  );
  writer.meta("simcheck", CMCP_SIMCHECK_ENABLED ? "on" : "off");
  writer.meta("fast_mode", fast ? "true" : "false");
  writer.meta("repeat", std::to_string(repeat));
  writer.meta("threads", std::to_string(threads));
  writer.meta("peak_rss_kb", std::to_string(peak_rss_kb()));
  for (const PhaseResult& p : phases) {
    auto& row = writer.add_row();
    const double refs = static_cast<double>(std::max<std::uint64_t>(p.refs, 1));
    row.set("name", p.name)
        .set("kind", p.kind)
        .set("refs", p.refs)
        .set("wall_ns", p.wall_ns)
        .set("ns_per_ref", p.wall_ns / refs)
        .set("refs_per_sec", refs / (p.wall_ns / 1e9))
        .set("build_ns", p.build_ns)
        .set("makespan", p.makespan)
        .set("rss_kb", p.rss_kb);
  }
  if (!json_path.empty()) {
    writer.save_json(json_path);
    std::printf("JSON written to %s\n", json_path.c_str());
  }
  std::printf("peak RSS: %llu kB\n",
              static_cast<unsigned long long>(peak_rss_kb()));
  return 0;
}
