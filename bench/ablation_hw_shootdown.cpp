// Ablation A7 (extension): what if the hardware did TLB coherence?
//
// Section 2.3 notes that "an alternative solution to the careful software
// approach could be if the hardware provided the right capability to
// invalidate TLBs on multiple CPU cores," and the related work discusses
// DiDi's shared TLB directory (Villavieja et al., PACT'11). This bench
// re-runs the Fig. 7 comparison with such hardware: directed invalidations
// at bus cost, no IPIs, no serialized slot — showing how much of PSPT's
// (and CMCP's) advantage is really a software workaround for missing
// hardware.
#include <cstdio>

#include "cmcp.h"

using namespace cmcp;

int main() {
  const auto which = wl::PaperWorkload::kBt;
  std::printf(
      "Ablation A7 — software IPI shootdowns vs hypothetical TLB directory "
      "hardware (%s)\n(runtime in Mcycles)\n\n",
      std::string(to_string(which)).c_str());

  metrics::Table table({"cores", "regPT+FIFO (IPI)", "regPT+FIFO (HW)",
                        "PSPT+FIFO (IPI)", "PSPT+FIFO (HW)", "PSPT+LRU (HW)",
                        "PSPT+CMCP (IPI)"});

  for (const CoreId cores : metrics::paper_core_counts()) {
    wl::WorkloadParams params;
    params.cores = cores;
    const auto workload = wl::make_paper_workload(which, params);

    const auto run = [&](PageTableKind pt, PolicyKind policy,
                         sim::TlbCoherence coherence) {
      core::SimulationConfig config;
      config.machine.num_cores = cores;
      config.machine.tlb_coherence = coherence;
      config.pt_kind = pt;
      config.policy.kind = policy;
      config.policy.cmcp.p = wl::paper_best_p(which);
      config.memory_fraction = wl::paper_memory_fraction(which);
      return core::run_simulation(config, *workload).makespan / 1e6;
    };

    using enum PolicyKind;
    using enum PageTableKind;
    using enum sim::TlbCoherence;
    table.add_row({std::to_string(cores),
                   metrics::fmt_double(run(kRegular, kFifo, kIpiShootdown), 1),
                   metrics::fmt_double(run(kRegular, kFifo, kHardwareDirectory), 1),
                   metrics::fmt_double(run(kPspt, kFifo, kIpiShootdown), 1),
                   metrics::fmt_double(run(kPspt, kFifo, kHardwareDirectory), 1),
                   metrics::fmt_double(run(kPspt, kLru, kHardwareDirectory), 1),
                   metrics::fmt_double(run(kPspt, kCmcp, kIpiShootdown), 1)});
  }

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "Expected: with directory hardware, regular tables stop collapsing and "
      "LRU's\nscanning becomes nearly free — the paper's software results are "
      "contingent on\nx86's IPI-based TLB coherence, exactly as section 2.3 "
      "suggests.\n");
  table.save_csv("results/ablation_hw_shootdown.csv");
  return 0;
}
