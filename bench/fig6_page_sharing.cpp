// Fig. 6: distribution of computation-area pages by the number of CPU cores
// mapping them, for each workload and core count. Obtained — as in the
// paper — from PSPT's per-core page tables after an unconstrained run.
//
// Output: one table per workload; rows = core counts, columns = share of
// pages mapped by exactly 1, 2, ... cores. CSVs land in results/.
#include <cstdio>
#include <numeric>

#include "cmcp.h"

using namespace cmcp;

int main() {
  std::printf(
      "Fig. 6 — Distribution of pages according to the number of CPU cores "
      "mapping them\n(unconstrained PSPT runs; paper: Gerofi et al., HPDC'14)\n\n");

  for (const auto which : wl::kAllPaperWorkloads) {
    std::vector<std::string> headers = {"cores"};
    for (int c = 1; c <= 8; ++c)
      headers.push_back(std::to_string(c) + (c == 1 ? " core" : " cores"));
    headers.push_back("9+ cores");
    metrics::Table table(headers);

    for (const CoreId cores : metrics::paper_core_counts()) {
      wl::WorkloadParams params;
      params.cores = cores;
      const auto workload = wl::make_paper_workload(which, params);

      core::SimulationConfig config;
      config.machine.num_cores = cores;
      config.preload = true;  // no data movement: sharing reflects the app
      const auto result = core::run_simulation(config, *workload);

      const double total =
          std::accumulate(result.sharing_histogram.begin(),
                          result.sharing_histogram.end(), 0.0);
      std::vector<std::string> row = {std::to_string(cores)};
      double tail = 0.0;
      for (std::size_t c = 1; c < result.sharing_histogram.size(); ++c) {
        const double frac = static_cast<double>(result.sharing_histogram[c]) / total;
        if (c <= 8)
          row.push_back(metrics::fmt_percent(frac));
        else
          tail += frac;
      }
      for (std::size_t c = result.sharing_histogram.size(); c <= 8; ++c)
        row.push_back(metrics::fmt_percent(0.0));
      row.push_back(metrics::fmt_percent(tail));
      table.add_row(std::move(row));
    }

    std::printf("--- %s.B ---\n%s\n", std::string(to_string(which)).c_str(),
                table.markdown().c_str());
    table.save_csv("results/fig6_" + std::string(to_string(which)) + ".csv");
  }
  std::printf("CSV written to results/fig6_<app>.csv\n");
  return 0;
}
