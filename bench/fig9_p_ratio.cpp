// Fig. 9: the impact of CMCP's prioritized-page ratio p on performance
// improvement over FIFO (56 cores, paper constraints). The paper observes
// the optimum is workload specific: CG low, LU/SCALE high.
#include <cstdio>

#include "cmcp.h"

using namespace cmcp;

int main() {
  const CoreId cores = metrics::fast_mode() ? 24 : 56;
  std::printf(
      "Fig. 9 — Impact of the ratio of prioritized pages (p) in CMCP\n"
      "(improvement over PSPT+FIFO, %u cores)\n\n",
      cores);

  const double ps[] = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  std::vector<std::string> headers = {"p"};
  for (const auto which : wl::kAllPaperWorkloads)
    headers.emplace_back(to_string(which));
  metrics::Table table(headers);

  std::vector<std::unique_ptr<wl::Workload>> workloads;
  std::vector<Cycles> fifo_runtime;
  for (const auto which : wl::kAllPaperWorkloads) {
    wl::WorkloadParams params;
    params.cores = cores;
    workloads.push_back(wl::make_paper_workload(which, params));
    core::SimulationConfig config;
    config.machine.num_cores = cores;
    config.policy.kind = PolicyKind::kFifo;
    config.memory_fraction = wl::paper_memory_fraction(which);
    fifo_runtime.push_back(core::run_simulation(config, *workloads.back()).makespan);
  }

  std::vector<double> best_gain(workloads.size(), -1.0);
  std::vector<double> best_p(workloads.size(), 0.0);
  for (const double p : ps) {
    std::vector<std::string> row = {metrics::fmt_double(p, 2)};
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      core::SimulationConfig config;
      config.machine.num_cores = cores;
      config.policy.kind = PolicyKind::kCmcp;
      config.policy.cmcp.p = p;
      config.memory_fraction =
          wl::paper_memory_fraction(wl::kAllPaperWorkloads[i]);
      const auto result = core::run_simulation(config, *workloads[i]);
      const double gain =
          static_cast<double>(fifo_runtime[i]) / result.makespan - 1.0;
      if (gain > best_gain[i]) {
        best_gain[i] = gain;
        best_p[i] = p;
      }
      row.push_back(metrics::fmt_percent(gain, 1));
    }
    table.add_row(std::move(row));
  }

  std::printf("%s\n", table.markdown().c_str());
  for (std::size_t i = 0; i < workloads.size(); ++i)
    std::printf("%s: best p = %.2f (gain %s)\n",
                std::string(to_string(wl::kAllPaperWorkloads[i])).c_str(),
                best_p[i], metrics::fmt_percent(best_gain[i], 1).c_str());
  std::printf(
      "\nPaper section 5.6: \"CG benefits the most from a low ratio, while "
      "in case of LU or\nSCALE high ratio appears to work better.\"\n");
  table.save_csv("results/fig9_p_ratio.csv");
  return 0;
}
