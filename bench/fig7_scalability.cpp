// Fig. 7: runtime of each workload from 8 to 56 cores under the five
// configurations of the paper — no data movement, regular PT + FIFO,
// PSPT + FIFO, PSPT + LRU, PSPT + CMCP — with the memory constraint set to
// the per-workload value of section 5.4.
//
// The grid (4 workloads x 7 core counts x 5 configs = 140 independent
// simulations) runs on all host cores via the parallel runner.
//
//   fig7_scalability [--json FILE]
//
// Markdown tables go to stdout, raw per-app CSV to results/fig7_<app>.csv;
// --json additionally writes the whole grid as one schema-versioned document.
#include <cstdio>
#include <cstring>
#include <string>

#include "cmcp.h"

using namespace cmcp;

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  std::printf(
      "Fig. 7 — Performance of NPB workloads and SCALE: regular page tables "
      "vs PSPT under FIFO / LRU / CMCP\n(runtime in Mcycles, lower is "
      "better; relative-to-baseline in parentheses)\n\n");

  struct Config {
    const char* name;
    PageTableKind pt;
    PolicyKind policy;
    bool preload;
  };
  const Config configs[] = {
      {"no data movement", PageTableKind::kRegular, PolicyKind::kFifo, true},
      {"regular PT + FIFO", PageTableKind::kRegular, PolicyKind::kFifo, false},
      {"PSPT + FIFO", PageTableKind::kPspt, PolicyKind::kFifo, false},
      {"PSPT + LRU", PageTableKind::kPspt, PolicyKind::kLru, false},
      {"PSPT + CMCP", PageTableKind::kPspt, PolicyKind::kCmcp, false},
  };
  const auto core_counts = metrics::paper_core_counts();

  // Build the whole grid of specs, run it in parallel, then format.
  std::vector<metrics::RunSpec> specs;
  for (const auto which : wl::kAllPaperWorkloads) {
    for (const CoreId cores : core_counts) {
      for (const Config& c : configs) {
        metrics::RunSpec spec;
        spec.workload = which;
        spec.cores = cores;
        spec.pt_kind = c.pt;
        spec.policy.kind = c.policy;
        spec.policy.cmcp.p = wl::paper_best_p(which);
        spec.preload = c.preload;
        specs.push_back(spec);
      }
    }
  }
  const auto results = metrics::run_specs_parallel(specs);

  metrics::ResultWriter json_writer;
  json_writer.meta("figure", "7");
  json_writer.meta("fast_mode", metrics::fast_mode() ? "true" : "false");

  std::size_t idx = 0;
  for (const auto which : wl::kAllPaperWorkloads) {
    std::vector<std::string> headers = {"cores"};
    for (const Config& c : configs) headers.emplace_back(c.name);
    metrics::Table table(headers);
    metrics::ResultWriter csv_writer;

    double cmcp_vs_fifo_at_max = 0.0;
    for (const CoreId cores : core_counts) {
      std::vector<std::string> row = {std::to_string(cores)};
      Cycles baseline = 0, fifo = 0, cmcp = 0;
      for (const Config& c : configs) {
        const auto& result = results[idx++];
        if (c.preload) baseline = result.makespan;
        if (c.policy == PolicyKind::kFifo && c.pt == PageTableKind::kPspt)
          fifo = result.makespan;
        if (c.policy == PolicyKind::kCmcp) cmcp = result.makespan;
        const double rel =
            static_cast<double>(baseline) / static_cast<double>(result.makespan);
        row.push_back(metrics::fmt_double(result.makespan / 1e6, 1) + " (" +
                      metrics::fmt_percent(rel, 0) + ")");
        const auto fill = [&](metrics::ResultWriter::Row& out) {
          out.set("workload", to_string(which))
              .set("cores", cores)
              .set("config", c.name)
              .set("pt", to_string(c.pt))
              .set("policy", to_string(c.policy))
              .set("preload", static_cast<int>(c.preload))
              .set("makespan", result.makespan)
              .set("relative", rel)
              .set("major_faults", result.app_total.major_faults)
              .set("remote_invals",
                   result.app_total.remote_invalidations_received);
        };
        fill(csv_writer.add_row());
        if (!json_path.empty()) fill(json_writer.add_row());
      }
      cmcp_vs_fifo_at_max = static_cast<double>(fifo) / cmcp - 1.0;
      table.add_row(std::move(row));
    }

    std::printf("--- %s.B (memory: %s of footprint) ---\n%s",
                std::string(to_string(which)).c_str(),
                metrics::fmt_percent(wl::paper_memory_fraction(which), 0).c_str(),
                table.markdown().c_str());
    std::printf("CMCP vs FIFO at max cores: %+.1f%% (paper: BT +38%%, LU +25%%, "
                "CG +23%%, SCALE +13%%)\n\n",
                100.0 * cmcp_vs_fifo_at_max);
    csv_writer.save_csv("results/fig7_" + std::string(to_string(which)) +
                        ".csv");
  }
  std::printf("CSV written to results/fig7_<app>.csv\n");
  if (!json_path.empty()) {
    json_writer.save_json(json_path);
    std::printf("JSON written to %s\n", json_path.c_str());
  }
  return 0;
}
