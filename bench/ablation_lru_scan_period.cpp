// Ablation A2: the LRU scan-period tradeoff of section 5.5 — "the lower the
// frequency is, the less the TLB invalidation overhead becomes. However,
// doing so defeats the very purpose of LRU... Eventually, with very low
// page scanning frequency LRU simply fell back to the behavior of FIFO."
#include <cstdio>

#include "cmcp.h"

using namespace cmcp;

int main() {
  const CoreId cores = metrics::fast_mode() ? 16 : 32;
  const auto which = wl::PaperWorkload::kScale;
  std::printf(
      "Ablation A2 — LRU access-bit scan period sweep (%s, %u cores)\n\n",
      std::string(to_string(which)).c_str(), cores);

  wl::WorkloadParams params;
  params.cores = cores;
  const auto workload = wl::make_paper_workload(which, params);

  // FIFO reference.
  core::SimulationConfig fifo_config;
  fifo_config.machine.num_cores = cores;
  fifo_config.policy.kind = PolicyKind::kFifo;
  fifo_config.memory_fraction = wl::paper_memory_fraction(which);
  const auto fifo = core::run_simulation(fifo_config, *workload);

  metrics::Table table({"scan period (ms)", "runtime (Mcyc)", "vs FIFO",
                        "faults", "remote invals", "scans"});
  table.add_row({"FIFO (no scanning)", metrics::fmt_double(fifo.makespan / 1e6, 1),
                 "100%", metrics::fmt_u64(fifo.app_total.major_faults),
                 metrics::fmt_u64(fifo.app_total.remote_invalidations_received),
                 "0"});

  for (const double period_ms : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 200.0}) {
    core::SimulationConfig config = fifo_config;
    config.policy.kind = PolicyKind::kLru;
    config.machine.cost.scan_period =
        static_cast<Cycles>(period_ms * 1e6 * config.machine.cost.clock_ghz);
    const auto result = core::run_simulation(config, *workload);
    table.add_row(
        {metrics::fmt_double(period_ms, 0),
         metrics::fmt_double(result.makespan / 1e6, 1),
         metrics::fmt_percent(static_cast<double>(fifo.makespan) /
                              result.makespan),
         metrics::fmt_u64(result.app_total.major_faults),
         metrics::fmt_u64(result.app_total.remote_invalidations_received),
         metrics::fmt_u64(result.scans)});
  }

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "Expected: frequent scans -> fewer faults but crushing invalidation "
      "overhead;\nrare scans -> behaviour (and runtime) converges to FIFO.\n");
  table.save_csv("results/ablation_lru_scan_period.csv");
  return 0;
}
