// Fig. 10: relative performance of 4 kB / 64 kB / 2 MB pages as the memory
// constraint tightens (FIFO, 56 cores, class C / big footprints).
#include <cstdio>

#include "cmcp.h"

using namespace cmcp;

int main() {
  const CoreId cores = metrics::fast_mode() ? 24 : 56;
  std::printf(
      "Fig. 10 — Impact of page size on relative performance vs memory "
      "constraint\n(PSPT + FIFO, %u cores, class C / big footprints)\n\n",
      cores);

  const PageSizeClass sizes[] = {PageSizeClass::k4K, PageSizeClass::k64K,
                                 PageSizeClass::k2M};
  const double fractions[] = {1.0, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4};

  for (const auto which : wl::kAllPaperWorkloads) {
    wl::WorkloadParams params;
    params.cores = cores;
    const auto workload =
        wl::make_paper_workload(which, params, wl::WorkloadSize::kBig);

    std::vector<std::string> headers = {"memory provided"};
    for (const PageSizeClass size : sizes) headers.emplace_back(to_string(size));
    metrics::Table table(headers);

    // ONE baseline per benchmark — the system-default (4 kB) no-data-movement
    // run — so the TLB-reach advantage of the larger formats is visible as
    // ratios above the 4 kB curve, as in the paper's plots.
    Cycles baseline = 0;
    {
      core::SimulationConfig config;
      config.machine.num_cores = cores;
      config.machine.page_size = PageSizeClass::k4K;
      config.preload = true;
      baseline = core::run_simulation(config, *workload).makespan;
    }

    for (const double fraction : fractions) {
      std::vector<std::string> row = {metrics::fmt_percent(fraction, 0)};
      for (const PageSizeClass size : sizes) {
        core::SimulationConfig config;
        config.machine.num_cores = cores;
        config.machine.page_size = size;
        config.memory_fraction = fraction;
        config.policy.kind = PolicyKind::kFifo;
        const auto result = core::run_simulation(config, *workload);
        row.push_back(metrics::fmt_percent(
            static_cast<double>(baseline) / result.makespan, 0));
      }
      table.add_row(std::move(row));
    }

    std::printf("--- %s.C ---\n%s\n", std::string(to_string(which)).c_str(),
                table.markdown().c_str());
    table.save_csv("results/fig10_" + std::string(to_string(which)) + ".csv");
  }
  std::printf(
      "Expected shape (paper): 2MB wins under mild constraint; as memory "
      "shrinks the\nfiner granularities win — first 64kB, then 4kB for BT/LU; "
      "CG and SCALE keep\nfavouring 64kB over 4kB.\n");
  return 0;
}
