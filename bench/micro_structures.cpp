// google-benchmark microbenchmarks of the hot data structures: the fault
// path executes these operations millions of times per simulated second, so
// their real-world cost matters for simulator throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "mm/pspt.h"
#include "mm/regular_page_table.h"
#include "policy/cmcp.h"
#include "policy/fifo.h"
#include "policy/lru_approx.h"
#include "sim/tlb.h"
#include "testing/policy_harness.h"

namespace cmcp {
namespace {

// Unit-id space for benchmarks that stream fresh units. The page tables and
// the registry are direct-indexed by unit, so an unbounded `++u` would grow
// their backing arrays for the whole run; wrapping keeps them at a fixed
// working-set size. A wrapped id returns long after it was unmapped/evicted
// (resident sets here are <= 4096 units), so ids never collide.
constexpr UnitIdx kUnitSpace = 1u << 16;

void BM_TlbLookupHit(benchmark::State& state) {
  sim::Tlb tlb(64);
  for (UnitIdx u = 0; u < 64; ++u) tlb.insert(u);
  UnitIdx u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.lookup(u));
    u = (u + 1) % 64;
  }
}
BENCHMARK(BM_TlbLookupHit);

void BM_TlbMissInsertEvict(benchmark::State& state) {
  sim::Tlb tlb(64);
  UnitIdx u = 0;
  for (auto _ : state) {
    tlb.insert(u);
    u = (u + 1) % kUnitSpace;
  }
}
BENCHMARK(BM_TlbMissInsertEvict);

void BM_PsptMapUnmap(benchmark::State& state) {
  const CoreId cores = static_cast<CoreId>(state.range(0));
  mm::Pspt pt(cores);
  UnitIdx u = 0;
  for (auto _ : state) {
    for (CoreId c = 0; c < cores; ++c) pt.map(c, u, u * 8);
    benchmark::DoNotOptimize(pt.core_map_count(u));
    pt.unmap_all(u);
    u = (u + 1) % kUnitSpace;
  }
}
BENCHMARK(BM_PsptMapUnmap)->Arg(1)->Arg(4)->Arg(16)->Arg(56);

void BM_RegularMapUnmap(benchmark::State& state) {
  mm::RegularPageTable pt(56);
  UnitIdx u = 0;
  for (auto _ : state) {
    pt.map(0, u, u * 8);
    pt.unmap_all(u);
    u = (u + 1) % kUnitSpace;
  }
}
BENCHMARK(BM_RegularMapUnmap);

void BM_CoreMaskForEach(benchmark::State& state) {
  const CoreMask mask = CoreMask::first_n(static_cast<CoreId>(state.range(0)));
  for (auto _ : state) {
    unsigned sum = 0;
    mask.for_each([&](CoreId c) { sum += c; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CoreMaskForEach)->Arg(2)->Arg(56);

void BM_FifoInsertEvict(benchmark::State& state) {
  policy::FifoPolicy policy;
  testing::PageFactory pages;
  std::vector<mm::ResidentPage*> resident;
  for (UnitIdx u = 0; u < 1024; ++u) {
    resident.push_back(&pages.make(u));
    policy.on_insert(*resident.back());
  }
  UnitIdx next = 1024;
  for (auto _ : state) {
    Cycles extra = 0;
    mm::ResidentPage* victim = policy.pick_victim(0, extra);
    policy.on_evict(*victim);
    pages.registry().erase(*victim);
    auto& pg = pages.make(next);
    next = (next + 1) % kUnitSpace;
    policy.on_insert(pg);
  }
}
BENCHMARK(BM_FifoInsertEvict);

void BM_CmcpInsertEvict(benchmark::State& state) {
  testing::FakePolicyHost host(1024, 56);
  policy::CmcpConfig config;
  config.p = 0.4;
  policy::CmcpPolicy policy(host, config);
  testing::PageFactory pages;
  Rng rng(1);
  for (UnitIdx u = 0; u < 1024; ++u)
    policy.on_insert(pages.make(u, 1 + rng.next_below(8)));
  UnitIdx next = 1024;
  for (auto _ : state) {
    Cycles extra = 0;
    mm::ResidentPage* victim = policy.pick_victim(0, extra);
    policy.on_evict(*victim);
    pages.registry().erase(*victim);
    auto& pg = pages.make(next, 1 + rng.next_below(8));
    next = (next + 1) % kUnitSpace;
    policy.on_insert(pg);
  }
}
BENCHMARK(BM_CmcpInsertEvict);

void BM_CmcpAgingTick(benchmark::State& state) {
  testing::FakePolicyHost host(4096, 56);
  policy::CmcpConfig config;
  config.p = 1.0;
  config.age_limit_ticks = 4;
  policy::CmcpPolicy policy(host, config);
  testing::PageFactory pages;
  Rng rng(2);
  for (UnitIdx u = 0; u < 4096; ++u)
    policy.on_insert(pages.make(u, 1 + rng.next_below(8)));
  Cycles tick = 0;
  for (auto _ : state) policy.on_tick(tick++);
}
BENCHMARK(BM_CmcpAgingTick);

void BM_LruScanEvent(benchmark::State& state) {
  policy::LruApproxPolicy policy;
  testing::PageFactory pages;
  std::vector<mm::ResidentPage*> resident;
  for (UnitIdx u = 0; u < 1024; ++u) {
    resident.push_back(&pages.make(u));
    policy.on_insert(*resident.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    policy.on_scan(*resident[i % resident.size()], (i & 3) != 0);
    ++i;
  }
}
BENCHMARK(BM_LruScanEvent);

}  // namespace
}  // namespace cmcp

BENCHMARK_MAIN();
