// Table 1: per-core average page faults, remote TLB invalidations and dTLB
// misses for FIFO / LRU / CMCP on every workload, as a function of the core
// count. Also reports the lock-synchronization growth of section 5.5.
//
//   table1_policy_stats [--json FILE]
//
// Markdown tables go to stdout, raw per-app CSV to results/table1_<app>.csv;
// --json additionally writes the whole grid (policy-internal stats included)
// as one schema-versioned document.
#include <cstdio>
#include <cstring>
#include <string>

#include "cmcp.h"

using namespace cmcp;

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  std::printf(
      "Table 1 — Per-core average page faults, remote TLB invalidations and "
      "dTLB misses\n(PSPT; memory constraint per section 5.4)\n\n");

  const PolicyKind policies[] = {PolicyKind::kFifo, PolicyKind::kLru,
                                 PolicyKind::kCmcp};
  const char* attributes[] = {"page faults", "remote TLB invalidations",
                              "dTLB misses"};

  const auto core_counts = metrics::paper_core_counts();

  metrics::ResultWriter json_writer;
  json_writer.meta("table", "1");
  json_writer.meta("fast_mode", metrics::fast_mode() ? "true" : "false");

  for (const auto which : wl::kAllPaperWorkloads) {
    std::vector<std::string> headers = {"policy", "attribute"};
    for (const CoreId cores : core_counts)
      headers.push_back(std::to_string(cores) + " cores");
    metrics::Table table(headers);
    metrics::ResultWriter csv_writer;

    // rows[policy][attribute][core-index]
    std::vector<std::vector<std::vector<std::string>>> cells(
        3, std::vector<std::vector<std::string>>(3));
    std::vector<Cycles> lock_wait_fifo(core_counts.size(), 0);
    std::vector<Cycles> lock_wait_lru(core_counts.size(), 0);

    // Full policy x core-count grid, executed in parallel.
    std::vector<metrics::RunSpec> specs;
    for (const CoreId cores : core_counts) {
      for (const PolicyKind policy : policies) {
        metrics::RunSpec spec;
        spec.workload = which;
        spec.cores = cores;
        spec.policy.kind = policy;
        spec.policy.cmcp.p = wl::paper_best_p(which);
        specs.push_back(spec);
      }
    }
    const auto results = metrics::run_specs_parallel(specs);

    std::size_t idx = 0;
    for (std::size_t ci = 0; ci < core_counts.size(); ++ci) {
      for (std::size_t pi = 0; pi < 3; ++pi) {
        const auto& result = results[idx++];
        cells[pi][0].push_back(
            metrics::fmt_double(result.avg_major_faults_per_core(), 0));
        cells[pi][1].push_back(
            metrics::fmt_double(result.avg_remote_invalidations_per_core(), 0));
        cells[pi][2].push_back(
            metrics::fmt_double(result.avg_dtlb_misses_per_core(), 0));
        if (policies[pi] == PolicyKind::kFifo)
          lock_wait_fifo[ci] = result.app_total.cycles_lock_wait;
        if (policies[pi] == PolicyKind::kLru)
          lock_wait_lru[ci] = result.app_total.cycles_lock_wait;

        const auto fill = [&](metrics::ResultWriter::Row& out) {
          out.set("workload", to_string(which))
              .set("cores", core_counts[ci])
              .set("policy", to_string(policies[pi]))
              .set("major_faults_per_core", result.avg_major_faults_per_core())
              .set("remote_invals_per_core",
                   result.avg_remote_invalidations_per_core())
              .set("dtlb_misses_per_core", result.avg_dtlb_misses_per_core())
              .set("lock_wait_cycles", result.app_total.cycles_lock_wait)
              .set("makespan", result.makespan);
        };
        fill(csv_writer.add_row());
        if (!json_path.empty()) {
          auto& row = json_writer.add_row();
          fill(row);
          // Enumerable policy internals (the stats() visitor), no
          // hard-coded key list.
          for (const auto& [name, value] : result.policy_stats)
            row.set("policy." + name, value);
        }
      }
    }

    for (std::size_t pi = 0; pi < 3; ++pi) {
      for (std::size_t ai = 0; ai < 3; ++ai) {
        std::vector<std::string> row = {
            ai == 0 ? std::string(to_string(policies[pi])) : std::string(),
            attributes[ai]};
        for (auto& cell : cells[pi][ai]) row.push_back(std::move(cell));
        table.add_row(std::move(row));
      }
    }

    std::printf("--- %s.B ---\n%s", std::string(to_string(which)).c_str(),
                table.markdown().c_str());
    // Section 5.5's lock observation at max core count.
    const double lock_growth =
        lock_wait_fifo.back() > 0
            ? static_cast<double>(lock_wait_lru.back()) / lock_wait_fifo.back()
            : 0.0;
    std::printf(
        "LRU vs FIFO lock-synchronization cycles at %u cores: %.1fx (paper "
        "section 5.5: up to 8x)\n\n",
        core_counts.back(), lock_growth);
    csv_writer.save_csv("results/table1_" + std::string(to_string(which)) +
                        ".csv");
  }
  std::printf("CSV written to results/table1_<app>.csv\n");
  if (!json_path.empty()) {
    json_writer.save_json(json_path);
    std::printf("JSON written to %s\n", json_path.c_str());
  }
  return 0;
}
