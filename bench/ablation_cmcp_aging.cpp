// Ablation A1: does CMCP's aging mechanism matter? The paper argues aging
// prevents the priority group from being "monopolized" by dead shared
// pages. We compare aging on/off on the paper workloads and on the
// adversarial pattern where dead shared pages dominate.
#include <cstdio>

#include "cmcp.h"

using namespace cmcp;

namespace {

Cycles run(const wl::Workload& workload, bool aging, std::uint32_t age_ticks,
           double fraction, std::uint64_t* faults) {
  core::SimulationConfig config;
  config.machine.num_cores = workload.num_cores();
  config.policy.kind = PolicyKind::kCmcp;
  config.policy.cmcp.p = 0.5;
  config.policy.cmcp.aging_enabled = aging;
  config.policy.cmcp.age_limit_ticks = age_ticks;
  config.memory_fraction = fraction;
  const auto result = core::run_simulation(config, workload);
  if (faults != nullptr) *faults = result.app_total.major_faults;
  return result.makespan;
}

}  // namespace

int main() {
  const CoreId cores = metrics::fast_mode() ? 16 : 32;
  std::printf("Ablation A1 — CMCP aging on/off (p = 0.5, %u cores)\n\n", cores);

  metrics::Table table(
      {"workload", "aging off", "age=8", "age=24", "age=64", "off/age24"});

  for (const auto which : wl::kAllPaperWorkloads) {
    wl::WorkloadParams params;
    params.cores = cores;
    const auto workload = wl::make_paper_workload(which, params);
    const double fraction = wl::paper_memory_fraction(which);
    const Cycles off = run(*workload, false, 0, fraction, nullptr);
    const Cycles a8 = run(*workload, true, 8, fraction, nullptr);
    const Cycles a24 = run(*workload, true, 24, fraction, nullptr);
    const Cycles a64 = run(*workload, true, 64, fraction, nullptr);
    table.add_row({std::string(to_string(which)),
                   metrics::fmt_double(off / 1e6, 1) + " Mcyc",
                   metrics::fmt_double(a8 / 1e6, 1),
                   metrics::fmt_double(a24 / 1e6, 1),
                   metrics::fmt_double(a64 / 1e6, 1),
                   metrics::fmt_double(static_cast<double>(off) / a24, 3)});
  }

  // The adversarial pattern: without aging, dead shared pages monopolize
  // the group and CMCP never recovers the capacity.
  wl::AdversarialParams params;
  params.base.cores = cores;
  wl::AdversarialWorkload adversarial(params);
  std::uint64_t faults_off = 0, faults_on = 0;
  const Cycles off = run(adversarial, false, 0, 0.5, &faults_off);
  const Cycles a8 = run(adversarial, true, 8, 0.5, &faults_on);
  const Cycles a24 = run(adversarial, true, 24, 0.5, nullptr);
  const Cycles a64 = run(adversarial, true, 64, 0.5, nullptr);
  table.add_row({"adversarial", metrics::fmt_double(off / 1e6, 1) + " Mcyc",
                 metrics::fmt_double(a8 / 1e6, 1),
                 metrics::fmt_double(a24 / 1e6, 1),
                 metrics::fmt_double(a64 / 1e6, 1),
                 metrics::fmt_double(static_cast<double>(off) / a24, 3)});

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "adversarial faults: aging off = %llu, aging(8) = %llu — aging lets the "
      "dead\nshared region drain back to FIFO (paper section 3).\n",
      static_cast<unsigned long long>(faults_off),
      static_cast<unsigned long long>(faults_on));
  table.save_csv("results/ablation_cmcp_aging.csv");
  return 0;
}
