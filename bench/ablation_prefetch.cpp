// Ablation A6 (extension): sequential readahead on major faults. The
// paper's kernel fetches exactly the faulting page; readahead trades link
// bandwidth for fault latency. On the streaming-heavy workloads it should
// convert most majors into minor faults without moving extra data.
#include <cstdio>

#include "cmcp.h"

using namespace cmcp;

int main() {
  const CoreId cores = metrics::fast_mode() ? 16 : 32;
  std::printf("Ablation A6 — sequential prefetch degree (PSPT + CMCP, %u cores)\n\n",
              cores);

  for (const auto which : {wl::PaperWorkload::kBt, wl::PaperWorkload::kCg}) {
    wl::WorkloadParams params;
    params.cores = cores;
    const auto workload = wl::make_paper_workload(which, params);

    metrics::Table table({"degree", "runtime (Mcyc)", "major faults",
                          "prefetch hits", "wasted prefetches", "PCIe GB"});
    Cycles base_runtime = 0;
    for (const unsigned degree : {0u, 1u, 2u, 4u, 8u, 16u}) {
      core::SimulationConfig config;
      config.machine.num_cores = cores;
      config.policy.kind = PolicyKind::kCmcp;
      config.policy.cmcp.p = wl::paper_best_p(which);
      config.memory_fraction = wl::paper_memory_fraction(which);
      config.prefetch_degree = degree;
      const auto r = core::run_simulation(config, *workload);
      if (degree == 0) base_runtime = r.makespan;
      table.add_row(
          {metrics::fmt_u64(degree), metrics::fmt_double(r.makespan / 1e6, 1),
           metrics::fmt_u64(r.app_total.major_faults),
           metrics::fmt_u64(r.app_total.prefetch_hits),
           metrics::fmt_u64(r.app_total.prefetches - r.app_total.prefetch_hits),
           metrics::fmt_double((r.app_total.pcie_bytes_in +
                                r.app_total.pcie_bytes_out) /
                                   1e9,
                               2)});
      (void)base_runtime;
    }
    std::printf("--- %s ---\n%s\n", std::string(to_string(which)).c_str(),
                table.markdown().c_str());
    table.save_csv("results/ablation_prefetch_" +
                   std::string(to_string(which)) + ".csv");
  }
  std::printf(
      "Wasted prefetches (issued, evicted untouched) are the cost of "
      "guessing; the\nstreaming sweeps make sequential guesses mostly "
      "right.\n");
  return 0;
}
