// Ablation A3: sensitivity to the IPI cost. The paper's conclusion — LRU
// loses because of shootdown overhead — should invert on a hypothetical
// machine with near-free remote TLB invalidation (the hardware support the
// paper asks vendors for in section 2.3).
#include <cstdio>

#include "cmcp.h"

using namespace cmcp;

int main() {
  const CoreId cores = metrics::fast_mode() ? 16 : 32;
  const auto which = wl::PaperWorkload::kCg;
  std::printf(
      "Ablation A3 — IPI/shootdown cost sensitivity (%s, %u cores)\n"
      "scaling all shootdown costs by a factor; 1.0 = modelled KNC\n\n",
      std::string(to_string(which)).c_str(), cores);

  wl::WorkloadParams params;
  params.cores = cores;
  const auto workload = wl::make_paper_workload(which, params);

  metrics::Table table({"cost factor", "FIFO (Mcyc)", "LRU (Mcyc)",
                        "CMCP (Mcyc)", "LRU vs FIFO", "CMCP vs FIFO"});

  for (const double factor : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    Cycles runtimes[3] = {};
    const PolicyKind policies[] = {PolicyKind::kFifo, PolicyKind::kLru,
                                   PolicyKind::kCmcp};
    for (int pi = 0; pi < 3; ++pi) {
      core::SimulationConfig config;
      config.machine.num_cores = cores;
      config.policy.kind = policies[pi];
      config.policy.cmcp.p = wl::paper_best_p(which);
      config.memory_fraction = wl::paper_memory_fraction(which);
      auto& cost = config.machine.cost;
      cost.ipi_initiate = static_cast<Cycles>(cost.ipi_initiate * factor);
      cost.ipi_per_target = static_cast<Cycles>(cost.ipi_per_target * factor);
      cost.ipi_receive = static_cast<Cycles>(cost.ipi_receive * factor);
      cost.inval_slot_hold = static_cast<Cycles>(cost.inval_slot_hold * factor);
      cost.invlpg = static_cast<Cycles>(cost.invlpg * factor);
      runtimes[pi] = core::run_simulation(config, *workload).makespan;
    }
    table.add_row(
        {metrics::fmt_double(factor, 2), metrics::fmt_double(runtimes[0] / 1e6, 1),
         metrics::fmt_double(runtimes[1] / 1e6, 1),
         metrics::fmt_double(runtimes[2] / 1e6, 1),
         metrics::fmt_percent(static_cast<double>(runtimes[0]) / runtimes[1]),
         metrics::fmt_percent(static_cast<double>(runtimes[0]) / runtimes[2])});
  }

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "Expected: with free shootdowns (factor 0) LRU's fault savings win; at "
      "real KNC\ncosts the overhead dominates and the paper's ordering (CMCP > "
      "FIFO > LRU) holds.\n");
  table.save_csv("results/ablation_shootdown_cost.csv");
  return 0;
}
