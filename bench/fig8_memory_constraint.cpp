// Fig. 8: relative performance as a function of the memory provided
// (PSPT + FIFO, 4 kB pages, 56 cores), sweeping the fraction from 100% down
// to 30% — the turning-point analysis of section 5.3.
#include <cstdio>

#include "cmcp.h"

using namespace cmcp;

int main() {
  const CoreId cores = metrics::fast_mode() ? 24 : 56;
  std::printf(
      "Fig. 8 — Relative performance vs physical memory provided\n"
      "(PSPT + FIFO, 4kB pages, %u cores; 100%% = no data movement)\n\n",
      cores);

  const double fractions[] = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.35, 0.3};

  std::vector<std::string> headers = {"memory provided"};
  for (const auto which : wl::kAllPaperWorkloads)
    headers.emplace_back(to_string(which));
  metrics::Table table(headers);

  // Baselines per workload.
  std::vector<Cycles> baselines;
  std::vector<std::unique_ptr<wl::Workload>> workloads;
  for (const auto which : wl::kAllPaperWorkloads) {
    wl::WorkloadParams params;
    params.cores = cores;
    workloads.push_back(wl::make_paper_workload(which, params));
    core::SimulationConfig config;
    config.machine.num_cores = cores;
    config.preload = true;
    baselines.push_back(core::run_simulation(config, *workloads.back()).makespan);
  }

  for (const double fraction : fractions) {
    std::vector<std::string> row = {metrics::fmt_percent(fraction, 0)};
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      core::SimulationConfig config;
      config.machine.num_cores = cores;
      config.memory_fraction = fraction;
      config.policy.kind = PolicyKind::kFifo;
      const auto result = core::run_simulation(config, *workloads[i]);
      row.push_back(metrics::fmt_percent(
          static_cast<double>(baselines[i]) / result.makespan, 0));
    }
    table.add_row(std::move(row));
  }

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "Expected shape (paper): BT/LU degrade gradually below 100%%; CG and "
      "SCALE hold\nuntil their touched working set no longer fits (paper: "
      "~35%% and ~55%%), then drop.\n");
  table.save_csv("results/fig8_memory_constraint.csv");
  return 0;
}
