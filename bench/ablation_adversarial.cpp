// Ablation A4: the paper concedes (section 3) that "one could intentionally
// construct memory access patterns for which this heuristic wouldn't work
// well." This bench constructs exactly that pattern — a widely-shared
// region touched once and never again, plus hot private working sets — and
// measures how badly CMCP misfires and how much aging rescues it.
#include <cstdio>

#include "cmcp.h"

using namespace cmcp;

int main() {
  const CoreId cores = metrics::fast_mode() ? 16 : 32;
  std::printf(
      "Ablation A4 — adversarial anti-CMCP pattern (%u cores)\n"
      "dead shared region (max core-map count, touched once) + hot private "
      "sets\n\n",
      cores);

  // Sizing is the point: the hot private set fits device memory (FIFO
  // streams the dead region through once and then never faults again), but
  // if CMCP pins the dead shared region, what remains no longer holds the
  // hot set and it thrashes forever.
  wl::AdversarialParams params;
  params.base.cores = cores;
  params.dead_shared_pages = 2048;
  params.private_pages_per_core = 96;
  params.rounds = 24;
  wl::AdversarialWorkload workload(params);

  metrics::Table table({"policy", "runtime (Mcyc)", "faults", "vs FIFO"});

  core::SimulationConfig base;
  base.machine.num_cores = cores;
  base.memory_fraction = 0.70;

  const auto run = [&](PolicyKind kind, double p, bool aging,
                       const std::string& label) {
    core::SimulationConfig config = base;
    config.policy.kind = kind;
    config.policy.cmcp.p = p;
    config.policy.cmcp.aging_enabled = aging;
    const auto result = core::run_simulation(config, workload);
    return std::make_pair(label, result);
  };

  const auto fifo = run(PolicyKind::kFifo, 0, true, "FIFO");
  const auto rows = {
      fifo,
      run(PolicyKind::kLru, 0, true, "LRU"),
      run(PolicyKind::kCmcp, 0.6, true, "CMCP p=0.6 (aging on)"),
      run(PolicyKind::kCmcp, 0.6, false, "CMCP p=0.6 (aging OFF)"),
      run(PolicyKind::kCmcp, 0.1, true, "CMCP p=0.1 (aging on)"),
      run(PolicyKind::kCmcpDynamicP, 0.6, true, "CMCP dynamic-p"),
  };

  for (const auto& [label, result] : rows) {
    table.add_row({label, metrics::fmt_double(result.makespan / 1e6, 1),
                   metrics::fmt_u64(result.app_total.major_faults),
                   metrics::fmt_percent(static_cast<double>(
                                            fifo.second.makespan) /
                                        result.makespan)});
  }

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "Expected: CMCP without aging pins the dead shared region and loses "
      "badly; aging\n(and the dynamic-p controller) bound the damage.\n");
  table.save_csv("results/ablation_adversarial.csv");
  return 0;
}
