// Ablation A5: the paper's future work (section 5.6) — adjusting p at
// runtime from fault-frequency feedback. We compare the hill-climbing
// controller against the best and worst static p per workload.
#include <cstdint>
#include <cstdio>
#include <string_view>

#include "cmcp.h"

using namespace cmcp;

int main() {
  const CoreId cores = metrics::fast_mode() ? 16 : 32;
  std::printf(
      "Ablation A5 — dynamic-p controller vs static p (%u cores)\n\n", cores);

  metrics::Table table({"workload", "best static p", "best static (Mcyc)",
                        "worst static (Mcyc)", "dynamic (Mcyc)",
                        "dynamic vs best", "final p"});

  for (const auto which : wl::kAllPaperWorkloads) {
    wl::WorkloadParams params;
    params.cores = cores;
    const auto workload = wl::make_paper_workload(which, params);
    const double fraction = wl::paper_memory_fraction(which);

    Cycles best = ~Cycles{0}, worst = 0;
    double best_p = 0;
    for (const double p : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9}) {
      core::SimulationConfig config;
      config.machine.num_cores = cores;
      config.policy.kind = PolicyKind::kCmcp;
      config.policy.cmcp.p = p;
      config.memory_fraction = fraction;
      const Cycles t = core::run_simulation(config, *workload).makespan;
      if (t < best) {
        best = t;
        best_p = p;
      }
      worst = std::max(worst, t);
    }

    core::SimulationConfig config;
    config.machine.num_cores = cores;
    config.policy.kind = PolicyKind::kCmcpDynamicP;
    config.policy.dynamic_p.cmcp.p = 0.5;  // neutral start
    config.memory_fraction = fraction;
    wl::WorkloadParams wp;
    wp.cores = cores;
    const auto w2 = wl::make_paper_workload(which, wp);
    core::Simulation sim(config, *w2);
    const auto result = sim.run();
    std::uint64_t p_permille = 0;
    sim.memory_manager().policy().stats(
        [&](std::string_view name, std::uint64_t value) {
          if (name == "p_permille") p_permille = value;
        });
    const auto final_p = p_permille / 1000.0;

    table.add_row({std::string(to_string(which)), metrics::fmt_double(best_p, 1),
                   metrics::fmt_double(best / 1e6, 1),
                   metrics::fmt_double(worst / 1e6, 1),
                   metrics::fmt_double(result.makespan / 1e6, 1),
                   metrics::fmt_percent(static_cast<double>(best) /
                                        result.makespan),
                   metrics::fmt_double(final_p, 2)});
  }

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "Expected: the controller lands close to the best static p without "
      "per-workload\ntuning (the paper adjusted p manually).\n");
  table.save_csv("results/ablation_dynamic_p.csv");
  return 0;
}
