// Example: implementing your own replacement policy against the public
// policy interface and running it inside the full simulation via
// SimulationConfig::custom_policy.
//
// The policy below ("CMCP-W") is a variant of CMCP that orders victims by a
// weight combining core-map count and write activity: dirty shared pages
// are the most expensive to evict (wide shootdown + write-back), so they
// are kept longest. It shows everything a downstream policy needs —
// residency callbacks, victim selection, and how to plug into the engine.
//
//   $ ./custom_policy
#include <cstdio>
#include <vector>

#include "cmcp.h"
#include "common/intrusive_list.h"

namespace {

using namespace cmcp;

class WeightedCmcpPolicy final : public policy::ReplacementPolicy {
 public:
  explicit WeightedCmcpPolicy(policy::PolicyHost& host)
      : host_(host), buckets_(2 * host.num_cores() + 2) {}

  std::string_view name() const override { return "CMCP-W"; }

  void on_insert(mm::ResidentPage& page) override {
    page.bucket = weight(page);
    buckets_[page.bucket].push_back(page);
  }

  void on_core_map_grow(mm::ResidentPage& page) override {
    // Re-rank: the page gained a mapping core.
    buckets_[page.bucket].erase(page);
    page.bucket = weight(page);
    buckets_[page.bucket].push_back(page);
  }

  mm::ResidentPage* pick_victim(CoreId /*core*/, Cycles& /*extra*/) override {
    // Lowest weight first; FIFO inside a bucket.
    for (auto& bucket : buckets_)
      if (mm::ResidentPage* page = bucket.front(); page != nullptr) return page;
    return nullptr;
  }

  void on_evict(mm::ResidentPage& page) override {
    buckets_[page.bucket].erase(page);
  }

 private:
  std::uint32_t weight(const mm::ResidentPage& page) const {
    // 2 points per mapping core; like CMCP, this uses only PSPT-provided
    // knowledge — no accessed bits, hence no scanning shootdowns ever.
    const std::uint32_t w = 2 * page.core_map_count;
    return std::min<std::uint32_t>(w, static_cast<std::uint32_t>(buckets_.size() - 1));
  }

  policy::PolicyHost& host_;
  std::vector<IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node>>
      buckets_;
};

}  // namespace

int main() {
  using namespace cmcp;

  const CoreId cores = 32;
  wl::WorkloadParams params;
  params.cores = cores;
  const auto workload = wl::make_paper_workload(wl::PaperWorkload::kBt, params);

  core::SimulationConfig config;
  config.machine.num_cores = cores;
  config.memory_fraction = wl::paper_memory_fraction(wl::PaperWorkload::kBt);

  metrics::Table table({"policy", "runtime (Mcyc)", "faults", "remote invals"});

  // Built-in baselines.
  for (const PolicyKind kind : {PolicyKind::kFifo, PolicyKind::kCmcp}) {
    config.policy.kind = kind;
    config.policy.cmcp.p = wl::paper_best_p(wl::PaperWorkload::kBt);
    config.custom_policy = nullptr;
    const auto r = core::run_simulation(config, *workload);
    table.add_row({std::string(to_string(kind)),
                   metrics::fmt_double(r.makespan / 1e6, 1),
                   metrics::fmt_u64(r.app_total.major_faults),
                   metrics::fmt_u64(r.app_total.remote_invalidations_received)});
  }

  // The custom policy, injected through the factory hook.
  config.custom_policy = [](policy::PolicyHost& host) {
    return std::make_unique<WeightedCmcpPolicy>(host);
  };
  const auto custom = core::run_simulation(config, *workload);
  table.add_row({"CMCP-W (custom)", metrics::fmt_double(custom.makespan / 1e6, 1),
                 metrics::fmt_u64(custom.app_total.major_faults),
                 metrics::fmt_u64(custom.app_total.remote_invalidations_received)});

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "See policy/replacement_policy.h for the full interface: scanner hooks "
      "(on_scan),\nperiodic ticks (on_tick), and PolicyHost services "
      "(accessed-bit reads at\nshootdown cost) are all available to custom "
      "policies.\n");
  return 0;
}
