// Example: compare ALL seven replacement policies (the paper's three plus
// the library's extension baselines) on one workload, reporting the full
// observable breakdown — a template for evaluating your own policy.
//
//   $ ./policy_comparison [cg|lu|bt|scale]
#include <cstdio>
#include <cstring>

#include "cmcp.h"

int main(int argc, char** argv) {
  using namespace cmcp;

  wl::PaperWorkload which = wl::PaperWorkload::kLu;
  if (argc > 1) {
    for (const auto candidate : wl::kAllPaperWorkloads)
      if (to_string(candidate) == argv[1]) which = candidate;
  }

  const CoreId cores = 24;
  wl::WorkloadParams params;
  params.cores = cores;
  const auto workload = wl::make_paper_workload(which, params);

  core::SimulationConfig config;
  config.machine.num_cores = cores;
  config.preload = true;
  const auto baseline = core::run_simulation(config, *workload);

  std::printf("workload %s, %u cores, %s of footprint in device memory\n\n",
              std::string(to_string(which)).c_str(), cores,
              metrics::fmt_percent(wl::paper_memory_fraction(which), 0).c_str());

  metrics::Table table({"policy", "relative perf", "major faults",
                        "minor faults", "remote invals", "lock-wait Mcyc",
                        "interrupt Mcyc"});

  config.preload = false;
  config.memory_fraction = wl::paper_memory_fraction(which);
  for (const PolicyKind kind :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kCmcp,
        PolicyKind::kClock, PolicyKind::kLfu, PolicyKind::kRandom, PolicyKind::kArc,
        PolicyKind::kCmcpDynamicP}) {
    config.policy.kind = kind;
    config.policy.cmcp.p = wl::paper_best_p(which);
    config.policy.dynamic_p.cmcp.p = 0.5;
    const auto r = core::run_simulation(config, *workload);
    table.add_row(
        {std::string(to_string(kind)),
         metrics::fmt_percent(metrics::relative_performance(baseline, r)),
         metrics::fmt_u64(r.app_total.major_faults),
         metrics::fmt_u64(r.app_total.minor_faults),
         metrics::fmt_u64(r.app_total.remote_invalidations_received),
         metrics::fmt_double(r.app_total.cycles_lock_wait / 1e6, 1),
         metrics::fmt_double(r.app_total.cycles_interrupt / 1e6, 1)});
  }

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "Access-bit based policies (LRU/LFU/CLOCK) pay for usage sampling in "
      "remote\ninvalidations and lock waits; CMCP gets its signal from PSPT "
      "for free.\n");
  return 0;
}
