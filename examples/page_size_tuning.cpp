// Example: choosing a page size for an out-of-core sparse solver.
//
// Walks a CG-style workload through device-memory budgets from generous to
// starved, printing the best page size at each point — the decision matrix
// behind the paper's Fig. 10 and its conclusion that "the choice of
// appropriate page size depends primarily on the degree of memory
// constraint in the system."
//
//   $ ./page_size_tuning
#include <cstdio>

#include "cmcp.h"

int main() {
  using namespace cmcp;

  const CoreId cores = 32;
  wl::WorkloadParams params;
  params.cores = cores;
  params.scale = 2.0;  // enough 2 MB units to matter
  const auto workload = wl::make_paper_workload(wl::PaperWorkload::kCg, params);

  std::printf(
      "Out-of-core sparse solver, %u cores, footprint %.0f MB equivalent\n\n",
      cores, workload->footprint_base_pages() * 4096.0 / 1e6);

  const PageSizeClass sizes[] = {PageSizeClass::k4K, PageSizeClass::k64K,
                                 PageSizeClass::k2M};

  metrics::Table table({"device memory", "4kB (Mcyc)", "64kB (Mcyc)",
                        "2MB (Mcyc)", "best"});

  for (const double fraction : {1.0, 0.8, 0.6, 0.5, 0.4, 0.3}) {
    std::vector<std::string> row = {metrics::fmt_percent(fraction, 0)};
    Cycles best = ~Cycles{0};
    PageSizeClass best_size = PageSizeClass::k4K;
    for (const PageSizeClass size : sizes) {
      core::SimulationConfig config;
      config.machine.num_cores = cores;
      config.machine.page_size = size;
      config.memory_fraction = fraction;
      config.policy.kind = PolicyKind::kCmcp;
      config.policy.cmcp.p = 0.1;
      const auto result = core::run_simulation(config, *workload);
      row.push_back(metrics::fmt_double(result.makespan / 1e6, 1));
      if (result.makespan < best) {
        best = result.makespan;
        best_size = size;
      }
    }
    row.emplace_back(to_string(best_size));
    table.add_row(std::move(row));
  }

  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "Rule of thumb from the sweep: generous memory -> large pages (TLB "
      "reach);\ntight memory -> small pages (transfer granularity); 64 kB is "
      "the hedge —\nexactly the paper's conclusion about the Phi's "
      "experimental page size.\n");
  return 0;
}
