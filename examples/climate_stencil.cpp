// Domain example: a SCALE-like climate stencil running out-of-core.
//
// Scenario from the paper's introduction: a weather model whose grids do
// not fit the co-processor's 8 GB. We size the domain at 2x the device
// memory and ask: which policy and page size keep the time step closest to
// the all-resident ideal?
//
//   $ ./climate_stencil
#include <cstdio>

#include "cmcp.h"

int main() {
  using namespace cmcp;

  const CoreId cores = 56;

  // Build the stencil workload: 8 prognostic fields, depth-2 halos.
  wl::StencilParams stencil;
  stencil.base.cores = cores;
  stencil.base.scale = 1.0;
  const wl::StencilWorkload workload(stencil);
  std::printf("domain: %llu pages (%.1f MB equivalent), %u cores\n\n",
              static_cast<unsigned long long>(workload.footprint_base_pages()),
              workload.footprint_base_pages() * 4096.0 / 1e6, cores);

  // Ideal: everything resident.
  core::SimulationConfig config;
  config.machine.num_cores = cores;
  config.preload = true;
  const auto ideal = core::run_simulation(config, workload);
  const double step_ms =
      metrics::cycles_to_seconds(ideal.makespan, config.machine.cost) * 1e3 / 6;
  std::printf("all-resident ideal : %.2f ms per time step\n\n", step_ms);

  // Device memory holds only half the domain.
  config.preload = false;
  config.memory_fraction = 0.5;

  metrics::Table table({"configuration", "ms/step", "vs ideal", "faults",
                        "PCIe GB moved"});
  for (const PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kCmcp,
        PolicyKind::kCmcpDynamicP}) {
    for (const PageSizeClass size : {PageSizeClass::k4K, PageSizeClass::k64K}) {
      config.policy.kind = policy;
      config.policy.cmcp.p = 0.7;
      config.policy.dynamic_p.cmcp.p = 0.5;
      config.machine.page_size = size;
      const auto result = core::run_simulation(config, workload);
      const double ms =
          metrics::cycles_to_seconds(result.makespan, config.machine.cost) *
          1e3 / 6;
      const double gb = (result.app_total.pcie_bytes_in +
                         result.app_total.pcie_bytes_out) /
                        1e9;
      table.add_row({std::string(to_string(policy)) + " + " +
                         std::string(to_string(size)),
                     metrics::fmt_double(ms, 2),
                     metrics::fmt_percent(static_cast<double>(ideal.makespan) /
                                          result.makespan),
                     metrics::fmt_u64(result.app_total.major_faults),
                     metrics::fmt_double(gb, 2)});
    }
  }
  std::printf("%s\n", table.markdown().c_str());
  std::printf(
      "Takeaway: CMCP keeps the halo pages (the ones shared between "
      "neighbouring\ndomain strips) resident without any access-bit scanning, "
      "and 64 kB pages cut\nTLB misses without 2 MB pages' transfer bloat.\n");
  return 0;
}
