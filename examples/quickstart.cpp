// Quickstart: run the paper's headline comparison on one workload.
//
// Simulates NPB BT (class B analogue) on a 56-core Knights Corner style
// machine with device memory capped at 64% of the footprint, and compares
// the three page replacement policies of the paper — FIFO, LRU, CMCP — on
// top of per-core partially separated page tables (PSPT), against the
// unconstrained "no data movement" baseline.
//
//   $ ./quickstart
#include <cstdio>

#include "cmcp.h"

int main() {
  using namespace cmcp;

  // The workload: every config below replays the same access schedules.
  wl::WorkloadParams params;
  params.cores = 56;
  const auto workload = wl::make_paper_workload(wl::PaperWorkload::kBt, params);

  // Baseline: enough device memory that nothing ever moves.
  core::SimulationConfig config;
  config.machine.num_cores = params.cores;
  config.preload = true;
  const auto baseline = core::run_simulation(config, *workload);
  std::printf("no data movement      : %12llu cycles (baseline)\n",
              static_cast<unsigned long long>(baseline.makespan));

  // Constrained runs: 64% of the footprint (the paper's BT setting).
  config.preload = false;
  config.memory_fraction = wl::paper_memory_fraction(wl::PaperWorkload::kBt);

  for (const PolicyKind kind :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kCmcp}) {
    config.policy.kind = kind;
    config.policy.cmcp.p = 0.4;
    const auto result = core::run_simulation(config, *workload);
    std::printf(
        "PSPT + %-14s: %12llu cycles — %5.1f%% of baseline, "
        "%llu faults, %llu remote TLB invalidations\n",
        std::string(to_string(kind)).c_str(),
        static_cast<unsigned long long>(result.makespan),
        100.0 * metrics::relative_performance(baseline, result),
        static_cast<unsigned long long>(result.app_total.major_faults),
        static_cast<unsigned long long>(
            result.app_total.remote_invalidations_received));
  }
  return 0;
}
