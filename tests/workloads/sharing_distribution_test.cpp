// Fig. 6 reproduction at test scale: the page-sharing distributions the
// CMCP heuristic relies on. Unconstrained PSPT runs; the histogram comes
// straight out of the per-core page tables, as in the paper.
#include <gtest/gtest.h>

#include <numeric>

#include "core/simulation.h"
#include "workloads/workload_factory.h"

namespace cmcp::wl {
namespace {

struct Dist {
  std::vector<double> frac;  // frac[c] = share of pages mapped by c cores
  double at(std::size_t c) const { return c < frac.size() ? frac[c] : 0.0; }
  double at_most(std::size_t c) const {
    double sum = 0;
    for (std::size_t i = 1; i <= c && i < frac.size(); ++i) sum += frac[i];
    return sum;
  }
};

Dist sharing_for(PaperWorkload which, CoreId cores) {
  WorkloadParams params;
  params.cores = cores;
  // Test scale. Not smaller: with tiny per-core blocks the halo and
  // exchange structures degenerate and the tails vanish.
  params.scale = 0.5;
  const auto w = make_paper_workload(which, params);
  core::SimulationConfig config;
  config.machine.num_cores = cores;
  config.preload = true;
  const auto result = core::run_simulation(config, *w);
  const double total = std::accumulate(result.sharing_histogram.begin(),
                                       result.sharing_histogram.end(), 0.0);
  Dist d;
  d.frac.resize(result.sharing_histogram.size());
  for (std::size_t i = 0; i < d.frac.size(); ++i)
    d.frac[i] = result.sharing_histogram[i] / total;
  return d;
}

class SharingTest : public ::testing::TestWithParam<CoreId> {};

TEST_P(SharingTest, CgMajorityPrivateRestTwoCores) {
  // Fig. 6a: "over 50% of the pages are core private. Furthermore the
  // remaining pages are mainly shared by only two cores."
  const Dist d = sharing_for(PaperWorkload::kCg, GetParam());
  EXPECT_GT(d.at(1), 0.5);
  EXPECT_GT(d.at(2), 0.2);
  EXPECT_GT(d.at(1) + d.at(2), 0.9);
}

TEST_P(SharingTest, ScaleMajorityPrivateRestTwoCores) {
  // Fig. 6d: stencil — same structure as CG.
  const Dist d = sharing_for(PaperWorkload::kScale, GetParam());
  EXPECT_GT(d.at(1), 0.5);
  EXPECT_GT(d.at(1) + d.at(2), 0.9);
}

TEST_P(SharingTest, LuLessRegularButMajorityAtMostThree) {
  // Fig. 6b: "LU and BT show somewhat less regular pattern, nevertheless,
  // the majority of pages are still mapped by only less than six cores and
  // over half of them are mapped by at most three."
  const Dist d = sharing_for(PaperWorkload::kLu, GetParam());
  EXPECT_GT(d.at_most(3), 0.5);
  EXPECT_GT(d.at_most(5), 0.9);
  // Less regular than CG: a real 3+ population exists.
  EXPECT_GT(1.0 - d.at(1) - d.at(2), 0.02);
}

TEST_P(SharingTest, BtFlattestDistribution) {
  const Dist d = sharing_for(PaperWorkload::kBt, GetParam());
  EXPECT_GT(d.at_most(3), 0.5);
  EXPECT_GT(1.0 - d.at(1) - d.at(2), 0.05);
  // Still overwhelmingly <= 6 cores.
  EXPECT_GT(d.at_most(6), 0.9);
}

TEST_P(SharingTest, NoUnmappedResidentPages) {
  const Dist d = sharing_for(PaperWorkload::kCg, GetParam());
  EXPECT_DOUBLE_EQ(d.at(0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SharingTest, ::testing::Values(8, 16, 32),
                         [](const auto& param_info) {
                           return "cores" + std::to_string(param_info.param);
                         });

TEST(SharingShape, CgIsMorePrivateThanBt) {
  const Dist cg = sharing_for(PaperWorkload::kCg, 16);
  const Dist bt = sharing_for(PaperWorkload::kBt, 16);
  EXPECT_GT(cg.at(1), bt.at(1));
}

TEST(SharingShape, ScaleIsMostPrivate) {
  const Dist scale = sharing_for(PaperWorkload::kScale, 16);
  const Dist lu = sharing_for(PaperWorkload::kLu, 16);
  EXPECT_GT(scale.at(1), lu.at(1));
}

}  // namespace
}  // namespace cmcp::wl
