#include "workloads/schedule_builder.h"

#include <gtest/gtest.h>

namespace cmcp::wl {
namespace {

std::vector<Op> drain(std::shared_ptr<const std::vector<Op>> schedule) {
  VectorStream stream(std::move(schedule));
  std::vector<Op> ops;
  for (;;) {
    const Op op = stream.next();
    if (op.kind == OpKind::kEnd) break;
    ops.push_back(op);
  }
  return ops;
}

TEST(ScheduleBuilder, TouchCarriesComputePerPage) {
  ScheduleBuilder sb(1, /*compute_per_page=*/500);
  sb.touch(0, 10, 4, /*write=*/true, /*repeat=*/2);
  const auto ops = drain(sb.finish()[0]);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].kind, OpKind::kAccess);
  EXPECT_EQ(ops[0].vpn, 10u);
  EXPECT_EQ(ops[0].count, 4u);
  EXPECT_EQ(ops[0].repeat, 2);
  EXPECT_TRUE(ops[0].write);
  EXPECT_EQ(ops[0].cycles, 500u * 2);  // per-page compute scales with repeat
}

TEST(ScheduleBuilder, ZeroCountTouchIsDropped) {
  ScheduleBuilder sb(1, 100);
  sb.touch(0, 0, 0, false);
  EXPECT_TRUE(drain(sb.finish()[0]).empty());
}

TEST(ScheduleBuilder, TouchPageVariants) {
  ScheduleBuilder sb(1, 700);
  sb.touch_page(0, 5, false);          // no compute
  sb.touch_page_compute(0, 6, false);  // standard compute
  const auto ops = drain(sb.finish()[0]);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].cycles, 0u);
  EXPECT_EQ(ops[1].cycles, 700u);
}

TEST(ScheduleBuilder, ComputeAndPushOp) {
  ScheduleBuilder sb(1, 0);
  sb.compute(0, 0);  // dropped
  sb.compute(0, 123);
  sb.push_op(0, Op::syscall(999, 64));
  const auto ops = drain(sb.finish()[0]);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].kind, OpKind::kCompute);
  EXPECT_EQ(ops[0].cycles, 123u);
  EXPECT_EQ(ops[1].kind, OpKind::kSyscall);
  EXPECT_EQ(ops[1].cycles, 999u);
  EXPECT_EQ(ops[1].count, 64u);
}

TEST(ScheduleBuilder, BarrierAllReachesEveryCore) {
  ScheduleBuilder sb(3, 0);
  sb.touch_page(1, 0, false);
  sb.barrier_all();
  auto schedules = sb.finish();
  for (CoreId c = 0; c < 3; ++c) {
    const auto ops = drain(schedules[c]);
    ASSERT_FALSE(ops.empty());
    EXPECT_EQ(ops.back().kind, OpKind::kBarrier) << "core " << c;
  }
}

TEST(ScheduleBuilder, PerCoreSchedulesIndependent) {
  ScheduleBuilder sb(2, 0);
  sb.touch_page(0, 1, false);
  sb.touch_page(0, 2, false);
  sb.touch_page(1, 3, false);
  auto schedules = sb.finish();
  EXPECT_EQ(drain(schedules[0]).size(), 2u);
  EXPECT_EQ(drain(schedules[1]).size(), 1u);
}

TEST(VectorStream, ExhaustionIsSticky) {
  auto ops = std::make_shared<const std::vector<Op>>(
      std::vector<Op>{Op::compute(1)});
  VectorStream stream(ops);
  EXPECT_EQ(stream.next().kind, OpKind::kCompute);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(stream.next().kind, OpKind::kEnd);
}

TEST(BlockPartition, SingleCoreTakesAll) {
  const BlockRange r = block_partition(42, 1, 0);
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 42u);
}

TEST(BlockPartition, MoreCoresThanItems) {
  // 3 items over 8 cores: first three cores get one each, rest empty.
  std::uint64_t total = 0;
  for (CoreId c = 0; c < 8; ++c) total += block_partition(3, 8, c).size();
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(block_partition(3, 8, 0).size(), 1u);
  EXPECT_EQ(block_partition(3, 8, 7).size(), 0u);
}

}  // namespace
}  // namespace cmcp::wl
