#include "workloads/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulation.h"
#include "workloads/stencil.h"
#include "workloads/workload_factory.h"

namespace cmcp::wl {
namespace {

std::unique_ptr<Workload> small_workload() {
  WorkloadParams params;
  params.cores = 4;
  params.scale = 0.05;
  return make_paper_workload(PaperWorkload::kScale, params);
}

TEST(Trace, RoundTripPreservesEveryOp) {
  const auto original = small_workload();
  std::stringstream buffer;
  write_trace(*original, buffer);
  const auto replay = TraceWorkload::parse(buffer);

  ASSERT_EQ(replay->num_cores(), original->num_cores());
  EXPECT_EQ(replay->footprint_base_pages(), original->footprint_base_pages());
  for (CoreId c = 0; c < original->num_cores(); ++c) {
    auto a = original->make_stream(c);
    auto b = replay->make_stream(c);
    for (;;) {
      const Op oa = a->next();
      const Op ob = b->next();
      ASSERT_EQ(oa.kind, ob.kind) << "core " << c;
      if (oa.kind == OpKind::kEnd) break;
      ASSERT_EQ(oa.vpn, ob.vpn);
      ASSERT_EQ(oa.count, ob.count);
      ASSERT_EQ(oa.stride, ob.stride);
      ASSERT_EQ(oa.repeat, ob.repeat);
      ASSERT_EQ(oa.write, ob.write);
      ASSERT_EQ(oa.cycles, ob.cycles);
    }
  }
}

TEST(Trace, ReplayedSimulationBitIdentical) {
  const auto original = small_workload();
  std::stringstream buffer;
  write_trace(*original, buffer);
  const auto replay = TraceWorkload::parse(buffer);

  core::SimulationConfig config;
  config.machine.num_cores = 4;
  config.memory_fraction = 0.5;
  const auto a = core::run_simulation(config, *original);
  const auto b = core::run_simulation(config, *replay);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.app_total.major_faults, b.app_total.major_faults);
  EXPECT_EQ(a.app_total.remote_invalidations_received,
            b.app_total.remote_invalidations_received);
}

TEST(Trace, SyscallsSurviveRoundTrip) {
  StencilParams params;
  params.base.cores = 2;
  params.base.scale = 0.05;
  params.io_bytes_per_step = 4096;
  StencilWorkload original(params);
  std::stringstream buffer;
  write_trace(original, buffer);
  const auto replay = TraceWorkload::parse(buffer);
  auto stream = replay->make_stream(0);
  bool saw_syscall = false;
  for (;;) {
    const Op op = stream->next();
    if (op.kind == OpKind::kEnd) break;
    if (op.kind == OpKind::kSyscall) {
      saw_syscall = true;
      EXPECT_EQ(op.count, 4096u);
    }
  }
  EXPECT_TRUE(saw_syscall);
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "cmcp-trace v1\n"
      "# a comment\n"
      "cores 1\n"
      "\n"
      "pages 10\n"
      "core 0\n"
      "a 3 2 1 1 w 100\n"
      "b\n");
  const auto trace = TraceWorkload::parse(in);
  auto stream = trace->make_stream(0);
  EXPECT_EQ(stream->next().kind, OpKind::kAccess);
  EXPECT_EQ(stream->next().kind, OpKind::kBarrier);
  EXPECT_EQ(stream->next().kind, OpKind::kEnd);
}

TEST(TraceDeath, RejectsGarbage) {
  std::stringstream bad_header("not a trace\n");
  EXPECT_DEATH(TraceWorkload::parse(bad_header), "header");
  std::stringstream no_cores("cmcp-trace v1\npages 10\n");
  EXPECT_DEATH(TraceWorkload::parse(no_cores), "cores");
  std::stringstream op_first("cmcp-trace v1\ncores 1\npages 5\na 1 1 1 1 r 0\n");
  EXPECT_DEATH(TraceWorkload::parse(op_first), "before core");
  std::stringstream bad_tag(
      "cmcp-trace v1\ncores 1\npages 5\ncore 0\nz nonsense\n");
  EXPECT_DEATH(TraceWorkload::parse(bad_tag), "unknown");
}

}  // namespace
}  // namespace cmcp::wl
