// Structural tests of the workload generators.
#include <gtest/gtest.h>

#include <set>

#include "workloads/partition_util.h"
#include "workloads/synthetic.h"
#include "workloads/workload_factory.h"

namespace cmcp::wl {
namespace {

TEST(BlockPartition, CoversRangeWithoutOverlap) {
  for (const std::uint64_t total : {100ull, 97ull, 8ull, 1000ull}) {
    for (const CoreId cores : {1u, 3u, 8u, 56u}) {
      std::uint64_t covered = 0;
      std::uint64_t prev_end = 0;
      for (CoreId c = 0; c < cores; ++c) {
        const BlockRange r = block_partition(total, cores, c);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(prev_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(JitteredBounds, MonotoneAndCovering) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto bounds = detail::jittered_bounds(1000, 8, 0.2, rng);
    ASSERT_EQ(bounds.size(), 9u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), 1000u);
    for (std::size_t i = 1; i < bounds.size(); ++i)
      EXPECT_GE(bounds[i], bounds[i - 1]);
  }
}

TEST(JitteredBounds, ZeroJitterIsExactBlocks) {
  Rng rng(5);
  const auto bounds = detail::jittered_bounds(800, 8, 0.0, rng);
  for (CoreId c = 0; c <= 8; ++c) EXPECT_EQ(bounds[c], c * 100u);
}

TEST(ExchangeRuns, PartitionCoversRegionExactlyOnce) {
  detail::ExchangeConfig cfg;
  cfg.phase_seed = 99;
  const std::uint64_t region = 1003;
  const CoreId cores = 7;
  std::vector<unsigned> owners(region, 0);
  for (CoreId c = 0; c < cores; ++c) {
    for (const auto& [first, len] : detail::exchange_runs(region, cores, c, cfg))
      for (std::uint64_t p = first; p < first + len; ++p) ++owners[p];
  }
  for (std::uint64_t p = 0; p < region; ++p)
    EXPECT_EQ(owners[p], 1u) << "page " << p;
}

TEST(ExchangeRuns, SomeSegmentsAreDisplaced) {
  detail::ExchangeConfig cfg;
  cfg.phase_seed = 7;
  cfg.exchange_fraction = 0.3;
  std::uint64_t displaced = 0, total = 0;
  const std::uint64_t region = 6400;
  const CoreId cores = 8;
  for (CoreId c = 0; c < cores; ++c) {
    const auto nominal = block_partition(region, cores, c);
    for (const auto& [first, len] : detail::exchange_runs(region, cores, c, cfg)) {
      total += len;
      if (first + len <= nominal.begin || first >= nominal.end) displaced += len;
    }
  }
  EXPECT_EQ(total, region);
  EXPECT_GT(displaced, region / 10);
  EXPECT_LT(displaced, region / 2);
}

TEST(ExchangeRuns, DeterministicPerSeed) {
  detail::ExchangeConfig cfg;
  cfg.phase_seed = 3;
  const auto a = detail::exchange_runs(1000, 8, 2, cfg);
  const auto b = detail::exchange_runs(1000, 8, 2, cfg);
  EXPECT_EQ(a, b);
  cfg.phase_seed = 4;
  EXPECT_NE(detail::exchange_runs(1000, 8, 2, cfg), a);
}

class PaperWorkloadTest : public ::testing::TestWithParam<PaperWorkload> {};

TEST_P(PaperWorkloadTest, StreamsAreWellFormed) {
  WorkloadParams params;
  params.cores = 8;
  params.scale = 0.1;
  const auto w = make_paper_workload(GetParam(), params);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->num_cores(), 8u);
  EXPECT_GT(w->footprint_base_pages(), 0u);

  std::uint64_t barriers0 = 0;
  for (CoreId c = 0; c < 8; ++c) {
    auto stream = w->make_stream(c);
    std::uint64_t ops = 0, barriers = 0;
    for (;;) {
      const Op op = stream->next();
      if (op.kind == OpKind::kEnd) break;
      ++ops;
      ASSERT_LT(ops, 10'000'000u) << "runaway stream";
      switch (op.kind) {
        case OpKind::kAccess:
          ASSERT_GT(op.count, 0u);
          ASSERT_GT(op.repeat, 0);
          // Every touched page inside the footprint.
          ASSERT_LT(op.vpn + static_cast<Vpn>(op.count - 1) * op.stride,
                    w->footprint_base_pages());
          break;
        case OpKind::kBarrier:
          ++barriers;
          break;
        default:
          break;
      }
    }
    EXPECT_GT(ops, 0u) << "core " << c;
    if (c == 0)
      barriers0 = barriers;
    else
      EXPECT_EQ(barriers, barriers0) << "barrier count mismatch on core " << c;
    // Exhausted stream keeps returning kEnd.
    EXPECT_EQ(stream->next().kind, OpKind::kEnd);
  }
}

TEST_P(PaperWorkloadTest, DeterministicForSameSeed) {
  WorkloadParams params;
  params.cores = 4;
  params.scale = 0.05;
  params.seed = 77;
  const auto a = make_paper_workload(GetParam(), params);
  const auto b = make_paper_workload(GetParam(), params);
  for (CoreId c = 0; c < 4; ++c) {
    auto sa = a->make_stream(c);
    auto sb = b->make_stream(c);
    for (;;) {
      const Op oa = sa->next();
      const Op ob = sb->next();
      ASSERT_EQ(oa.kind, ob.kind);
      ASSERT_EQ(oa.vpn, ob.vpn);
      ASSERT_EQ(oa.count, ob.count);
      if (oa.kind == OpKind::kEnd) break;
    }
  }
}

TEST_P(PaperWorkloadTest, BigSizeHasLargerFootprint) {
  WorkloadParams params;
  params.cores = 4;
  const auto small = make_paper_workload(GetParam(), params, WorkloadSize::kSmall);
  const auto big = make_paper_workload(GetParam(), params, WorkloadSize::kBig);
  EXPECT_GT(big->footprint_base_pages(), 2 * small->footprint_base_pages());
}

INSTANTIATE_TEST_SUITE_P(AllPaperWorkloads, PaperWorkloadTest,
                         ::testing::ValuesIn(kAllPaperWorkloads),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(WorkloadFactory, PaperFractionsMatchSection54) {
  EXPECT_DOUBLE_EQ(paper_memory_fraction(PaperWorkload::kBt), 0.64);
  EXPECT_DOUBLE_EQ(paper_memory_fraction(PaperWorkload::kLu), 0.66);
  EXPECT_DOUBLE_EQ(paper_memory_fraction(PaperWorkload::kCg), 0.37);
  EXPECT_DOUBLE_EQ(paper_memory_fraction(PaperWorkload::kScale), 0.50);
}

TEST(WorkloadFactory, BestPMatchesSection56Shape) {
  // "CG benefits the most from a low ratio, while in case of LU or SCALE
  // high ratio appears to work better."
  EXPECT_LT(paper_best_p(PaperWorkload::kCg), 0.3);
  EXPECT_GT(paper_best_p(PaperWorkload::kLu), 0.5);
  EXPECT_GT(paper_best_p(PaperWorkload::kScale), 0.5);
}

TEST(Adversarial, SharedRegionTouchedOnceThenPrivateRounds) {
  AdversarialParams params;
  params.base.cores = 4;
  params.dead_shared_pages = 64;
  params.private_pages_per_core = 16;
  params.rounds = 3;
  AdversarialWorkload w(params);
  EXPECT_EQ(w.footprint_base_pages(), 64u + 4 * 16);
  // Core 0's stream touches the shared region exactly once.
  auto stream = w.make_stream(0);
  std::uint64_t shared_touches = 0;
  for (;;) {
    const Op op = stream->next();
    if (op.kind == OpKind::kEnd) break;
    if (op.kind == OpKind::kAccess && op.vpn < 64) shared_touches += op.count;
  }
  EXPECT_EQ(shared_touches, 64u);
}

TEST(HotCold, SharedHotSliceIsTouchedByEveryCore) {
  HotColdParams params;
  params.base.cores = 4;
  params.hot_pages = 64;
  params.cold_pages = 128;
  params.rounds = 2;
  params.shared_hot_fraction = 0.25;
  HotColdWorkload w(params);
  for (CoreId c = 0; c < 4; ++c) {
    auto stream = w.make_stream(c);
    bool touched_shared = false;
    for (;;) {
      const Op op = stream->next();
      if (op.kind == OpKind::kEnd) break;
      if (op.kind == OpKind::kAccess && op.vpn == 0) touched_shared = true;
    }
    EXPECT_TRUE(touched_shared) << "core " << c;
  }
}

}  // namespace
}  // namespace cmcp::wl
