// End-to-end assertions of the paper's qualitative results, at test scale
// (small footprints, 16 cores) so the whole suite stays fast. The bench
// binaries reproduce the full-scale figures.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "workloads/workload_factory.h"

namespace cmcp {
namespace {

struct Shapes {
  // 24 cores at half scale: small enough to stay fast, large enough that
  // the shootdown-cost effects separating the policies are not noise.
  explicit Shapes(wl::PaperWorkload which, CoreId cores = 24, double scale = 0.5)
      : which_(which) {
    wl::WorkloadParams params;
    params.cores = cores;
    params.scale = scale;
    workload_ = wl::make_paper_workload(which, params);
    config_.machine.num_cores = cores;
    config_.memory_fraction = wl::paper_memory_fraction(which);
  }

  core::SimulationResult run(PageTableKind pt, PolicyKind policy,
                             bool preload = false) {
    core::SimulationConfig config = config_;
    config.pt_kind = pt;
    config.policy.kind = policy;
    config.policy.cmcp.p = wl::paper_best_p(which_);
    config.preload = preload;
    return core::run_simulation(config, *workload_);
  }

  wl::PaperWorkload which_;
  std::unique_ptr<wl::Workload> workload_;
  core::SimulationConfig config_;
};

class PaperShapesTest : public ::testing::TestWithParam<wl::PaperWorkload> {
 protected:
  Shapes shapes_{GetParam()};
};

TEST_P(PaperShapesTest, NoDataMovementBaselineIsClean) {
  const auto base = shapes_.run(PageTableKind::kRegular, PolicyKind::kFifo, true);
  EXPECT_EQ(base.app_total.major_faults, 0u);
  EXPECT_EQ(base.app_total.evictions, 0u);
  EXPECT_EQ(base.app_total.pcie_bytes_in, 0u);
  EXPECT_EQ(base.app_total.remote_invalidations_received, 0u);
}

TEST_P(PaperShapesTest, ConstrainedRunIsSlowerThanBaseline) {
  const auto base = shapes_.run(PageTableKind::kPspt, PolicyKind::kFifo, true);
  const auto constrained = shapes_.run(PageTableKind::kPspt, PolicyKind::kFifo);
  EXPECT_GT(constrained.makespan, base.makespan);
  EXPECT_GT(constrained.app_total.major_faults, 0u);
  EXPECT_GT(constrained.app_total.pcie_bytes_in, 0u);
}

TEST_P(PaperShapesTest, CmcpBeatsFifo) {
  // Section 5.4: "the core-map count based replacement policy outperforms
  // both FIFO and LRU on all applications we investigate."
  const auto fifo = shapes_.run(PageTableKind::kPspt, PolicyKind::kFifo);
  const auto cmcp = shapes_.run(PageTableKind::kPspt, PolicyKind::kCmcp);
  EXPECT_LT(cmcp.makespan, fifo.makespan);
}

TEST_P(PaperShapesTest, LruLosesToFifoDespiteScanning) {
  // Section 5.4: "surprisingly, we found that LRU yields lower performance
  // than FIFO." Known deviation: on our CG model LRU's fault savings are
  // large enough to tie FIFO (within ~2%), so CG only asserts no
  // significant win — see EXPERIMENTS.md.
  const auto fifo = shapes_.run(PageTableKind::kPspt, PolicyKind::kFifo);
  const auto lru = shapes_.run(PageTableKind::kPspt, PolicyKind::kLru);
  if (GetParam() == wl::PaperWorkload::kCg) {
    EXPECT_GT(lru.makespan, fifo.makespan * 95 / 100);
  } else {
    EXPECT_GT(lru.makespan, fifo.makespan);
  }
}

TEST_P(PaperShapesTest, LruPaysFarMoreRemoteInvalidations) {
  // Table 1: LRU's invalidation counts are multiples of FIFO's.
  const auto fifo = shapes_.run(PageTableKind::kPspt, PolicyKind::kFifo);
  const auto lru = shapes_.run(PageTableKind::kPspt, PolicyKind::kLru);
  EXPECT_GT(lru.app_total.remote_invalidations_received,
            2 * fifo.app_total.remote_invalidations_received);
}

TEST_P(PaperShapesTest, LruBurnsLockCycles) {
  // Section 5.5: "up to 8 times increase in CPU cycles spent on
  // synchronization (i.e., locks) for remote TLB invalidation requests."
  const auto fifo = shapes_.run(PageTableKind::kPspt, PolicyKind::kFifo);
  const auto lru = shapes_.run(PageTableKind::kPspt, PolicyKind::kLru);
  EXPECT_GT(lru.app_total.cycles_lock_wait, 3 * fifo.app_total.cycles_lock_wait);
}

TEST_P(PaperShapesTest, CmcpReducesFaultsWithoutInvalidationOverhead) {
  const auto fifo = shapes_.run(PageTableKind::kPspt, PolicyKind::kFifo);
  const auto cmcp = shapes_.run(PageTableKind::kPspt, PolicyKind::kCmcp);
  EXPECT_LT(cmcp.app_total.major_faults, fifo.app_total.major_faults);
  EXPECT_LE(cmcp.app_total.remote_invalidations_received,
            fifo.app_total.remote_invalidations_received);
}

TEST_P(PaperShapesTest, RegularTablesCostMoreThanPspt) {
  const auto regular = shapes_.run(PageTableKind::kRegular, PolicyKind::kFifo);
  const auto pspt = shapes_.run(PageTableKind::kPspt, PolicyKind::kFifo);
  EXPECT_GT(regular.makespan, pspt.makespan);
  // Every fault interrupts every core under regular tables.
  EXPECT_GT(regular.app_total.remote_invalidations_received,
            3 * pspt.app_total.remote_invalidations_received);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PaperShapesTest,
                         ::testing::ValuesIn(wl::kAllPaperWorkloads),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(PaperScaling, RegularTablesStopScalingPsptKeepsScaling) {
  // Fig. 7's core claim, checked between 8 and 32 cores at test scale:
  // PSPT keeps gaining from more cores; regular tables gain far less.
  const auto runtime = [](PageTableKind pt, CoreId cores) {
    wl::WorkloadParams params;
    params.cores = cores;
    params.scale = 0.25;
    const auto w = wl::make_paper_workload(wl::PaperWorkload::kBt, params);
    core::SimulationConfig config;
    config.machine.num_cores = cores;
    config.memory_fraction = wl::paper_memory_fraction(wl::PaperWorkload::kBt);
    config.pt_kind = pt;
    return core::run_simulation(config, *w).makespan;
  };
  const double pspt_speedup =
      static_cast<double>(runtime(PageTableKind::kPspt, 8)) /
      static_cast<double>(runtime(PageTableKind::kPspt, 32));
  const double regular_speedup =
      static_cast<double>(runtime(PageTableKind::kRegular, 8)) /
      static_cast<double>(runtime(PageTableKind::kRegular, 32));
  EXPECT_GT(pspt_speedup, 2.0);
  EXPECT_LT(regular_speedup, pspt_speedup * 0.6);
}

TEST(PaperHeadline, HalfMemoryKeepsMajorityOfPerformance) {
  // Section 7: "our system is capable of providing up to 70% of the native
  // performance with physical memory limited to half" — CMCP at 50%
  // capacity stays well above half of baseline performance at test scale.
  Shapes shapes(wl::PaperWorkload::kScale);
  shapes.config_.memory_fraction = 0.5;
  const auto base = shapes.run(PageTableKind::kPspt, PolicyKind::kFifo, true);
  const auto cmcp = shapes.run(PageTableKind::kPspt, PolicyKind::kCmcp);
  const double rel = static_cast<double>(base.makespan) /
                     static_cast<double>(cmcp.makespan);
  EXPECT_GT(rel, 0.5);
}

}  // namespace
}  // namespace cmcp
