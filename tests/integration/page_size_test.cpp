// Page-size behaviour (paper section 5.7 / Fig. 10) at test scale.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "workloads/workload_factory.h"

namespace cmcp {
namespace {

core::SimulationResult run_sized(PageSizeClass size, double fraction,
                                 bool preload = false, CoreId cores = 8) {
  wl::WorkloadParams params;
  params.cores = cores;
  params.scale = 0.5;  // enough 2 MB units to be meaningful
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kBt, params);
  core::SimulationConfig config;
  config.machine.num_cores = cores;
  config.machine.page_size = size;
  config.memory_fraction = fraction;
  config.preload = preload;
  return core::run_simulation(config, *w);
}

TEST(PageSize, FootprintUnitsShrinkWithLargerPages) {
  const auto r4k = run_sized(PageSizeClass::k4K, 1.0, true);
  const auto r64k = run_sized(PageSizeClass::k64K, 1.0, true);
  const auto r2m = run_sized(PageSizeClass::k2M, 1.0, true);
  EXPECT_NEAR(static_cast<double>(r4k.footprint_units) / r64k.footprint_units,
              16.0, 0.5);
  EXPECT_GT(r64k.footprint_units, r2m.footprint_units);
}

TEST(PageSize, LargerPagesReduceTlbMisses) {
  // The reason 64 kB support exists at all: one TLB entry covers 16 pages.
  const auto r4k = run_sized(PageSizeClass::k4K, 1.0, true);
  const auto r64k = run_sized(PageSizeClass::k64K, 1.0, true);
  const auto r2m = run_sized(PageSizeClass::k2M, 1.0, true);
  EXPECT_LT(r64k.app_total.dtlb_misses, r4k.app_total.dtlb_misses / 2);
  EXPECT_LT(r2m.app_total.dtlb_misses, r64k.app_total.dtlb_misses);
}

TEST(PageSize, UnconstrainedLargePagesWin) {
  // Fig. 10: "when memory constraint is low, large pages provide superior
  // performance" — with everything resident only the TLB benefit remains.
  const auto r4k = run_sized(PageSizeClass::k4K, 1.0, true);
  const auto r2m = run_sized(PageSizeClass::k2M, 1.0, true);
  EXPECT_LT(r2m.makespan, r4k.makespan);
}

TEST(PageSize, UnderPressureLargePagesMoveFarMoreData) {
  const auto r4k = run_sized(PageSizeClass::k4K, 0.5);
  const auto r2m = run_sized(PageSizeClass::k2M, 0.5);
  EXPECT_GT(r2m.app_total.pcie_bytes_in, 2 * r4k.app_total.pcie_bytes_in);
}

TEST(PageSize, UnderHeavyPressureSmallerPagesWin) {
  // Fig. 10a/b: "as we decrease the memory provided, the price of increased
  // data movement quickly outweighs the benefits of fewer TLB misses."
  const auto r4k = run_sized(PageSizeClass::k4K, 0.4);
  const auto r2m = run_sized(PageSizeClass::k2M, 0.4);
  EXPECT_LT(r4k.makespan, r2m.makespan);
}

TEST(PageSize, SixtyFourKIsBetweenTheExtremesUnderPressure) {
  const auto r4k = run_sized(PageSizeClass::k4K, 0.4);
  const auto r64k = run_sized(PageSizeClass::k64K, 0.4);
  const auto r2m = run_sized(PageSizeClass::k2M, 0.4);
  EXPECT_LT(r64k.makespan, r2m.makespan);
  // 64 kB must be competitive with 4 kB (within 2x either way at this
  // scale; the exact crossover is workload dependent — Fig. 10).
  EXPECT_LT(r64k.makespan, 2 * r4k.makespan);
  EXPECT_LT(r4k.makespan, 2 * r64k.makespan);
}

TEST(PageSize, SharingCoarsensWithPageSize) {
  // Larger units are mapped by more cores (section 5.7: "the probability of
  // different CPU cores accessing the same page is also increased").
  const auto frac_shared = [](const core::SimulationResult& r) {
    double shared = 0, total = 0;
    for (std::size_t c = 1; c < r.sharing_histogram.size(); ++c) {
      total += static_cast<double>(r.sharing_histogram[c]);
      if (c >= 2) shared += static_cast<double>(r.sharing_histogram[c]);
    }
    return shared / total;
  };
  const auto r4k = run_sized(PageSizeClass::k4K, 1.0, true);
  const auto r2m = run_sized(PageSizeClass::k2M, 1.0, true);
  EXPECT_GT(frac_shared(r2m), frac_shared(r4k));
}

}  // namespace
}  // namespace cmcp
