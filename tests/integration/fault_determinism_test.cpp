// Determinism under fault injection: a fixed (workload seed, FaultPlanConfig)
// pair must replay bit-identically — same traces, same counters, same
// resilience stats — serially and under the `-j` parallel runner; and an
// all-zero fault spec must be byte-identical to no fault spec at all.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/simulation.h"
#include "metrics/experiment.h"
#include "metrics/parallel_runner.h"
#include "sim/fault_plan.h"
#include "sim/trace.h"
#include "workloads/workload_factory.h"

namespace cmcp {
namespace {

constexpr const char* kFaultMix =
    "seed=13,pcie=0.05,sticky=0.01,ack=0.05,poison=2,straggler=0.2";

core::SimulationResult run_faulted(const char* faults,
                                   sim::trace::EventSink* sink = nullptr) {
  wl::WorkloadParams params;
  params.cores = 8;
  params.scale = 0.15;
  params.seed = 42;
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kBt, params);
  core::SimulationConfig config;
  config.machine.num_cores = 8;
  config.memory_fraction = wl::paper_memory_fraction(wl::PaperWorkload::kBt);
  config.policy.kind = PolicyKind::kCmcp;
  config.trace = sink;
  if (faults != nullptr) {
    EXPECT_TRUE(sim::FaultPlanConfig::parse(faults, &config.faults));
  }
  return core::run_simulation(config, *w);
}

std::string jsonl_of(const char* faults) {
  sim::trace::EventSink sink;
  const auto result = run_faulted(faults, &sink);
  const sim::trace::Metadata meta = {{"seed", "42"}, {"policy", "cmcp"}};
  std::ostringstream out;
  sim::trace::export_jsonl(sink, meta, metrics::result_summary(result), out);
  return out.str();
}

TEST(FaultDeterminism, SameSeedAndPlanReplaysByteIdentically) {
  const std::string a = jsonl_of(kFaultMix);
  const std::string b = jsonl_of(kFaultMix);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The chaos actually happened: fault events are in the stream.
  EXPECT_NE(a.find("\"fault_inject\""), std::string::npos);
}

TEST(FaultDeterminism, StatsReplayExactly) {
  const auto a = run_faulted(kFaultMix);
  const auto b = run_faulted(kFaultMix);
  ASSERT_TRUE(a.faults_enabled);
  EXPECT_GT(a.fault_stats.total_injected(), 0u);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.fault_stats.total_injected(), b.fault_stats.total_injected());
  EXPECT_EQ(a.fault_stats.retries, b.fault_stats.retries);
  EXPECT_EQ(a.fault_stats.give_ups, b.fault_stats.give_ups);
  EXPECT_EQ(a.fault_stats.frames_quarantined,
            b.fault_stats.frames_quarantined);
  EXPECT_EQ(a.fault_stats.recovery_cycles, b.fault_stats.recovery_cycles);
  EXPECT_EQ(a.fault_stats.straggler_cycles, b.fault_stats.straggler_cycles);
}

TEST(FaultDeterminism, DifferentFaultSeedsDiverge) {
  const auto a = run_faulted("seed=1,pcie=0.05,sticky=0.01,poison=2");
  const auto b = run_faulted("seed=2,pcie=0.05,sticky=0.01,poison=2");
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(FaultDeterminism, ZeroRatePlanIsByteIdenticalToNoPlan) {
  // An all-zero spec parses to a disabled plan: the run must take the exact
  // pre-fault code paths and export the exact pre-fault bytes.
  const std::string zero =
      jsonl_of("seed=99,pcie=0,sticky=0,ack=0,poison=0,straggler=0");
  const std::string none = jsonl_of(nullptr);
  EXPECT_EQ(zero, none);
  EXPECT_EQ(zero.find("fault_inject"), std::string::npos);
  EXPECT_EQ(zero.find("faults_injected"), std::string::npos);
}

TEST(FaultDeterminism, FaultedRunsAreIndependent) {
  // Two faulted simulations back-to-back in one process: the second must not
  // inherit any plan state from the first (each owns a private FaultPlan).
  const auto first = run_faulted(kFaultMix);
  (void)run_faulted("seed=77,pcie=0.2,sticky=0.1,poison=4,straggler=0.5");
  const auto again = run_faulted(kFaultMix);
  EXPECT_EQ(first.makespan, again.makespan);
  EXPECT_EQ(first.fault_stats.total_injected(),
            again.fault_stats.total_injected());
}

// Named so the TSan CI job's `-R ParallelRunner` filter picks it up: the
// worker pool must not perturb per-simulation fault streams.
TEST(ParallelRunner, FaultedSpecsMatchSerialExecution) {
  std::vector<metrics::RunSpec> specs;
  for (const PolicyKind policy : {PolicyKind::kFifo, PolicyKind::kCmcp}) {
    for (const std::uint64_t seed : {3u, 13u}) {
      metrics::RunSpec spec;
      spec.workload = wl::PaperWorkload::kScale;
      spec.cores = 4;
      spec.scale = 0.05;
      spec.policy.kind = policy;
      ASSERT_TRUE(sim::FaultPlanConfig::parse(kFaultMix, &spec.faults));
      spec.faults.seed = seed;
      specs.push_back(spec);
    }
  }
  const auto parallel = metrics::run_specs_parallel(specs, 4);
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto serial = metrics::run_spec(specs[i]);
    ASSERT_TRUE(parallel[i].faults_enabled) << "spec " << i;
    EXPECT_EQ(parallel[i].makespan, serial.makespan) << "spec " << i;
    EXPECT_EQ(parallel[i].fault_stats.total_injected(),
              serial.fault_stats.total_injected())
        << "spec " << i;
    EXPECT_EQ(parallel[i].fault_stats.retries, serial.fault_stats.retries);
    EXPECT_EQ(parallel[i].fault_stats.frames_quarantined,
              serial.fault_stats.frames_quarantined);
  }
}

}  // namespace
}  // namespace cmcp
