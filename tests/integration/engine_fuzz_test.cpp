// Engine robustness: randomized op mixes (accesses, compute, barriers,
// syscalls, skewed per-core loads) must always terminate with monotone,
// consistent accounting — across page sizes, policies and coherence modes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/simulation.h"

namespace cmcp::core {
namespace {

class FuzzWorkload final : public wl::Workload {
 public:
  FuzzWorkload(CoreId cores, std::uint64_t pages, std::uint64_t seed)
      : cores_(cores), pages_(pages) {
    Rng rng(seed);
    // Barriers must appear in the same count on every core; generate the
    // shared phase structure first.
    const unsigned phases = 1 + static_cast<unsigned>(rng.next_below(6));
    std::vector<std::vector<wl::Op>> schedules(cores);
    for (unsigned phase = 0; phase < phases; ++phase) {
      for (CoreId c = 0; c < cores; ++c) {
        const unsigned ops = static_cast<unsigned>(rng.next_below(40));
        for (unsigned i = 0; i < ops; ++i) {
          switch (rng.next_below(4)) {
            case 0:
            case 1: {
              const Vpn vpn = rng.next_below(pages);
              const auto max_count = pages - vpn;
              const auto count = 1 + rng.next_below(std::min<Vpn>(max_count, 16));
              schedules[c].push_back(wl::Op::access(
                  vpn, (rng.next() & 1) != 0,
                  static_cast<std::uint32_t>(count),
                  static_cast<std::uint16_t>(1 + rng.next_below(3)),
                  rng.next_below(2000)));
              break;
            }
            case 2:
              schedules[c].push_back(wl::Op::compute(rng.next_below(10000)));
              break;
            case 3:
              schedules[c].push_back(
                  wl::Op::syscall(rng.next_below(20000),
                                  static_cast<std::uint32_t>(rng.next_below(8192))));
              break;
          }
        }
        // Some cores end early in the last phase (tests barrier release on
        // termination).
        if (phase + 1 == phases && rng.next_below(4) == 0) continue;
      }
      for (CoreId c = 0; c < cores; ++c)
        schedules[c].push_back(wl::Op::barrier());
    }
    for (auto& ops : schedules)
      schedules_.push_back(
          std::make_shared<const std::vector<wl::Op>>(std::move(ops)));
  }

  std::string_view name() const override { return "fuzz"; }
  CoreId num_cores() const override { return cores_; }
  std::uint64_t footprint_base_pages() const override { return pages_; }
  std::unique_ptr<wl::AccessStream> make_stream(CoreId core) const override {
    return std::make_unique<wl::VectorStream>(schedules_[core]);
  }

 private:
  CoreId cores_;
  std::uint64_t pages_;
  std::vector<std::shared_ptr<const std::vector<wl::Op>>> schedules_;
};

struct FuzzParams {
  std::uint64_t seed;
  PolicyKind policy;
  PageSizeClass size;
  bool hw_tlb;
  double fraction;
};

class EngineFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(EngineFuzzTest, TerminatesWithConsistentAccounting) {
  const FuzzParams& p = GetParam();
  const CoreId cores = 6;
  const std::uint64_t pages = 96 * base_pages_per_unit(p.size);
  FuzzWorkload workload(cores, pages, p.seed);

  SimulationConfig config;
  config.machine.num_cores = cores;
  config.machine.page_size = p.size;
  config.machine.tlb_coherence = p.hw_tlb
                                     ? sim::TlbCoherence::kHardwareDirectory
                                     : sim::TlbCoherence::kIpiShootdown;
  config.policy.kind = p.policy;
  config.memory_fraction = p.fraction;

  const auto result = run_simulation(config, workload);

  // Completion and basic consistency.
  for (const auto& ctr : result.per_core) {
    EXPECT_GE(ctr.dtlb_misses, ctr.major_faults + ctr.minor_faults);
    EXPECT_EQ(ctr.pcie_bytes_in,
              (ctr.major_faults + ctr.prefetches) * unit_bytes(p.size));
    EXPECT_LE(ctr.prefetch_hits, result.app_total.prefetches);
  }
  EXPECT_GE(result.app_total.major_faults, result.app_total.evictions);
  // Makespan covers every core's cycle budget categories.
  Cycles max_sum = 0;
  for (const auto& ctr : result.per_core) {
    const Cycles sum = ctr.cycles_compute + ctr.cycles_mem + ctr.cycles_fault +
                       ctr.cycles_pcie_wait + ctr.cycles_shootdown +
                       ctr.cycles_lock_wait + ctr.cycles_barrier +
                       ctr.cycles_syscall;
    max_sum = std::max(max_sum, sum);
  }
  // The breakdown may undercount (interrupt service overlaps categories)
  // but can never exceed the critical path by more than interrupts.
  EXPECT_LE(result.makespan, max_sum + result.app_total.cycles_interrupt + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineFuzzTest,
    ::testing::Values(
        FuzzParams{1, PolicyKind::kFifo, PageSizeClass::k4K, false, 0.4},
        FuzzParams{2, PolicyKind::kLru, PageSizeClass::k4K, false, 0.4},
        FuzzParams{3, PolicyKind::kCmcp, PageSizeClass::k4K, false, 0.3},
        FuzzParams{4, PolicyKind::kCmcp, PageSizeClass::k64K, false, 0.5},
        FuzzParams{5, PolicyKind::kClock, PageSizeClass::k4K, false, 0.4},
        FuzzParams{6, PolicyKind::kLfu, PageSizeClass::k2M, false, 0.5},
        FuzzParams{7, PolicyKind::kRandom, PageSizeClass::k4K, true, 0.4},
        FuzzParams{8, PolicyKind::kCmcpDynamicP, PageSizeClass::k4K, false, 0.3},
        FuzzParams{9, PolicyKind::kLru, PageSizeClass::k64K, true, 0.4},
        FuzzParams{10, PolicyKind::kCmcp, PageSizeClass::k4K, false, 1.0},
        FuzzParams{11, PolicyKind::kArc, PageSizeClass::k4K, false, 0.4}));

}  // namespace
}  // namespace cmcp::core
