// A/B determinism across the full policy matrix against *committed* golden
// results. The run-vs-run checks in determinism_test.cpp prove a build
// agrees with itself; this file proves the build agrees with the tree's
// recorded history — an accidental behaviour change (e.g. an iteration-order
// dependence sneaking back into the scanner, a policy tie-break flipping)
// shows up as a diff against tests/data/golden_results.txt even when the
// run is still internally deterministic.
//
// When a behaviour change is *intended*, regenerate the file and review the
// diff like code:
//
//   CMCP_UPDATE_GOLDEN=1 ./build/tests/cmcp_tests --gtest_filter='GoldenResults*'
//   (then review with: git diff tests/data)
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cmcp.h"
#include "metrics/experiment.h"

#ifndef CMCP_TEST_DATA_DIR
#define CMCP_TEST_DATA_DIR "tests/data"
#endif

namespace cmcp {
namespace {

std::string golden_path() {
  return std::string(CMCP_TEST_DATA_DIR) + "/golden_results.txt";
}

struct MatrixCell {
  const char* label;
  PolicyKind policy;
  PageTableKind pt;
};

// Small enough to run all five cells in well under a second, big enough to
// exercise faults, evictions, shootdowns and several scanner passes.
constexpr MatrixCell kMatrix[] = {
    {"fifo", PolicyKind::kFifo, PageTableKind::kPspt},
    {"lru", PolicyKind::kLru, PageTableKind::kPspt},
    {"cmcp", PolicyKind::kCmcp, PageTableKind::kPspt},
    {"arc", PolicyKind::kArc, PageTableKind::kPspt},
    {"clock", PolicyKind::kClock, PageTableKind::kPspt},
    {"fifo_regular", PolicyKind::kFifo, PageTableKind::kRegular},
};

core::SimulationResult run_cell(const MatrixCell& cell) {
  metrics::RunSpec spec;
  spec.workload = wl::PaperWorkload::kCg;
  spec.cores = 8;
  spec.scale = 0.12;
  spec.pt_kind = cell.pt;
  spec.policy.kind = cell.policy;
  // Tight enough that the touched working set overflows capacity — the
  // matrix must exercise the eviction path or the policies are
  // indistinguishable and the golden file pins nothing policy-specific.
  spec.memory_fraction = 0.25;
  spec.seed = 20260806;
  return metrics::run_spec(spec);
}

/// Text form of everything the matrix pins: the full summary (headline
/// counters + policy.* stats) and the sharing histogram, one `cell.key
/// value` line each, in fixed order — line-diffable with git.
void serialize(const char* label, const core::SimulationResult& result,
               std::ostream& os) {
  for (const auto& [name, value] : metrics::result_summary(result))
    os << label << '.' << name << ' ' << value << '\n';
  for (std::size_t c = 0; c < result.sharing_histogram.size(); ++c)
    if (result.sharing_histogram[c] != 0)
      os << label << ".sharing[" << c << "] " << result.sharing_histogram[c]
         << '\n';
}

TEST(GoldenResults, PolicyMatrixMatchesCommittedGolden) {
  std::ostringstream actual;
  for (const MatrixCell& cell : kMatrix) serialize(cell.label, run_cell(cell), actual);

  if (std::getenv("CMCP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual.str();
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good())
      << "missing " << golden_path()
      << " — regenerate with CMCP_UPDATE_GOLDEN=1 and commit it";
  std::stringstream expected;
  expected << in.rdbuf();

  // Line-by-line so a failure names the first drifted counter instead of
  // dumping two multi-kilobyte blobs.
  std::istringstream actual_lines(actual.str());
  std::istringstream expected_lines(expected.str());
  std::string a;
  std::string e;
  std::size_t line = 0;
  while (true) {
    const bool more_a = static_cast<bool>(std::getline(actual_lines, a));
    const bool more_e = static_cast<bool>(std::getline(expected_lines, e));
    ++line;
    if (!more_a && !more_e) break;
    ASSERT_EQ(more_a, more_e) << "golden file length differs at line " << line;
    ASSERT_EQ(a, e) << "first divergence at golden_results.txt:" << line;
  }
}

}  // namespace
}  // namespace cmcp
