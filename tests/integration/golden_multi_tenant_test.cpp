// Golden multi-tenant matrix: a 2-tenant composition (cg + bt sharing one
// device) run through the full policy matrix (FIFO, LRU-approx, CMCP, ARC,
// CLOCK) and all three frame-partition policies, with the per-tenant fault
// rates, shootdown-interference matrix and fairness report serialized
// through metrics::write_tenant_report into ResultWriter JSON and pinned
// against tests/data/golden_multi_tenant.txt.
//
// This is the multi-tenant sibling of golden_results_test.cpp: run-vs-run
// determinism is checked here too, but the committed golden is what catches
// a silent behaviour change (a partition tie-break flipping, an interference
// count drifting) across commits. Regenerate intentionally with:
//
//   CMCP_UPDATE_GOLDEN=1 ./build/tests/cmcp_tests --gtest_filter='GoldenMultiTenant*'
//   (then review with: git diff tests/data)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/multi_tenant.h"
#include "metrics/tenant_report.h"
#include "mm/frame_partition.h"
#include "policy/policy_factory.h"
#include "workloads/workload_factory.h"

#ifndef CMCP_TEST_DATA_DIR
#define CMCP_TEST_DATA_DIR "tests/data"
#endif

namespace cmcp {
namespace {

std::string golden_path() {
  return std::string(CMCP_TEST_DATA_DIR) + "/golden_multi_tenant.txt";
}

/// cg (4 cores) + bt (4 cores), scaled down far enough that the whole
/// matrix runs in seconds but the shared device still thrashes: both
/// tenants fault, evict and shoot down throughout the run.
wl::MultiTenantSpec make_two_tenants() {
  wl::WorkloadParams base;
  base.cores = 4;
  base.scale = 0.10;
  base.seed = 20260808;
  wl::MultiTenantSpec spec;
  spec.add(wl::make_paper_workload(wl::PaperWorkload::kCg, base));
  spec.add(wl::make_paper_workload(wl::PaperWorkload::kBt, base));
  return spec;
}

std::uint64_t combined_units(const wl::MultiTenantSpec& spec,
                             PageSizeClass page_size) {
  std::uint64_t total = 0;
  for (Asid t = 0; t < spec.num_tenants(); ++t)
    total += mm::ComputationArea(0, spec.placement(t).footprint_base_pages,
                                 page_size)
                 .num_units();
  return total;
}

struct MatrixCell {
  const char* label;
  PolicyKind policy;
  mm::PartitionKind partition;
};

constexpr MatrixCell kMatrix[] = {
    {"fifo-prop", PolicyKind::kFifo, mm::PartitionKind::kProportionalShare},
    {"lru-prop", PolicyKind::kLru, mm::PartitionKind::kProportionalShare},
    {"cmcp-prop", PolicyKind::kCmcp, mm::PartitionKind::kProportionalShare},
    {"arc-prop", PolicyKind::kArc, mm::PartitionKind::kProportionalShare},
    {"clock-prop", PolicyKind::kClock, mm::PartitionKind::kProportionalShare},
    {"cmcp-reserve", PolicyKind::kCmcp, mm::PartitionKind::kStaticReserve},
    {"cmcp-none", PolicyKind::kCmcp, mm::PartitionKind::kNone},
};

core::MultiTenantResult run_cell(const MatrixCell& cell) {
  wl::MultiTenantSpec spec = make_two_tenants();
  core::MultiTenantConfig config;
  config.partition = cell.partition;
  // Tight enough that the tenants genuinely contend for frames.
  config.memory_fraction = 0.30;
  const std::uint64_t capacity =
      std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 0.30 * static_cast<double>(
                            combined_units(spec, config.machine.page_size))));

  std::vector<core::TenantRunConfig> tenants(2);
  for (core::TenantRunConfig& t : tenants) t.policy.kind = cell.policy;
  if (cell.partition == mm::PartitionKind::kProportionalShare) {
    // Asymmetric weights so the apportionment (and its rounding) is pinned.
    tenants[0].share.weight = 1;
    tenants[1].share.weight = 2;
  } else if (cell.partition == mm::PartitionKind::kStaticReserve) {
    config.capacity_units_override = capacity;
    tenants[0].share.reserve_units = capacity / 3;
    tenants[1].share.reserve_units = capacity / 4;
  }
  return core::run_multi_tenant(config, spec, tenants);
}

std::string report_json(const core::MultiTenantResult& result,
                        const metrics::TenantReportOptions& options = {}) {
  metrics::ResultWriter writer;
  metrics::write_tenant_report(result, writer, options);
  return writer.json();
}

TEST(GoldenMultiTenant, PolicyAndPartitionMatrixMatchesCommittedGolden) {
  std::ostringstream actual;
  for (const MatrixCell& cell : kMatrix)
    actual << "== " << cell.label << " ==\n" << report_json(run_cell(cell));

  if (std::getenv("CMCP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual.str();
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good())
      << "missing " << golden_path()
      << " — regenerate with CMCP_UPDATE_GOLDEN=1 and commit it";
  std::stringstream expected;
  expected << in.rdbuf();

  std::istringstream actual_lines(actual.str());
  std::istringstream expected_lines(expected.str());
  std::string a;
  std::string e;
  std::size_t line = 0;
  while (true) {
    const bool more_a = static_cast<bool>(std::getline(actual_lines, a));
    const bool more_e = static_cast<bool>(std::getline(expected_lines, e));
    ++line;
    if (!more_a && !more_e) break;
    ASSERT_EQ(more_a, more_e) << "golden file length differs at line " << line;
    ASSERT_EQ(a, e) << "first divergence at golden_multi_tenant.txt:" << line;
  }
}

TEST(GoldenMultiTenant, IdenticalConfigIdenticalReport) {
  const std::string first = report_json(run_cell(kMatrix[2]));   // cmcp-prop
  const std::string second = report_json(run_cell(kMatrix[2]));
  EXPECT_EQ(first, second);
}

TEST(GoldenMultiTenant, ReportCarriesInterferenceAndFairness) {
  const core::MultiTenantResult result = run_cell(kMatrix[2]);  // cmcp-prop
  ASSERT_EQ(result.tenants.size(), 2u);
  ASSERT_EQ(result.interference.size(), 4u);
  for (const core::TenantResult& t : result.tenants) {
    EXPECT_GT(t.total.accesses, 0u);
    EXPECT_GT(t.total.major_faults, 0u);
    EXPECT_GT(t.makespan, 0u);
  }
  // The interference matrix mirrors the per-receiver counter exactly:
  // column sums == remote invalidations received by that tenant.
  for (std::size_t receiver = 0; receiver < 2; ++receiver) {
    const std::uint64_t column = result.interference[0 * 2 + receiver] +
                                 result.interference[1 * 2 + receiver];
    EXPECT_EQ(column,
              result.tenants[receiver].total.remote_invalidations_received)
        << "receiver " << receiver;
  }

  // Slowdown view: each tenant solo on the same shared capacity is the
  // baseline; co-running must not speed anyone up.
  metrics::TenantReportOptions options;
  options.solo_makespans = {result.tenants[0].makespan,
                            result.tenants[1].makespan};
  const std::string json = report_json(result, options);
  EXPECT_NE(json.find("\"jain_fairness_progress\""), std::string::npos);
  EXPECT_NE(json.find("\"jain_fairness_slowdown\""), std::string::npos);
  EXPECT_NE(json.find("\"invals_from_0\""), std::string::npos);
  EXPECT_NE(json.find("\"slowdown\""), std::string::npos);
}

}  // namespace
}  // namespace cmcp
