// The engine is a deterministic virtual-time interleaver: identical
// configuration must give bit-identical results.
#include <gtest/gtest.h>

#include <sstream>

#include "core/simulation.h"
#include "sim/trace.h"
#include "workloads/workload_factory.h"

namespace cmcp {
namespace {

core::SimulationResult run_once(PolicyKind policy, std::uint64_t seed,
                                wl::PaperWorkload which = wl::PaperWorkload::kBt,
                                sim::trace::EventSink* sink = nullptr) {
  wl::WorkloadParams params;
  params.cores = 8;
  params.scale = 0.15;
  params.seed = seed;
  const auto w = wl::make_paper_workload(which, params);
  core::SimulationConfig config;
  config.machine.num_cores = 8;
  config.memory_fraction = wl::paper_memory_fraction(which);
  config.policy.kind = policy;
  config.trace = sink;
  return core::run_simulation(config, *w);
}

bool counters_equal(const metrics::CoreCounters& a, const metrics::CoreCounters& b) {
  return a.accesses == b.accesses && a.dtlb_misses == b.dtlb_misses &&
         a.major_faults == b.major_faults && a.minor_faults == b.minor_faults &&
         a.remote_invalidations_received == b.remote_invalidations_received &&
         a.evictions == b.evictions && a.writebacks == b.writebacks &&
         a.pcie_bytes_in == b.pcie_bytes_in &&
         a.cycles_compute == b.cycles_compute &&
         a.cycles_fault == b.cycles_fault &&
         a.cycles_lock_wait == b.cycles_lock_wait &&
         a.cycles_pcie_wait == b.cycles_pcie_wait &&
         a.cycles_barrier == b.cycles_barrier;
}

class DeterminismTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(DeterminismTest, IdenticalConfigIdenticalResult) {
  const auto a = run_once(GetParam(), 42);
  const auto b = run_once(GetParam(), 42);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.sharing_histogram, b.sharing_histogram);
  ASSERT_EQ(a.per_core.size(), b.per_core.size());
  for (std::size_t c = 0; c < a.per_core.size(); ++c)
    EXPECT_TRUE(counters_equal(a.per_core[c], b.per_core[c])) << "core " << c;
  EXPECT_TRUE(counters_equal(a.scanner, b.scanner));
}

TEST_P(DeterminismTest, DifferentSeedsDiverge) {
  const auto a = run_once(GetParam(), 1);
  const auto b = run_once(GetParam(), 2);
  EXPECT_NE(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(Policies, DeterminismTest,
                         ::testing::Values(PolicyKind::kFifo, PolicyKind::kLru,
                                           PolicyKind::kCmcp),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// The trace is part of the determinism contract: identical config + seed
// must give byte-identical exports in both formats.
TEST(Determinism, TraceExportsAreByteIdentical) {
  const sim::trace::Metadata meta = {{"seed", "42"}, {"policy", "CMCP"}};
  const sim::trace::Summary summary = {{"makespan", 0}};

  std::string perfetto[2], jsonl[2];
  for (int i = 0; i < 2; ++i) {
    sim::trace::EventSink sink;
    run_once(PolicyKind::kCmcp, 42, wl::PaperWorkload::kBt, &sink);
    EXPECT_FALSE(sink.empty());
    std::ostringstream p, j;
    sim::trace::export_perfetto(sink, meta, p);
    sim::trace::export_jsonl(sink, meta, summary, j);
    perfetto[i] = p.str();
    jsonl[i] = j.str();
  }
  EXPECT_EQ(perfetto[0], perfetto[1]);
  EXPECT_EQ(jsonl[0], jsonl[1]);
}

// Attaching a sink must not alter the simulated outcome.
TEST(Determinism, TracingIsObservationOnly) {
  sim::trace::EventSink sink;
  const auto traced = run_once(PolicyKind::kLru, 42, wl::PaperWorkload::kBt, &sink);
  const auto plain = run_once(PolicyKind::kLru, 42);
  EXPECT_EQ(traced.makespan, plain.makespan);
  ASSERT_EQ(traced.per_core.size(), plain.per_core.size());
  for (std::size_t c = 0; c < traced.per_core.size(); ++c)
    EXPECT_TRUE(counters_equal(traced.per_core[c], plain.per_core[c]))
        << "core " << c;
}

TEST(Determinism, AllWorkloadsStable) {
  for (const auto which : wl::kAllPaperWorkloads) {
    const auto a = run_once(PolicyKind::kCmcp, 9, which);
    const auto b = run_once(PolicyKind::kCmcp, 9, which);
    EXPECT_EQ(a.makespan, b.makespan) << to_string(which);
    EXPECT_EQ(a.app_total.major_faults, b.app_total.major_faults);
  }
}

}  // namespace
}  // namespace cmcp
