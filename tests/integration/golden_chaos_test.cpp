// Golden chaos matrix: two policies (CMCP, FIFO) under two pinned fault
// mixes (PCIe/ack-heavy and ECC/straggler-heavy) on a memory-constrained cg
// run, with the makespan, headline counters and the full resilience report
// pinned against tests/data/golden_chaos.txt. A drift here means the fault
// schedule, the recovery protocol's costs, or their interleaving changed —
// all of which are part of the determinism contract (docs/robustness.md).
//
// Regenerate intentionally with:
//
//   CMCP_UPDATE_GOLDEN=1 ./build/tests/cmcp_tests --gtest_filter='GoldenChaos*'
//   (then review with: git diff tests/data)
//
// The Fig8StyleRow test is the issue's acceptance scenario: a paper-shaped
// memory-constrained row with 1% transient PCIe faults and 2 poisoned
// frames must complete with nonzero recoveries and zero checker violations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "metrics/resilience_report.h"
#include "sim/fault_plan.h"
#include "workloads/workload_factory.h"

#ifndef CMCP_TEST_DATA_DIR
#define CMCP_TEST_DATA_DIR "tests/data"
#endif

namespace cmcp {
namespace {

std::string golden_path() {
  return std::string(CMCP_TEST_DATA_DIR) + "/golden_chaos.txt";
}

struct ChaosCell {
  const char* label;
  PolicyKind policy;
  const char* faults;
};

// Two mixes: transfer/ack failures stress the retry/backoff machinery,
// poison/straggler stress quarantine and the inflation accounting.
constexpr const char* kPcieMix =
    "seed=101,pcie=0.05,sticky=0.01,ack=0.05,poison=0,straggler=0";
constexpr const char* kEccMix =
    "seed=202,pcie=0,sticky=0,ack=0,poison=3,straggler=0.25";

constexpr ChaosCell kMatrix[] = {
    {"cmcp-pcie", PolicyKind::kCmcp, kPcieMix},
    {"cmcp-ecc", PolicyKind::kCmcp, kEccMix},
    {"fifo-pcie", PolicyKind::kFifo, kPcieMix},
    {"fifo-ecc", PolicyKind::kFifo, kEccMix},
};

core::SimulationConfig cell_config(const ChaosCell& cell) {
  core::SimulationConfig config;
  config.machine.num_cores = 8;
  config.memory_fraction = 0.37;  // cg's paper constraint: heavy eviction
  config.policy.kind = cell.policy;
  EXPECT_TRUE(sim::FaultPlanConfig::parse(cell.faults, &config.faults));
  return config;
}

core::SimulationResult run_cell(const ChaosCell& cell) {
  wl::WorkloadParams params;
  params.cores = 8;
  params.scale = 0.15;
  params.seed = 20260808;
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kCg, params);
  return core::run_simulation(cell_config(cell), *w);
}

std::string cell_report(const ChaosCell& cell) {
  const core::SimulationResult result = run_cell(cell);
  EXPECT_TRUE(result.faults_enabled);
  std::ostringstream out;
  out << "== " << cell.label << " ==\n"
      << "makespan            " << result.makespan << "\n"
      << "major_faults        " << result.app_total.major_faults << "\n"
      << "evictions           " << result.app_total.evictions << "\n"
      << "faults_injected     " << result.app_total.faults_injected << "\n"
      << "fault_retries       " << result.app_total.fault_retries << "\n"
      << "fault_give_ups      " << result.app_total.fault_give_ups << "\n";
  sim::FaultPlanConfig fc;
  EXPECT_TRUE(sim::FaultPlanConfig::parse(cell.faults, &fc));
  out << metrics::format_resilience_report(fc, result.fault_stats,
                                           result.capacity_units);
  return out.str();
}

TEST(GoldenChaos, PolicyByFaultMixMatrixMatchesCommittedGolden) {
  std::ostringstream actual;
  for (const ChaosCell& cell : kMatrix) actual << cell_report(cell);

  if (std::getenv("CMCP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual.str();
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good())
      << "missing " << golden_path()
      << " — regenerate with CMCP_UPDATE_GOLDEN=1 and commit it";
  std::stringstream expected;
  expected << in.rdbuf();

  std::istringstream actual_lines(actual.str());
  std::istringstream expected_lines(expected.str());
  std::string a;
  std::string e;
  std::size_t line = 0;
  while (true) {
    const bool more_a = static_cast<bool>(std::getline(actual_lines, a));
    const bool more_e = static_cast<bool>(std::getline(expected_lines, e));
    ++line;
    if (!more_a && !more_e) break;
    ASSERT_EQ(more_a, more_e) << "golden file length differs at line " << line;
    ASSERT_EQ(a, e) << "first divergence at golden_chaos.txt:" << line;
  }
}

TEST(GoldenChaos, MatrixCellsActuallyInjectAndRecover) {
  // The golden is only meaningful if both mixes genuinely exercise their
  // machinery: the PCIe mix must retry, the ECC mix must quarantine.
  const core::SimulationResult pcie = run_cell(kMatrix[0]);
  EXPECT_GT(pcie.fault_stats.injected[0] + pcie.fault_stats.injected[1], 0u);
  EXPECT_GT(pcie.fault_stats.retries, 0u);
  EXPECT_GT(pcie.fault_stats.recovery_cycles, 0u);
  const core::SimulationResult ecc = run_cell(kMatrix[1]);
  EXPECT_GT(ecc.fault_stats.frames_quarantined, 0u);
  EXPECT_GT(ecc.fault_stats.straggler_cycles, 0u);
}

#if CMCP_SIMCHECK_ENABLED
TEST(GoldenChaos, Fig8StyleRowCompletesWithZeroViolations) {
  // The issue's acceptance scenario: the paper's memory-constrained shape
  // with 1% transient PCIe failures and 2 poisoned frames. The run must
  // complete, recover (nonzero retries or quarantines), and pass every
  // invariant sweep.
  wl::WorkloadParams params;
  params.cores = 8;
  params.scale = 0.15;
  params.seed = 20260808;
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kCg, params);
  core::SimulationConfig config;
  config.machine.num_cores = 8;
  config.memory_fraction = 0.37;
  config.policy.kind = PolicyKind::kCmcp;
  ASSERT_TRUE(
      sim::FaultPlanConfig::parse("seed=8,pcie=0.01,poison=2", &config.faults));
  core::Simulation sim(config, *w);
  ASSERT_NE(sim.check_registry(), nullptr);
  std::vector<sim::CheckViolation> captured;
  sim.check_registry()->set_handler(
      [&](const sim::CheckViolation& v) { captured.push_back(v); });
  sim.check_registry()->set_stride(sim::CheckPoint::kAfterEviction, 1);
  const core::SimulationResult result = sim.run();
  EXPECT_GT(result.makespan, 0u);
  ASSERT_TRUE(result.faults_enabled);
  EXPECT_GT(result.fault_stats.total_injected(), 0u);
  EXPECT_GT(result.fault_stats.retries + result.fault_stats.frames_quarantined,
            0u);
  EXPECT_TRUE(captured.empty())
      << captured.size() << " violations, first: " << captured[0].checker
      << "/" << captured[0].invariant << ": " << captured[0].message;
}
#endif  // CMCP_SIMCHECK_ENABLED

}  // namespace
}  // namespace cmcp
