// Thread-count invariance: the engine's output is byte-identical at any
// --threads value (docs/architecture.md). threads == 1 is the exact serial
// path; higher counts run the worker pool with parallel local spans on
// eligible configurations. This matrix byte-compares the JSONL and
// Perfetto trace exports and the serialized result summary across
// threads ∈ {1, 2, 8} for:
//
//   * the policy matrix (FIFO / CMCP / LRU, memory-constrained — the
//     serial shared-state path at every thread count),
//   * parallel-ELIGIBLE runs (unconstrained CMCP/FIFO with SimCheck off,
//     where threads > 1 really executes local spans on workers), and
//   * a chaos fault mix (an active FaultPlan must force the serial path
//     and stay byte-identical).
//
// A second group proves the same invariance holds when whole RunSpecs
// execute under metrics::run_specs_parallel.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "metrics/experiment.h"
#include "metrics/parallel_runner.h"
#include "sim/trace.h"
#include "workloads/workload_factory.h"

namespace cmcp {
namespace {

struct Artifacts {
  std::string jsonl;     ///< JSONL trace export
  std::string perfetto;  ///< Perfetto trace export
  std::string summary;   ///< serialized result counters
};

std::string serialize_summary(const core::SimulationResult& result) {
  std::ostringstream os;
  os << "makespan=" << result.makespan << '\n';
  for (const auto& [name, value] : metrics::result_summary(result))
    os << name << '=' << value << '\n';
  for (const auto& c : result.per_core)
    os << c.accesses << ',' << c.dtlb_misses << ',' << c.major_faults << ','
       << c.minor_faults << ',' << c.evictions << ','
       << c.remote_invalidations_received << ',' << c.cycles_compute << ','
       << c.cycles_fault << ',' << c.cycles_barrier << ','
       << c.cycles_pcie_wait << '\n';
  return os.str();
}

Artifacts run_cell(PolicyKind policy, double fraction, unsigned threads,
                   bool simcheck, const char* faults = nullptr) {
  wl::WorkloadParams params;
  params.cores = 8;
  params.scale = 0.15;
  params.seed = 42;
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kBt, params);

  sim::trace::EventSink sink;
  core::SimulationConfig config;
  config.machine.num_cores = 8;
  config.policy.kind = policy;
  config.memory_fraction = fraction;
  config.threads = threads;
  config.simcheck = simcheck;
  config.trace = &sink;
  if (faults != nullptr)
    EXPECT_TRUE(sim::FaultPlanConfig::parse(faults, &config.faults));
  const auto result = core::run_simulation(config, *w);

  Artifacts a;
  const sim::trace::Metadata meta = {{"test", "thread_matrix"}};
  std::ostringstream j, p;
  sim::trace::export_jsonl(sink, meta, metrics::result_summary(result), j);
  sim::trace::export_perfetto(sink, meta, p);
  a.jsonl = j.str();
  a.perfetto = p.str();
  a.summary = serialize_summary(result);
  return a;
}

void expect_invariant(PolicyKind policy, double fraction, bool simcheck,
                      const char* faults = nullptr) {
  const Artifacts serial = run_cell(policy, fraction, 1, simcheck, faults);
  EXPECT_FALSE(serial.jsonl.empty());
  for (const unsigned threads : {2u, 8u}) {
    const Artifacts par = run_cell(policy, fraction, threads, simcheck, faults);
    EXPECT_EQ(serial.jsonl, par.jsonl)
        << to_string(policy) << " fraction " << fraction << " threads "
        << threads;
    EXPECT_EQ(serial.perfetto, par.perfetto)
        << to_string(policy) << " threads " << threads;
    EXPECT_EQ(serial.summary, par.summary)
        << to_string(policy) << " threads " << threads;
  }
}

TEST(ThreadMatrix, ConstrainedPolicyMatrixIsThreadCountInvariant) {
  // Memory-constrained: evictions force every thread count down the serial
  // shared-state path, which must be taken identically.
  expect_invariant(PolicyKind::kFifo, 0.5, /*simcheck=*/true);
  expect_invariant(PolicyKind::kCmcp, 0.5, /*simcheck=*/true);
  expect_invariant(PolicyKind::kLru, 0.5, /*simcheck=*/true);
}

TEST(ThreadMatrix, ParallelEligibleRunsAreThreadCountInvariant) {
  // Unconstrained + SimCheck off: threads > 1 takes the worker-pool path
  // (parallel local spans) and must still reproduce the serial bytes.
  expect_invariant(PolicyKind::kCmcp, 1.5, /*simcheck=*/false);
  expect_invariant(PolicyKind::kFifo, 1.5, /*simcheck=*/false);
}

TEST(ThreadMatrix, ChaosFaultMixIsThreadCountInvariant) {
  // An active FaultPlan forces the serial engine at any thread count; the
  // injected schedule (and its trace) must not depend on `threads`.
  expect_invariant(PolicyKind::kCmcp, 0.6, /*simcheck=*/true,
                   "seed=7,pcie=0.02,ack=0.01,poison=2");
}

// --- run_specs_parallel: whole runs concurrently, traces to disk ----------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing trace file " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ThreadMatrix, RunSpecsParallelMatchesSerialExecution) {
  // Two specs with engine threading enabled, executed (a) one by one via
  // run_spec and (b) concurrently via run_specs_parallel: per-spec traces
  // and summaries must be byte-identical — outer (experiment-level) and
  // inner (engine-level) parallelism compose without touching results.
  const std::string dir = ::testing::TempDir();
  std::vector<metrics::RunSpec> specs(2);
  for (int i = 0; i < 2; ++i) {
    specs[i].workload = wl::PaperWorkload::kBt;
    specs[i].cores = 8;
    specs[i].scale = 0.15;
    specs[i].seed = 42 + static_cast<std::uint64_t>(i);
    specs[i].policy.kind = i == 0 ? PolicyKind::kCmcp : PolicyKind::kFifo;
    specs[i].memory_fraction = 1.5;
    specs[i].simcheck = false;
    specs[i].threads = 2;
    specs[i].trace_format = sim::trace::Format::kJsonl;
  }

  std::vector<std::string> serial_traces, serial_summaries;
  for (int i = 0; i < 2; ++i) {
    specs[i].trace_path = dir + "/tm_serial_" + std::to_string(i) + ".jsonl";
    serial_summaries.push_back(serialize_summary(metrics::run_spec(specs[i])));
    serial_traces.push_back(slurp(specs[i].trace_path));
  }

  for (int i = 0; i < 2; ++i)
    specs[i].trace_path = dir + "/tm_par_" + std::to_string(i) + ".jsonl";
  const auto results = metrics::run_specs_parallel(specs, 2);
  ASSERT_EQ(results.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(serialize_summary(results[i]), serial_summaries[i]) << i;
    EXPECT_EQ(slurp(specs[i].trace_path), serial_traces[i]) << i;
    std::remove(specs[i].trace_path.c_str());
    std::remove((dir + "/tm_serial_" + std::to_string(i) + ".jsonl").c_str());
  }
}

}  // namespace
}  // namespace cmcp
