#include "metrics/stats.h"

#include <gtest/gtest.h>

#include <array>

#include "metrics/counters.h"

namespace cmcp::metrics {
namespace {

TEST(Summary, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, SingleValue) {
  const std::array<double, 1> v = {7.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownDistribution) {
  const std::array<double, 4> v = {2.0, 4.0, 4.0, 6.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.stddev, 1.4142, 1e-3);
}

TEST(CyclesToSeconds, UsesModelClock) {
  sim::CostModel cost;
  cost.clock_ghz = 1.0;
  EXPECT_DOUBLE_EQ(cycles_to_seconds(1'000'000'000, cost), 1.0);
  cost.clock_ghz = 2.0;
  EXPECT_DOUBLE_EQ(cycles_to_seconds(1'000'000'000, cost), 0.5);
}

TEST(CoreCounters, AccumulationSumsEveryField) {
  CoreCounters a, b;
  a.accesses = 1;
  a.dtlb_misses = 2;
  a.major_faults = 3;
  a.minor_faults = 4;
  a.remote_invalidations_received = 5;
  a.cycles_compute = 6;
  a.pcie_bytes_in = 7;
  b = a;
  b += a;
  EXPECT_EQ(b.accesses, 2u);
  EXPECT_EQ(b.dtlb_misses, 4u);
  EXPECT_EQ(b.major_faults, 6u);
  EXPECT_EQ(b.minor_faults, 8u);
  EXPECT_EQ(b.remote_invalidations_received, 10u);
  EXPECT_EQ(b.cycles_compute, 12u);
  EXPECT_EQ(b.pcie_bytes_in, 14u);
}

}  // namespace
}  // namespace cmcp::metrics
