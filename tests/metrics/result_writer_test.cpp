// metrics::ResultWriter — the single CSV/JSON serialization path.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "metrics/result_writer.h"

namespace cmcp::metrics {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Per-test scratch directory: ctest may run tests as parallel processes, so
// each test cleans and owns its own directory.
fs::path fresh_dir(const char* test) {
  const auto dir = fs::path(::testing::TempDir()) / "result_writer_test" / test;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(ResultWriter, ColumnsAreUnionInFirstSeenOrder) {
  ResultWriter w;
  w.add_row().set("a", 1).set("b", 2);
  w.add_row().set("b", 3).set("c", 4);
  EXPECT_EQ(w.columns(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(w.csv(), "a,b,c\n1,2,\n,3,4\n");
}

TEST(ResultWriter, SetOverwritesExistingField) {
  ResultWriter w;
  auto& row = w.add_row();
  row.set("x", 1);
  row.set("x", 2);
  EXPECT_EQ(w.csv(), "x\n2\n");
}

TEST(ResultWriter, CsvQuotesOnlyWhenNeeded) {
  ResultWriter w;
  w.add_row()
      .set("plain", "abc")
      .set("comma", "a,b")
      .set("quote", "a\"b")
      .set("newline", "a\nb");
  EXPECT_EQ(w.csv(),
            "plain,comma,quote,newline\n"
            "abc,\"a,b\",\"a\"\"b\",\"a\nb\"\n");
}

TEST(ResultWriter, DoublesUseShortestRoundTrip) {
  ResultWriter w;
  w.add_row().set("v", 0.9).set("w", 0.1).set("i", std::uint64_t{7});
  EXPECT_EQ(w.csv(), "v,w,i\n0.9,0.1,7\n");
}

TEST(ResultWriter, JsonSchemaVersionMetaAndTypedValues) {
  ResultWriter w;
  w.meta("workload", "cg");
  w.add_row()
      .set("name", "x\"y")
      .set("count", std::uint64_t{5})
      .set("ratio", 0.5)
      .set("flag", true);
  EXPECT_EQ(w.json(),
            "{\"schema_version\":1,\n"
            "\"meta\":{\"workload\":\"cg\"},\n"
            "\"rows\":[\n"
            "{\"name\":\"x\\\"y\",\"count\":5,\"ratio\":0.5,\"flag\":true}\n"
            "]}\n");
}

TEST(ResultWriter, SaveCreatesParentDirectories) {
  const auto dir = fresh_dir("save");
  const auto path = dir / "nested/deeper/out.csv";
  ResultWriter w;
  w.add_row().set("a", 1);
  w.save_csv(path.string());
  EXPECT_EQ(slurp(path), "a\n1\n");
  w.save_json((dir / "nested/out.json").string());
  EXPECT_TRUE(fs::exists(dir / "nested/out.json"));
}

TEST(ResultWriter, AppendWritesHeaderExactlyOnce) {
  const auto path = fresh_dir("append") / "append.csv";
  ResultWriter w;
  w.add_row().set("a", 1).set("b", 2);
  w.append_csv(path.string());
  w.append_csv(path.string());
  EXPECT_EQ(slurp(path), "a,b\n1,2\n1,2\n");
}

TEST(ResultWriterDeathTest, AppendAbortsOnHeaderMismatch) {
  const auto path = fresh_dir("mismatch") / "mismatch.csv";
  ResultWriter w;
  w.add_row().set("a", 1);
  w.append_csv(path.string());
  ResultWriter other;
  other.add_row().set("z", 1);
  EXPECT_DEATH(other.append_csv(path.string()), "CSV schema mismatch");
}

}  // namespace
}  // namespace cmcp::metrics
