#include "metrics/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cmcp::metrics {
namespace {

TEST(Table, MarkdownHasHeaderSeparatorAndRows) {
  Table t({"app", "rel"});
  t.add_row({"bt", "0.49"});
  t.add_row({"cg", "0.65"});
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| app | rel  |"), std::string::npos);
  EXPECT_NE(md.find("|-----|------|"), std::string::npos);
  EXPECT_NE(md.find("| bt  | 0.49 |"), std::string::npos);
  EXPECT_NE(md.find("| cg  | 0.65 |"), std::string::npos);
}

TEST(Table, MarkdownPadsToWidestCell) {
  Table t({"x"});
  t.add_row({"longer-cell"});
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| x           |"), std::string::npos);
}

TEST(Table, CsvPlain) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"a"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  EXPECT_EQ(t.csv(), "a\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Table, SaveCsvCreatesDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "cmcp_table_test";
  std::filesystem::remove_all(dir);
  Table t({"a"});
  t.add_row({"1"});
  const auto path = dir / "nested" / "out.csv";
  t.save_csv(path.string());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a\n1\n");
  std::filesystem::remove_all(dir);
}

TEST(Table, RowAccessors) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.row(0)[1], "2");
}

TEST(TableDeath, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "width");
}

TEST(Formatting, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.0, 0), "3");
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

TEST(Formatting, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.385), "38.5%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Formatting, FmtU64) { EXPECT_EQ(fmt_u64(12345), "12345"); }

}  // namespace
}  // namespace cmcp::metrics
