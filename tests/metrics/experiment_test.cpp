#include "metrics/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>

namespace cmcp::metrics {
namespace {

TEST(RunSpec, LabelMentionsEveryDimension) {
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kLu;
  spec.cores = 24;
  spec.pt_kind = PageTableKind::kPspt;
  spec.policy.kind = PolicyKind::kCmcp;
  spec.page_size = PageSizeClass::k64K;
  const std::string label = spec.label();
  EXPECT_NE(label.find("lu.B"), std::string::npos);
  EXPECT_NE(label.find("PSPT"), std::string::npos);
  EXPECT_NE(label.find("CMCP"), std::string::npos);
  EXPECT_NE(label.find("24c"), std::string::npos);
  EXPECT_NE(label.find("64kB"), std::string::npos);
}

TEST(RunSpec, LabelFlagsPreload) {
  RunSpec spec;
  spec.preload = true;
  EXPECT_NE(spec.label().find("no data movement"), std::string::npos);
}

TEST(ToConfig, UsesPaperFractionWhenUnset) {
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kCg;
  spec.memory_fraction = -1.0;
  const auto config = to_config(spec);
  EXPECT_DOUBLE_EQ(config.memory_fraction, 0.37);
}

TEST(ToConfig, ExplicitFractionWins) {
  RunSpec spec;
  spec.memory_fraction = 0.8;
  EXPECT_DOUBLE_EQ(to_config(spec).memory_fraction, 0.8);
}

TEST(ToConfig, CopiesMachineKnobs) {
  RunSpec spec;
  spec.cores = 12;
  spec.page_size = PageSizeClass::k2M;
  const auto config = to_config(spec);
  EXPECT_EQ(config.machine.num_cores, 12u);
  EXPECT_EQ(config.machine.page_size, PageSizeClass::k2M);
}

std::string lookup(const sim::trace::Metadata& meta, std::string_view key) {
  for (const auto& [name, value] : meta)
    if (name == key) return value;
  return "<missing>";
}

TEST(Describe, SerializesEveryField) {
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kLu;
  spec.size = wl::WorkloadSize::kSmall;
  spec.cores = 24;
  spec.pt_kind = PageTableKind::kPspt;
  spec.policy.kind = PolicyKind::kCmcp;
  spec.policy.cmcp.p = 0.45;
  spec.memory_fraction = 0.5;
  spec.preload = true;
  spec.page_size = PageSizeClass::k64K;
  spec.seed = 99;
  spec.scale = 0.25;
  const auto meta = spec.describe();
  EXPECT_EQ(lookup(meta, "workload"), "lu");
  EXPECT_EQ(lookup(meta, "cores"), "24");
  EXPECT_EQ(lookup(meta, "pt_kind"), "PSPT");
  EXPECT_EQ(lookup(meta, "policy"), "CMCP");
  EXPECT_EQ(lookup(meta, "memory_fraction"), "0.5");
  EXPECT_EQ(lookup(meta, "preload"), "true");
  EXPECT_EQ(lookup(meta, "page_size"), "64kB");
  EXPECT_EQ(lookup(meta, "seed"), "99");
  EXPECT_EQ(lookup(meta, "scale"), "0.25");
  EXPECT_EQ(lookup(meta, "cmcp_p"), "0.45");
}

TEST(Describe, RecordsResolvedPaperFraction) {
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kCg;
  spec.memory_fraction = -1.0;  // "use the paper default"
  // describe() and to_config() must agree on the resolved value.
  EXPECT_EQ(lookup(spec.describe(), "memory_fraction"), "0.37");
  EXPECT_DOUBLE_EQ(spec.to_config().memory_fraction, 0.37);
}

TEST(ResultSummary, CoversHeadlineCountersAndPolicyStats) {
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kScale;
  spec.cores = 4;
  spec.scale = 0.05;
  spec.policy.kind = PolicyKind::kCmcp;
  const auto result = run_spec(spec);
  const auto summary = result_summary(result);
  bool saw_makespan = false, saw_policy = false;
  for (const auto& [name, value] : summary) {
    if (name == "makespan") {
      saw_makespan = true;
      EXPECT_EQ(value, result.makespan);
    }
    if (name.rfind("policy.", 0) == 0) saw_policy = true;
  }
  EXPECT_TRUE(saw_makespan);
  EXPECT_TRUE(saw_policy);
  EXPECT_EQ(result.policy_name, "CMCP");
}

TEST(RelativePerformance, RatioAndZeroGuard) {
  core::SimulationResult base, run;
  base.makespan = 100;
  run.makespan = 200;
  EXPECT_DOUBLE_EQ(relative_performance(base, run), 0.5);
  run.makespan = 0;
  EXPECT_DOUBLE_EQ(relative_performance(base, run), 0.0);
}

TEST(FastMode, FollowsEnvironment) {
  unsetenv("CMCP_BENCH_FAST");
  EXPECT_FALSE(fast_mode());
  EXPECT_EQ(paper_core_counts().size(), 7u);
  setenv("CMCP_BENCH_FAST", "1", 1);
  EXPECT_TRUE(fast_mode());
  EXPECT_LT(paper_core_counts().size(), 7u);
  unsetenv("CMCP_BENCH_FAST");
}

TEST(RunSpecEndToEnd, SmokeRun) {
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kScale;
  spec.cores = 4;
  spec.scale = 0.05;
  spec.policy.kind = PolicyKind::kCmcp;
  const auto result = run_spec(spec);
  EXPECT_GT(result.makespan, 0u);
  EXPECT_GT(result.app_total.accesses, 0u);
  EXPECT_EQ(result.per_core.size(), 4u);
}

TEST(RunSpecEndToEnd, TracePathWritesTheTrace) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    "experiment_test" / "run.jsonl";
  std::filesystem::remove_all(path.parent_path());
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kScale;
  spec.cores = 4;
  spec.scale = 0.05;
  spec.policy.kind = PolicyKind::kCmcp;
  spec.trace_path = path.string();
  spec.trace_format = sim::trace::Format::kJsonl;
  run_spec(spec);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("{\"type\":\"meta\"", 0), 0u) << first;
}

}  // namespace
}  // namespace cmcp::metrics
