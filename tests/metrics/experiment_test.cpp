#include "metrics/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace cmcp::metrics {
namespace {

TEST(RunSpec, LabelMentionsEveryDimension) {
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kLu;
  spec.cores = 24;
  spec.pt_kind = PageTableKind::kPspt;
  spec.policy.kind = PolicyKind::kCmcp;
  spec.page_size = PageSizeClass::k64K;
  const std::string label = spec.label();
  EXPECT_NE(label.find("lu.B"), std::string::npos);
  EXPECT_NE(label.find("PSPT"), std::string::npos);
  EXPECT_NE(label.find("CMCP"), std::string::npos);
  EXPECT_NE(label.find("24c"), std::string::npos);
  EXPECT_NE(label.find("64kB"), std::string::npos);
}

TEST(RunSpec, LabelFlagsPreload) {
  RunSpec spec;
  spec.preload = true;
  EXPECT_NE(spec.label().find("no data movement"), std::string::npos);
}

TEST(ToConfig, UsesPaperFractionWhenUnset) {
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kCg;
  spec.memory_fraction = -1.0;
  const auto config = to_config(spec);
  EXPECT_DOUBLE_EQ(config.memory_fraction, 0.37);
}

TEST(ToConfig, ExplicitFractionWins) {
  RunSpec spec;
  spec.memory_fraction = 0.8;
  EXPECT_DOUBLE_EQ(to_config(spec).memory_fraction, 0.8);
}

TEST(ToConfig, CopiesMachineKnobs) {
  RunSpec spec;
  spec.cores = 12;
  spec.page_size = PageSizeClass::k2M;
  const auto config = to_config(spec);
  EXPECT_EQ(config.machine.num_cores, 12u);
  EXPECT_EQ(config.machine.page_size, PageSizeClass::k2M);
}

TEST(RelativePerformance, RatioAndZeroGuard) {
  core::SimulationResult base, run;
  base.makespan = 100;
  run.makespan = 200;
  EXPECT_DOUBLE_EQ(relative_performance(base, run), 0.5);
  run.makespan = 0;
  EXPECT_DOUBLE_EQ(relative_performance(base, run), 0.0);
}

TEST(FastMode, FollowsEnvironment) {
  unsetenv("CMCP_BENCH_FAST");
  EXPECT_FALSE(fast_mode());
  EXPECT_EQ(paper_core_counts().size(), 7u);
  setenv("CMCP_BENCH_FAST", "1", 1);
  EXPECT_TRUE(fast_mode());
  EXPECT_LT(paper_core_counts().size(), 7u);
  unsetenv("CMCP_BENCH_FAST");
}

TEST(RunSpecEndToEnd, SmokeRun) {
  RunSpec spec;
  spec.workload = wl::PaperWorkload::kScale;
  spec.cores = 4;
  spec.scale = 0.05;
  spec.policy.kind = PolicyKind::kCmcp;
  const auto result = run_spec(spec);
  EXPECT_GT(result.makespan, 0u);
  EXPECT_GT(result.app_total.accesses, 0u);
  EXPECT_EQ(result.per_core.size(), 4u);
}

}  // namespace
}  // namespace cmcp::metrics
