#include "metrics/parallel_runner.h"

#include <gtest/gtest.h>

namespace cmcp::metrics {
namespace {

std::vector<RunSpec> small_sweep() {
  std::vector<RunSpec> specs;
  for (const PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kCmcp}) {
    for (const CoreId cores : {4u, 8u}) {
      RunSpec spec;
      spec.workload = wl::PaperWorkload::kScale;
      spec.cores = cores;
      spec.scale = 0.05;
      spec.policy.kind = policy;
      specs.push_back(spec);
    }
  }
  return specs;
}

TEST(ParallelRunner, MatchesSerialExecutionExactly) {
  const auto specs = small_sweep();
  const auto parallel = run_specs_parallel(specs, 4);
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto serial = run_spec(specs[i]);
    EXPECT_EQ(parallel[i].makespan, serial.makespan) << "spec " << i;
    EXPECT_EQ(parallel[i].app_total.major_faults,
              serial.app_total.major_faults);
    EXPECT_EQ(parallel[i].app_total.remote_invalidations_received,
              serial.app_total.remote_invalidations_received);
  }
}

TEST(ParallelRunner, SingleThreadFallback) {
  const auto specs = small_sweep();
  const auto one = run_specs_parallel(specs, 1);
  const auto many = run_specs_parallel(specs, 8);
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(one[i].makespan, many[i].makespan);
}

TEST(ParallelRunner, EmptyInput) {
  EXPECT_TRUE(run_specs_parallel({}, 4).empty());
  EXPECT_TRUE(run_jobs_parallel({}, 4).empty());
}

TEST(ParallelRunner, JobsVariantPreservesOrder) {
  std::vector<std::function<core::SimulationResult()>> jobs;
  for (int i = 1; i <= 6; ++i) {
    jobs.emplace_back([i] {
      core::SimulationResult r;
      r.makespan = static_cast<Cycles>(i * 100);
      return r;
    });
  }
  const auto results = run_jobs_parallel(jobs, 3);
  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(results[i].makespan, static_cast<Cycles>((i + 1) * 100));
}

}  // namespace
}  // namespace cmcp::metrics
