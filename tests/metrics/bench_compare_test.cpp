// The bench-regression gate itself must be trustworthy: a gate that passes
// a regressed document is worse than no gate. These tests pin the parser,
// the tolerance arithmetic, and the two committed fixtures CI diffs as a
// live end-to-end check of tools/bench_compare's exit code.
#include "metrics/bench_compare.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#ifndef CMCP_TEST_DATA_DIR
#define CMCP_TEST_DATA_DIR "tests/data"
#endif

namespace cmcp::metrics {
namespace {

BenchDoc doc_from(const std::string& text) {
  std::istringstream in(text);
  return load_bench_json(in);
}

const char* kTwoRows =
    "{\"schema_version\": 1,\n"
    "\"rows\": [\n"
    "{\"name\": \"sim_a\", \"kind\": \"sim\", \"ns_per_ref\": 100.0, "
    "\"refs_per_sec\": 1.0e7},\n"
    "{\"name\": \"micro_b\", \"kind\": \"micro\", \"ns_per_ref\": 50.0, "
    "\"refs_per_sec\": 2.0e7}\n"
    "]}\n";

TEST(BenchCompareTest, ParsesRowsAndFields) {
  const BenchDoc doc = doc_from(kTwoRows);
  ASSERT_TRUE(doc.ok);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0].name, "sim_a");
  EXPECT_EQ(doc.rows[0].kind, "sim");
  EXPECT_DOUBLE_EQ(doc.rows[0].ns_per_ref, 100.0);
  EXPECT_DOUBLE_EQ(doc.rows[1].refs_per_sec, 2.0e7);
}

TEST(BenchCompareTest, EmptyOrMalformedInputIsNotOk) {
  EXPECT_FALSE(doc_from("").ok);
  EXPECT_FALSE(doc_from("not json at all\n").ok);
  // A rows-free document parses but carries nothing to compare.
  EXPECT_FALSE(doc_from("{\"schema_version\": 1, \"rows\": []}\n").ok);
}

TEST(BenchCompareTest, IdenticalDocsPass) {
  const BenchDoc doc = doc_from(kTwoRows);
  const CompareResult result = compare_bench(doc, doc, CompareOptions{});
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(result.rows[0].speedup, 1.0);
}

TEST(BenchCompareTest, RegressionBeyondToleranceFails) {
  const BenchDoc base = doc_from(kTwoRows);
  BenchDoc cur = base;
  cur.rows[0].refs_per_sec = base.rows[0].refs_per_sec * 0.5;  // 2x slower
  CompareOptions options;
  options.tolerance = 0.25;
  const CompareResult result = compare_bench(base, cur, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.rows[0].regressed);
  EXPECT_FALSE(result.rows[1].regressed);
}

TEST(BenchCompareTest, SlowdownWithinTolerancePasses) {
  const BenchDoc base = doc_from(kTwoRows);
  BenchDoc cur = base;
  cur.rows[0].refs_per_sec = base.rows[0].refs_per_sec * 0.80;
  CompareOptions options;
  options.tolerance = 0.25;
  EXPECT_TRUE(compare_bench(base, cur, options).ok());
}

TEST(BenchCompareTest, LowerIsBetterMetric) {
  const BenchDoc base = doc_from(kTwoRows);
  BenchDoc cur = base;
  cur.rows[0].ns_per_ref = base.rows[0].ns_per_ref * 2.0;  // slower
  CompareOptions options;
  options.metric = "ns_per_ref";
  const CompareResult result = compare_bench(base, cur, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.rows[0].regressed);
  // Speedup is normalized so > 1 always means faster.
  EXPECT_DOUBLE_EQ(result.rows[0].speedup, 0.5);
}

TEST(BenchCompareTest, MissingRowIsAFailure) {
  const BenchDoc base = doc_from(kTwoRows);
  BenchDoc cur = base;
  cur.rows.pop_back();
  const CompareResult result = compare_bench(base, cur, CompareOptions{});
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0], "micro_b");
}

TEST(BenchCompareTest, ExtraCurrentRowsAreIgnored) {
  const BenchDoc base = doc_from(kTwoRows);
  BenchDoc cur = base;
  BenchRow extra;
  extra.name = "new_phase";
  extra.refs_per_sec = 1.0;
  cur.rows.push_back(extra);
  EXPECT_TRUE(compare_bench(base, cur, CompareOptions{}).ok());
}

TEST(BenchCompareTest, ZeroMeasurementIsARegression) {
  const BenchDoc base = doc_from(kTwoRows);
  BenchDoc cur = base;
  cur.rows[0].refs_per_sec = 0.0;  // truncated/corrupt document
  const CompareResult result = compare_bench(base, cur, CompareOptions{});
  EXPECT_FALSE(result.ok());
}

TEST(BenchCompareTest, RequireSpeedupGate) {
  const BenchDoc base = doc_from(kTwoRows);
  BenchDoc cur = base;
  cur.rows[1].refs_per_sec = base.rows[1].refs_per_sec * 1.8;
  CompareOptions options;
  options.require_speedup = 1.5;
  EXPECT_TRUE(compare_bench(base, cur, options).ok());
  options.require_speedup = 2.0;
  const CompareResult result = compare_bench(base, cur, options);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.speedup_met);
  EXPECT_DOUBLE_EQ(result.best_speedup, 1.8);
}

TEST(BenchCompareTest, RowsFilterSelectsSubset) {
  const BenchDoc base = doc_from(kTwoRows);
  BenchDoc cur = base;
  // Tank the micro row; a comparison filtered to sim rows must not see it.
  cur.rows[1].refs_per_sec = base.rows[1].refs_per_sec * 0.1;
  CompareOptions options;
  options.rows = "sim_";
  const CompareResult result = compare_bench(base, cur, options);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].name, "sim_a");
  EXPECT_TRUE(result.ok());
  // Unfiltered, the regression is visible again.
  EXPECT_FALSE(compare_bench(base, cur, CompareOptions{}).ok());
  // A row missing from current still fails inside the filter.
  cur.rows.erase(cur.rows.begin());
  EXPECT_FALSE(compare_bench(base, cur, options).ok());
}

TEST(BenchCompareTest, RowsFilterMatchingNothingFails) {
  const BenchDoc doc = doc_from(kTwoRows);
  CompareOptions options;
  options.rows = "no_such_row";
  const CompareResult result = compare_bench(doc, doc, options);
  EXPECT_TRUE(result.empty_selection);
  EXPECT_FALSE(result.ok());
}

TEST(BenchCompareTest, RequireSpeedupWithRowsFilterDemandsEveryRow) {
  const BenchDoc base = doc_from(kTwoRows);
  BenchDoc cur = base;
  cur.rows[0].refs_per_sec = base.rows[0].refs_per_sec * 3.2;
  cur.rows[1].refs_per_sec = base.rows[1].refs_per_sec * 1.2;
  // Unfiltered: best-row semantics, 3.2x meets the bar.
  CompareOptions options;
  options.require_speedup = 3.0;
  EXPECT_TRUE(compare_bench(base, cur, options).ok());
  // Filtered to both rows (empty-string filter differs from no filter):
  // every selected row must deliver, and micro_b's 1.2x does not.
  options.rows = "_";
  const CompareResult all = compare_bench(base, cur, options);
  EXPECT_FALSE(all.speedup_met);
  EXPECT_FALSE(all.ok());
  // Filtered to the row that did speed up, the claim holds.
  options.rows = "sim_";
  EXPECT_TRUE(compare_bench(base, cur, options).ok());
}

// The committed fixtures back CI's live exit-code check of the CLI: the
// regressed document must fail against the baseline (one halved row, one
// dropped row), and the baseline must pass against itself.
TEST(BenchCompareTest, CommittedFixturesBehave) {
  const BenchDoc base = load_bench_file(std::string(CMCP_TEST_DATA_DIR) +
                                        "/bench_baseline_fixture.json");
  const BenchDoc bad = load_bench_file(std::string(CMCP_TEST_DATA_DIR) +
                                       "/bench_regressed_fixture.json");
  ASSERT_TRUE(base.ok);
  ASSERT_TRUE(bad.ok);
  EXPECT_TRUE(compare_bench(base, base, CompareOptions{}).ok());
  const CompareResult result = compare_bench(base, bad, CompareOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.missing.size(), 1u);
  bool fig7_regressed = false;
  for (const RowComparison& row : result.rows)
    if (row.name == "fig7_bt_cmcp") fig7_regressed = row.regressed;
  EXPECT_TRUE(fig7_regressed);
}

}  // namespace
}  // namespace cmcp::metrics
