#include "policy/arc.h"

#include <gtest/gtest.h>

#include "policy/policy_factory.h"
#include "testing/policy_harness.h"

namespace cmcp::policy {
namespace {

using testing::FakePolicyHost;
using testing::PageFactory;

TEST(Arc, ColdPagesEnterRecencyList) {
  FakePolicyHost host(8, 4);
  ArcPolicy policy(host);
  PageFactory pages;
  policy.on_insert(pages.make(1));
  policy.on_insert(pages.make(2));
  EXPECT_EQ(policy.t1_size(), 2u);
  EXPECT_EQ(policy.t2_size(), 0u);
}

TEST(Arc, VictimIsT1LruWhenTargetZero) {
  FakePolicyHost host(8, 4);
  ArcPolicy policy(host);
  PageFactory pages;
  auto& a = pages.make(1);
  auto& b = pages.make(2);
  policy.on_insert(a);
  policy.on_insert(b);
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &a);
}

TEST(Arc, EvictedT1PageGoesToGhostB1) {
  FakePolicyHost host(8, 4);
  ArcPolicy policy(host);
  PageFactory pages;
  auto& a = pages.make(1);
  policy.on_insert(a);
  policy.on_evict(a);
  pages.registry().erase(a);
  EXPECT_EQ(policy.b1_size(), 1u);
  EXPECT_EQ(policy.t1_size(), 0u);
}

TEST(Arc, RefaultFromB1EntersT2AndGrowsTarget) {
  FakePolicyHost host(8, 4);
  ArcPolicy policy(host);
  PageFactory pages;
  auto& a = pages.make(1);
  policy.on_insert(a);
  policy.on_evict(a);
  pages.registry().erase(a);
  ASSERT_EQ(policy.target(), 0.0);

  auto& again = pages.make(1);
  policy.on_insert(again);
  EXPECT_EQ(policy.t2_size(), 1u);
  EXPECT_EQ(policy.b1_size(), 0u);  // consumed
  EXPECT_GT(policy.target(), 0.0);
  EXPECT_EQ(testing::stat_of(policy, "ghost_hits_b1"), 1u);
}

TEST(Arc, RefaultFromB2ShrinksTarget) {
  FakePolicyHost host(8, 4);
  ArcPolicy policy(host);
  PageFactory pages;
  // Get a page into T2, evict it (-> B2), refault it.
  auto& a = pages.make(1);
  policy.on_insert(a);
  a.core_map_count = 2;
  policy.on_core_map_grow(a);  // T1 -> T2
  ASSERT_EQ(policy.t2_size(), 1u);
  policy.on_evict(a);
  pages.registry().erase(a);
  ASSERT_EQ(policy.b2_size(), 1u);

  // Raise the target first so the shrink is observable.
  auto& b = pages.make(2);
  policy.on_insert(b);
  policy.on_evict(b);
  pages.registry().erase(b);
  auto& b2 = pages.make(2);
  policy.on_insert(b2);  // B1 hit: target > 0
  const double before = policy.target();
  ASSERT_GT(before, 0.0);

  auto& a2 = pages.make(1);
  policy.on_insert(a2);  // B2 hit
  EXPECT_LT(policy.target(), before);
  EXPECT_EQ(testing::stat_of(policy, "ghost_hits_b2"), 1u);
}

TEST(Arc, MinorFaultPromotesToT2) {
  FakePolicyHost host(8, 4);
  ArcPolicy policy(host);
  PageFactory pages;
  auto& a = pages.make(1);
  policy.on_insert(a);
  a.core_map_count = 2;
  policy.on_core_map_grow(a);
  EXPECT_EQ(policy.t1_size(), 0u);
  EXPECT_EQ(policy.t2_size(), 1u);
  EXPECT_EQ(testing::stat_of(policy, "promotions"), 1u);
}

TEST(Arc, GhostListsBounded) {
  FakePolicyHost host(4, 4);  // capacity 4 -> ghosts bounded at 4
  ArcPolicy policy(host);
  PageFactory pages;
  for (UnitIdx u = 0; u < 20; ++u) {
    auto& pg = pages.make(u);
    policy.on_insert(pg);
    policy.on_evict(pg);
    pages.registry().erase(pg);
  }
  EXPECT_LE(policy.b1_size(), 4u);
}

TEST(Arc, PromotedPagesSurviveColdStreaming) {
  // Pages promoted to T2 (here via the minor-fault signal) are never chosen
  // while T1 pages exist and the target favours frequency (no ghost hits).
  FakePolicyHost host(16, 4);
  ArcPolicy policy(host);
  PageFactory pages;
  std::vector<mm::ResidentPage*> hot;
  for (UnitIdx u = 0; u < 4; ++u) {
    hot.push_back(&pages.make(u));
    policy.on_insert(*hot.back());
    hot.back()->core_map_count = 2;
    policy.on_core_map_grow(*hot.back());  // -> T2
  }
  ASSERT_EQ(policy.t2_size(), 4u);

  std::size_t resident = 4;
  for (UnitIdx u = 100; u < 400; ++u) {
    if (resident >= 16) {
      Cycles extra = 0;
      mm::ResidentPage* victim = policy.pick_victim(0, extra);
      ASSERT_NE(victim, nullptr);
      for (auto* h : hot) ASSERT_NE(victim, h) << "hot page evicted at " << u;
      policy.on_evict(*victim);
      pages.registry().erase(*victim);
      --resident;
    }
    policy.on_insert(pages.make(u));
    ++resident;
  }
  EXPECT_EQ(policy.t2_size(), 4u);
}

TEST(Arc, FullSimulationRunCompletes) {
  // Structural smoke via the factory (also exercised in mm_property_test).
  FakePolicyHost host(32, 8);
  PolicyParams params;
  params.kind = PolicyKind::kArc;
  auto policy = make_policy(host, params);
  EXPECT_EQ(policy->name(), "ARC-f");
}

}  // namespace
}  // namespace cmcp::policy
