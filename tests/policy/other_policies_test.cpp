// CLOCK, LFU, RANDOM, the dynamic-p controller and the policy factory.
#include <gtest/gtest.h>

#include <unordered_set>

#include "policy/clock_policy.h"
#include "policy/dynamic_p.h"
#include "policy/lfu.h"
#include "policy/policy_factory.h"
#include "policy/random_policy.h"
#include "testing/policy_harness.h"

namespace cmcp::policy {
namespace {

using testing::FakePolicyHost;
using testing::PageFactory;

TEST(Clock, EvictsUnreferencedHand) {
  FakePolicyHost host(8, 4);
  ClockPolicy policy(host);
  PageFactory pages;
  auto& a = pages.make(1);
  auto& b = pages.make(2);
  policy.on_insert(a);
  policy.on_insert(b);
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &a);
  EXPECT_EQ(extra, 0u);  // nothing referenced: no shootdowns
}

TEST(Clock, ReferencedHandGetsSecondChanceAtShootdownCost) {
  FakePolicyHost host(8, 4);
  ClockPolicy policy(host);
  PageFactory pages;
  auto& a = pages.make(1);
  auto& b = pages.make(2);
  policy.on_insert(a);
  policy.on_insert(b);
  host.set_accessed(1);  // a referenced
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &b);
  EXPECT_EQ(extra, host.shootdown_cost);  // clearing a's bit cost a shootdown
  EXPECT_EQ(host.shootdowns(), 1u);
  EXPECT_EQ(testing::stat_of(policy, "second_chances"), 1u);
}

TEST(Clock, AllReferencedStillYieldsVictim) {
  FakePolicyHost host(8, 4);
  ClockPolicy policy(host);
  PageFactory pages;
  for (UnitIdx u = 0; u < 4; ++u) {
    policy.on_insert(pages.make(u));
    host.set_accessed(u);
  }
  Cycles extra = 0;
  mm::ResidentPage* victim = policy.pick_victim(0, extra);
  ASSERT_NE(victim, nullptr);
  // Every page's bit was cleared once before the second lap chose a victim.
  EXPECT_EQ(host.shootdowns(), 4u);
}

TEST(Lfu, EvictsLeastFrequentlyScannedFirst) {
  LfuPolicy policy;
  EXPECT_TRUE(policy.wants_scanner());
  PageFactory pages;
  auto& rare = pages.make(1);
  auto& frequent = pages.make(2);
  policy.on_insert(rare);
  policy.on_insert(frequent);
  for (int s = 0; s < 3; ++s) policy.on_scan(frequent, true);
  policy.on_scan(rare, true);
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &rare);
  policy.on_evict(rare);
  EXPECT_EQ(policy.pick_victim(0, extra), &frequent);
}

TEST(Lfu, TiesBrokenFifoWithinBucket) {
  LfuPolicy policy;
  PageFactory pages;
  auto& a = pages.make(1);
  auto& b = pages.make(2);
  policy.on_insert(a);
  policy.on_insert(b);
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &a);
}

TEST(Lfu, FrequencySaturates) {
  LfuPolicy policy;
  PageFactory pages;
  auto& pg = pages.make(1);
  policy.on_insert(pg);
  for (int s = 0; s < 300; ++s) policy.on_scan(pg, true);
  EXPECT_EQ(pg.bucket, 255u);
  policy.on_evict(pg);  // must not crash on the saturated bucket
}

TEST(Random, VictimsAreResidentAndCoverTheSet) {
  RandomPolicy policy(/*seed=*/42);
  PageFactory pages;
  std::unordered_set<UnitIdx> resident;
  for (UnitIdx u = 0; u < 16; ++u) {
    policy.on_insert(pages.make(u));
    resident.insert(u);
  }
  std::unordered_set<UnitIdx> victims;
  for (int i = 0; i < 200; ++i) {
    Cycles extra = 0;
    mm::ResidentPage* victim = policy.pick_victim(0, extra);
    ASSERT_NE(victim, nullptr);
    EXPECT_TRUE(resident.contains(victim->unit));
    victims.insert(victim->unit);
  }
  // Uniform choice over 16 pages across 200 draws covers nearly all.
  EXPECT_GE(victims.size(), 14u);
}

TEST(Random, SwapRemoveKeepsIndexConsistent) {
  RandomPolicy policy(7);
  PageFactory pages;
  std::vector<mm::ResidentPage*> resident;
  for (UnitIdx u = 0; u < 8; ++u) {
    resident.push_back(&pages.make(u));
    policy.on_insert(*resident.back());
  }
  // Evict from the middle repeatedly; slots must stay valid.
  for (int i = 0; i < 8; ++i) {
    Cycles extra = 0;
    mm::ResidentPage* victim = policy.pick_victim(0, extra);
    ASSERT_NE(victim, nullptr);
    policy.on_evict(*victim);
    std::erase(resident, victim);
  }
}

TEST(DynamicP, AdjustsPOverWindows) {
  FakePolicyHost host(100, 8);
  DynamicPConfig config;
  config.cmcp.p = 0.5;
  config.step = 0.1;
  config.window_ticks = 2;
  DynamicPCmcpPolicy policy(host, config);
  const double initial = policy.current_p();
  PageFactory pages;
  // Feed eviction activity and ticks; p must move.
  UnitIdx next = 0;
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 10; ++i) {
      auto& pg = pages.make(next++, 1);
      policy.on_insert(pg);
      Cycles extra = 0;
      mm::ResidentPage* victim = policy.pick_victim(0, extra);
      policy.on_evict(*victim);
      pages.registry().erase(*victim);
    }
    policy.on_tick(2 * w);
    policy.on_tick(2 * w + 1);
  }
  EXPECT_GT(testing::stat_of(policy, "adaptations"), 0u);
  EXPECT_NE(policy.current_p(), initial);
}

TEST(DynamicP, StaysWithinBounds) {
  FakePolicyHost host(100, 8);
  DynamicPConfig config;
  config.cmcp.p = 0.9;
  config.step = 0.3;
  config.window_ticks = 1;
  DynamicPCmcpPolicy policy(host, config);
  PageFactory pages;
  UnitIdx next = 0;
  for (int w = 0; w < 50; ++w) {
    auto& pg = pages.make(next++, 1);
    policy.on_insert(pg);
    Cycles extra = 0;
    mm::ResidentPage* victim = policy.pick_victim(0, extra);
    policy.on_evict(*victim);
    pages.registry().erase(*victim);
    policy.on_tick(w);
    EXPECT_GE(policy.current_p(), 0.0);
    EXPECT_LE(policy.current_p(), 1.0);
  }
}

class FactoryTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(FactoryTest, ConstructsWorkingPolicy) {
  FakePolicyHost host(32, 8);
  PolicyParams params;
  params.kind = GetParam();
  auto policy = make_policy(host, params);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), to_string(GetParam()));

  PageFactory pages;
  for (UnitIdx u = 0; u < 4; ++u) policy->on_insert(pages.make(u, 1 + u));
  Cycles extra = 0;
  mm::ResidentPage* victim = policy->pick_victim(0, extra);
  ASSERT_NE(victim, nullptr);
  policy->on_evict(*victim);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FactoryTest,
    ::testing::Values(PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kCmcp,
                      PolicyKind::kClock, PolicyKind::kLfu, PolicyKind::kRandom,
                      PolicyKind::kCmcpDynamicP, PolicyKind::kArc),
    [](const auto& param_info) {
      std::string name(to_string(param_info.param));
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace cmcp::policy
