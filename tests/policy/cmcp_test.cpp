// Unit tests of the CMCP policy structure (paper section 3, Fig. 4).
#include "policy/cmcp.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "testing/policy_harness.h"

namespace cmcp::policy {
namespace {

using testing::FakePolicyHost;
using testing::PageFactory;

CmcpConfig config_with_p(double p) {
  CmcpConfig config;
  config.p = p;
  return config;
}

TEST(Cmcp, PriorityCapacityFollowsP) {
  FakePolicyHost host(100, 8);
  CmcpPolicy policy(host, config_with_p(0.3));
  EXPECT_EQ(policy.max_priority_pages(), 30u);
  policy.set_p(0.0);
  EXPECT_EQ(policy.max_priority_pages(), 0u);
  policy.set_p(1.0);
  EXPECT_EQ(policy.max_priority_pages(), 100u);
}

TEST(Cmcp, StatsVisitorEnumeratesEveryCounter) {
  FakePolicyHost host(10, 8);
  CmcpPolicy policy(host, config_with_p(0.2));
  PageFactory pages;
  policy.on_insert(pages.make(1, 1));
  std::vector<std::string> names;
  policy.stats([&](std::string_view name, std::uint64_t) {
    names.emplace_back(name);
  });
  const std::vector<std::string> expected = {
      "promotions", "displacements", "aged_out", "priority_size", "fifo_size"};
  EXPECT_EQ(names, expected);
  // The key-lookup shim resolves through the same enumeration.
  EXPECT_EQ(testing::stat_of(policy, "priority_size"), policy.priority_size());
  EXPECT_EQ(testing::stat_of(policy, "fifo_size"), policy.fifo_size());
  EXPECT_EQ(testing::stat_of(policy, "no_such_stat"), 0u);
}

TEST(Cmcp, FillsPriorityGroupUntilFull) {
  FakePolicyHost host(10, 8);
  CmcpPolicy policy(host, config_with_p(0.2));  // room for 2
  PageFactory pages;
  policy.on_insert(pages.make(1, 1));
  policy.on_insert(pages.make(2, 1));
  policy.on_insert(pages.make(3, 1));
  EXPECT_EQ(policy.priority_size(), 2u);
  EXPECT_EQ(policy.fifo_size(), 1u);
}

TEST(Cmcp, HigherCountDisplacesLowestPriorityPage) {
  // The insertion rule: "if the ratio of prioritized pages already exceeds p
  // and the number of mapping cores of the new page is larger than that for
  // the lowest priority page..., the lowest priority page is moved to FIFO
  // and the new page is placed into the priority group."
  FakePolicyHost host(10, 8);
  CmcpPolicy policy(host, config_with_p(0.1));  // room for exactly 1
  PageFactory pages;
  auto& low = pages.make(1, 2);
  policy.on_insert(low);
  ASSERT_EQ(policy.priority_size(), 1u);

  auto& high = pages.make(2, 5);
  policy.on_insert(high);
  EXPECT_EQ(policy.priority_size(), 1u);
  EXPECT_EQ(testing::stat_of(policy, "displacements"), 1u);
  // The displaced low page is now the FIFO head.
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &low);
}

TEST(Cmcp, EqualCountDoesNotDisplace) {
  FakePolicyHost host(10, 8);
  CmcpPolicy policy(host, config_with_p(0.1));
  PageFactory pages;
  auto& first = pages.make(1, 3);
  policy.on_insert(first);
  auto& second = pages.make(2, 3);
  policy.on_insert(second);
  EXPECT_EQ(testing::stat_of(policy, "displacements"), 0u);
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &second);  // FIFO head
}

TEST(Cmcp, EvictionPrefersFifoHead) {
  // "the algorithm either takes the first page of the regular FIFO list..."
  FakePolicyHost host(10, 8);
  CmcpPolicy policy(host, config_with_p(0.5));
  PageFactory pages;
  auto& prio = pages.make(1, 6);
  auto& fifo1 = pages.make(2, 1);
  auto& fifo2 = pages.make(3, 1);
  policy.on_insert(prio);  // goes to priority (group not full)
  // Fill the group so the rest lands on FIFO.
  for (UnitIdx u = 10; u < 14; ++u) policy.on_insert(pages.make(u, 6));
  policy.on_insert(fifo1);
  policy.on_insert(fifo2);
  ASSERT_GT(policy.fifo_size(), 0u);
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &fifo1);
  (void)prio;
}

TEST(Cmcp, FallsBackToLowestPriorityWhenFifoEmpty) {
  // "...or if the regular list is empty, the lowest priority page from the
  // prioritized group is removed."
  FakePolicyHost host(10, 8);
  CmcpPolicy policy(host, config_with_p(1.0));
  PageFactory pages;
  auto& two = pages.make(1, 2);
  auto& five = pages.make(2, 5);
  auto& three = pages.make(3, 3);
  policy.on_insert(two);
  policy.on_insert(five);
  policy.on_insert(three);
  ASSERT_EQ(policy.fifo_size(), 0u);
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &two);
  policy.on_evict(two);
  EXPECT_EQ(policy.pick_victim(0, extra), &three);
  policy.on_evict(three);
  EXPECT_EQ(policy.pick_victim(0, extra), &five);
}

TEST(Cmcp, CoreMapGrowthPromotesFifoPage) {
  FakePolicyHost host(10, 8);
  CmcpPolicy policy(host, config_with_p(0.1));
  PageFactory pages;
  auto& shared = pages.make(1, 2);
  policy.on_insert(shared);  // priority (room)
  auto& page = pages.make(2, 1);
  policy.on_insert(page);  // FIFO (group full, count 1 < 2)
  ASSERT_EQ(policy.fifo_size(), 1u);

  page.core_map_count = 4;  // grew past the lowest prioritized page
  policy.on_core_map_grow(page);
  EXPECT_EQ(policy.priority_size(), 1u);
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &shared);  // displaced to FIFO
}

TEST(Cmcp, GrowthWhilePrioritizedRebuckets) {
  FakePolicyHost host(10, 8);
  CmcpPolicy policy(host, config_with_p(1.0));
  PageFactory pages;
  auto& a = pages.make(1, 2);
  auto& b = pages.make(2, 3);
  policy.on_insert(a);
  policy.on_insert(b);
  a.core_map_count = 6;
  policy.on_core_map_grow(a);  // a now outranks b
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &b);
}

TEST(Cmcp, AgingDemotesStalePrioritizedPages) {
  // "we employ a simple aging method, where all prioritized pages slowly
  // fall back to FIFO."
  FakePolicyHost host(10, 8);
  CmcpConfig config = config_with_p(1.0);
  config.age_limit_ticks = 3;
  CmcpPolicy policy(host, config);
  PageFactory pages;
  auto& pg = pages.make(1, 5);
  policy.on_insert(pg);
  ASSERT_EQ(policy.priority_size(), 1u);
  for (int t = 0; t < 3; ++t) policy.on_tick(t);
  EXPECT_EQ(policy.priority_size(), 1u);  // within the limit
  policy.on_tick(3);
  EXPECT_EQ(policy.priority_size(), 0u);
  EXPECT_EQ(policy.fifo_size(), 1u);
  EXPECT_EQ(testing::stat_of(policy, "aged_out"), 1u);
}

TEST(Cmcp, RemapRefreshesAge) {
  FakePolicyHost host(10, 8);
  CmcpConfig config = config_with_p(1.0);
  config.age_limit_ticks = 3;
  CmcpPolicy policy(host, config);
  PageFactory pages;
  auto& pg = pages.make(1, 2);
  policy.on_insert(pg);
  policy.on_tick(0);
  policy.on_tick(1);
  pg.core_map_count = 3;
  policy.on_core_map_grow(pg);  // refresh
  policy.on_tick(2);
  policy.on_tick(3);
  policy.on_tick(4);
  EXPECT_EQ(policy.priority_size(), 1u);  // refreshed at tick 2
  policy.on_tick(5);
  policy.on_tick(6);
  EXPECT_EQ(policy.priority_size(), 0u);
}

TEST(Cmcp, AgingDisabledKeepsPagesPinned) {
  FakePolicyHost host(10, 8);
  CmcpConfig config = config_with_p(1.0);
  config.aging_enabled = false;
  CmcpPolicy policy(host, config);
  PageFactory pages;
  policy.on_insert(pages.make(1, 5));
  for (int t = 0; t < 1000; ++t) policy.on_tick(t);
  EXPECT_EQ(policy.priority_size(), 1u);
}

TEST(Cmcp, NoScannerRequired) {
  // The decisive property: CMCP needs no access-bit sampling at all.
  FakePolicyHost host(10, 8);
  CmcpPolicy policy(host, config_with_p(0.5));
  EXPECT_FALSE(policy.wants_scanner());
  PageFactory pages;
  for (UnitIdx u = 0; u < 10; ++u) policy.on_insert(pages.make(u, 1 + u % 4));
  Cycles extra = 0;
  for (int i = 0; i < 10; ++i) {
    mm::ResidentPage* victim = policy.pick_victim(0, extra);
    ASSERT_NE(victim, nullptr);
    policy.on_evict(*victim);
    pages.registry().erase(*victim);
  }
  EXPECT_EQ(extra, 0u);
  EXPECT_EQ(host.shootdowns(), 0u);
}

TEST(CmcpDeath, InvalidPAborts) {
  FakePolicyHost host(10, 8);
  EXPECT_DEATH(CmcpPolicy(host, config_with_p(1.5)), "p must be");
  CmcpPolicy policy(host, config_with_p(0.5));
  EXPECT_DEATH(policy.set_p(-0.1), "p must be");
}

}  // namespace
}  // namespace cmcp::policy
