// The deprecated single-key ReplacementPolicy::stat() shim stays available
// for downstream code during the deprecation window; this is the one test
// that still exercises it (everything else goes through stats(visitor) /
// testing::stat_of). Remove together with the shim.
#include <gtest/gtest.h>

#include "policy/cmcp.h"
#include "testing/policy_harness.h"

namespace cmcp::policy {
namespace {

using testing::FakePolicyHost;
using testing::PageFactory;

// The shim itself is what's under test here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(PolicyStatShim, MatchesStatsVisitorAndDefaultsUnknownKeysToZero) {
  FakePolicyHost host(/*capacity=*/8, /*cores=*/4);
  CmcpPolicy policy(host, CmcpConfig{});
  PageFactory pages;
  policy.on_insert(pages.make(0, /*core_map_count=*/1));
  policy.on_insert(pages.make(1, /*core_map_count=*/2));

  EXPECT_EQ(policy.stat("fifo_size"), testing::stat_of(policy, "fifo_size"));
  EXPECT_EQ(policy.stat("priority_size"),
            testing::stat_of(policy, "priority_size"));
  EXPECT_EQ(policy.stat("definitely_not_a_stat"), 0u);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace cmcp::policy
