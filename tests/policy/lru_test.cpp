#include "policy/lru_approx.h"

#include <gtest/gtest.h>

#include "testing/policy_harness.h"

namespace cmcp::policy {
namespace {

using testing::PageFactory;

TEST(LruApprox, WantsScanner) {
  LruApproxPolicy policy;
  EXPECT_TRUE(policy.wants_scanner());
}

TEST(LruApprox, NewPagesStartInactive) {
  LruApproxPolicy policy;
  PageFactory pages;
  policy.on_insert(pages.make(1));
  policy.on_insert(pages.make(2));
  EXPECT_EQ(policy.inactive_size(), 2u);
  EXPECT_EQ(policy.active_size(), 0u);
}

TEST(LruApprox, PromotionRequiresTwoReferencedScans) {
  // Linux's two-touch rule: the first observed reference is just the fault
  // that brought the page in.
  LruApproxPolicy policy;
  PageFactory pages;
  auto& pg = pages.make(1);
  policy.on_insert(pg);
  policy.on_scan(pg, true);
  EXPECT_EQ(policy.active_size(), 0u);
  policy.on_scan(pg, true);
  EXPECT_EQ(policy.active_size(), 1u);
  EXPECT_EQ(policy.inactive_size(), 0u);
  EXPECT_EQ(testing::stat_of(policy, "promotions"), 1u);
}

TEST(LruApprox, UnreferencedInactivePagesAgeInPlace) {
  LruApproxPolicy policy;
  PageFactory pages;
  auto& pg = pages.make(1);
  policy.on_insert(pg);
  for (int i = 0; i < 5; ++i) policy.on_scan(pg, false);
  EXPECT_EQ(policy.inactive_size(), 1u);
  EXPECT_EQ(policy.active_size(), 0u);
}

TEST(LruApprox, DemotionRequiresTwoQuietScans) {
  LruApproxPolicy policy;
  PageFactory pages;
  auto& pg = pages.make(1);
  policy.on_insert(pg);
  policy.on_scan(pg, true);
  policy.on_scan(pg, true);  // promoted
  ASSERT_EQ(policy.active_size(), 1u);
  policy.on_scan(pg, false);  // hysteresis: stays active
  EXPECT_EQ(policy.active_size(), 1u);
  policy.on_scan(pg, false);  // second quiet window: demoted
  EXPECT_EQ(policy.active_size(), 0u);
  EXPECT_EQ(policy.inactive_size(), 1u);
  EXPECT_EQ(testing::stat_of(policy, "demotions"), 1u);
}

TEST(LruApprox, VictimsComeFromInactiveFirst) {
  LruApproxPolicy policy;
  PageFactory pages;
  auto& hot = pages.make(1);
  auto& cold = pages.make(2);
  policy.on_insert(hot);
  policy.on_insert(cold);
  // hot gets promoted, cold stays inactive.
  policy.on_scan(hot, true);
  policy.on_scan(cold, false);
  policy.on_scan(hot, true);
  policy.on_scan(cold, false);
  ASSERT_EQ(policy.active_size(), 1u);

  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &cold);
}

TEST(LruApprox, FallsBackToActiveWhenInactiveEmpty) {
  LruApproxPolicy policy;
  PageFactory pages;
  auto& pg = pages.make(1);
  policy.on_insert(pg);
  policy.on_scan(pg, true);
  policy.on_scan(pg, true);  // promoted; inactive now empty
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &pg);
}

TEST(LruApprox, ActiveRotationKeepsHottestLast) {
  LruApproxPolicy policy;
  PageFactory pages;
  auto& a = pages.make(1);
  auto& b = pages.make(2);
  for (auto* pg : {&a, &b}) {
    policy.on_insert(*pg);
    policy.on_scan(*pg, true);
    policy.on_scan(*pg, true);
  }
  ASSERT_EQ(policy.active_size(), 2u);
  // Only `a` referenced now: it rotates behind b... then with inactive
  // empty the victim should be the least recently referenced = b after one
  // more referenced scan of a.
  policy.on_scan(a, true);
  policy.on_scan(b, false);  // hysteresis strip
  policy.on_scan(b, false);  // demoted to inactive
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &b);
}

TEST(LruApprox, EvictFromEitherList) {
  LruApproxPolicy policy;
  PageFactory pages;
  auto& act = pages.make(1);
  auto& inact = pages.make(2);
  policy.on_insert(act);
  policy.on_insert(inact);
  policy.on_scan(act, true);
  policy.on_scan(act, true);
  policy.on_evict(act);
  policy.on_evict(inact);
  EXPECT_EQ(policy.active_size(), 0u);
  EXPECT_EQ(policy.inactive_size(), 0u);
}

TEST(LruApprox, ProtectsHotSetOnMixedTrace) {
  // Behavioural: with a hot set re-referenced every round and a cold
  // stream, LRU should evict the stream and keep the hot set.
  LruApproxPolicy policy;
  PageFactory pages;
  constexpr UnitIdx kHot = 4;
  std::vector<mm::ResidentPage*> hot;
  for (UnitIdx u = 0; u < kHot; ++u) {
    hot.push_back(&pages.make(u));
    policy.on_insert(*hot.back());
  }
  // Promote the hot set.
  for (int s = 0; s < 2; ++s)
    for (auto* pg : hot) policy.on_scan(*pg, true);
  ASSERT_EQ(policy.active_size(), kHot);

  // Stream 100 cold pages through with capacity kHot + 2.
  std::vector<mm::ResidentPage*> resident;
  for (UnitIdx u = 100; u < 200; ++u) {
    auto& pg = pages.make(u);
    policy.on_insert(pg);
    resident.push_back(&pg);
    if (resident.size() > 2) {
      Cycles extra = 0;
      mm::ResidentPage* victim = policy.pick_victim(0, extra);
      // The hot set must never be chosen while cold pages exist.
      for (auto* h : hot) EXPECT_NE(victim, h);
      policy.on_evict(*victim);
      std::erase(resident, victim);
      pages.registry().erase(*victim);
    }
  }
}

}  // namespace
}  // namespace cmcp::policy
