#include "policy/fifo.h"

#include <gtest/gtest.h>

#include "testing/policy_harness.h"

namespace cmcp::policy {
namespace {

using testing::PageFactory;

TEST(Fifo, EvictsInInsertionOrder) {
  FifoPolicy policy;
  PageFactory pages;
  auto& a = pages.make(1);
  auto& b = pages.make(2);
  auto& c = pages.make(3);
  policy.on_insert(a);
  policy.on_insert(b);
  policy.on_insert(c);

  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &a);
  policy.on_evict(a);
  EXPECT_EQ(policy.pick_victim(0, extra), &b);
  policy.on_evict(b);
  EXPECT_EQ(policy.pick_victim(0, extra), &c);
  EXPECT_EQ(extra, 0u);  // FIFO decisions are free
}

TEST(Fifo, PickDoesNotRemove) {
  FifoPolicy policy;
  PageFactory pages;
  auto& a = pages.make(1);
  policy.on_insert(a);
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &a);
  EXPECT_EQ(policy.pick_victim(0, extra), &a);  // idempotent until on_evict
  EXPECT_EQ(policy.queued(), 1u);
}

TEST(Fifo, EvictFromMiddleKeepsOrder) {
  FifoPolicy policy;
  PageFactory pages;
  auto& a = pages.make(1);
  auto& b = pages.make(2);
  auto& c = pages.make(3);
  policy.on_insert(a);
  policy.on_insert(b);
  policy.on_insert(c);
  policy.on_evict(b);  // e.g. explicit unmap of a mid-queue page
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &a);
  policy.on_evict(a);
  EXPECT_EQ(policy.pick_victim(0, extra), &c);
}

TEST(Fifo, NoScannerNoTicks) {
  FifoPolicy policy;
  EXPECT_FALSE(policy.wants_scanner());
  policy.on_tick(123);  // must be a harmless no-op
  EXPECT_EQ(policy.name(), "FIFO");
}

TEST(Fifo, CoreMapGrowthIsIgnored) {
  FifoPolicy policy;
  PageFactory pages;
  auto& a = pages.make(1);
  auto& b = pages.make(2);
  policy.on_insert(a);
  policy.on_insert(b);
  a.core_map_count = 7;
  policy.on_core_map_grow(a);  // FIFO does not reorder on sharing
  Cycles extra = 0;
  EXPECT_EQ(policy.pick_victim(0, extra), &a);
}

}  // namespace
}  // namespace cmcp::policy
