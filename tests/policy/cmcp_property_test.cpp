// Property tests for CMCP under randomized traces.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "policy/cmcp.h"
#include "policy/fifo.h"
#include "testing/policy_harness.h"

namespace cmcp::policy {
namespace {

using testing::FakePolicyHost;
using testing::PageFactory;

struct TraceParams {
  double p;
  std::uint64_t seed;
};

class CmcpTraceTest : public ::testing::TestWithParam<TraceParams> {};

// Invariants under arbitrary insert / grow / evict / tick interleavings:
// group sizes consistent, priority never exceeds its cap, pick_victim always
// succeeds while pages are resident.
TEST_P(CmcpTraceTest, StructuralInvariantsUnderRandomTrace) {
  constexpr std::uint64_t kCapacity = 64;
  FakePolicyHost host(kCapacity, 16);
  CmcpConfig config;
  config.p = GetParam().p;
  config.age_limit_ticks = 5;
  CmcpPolicy policy(host, config);
  PageFactory pages;
  Rng rng(GetParam().seed);

  std::unordered_map<UnitIdx, mm::ResidentPage*> resident;
  UnitIdx next_unit = 0;
  std::uint64_t ticks = 0;

  for (int step = 0; step < 20000; ++step) {
    const auto action = rng.next_below(100);
    if (action < 45) {  // insert (with eviction when at capacity)
      if (resident.size() >= kCapacity) {
        Cycles extra = 0;
        mm::ResidentPage* victim = policy.pick_victim(0, extra);
        ASSERT_NE(victim, nullptr);
        policy.on_evict(*victim);
        resident.erase(victim->unit);
        pages.registry().erase(*victim);
      }
      auto& pg = pages.make(next_unit++, 1 + rng.next_below(16));
      policy.on_insert(pg);
      resident.emplace(pg.unit, &pg);
    } else if (action < 75) {  // core-map growth of a random resident page
      if (!resident.empty()) {
        auto it = resident.begin();
        std::advance(it, rng.next_below(resident.size()) % resident.size());
        if (it->second->core_map_count < 16) {
          ++it->second->core_map_count;
          policy.on_core_map_grow(*it->second);
        }
      }
    } else if (action < 90) {  // explicit eviction
      if (!resident.empty()) {
        Cycles extra = 0;
        mm::ResidentPage* victim = policy.pick_victim(0, extra);
        ASSERT_NE(victim, nullptr);
        ASSERT_TRUE(resident.contains(victim->unit));
        policy.on_evict(*victim);
        resident.erase(victim->unit);
        pages.registry().erase(*victim);
      }
    } else {  // aging tick
      policy.on_tick(ticks++);
    }

    // Invariants.
    ASSERT_EQ(policy.priority_size() + policy.fifo_size(), resident.size());
    ASSERT_LE(policy.priority_size(), policy.max_priority_pages());
  }
}

INSTANTIATE_TEST_SUITE_P(
    PAndSeed, CmcpTraceTest,
    ::testing::Values(TraceParams{0.0, 1}, TraceParams{0.0, 2},
                      TraceParams{0.1, 1}, TraceParams{0.3, 2},
                      TraceParams{0.5, 3}, TraceParams{0.7, 4},
                      TraceParams{1.0, 5}, TraceParams{1.0, 6}));

// p = 0 must degenerate to FIFO exactly (paper: "With p converging to 0, the
// algorithm falls back to the simple FIFO replacement").
TEST(CmcpEquivalence, PZeroMatchesFifoVictimForVictim) {
  FakePolicyHost host(32, 8);
  CmcpConfig config;
  config.p = 0.0;
  CmcpPolicy cmcp(host, config);
  FifoPolicy fifo;
  PageFactory cmcp_pages, fifo_pages;
  Rng rng(77);

  std::unordered_set<UnitIdx> resident;
  UnitIdx next_unit = 0;
  for (int step = 0; step < 5000; ++step) {
    if (resident.size() >= 32 || (rng.next() & 1 && !resident.empty())) {
      Cycles extra = 0;
      mm::ResidentPage* cv = cmcp.pick_victim(0, extra);
      mm::ResidentPage* fv = fifo.pick_victim(0, extra);
      ASSERT_NE(cv, nullptr);
      ASSERT_NE(fv, nullptr);
      ASSERT_EQ(cv->unit, fv->unit) << "diverged at step " << step;
      cmcp.on_evict(*cv);
      fifo.on_evict(*fv);
      resident.erase(cv->unit);
      cmcp_pages.registry().erase(*cv);
      fifo_pages.registry().erase(*fv);
    } else {
      const unsigned count = 1 + rng.next_below(8);
      auto& a = cmcp_pages.make(next_unit, count);
      auto& b = fifo_pages.make(next_unit, count);
      ++next_unit;
      cmcp.on_insert(a);
      fifo.on_insert(b);
      // Random growth events must not perturb the p=0 equivalence.
      if (rng.next() % 4 == 0) {
        ++a.core_map_count;
        ++b.core_map_count;
        cmcp.on_core_map_grow(a);
        fifo.on_core_map_grow(b);
      }
      resident.insert(a.unit);
    }
  }
}

// With p = 1 and distinct counts, eviction order (FIFO empty) is exactly
// ascending core-map count.
TEST(CmcpOrdering, FullPriorityEvictsAscendingByCount) {
  FakePolicyHost host(16, 16);
  CmcpConfig config;
  config.p = 1.0;
  config.aging_enabled = false;
  CmcpPolicy policy(host, config);
  PageFactory pages;
  // Insert counts in scrambled order.
  const unsigned counts[] = {7, 2, 11, 4, 15, 1, 9, 3};
  std::vector<mm::ResidentPage*> inserted;
  for (std::size_t i = 0; i < std::size(counts); ++i) {
    inserted.push_back(&pages.make(i, counts[i]));
    policy.on_insert(*inserted.back());
  }
  unsigned prev = 0;
  for (std::size_t i = 0; i < std::size(counts); ++i) {
    Cycles extra = 0;
    mm::ResidentPage* victim = policy.pick_victim(0, extra);
    ASSERT_NE(victim, nullptr);
    EXPECT_GE(victim->core_map_count, prev);
    prev = victim->core_map_count;
    policy.on_evict(*victim);
  }
}

// CMCP protects shared-hot pages on a CG-like trace: shared pages recur
// every round; the cold stream cycles. CMCP must fault less than FIFO.
TEST(CmcpBehaviour, BeatsFifoOnRecurringSharedPages) {
  constexpr std::uint64_t kCapacity = 128;
  constexpr UnitIdx kShared = 48;    // count 4, touched every round
  constexpr UnitIdx kStream = 512;   // count 1, cyclic
  std::vector<UnitIdx> trace;
  for (int round = 0; round < 20; ++round) {
    for (UnitIdx u = 0; u < kShared; ++u) trace.push_back(u);
    for (UnitIdx u = 0; u < kStream; ++u) trace.push_back(1000 + u);
  }

  const auto run = [&](ReplacementPolicy& policy, PageFactory& pages) {
    std::unordered_map<UnitIdx, mm::ResidentPage*> resident;
    std::uint64_t faults = 0;
    std::uint64_t ops = 0;
    for (const UnitIdx unit : trace) {
      if (++ops % 64 == 0) policy.on_tick(ops);
      if (resident.contains(unit)) continue;
      ++faults;
      if (resident.size() >= kCapacity) {
        Cycles extra = 0;
        mm::ResidentPage* victim = policy.pick_victim(0, extra);
        policy.on_evict(*victim);
        resident.erase(victim->unit);
        pages.registry().erase(*victim);
      }
      auto& pg = pages.make(unit, unit < 1000 ? 4 : 1);
      policy.on_insert(pg);
      resident.emplace(unit, &pg);
    }
    return faults;
  };

  FakePolicyHost host(kCapacity, 8);
  CmcpConfig config;
  config.p = 0.5;
  CmcpPolicy cmcp(host, config);
  FifoPolicy fifo;
  PageFactory a, b;
  const std::uint64_t cmcp_faults = run(cmcp, a);
  const std::uint64_t fifo_faults = run(fifo, b);
  // FIFO refaults the shared set every round; CMCP pins it.
  EXPECT_LT(cmcp_faults, fifo_faults - 15 * kShared / 2);
}

}  // namespace
}  // namespace cmcp::policy
