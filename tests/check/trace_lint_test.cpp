// Trace linter tests: clean simulator traces lint clean (across policies,
// page tables, scanners and write-backs), and surgically corrupted streams
// fire exactly the intended rule.
#include "check/trace_lint.h"

#include <gtest/gtest.h>

#include <cctype>
#include <initializer_list>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/multi_tenant.h"
#include "core/simulation.h"
#include "mm/frame_partition.h"
#include "sim/trace.h"
#include "workloads/multi_tenant.h"
#include "workloads/synthetic.h"

#ifndef CMCP_TEST_DATA_DIR
#define CMCP_TEST_DATA_DIR "tests/data"
#endif

namespace cmcp::check {
namespace {

/// Minimal scripted workload (mirrors the engine tests').
class ScriptedWorkload final : public wl::Workload {
 public:
  ScriptedWorkload(CoreId cores, std::uint64_t pages,
                   std::vector<std::vector<wl::Op>> scripts)
      : cores_(cores), pages_(pages) {
    for (auto& ops : scripts)
      scripts_.push_back(
          std::make_shared<const std::vector<wl::Op>>(std::move(ops)));
  }

  std::string_view name() const override { return "scripted"; }
  CoreId num_cores() const override { return cores_; }
  std::uint64_t footprint_base_pages() const override { return pages_; }
  std::unique_ptr<wl::AccessStream> make_stream(CoreId core) const override {
    return std::make_unique<wl::VectorStream>(scripts_[core]);
  }

 private:
  CoreId cores_;
  std::uint64_t pages_;
  std::vector<std::shared_ptr<const std::vector<wl::Op>>> scripts_;
};

/// Run a constrained two-core workload and return its JSONL trace.
/// `scan_period` != 0 shrinks the scanner tick so the short scripted run
/// still produces scan-pass events.
std::string traced_run(PolicyKind policy, double fraction, bool write = true,
                       Cycles scan_period = 0) {
  sim::trace::EventSink sink;
  std::vector<wl::Op> script = {wl::Op::access(0, write, 32),
                                wl::Op::barrier(),
                                wl::Op::access(0, false, 32)};
  ScriptedWorkload w(2, 32, {script, script});
  core::SimulationConfig config;
  config.machine.num_cores = 2;
  config.policy.kind = policy;
  config.memory_fraction = fraction;
  if (scan_period != 0) config.machine.cost.scan_period = scan_period;
  config.trace = &sink;
  core::Simulation sim(config, w);
  const auto result = sim.run();
  std::ostringstream os;
  sim::trace::export_jsonl(sink, {{"policy", std::string(to_string(policy))}},
                           {{"evictions", result.app_total.evictions}}, os);
  return os.str();
}

LintResult lint_string(const std::string& text) {
  std::istringstream in(text);
  return lint_jsonl_trace(in);
}

std::vector<std::string> rules_of(const LintResult& result) {
  std::vector<std::string> rules;
  for (const LintIssue& issue : result.issues) rules.push_back(issue.rule);
  return rules;
}

TEST(TraceLint, CleanCmcpTraceLintsClean) {
  const LintResult result = lint_string(traced_run(PolicyKind::kCmcp, 0.5));
  EXPECT_TRUE(result.ok()) << result.issues.size() << " issues, first: "
                           << result.issues[0].rule << ": "
                           << result.issues[0].message;
  EXPECT_GT(result.events, 0u);
}

TEST(TraceLint, CleanLruScannerTraceLintsClean) {
  // LRU runs the access-bit scanner: scan passes and batched shootdowns.
  const LintResult result = lint_string(traced_run(PolicyKind::kLru, 0.5));
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.issues[0].message);
}

TEST(TraceLint, CleanUnconstrainedTraceLintsClean) {
  const LintResult result =
      lint_string(traced_run(PolicyKind::kFifo, 1.0, /*write=*/false));
  EXPECT_TRUE(result.ok());
}

TEST(TraceLint, EmptyInputIsClean) {
  const LintResult result = lint_string("");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.events, 0u);
}

// --- string-surgery corruptions --------------------------------------------

/// Delete the first line matching `needle` (returns false if absent).
bool drop_first_line(std::string& text, std::string_view needle) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string_view line(text.data() + pos, end - pos);
    if (line.find(needle) != std::string_view::npos) {
      text.erase(pos, end - pos + 1);
      return true;
    }
    pos = end + 1;
  }
  return false;
}

/// Find the first line containing every needle and return a copy of it.
std::string first_line(const std::string& text,
                       std::initializer_list<std::string_view> needles) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find('\n', pos);
    const std::string line = text.substr(pos, end - pos);
    bool all = true;
    for (const std::string_view needle : needles)
      if (line.find(needle) == std::string::npos) all = false;
    if (all) return line;
    pos = end + 1;
  }
  return {};
}

std::string first_line(const std::string& text, std::string_view needle) {
  return first_line(text, {needle});
}

bool contains(const std::vector<std::string>& rules, std::string_view rule) {
  for (const std::string& r : rules)
    if (r == rule) return true;
  return false;
}

TEST(TraceLint, DroppedShootdownBeforeSharedEvictionIsCaught) {
  std::string text = traced_run(PolicyKind::kCmcp, 0.5);
  // At least one eviction must have torn down a unit both cores mapped.
  ASSERT_FALSE(
      first_line(text, {"\"kind\":\"eviction\"", "\"targets\":2"}).empty())
      << "no shared eviction in the trace";
  // Erase every shootdown record — the "no eviction without prior
  // invalidation of all mapping cores" evidence is gone.
  while (drop_first_line(text, "\"kind\":\"shootdown\"")) {
  }
  const LintResult result = lint_string(text);
  const auto rules = rules_of(result);
  EXPECT_TRUE(contains(rules, "eviction-without-shootdown"));
  // The by_kind footer no longer matches either.
  EXPECT_TRUE(contains(rules, "summary-count-mismatch"));
}

TEST(TraceLint, DuplicatedEvictionIsDoubleEvict) {
  std::string text = traced_run(PolicyKind::kCmcp, 0.5);
  const std::string eviction = first_line(text, "\"kind\":\"eviction\"");
  ASSERT_FALSE(eviction.empty());
  // Append the same eviction right after itself.
  const std::size_t pos = text.find(eviction);
  text.insert(pos + eviction.size() + 1, eviction + "\n");
  const LintResult result = lint_string(text);
  const auto rules = rules_of(result);
  EXPECT_TRUE(contains(rules, "double-evict")) << "rules: " << rules.size();
  // The duplicate also lacks its own victim_pick.
  EXPECT_TRUE(contains(rules, "eviction-without-pick"));
}

TEST(TraceLint, DroppedFetchIsMajorFaultWithoutTransfer) {
  std::string text = traced_run(PolicyKind::kFifo, 0.5);
  ASSERT_TRUE(drop_first_line(text, "\"kind\":\"pcie_transfer\""));
  const LintResult result = lint_string(text);
  EXPECT_TRUE(contains(rules_of(result), "major-fault-without-transfer"));
}

TEST(TraceLint, DroppedVictimPickIsEvictionWithoutPick) {
  std::string text = traced_run(PolicyKind::kCmcp, 0.5);
  ASSERT_TRUE(drop_first_line(text, "\"kind\":\"victim_pick\""));
  const LintResult result = lint_string(text);
  EXPECT_TRUE(contains(rules_of(result), "eviction-without-pick"));
}

TEST(TraceLint, CorruptedDirtyFlagIsWritebackMismatch) {
  std::string text = traced_run(PolicyKind::kCmcp, 0.5, /*write=*/false);
  // Read-only workload: every eviction is clean. Claim one was dirty.
  const std::string eviction = first_line(text, "\"kind\":\"eviction\"");
  ASSERT_FALSE(eviction.empty());
  std::string dirty = eviction;
  const std::size_t pos = dirty.find("\"dirty\":0");
  ASSERT_NE(pos, std::string::npos);
  dirty.replace(pos, 9, "\"dirty\":1");
  text.replace(text.find(eviction), eviction.size(), dirty);
  const LintResult result = lint_string(text);
  EXPECT_TRUE(contains(rules_of(result), "writeback-mismatch"));
}

TEST(TraceLint, OutOfOrderFaultIsCoreTimeRegression) {
  std::string text = traced_run(PolicyKind::kCmcp, 0.5);
  const std::string fault = first_line(text, "\"kind\":\"major_fault\"");
  ASSERT_FALSE(fault.empty());
  // Re-emit the stream's first major fault just before the summary: its
  // timestamp is now far below that core's per-(asid, core) watermark, the
  // signature of an exporter (or engine) merging events out of
  // virtual-time order.
  const std::size_t summary_pos = text.find("{\"type\":\"summary\"");
  ASSERT_NE(summary_pos, std::string::npos);
  text.insert(summary_pos, fault + "\n");
  EXPECT_TRUE(contains(rules_of(lint_string(text)), "core-time-regression"));
}

TEST(TraceLint, OutOfOrderScanPassIsCoreTimeRegression) {
  // Scanner passes are in the monotonicity watermark too (they are stamped
  // with the scanner pseudo-core's tick time).
  std::string text =
      traced_run(PolicyKind::kLru, 0.5, /*write=*/true, /*scan_period=*/2000);
  std::string scan = first_line(text, "\"kind\":\"scan_pass\"");
  ASSERT_FALSE(scan.empty()) << "no scanner pass in the LRU trace";
  const std::size_t ts_pos = scan.find("\"ts\":");
  ASSERT_NE(ts_pos, std::string::npos);
  std::size_t digits = ts_pos + 5;
  while (digits < scan.size() &&
         std::isdigit(static_cast<unsigned char>(scan[digits])) != 0)
    ++digits;
  scan.replace(ts_pos, digits - ts_pos, "\"ts\":0");
  const std::size_t summary_pos = text.find("{\"type\":\"summary\"");
  ASSERT_NE(summary_pos, std::string::npos);
  text.insert(summary_pos, scan + "\n");
  EXPECT_TRUE(contains(rules_of(lint_string(text)), "core-time-regression"));
}

TEST(TraceLint, MissingMetaAndSummaryAreReported) {
  std::string text = traced_run(PolicyKind::kFifo, 1.0, false);
  ASSERT_TRUE(drop_first_line(text, "\"type\":\"meta\""));
  ASSERT_TRUE(drop_first_line(text, "\"type\":\"summary\""));
  const LintResult result = lint_string(text);
  const auto rules = rules_of(result);
  EXPECT_TRUE(contains(rules, "missing-meta"));
  EXPECT_TRUE(contains(rules, "missing-summary"));
}

TEST(TraceLint, GarbageLineIsParseError) {
  std::string text = traced_run(PolicyKind::kFifo, 1.0, false);
  text.insert(text.find('\n') + 1, "this is not JSON\n");
  const LintResult result = lint_string(text);
  EXPECT_TRUE(contains(rules_of(result), "parse-error"));
}

TEST(TraceLint, CheckedInCorruptFixtureFails) {
  // The repo ships a corrupted trace (tests/data/) so the linter's failure
  // mode itself is pinned: CI runs trace_lint against it and expects a
  // pointed diagnostic, not a crash or a pass.
  const LintResult result = lint_trace_file(
      std::string(CMCP_TEST_DATA_DIR) + "/corrupt_eviction_trace.jsonl");
  ASSERT_FALSE(result.ok());
  const auto rules = rules_of(result);
  EXPECT_TRUE(contains(rules, "eviction-without-shootdown"));
  EXPECT_TRUE(contains(rules, "double-evict"));
  for (const LintIssue& issue : result.issues) EXPECT_GT(issue.line, 0u);
}

TEST(TraceLint, MissingFileIsIoError) {
  const LintResult result = lint_trace_file("/nonexistent/trace.jsonl");
  ASSERT_EQ(result.issues.size(), 1u);
  EXPECT_EQ(result.issues[0].rule, "io-error");
}

// --- multi-tenant traces ----------------------------------------------------

/// Two scripted 2-core tenants contending under proportional share; returns
/// the JSONL trace (meta declares "spaces":2, every event carries an asid).
std::string traced_multi_run() {
  sim::trace::EventSink sink;
  std::vector<wl::Op> script = {wl::Op::access(0, true, 24),
                                wl::Op::barrier(),
                                wl::Op::access(0, false, 24)};
  wl::MultiTenantSpec spec;
  spec.add(std::make_unique<ScriptedWorkload>(
      2, 24, std::vector<std::vector<wl::Op>>{script, script}));
  spec.add(std::make_unique<ScriptedWorkload>(
      2, 24, std::vector<std::vector<wl::Op>>{script, script}));
  core::MultiTenantConfig config;
  config.partition = mm::PartitionKind::kProportionalShare;
  config.memory_fraction = 0.5;
  config.trace = &sink;
  std::vector<core::TenantRunConfig> tenants(2);
  tenants[0].policy.kind = PolicyKind::kCmcp;
  tenants[1].policy.kind = PolicyKind::kCmcp;
  const auto result = core::run_multi_tenant(config, spec, tenants);
  std::ostringstream os;
  sim::trace::export_jsonl(sink, {{"mode", "multi-tenant"}},
                           {{"makespan", result.makespan}}, os);
  return os.str();
}

TEST(TraceLint, CleanMultiTenantTraceLintsClean) {
  // End-to-end: the asid-tagging convention of the whole fault/eviction/
  // shootdown pipeline must form a legal history under (asid, unit) keying —
  // including cross-space QoS evictions, where the initiating core belongs
  // to one space and the victim unit to another.
  const std::string text = traced_multi_run();
  EXPECT_NE(text.find("\"spaces\":2"), std::string::npos);
  EXPECT_NE(text.find("\"asid\":1"), std::string::npos);
  const LintResult result = lint_string(text);
  EXPECT_TRUE(result.ok()) << result.issues.size() << " issues, first: "
                           << (result.ok() ? std::string()
                                           : result.issues[0].rule + ": " +
                                                 result.issues[0].message);
  EXPECT_GT(result.events, 0u);
}

TEST(TraceLint, StrippedEvictionAsidIsCaught) {
  std::string text = traced_multi_run();
  std::string eviction = first_line(text, "\"kind\":\"eviction\"");
  ASSERT_FALSE(eviction.empty());
  std::string stripped = eviction;
  const std::size_t pos = stripped.find(",\"asid\":");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t end = stripped.find('}', pos);
  stripped.erase(pos, end - pos);
  text.replace(text.find(eviction), eviction.size(), stripped);
  EXPECT_TRUE(
      contains(rules_of(lint_string(text)), "eviction-missing-asid"));
}

TEST(TraceLint, CrossAsidFillIsCaught) {
  std::string text = traced_multi_run();
  // Claim a tenant-1 fault belongs to tenant 0: the core's space binding
  // (learned from its first fault) no longer matches.
  const std::string fault =
      first_line(text, {"\"kind\":\"minor_fault\"", "\"asid\":1"});
  ASSERT_FALSE(fault.empty());
  std::string flipped = fault;
  flipped.replace(flipped.find("\"asid\":1"), 8, "\"asid\":0");
  text.replace(text.find(fault), fault.size(), flipped);
  EXPECT_TRUE(contains(rules_of(lint_string(text)), "cross-asid-fill"));
}

TEST(TraceLint, OutOfRangeAsidIsCaught) {
  std::string text = traced_multi_run();
  const std::string fault =
      first_line(text, {"\"kind\":\"major_fault\"", "\"asid\":0"});
  ASSERT_FALSE(fault.empty());
  std::string flipped = fault;
  flipped.replace(flipped.find("\"asid\":0"), 8, "\"asid\":7");
  text.replace(text.find(fault), fault.size(), flipped);
  EXPECT_TRUE(contains(rules_of(lint_string(text)), "asid-out-of-range"));
}

TEST(TraceLint, SingleTenantTraceCarriesNoAsid) {
  // The single-tenant exporter must stay byte-compatible with schema 1:
  // no "spaces" in the meta, no asid on any event.
  const std::string text = traced_run(PolicyKind::kCmcp, 0.5);
  EXPECT_EQ(text.find("\"spaces\":"), std::string::npos);
  EXPECT_EQ(text.find("\"asid\":"), std::string::npos);
}

TEST(TraceLint, CheckedInCorruptMultiTenantFixtureFails) {
  const LintResult result = lint_trace_file(
      std::string(CMCP_TEST_DATA_DIR) + "/corrupt_multi_tenant_trace.jsonl");
  ASSERT_FALSE(result.ok());
  const auto rules = rules_of(result);
  EXPECT_TRUE(contains(rules, "eviction-missing-asid"));
  EXPECT_TRUE(contains(rules, "cross-asid-fill"));
  EXPECT_TRUE(contains(rules, "asid-out-of-range"));
  for (const LintIssue& issue : result.issues) EXPECT_GT(issue.line, 0u);
}

// --- fault-injected traces --------------------------------------------------

/// traced_run with a FaultPlan attached; the meta header carries the
/// fault_max_retries the give-up rule checks against.
std::string traced_fault_run(const std::string& spec) {
  sim::trace::EventSink sink;
  std::vector<wl::Op> script = {wl::Op::access(0, true, 32),
                                wl::Op::barrier(),
                                wl::Op::access(0, false, 32)};
  ScriptedWorkload w(2, 32, {script, script});
  core::SimulationConfig config;
  config.machine.num_cores = 2;
  config.policy.kind = PolicyKind::kCmcp;
  config.memory_fraction = 0.5;
  config.trace = &sink;
  EXPECT_TRUE(sim::FaultPlanConfig::parse(spec, &config.faults));
  core::Simulation sim(config, w);
  const auto result = sim.run();
  std::ostringstream os;
  sim::trace::export_jsonl(
      sink,
      {{"faults", config.faults.to_spec()},
       {"fault_max_retries", std::to_string(config.faults.max_retries)}},
      {{"evictions", result.app_total.evictions}}, os);
  return os.str();
}

TEST(TraceLint, CleanFaultTraceLintsClean) {
  // A heavy mix (transient + sticky PCIe, ECC poison): every injected
  // failure must pair with its retries/give-ups and every quarantine must
  // be final, or the simulator's own recovery emission is broken.
  const std::string text =
      traced_fault_run("seed=7,pcie=0.2,sticky=0.05,poison=2");
  EXPECT_NE(text.find("\"kind\":\"fault_inject\""), std::string::npos);
  const LintResult result = lint_string(text);
  EXPECT_TRUE(result.ok()) << result.issues.size() << " issues, first: "
                           << (result.ok() ? std::string()
                                           : result.issues[0].rule + ": " +
                                                 result.issues[0].message);
}

TEST(TraceLint, DroppedInjectIsRetryWithoutFailure) {
  std::string text = traced_fault_run("seed=7,pcie=0.3");
  ASSERT_TRUE(drop_first_line(text, "\"kind\":\"fault_inject\""));
  const auto rules = rules_of(lint_string(text));
  EXPECT_TRUE(contains(rules, "retry-without-failure"));
}

TEST(TraceLint, EarlyGiveUpIsCaught) {
  // Shrink a sticky give-up's attempt count below the declared budget.
  std::string text = traced_fault_run("seed=11,sticky=0.2");
  const std::string give_up = first_line(text, "\"kind\":\"fault_give_up\"");
  ASSERT_FALSE(give_up.empty());
  std::string early = give_up;
  const std::size_t pos = early.find("\"attempts\":6");
  ASSERT_NE(pos, std::string::npos);
  early.replace(pos, 12, "\"attempts\":2");
  text.replace(text.find(give_up), give_up.size(), early);
  EXPECT_TRUE(
      contains(rules_of(lint_string(text)), "give-up-without-max-retries"));
}

TEST(TraceLint, CheckedInCorruptFaultFixtureFails) {
  const LintResult result = lint_trace_file(
      std::string(CMCP_TEST_DATA_DIR) + "/corrupt_fault_trace.jsonl");
  ASSERT_FALSE(result.ok());
  const auto rules = rules_of(result);
  EXPECT_TRUE(contains(rules, "retry-without-failure"));
  EXPECT_TRUE(contains(rules, "give-up-without-max-retries"));
  EXPECT_TRUE(contains(rules, "fill-from-quarantined-frame"));
  for (const LintIssue& issue : result.issues) EXPECT_GT(issue.line, 0u);
}

}  // namespace
}  // namespace cmcp::check
