// SimCheck framework tests: registry mechanics (strides, handlers,
// diagnostics) and checker-catches-the-bug coverage for the TLB, policy
// accounting and clock monotonicity invariants. The PSPT corruption cases
// live in tests/mm/pspt_invariant_test.cpp.
#include "check/invariant_checkers.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "sim/checker.h"
#include "workloads/synthetic.h"

namespace cmcp::check {
namespace {

using sim::CheckPoint;
using sim::CheckRegistry;
using sim::CheckViolation;

/// Checker whose behaviour the test scripts: reports `violations` findings
/// per sweep and counts its invocations.
class ScriptedChecker final : public sim::Checker {
 public:
  explicit ScriptedChecker(unsigned violations = 0) : violations_(violations) {}

  std::string_view name() const override { return "scripted"; }

  void check(CheckPoint point, std::vector<CheckViolation>& out) override {
    ++calls_;
    last_point_ = point;
    for (unsigned i = 0; i < violations_; ++i)
      out.push_back({std::string(name()), "scripted-rule",
                     "violation " + std::to_string(i), 7, 3});
  }

  unsigned calls() const { return calls_; }
  CheckPoint last_point() const { return last_point_; }

 private:
  unsigned violations_;
  unsigned calls_ = 0;
  CheckPoint last_point_ = CheckPoint::kEndOfRun;
};

TEST(CheckRegistry, StrideThrottlesSweeps) {
  CheckRegistry registry;
  auto checker = std::make_unique<ScriptedChecker>();
  ScriptedChecker* raw = checker.get();
  registry.add(std::move(checker));
  registry.set_stride(CheckPoint::kAfterFault, 4);
  for (int i = 0; i < 8; ++i) registry.run(CheckPoint::kAfterFault);
  EXPECT_EQ(raw->calls(), 2u);  // sweeps at calls 4 and 8
  EXPECT_EQ(registry.sweeps(), 2u);
}

TEST(CheckRegistry, StrideZeroDisablesCheckpoint) {
  CheckRegistry registry;
  auto checker = std::make_unique<ScriptedChecker>();
  ScriptedChecker* raw = checker.get();
  registry.add(std::move(checker));
  registry.set_stride(CheckPoint::kAfterScan, 0);
  for (int i = 0; i < 5; ++i) registry.run(CheckPoint::kAfterScan);
  EXPECT_EQ(raw->calls(), 0u);
}

TEST(CheckRegistry, RunNowIgnoresStride) {
  CheckRegistry registry;
  auto checker = std::make_unique<ScriptedChecker>();
  ScriptedChecker* raw = checker.get();
  registry.add(std::move(checker));
  registry.set_stride(CheckPoint::kAfterFault, 1000);
  registry.run_now(CheckPoint::kAfterFault);
  EXPECT_EQ(raw->calls(), 1u);
  EXPECT_EQ(raw->last_point(), CheckPoint::kAfterFault);
}

TEST(CheckRegistry, ViolationsReachTheHandler) {
  CheckRegistry registry;
  registry.add(std::make_unique<ScriptedChecker>(2));
  std::vector<CheckViolation> captured;
  registry.set_handler(
      [&](const CheckViolation& v) { captured.push_back(v); });
  registry.run_now(CheckPoint::kEndOfRun);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].checker, "scripted");
  EXPECT_EQ(captured[0].invariant, "scripted-rule");
  EXPECT_EQ(captured[0].unit, 7u);
  EXPECT_EQ(captured[0].core, 3u);
  EXPECT_EQ(registry.violations(), 2u);
}

TEST(CheckRegistry, FormatViolationIncludesEventTail) {
  sim::trace::EventSink events;
  events.emit({sim::trace::EventKind::kMajorFault, 2, 100, 50, 9, 0, 0, 0});
  events.emit({sim::trace::EventKind::kEviction, 2, 160, 40, 4, 1, 2, 4096});
  const CheckViolation violation{"frame-refcount", "frame-aliased",
                                 "frame 4 is held twice", 4, 2};
  const std::string text = sim::format_violation(violation, &events);
  EXPECT_NE(text.find("frame-refcount"), std::string::npos);
  EXPECT_NE(text.find("frame-aliased"), std::string::npos);
  EXPECT_NE(text.find("unit      : 4"), std::string::npos);
  EXPECT_NE(text.find("major_fault"), std::string::npos);
  EXPECT_NE(text.find("eviction"), std::string::npos);
}

#if CMCP_SIMCHECK_ENABLED

/// Minimal scripted workload (mirrors the engine tests').
class ScriptedWorkload final : public wl::Workload {
 public:
  ScriptedWorkload(CoreId cores, std::uint64_t pages,
                   std::vector<std::vector<wl::Op>> scripts)
      : cores_(cores), pages_(pages) {
    for (auto& ops : scripts)
      scripts_.push_back(
          std::make_shared<const std::vector<wl::Op>>(std::move(ops)));
  }

  std::string_view name() const override { return "scripted"; }
  CoreId num_cores() const override { return cores_; }
  std::uint64_t footprint_base_pages() const override { return pages_; }
  std::unique_ptr<wl::AccessStream> make_stream(CoreId core) const override {
    return std::make_unique<wl::VectorStream>(scripts_[core]);
  }

 private:
  CoreId cores_;
  std::uint64_t pages_;
  std::vector<std::shared_ptr<const std::vector<wl::Op>>> scripts_;
};

TEST(SimCheck, HealthyConstrainedRunReportsNoViolations) {
  // Two cores share 32 pages under a 50% memory constraint: plenty of
  // evictions, shootdowns and minor faults for the sweeps to inspect.
  std::vector<wl::Op> script = {wl::Op::access(0, true, 32),
                                wl::Op::barrier(),
                                wl::Op::access(0, false, 32)};
  ScriptedWorkload w(2, 32, {script, script});
  core::SimulationConfig config;
  config.machine.num_cores = 2;
  config.policy.kind = PolicyKind::kCmcp;
  config.memory_fraction = 0.5;
  core::Simulation sim(config, w);
  ASSERT_NE(sim.check_registry(), nullptr);
  std::vector<CheckViolation> captured;
  sim.check_registry()->set_handler(
      [&](const CheckViolation& v) { captured.push_back(v); });
  // Sweep on every checkpoint, not just the strided subset.
  sim.check_registry()->set_stride(CheckPoint::kAfterFault, 1);
  sim.check_registry()->set_stride(CheckPoint::kAfterEviction, 1);
  sim.run();
  EXPECT_GT(sim.check_registry()->sweeps(), 0u);
  EXPECT_TRUE(captured.empty())
      << captured.size() << " violations, first: " << captured[0].checker
      << "/" << captured[0].invariant << ": " << captured[0].message;
}

TEST(SimCheck, ConfigFlagDisablesRegistry) {
  ScriptedWorkload w(1, 4, {{wl::Op::access(0, false, 4)}});
  core::SimulationConfig config;
  config.machine.num_cores = 1;
  config.simcheck = false;
  core::Simulation sim(config, w);
  EXPECT_EQ(sim.check_registry(), nullptr);
  sim.run();  // and the run must not touch checker machinery
}

TEST(SimCheck, TlbCheckerCatchesStaleEntry) {
  ScriptedWorkload w(1, 8, {{wl::Op::access(0, false, 8)}});
  core::SimulationConfig config;
  config.machine.num_cores = 1;
  core::Simulation sim(config, w);
  sim.run();
  // Inject a translation the page table never issued: core 0 caches a unit
  // far outside the mapped range — exactly what a missed shootdown leaves.
  sim.machine().tlb(0).insert(9999);
  std::vector<CheckViolation> captured;
  sim.check_registry()->set_handler(
      [&](const CheckViolation& v) { captured.push_back(v); });
  sim.check_registry()->run_now(CheckPoint::kEndOfRun);
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured[0].checker, "tlb-consistency");
  EXPECT_EQ(captured[0].invariant, "stale-tlb-entry");
  EXPECT_EQ(captured[0].unit, 9999u);
  EXPECT_EQ(captured[0].core, 0u);
}

TEST(SimCheck, PolicyCheckerCatchesLyingPolicy) {
  // A custom policy that under-reports its tracked size: FIFO semantics but
  // tracked_pages() is always off by one once pages exist.
  class LyingFifo final : public policy::ReplacementPolicy {
   public:
    std::string_view name() const override { return "lying-fifo"; }
    void on_insert(mm::ResidentPage& page) override { list_.push_back(page); }
    mm::ResidentPage* pick_victim(CoreId, Cycles&) override {
      return list_.front();
    }
    void on_evict(mm::ResidentPage& page) override { list_.erase(page); }
    std::int64_t tracked_pages() const override {
      const auto n = static_cast<std::int64_t>(list_.size());
      return n > 0 ? n - 1 : 0;
    }

   private:
    IntrusiveList<mm::ResidentPage, &mm::ResidentPage::main_node> list_;
  };

  ScriptedWorkload w(1, 8, {{wl::Op::access(0, false, 8)}});
  core::SimulationConfig config;
  config.machine.num_cores = 1;
  config.custom_policy = [](policy::PolicyHost&) {
    return std::make_unique<LyingFifo>();
  };
  core::Simulation sim(config, w);
  std::vector<CheckViolation> captured;
  sim.check_registry()->set_handler(
      [&](const CheckViolation& v) { captured.push_back(v); });
  sim.run();
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured[0].checker, "policy-accounting");
  EXPECT_EQ(captured[0].invariant, "list-size-vs-resident");
}

TEST(SimCheck, ClockCheckerCatchesRegression) {
  ScriptedWorkload w(1, 4, {{wl::Op::access(0, false, 4)}});
  core::SimulationConfig config;
  config.machine.num_cores = 1;
  core::Simulation sim(config, w);
  sim.run();
  std::vector<CheckViolation> captured;
  sim.check_registry()->set_handler(
      [&](const CheckViolation& v) { captured.push_back(v); });
  // Baseline sweep records current clocks, then time runs backwards.
  sim.check_registry()->run_now(CheckPoint::kEndOfRun);
  EXPECT_TRUE(captured.empty());
  const Cycles now = sim.machine().clock(0);
  ASSERT_GT(now, 0u);
  sim.machine().set_clock(0, now - 1);
  sim.check_registry()->run_now(CheckPoint::kEndOfRun);
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured[0].checker, "clock-monotonic");
  EXPECT_EQ(captured[0].invariant, "clock-regression");
  EXPECT_EQ(captured[0].core, 0u);
}

TEST(SimCheck, QuarantineCheckerCatchesLeakedFrame) {
  // Quarantine a RESIDENT frame directly in the allocator — bypassing the
  // recovery protocol (no registry removal, no partition recompute). The
  // frame-quarantine checker must flag both the resident page still sitting
  // on the retired frame and the partition's stale capacity.
  std::vector<wl::Op> script = {wl::Op::access(0, false, 16)};
  ScriptedWorkload w(1, 16, {script});
  core::SimulationConfig config;
  config.machine.num_cores = 1;
  config.memory_fraction = 0.5;
  core::Simulation sim(config, w);
  sim.run();
  std::vector<CheckViolation> captured;
  sim.check_registry()->set_handler(
      [&](const CheckViolation& v) {
        if (v.checker == "frame-quarantine") captured.push_back(v);
      });
  sim.check_registry()->run_now(CheckPoint::kEndOfRun);
  EXPECT_TRUE(captured.empty());
  Pfn resident = kInvalidPfn;
  sim.memory_manager().registry().for_each(
      [&](const mm::ResidentPage& pg) { resident = pg.pfn; });
  ASSERT_NE(resident, kInvalidPfn);
  sim.memory_manager().mutable_allocator_for_test().quarantine(resident);
  sim.check_registry()->run_now(CheckPoint::kEndOfRun);
  ASSERT_FALSE(captured.empty());
  bool saw_resident = false, saw_stale = false;
  for (const CheckViolation& v : captured) {
    if (v.invariant == "resident-on-quarantined") saw_resident = true;
    if (v.invariant == "stale-partition-capacity") saw_stale = true;
  }
  EXPECT_TRUE(saw_resident);
  EXPECT_TRUE(saw_stale);
}

TEST(SimCheck, HealthyFaultInjectedRunReportsNoViolations) {
  // Full fault mix under a tight memory constraint: the recovery protocol
  // (retries, quarantines, re-allocation) must leave every invariant —
  // including the new frame-quarantine checks — intact at every sweep.
  std::vector<wl::Op> script = {wl::Op::access(0, true, 32),
                                wl::Op::barrier(),
                                wl::Op::access(0, false, 32)};
  ScriptedWorkload w(2, 32, {script, script});
  core::SimulationConfig config;
  config.machine.num_cores = 2;
  config.policy.kind = PolicyKind::kCmcp;
  config.memory_fraction = 0.5;
  ASSERT_TRUE(sim::FaultPlanConfig::parse(
      "seed=5,pcie=0.05,sticky=0.02,ack=0.05,poison=2,straggler=0.1",
      &config.faults));
  core::Simulation sim(config, w);
  std::vector<CheckViolation> captured;
  sim.check_registry()->set_handler(
      [&](const CheckViolation& v) { captured.push_back(v); });
  sim.check_registry()->set_stride(CheckPoint::kAfterFault, 1);
  sim.check_registry()->set_stride(CheckPoint::kAfterEviction, 1);
  sim.run();
  EXPECT_GT(sim.check_registry()->sweeps(), 0u);
  EXPECT_TRUE(captured.empty())
      << captured.size() << " violations, first: " << captured[0].checker
      << "/" << captured[0].invariant << ": " << captured[0].message;
}

TEST(SimCheck, DefaultSuiteRegistersSevenCheckers) {
  ScriptedWorkload w(1, 4, {{wl::Op::access(0, false, 4)}});
  core::SimulationConfig config;
  config.machine.num_cores = 1;
  core::Simulation sim(config, w);
  ASSERT_NE(sim.check_registry(), nullptr);
  EXPECT_EQ(sim.check_registry()->num_checkers(), 7u);
}

#endif  // CMCP_SIMCHECK_ENABLED

}  // namespace
}  // namespace cmcp::check
