#include "common/core_mask.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmcp {
namespace {

TEST(CoreMask, StartsEmpty) {
  CoreMask m;
  EXPECT_TRUE(m.none());
  EXPECT_FALSE(m.any());
  EXPECT_EQ(m.count(), 0u);
}

TEST(CoreMask, SetTestClear) {
  CoreMask m;
  m.set(0);
  m.set(63);
  m.set(64);  // crosses the word boundary
  m.set(255);
  EXPECT_TRUE(m.test(0));
  EXPECT_TRUE(m.test(63));
  EXPECT_TRUE(m.test(64));
  EXPECT_TRUE(m.test(255));
  EXPECT_FALSE(m.test(1));
  EXPECT_EQ(m.count(), 4u);
  m.clear(63);
  EXPECT_FALSE(m.test(63));
  EXPECT_EQ(m.count(), 3u);
}

TEST(CoreMask, SetIsIdempotent) {
  CoreMask m;
  m.set(5);
  m.set(5);
  EXPECT_EQ(m.count(), 1u);
}

TEST(CoreMask, ForEachAscending) {
  CoreMask m;
  m.set(200);
  m.set(3);
  m.set(64);
  std::vector<CoreId> seen;
  m.for_each([&](CoreId c) { seen.push_back(c); });
  EXPECT_EQ(seen, (std::vector<CoreId>{3, 64, 200}));
}

TEST(CoreMask, FirstN) {
  const CoreMask m = CoreMask::first_n(56);
  EXPECT_EQ(m.count(), 56u);
  EXPECT_TRUE(m.test(0));
  EXPECT_TRUE(m.test(55));
  EXPECT_FALSE(m.test(56));
}

TEST(CoreMask, FirstNZero) {
  EXPECT_TRUE(CoreMask::first_n(0).none());
}

TEST(CoreMask, Equality) {
  CoreMask a, b;
  a.set(7);
  b.set(7);
  EXPECT_EQ(a, b);
  b.set(8);
  EXPECT_NE(a, b);
}

TEST(CoreMask, UnionAndIntersection) {
  CoreMask a, b;
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  const CoreMask u = a | b;
  EXPECT_EQ(u.count(), 3u);
  EXPECT_TRUE(u.test(1) && u.test(2) && u.test(3));
  const CoreMask i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(2));
}

TEST(CoreMask, ResetClearsEverything) {
  CoreMask m = CoreMask::first_n(100);
  m.reset();
  EXPECT_TRUE(m.none());
}

TEST(CoreMask, EmptyMaskIteratesNothing) {
  CoreMask m;
  unsigned calls = 0;
  m.for_each([&](CoreId) { ++calls; });
  EXPECT_EQ(calls, 0u);
  // A set-then-cleared mask is indistinguishable from a fresh one.
  m.set(17);
  m.clear(17);
  EXPECT_TRUE(m.none());
  m.for_each([&](CoreId) { ++calls; });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(m, CoreMask{});
}

TEST(CoreMask, Full64CoreMask) {
  // A full first word (the common 56-64 core Phi configs) must not bleed
  // into the second word or lose its boundary bits.
  const CoreMask m = CoreMask::first_n(64);
  EXPECT_EQ(m.count(), 64u);
  EXPECT_TRUE(m.test(0));
  EXPECT_TRUE(m.test(63));
  EXPECT_FALSE(m.test(64));
  std::vector<CoreId> seen;
  m.for_each([&](CoreId c) { seen.push_back(c); });
  ASSERT_EQ(seen.size(), 64u);
  EXPECT_EQ(seen.front(), 0u);
  EXPECT_EQ(seen.back(), 63u);
}

TEST(CoreMask, FullCapacityMask) {
  const CoreMask m = CoreMask::first_n(CoreMask::kMaxCores);
  EXPECT_EQ(m.count(), CoreMask::kMaxCores);
  EXPECT_TRUE(m.test(CoreMask::kMaxCores - 1));
  unsigned calls = 0;
  CoreId prev = 0;
  bool first = true;
  m.for_each([&](CoreId c) {
    if (!first) {
      EXPECT_EQ(c, prev + 1);
    }
    prev = c;
    first = false;
    ++calls;
  });
  EXPECT_EQ(calls, CoreMask::kMaxCores);
}

TEST(CoreMask, ForEachAscendingAcrossAllWordBoundaries) {
  // One bit in each 64-bit word, plus both edges of a boundary.
  CoreMask m;
  const std::vector<CoreId> cores = {0, 63, 64, 127, 128, 191, 192, 255};
  for (const CoreId c : cores) m.set(c);
  std::vector<CoreId> seen;
  m.for_each([&](CoreId c) { seen.push_back(c); });
  EXPECT_EQ(seen, cores);  // strictly ascending, exactly the set bits
}

TEST(CoreMask, ClearOnEmptyMaskIsHarmless) {
  CoreMask m;
  m.clear(42);
  EXPECT_TRUE(m.none());
  EXPECT_EQ(m.count(), 0u);
}

TEST(CoreMaskDeath, OutOfRangeAborts) {
  CoreMask m;
  EXPECT_DEATH(m.set(CoreMask::kMaxCores), "core < kMaxCores");
}

}  // namespace
}  // namespace cmcp
