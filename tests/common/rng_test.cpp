#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cmcp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    hit_lo |= (v == 10);
    hit_hi |= (v == 13);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformityCoarse) {
  Rng rng(13);
  int buckets[10] = {};
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++buckets[rng.next_below(10)];
  for (int b : buckets) {
    EXPECT_GT(b, kSamples / 10 * 0.9);
    EXPECT_LT(b, kSamples / 10 * 1.1);
  }
}

TEST(Rng, GeometricMeanApproximatelyCorrect) {
  Rng rng(17);
  const double mean = 8.0;
  double sum = 0;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i)
    sum += static_cast<double>(rng.next_geometric(mean));
  const double measured = sum / kSamples;
  // Floored exponential has mean ~ mean - 0.5.
  EXPECT_NEAR(measured, mean - 0.5, 0.5);
}

TEST(Rng, NoShortCycle) {
  Rng rng(21);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace cmcp
