#include "common/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmcp {
namespace {

struct Item {
  explicit Item(int v) : value(v) {}
  int value = 0;
  ListNode node;
};

using ItemList = IntrusiveList<Item, &Item::node>;

std::vector<int> values(ItemList& list) {
  std::vector<int> out;
  list.for_each([&](Item& item) { out.push_back(item.value); });
  return out;
}

TEST(IntrusiveList, StartsEmpty) {
  ItemList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_EQ(list.pop_front(), nullptr);
}

TEST(IntrusiveList, PushBackPreservesOrder) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(values(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.front(), &a);
  EXPECT_EQ(list.back(), &c);
  EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveList, PushFront) {
  ItemList list;
  Item a{1}, b{2};
  list.push_front(a);
  list.push_front(b);
  EXPECT_EQ(values(list), (std::vector<int>{2, 1}));
}

TEST(IntrusiveList, EraseMiddle) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(b);
  EXPECT_EQ(values(list), (std::vector<int>{1, 3}));
  EXPECT_FALSE(ItemList::on_any_list(b));
  EXPECT_TRUE(ItemList::on_any_list(a));
}

TEST(IntrusiveList, EraseEnds) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(a);
  list.erase(c);
  EXPECT_EQ(values(list), (std::vector<int>{2}));
  EXPECT_EQ(list.front(), &b);
  EXPECT_EQ(list.back(), &b);
}

TEST(IntrusiveList, PopFrontDrains) {
  ItemList list;
  Item a{1}, b{2};
  list.push_back(a);
  list.push_back(b);
  EXPECT_EQ(list.pop_front(), &a);
  EXPECT_EQ(list.pop_front(), &b);
  EXPECT_EQ(list.pop_front(), nullptr);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, MoveToBack) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.move_to_back(a);
  EXPECT_EQ(values(list), (std::vector<int>{2, 3, 1}));
  list.move_to_back(c);
  EXPECT_EQ(values(list), (std::vector<int>{2, 1, 3}));
}

TEST(IntrusiveList, ReinsertAfterErase) {
  ItemList list;
  Item a{1};
  list.push_back(a);
  list.erase(a);
  list.push_back(a);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.front(), &a);
}

TEST(IntrusiveList, ItemMovesBetweenLists) {
  ItemList first, second;
  Item a{1};
  first.push_back(a);
  first.erase(a);
  second.push_back(a);
  EXPECT_TRUE(first.empty());
  EXPECT_EQ(second.front(), &a);
}

TEST(IntrusiveList, NextOfWalksForward) {
  ItemList list;
  Item a{1}, b{2};
  list.push_back(a);
  list.push_back(b);
  EXPECT_EQ(list.next_of(a), &b);
  EXPECT_EQ(list.next_of(b), nullptr);
}

TEST(IntrusiveList, UnlinkHeadUpdatesFront) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(a);
  EXPECT_EQ(list.front(), &b);
  EXPECT_EQ(list.back(), &c);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(ItemList::on_any_list(a));
  EXPECT_EQ(values(list), (std::vector<int>{2, 3}));
}

TEST(IntrusiveList, UnlinkTailUpdatesBack) {
  ItemList list;
  Item a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(c);
  EXPECT_EQ(list.front(), &a);
  EXPECT_EQ(list.back(), &b);
  EXPECT_FALSE(ItemList::on_any_list(c));
  EXPECT_EQ(list.next_of(b), nullptr);
}

TEST(IntrusiveList, UnlinkOnlyElementLeavesEmptyList) {
  ItemList list;
  Item a{1};
  list.push_back(a);
  list.erase(a);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_EQ(list.size(), 0u);
}

TEST(IntrusiveList, RepeatedReinsertionCycles) {
  // Policies bounce the same ResidentPage between lists thousands of times
  // (CMCP demote/promote, LRU active/inactive); the links must come back
  // clean after every cycle.
  ItemList list;
  Item a{1}, b{2};
  for (int i = 0; i < 1000; ++i) {
    list.push_back(a);
    list.push_front(b);
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(values(list), (std::vector<int>{2, 1}));
    list.erase(a);
    EXPECT_TRUE(ItemList::on_any_list(b));
    EXPECT_FALSE(ItemList::on_any_list(a));
    EXPECT_EQ(list.pop_front(), &b);
    EXPECT_TRUE(list.empty());
  }
}

TEST(IntrusiveList, MoveToBackOfSingleElementIsNoop) {
  ItemList list;
  Item a{1};
  list.push_back(a);
  list.move_to_back(a);
  EXPECT_EQ(list.front(), &a);
  EXPECT_EQ(list.back(), &a);
  EXPECT_EQ(list.size(), 1u);
}

TEST(IntrusiveListDeath, EraseUnlinkedAborts) {
  ItemList list;
  Item a{1};
  EXPECT_DEATH(list.erase(a), "unlinked");
}

TEST(IntrusiveListDeath, DoubleInsertAborts) {
  ItemList list;
  Item a{1};
  list.push_back(a);
  EXPECT_DEATH(list.push_back(a), "already-linked");
}

}  // namespace
}  // namespace cmcp
