#include "sim/interconnect.h"

#include <gtest/gtest.h>

namespace cmcp::sim {
namespace {

class InterconnectTest : public ::testing::Test {
 protected:
  CostModel cost = CostModel::knc();
  Interconnect net{cost};
};

TEST_F(InterconnectTest, ZeroTargetsIsFree) {
  const ShootdownTiming t = net.shootdown(100, 0, 1);
  EXPECT_EQ(t.initiator_total(), 0u);
  EXPECT_EQ(net.total_shootdowns(), 0u);
  EXPECT_EQ(net.slot_busy_until(), 0u);
}

TEST_F(InterconnectTest, SingleShootdownCostComposition) {
  const ShootdownTiming t = net.shootdown(0, 3, 2);
  EXPECT_EQ(t.lock_wait, 0u);
  EXPECT_EQ(t.initiate, cost.ipi_initiate + 3 * cost.ipi_per_target);
  EXPECT_EQ(t.receiver_cost, cost.ipi_receive + 2 * cost.invlpg);
  EXPECT_EQ(t.ack_wait, t.receiver_cost);
  EXPECT_EQ(t.initiator_total(), t.initiate + t.ack_wait);
}

TEST_F(InterconnectTest, InitiatorCostGrowsWithTargetCount) {
  // The heart of the paper's scaling argument: shooting down 55 cores costs
  // far more than shooting down 1.
  Interconnect a(cost), b(cost);
  const Cycles narrow = a.shootdown(0, 1, 1).initiator_total();
  const Cycles wide = b.shootdown(0, 55, 1).initiator_total();
  EXPECT_GT(wide, narrow + 50 * cost.ipi_per_target);
}

TEST_F(InterconnectTest, ConcurrentShootdownsConvoyOnSlot) {
  const ShootdownTiming first = net.shootdown(0, 4, 1);
  EXPECT_EQ(first.lock_wait, 0u);
  const Cycles hold = cost.inval_slot_hold + first.initiate;
  EXPECT_EQ(net.slot_busy_until(), hold);
  // A second shootdown issued at the same instant waits for the slot.
  const ShootdownTiming second = net.shootdown(0, 4, 1);
  EXPECT_EQ(second.lock_wait, hold);
  EXPECT_EQ(net.total_lock_wait(), hold);
}

TEST_F(InterconnectTest, SlotFreeAfterHoldExpires) {
  net.shootdown(0, 4, 1);
  const ShootdownTiming later = net.shootdown(net.slot_busy_until(), 4, 1);
  EXPECT_EQ(later.lock_wait, 0u);
}

TEST_F(InterconnectTest, WideShootdownsHoldSlotLonger) {
  // Regular page tables shoot down every core; their slot occupancy per
  // fault dwarfs PSPT's — the mechanism behind the >24-core collapse.
  Interconnect pspt(cost), regular(cost);
  pspt.shootdown(0, 1, 1);
  regular.shootdown(0, 55, 1);
  EXPECT_GT(regular.slot_busy_until(), pspt.slot_busy_until());
  EXPECT_EQ(regular.slot_busy_until() - pspt.slot_busy_until(),
            54 * cost.ipi_per_target);
}

TEST_F(InterconnectTest, CountsShootdowns) {
  net.shootdown(0, 1, 1);
  net.shootdown(0, 2, 1);
  net.shootdown(0, 0, 1);  // no targets: not counted
  EXPECT_EQ(net.total_shootdowns(), 2u);
}

TEST_F(InterconnectTest, ResetRestoresInitialState) {
  net.shootdown(0, 4, 1);
  net.reset();
  EXPECT_EQ(net.slot_busy_until(), 0u);
  EXPECT_EQ(net.total_shootdowns(), 0u);
  EXPECT_EQ(net.total_lock_wait(), 0u);
}

TEST_F(InterconnectTest, BacklogAccumulatesUnderBurst) {
  // N simultaneous shootdowns: the k-th waits ~k slot holds. This is the
  // queueing behaviour that produced the paper's 8x lock-cycle growth.
  Cycles prev_wait = 0;
  for (int i = 0; i < 10; ++i) {
    const ShootdownTiming t = net.shootdown(0, 2, 1);
    EXPECT_GE(t.lock_wait, prev_wait);
    prev_wait = t.lock_wait;
  }
  EXPECT_GT(prev_wait, 8 * cost.inval_slot_hold);
}

}  // namespace
}  // namespace cmcp::sim
