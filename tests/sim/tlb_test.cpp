#include "sim/tlb.h"

#include <gtest/gtest.h>

namespace cmcp::sim {
namespace {

TEST(Tlb, MissThenHit) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.lookup(10));
  tlb.insert(10);
  EXPECT_TRUE(tlb.lookup(10));
}

TEST(Tlb, EvictsLruWhenFull) {
  Tlb tlb(2);
  tlb.insert(1);
  tlb.insert(2);
  tlb.insert(3);  // evicts 1
  EXPECT_FALSE(tlb.lookup(1));
  EXPECT_TRUE(tlb.lookup(2));
  EXPECT_TRUE(tlb.lookup(3));
}

TEST(Tlb, LookupRefreshesRecency) {
  Tlb tlb(2);
  tlb.insert(1);
  tlb.insert(2);
  EXPECT_TRUE(tlb.lookup(1));  // 2 is now LRU
  tlb.insert(3);               // evicts 2
  EXPECT_TRUE(tlb.lookup(1));
  EXPECT_FALSE(tlb.lookup(2));
  EXPECT_TRUE(tlb.lookup(3));
}

TEST(Tlb, ReinsertRefreshesWithoutDuplicating) {
  Tlb tlb(2);
  tlb.insert(1);
  tlb.insert(2);
  tlb.insert(1);  // already present: refresh, no eviction
  EXPECT_EQ(tlb.occupancy(), 2u);
  tlb.insert(3);  // evicts 2 (LRU), not 1
  EXPECT_TRUE(tlb.lookup(1));
  EXPECT_FALSE(tlb.lookup(2));
}

TEST(Tlb, InvalidateRemovesEntry) {
  Tlb tlb(4);
  tlb.insert(5);
  EXPECT_TRUE(tlb.invalidate(5));
  EXPECT_FALSE(tlb.lookup(5));
  EXPECT_FALSE(tlb.invalidate(5));  // already gone
  EXPECT_EQ(tlb.occupancy(), 0u);
}

TEST(Tlb, InvalidateFreesSlotForReuse) {
  Tlb tlb(2);
  tlb.insert(1);
  tlb.insert(2);
  tlb.invalidate(1);
  tlb.insert(3);  // uses the freed slot: 2 must survive
  EXPECT_TRUE(tlb.lookup(2));
  EXPECT_TRUE(tlb.lookup(3));
}

TEST(Tlb, FlushDropsEverything) {
  Tlb tlb(8);
  for (UnitIdx u = 0; u < 8; ++u) tlb.insert(u);
  tlb.flush();
  EXPECT_EQ(tlb.occupancy(), 0u);
  for (UnitIdx u = 0; u < 8; ++u) EXPECT_FALSE(tlb.lookup(u));
  // Still fully usable after flush.
  tlb.insert(42);
  EXPECT_TRUE(tlb.lookup(42));
}

TEST(Tlb, CapacityOneDegenerate) {
  Tlb tlb(1);
  tlb.insert(1);
  EXPECT_TRUE(tlb.lookup(1));
  tlb.insert(2);
  EXPECT_FALSE(tlb.lookup(1));
  EXPECT_TRUE(tlb.lookup(2));
}

// Property: under any operation sequence, occupancy never exceeds capacity
// and lookups reflect the most recent insert/invalidate for each unit.
TEST(TlbProperty, StressAgainstReferenceModel) {
  const std::uint32_t kCapacity = 8;
  Tlb tlb(kCapacity);
  std::uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int i = 0; i < 20000; ++i) {
    const UnitIdx unit = next() % 32;
    switch (next() % 3) {
      case 0:
        tlb.insert(unit);
        EXPECT_TRUE(tlb.lookup(unit));
        break;
      case 1:
        tlb.lookup(unit);
        break;
      case 2:
        tlb.invalidate(unit);
        EXPECT_FALSE(tlb.lookup(unit));
        break;
    }
    ASSERT_LE(tlb.occupancy(), kCapacity);
  }
}

struct TlbConfigCase {
  PageSizeClass size;
  std::uint32_t expected;
};

class TlbConfigTest : public ::testing::TestWithParam<TlbConfigCase> {};

TEST_P(TlbConfigTest, EntriesPerSizeClass) {
  const TlbConfig config;
  EXPECT_EQ(config.entries_for(GetParam().size), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllSizes, TlbConfigTest,
    ::testing::Values(TlbConfigCase{PageSizeClass::k4K, 64},
                      TlbConfigCase{PageSizeClass::k64K, 32},
                      TlbConfigCase{PageSizeClass::k2M, 8}));

}  // namespace
}  // namespace cmcp::sim
