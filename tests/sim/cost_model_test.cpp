#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace cmcp::sim {
namespace {

TEST(CostModel, KncDefaultsAreSane) {
  const CostModel cost = CostModel::knc();
  EXPECT_NEAR(cost.clock_ghz, 1.053, 1e-9);  // Phi 5110P
  EXPECT_NEAR(cost.pcie_gb_per_s, 6.0, 1e-9);  // paper's measured bandwidth
  EXPECT_GT(cost.tlb_walk_4k, cost.tlb_hit);
  EXPECT_GE(cost.tlb_walk_4k, cost.tlb_walk_2m);  // 2 MB walks end earlier
  EXPECT_GT(cost.ipi_receive, cost.invlpg);
  EXPECT_GT(cost.scanner_threads, 0u);
  EXPECT_GT(cost.scanner_flush_batch, 0u);
}

TEST(CostModel, PcieTransferCyclesScaleLinearly) {
  const CostModel cost = CostModel::knc();
  const Cycles one = cost.pcie_transfer_cycles(1 << 20);
  const Cycles four = cost.pcie_transfer_cycles(4 << 20);
  EXPECT_NEAR(static_cast<double>(four), 4.0 * one, 4.0);
  EXPECT_EQ(cost.pcie_transfer_cycles(0), 0u);
}

TEST(CostModel, PcieMatchesSixGBPerSecond) {
  const CostModel cost = CostModel::knc();
  // 6 GB at 6 GB/s = 1 s = clock_ghz * 1e9 cycles.
  const Cycles cycles = cost.pcie_transfer_cycles(6ull * 1000 * 1000 * 1000);
  EXPECT_NEAR(static_cast<double>(cycles), cost.clock_ghz * 1e9,
              cost.clock_ghz * 1e6);
}

TEST(CostModel, WalkCostPerSizeClass) {
  const CostModel cost = CostModel::knc();
  EXPECT_EQ(cost.walk_cost(PageSizeClass::k4K), cost.tlb_walk_4k);
  EXPECT_EQ(cost.walk_cost(PageSizeClass::k64K), cost.tlb_walk_64k);
  EXPECT_EQ(cost.walk_cost(PageSizeClass::k2M), cost.tlb_walk_2m);
}

TEST(CostModel, MapCostReflects64kGroupSetup) {
  // Paper section 4: a 64 kB mapping means initializing 16 separate 4 kB
  // PTEs; a 2 MB mapping is a single entry.
  const CostModel cost = CostModel::knc();
  EXPECT_EQ(cost.map_cost(PageSizeClass::k4K), cost.pte_setup);
  EXPECT_EQ(cost.map_cost(PageSizeClass::k64K), 16 * cost.pte_setup);
  EXPECT_EQ(cost.map_cost(PageSizeClass::k2M), cost.pte_setup);
}

TEST(CostModel, ScanPeriodIsTenMilliseconds) {
  const CostModel cost = CostModel::knc();
  const double ms = static_cast<double>(cost.scan_period) / (cost.clock_ghz * 1e6);
  EXPECT_NEAR(ms, 10.0, 1.0);  // paper: 10 ms timer
}

}  // namespace
}  // namespace cmcp::sim
