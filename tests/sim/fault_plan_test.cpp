// FaultPlan unit tests: spec round-tripping, the backoff formula, poison
// selection, decision-stream determinism, and the fault-aware PCIe transfer
// degenerating to the plain path when nothing fails.
#include "sim/fault_plan.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/pcie_link.h"

namespace cmcp::sim {
namespace {

TEST(FaultPlanConfig, DefaultIsDisabled) {
  const FaultPlanConfig config;
  EXPECT_FALSE(config.enabled());
}

TEST(FaultPlanConfig, AnyRateOrPoisonEnables) {
  FaultPlanConfig config;
  config.pcie_transient_rate = 0.01;
  EXPECT_TRUE(config.enabled());
  config = FaultPlanConfig{};
  config.poison_frames = 1;
  EXPECT_TRUE(config.enabled());
  config = FaultPlanConfig{};
  config.straggler_rate = 0.5;
  EXPECT_TRUE(config.enabled());
}

TEST(FaultPlanConfig, SpecRoundTripsThroughParse) {
  FaultPlanConfig config;
  config.seed = 42;
  config.pcie_transient_rate = 0.01;
  config.pcie_sticky_rate = 0.002;
  config.shootdown_ack_rate = 0.05;
  config.poison_frames = 3;
  config.straggler_rate = 0.1;
  config.max_retries = 4;
  config.backoff_base = 1000;
  config.straggler_window = 500'000;
  const std::string spec = config.to_spec();
  FaultPlanConfig parsed;
  ASSERT_TRUE(FaultPlanConfig::parse(spec, &parsed));
  EXPECT_EQ(parsed.to_spec(), spec);
  EXPECT_EQ(parsed.seed, 42u);
  EXPECT_EQ(parsed.pcie_transient_rate, 0.01);
  EXPECT_EQ(parsed.pcie_sticky_rate, 0.002);
  EXPECT_EQ(parsed.shootdown_ack_rate, 0.05);
  EXPECT_EQ(parsed.poison_frames, 3u);
  EXPECT_EQ(parsed.straggler_rate, 0.1);
  EXPECT_EQ(parsed.max_retries, 4u);
  EXPECT_EQ(parsed.backoff_base, 1000u);
  EXPECT_EQ(parsed.straggler_window, 500'000u);
}

TEST(FaultPlanConfig, DefaultKnobsAreOmittedFromSpec) {
  FaultPlanConfig config;
  config.seed = 7;
  config.pcie_transient_rate = 0.01;
  EXPECT_EQ(config.to_spec(),
            "seed=7,pcie=0.01,sticky=0,ack=0,poison=0,straggler=0");
}

TEST(FaultPlanConfig, ParseRejectsGarbage) {
  FaultPlanConfig out;
  EXPECT_FALSE(FaultPlanConfig::parse("bogus=1", &out));
  EXPECT_FALSE(FaultPlanConfig::parse("pcie=notanumber", &out));
  EXPECT_FALSE(FaultPlanConfig::parse("pcie=1.5", &out));  // rate > 1
  EXPECT_FALSE(FaultPlanConfig::parse("seed=", &out));
  EXPECT_FALSE(FaultPlanConfig::parse("retries=0", &out));
  EXPECT_FALSE(FaultPlanConfig::parse(",,", &out));
  // The empty spec is the default (disabled) plan.
  EXPECT_TRUE(FaultPlanConfig::parse("", &out));
  EXPECT_FALSE(out.enabled());
}

TEST(FaultPlanConfig, BackoffDoublesThenSaturates) {
  FaultPlanConfig config;  // base 2000, cap 1'000'000
  EXPECT_EQ(config.backoff(1), 2'000u);
  EXPECT_EQ(config.backoff(2), 4'000u);
  EXPECT_EQ(config.backoff(3), 8'000u);
  EXPECT_EQ(config.backoff(10), 1'000'000u);  // 2000 << 9 would exceed cap
  EXPECT_EQ(config.backoff(63), 1'000'000u);  // far past cap: no overflow
  EXPECT_EQ(config.backoff(200), 1'000'000u);
}

TEST(FaultPlan, DecisionStreamsAreSeedDeterministic) {
  FaultPlanConfig config;
  config.seed = 9;
  config.pcie_transient_rate = 0.3;
  config.pcie_sticky_rate = 0.1;
  config.shootdown_ack_rate = 0.2;
  FaultPlan a(config);
  FaultPlan b(config);
  for (int i = 0; i < 200; ++i) {
    const FaultPlan::PcieDecision da = a.next_pcie();
    const FaultPlan::PcieDecision db = b.next_pcie();
    EXPECT_EQ(da.failures, db.failures);
    EXPECT_EQ(da.sticky, db.sticky);
    EXPECT_EQ(a.next_ack_lost(), b.next_ack_lost());
  }
}

TEST(FaultPlan, StickyDecisionExhaustsTheBudget) {
  FaultPlanConfig config;
  config.pcie_sticky_rate = 1.0;
  FaultPlan plan(config);
  const FaultPlan::PcieDecision d = plan.next_pcie();
  EXPECT_TRUE(d.sticky);
  EXPECT_EQ(d.failures, config.max_retries);
}

TEST(FaultPlan, SelectPoisonDrawsDistinctAlignedFrames) {
  FaultPlanConfig config;
  config.seed = 3;
  config.poison_frames = 5;
  FaultPlan plan(config);
  plan.select_poison(16, 16);  // 64 kB layout: pfns are multiples of 16
  std::set<Pfn> hit;
  for (std::uint64_t slot = 0; slot < 16; ++slot) {
    const Pfn pfn = slot * 16;
    if (plan.surfaces_at_alloc(pfn) || plan.surfaces_at_evict(pfn))
      hit.insert(pfn);
  }
  EXPECT_EQ(hit.size(), 5u);
  for (const Pfn pfn : hit) EXPECT_EQ(pfn % 16, 0u);
}

TEST(FaultPlan, PoisonClampedToLeaveOneUsableFrame) {
  FaultPlanConfig config;
  config.poison_frames = 100;
  FaultPlan plan(config);
  plan.select_poison(4, 1);
  unsigned poisoned = 0;
  for (Pfn pfn = 0; pfn < 4; ++pfn)
    if (plan.surfaces_at_alloc(pfn) || plan.surfaces_at_evict(pfn)) ++poisoned;
  EXPECT_EQ(poisoned, 3u);  // capacity - 1, never the whole device
}

TEST(FaultPlan, PoisonSurfacesExactlyOnce) {
  FaultPlanConfig config;
  config.poison_frames = 3;  // clamped to 1 by capacity 2
  FaultPlan plan(config);
  plan.select_poison(2, 1);
  Pfn poisoned = kInvalidPfn;
  bool at_alloc = false;
  for (Pfn pfn = 0; pfn < 2; ++pfn) {
    if (plan.surfaces_at_alloc(pfn)) { poisoned = pfn; at_alloc = true; }
    else if (plan.surfaces_at_evict(pfn)) { poisoned = pfn; }
  }
  ASSERT_NE(poisoned, kInvalidPfn);
  // Consumed: neither path reports the same frame again.
  EXPECT_FALSE(plan.surfaces_at_alloc(poisoned));
  EXPECT_FALSE(plan.surfaces_at_evict(poisoned));
  (void)at_alloc;
}

TEST(FaultPlan, StragglerDecisionIsAPureHash) {
  FaultPlanConfig config;
  config.seed = 11;
  config.straggler_rate = 0.5;
  FaultPlan plan(config);
  // Find an afflicted (core, window) pair, then re-query out of order: the
  // multiplier must not depend on query history.
  for (CoreId core = 0; core < 4; ++core) {
    for (std::uint64_t w = 0; w < 8; ++w) {
      const Cycles now = w * config.straggler_window + 17;
      bool start = false;
      const unsigned first = plan.straggler_mult_at(core, now, &start);
      bool again = false;
      EXPECT_EQ(plan.straggler_mult_at(core, now, &again), first);
      if (first > 1) {
        EXPECT_TRUE(start);           // first query of the window
        EXPECT_FALSE(again);          // emitted exactly once per window
        EXPECT_EQ(first, config.straggler_mult);
      }
    }
  }
}

TEST(FaultPlan, StatsAggregateAcrossKindsAndTenants) {
  FaultPlanConfig config;
  config.pcie_transient_rate = 0.1;
  FaultPlan plan(config);
  plan.record(FaultKind::kPcieTransient, 0, 2, 2, false, 1'000);
  plan.record(FaultKind::kShootdownAck, 1, 1, 3, true, 5'000);
  plan.record_quarantine();
  plan.record_straggler_cycles(7'000);
  const FaultStats stats = plan.stats();
  EXPECT_EQ(stats.injected[0], 2u);
  EXPECT_EQ(stats.injected[2], 1u);
  EXPECT_EQ(stats.total_injected(), 3u);
  EXPECT_EQ(stats.retries, 5u);
  EXPECT_EQ(stats.give_ups, 1u);
  EXPECT_EQ(stats.frames_quarantined, 1u);
  EXPECT_EQ(stats.recovery_cycles, 6'000u);
  EXPECT_EQ(stats.straggler_cycles, 7'000u);
  ASSERT_EQ(stats.per_asid_faults.size(), 2u);
  EXPECT_EQ(stats.per_asid_faults[0], 2u);
  EXPECT_EQ(stats.per_asid_faults[1], 1u);
  EXPECT_EQ(stats.per_asid_recovery[1], 5'000u);
}

class FaultyPcieTest : public ::testing::Test {
 protected:
  CostModel cost = CostModel::knc();
};

TEST_F(FaultyPcieTest, ZeroFailureOutcomeMatchesPlainTransfer) {
  // With rates at zero the fault-aware path must be arithmetic-identical to
  // transfer(): same completion time, same queueing, same byte counters.
  FaultPlanConfig config;  // disabled; next_pcie always returns healthy
  FaultPlan plan(config);
  PcieLink faulty(cost);
  PcieLink plain(cost);
  Cycles wait = 0;
  for (int i = 0; i < 5; ++i) {
    const Cycles expected =
        plain.transfer(PcieDir::kHostToDevice, 100 * i, 4096, &wait);
    const PcieTransferOutcome out =
        faulty.transfer_with_faults(PcieDir::kHostToDevice, 100 * i, 4096, plan);
    EXPECT_EQ(out.done, expected);
    EXPECT_EQ(out.queue_wait, wait);
    EXPECT_EQ(out.failures, 0u);
    EXPECT_FALSE(out.gave_up);
    EXPECT_EQ(out.recovery, 0u);
  }
  EXPECT_EQ(faulty.bytes_moved(PcieDir::kHostToDevice),
            plain.bytes_moved(PcieDir::kHostToDevice));
  EXPECT_EQ(faulty.transfers(PcieDir::kHostToDevice),
            plain.transfers(PcieDir::kHostToDevice));
}

TEST_F(FaultyPcieTest, TransientFailurePaysOneAttemptAndBackoff) {
  FaultPlanConfig config;
  config.pcie_transient_rate = 1.0;
  FaultPlan plan(config);
  PcieLink link(cost);
  const PcieTransferOutcome out =
      link.transfer_with_faults(PcieDir::kHostToDevice, 0, 4096, plan);
  const Cycles attempt = cost.pcie_setup + cost.pcie_transfer_cycles(4096);
  EXPECT_EQ(out.failures, 1u);
  EXPECT_FALSE(out.gave_up);
  EXPECT_EQ(out.attempt_cost, attempt);
  EXPECT_EQ(out.done, 2 * attempt + config.backoff(1));
  EXPECT_EQ(out.recovery, attempt + config.backoff(1));
  // The failed attempt's junk bytes occupied the wire.
  EXPECT_EQ(link.bytes_moved(PcieDir::kHostToDevice), 2 * 4096u);
  EXPECT_EQ(link.transfers(PcieDir::kHostToDevice), 1u);
}

TEST_F(FaultyPcieTest, StickyFailureResetsLinkAndStillDelivers) {
  FaultPlanConfig config;
  config.pcie_sticky_rate = 1.0;
  config.max_retries = 3;
  FaultPlan plan(config);
  PcieLink link(cost);
  const PcieTransferOutcome out =
      link.transfer_with_faults(PcieDir::kDeviceToHost, 0, 4096, plan);
  const Cycles attempt = cost.pcie_setup + cost.pcie_transfer_cycles(4096);
  EXPECT_EQ(out.failures, 3u);
  EXPECT_TRUE(out.gave_up);
  // 3 failed attempts: backoff after the first two, link reset after the
  // final one; then the post-reset replay lands.
  const Cycles expected = 4 * attempt + config.backoff(1) + config.backoff(2) +
                          config.link_reset_cycles;
  EXPECT_EQ(out.done, expected);
  EXPECT_EQ(out.recovery, expected - attempt);
}

}  // namespace
}  // namespace cmcp::sim
