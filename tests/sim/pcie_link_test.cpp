#include "sim/pcie_link.h"

#include <gtest/gtest.h>

namespace cmcp::sim {
namespace {

class PcieLinkTest : public ::testing::Test {
 protected:
  CostModel cost = CostModel::knc();
};

TEST_F(PcieLinkTest, TransferTimeMatchesBandwidth) {
  PcieLink link(cost);
  Cycles wait = 0;
  const Cycles done = link.transfer(PcieDir::kHostToDevice, 0, 4096, &wait);
  EXPECT_EQ(wait, 0u);
  // 4 kB at 6 GB/s = ~683 ns = ~719 cycles at 1.053 GHz, plus setup.
  const Cycles expected = cost.pcie_setup + cost.pcie_transfer_cycles(4096);
  EXPECT_EQ(done, expected);
  EXPECT_NEAR(static_cast<double>(cost.pcie_transfer_cycles(4096)), 718.0, 2.0);
}

TEST_F(PcieLinkTest, BackToBackTransfersQueue) {
  PcieLink link(cost);
  Cycles wait = 0;
  const Cycles first = link.transfer(PcieDir::kHostToDevice, 0, 4096, &wait);
  const Cycles second = link.transfer(PcieDir::kHostToDevice, 0, 4096, &wait);
  EXPECT_EQ(wait, first);          // queued behind the first transfer
  EXPECT_EQ(second, 2 * first);    // serialized occupancy
}

TEST_F(PcieLinkTest, DirectionsAreIndependent) {
  PcieLink link(cost);
  Cycles wait = 0;
  link.transfer(PcieDir::kHostToDevice, 0, 1 << 20, &wait);
  const Cycles up = link.transfer(PcieDir::kDeviceToHost, 0, 4096, &wait);
  EXPECT_EQ(wait, 0u);  // full duplex: no queueing across directions
  EXPECT_EQ(up, cost.pcie_setup + cost.pcie_transfer_cycles(4096));
}

TEST_F(PcieLinkTest, LateArrivalDoesNotQueue) {
  PcieLink link(cost);
  Cycles wait = 0;
  const Cycles first = link.transfer(PcieDir::kHostToDevice, 0, 4096, &wait);
  const Cycles start = first + 1000;
  const Cycles done = link.transfer(PcieDir::kHostToDevice, start, 4096, &wait);
  EXPECT_EQ(wait, 0u);
  EXPECT_EQ(done, start + cost.pcie_setup + cost.pcie_transfer_cycles(4096));
}

TEST_F(PcieLinkTest, CountsBytesAndTransfers) {
  PcieLink link(cost);
  Cycles wait = 0;
  link.transfer(PcieDir::kHostToDevice, 0, 4096, &wait);
  link.transfer(PcieDir::kHostToDevice, 0, 65536, &wait);
  link.transfer(PcieDir::kDeviceToHost, 0, 4096, &wait);
  EXPECT_EQ(link.bytes_moved(PcieDir::kHostToDevice), 4096u + 65536u);
  EXPECT_EQ(link.bytes_moved(PcieDir::kDeviceToHost), 4096u);
  EXPECT_EQ(link.transfers(PcieDir::kHostToDevice), 2u);
  EXPECT_EQ(link.transfers(PcieDir::kDeviceToHost), 1u);
}

TEST_F(PcieLinkTest, ResetClearsState) {
  PcieLink link(cost);
  Cycles wait = 0;
  link.transfer(PcieDir::kHostToDevice, 0, 4096, &wait);
  link.reset();
  EXPECT_EQ(link.bytes_moved(PcieDir::kHostToDevice), 0u);
  const Cycles done = link.transfer(PcieDir::kHostToDevice, 0, 4096, &wait);
  EXPECT_EQ(wait, 0u);
  EXPECT_EQ(done, cost.pcie_setup + cost.pcie_transfer_cycles(4096));
}

TEST_F(PcieLinkTest, LargerPagesMoveProportionallyMoreData) {
  // 2 MB moves 512x the bytes of 4 kB: transfer time scales accordingly
  // (setup excluded) — the page-size tradeoff of Fig. 10.
  const Cycles t4k = cost.pcie_transfer_cycles(unit_bytes(PageSizeClass::k4K));
  const Cycles t64k = cost.pcie_transfer_cycles(unit_bytes(PageSizeClass::k64K));
  const Cycles t2m = cost.pcie_transfer_cycles(unit_bytes(PageSizeClass::k2M));
  EXPECT_NEAR(static_cast<double>(t64k) / t4k, 16.0, 0.1);
  EXPECT_NEAR(static_cast<double>(t2m) / t4k, 512.0, 1.0);
}

}  // namespace
}  // namespace cmcp::sim
