#include "sim/machine.h"

#include <gtest/gtest.h>

#include <array>

namespace cmcp::sim {
namespace {

MachineConfig small_config(CoreId cores = 4) {
  MachineConfig config;
  config.num_cores = cores;
  return config;
}

TEST(Machine, ClocksStartAtZero) {
  Machine m(small_config());
  for (CoreId c = 0; c < 4; ++c) EXPECT_EQ(m.clock(c), 0u);
  EXPECT_EQ(m.clock(m.scanner_core()), 0u);
}

TEST(Machine, AdvanceAndSetClock) {
  Machine m(small_config());
  m.advance(1, 100);
  m.advance(1, 50);
  EXPECT_EQ(m.clock(1), 150u);
  m.set_clock(1, 1000);
  EXPECT_EQ(m.clock(1), 1000u);
  EXPECT_EQ(m.clock(0), 0u);
}

TEST(Machine, ScannerCoreHasOwnTlbAndCounters) {
  Machine m(small_config(2));
  m.tlb(m.scanner_core()).insert(7);
  EXPECT_TRUE(m.tlb(m.scanner_core()).lookup(7));
  EXPECT_FALSE(m.tlb(0).lookup(7));
}

TEST(Machine, ShootdownChargesInitiatorAndReceivers) {
  Machine m(small_config(4));
  m.tlb(1).insert(42);
  m.tlb(2).insert(42);

  CoreMask targets;
  targets.set(1);
  targets.set(2);
  const std::array<UnitIdx, 1> units = {42};
  const Cycles initiator_cycles = m.shootdown(0, 0, targets, units);

  EXPECT_GT(initiator_cycles, 0u);
  EXPECT_EQ(m.counters(0).shootdowns_initiated, 1u);
  // Receivers: interrupted, invalidated, clocks advanced.
  for (CoreId c : {CoreId{1}, CoreId{2}}) {
    EXPECT_EQ(m.counters(c).ipis_received, 1u);
    EXPECT_EQ(m.counters(c).remote_invalidations_received, 1u);
    EXPECT_GT(m.counters(c).cycles_interrupt, 0u);
    EXPECT_GT(m.clock(c), 0u);
    EXPECT_FALSE(m.tlb(c).lookup(42));
  }
  // Non-targets untouched.
  EXPECT_EQ(m.counters(3).ipis_received, 0u);
  EXPECT_EQ(m.clock(3), 0u);
  // Initiator's own clock is advanced by the caller, not by shootdown().
  EXPECT_EQ(m.clock(0), 0u);
}

TEST(Machine, ShootdownWithEmptyMaskIsFree) {
  Machine m(small_config(4));
  const std::array<UnitIdx, 1> units = {1};
  EXPECT_EQ(m.shootdown(0, 0, CoreMask{}, units), 0u);
  EXPECT_EQ(m.counters(0).shootdowns_initiated, 0u);
}

TEST(MachineDeath, InitiatorInTargetMaskAborts) {
  Machine m(small_config(4));
  CoreMask targets;
  targets.set(0);
  const std::array<UnitIdx, 1> units = {1};
  EXPECT_DEATH(m.shootdown(0, 0, targets, units), "");
}

TEST(Machine, BatchShootdownChargesPerMappedUnit) {
  Machine m(small_config(4));
  m.tlb(1).insert(10);
  m.tlb(1).insert(11);
  m.tlb(2).insert(11);

  CoreMask only1;
  only1.set(1);
  CoreMask both;
  both.set(1);
  both.set(2);
  const std::array<Machine::BatchItem, 2> items = {
      Machine::BatchItem{10, only1}, Machine::BatchItem{11, both}};
  const Cycles cycles = m.shootdown_batch(0, 0, items);
  EXPECT_GT(cycles, 0u);

  // Core 1 maps both units, core 2 only one.
  EXPECT_EQ(m.counters(1).remote_invalidations_received, 2u);
  EXPECT_EQ(m.counters(2).remote_invalidations_received, 1u);
  EXPECT_EQ(m.counters(1).ipis_received, 1u);  // one IPI for the whole batch
  EXPECT_EQ(m.counters(2).ipis_received, 1u);
  EXPECT_FALSE(m.tlb(1).lookup(10));
  EXPECT_FALSE(m.tlb(1).lookup(11));
  EXPECT_FALSE(m.tlb(2).lookup(11));
}

TEST(Machine, BatchShootdownSkipsInitiator) {
  Machine m(small_config(2));
  CoreMask self_only;
  self_only.set(0);
  const std::array<Machine::BatchItem, 1> items = {
      Machine::BatchItem{5, self_only}};
  EXPECT_EQ(m.shootdown_batch(0, 0, items), 0u);
  EXPECT_EQ(m.counters(0).ipis_received, 0u);
}

TEST(Machine, AggregateExcludesScanner) {
  Machine m(small_config(2));
  m.counters(0).major_faults = 5;
  m.counters(1).major_faults = 7;
  m.counters(m.scanner_core()).major_faults = 100;
  EXPECT_EQ(m.aggregate_app_counters().major_faults, 12u);
}

TEST(Machine, TlbSizedForConfiguredPageSize) {
  MachineConfig config = small_config(1);
  config.page_size = PageSizeClass::k2M;
  Machine m(config);
  EXPECT_EQ(m.tlb(0).capacity(), config.tlb.entries_2m);
}

}  // namespace
}  // namespace cmcp::sim
