// sim::trace — exporter schema, track layout, null-sink transparency.
#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>

#include "core/simulation.h"
#include "sim/trace.h"
#include "workloads/workload_factory.h"

namespace cmcp::sim::trace {
namespace {

// Events are appended to a flat vector on the fault path; they must stay
// PODs (no per-event heap traffic, memcpy-able growth).
static_assert(std::is_trivially_copyable_v<Event>);

TEST(TraceEventKind, NamesAndArgNamesCoverEveryKind) {
  for (unsigned k = 0; k < kNumEventKinds; ++k) {
    const auto kind = static_cast<EventKind>(k);
    EXPECT_NE(to_string(kind), "?") << k;
    // arg_names must not crash and yields exactly 3 entries per kind.
    EXPECT_EQ(arg_names(kind).size(), 3u);
  }
}

TEST(TraceFormat, ParseRoundTrip) {
  Format f = Format::kJsonl;
  EXPECT_TRUE(parse_format("perfetto", &f));
  EXPECT_EQ(f, Format::kPerfetto);
  EXPECT_TRUE(parse_format("jsonl", &f));
  EXPECT_EQ(f, Format::kJsonl);
  EXPECT_FALSE(parse_format("csv", &f));
  EXPECT_EQ(to_string(Format::kPerfetto), "perfetto");
  EXPECT_EQ(to_string(Format::kJsonl), "jsonl");
}

TEST(TraceSink, TrackLayoutFollowsAppCores) {
  EventSink sink;
  sink.set_num_app_cores(8);
  EXPECT_EQ(sink.scanner_track(), 8u);
  EXPECT_EQ(sink.pcie_h2d_track(), 9u);
  EXPECT_EQ(sink.pcie_d2h_track(), 10u);
  EXPECT_EQ(sink.slot_track(), 11u);
}

// Golden-file check of the Perfetto exporter: the exact byte layout is part
// of the determinism contract (identical config => byte-identical trace).
TEST(TracePerfetto, GoldenExport) {
  EventSink sink;
  sink.set_num_app_cores(2);
  sink.emit({EventKind::kMinorFault, 0, 100, 7, 3, 2, 1, 0});
  // dir=1 (device->host) routes to the d2h track, core kept in args.
  sink.emit({EventKind::kPcieTransfer, 1, 200, 50, 4, 1, 4096, 10});

  std::ostringstream os;
  export_perfetto(sink, {{"workload", "cg"}}, os);

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"core 0\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"core 1\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"scanner\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":3,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"pcie host->device\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":4,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"pcie device->host\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":5,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"invalidation slot\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"minor_fault\",\"ts\":100,"
      "\"dur\":7,\"args\":{\"unit\":3,\"core_map_count\":2,"
      "\"prefetch_hit\":1}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":4,\"name\":\"pcie_transfer\","
      "\"ts\":200,\"dur\":50,\"args\":{\"unit\":4,\"dir\":1,\"bytes\":4096,"
      "\"queue_wait\":10,\"core\":1}}\n"
      "],\n"
      "\"displayTimeUnit\":\"ms\",\n"
      "\"metadata\":{\"clock_unit\":\"cycles\",\"workload\":\"cg\"}}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TraceJsonl, MetaFirstSummaryLastEventsBetween) {
  EventSink sink;
  sink.set_num_app_cores(1);
  sink.emit({EventKind::kShootdown, 0, 10, 5, 7, 3, 1, 2});
  sink.emit({EventKind::kShootdown, 0, 20, 5, 8, 3, 1, 0});

  std::ostringstream os;
  export_jsonl(sink, {{"seed", "42"}}, {{"makespan", 1234}}, os);
  std::istringstream in(os.str());

  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0],
            "{\"type\":\"meta\",\"schema\":1,\"clock_unit\":\"cycles\","
            "\"cores\":1,\"config\":{\"seed\":\"42\"}}");
  EXPECT_EQ(lines[1],
            "{\"type\":\"event\",\"kind\":\"shootdown\",\"core\":0,"
            "\"ts\":10,\"dur\":5,\"args\":{\"unit\":7,\"targets\":3,"
            "\"units\":1,\"slot_wait\":2}}");
  EXPECT_EQ(lines[3],
            "{\"type\":\"summary\",\"events\":2,\"by_kind\":{\"shootdown\":2},"
            "\"makespan\":1234}");
}

core::SimulationResult run_small(EventSink* sink) {
  wl::WorkloadParams params;
  params.cores = 4;
  params.scale = 0.1;
  params.seed = 7;
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kCg, params);
  core::SimulationConfig config;
  config.machine.num_cores = 4;
  config.memory_fraction = wl::paper_memory_fraction(wl::PaperWorkload::kCg);
  config.policy.kind = PolicyKind::kCmcp;
  config.trace = sink;
  return core::run_simulation(config, *w);
}

// The null sink is the disabled state: attaching a sink must not change any
// virtual-time outcome, and a disabled run must record nothing.
TEST(TraceNullSink, TracingDoesNotPerturbTheRun) {
  EventSink sink;
  const auto traced = run_small(&sink);
  const auto plain = run_small(nullptr);

  EXPECT_EQ(traced.makespan, plain.makespan);
  EXPECT_EQ(traced.app_total.major_faults, plain.app_total.major_faults);
  EXPECT_EQ(traced.app_total.minor_faults, plain.app_total.minor_faults);
  EXPECT_EQ(traced.app_total.remote_invalidations_received,
            plain.app_total.remote_invalidations_received);
  EXPECT_EQ(traced.app_total.evictions, plain.app_total.evictions);

  EXPECT_FALSE(sink.empty());
  EXPECT_EQ(sink.num_app_cores(), 4u);

  // A memory-constrained run exercises the whole taxonomy's core subset.
  bool saw[kNumEventKinds] = {};
  for (const Event& e : sink.events()) saw[static_cast<unsigned>(e.kind)] = true;
  EXPECT_TRUE(saw[static_cast<unsigned>(EventKind::kMajorFault)]);
  EXPECT_TRUE(saw[static_cast<unsigned>(EventKind::kVictimPick)]);
  EXPECT_TRUE(saw[static_cast<unsigned>(EventKind::kEviction)]);
  EXPECT_TRUE(saw[static_cast<unsigned>(EventKind::kShootdown)]);
  EXPECT_TRUE(saw[static_cast<unsigned>(EventKind::kPcieTransfer)]);
}

// Events arrive in deterministic order with sane timestamps.
TEST(TraceSink, EventsHaveBoundedTimestamps) {
  EventSink sink;
  const auto result = run_small(&sink);
  for (const Event& e : sink.events()) {
    EXPECT_LE(e.start, result.makespan);
    EXPECT_LE(e.duration, result.makespan);
  }
}

}  // namespace
}  // namespace cmcp::sim::trace
