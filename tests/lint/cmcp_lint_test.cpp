// Tests for the domain linter (src/lint): every rule in the catalog must
// fire on its fixture, the negative fixtures must stay clean, suppression
// comments must work, and the CLI must follow the repo's exit-code
// convention (0 clean / 1 findings / 2 usage error — same as
// bench_compare).
#include "lint/lint.h"

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint/lexer.h"

namespace cmcp::lint {
namespace {

std::string fixture_root() {
  return std::string(CMCP_TEST_DATA_DIR) + "/lint_fixtures";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Lint a fixture file under its repo-relative effective path.
std::vector<Finding> lint_fixture(const std::string& rel) {
  return lint_source(rel, read_file(fixture_root() + "/" + rel));
}

std::map<std::string, int> count_by_rule(const std::vector<Finding>& fs) {
  std::map<std::string, int> counts;
  for (const Finding& f : fs) ++counts[f.rule];
  return counts;
}

// ---------------------------------------------------------------------------
// Per-rule fixtures: exact finding counts
// ---------------------------------------------------------------------------

TEST(CmcpLint, HashKeyedIndexFixture) {
  const auto fs = lint_fixture("src/mm/bad_hash_key.h");
  EXPECT_EQ(fs.size(), 2u);
  EXPECT_EQ(count_by_rule(fs)["hash-keyed-index"], 2);
}

TEST(CmcpLint, PointerKeyFixture) {
  const auto fs = lint_fixture("src/core/bad_pointer_key.h");
  auto counts = count_by_rule(fs);
  EXPECT_EQ(fs.size(), 2u);
  EXPECT_EQ(counts["ordered-pointer-key"], 1);
  EXPECT_EQ(counts["hashed-pointer-key"], 1);
}

TEST(CmcpLint, AddressCastFixture) {
  const auto fs = lint_fixture("src/sim/bad_address_cast.cpp");
  EXPECT_EQ(fs.size(), 2u);
  EXPECT_EQ(count_by_rule(fs)["pointer-address-cast"], 2);
}

TEST(CmcpLint, WallclockFixture) {
  const auto fs = lint_fixture("src/core/bad_wallclock.cpp");
  EXPECT_EQ(fs.size(), 4u);
  EXPECT_EQ(count_by_rule(fs)["wallclock-time"], 4);
}

TEST(CmcpLint, EntropyFixture) {
  const auto fs = lint_fixture("src/policy/bad_entropy.cpp");
  EXPECT_EQ(fs.size(), 3u);
  EXPECT_EQ(count_by_rule(fs)["unseeded-entropy"], 3);
}

TEST(CmcpLint, FloatTimeFixture) {
  const auto fs = lint_fixture("src/sim/bad_float_time.cpp");
  EXPECT_EQ(fs.size(), 2u);
  EXPECT_EQ(count_by_rule(fs)["float-virtual-time"], 2);
}

TEST(CmcpLint, CheckSideEffectFixture) {
  const auto fs = lint_fixture("src/core/bad_check_side_effect.cpp");
  EXPECT_EQ(fs.size(), 2u);
  EXPECT_EQ(count_by_rule(fs)["check-side-effect"], 2);
}

TEST(CmcpLint, RawMutexFixture) {
  const auto fs = lint_fixture("src/metrics/bad_raw_mutex.cpp");
  EXPECT_EQ(fs.size(), 3u);
  EXPECT_EQ(count_by_rule(fs)["raw-mutex"], 3);
}

TEST(CmcpLint, StrayThreadFixture) {
  const auto fs = lint_fixture("src/core/bad_stray_thread.cpp");
  EXPECT_EQ(fs.size(), 2u);
  EXPECT_EQ(count_by_rule(fs)["stray-thread"], 2);
}

TEST(CmcpLint, VolatileFixture) {
  const auto fs = lint_fixture("src/mm/bad_volatile.h");
  EXPECT_EQ(fs.size(), 1u);
  EXPECT_EQ(count_by_rule(fs)["volatile-qualifier"], 1);
}

TEST(CmcpLint, UnorderedIterationFixture) {
  const auto fs = lint_fixture("src/core/bad_unordered_iteration.cpp");
  EXPECT_EQ(fs.size(), 2u);
  EXPECT_EQ(count_by_rule(fs)["unordered-iteration"], 2);
}

// ---------------------------------------------------------------------------
// Negative fixtures
// ---------------------------------------------------------------------------

TEST(CmcpLint, SuppressionCommentsSilenceFindings) {
  EXPECT_TRUE(lint_fixture("src/core/suppressed_ok.cpp").empty());
}

TEST(CmcpLint, NearMissPatternsStayClean) {
  EXPECT_TRUE(lint_fixture("src/common/clean_near_miss.cpp").empty());
}

TEST(CmcpLint, PathScopingExemptsTestsAndDocs) {
  // The same offending content outside src/tools/bench triggers nothing:
  // every rule is scoped to the directories whose contracts it enforces.
  const std::string bad = read_file(fixture_root() + "/src/mm/bad_hash_key.h");
  EXPECT_TRUE(lint_source("tests/mm/bad_hash_key.h", bad).empty());
  EXPECT_TRUE(lint_source("docs/example.h", bad).empty());
}

TEST(CmcpLint, SanctionedOwnersAreExempt) {
  // The wrapper files themselves may use the primitives they encapsulate.
  EXPECT_TRUE(
      lint_source("src/common/mutex.h", "std::mutex mu_;").empty());
  EXPECT_TRUE(
      lint_source("src/common/rng.cpp", "std::mt19937_64 engine_;").empty());
  EXPECT_TRUE(
      lint_source("bench/wallclock.cpp",
                  "auto t = std::chrono::steady_clock::now();")
          .empty());
  // ...but only those exact files.
  EXPECT_FALSE(
      lint_source("src/common/other.h", "std::mutex mu_;").empty());
}

TEST(CmcpLint, StrayThreadSanctionsExactlyTheTwoPools) {
  // The engine's worker pool and the experiment runner are the only files
  // allowed to create threads; the same tokens anywhere else — including a
  // sibling in src/common — still fire.
  const std::string src = "std::thread t_; std::atomic<int> n_;";
  EXPECT_TRUE(lint_source("src/common/worker_pool.h", src).empty());
  EXPECT_TRUE(lint_source("src/common/worker_pool.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/metrics/parallel_runner.cpp", src).empty());
  EXPECT_EQ(lint_source("src/common/other_pool.cpp", src).size(), 2u);
  EXPECT_EQ(lint_source("src/sim/machine.cpp", src).size(), 2u);
  EXPECT_EQ(count_by_rule(lint_source("src/common/other_pool.cpp",
                                      src))["stray-thread"],
            2);
}

// ---------------------------------------------------------------------------
// Catalog coverage: every advertised rule has a firing fixture
// ---------------------------------------------------------------------------

TEST(CmcpLint, EveryCatalogRuleHasAFiringFixture) {
  const char* kFixtures[] = {
      "src/mm/bad_hash_key.h",          "src/core/bad_pointer_key.h",
      "src/sim/bad_address_cast.cpp",   "src/core/bad_wallclock.cpp",
      "src/policy/bad_entropy.cpp",     "src/sim/bad_float_time.cpp",
      "src/core/bad_check_side_effect.cpp", "src/metrics/bad_raw_mutex.cpp",
      "src/core/bad_stray_thread.cpp",  "src/mm/bad_volatile.h",
      "src/core/bad_unordered_iteration.cpp"};
  std::set<std::string> fired;
  for (const char* rel : kFixtures)
    for (const Finding& f : lint_fixture(rel)) fired.insert(f.rule);
  ASSERT_GE(rule_catalog().size(), 10u) << "catalog shrank below the floor";
  for (const RuleInfo& rule : rule_catalog())
    EXPECT_TRUE(fired.count(std::string(rule.id)))
        << "no fixture fires rule " << rule.id;
}

// ---------------------------------------------------------------------------
// Engine details
// ---------------------------------------------------------------------------

TEST(CmcpLint, StringsAndCommentsAreNotCode) {
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "const char* s = \"std::mutex volatile rand()\";\n"
                          "// std::thread in a comment\n"
                          "/* time(nullptr) in a block comment */\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "const char* s = R\"(std::mutex volatile)\";\n")
                  .empty());
}

TEST(CmcpLint, AllowanceCoversNextCodeLineAfterCommentBlock) {
  const std::string src =
      "// cmcp-lint: allow(volatile-qualifier) — hardware register doc,\n"
      "// continued justification prose on a second comment line.\n"
      "volatile int reg;\n"
      "volatile int unexcused;\n";
  const auto fs = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 4u);
}

TEST(CmcpLint, WildcardAllowSilencesAllRules) {
  const auto fs = lint_source(
      "src/core/x.cpp",
      "volatile int reg;  // cmcp-lint: allow(*) — fixture escape hatch\n");
  EXPECT_TRUE(fs.empty());
}

TEST(CmcpLint, FindingsAreSortedDeterministically) {
  auto fs = lint_fixture("src/core/bad_wallclock.cpp");
  for (std::size_t i = 1; i < fs.size(); ++i) {
    EXPECT_LE(fs[i - 1].line, fs[i].line);
  }
}

TEST(CmcpLintLexer, TracksLinesThroughContinuationsAndRawStrings) {
  const auto r = lex("#define M(x) \\\n  (x)\nint a;\nR\"(two\nlines)\" int b;\n");
  // `int a;` must be on line 3 (the continuation consumed line 1-2), and
  // `int b;` on line 5 (the raw string body spans lines 4-5).
  unsigned line_a = 0, line_b = 0;
  for (std::size_t i = 0; i + 1 < r.tokens.size(); ++i) {
    if (r.tokens[i].text == "a") line_a = r.tokens[i].line;
    if (r.tokens[i].text == "b") line_b = r.tokens[i].line;
  }
  EXPECT_EQ(line_a, 3u);
  EXPECT_EQ(line_b, 5u);
}

TEST(CmcpLintLexer, FloatLiteralClassification) {
  EXPECT_TRUE(is_float_literal("1.5"));
  EXPECT_TRUE(is_float_literal("1e9"));
  EXPECT_TRUE(is_float_literal("2.f"));
  EXPECT_TRUE(is_float_literal("0x1p-3"));
  EXPECT_FALSE(is_float_literal("42"));
  EXPECT_FALSE(is_float_literal("0xFF"));
  EXPECT_FALSE(is_float_literal("1'000'000"));
  EXPECT_FALSE(is_float_literal("0xfeed"));  // trailing hex 'd', not a suffix
}

// ---------------------------------------------------------------------------
// CLI exit codes (bench_compare convention: 0 clean / 1 findings / 2 error)
// ---------------------------------------------------------------------------

int run_tool(const std::string& args) {
  const std::string cmd = std::string(CMCP_LINT_BIN) + " " + args +
                          " > /dev/null 2> /dev/null";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CmcpLintCli, ExitCodesFollowTheRepoConvention) {
  const std::string root = fixture_root();
  EXPECT_EQ(run_tool("--root " + root), 1) << "fixture tree must report findings";
  EXPECT_EQ(run_tool("--root " + root + " " + root +
                     "/src/common/clean_near_miss.cpp"),
            0)
      << "clean file must exit 0";
  EXPECT_EQ(run_tool("--root /nonexistent-cmcp-lint-root"), 2);
  EXPECT_EQ(run_tool("--bogus-flag"), 2);
  EXPECT_EQ(run_tool("--list-rules"), 0);
}

}  // namespace
}  // namespace cmcp::lint
