#include "testing/policy_harness.h"

#include <unordered_set>

namespace cmcp::testing {

std::uint64_t run_trace(policy::ReplacementPolicy& policy, PageFactory& pages,
                        const std::vector<UnitIdx>& trace,
                        std::uint64_t capacity) {
  std::unordered_set<UnitIdx> resident;
  std::uint64_t faults = 0;
  for (const UnitIdx unit : trace) {
    if (resident.contains(unit)) continue;
    ++faults;
    if (resident.size() >= capacity) {
      Cycles extra = 0;
      mm::ResidentPage* victim = policy.pick_victim(/*faulting_core=*/0, extra);
      CMCP_CHECK(victim != nullptr);
      resident.erase(victim->unit);
      policy.on_evict(*victim);
      pages.registry().erase(*victim);
    }
    policy.on_insert(pages.make(unit));
    resident.insert(unit);
  }
  return faults;
}

}  // namespace cmcp::testing
