// Shared test scaffolding: a fake PolicyHost and a page factory so policy
// unit tests can drive replacement logic without a machine or page tables.
#pragma once

#include <deque>

#include "mm/page_registry.h"
#include "policy/replacement_policy.h"

namespace cmcp::testing {

class FakePolicyHost final : public policy::PolicyHost {
 public:
  FakePolicyHost(std::uint64_t capacity, unsigned cores)
      : capacity_(capacity), cores_(cores) {}

  std::uint64_t capacity_units() const override { return capacity_; }
  unsigned num_cores() const override { return cores_; }

  bool unit_accessed(const mm::ResidentPage& page) const override {
    return page.unit < accessed_.size() && accessed_[page.unit];
  }

  Cycles core_clock(CoreId /*core*/) const override { return 0; }

  Cycles clear_accessed_and_shootdown(mm::ResidentPage& page,
                                      CoreId /*initiator*/,
                                      Cycles /*now*/) override {
    if (page.unit < accessed_.size() && accessed_[page.unit]) {
      accessed_[page.unit] = false;
      ++shootdowns_;
      return shootdown_cost;
    }
    return 0;
  }

  void set_accessed(UnitIdx unit, bool value = true) {
    if (unit >= accessed_.size()) accessed_.resize(unit + 1, false);
    accessed_[unit] = value;
  }

  std::uint64_t shootdowns() const { return shootdowns_; }

  Cycles shootdown_cost = 1000;

 private:
  std::uint64_t capacity_;
  unsigned cores_;
  std::deque<bool> accessed_;
  std::uint64_t shootdowns_ = 0;
};

/// Owns ResidentPage objects for policy tests (pointer-stable).
class PageFactory {
 public:
  mm::ResidentPage& make(UnitIdx unit, unsigned core_map_count = 1) {
    mm::ResidentPage& pg = registry_.insert(unit, next_pfn_++, /*now=*/0);
    pg.core_map_count = core_map_count;
    return pg;
  }

  mm::PageRegistry& registry() { return registry_; }

 private:
  mm::PageRegistry registry_;
  Pfn next_pfn_ = 0;
};

/// Run a policy through an access trace with the given capacity, evicting
/// via pick_victim when full. Returns the number of "faults" (insertions).
std::uint64_t run_trace(policy::ReplacementPolicy& policy, PageFactory& pages,
                        const std::vector<UnitIdx>& trace,
                        std::uint64_t capacity);

/// Single-stat probe for test assertions, built on the stats() visitor
/// (the supported enumeration API). Unknown keys return 0.
inline std::uint64_t stat_of(const policy::ReplacementPolicy& policy,
                             std::string_view key) {
  std::uint64_t out = 0;
  policy.stats([&](std::string_view name, std::uint64_t value) {
    if (name == key) out = value;
  });
  return out;
}

}  // namespace cmcp::testing
