#include "mm/frame_allocator.h"

#include <gtest/gtest.h>

#include <set>

namespace cmcp::mm {
namespace {

TEST(FrameAllocator, AllocatesUpToCapacity) {
  FrameAllocator alloc(3, PageSizeClass::k4K);
  std::set<Pfn> frames;
  for (int i = 0; i < 3; ++i) {
    const Pfn pfn = alloc.allocate();
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_TRUE(frames.insert(pfn).second) << "duplicate frame";
  }
  EXPECT_EQ(alloc.allocate(), kInvalidPfn);
  EXPECT_TRUE(alloc.full());
  EXPECT_EQ(alloc.in_use(), 3u);
}

TEST(FrameAllocator, FreeMakesFrameReusable) {
  FrameAllocator alloc(1, PageSizeClass::k4K);
  const Pfn pfn = alloc.allocate();
  EXPECT_EQ(alloc.allocate(), kInvalidPfn);
  alloc.free(pfn);
  EXPECT_EQ(alloc.in_use(), 0u);
  EXPECT_EQ(alloc.allocate(), pfn);
}

TEST(FrameAllocator, FramesAlignedFor64k) {
  // The Phi 64 kB format requires the first sub-entry to map a 64 kB
  // aligned physical frame (paper section 4).
  FrameAllocator alloc(8, PageSizeClass::k64K);
  for (int i = 0; i < 8; ++i) {
    const Pfn pfn = alloc.allocate();
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_EQ(pfn % 16, 0u) << "64kB frame misaligned";
  }
}

TEST(FrameAllocator, FramesAlignedFor2M) {
  FrameAllocator alloc(4, PageSizeClass::k2M);
  for (int i = 0; i < 4; ++i) {
    const Pfn pfn = alloc.allocate();
    EXPECT_EQ(pfn % 512, 0u);
  }
}

TEST(FrameAllocator, ChurnNeverLosesFrames) {
  FrameAllocator alloc(16, PageSizeClass::k4K);
  std::vector<Pfn> held;
  std::uint64_t state = 99;
  for (int step = 0; step < 5000; ++step) {
    state = state * 6364136223846793005ULL + 1;
    if ((state >> 33) % 2 == 0 && !alloc.full()) {
      held.push_back(alloc.allocate());
    } else if (!held.empty()) {
      alloc.free(held.back());
      held.pop_back();
    }
    EXPECT_EQ(alloc.in_use(), held.size());
  }
}

TEST(FrameAllocator, QuarantineRetiresFrameForTheRun) {
  FrameAllocator alloc(2, PageSizeClass::k4K);
  const Pfn a = alloc.allocate();
  const Pfn b = alloc.allocate();
  alloc.quarantine(a);
  EXPECT_TRUE(alloc.is_quarantined(a));
  EXPECT_FALSE(alloc.is_quarantined(b));
  EXPECT_EQ(alloc.quarantined_count(), 1u);
  EXPECT_EQ(alloc.usable_capacity(), 1u);
  // Quarantined frames are neither free nor in use, and carry no owner.
  EXPECT_EQ(alloc.in_use(), 1u);
  EXPECT_EQ(alloc.free_count(), 0u);
  EXPECT_EQ(alloc.owner_of(a), kInvalidAsid);
  // The retired frame never comes back: the pool is exhausted at 1 frame.
  EXPECT_EQ(alloc.allocate(), kInvalidPfn);
  alloc.free(b);
  EXPECT_EQ(alloc.allocate(), b);
}

TEST(FrameAllocator, TenantExitSkipsQuarantinedFrames) {
  // Quarantine-then-tenant-exit: release_all must reclaim only the frames
  // still charged to the tenant — a quarantined frame was already uncharged
  // and must NOT return to the free pool with ECC poison on it.
  FrameAllocator alloc(4, PageSizeClass::k4K);
  const Pfn a = alloc.allocate(1);
  const Pfn b = alloc.allocate(1);
  const Pfn c = alloc.allocate(1);
  alloc.quarantine(b);
  EXPECT_EQ(alloc.in_use_by(1), 2u);
  EXPECT_EQ(alloc.release_all(1), 2u);
  EXPECT_EQ(alloc.in_use_by(1), 0u);
  EXPECT_EQ(alloc.in_use(), 0u);
  EXPECT_TRUE(alloc.is_quarantined(b));
  EXPECT_EQ(alloc.usable_capacity(), 3u);
  // Only the 3 usable frames are servable after the exit.
  std::set<Pfn> served;
  for (int i = 0; i < 3; ++i) {
    const Pfn pfn = alloc.allocate();
    ASSERT_NE(pfn, kInvalidPfn);
    served.insert(pfn);
  }
  EXPECT_EQ(alloc.allocate(), kInvalidPfn);
  EXPECT_EQ(served.count(b), 0u) << "quarantined frame re-served";
  EXPECT_EQ(served.count(a), 1u);
  EXPECT_EQ(served.count(c), 1u);
}

TEST(FrameAllocatorDeath, DoubleFreeAborts) {
  FrameAllocator alloc(2, PageSizeClass::k4K);
  const Pfn pfn = alloc.allocate();
  alloc.free(pfn);
  EXPECT_DEATH(alloc.free(pfn), "");
}

TEST(FrameAllocatorDeath, MisalignedFreeAborts) {
  FrameAllocator alloc(2, PageSizeClass::k64K);
  EXPECT_DEATH(alloc.free(3), "");
}

TEST(FrameAllocatorDeath, QuarantineOfFreeFrameAborts) {
  FrameAllocator alloc(2, PageSizeClass::k4K);
  const Pfn pfn = alloc.allocate();
  alloc.free(pfn);
  EXPECT_DEATH(alloc.quarantine(pfn), "");
}

TEST(FrameAllocatorDeath, FreeOfQuarantinedFrameAborts) {
  FrameAllocator alloc(2, PageSizeClass::k4K);
  const Pfn pfn = alloc.allocate();
  alloc.quarantine(pfn);
  EXPECT_DEATH(alloc.free(pfn), "");
}

}  // namespace
}  // namespace cmcp::mm
