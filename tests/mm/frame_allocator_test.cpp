#include "mm/frame_allocator.h"

#include <gtest/gtest.h>

#include <set>

namespace cmcp::mm {
namespace {

TEST(FrameAllocator, AllocatesUpToCapacity) {
  FrameAllocator alloc(3, PageSizeClass::k4K);
  std::set<Pfn> frames;
  for (int i = 0; i < 3; ++i) {
    const Pfn pfn = alloc.allocate();
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_TRUE(frames.insert(pfn).second) << "duplicate frame";
  }
  EXPECT_EQ(alloc.allocate(), kInvalidPfn);
  EXPECT_TRUE(alloc.full());
  EXPECT_EQ(alloc.in_use(), 3u);
}

TEST(FrameAllocator, FreeMakesFrameReusable) {
  FrameAllocator alloc(1, PageSizeClass::k4K);
  const Pfn pfn = alloc.allocate();
  EXPECT_EQ(alloc.allocate(), kInvalidPfn);
  alloc.free(pfn);
  EXPECT_EQ(alloc.in_use(), 0u);
  EXPECT_EQ(alloc.allocate(), pfn);
}

TEST(FrameAllocator, FramesAlignedFor64k) {
  // The Phi 64 kB format requires the first sub-entry to map a 64 kB
  // aligned physical frame (paper section 4).
  FrameAllocator alloc(8, PageSizeClass::k64K);
  for (int i = 0; i < 8; ++i) {
    const Pfn pfn = alloc.allocate();
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_EQ(pfn % 16, 0u) << "64kB frame misaligned";
  }
}

TEST(FrameAllocator, FramesAlignedFor2M) {
  FrameAllocator alloc(4, PageSizeClass::k2M);
  for (int i = 0; i < 4; ++i) {
    const Pfn pfn = alloc.allocate();
    EXPECT_EQ(pfn % 512, 0u);
  }
}

TEST(FrameAllocator, ChurnNeverLosesFrames) {
  FrameAllocator alloc(16, PageSizeClass::k4K);
  std::vector<Pfn> held;
  std::uint64_t state = 99;
  for (int step = 0; step < 5000; ++step) {
    state = state * 6364136223846793005ULL + 1;
    if ((state >> 33) % 2 == 0 && !alloc.full()) {
      held.push_back(alloc.allocate());
    } else if (!held.empty()) {
      alloc.free(held.back());
      held.pop_back();
    }
    EXPECT_EQ(alloc.in_use(), held.size());
  }
}

TEST(FrameAllocatorDeath, DoubleFreeAborts) {
  FrameAllocator alloc(2, PageSizeClass::k4K);
  const Pfn pfn = alloc.allocate();
  alloc.free(pfn);
  EXPECT_DEATH(alloc.free(pfn), "");
}

TEST(FrameAllocatorDeath, MisalignedFreeAborts) {
  FrameAllocator alloc(2, PageSizeClass::k64K);
  EXPECT_DEATH(alloc.free(3), "");
}

}  // namespace
}  // namespace cmcp::mm
