#include "mm/address.h"

#include <gtest/gtest.h>

namespace cmcp::mm {
namespace {

TEST(PageSizeMath, UnitGeometry) {
  EXPECT_EQ(base_pages_per_unit(PageSizeClass::k4K), 1u);
  EXPECT_EQ(base_pages_per_unit(PageSizeClass::k64K), 16u);
  EXPECT_EQ(base_pages_per_unit(PageSizeClass::k2M), 512u);
  EXPECT_EQ(unit_bytes(PageSizeClass::k4K), 4096u);
  EXPECT_EQ(unit_bytes(PageSizeClass::k64K), 65536u);
  EXPECT_EQ(unit_bytes(PageSizeClass::k2M), 2u * 1024 * 1024);
}

TEST(PageSizeMath, UnitOfAndFirstVpnRoundTrip) {
  for (const PageSizeClass c :
       {PageSizeClass::k4K, PageSizeClass::k64K, PageSizeClass::k2M}) {
    const Vpn vpn = 12345;
    const UnitIdx unit = unit_of(vpn, c);
    EXPECT_LE(first_vpn(unit, c), vpn);
    EXPECT_GT(first_vpn(unit + 1, c), vpn);
  }
}

TEST(ComputationArea, ContainsAndUnitOf) {
  const ComputationArea area(512, 1000, PageSizeClass::k4K);
  EXPECT_TRUE(area.contains(512));
  EXPECT_TRUE(area.contains(1511));
  EXPECT_FALSE(area.contains(511));
  EXPECT_FALSE(area.contains(1512));
  EXPECT_EQ(area.unit_of(512), 0u);
  EXPECT_EQ(area.unit_of(1511), 999u);
  EXPECT_EQ(area.num_units(), 1000u);
}

TEST(ComputationArea, RoundsUpToWholeUnits) {
  const ComputationArea area(0, 100, PageSizeClass::k64K);
  // 100 base pages -> ceil(100/16) = 7 units of 64 kB.
  EXPECT_EQ(area.num_units(), 7u);
  EXPECT_EQ(area.unit_of(0), 0u);
  EXPECT_EQ(area.unit_of(15), 0u);
  EXPECT_EQ(area.unit_of(16), 1u);
  EXPECT_EQ(area.unit_of(99), 6u);
}

TEST(ComputationArea, Alignment2M) {
  const ComputationArea area(512, 2048, PageSizeClass::k2M);
  EXPECT_EQ(area.num_units(), 4u);
  EXPECT_EQ(area.unit_of(512), 0u);
  EXPECT_EQ(area.unit_of(1023), 0u);
  EXPECT_EQ(area.unit_of(1024), 1u);
}

TEST(ComputationArea, FootprintBytes) {
  const ComputationArea area(0, 256, PageSizeClass::k4K);
  EXPECT_EQ(area.footprint_bytes(), 256u * 4096);
}

TEST(ComputationAreaDeath, MisalignedBaseAborts) {
  EXPECT_DEATH(ComputationArea(8, 100, PageSizeClass::k64K), "misaligned");
  EXPECT_DEATH(ComputationArea(100, 1000, PageSizeClass::k2M), "misaligned");
}

TEST(ComputationAreaDeath, OutOfRangeUnitOfAborts) {
  const ComputationArea area(0, 10, PageSizeClass::k4K);
  EXPECT_DEATH(area.unit_of(10), "");
}

}  // namespace
}  // namespace cmcp::mm
