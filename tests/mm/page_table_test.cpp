// Behavioural contract tests for both page table organizations, run as a
// typed suite where the semantics agree, plus the organization-specific
// differences the paper's whole argument is built on.
#include <gtest/gtest.h>

#include <memory>

#include "mm/page_table.h"
#include "mm/pspt.h"
#include "mm/regular_page_table.h"

namespace cmcp::mm {
namespace {

constexpr CoreId kCores = 8;

class PageTableContractTest : public ::testing::TestWithParam<PageTableKind> {
 protected:
  void SetUp() override {
    if (GetParam() == PageTableKind::kRegular)
      pt_ = std::make_unique<RegularPageTable>(kCores);
    else
      pt_ = std::make_unique<Pspt>(kCores);
  }

  std::unique_ptr<PageTable> pt_;
};

TEST_P(PageTableContractTest, UnmappedUnitHasNothing) {
  EXPECT_FALSE(pt_->any_mapping(7));
  EXPECT_FALSE(pt_->has_mapping(0, 7));
  EXPECT_EQ(pt_->pfn_of(7), kInvalidPfn);
  EXPECT_EQ(pt_->core_map_count(7), 0u);
  EXPECT_TRUE(pt_->mapping_cores(7).none());
  EXPECT_EQ(pt_->mapped_units(), 0u);
}

TEST_P(PageTableContractTest, MapMakesUnitVisible) {
  pt_->map(2, 7, 100);
  EXPECT_TRUE(pt_->any_mapping(7));
  EXPECT_TRUE(pt_->has_mapping(2, 7));
  EXPECT_EQ(pt_->pfn_of(7), 100u);
  EXPECT_EQ(pt_->mapped_units(), 1u);
}

TEST_P(PageTableContractTest, UnmapAllRemovesEverything) {
  pt_->map(1, 3, 50);
  const CoreMask affected = pt_->unmap_all(3);
  EXPECT_TRUE(affected.any());
  EXPECT_FALSE(pt_->any_mapping(3));
  EXPECT_FALSE(pt_->has_mapping(1, 3));
  EXPECT_EQ(pt_->pfn_of(3), kInvalidPfn);
}

TEST_P(PageTableContractTest, AccessedBitLifecycle) {
  pt_->map(0, 9, 10);
  unsigned reads = 0;
  EXPECT_FALSE(pt_->test_accessed(9, &reads));
  pt_->mark_accessed(0, 9);
  EXPECT_TRUE(pt_->test_accessed(9, nullptr));
  EXPECT_TRUE(pt_->clear_accessed(9));
  EXPECT_FALSE(pt_->test_accessed(9, nullptr));
  EXPECT_FALSE(pt_->clear_accessed(9));  // second clear finds nothing
}

TEST_P(PageTableContractTest, DirtyBitLifecycle) {
  pt_->map(0, 4, 11);
  EXPECT_FALSE(pt_->test_dirty(4));
  pt_->mark_dirty(0, 4);
  EXPECT_TRUE(pt_->test_dirty(4));
  pt_->clear_dirty(4);
  EXPECT_FALSE(pt_->test_dirty(4));
}

TEST_P(PageTableContractTest, ManyUnitsIndependent) {
  for (UnitIdx u = 0; u < 100; ++u) pt_->map(u % kCores, u, u * 10);
  EXPECT_EQ(pt_->mapped_units(), 100u);
  for (UnitIdx u = 0; u < 100; ++u) EXPECT_EQ(pt_->pfn_of(u), u * 10);
  pt_->unmap_all(50);
  EXPECT_EQ(pt_->mapped_units(), 99u);
  EXPECT_TRUE(pt_->any_mapping(49));
  EXPECT_TRUE(pt_->any_mapping(51));
}

TEST_P(PageTableContractTest, UnmapOfUnmappedAborts) {
  EXPECT_DEATH(pt_->unmap_all(123), "unmap");
}

INSTANTIATE_TEST_SUITE_P(BothKinds, PageTableContractTest,
                         ::testing::Values(PageTableKind::kRegular,
                                           PageTableKind::kPspt),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// --- organization-specific semantics ---------------------------------------

TEST(RegularPageTable, MappingVisibleToEveryCoreAtOnce) {
  RegularPageTable pt(kCores);
  pt.map(0, 5, 42);
  for (CoreId c = 0; c < kCores; ++c) EXPECT_TRUE(pt.has_mapping(c, 5));
}

TEST(RegularPageTable, ShootdownMustTargetAllCores) {
  // Centralized book-keeping cannot tell whose TLB holds the translation.
  RegularPageTable pt(kCores);
  pt.map(3, 5, 42);
  EXPECT_EQ(pt.mapping_cores(5), CoreMask::first_n(kCores));
  EXPECT_EQ(pt.unmap_all(5), CoreMask::first_n(kCores));
}

TEST(RegularPageTable, CoreMapCountIsPessimistic) {
  // "such information cannot be obtained from regular page tables" — the
  // model reports the upper bound.
  RegularPageTable pt(kCores);
  pt.map(0, 5, 42);
  EXPECT_EQ(pt.core_map_count(5), kCores);
}

TEST(Pspt, MappingPrivatePerCore) {
  Pspt pt(kCores);
  pt.map(2, 5, 42);
  EXPECT_TRUE(pt.has_mapping(2, 5));
  for (CoreId c = 0; c < kCores; ++c) {
    if (c != 2) {
      EXPECT_FALSE(pt.has_mapping(c, 5)) << "core " << c;
    }
  }
}

TEST(Pspt, CoreMapCountIsExact) {
  Pspt pt(kCores);
  pt.map(0, 5, 42);
  EXPECT_EQ(pt.core_map_count(5), 1u);
  pt.map(3, 5, 42);
  EXPECT_EQ(pt.core_map_count(5), 2u);
  pt.map(7, 5, 42);
  EXPECT_EQ(pt.core_map_count(5), 3u);
}

TEST(Pspt, ShootdownTargetsOnlyMappingCores) {
  // The red dashed lines of Fig. 3: invalidation hits Core0 and Core1 only.
  Pspt pt(kCores);
  pt.map(0, 5, 42);
  pt.map(1, 5, 42);
  CoreMask expected;
  expected.set(0);
  expected.set(1);
  EXPECT_EQ(pt.mapping_cores(5), expected);
  EXPECT_EQ(pt.unmap_all(5), expected);
}

TEST(Pspt, CoherenceViolationAborts) {
  // Private PTEs for the same VA must define the same translation.
  Pspt pt(kCores);
  pt.map(0, 5, 42);
  EXPECT_DEATH(pt.map(1, 5, 43), "coherence");
}

TEST(Pspt, DoubleMapBySameCoreAborts) {
  Pspt pt(kCores);
  pt.map(0, 5, 42);
  EXPECT_DEATH(pt.map(0, 5, 42), "already maps");
}

TEST(Pspt, AccessedBitAggregatesOverMappingCores) {
  Pspt pt(kCores);
  pt.map(0, 5, 42);
  pt.map(1, 5, 42);
  pt.mark_accessed(1, 5);
  unsigned reads = 0;
  EXPECT_TRUE(pt.test_accessed(5, &reads));
  EXPECT_EQ(reads, 2u);  // scanner must consult both cores' PTEs
  EXPECT_TRUE(pt.clear_accessed(5));
  // Cleared on every core.
  EXPECT_FALSE(pt.test_accessed(5, nullptr));
}

TEST(Pspt, PerCoreMappedUnits) {
  Pspt pt(kCores);
  pt.map(0, 1, 10);
  pt.map(0, 2, 20);
  pt.map(1, 2, 20);
  EXPECT_EQ(pt.mapped_units_of_core(0), 2u);
  EXPECT_EQ(pt.mapped_units_of_core(1), 1u);
  EXPECT_EQ(pt.mapped_units(), 2u);
}

}  // namespace
}  // namespace cmcp::mm
