#include "mm/page_registry.h"

#include <gtest/gtest.h>

#include <set>

namespace cmcp::mm {
namespace {

TEST(PageRegistry, InsertAndFind) {
  PageRegistry reg;
  ResidentPage& pg = reg.insert(7, 100, 500);
  EXPECT_EQ(pg.unit, 7u);
  EXPECT_EQ(pg.pfn, 100u);
  EXPECT_EQ(pg.inserted_at, 500u);
  EXPECT_EQ(reg.find(7), &pg);
  EXPECT_EQ(reg.find(8), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(PageRegistry, SequenceNumbersMonotonic) {
  PageRegistry reg;
  const auto s0 = reg.insert(1, 0, 0).seq;
  const auto s1 = reg.insert(2, 1, 0).seq;
  const auto s2 = reg.insert(3, 2, 0).seq;
  EXPECT_LT(s0, s1);
  EXPECT_LT(s1, s2);
}

TEST(PageRegistry, EraseRemoves) {
  PageRegistry reg;
  ResidentPage& pg = reg.insert(7, 100, 0);
  reg.erase(pg);
  EXPECT_EQ(reg.find(7), nullptr);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(PageRegistry, ReinsertAfterEraseResetsPolicyState) {
  PageRegistry reg;
  ResidentPage& pg = reg.insert(7, 100, 0);
  pg.where = 3;
  pg.bucket = 9;
  pg.referenced = true;
  pg.core_map_count = 5;
  reg.erase(pg);
  ResidentPage& fresh = reg.insert(7, 200, 10);
  EXPECT_EQ(fresh.where, 0);
  EXPECT_EQ(fresh.bucket, 0u);
  EXPECT_FALSE(fresh.referenced);
  EXPECT_EQ(fresh.core_map_count, 0u);
  EXPECT_EQ(fresh.pfn, 200u);
}

TEST(PageRegistry, PointerStabilityAcrossGrowth) {
  PageRegistry reg;
  ResidentPage* first = &reg.insert(0, 0, 0);
  for (UnitIdx u = 1; u < 5000; ++u) reg.insert(u, u, 0);
  EXPECT_EQ(reg.find(0), first);
  EXPECT_EQ(first->unit, 0u);
}

TEST(PageRegistry, SeqKeepsGrowingAcrossReuse) {
  PageRegistry reg;
  ResidentPage& a = reg.insert(1, 0, 0);
  const auto seq_a = a.seq;
  reg.erase(a);
  const auto seq_b = reg.insert(1, 0, 0).seq;
  EXPECT_GT(seq_b, seq_a);
}

TEST(PageRegistry, ForEachVisitsAll) {
  PageRegistry reg;
  for (UnitIdx u = 0; u < 10; ++u) reg.insert(u, u, 0);
  std::set<UnitIdx> seen;
  reg.for_each([&](ResidentPage& pg) { seen.insert(pg.unit); });
  EXPECT_EQ(seen.size(), 10u);
}

TEST(PageRegistryDeath, DoubleInsertAborts) {
  PageRegistry reg;
  reg.insert(7, 0, 0);
  EXPECT_DEATH(reg.insert(7, 1, 0), "already resident");
}

TEST(PageRegistryDeath, EraseWhileOnPolicyListAborts) {
  PageRegistry reg;
  ResidentPage& pg = reg.insert(7, 0, 0);
  ListNode anchor;  // simulate list membership
  pg.main_node.prev = &anchor;
  pg.main_node.next = &anchor;
  EXPECT_DEATH(reg.erase(pg), "policy list");
}

}  // namespace
}  // namespace cmcp::mm
