// SimCheck catches deliberately injected PSPT corruption (the satellite
// "checker detects the bug" coverage): the core-map count and mapping mask
// are corrupted through Pspt's test-only hooks — the way a real accounting
// bug would drift them — and the pspt-consistency checker must localize the
// damage to the right unit/core.
#include "mm/pspt.h"

#include <gtest/gtest.h>

#include <vector>

#include "check/invariant_checkers.h"
#include "core/memory_manager.h"
#include "sim/checker.h"

namespace cmcp::mm {
namespace {

using sim::CheckPoint;
using sim::CheckViolation;

struct Fixture {
  explicit Fixture(std::uint64_t capacity = 16, CoreId cores = 4)
      : machine([&] {
          sim::MachineConfig mc;
          mc.num_cores = cores;
          return mc;
        }()),
        area(0, 64, PageSizeClass::k4K),
        mm(machine, area, [&] {
          core::MemoryManagerConfig config;
          config.pt_kind = PageTableKind::kPspt;
          config.policy.kind = PolicyKind::kCmcp;
          config.capacity_units = capacity;
          return config;
        }()) {
    check::register_default_checkers(registry, mm, machine);
    registry.set_handler(
        [this](const CheckViolation& v) { captured.push_back(v); });
    mm.set_check_registry(&registry);
  }

  void touch(CoreId core, Vpn vpn) {
    machine.advance(core, mm.access(core, vpn, false, machine.clock(core)));
  }

  Pspt& pspt() {
    auto* table = dynamic_cast<Pspt*>(&mm.mutable_page_table_for_test());
    CMCP_CHECK(table != nullptr);
    return *table;
  }

  /// Violations from `checker` only (a corrupt directory also trips the
  /// cached-count cross-checks; tests assert on the primary finding).
  std::vector<CheckViolation> from(std::string_view checker) const {
    std::vector<CheckViolation> out;
    for (const CheckViolation& v : captured)
      if (v.checker == checker) out.push_back(v);
    return out;
  }

  sim::Machine machine;
  ComputationArea area;
  core::MemoryManager mm;
  sim::CheckRegistry registry;
  std::vector<CheckViolation> captured;
};

#if CMCP_SIMCHECK_ENABLED

TEST(PsptInvariant, CleanStateSweepsClean) {
  Fixture f;
  for (CoreId c = 0; c < 4; ++c)
    for (Vpn v = 0; v < 8; ++v) f.touch(c, v);
  f.registry.run_now(CheckPoint::kEndOfRun);
  EXPECT_GT(f.registry.sweeps(), 0u);
  EXPECT_TRUE(f.captured.empty())
      << f.captured[0].checker << "/" << f.captured[0].invariant << ": "
      << f.captured[0].message;
}

TEST(PsptInvariant, CorruptedCountIsReportedWithUnit) {
  Fixture f;
  f.touch(0, 3);
  f.touch(1, 3);  // unit 3 mapped by two cores
  f.pspt().corrupt_count_for_test(3, 7);
  f.registry.run_now(CheckPoint::kEndOfRun);
  const auto violations = f.from("pspt-consistency");
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const CheckViolation& v : violations) {
    if (v.invariant != "core-map-count") continue;
    found = true;
    EXPECT_EQ(v.unit, 3u);
    EXPECT_NE(v.message.find('7'), std::string::npos);
  }
  EXPECT_TRUE(found) << "no core-map-count violation among "
                     << violations.size();
}

TEST(PsptInvariant, CorruptedCountTripsTheCachedCountCrossCheck) {
  // The ResidentPage caches the count the policy ranks on; when the
  // directory drifts, the checker must also flag the stale cache so the
  // diagnostic points at CMCP's actual decision input.
  Fixture f;
  f.touch(0, 5);
  f.pspt().corrupt_count_for_test(5, 3);
  f.registry.run_now(CheckPoint::kEndOfRun);
  bool cached = false;
  for (const CheckViolation& v : f.from("pspt-consistency"))
    if (v.invariant == "cached-count" && v.unit == 5u) cached = true;
  EXPECT_TRUE(cached);
}

TEST(PsptInvariant, MaskGainingCoreWithoutPteIsReported) {
  Fixture f;
  f.touch(0, 2);
  f.pspt().corrupt_mask_add_core_for_test(2, /*core=*/3);
  f.registry.run_now(CheckPoint::kEndOfRun);
  bool found = false;
  for (const CheckViolation& v : f.from("pspt-consistency")) {
    if (v.invariant != "mask-without-pte") continue;
    found = true;
    EXPECT_EQ(v.unit, 2u);
    EXPECT_EQ(v.core, 3u);
  }
  EXPECT_TRUE(found);
}

TEST(PsptInvariant, CheckpointSweepFiresDuringFaults) {
  // The memory manager itself must invoke the registry on its fault path
  // (stride 1 so the very first fault sweeps).
  Fixture f;
  f.registry.set_stride(CheckPoint::kAfterFault, 1);
  f.touch(0, 0);
  EXPECT_GT(f.registry.sweeps(), 0u);
  EXPECT_TRUE(f.captured.empty());
}

TEST(PsptInvariant, CorruptionCaughtAtTheNextCheckpoint) {
  // End-to-end: corrupt, then let the ordinary fault path (not a manual
  // sweep) surface the violation.
  Fixture f;
  f.registry.set_stride(CheckPoint::kAfterFault, 1);
  f.touch(0, 1);
  ASSERT_TRUE(f.captured.empty());
  f.pspt().corrupt_count_for_test(1, 9);
  f.touch(0, 8);  // unrelated fault; the sweep still scans all units
  EXPECT_FALSE(f.from("pspt-consistency").empty());
}

#else

TEST(PsptInvariant, CompiledOut) {
  GTEST_SKIP() << "CMCP_SIMCHECK=OFF: invariant checkpoints compiled out";
}

#endif  // CMCP_SIMCHECK_ENABLED

}  // namespace
}  // namespace cmcp::mm
