// Tests of the Xeon Phi experimental 64 kB PTE group model (paper Fig. 5).
#include "mm/phi64k.h"

#include <gtest/gtest.h>

namespace cmcp::mm {
namespace {

TEST(Phi64k, MapInitializesAll16SubEntries) {
  Phi64kGroup group;
  group.map(32);  // 64 kB aligned (multiple of 16)
  EXPECT_TRUE(group.present());
  EXPECT_EQ(group.base_pfn(), 32u);
  for (unsigned i = 0; i < Phi64kGroup::kSubEntries; ++i) {
    EXPECT_TRUE(group.sub(i).present);
    EXPECT_TRUE(group.sub(i).hint64k);
    EXPECT_EQ(group.sub(i).pfn, 32u + i);
  }
}

TEST(Phi64kDeath, MisalignedFrameAborts) {
  Phi64kGroup group;
  EXPECT_DEATH(group.map(17), "misaligned");
}

TEST(Phi64k, DirtyBitLandsInKPlus1SubEntry) {
  // Paper section 4: "upon the first write instruction in a 64kB mapping the
  // CPU sets the dirty bit of the corresponding 4kB entry (instead of
  // setting it in the first mapping...)" — indicated by the dirty bit set
  // only for PageFrame k+1 in Fig. 5.
  Phi64kGroup group;
  group.map(0);
  group.hw_mark_dirty(/*k=*/3);
  for (unsigned i = 0; i < Phi64kGroup::kSubEntries; ++i)
    EXPECT_EQ(group.sub(i).dirty, i == 4) << "sub-entry " << i;
}

TEST(Phi64k, AccessedBitWorksSimilarly) {
  Phi64kGroup group;
  group.map(0);
  group.hw_mark_accessed(/*k=*/15);  // wraps: lands in sub-entry 0
  EXPECT_TRUE(group.sub(0).accessed);
  for (unsigned i = 1; i < Phi64kGroup::kSubEntries; ++i)
    EXPECT_FALSE(group.sub(i).accessed);
}

TEST(Phi64k, StatsRetrievalIteratesAll16Entries) {
  // "the operating system needs to iterate the 4kB mappings when retrieving
  // statistical information on a 64kB page."
  Phi64kGroup group;
  group.map(0);
  unsigned reads = 0;
  EXPECT_FALSE(group.any_accessed(&reads));
  EXPECT_EQ(reads, 16u);
  group.hw_mark_accessed(7);
  EXPECT_TRUE(group.any_accessed(&reads));
  EXPECT_EQ(reads, 16u);
}

TEST(Phi64k, AnyDirtyDetectsAnySubEntry) {
  Phi64kGroup group;
  group.map(0);
  unsigned reads = 0;
  EXPECT_FALSE(group.any_dirty(&reads));
  group.hw_mark_dirty(9);
  EXPECT_TRUE(group.any_dirty(nullptr));
}

TEST(Phi64k, ClearAccessedResetsEverySubEntry) {
  Phi64kGroup group;
  group.map(0);
  for (unsigned k = 0; k < 16; ++k) group.hw_mark_accessed(k);
  group.clear_accessed();
  EXPECT_FALSE(group.any_accessed(nullptr));
}

TEST(Phi64k, ClearDirtyResetsEverySubEntry) {
  Phi64kGroup group;
  group.map(0);
  group.hw_mark_dirty(0);
  group.hw_mark_dirty(8);
  group.clear_dirty();
  EXPECT_FALSE(group.any_dirty(nullptr));
}

TEST(Phi64k, UnmapClearsPresence) {
  Phi64kGroup group;
  group.map(16);
  group.unmap();
  EXPECT_FALSE(group.present());
  for (unsigned i = 0; i < Phi64kGroup::kSubEntries; ++i)
    EXPECT_FALSE(group.sub(i).present);
}

TEST(Phi64kDeath, HwBitsRequirePresence) {
  Phi64kGroup group;
  EXPECT_DEATH(group.hw_mark_accessed(0), "present");
  EXPECT_DEATH(group.hw_mark_dirty(0), "present");
}

}  // namespace
}  // namespace cmcp::mm
