// FrameAllocator ownership tagging and FramePartition QoS edges: reserve
// floor exhaustion, tenant exit reclaiming frames, and proportional-share
// rounding with tiny capacities — the corners where the partition either
// honors its guarantees or silently starves a tenant.
#include "mm/frame_partition.h"

#include <gtest/gtest.h>

#include <vector>

#include "mm/frame_allocator.h"

namespace cmcp::mm {
namespace {

/// Allocator of `capacity` 4K units (1 frame per unit).
FrameAllocator make_alloc(std::uint64_t capacity) {
  return FrameAllocator(capacity, PageSizeClass::k4K);
}

std::vector<Pfn> take(FrameAllocator& alloc, Asid owner, std::uint64_t n) {
  std::vector<Pfn> pfns;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Pfn pfn = alloc.allocate(owner);
    EXPECT_NE(pfn, kInvalidPfn);
    pfns.push_back(pfn);
  }
  return pfns;
}

// --- FrameAllocator ownership ----------------------------------------------

TEST(FrameAllocatorOwnership, TracksPerTenantCountsAndOwners) {
  FrameAllocator alloc = make_alloc(8);
  const auto a = take(alloc, 0, 3);
  const auto b = take(alloc, 1, 2);
  EXPECT_EQ(alloc.in_use_by(0), 3u);
  EXPECT_EQ(alloc.in_use_by(1), 2u);
  EXPECT_EQ(alloc.in_use(), 5u);
  EXPECT_EQ(alloc.free_count(), 3u);
  for (Pfn pfn : a) EXPECT_EQ(alloc.owner_of(pfn), 0u);
  for (Pfn pfn : b) EXPECT_EQ(alloc.owner_of(pfn), 1u);

  alloc.free(a[1]);
  EXPECT_EQ(alloc.in_use_by(0), 2u);
  EXPECT_EQ(alloc.owner_of(a[1]), kInvalidAsid);
}

TEST(FrameAllocatorOwnership, TenantExitReclaimsEveryFrame) {
  FrameAllocator alloc = make_alloc(6);
  take(alloc, 0, 2);
  take(alloc, 1, 3);
  // Tenant 1 exits: all of its frames return to the free pool in one sweep
  // and become allocatable by the survivor.
  EXPECT_EQ(alloc.release_all(1), 3u);
  EXPECT_EQ(alloc.in_use_by(1), 0u);
  EXPECT_EQ(alloc.in_use(), 2u);
  EXPECT_EQ(alloc.free_count(), 4u);
  take(alloc, 0, 4);
  EXPECT_EQ(alloc.in_use_by(0), 6u);
  EXPECT_TRUE(alloc.full());
  // Releasing an exited (or never-seen) tenant again is a no-op.
  EXPECT_EQ(alloc.release_all(1), 0u);
}

// --- static reserve ---------------------------------------------------------

TEST(FramePartition, StaticReserveEarmarksFloorsOfOthers) {
  // Capacity 10, floors 4 + 4, 2 unreserved.
  FramePartition part(PartitionKind::kStaticReserve, 10,
                      {{.reserve_units = 4}, {.reserve_units = 4}});
  FrameAllocator alloc = make_alloc(10);

  // Tenant 0 may fill its floor plus the slack...
  take(alloc, 0, 5);
  EXPECT_TRUE(part.may_allocate(0, alloc));  // free 5 > earmarked 4
  take(alloc, 0, 1);
  // ...but once the free pool equals tenant 1's unmet floor, tenant 0 is cut
  // off even though frames are free.
  EXPECT_EQ(alloc.free_count(), 4u);
  EXPECT_FALSE(part.may_allocate(0, alloc));
  // Tenant 1 is under its floor: always admitted.
  EXPECT_TRUE(part.may_allocate(1, alloc));
  take(alloc, 1, 4);
  EXPECT_TRUE(alloc.full());
  EXPECT_FALSE(part.may_allocate(1, alloc));

  // Exhausted: tenant 1 sits exactly at floor, tenant 0 is 2 over — the
  // victim must be tenant 0 no matter who faults.
  EXPECT_EQ(part.choose_victim_space(0, alloc), 0u);
  EXPECT_EQ(part.choose_victim_space(1, alloc), 0u);
}

TEST(FramePartition, StaticReserveFloorsClampedFromHighestAsid) {
  // Floors request 6 + 6 = 12 > capacity 8: the excess trims asid 1 first.
  FramePartition part(PartitionKind::kStaticReserve, 8,
                      {{.reserve_units = 6}, {.reserve_units = 6}});
  EXPECT_EQ(part.reserve_of(0), 6u);
  EXPECT_EQ(part.reserve_of(1), 2u);
}

TEST(FramePartition, StaticReserveVictimIsLargestOverage) {
  FramePartition part(PartitionKind::kStaticReserve, 12,
                      {{.reserve_units = 2},
                       {.reserve_units = 2},
                       {.reserve_units = 2}});
  FrameAllocator alloc = make_alloc(12);
  take(alloc, 0, 2);  // at floor
  take(alloc, 1, 5);  // 3 over
  take(alloc, 2, 5);  // 3 over (tie -> lowest asid wins)
  // Tenant 0 faults while at its floor: reclaim from the biggest overager.
  EXPECT_EQ(part.choose_victim_space(0, alloc), 1u);
}

// --- proportional share -----------------------------------------------------

TEST(FramePartition, ProportionalRoundingWithTinyCapacity) {
  // 5 frames across weights 1:1:1 — largest-remainder gives 2/2/1 with the
  // remainder frames going to the lowest asids (all remainders tie).
  FramePartition part(PartitionKind::kProportionalShare, 5,
                      {{.weight = 1}, {.weight = 1}, {.weight = 1}});
  EXPECT_EQ(part.target_of(0), 2u);
  EXPECT_EQ(part.target_of(1), 2u);
  EXPECT_EQ(part.target_of(2), 1u);
  EXPECT_EQ(part.target_of(0) + part.target_of(1) + part.target_of(2), 5u);
}

TEST(FramePartition, ProportionalTargetsSumToCapacity) {
  // 7 frames at weights 3:2 -> exact shares 4.2/2.8 -> 4/2 + 1 remainder
  // frame to the larger fraction (asid 1, 0.8 > 0.2).
  FramePartition part(PartitionKind::kProportionalShare, 7,
                      {{.weight = 3}, {.weight = 2}});
  EXPECT_EQ(part.target_of(0), 4u);
  EXPECT_EQ(part.target_of(1), 3u);
}

TEST(FramePartition, ProportionalZeroWeightTenantGetsNothing) {
  // A zero-weight tenant is best-effort: no target, no remainder frames.
  FramePartition part(PartitionKind::kProportionalShare, 3,
                      {{.weight = 0}, {.weight = 1}});
  EXPECT_EQ(part.target_of(0), 0u);
  EXPECT_EQ(part.target_of(1), 3u);
}

TEST(FramePartition, ProportionalCapacityOneSingleFrame) {
  // Degenerate single-frame device: exactly one tenant may hold it.
  FramePartition part(PartitionKind::kProportionalShare, 1,
                      {{.weight = 1}, {.weight = 1}});
  EXPECT_EQ(part.target_of(0) + part.target_of(1), 1u);
  EXPECT_EQ(part.target_of(0), 1u);  // tie -> lowest asid
}

TEST(FramePartition, ProportionalEvictsNoisiestNeighbor) {
  // Targets at capacity 9, weights 2:1 -> 6/3.
  FramePartition part(PartitionKind::kProportionalShare, 9,
                      {{.weight = 2}, {.weight = 1}});
  FrameAllocator alloc = make_alloc(9);
  take(alloc, 0, 3);  // 3 under target
  take(alloc, 1, 6);  // 3 over target: the noisy neighbor
  EXPECT_TRUE(alloc.full());
  EXPECT_EQ(part.choose_victim_space(0, alloc), 1u);
  // The noisy tenant itself keeps churning its own pages.
  EXPECT_EQ(part.choose_victim_space(1, alloc), 1u);
}

TEST(FramePartition, ProportionalVictimNeedsResidentFrames) {
  FramePartition part(PartitionKind::kProportionalShare, 4,
                      {{.weight = 1}, {.weight = 1}});
  FrameAllocator alloc = make_alloc(4);
  take(alloc, 0, 4);  // tenant 1 holds nothing
  // Tenant 1 faults: the only evictable space is tenant 0.
  EXPECT_EQ(part.choose_victim_space(1, alloc), 0u);
  // Tenant 0 faults at full occupancy with no neighbor frames: self-evict.
  EXPECT_EQ(part.choose_victim_space(0, alloc), 0u);
}

// --- shrunk capacity (quarantine degradation path) --------------------------

TEST(FramePartition, SetCapacityReclampsFloorsFromHighestAsid) {
  // Quarantine shrinks usable capacity below the sum of the floors: the
  // re-clamp trims the highest asid first, never underflows, and repeated
  // shrinks compose.
  FramePartition part(PartitionKind::kStaticReserve, 10,
                      {{.reserve_units = 4}, {.reserve_units = 4}});
  part.set_capacity(6);
  EXPECT_EQ(part.reserve_of(0), 4u);
  EXPECT_EQ(part.reserve_of(1), 2u);
  part.set_capacity(3);  // below even tenant 0's floor
  EXPECT_EQ(part.reserve_of(0), 3u);
  EXPECT_EQ(part.reserve_of(1), 0u);
  part.set_capacity(1);
  EXPECT_EQ(part.reserve_of(0), 1u);
  EXPECT_EQ(part.reserve_of(1), 0u);
}

TEST(FramePartition, SetCapacityReapportionsProportionalTargets) {
  FramePartition part(PartitionKind::kProportionalShare, 9,
                      {{.weight = 2}, {.weight = 1}});
  EXPECT_EQ(part.target_of(0), 6u);
  EXPECT_EQ(part.target_of(1), 3u);
  part.set_capacity(7);  // two frames quarantined away
  EXPECT_EQ(part.target_of(0) + part.target_of(1), 7u);
  EXPECT_EQ(part.target_of(0), 5u);  // 14/3 = 4.67 -> 4 + remainder frame
  EXPECT_EQ(part.target_of(1), 2u);
}

TEST(FramePartition, ShrunkStaticReserveStillAdmitsAndEvictsSanely) {
  // After the shrink both tenants' floors fit the new capacity exactly; the
  // tenant over its (trimmed) floor is the victim, and nobody is admitted
  // past a full allocator.
  FramePartition part(PartitionKind::kStaticReserve, 8,
                      {{.reserve_units = 4}, {.reserve_units = 4}});
  FrameAllocator alloc = make_alloc(8);
  const auto a = take(alloc, 0, 4);
  const auto b = take(alloc, 1, 4);
  alloc.quarantine(b[3]);  // tenant 1 drops to 3 frames, capacity to 7
  part.set_capacity(alloc.usable_capacity());
  EXPECT_EQ(part.reserve_of(0), 4u);
  EXPECT_EQ(part.reserve_of(1), 3u);
  // Tenant 1 sits under its original floor but AT the trimmed one; with no
  // free frames nobody may allocate and the over-floor logic stays sane.
  EXPECT_FALSE(part.may_allocate(0, alloc));
  EXPECT_FALSE(part.may_allocate(1, alloc));
  alloc.free(a[0]);
  // Tenant 0 is now under its floor: the lone free frame is earmarked for
  // it, so tenant 1 stays cut off while tenant 0 is admitted.
  EXPECT_TRUE(part.may_allocate(0, alloc));
  EXPECT_FALSE(part.may_allocate(1, alloc));
  (void)part.choose_victim_space(1, alloc);  // must not crash or underflow
}

TEST(FramePartition, NoneAlwaysSelfEvicts) {
  FramePartition part(PartitionKind::kNone, 4, {{}, {}});
  FrameAllocator alloc = make_alloc(4);
  take(alloc, 0, 1);
  EXPECT_TRUE(part.may_allocate(1, alloc));  // work-conserving while free
  take(alloc, 1, 3);
  EXPECT_FALSE(part.may_allocate(0, alloc));  // full
  EXPECT_EQ(part.choose_victim_space(0, alloc), 0u);
  EXPECT_EQ(part.choose_victim_space(1, alloc), 1u);
}

}  // namespace
}  // namespace cmcp::mm
