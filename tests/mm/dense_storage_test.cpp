// Edge cases of the dense direct-indexed unit storage (docs/performance.md):
// the first and the last representable unit, queries past the reserved
// range, re-mapping a unit after an eviction recycled its slot, and the
// capacity-1 degenerate configurations. Hash maps got these right for free;
// index arithmetic has to prove it.
#include <gtest/gtest.h>

#include "mm/frame_allocator.h"
#include "mm/page_registry.h"
#include "mm/pspt.h"
#include "mm/regular_page_table.h"
#include "sim/tlb.h"

namespace cmcp::mm {
namespace {

TEST(DensePspt, UnitZeroAndLastReservedUnit) {
  Pspt pt(4);
  pt.reserve_units(8);
  pt.map(0, 0, 0);
  pt.map(3, 7, 56);
  EXPECT_TRUE(pt.has_mapping(0, 0));
  EXPECT_TRUE(pt.has_mapping(3, 7));
  EXPECT_EQ(pt.pfn_of(0), 0u);
  EXPECT_EQ(pt.pfn_of(7), 56u);
  EXPECT_EQ(pt.core_map_count(0), 1u);
  EXPECT_EQ(pt.mapped_units(), 2u);
  // Units inside the reserved range but never mapped are cleanly absent.
  EXPECT_FALSE(pt.any_mapping(3));
  EXPECT_EQ(pt.core_map_count(3), 0u);
}

TEST(DensePspt, QueriesBeyondReservedRangeAreAbsentNotFatal) {
  Pspt pt(2);
  pt.reserve_units(4);
  EXPECT_FALSE(pt.has_mapping(0, 1000));
  EXPECT_FALSE(pt.any_mapping(1000));
  EXPECT_EQ(pt.core_map_count(1000), 0u);
  EXPECT_EQ(pt.mapping_cores(1000).count(), 0u);
  unsigned reads = 0;
  EXPECT_FALSE(pt.test_accessed(1000, &reads));
  EXPECT_FALSE(pt.test_dirty(1000));
}

TEST(DensePspt, RemapAfterUnmapTakesANewFrame) {
  Pspt pt(2);
  pt.map(0, 5, 80);
  pt.map(1, 5, 80);
  pt.mark_dirty(0, 5);
  EXPECT_EQ(pt.unmap_all(5).count(), 2u);
  // Eviction recycled the slot: a later fault may install a different
  // frame, and the old accessed/dirty state must not leak into it.
  pt.map(1, 5, 16);
  EXPECT_EQ(pt.pfn_of(5), 16u);
  EXPECT_EQ(pt.core_map_count(5), 1u);
  EXPECT_FALSE(pt.has_mapping(0, 5));
  EXPECT_FALSE(pt.test_dirty(5));
  unsigned reads = 0;
  EXPECT_FALSE(pt.test_accessed(5, &reads));
}

TEST(DenseRegularPageTable, UnitZeroLastUnitAndRemap) {
  RegularPageTable pt(2);
  pt.reserve_units(8);
  pt.map(0, 0, 0);
  pt.map(1, 7, 112);
  EXPECT_TRUE(pt.any_mapping(0));
  EXPECT_EQ(pt.pfn_of(7), 112u);
  EXPECT_FALSE(pt.any_mapping(800));  // past the reserved range
  pt.mark_dirty(0, 7);
  pt.unmap_all(7);
  pt.map(0, 7, 48);
  EXPECT_EQ(pt.pfn_of(7), 48u);
  EXPECT_FALSE(pt.test_dirty(7));
}

TEST(DensePageRegistry, UnitZeroLastUnitAndReinsertAfterErase) {
  PageRegistry registry;
  registry.reserve_units(8);
  ResidentPage& first = registry.insert(0, 0, 1);
  ResidentPage& last = registry.insert(7, 112, 2);
  EXPECT_EQ(registry.find(0), &first);
  EXPECT_EQ(registry.find(7), &last);
  EXPECT_EQ(registry.find(3), nullptr);
  EXPECT_EQ(registry.find(9000), nullptr);  // past the reserved range
  EXPECT_EQ(registry.size(), 2u);

  registry.erase(first);
  EXPECT_EQ(registry.find(0), nullptr);
  ResidentPage& again = registry.insert(0, 64, 3);
  EXPECT_EQ(registry.find(0), &again);
  EXPECT_EQ(again.pfn, 64u);
  EXPECT_GT(again.seq, last.seq);  // sequence numbers never recycle
  EXPECT_EQ(registry.size(), 2u);
}

TEST(DensePageRegistry, ForEachVisitsAscendingUnitOrder) {
  PageRegistry registry;
  // Insertion order deliberately scrambled relative to unit order.
  registry.insert(9, 1, 1);
  registry.insert(0, 2, 2);
  registry.insert(4, 3, 3);
  std::vector<UnitIdx> seen;
  registry.for_each([&](const ResidentPage& page) { seen.push_back(page.unit); });
  EXPECT_EQ(seen, (std::vector<UnitIdx>{0, 4, 9}));
}

TEST(DenseTlb, UnitZeroAndReservedBoundary) {
  sim::Tlb tlb(4);
  tlb.reserve_units(8);
  tlb.insert(0);
  tlb.insert(7);
  EXPECT_TRUE(tlb.lookup(0));
  EXPECT_TRUE(tlb.lookup(7));
  EXPECT_FALSE(tlb.lookup(8));  // one past the reserved range
  tlb.insert(8);                // growth path still works after reserve
  EXPECT_TRUE(tlb.lookup(8));
  EXPECT_EQ(tlb.occupancy(), 3u);
}

TEST(DenseTlb, ReinsertAfterEvictionReusesTheSlotCleanly) {
  sim::Tlb tlb(1);
  tlb.insert(3);
  tlb.insert(4);  // evicts 3 (capacity-1: every insert evicts)
  EXPECT_FALSE(tlb.lookup(3));
  tlb.insert(3);  // re-map after evict
  EXPECT_TRUE(tlb.lookup(3));
  EXPECT_FALSE(tlb.lookup(4));
  EXPECT_EQ(tlb.occupancy(), 1u);
}

TEST(DenseFrameAllocator, CapacityOneRecycles) {
  FrameAllocator alloc(1, PageSizeClass::k4K);
  const Pfn pfn = alloc.allocate();
  ASSERT_NE(pfn, kInvalidPfn);
  EXPECT_TRUE(alloc.full());
  EXPECT_EQ(alloc.allocate(), kInvalidPfn);  // exhausted, not UB
  alloc.free(pfn);
  EXPECT_EQ(alloc.allocate(), pfn);
}

}  // namespace
}  // namespace cmcp::mm
