// Property tests: PSPT invariants under randomized operation sequences,
// checked against a reference model.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "mm/pspt.h"

namespace cmcp::mm {
namespace {

struct ReferenceModel {
  // unit -> (pfn, set of mapping cores, accessed cores, dirty cores)
  struct Unit {
    Pfn pfn;
    std::set<CoreId> cores;
    std::set<CoreId> accessed;
    std::set<CoreId> dirty;
  };
  std::map<UnitIdx, Unit> units;
};

class PsptPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsptPropertyTest, AgreesWithReferenceModelUnderRandomOps) {
  constexpr CoreId kCores = 16;
  constexpr UnitIdx kUnits = 64;
  Pspt pt(kCores);
  ReferenceModel ref;
  Rng rng(GetParam());

  for (int step = 0; step < 8000; ++step) {
    const UnitIdx unit = rng.next_below(kUnits);
    const CoreId core = static_cast<CoreId>(rng.next_below(kCores));
    switch (rng.next_below(6)) {
      case 0: {  // map (if this core doesn't already)
        auto it = ref.units.find(unit);
        const Pfn pfn = it != ref.units.end() ? it->second.pfn : unit * 100;
        if (it == ref.units.end() || !it->second.cores.contains(core)) {
          pt.map(core, unit, pfn);
          ref.units[unit].pfn = pfn;
          ref.units[unit].cores.insert(core);
        }
        break;
      }
      case 1: {  // unmap_all (if mapped)
        auto it = ref.units.find(unit);
        if (it != ref.units.end()) {
          const CoreMask affected = pt.unmap_all(unit);
          EXPECT_EQ(affected.count(), it->second.cores.size());
          for (CoreId c : it->second.cores) EXPECT_TRUE(affected.test(c));
          ref.units.erase(it);
        }
        break;
      }
      case 2: {  // mark accessed (if this core maps it)
        auto it = ref.units.find(unit);
        if (it != ref.units.end() && it->second.cores.contains(core)) {
          pt.mark_accessed(core, unit);
          it->second.accessed.insert(core);
        }
        break;
      }
      case 3: {  // clear accessed
        auto it = ref.units.find(unit);
        const bool expect_was = it != ref.units.end() && !it->second.accessed.empty();
        EXPECT_EQ(pt.clear_accessed(unit), expect_was);
        if (it != ref.units.end()) it->second.accessed.clear();
        break;
      }
      case 4: {  // mark dirty
        auto it = ref.units.find(unit);
        if (it != ref.units.end() && it->second.cores.contains(core)) {
          pt.mark_dirty(core, unit);
          it->second.dirty.insert(core);
        }
        break;
      }
      case 5: {  // clear dirty
        pt.clear_dirty(unit);
        auto it = ref.units.find(unit);
        if (it != ref.units.end()) it->second.dirty.clear();
        break;
      }
    }

    // Invariants after every step (spot-check the touched unit).
    auto it = ref.units.find(unit);
    if (it == ref.units.end()) {
      EXPECT_FALSE(pt.any_mapping(unit));
      EXPECT_EQ(pt.core_map_count(unit), 0u);
    } else {
      EXPECT_TRUE(pt.any_mapping(unit));
      EXPECT_EQ(pt.pfn_of(unit), it->second.pfn);
      // Core-map count == exact number of mapping cores.
      EXPECT_EQ(pt.core_map_count(unit), it->second.cores.size());
      const CoreMask mask = pt.mapping_cores(unit);
      EXPECT_EQ(mask.count(), it->second.cores.size());
      for (CoreId c = 0; c < kCores; ++c) {
        EXPECT_EQ(pt.has_mapping(c, unit), it->second.cores.contains(c));
        EXPECT_EQ(mask.test(c), it->second.cores.contains(c));
      }
      EXPECT_EQ(pt.test_accessed(unit, nullptr), !it->second.accessed.empty());
      EXPECT_EQ(pt.test_dirty(unit), !it->second.dirty.empty());
    }
  }

  // Final global consistency sweep.
  std::uint64_t mapped = 0;
  for (UnitIdx u = 0; u < kUnits; ++u) {
    if (ref.units.contains(u)) ++mapped;
    EXPECT_EQ(pt.any_mapping(u), ref.units.contains(u));
  }
  EXPECT_EQ(pt.mapped_units(), mapped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsptPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace cmcp::mm
