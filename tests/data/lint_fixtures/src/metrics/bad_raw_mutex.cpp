// Fixture: raw-mutex fires twice — a std::mutex member and a
// std::lock_guard, both bypassing the annotated common::Mutex wrapper.
#include <mutex>

namespace cmcp::metrics {

class BadCounter {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mu_);  // findings: lock_guard + mutex
    ++n_;
  }

 private:
  std::mutex mu_;  // finding: raw mutex member
  long n_ = 0;
};

}  // namespace cmcp::metrics
