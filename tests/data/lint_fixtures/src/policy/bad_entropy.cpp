// Fixture: unseeded-entropy fires twice — a raw engine type and a rand()
// call outside common::Rng.
#include <cstdlib>
#include <random>

namespace cmcp::policy {

int bad_pick(int n) {
  std::mt19937 gen{std::random_device{}()};  // findings: mt19937 + random_device
  (void)gen;
  return rand() % n;  // finding: rand()
}

// Not a finding: "rand" as a substring of another identifier.
int random_walk_length() { return 4; }

}  // namespace cmcp::policy
