// Fixture: every violation here carries a justified allow() comment, so the
// file must produce zero findings.
#include <string>
#include <unordered_map>

namespace cmcp::core {

class SortedExport {
 public:
  long total() const {
    long sum = 0;
    // cmcp-lint: allow(unordered-iteration) — collect-then-sort: the result
    // is order-independent (a commutative sum), verified by the trace gate.
    for (const auto& [name, count] : by_name_) sum += count;
    return sum;
  }

 private:
  std::unordered_map<std::string, long> by_name_;
};

struct MappedRegister {
  // cmcp-lint: allow(volatile-qualifier) — documents a memory-mapped
  // hardware register layout; this struct is never linked into the
  // simulator.
  volatile unsigned bits = 0;
};

}  // namespace cmcp::core
