// Fixture: stray-thread fires twice — std::thread and std::atomic outside
// metrics/parallel_runner.
#include <atomic>
#include <thread>

namespace cmcp::core {

void bad_background_scan() {
  std::atomic<bool> done{false};              // finding: atomic
  std::thread worker([&] { done = true; });   // finding: thread
  worker.join();
}

}  // namespace cmcp::core
