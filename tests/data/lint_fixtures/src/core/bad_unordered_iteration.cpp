// Fixture: unordered-iteration fires twice — a range-for and an explicit
// .begin() walk over containers declared in this file.
#include <string>
#include <unordered_map>

namespace cmcp::core {

class BadExporter {
 public:
  long total() const {
    long sum = 0;
    for (const auto& [name, count] : by_name_) sum += count;  // finding
    return sum;
  }
  auto first() const { return by_name_.begin(); }  // finding

 private:
  std::unordered_map<std::string, long> by_name_;
};

}  // namespace cmcp::core
