// Fixture: wallclock-time fires four times — the chrono namespace, a clock
// type, a bare time() call, and a std::-qualified clock() call. (Even the
// <chrono> include would fire; omitted here to keep findings on
// expression lines.)
#include <ctime>

namespace cmcp::core {

long bad_now() {
  const auto t0 = std::chrono::steady_clock::now();  // findings: chrono + steady_clock
  (void)t0;
  long seed = time(nullptr);      // finding: free call
  seed += std::clock();           // finding: std::-qualified call
  return seed;
}

struct Cost {
  // Not a finding: `clock` as a member name, called through an object.
  long clock(int core) const { return core; }
};

long fine(const Cost& c) { return c.clock(0); }

}  // namespace cmcp::core
