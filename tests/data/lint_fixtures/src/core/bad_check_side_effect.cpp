// Fixture: check-side-effect fires twice — an increment and an assignment
// inside check-macro arguments.
#include "common/assert.h"

namespace cmcp::core {

void bad_checks(int& faults, int budget) {
  CMCP_CHECK(++faults < budget);          // finding: increment in CMCP_CHECK
  int spent = 0;
  CMCP_CHECK_MSG(spent = faults, "spent");  // finding: assignment
  (void)spent;
  // Not a finding: comparisons are observation-only.
  CMCP_CHECK(faults <= budget);
}

}  // namespace cmcp::core
