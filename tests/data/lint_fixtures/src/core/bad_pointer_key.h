// Fixture: ordered-pointer-key and hashed-pointer-key fire once each.
#pragma once

#include <map>
#include <set>
#include <unordered_set>

namespace cmcp::core {

struct Page;

class BadOwnership {
 private:
  std::map<Page*, int> owners_;         // ordered-pointer-key
  std::unordered_set<const Page*> hot_;  // hashed-pointer-key
  // Not a finding: value type is a pointer, the key is an int.
  std::map<int, Page*> by_id_;
};

}  // namespace cmcp::core
