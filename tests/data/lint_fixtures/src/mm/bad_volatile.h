// Fixture: volatile-qualifier fires once.
#pragma once

namespace cmcp::mm {

struct BadFlag {
  volatile bool scanning = false;  // finding: volatile as "synchronization"
};

}  // namespace cmcp::mm
