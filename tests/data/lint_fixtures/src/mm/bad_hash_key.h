// Fixture: hash-keyed-index must fire twice — an unordered_map keyed by
// UnitIdx and an unordered_set of Pfn, both in a hot-path directory.
#pragma once

#include <list>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"

namespace cmcp::mm {

class BadPositionMap {
 public:
  void note(UnitIdx unit, Pfn pfn);

 private:
  std::unordered_map<UnitIdx, std::list<UnitIdx>::iterator> pos_;  // finding 1
  std::unordered_set<Pfn> dirty_;                                  // finding 2
  // Not a finding: the key is a string, not a dense simulation index.
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace cmcp::mm
