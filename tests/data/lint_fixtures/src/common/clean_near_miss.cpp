// Fixture: near-miss patterns that a grep-based gate would flag but the
// token-level linter must NOT — this file has zero findings.
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace cmcp::common {

// "std::mutex" and "rand()" inside a string literal are data, not code.
const char* kDoc = "never use std::mutex or rand() directly";

// A comment mentioning time(nullptr) or volatile is prose, not code.

struct Machine {
  Cycles clock(CoreId core) const;  // declaration: `clock` is not a call
};

Cycles fine(const Machine& m) {
  return m.clock(0);  // member call, not the libc clock()
}

// time_t as a type name is not a wall-clock read.
using FileStamp = long;

// unordered_map keyed by a string in a non-hot directory, never iterated:
// pure membership is sanctioned (docs/invariants.md).
bool known(const std::unordered_map<std::string, int>& m,
           const std::string& k) {
  return m.count(k) != 0;
}

}  // namespace cmcp::common
