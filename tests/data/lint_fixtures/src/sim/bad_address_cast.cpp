// Fixture: pointer-address-cast fires twice — reinterpret_cast and a
// C-style cast to uintptr_t.
#include <cstdint>

namespace cmcp::sim {

unsigned long bad_hash_of(const void* p) {
  const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(p);  // finding 1
  const auto b = (uintptr_t)p;                                   // finding 2
  return static_cast<unsigned long>(a ^ b);
}

// Not a finding: reinterpret_cast between pointer types keeps the value
// opaque — no address integer escapes.
const char* as_bytes(const void* p) { return reinterpret_cast<const char*>(p); }

}  // namespace cmcp::sim
