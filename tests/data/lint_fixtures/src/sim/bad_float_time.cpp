// Fixture: float-virtual-time fires twice — a double variable named like a
// time quantity, and a float literal initializing a Cycles variable.
#include "common/types.h"

namespace cmcp::sim {

Cycles bad_accumulate(Cycles base) {
  double pending_cycles = 0.0;  // finding: float holds virtual time
  pending_cycles += 1.5;
  Cycles latency = base * 1.2;  // finding: float literal into Cycles
  return latency;
}

// Not a finding: converting OUT of virtual time for reporting is fine, and
// the explicit static_cast acknowledges the rounding on the way back in.
double cycles_to_seconds(Cycles c) { return static_cast<double>(c) / 1e9; }
Cycles rounded(double seconds) {
  Cycles c = static_cast<Cycles>(seconds * 1e9);
  return c;
}

}  // namespace cmcp::sim
