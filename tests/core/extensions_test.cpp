// Extension features: hardware TLB-coherence directory, sequential
// prefetch, syscall offload, custom policy injection.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "policy/fifo.h"
#include "workloads/stencil.h"
#include "workloads/workload_factory.h"

namespace cmcp::core {
namespace {

// --- hardware TLB directory -------------------------------------------------

struct HwFixture {
  explicit HwFixture(sim::TlbCoherence coherence, CoreId cores = 4)
      : machine([&] {
          sim::MachineConfig mc;
          mc.num_cores = cores;
          mc.tlb_coherence = coherence;
          return mc;
        }()),
        area(0, 64, PageSizeClass::k4K),
        mm(machine, area, [] {
          MemoryManagerConfig config;
          config.capacity_units = 2;
          return config;
        }()) {}

  void touch(CoreId core, Vpn vpn) {
    machine.advance(core, mm.access(core, vpn, false, machine.clock(core)));
  }

  sim::Machine machine;
  mm::ComputationArea area;
  MemoryManager mm;
};

TEST(HardwareDirectory, NoInterruptsNoSlot) {
  HwFixture f(sim::TlbCoherence::kHardwareDirectory);
  f.touch(0, 0);
  f.touch(1, 0);  // unit 0 mapped by cores 0, 1
  f.touch(2, 1);
  f.touch(3, 2);  // eviction of unit 0: hardware invalidation

  // Receivers lost their entries but took no interrupts.
  EXPECT_EQ(f.machine.counters(0).ipis_received, 0u);
  EXPECT_EQ(f.machine.counters(1).ipis_received, 0u);
  EXPECT_EQ(f.machine.counters(0).cycles_interrupt, 0u);
  EXPECT_GE(f.machine.counters(0).remote_invalidations_received, 1u);
  EXPECT_EQ(f.machine.interconnect().total_shootdowns(), 0u);
  // The stale translation really is gone: core 0 re-faults.
  const auto faults_before = f.machine.counters(0).major_faults;
  f.touch(0, 0);
  EXPECT_EQ(f.machine.counters(0).major_faults, faults_before + 1);
}

TEST(HardwareDirectory, CheaperThanIpis) {
  HwFixture hw(sim::TlbCoherence::kHardwareDirectory);
  HwFixture sw(sim::TlbCoherence::kIpiShootdown);
  for (auto* f : {&hw, &sw}) {
    f->touch(0, 0);
    f->touch(1, 0);
    f->touch(2, 1);
    f->touch(3, 2);  // eviction with 2 mapping cores
  }
  EXPECT_LT(hw.machine.counters(3).cycles_shootdown,
            sw.machine.counters(3).cycles_shootdown);
  EXPECT_EQ(sw.machine.counters(0).ipis_received, 1u);
}

TEST(HardwareDirectory, EndToEndFasterForRegularTables) {
  // The DiDi argument: with hardware invalidation, regular tables stop
  // collapsing — their every-core shootdowns become cheap.
  wl::WorkloadParams params;
  params.cores = 16;
  params.scale = 0.25;
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kBt, params);
  SimulationConfig config;
  config.machine.num_cores = 16;
  config.pt_kind = PageTableKind::kRegular;
  config.memory_fraction = 0.64;

  config.machine.tlb_coherence = sim::TlbCoherence::kIpiShootdown;
  const auto sw = run_simulation(config, *w);
  config.machine.tlb_coherence = sim::TlbCoherence::kHardwareDirectory;
  const auto hw = run_simulation(config, *w);
  EXPECT_LT(hw.makespan, sw.makespan);
  EXPECT_EQ(hw.app_total.cycles_interrupt, 0u);
}

// --- sequential prefetch ------------------------------------------------------

struct PrefetchFixture {
  explicit PrefetchFixture(unsigned degree, std::uint64_t capacity = 32)
      : machine([] {
          sim::MachineConfig mc;
          mc.num_cores = 2;
          return mc;
        }()),
        area(0, 64, PageSizeClass::k4K),
        mm(machine, area, [&] {
          MemoryManagerConfig config;
          config.capacity_units = capacity;
          config.prefetch_degree = degree;
          return config;
        }()) {}

  void touch(CoreId core, Vpn vpn) {
    machine.advance(core, mm.access(core, vpn, false, machine.clock(core)));
  }

  sim::Machine machine;
  mm::ComputationArea area;
  MemoryManager mm;
};

TEST(Prefetch, DisabledByDefault) {
  PrefetchFixture f(0);
  f.touch(0, 0);
  EXPECT_EQ(f.machine.counters(0).prefetches, 0u);
  EXPECT_EQ(f.mm.registry().size(), 1u);
}

TEST(Prefetch, FetchesFollowingUnits) {
  PrefetchFixture f(3);
  f.touch(0, 0);
  EXPECT_EQ(f.machine.counters(0).prefetches, 3u);
  EXPECT_EQ(f.mm.registry().size(), 4u);  // demand + 3 readahead
  for (UnitIdx u = 1; u <= 3; ++u) {
    ASSERT_NE(f.mm.registry().find(u), nullptr);
    EXPECT_GT(f.mm.registry().find(u)->ready_at, 0u);
  }
  // Prefetched units are resident but unmapped until touched.
  EXPECT_FALSE(f.mm.page_table().any_mapping(1));
}

TEST(Prefetch, SequentialWalkTurnsFaultsIntoMinorFaults) {
  PrefetchFixture with(4);
  PrefetchFixture without(0);
  for (Vpn v = 0; v < 32; ++v) {
    with.touch(0, v);
    without.touch(0, v);
  }
  EXPECT_LT(with.machine.counters(0).major_faults,
            without.machine.counters(0).major_faults / 2);
  EXPECT_GT(with.machine.counters(0).prefetch_hits, 20u);
  // Same data still crossed the link exactly once per unit.
  EXPECT_EQ(with.machine.counters(0).pcie_bytes_in,
            without.machine.counters(0).pcie_bytes_in);
}

TEST(Prefetch, NeverEvicts) {
  PrefetchFixture f(8, /*capacity=*/2);
  f.touch(0, 0);  // 1 free frame left: at most 1 prefetch
  EXPECT_LE(f.machine.counters(0).prefetches, 1u);
  EXPECT_EQ(f.machine.counters(0).evictions, 0u);
  EXPECT_LE(f.mm.registry().size(), 2u);
}

TEST(Prefetch, PrefetchedPageIsEvictableBeforeUse) {
  PrefetchFixture f(2, /*capacity=*/4);
  f.touch(0, 0);  // + prefetch units 1, 2
  f.touch(0, 40);
  f.touch(0, 50);  // capacity reached; next fault evicts (FIFO head = unit 0)
  f.touch(0, 60);
  f.touch(0, 62);  // may evict a never-touched prefetched unit — must not die
  EXPECT_GT(f.machine.counters(0).evictions, 0u);
}

TEST(Prefetch, EndToEndHelpsSequentialWorkload) {
  wl::WorkloadParams params;
  params.cores = 8;
  params.scale = 0.25;
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kBt, params);
  SimulationConfig config;
  config.machine.num_cores = 8;
  config.memory_fraction = 0.64;
  const auto off = run_simulation(config, *w);
  config.prefetch_degree = 4;
  const auto on = run_simulation(config, *w);
  EXPECT_LT(on.app_total.major_faults, off.app_total.major_faults);
  EXPECT_GT(on.app_total.prefetch_hits, 0u);
}

// --- asynchronous write-back ---------------------------------------------------

TEST(AsyncWriteback, SameBytesLessBlocking) {
  wl::WorkloadParams params;
  params.cores = 8;
  params.scale = 0.2;
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kScale, params);
  SimulationConfig config;
  config.machine.num_cores = 8;
  config.memory_fraction = 0.5;

  const auto sync = run_simulation(config, *w);
  config.async_writeback = true;
  const auto async = run_simulation(config, *w);

  EXPECT_EQ(async.app_total.writebacks, sync.app_total.writebacks);
  EXPECT_EQ(async.app_total.pcie_bytes_out, sync.app_total.pcie_bytes_out);
  EXPECT_LT(async.makespan, sync.makespan);
}

// --- syscall offload -----------------------------------------------------------

class SyscallWorkload final : public wl::Workload {
 public:
  std::string_view name() const override { return "syscall"; }
  CoreId num_cores() const override { return 2; }
  std::uint64_t footprint_base_pages() const override { return 8; }
  std::unique_ptr<wl::AccessStream> make_stream(CoreId) const override {
    auto ops = std::make_shared<const std::vector<wl::Op>>(std::vector<wl::Op>{
        wl::Op::compute(100), wl::Op::syscall(5000, 4096), wl::Op::compute(50)});
    return std::make_unique<wl::VectorStream>(ops);
  }
};

TEST(SyscallOffload, BlocksCallerForRoundTrip) {
  SyscallWorkload w;
  SimulationConfig config;
  config.machine.num_cores = 2;
  const auto result = run_simulation(config, w);
  EXPECT_EQ(result.app_total.syscalls, 2u);
  const auto& cost = sim::CostModel::knc();
  // At least local trap + dispatch + service per call.
  EXPECT_GT(result.app_total.cycles_syscall,
            2 * (cost.syscall_local + cost.syscall_host_dispatch + 5000));
  EXPECT_GT(result.makespan, 150u + cost.syscall_local + 5000);
}

TEST(SyscallOffload, StencilHistoryOutput) {
  wl::StencilParams params;
  params.base.cores = 4;
  params.base.scale = 0.1;
  params.io_bytes_per_step = 1 << 16;
  wl::StencilWorkload w(params);
  SimulationConfig config;
  config.machine.num_cores = 4;
  config.preload = true;
  const auto result = run_simulation(config, w);
  // One call per core per step (6 steps default).
  EXPECT_EQ(result.app_total.syscalls, 4u * 6);
  EXPECT_GT(result.app_total.cycles_syscall, 0u);
}

// --- custom policy injection ---------------------------------------------------

TEST(CustomPolicy, FactoryOverridesBuiltIn) {
  struct CountingFifo final : policy::FifoPolicy {
    std::uint64_t* victims;
    explicit CountingFifo(std::uint64_t* v) : victims(v) {}
    mm::ResidentPage* pick_victim(CoreId core, Cycles& extra) override {
      ++*victims;
      return FifoPolicy::pick_victim(core, extra);
    }
  };

  std::uint64_t victims = 0;
  wl::WorkloadParams params;
  params.cores = 4;
  params.scale = 0.1;
  const auto w = wl::make_paper_workload(wl::PaperWorkload::kCg, params);
  SimulationConfig config;
  config.machine.num_cores = 4;
  config.memory_fraction = 0.4;
  config.custom_policy = [&victims](policy::PolicyHost&) {
    return std::make_unique<CountingFifo>(&victims);
  };
  const auto result = run_simulation(config, *w);
  EXPECT_GT(victims, 0u);
  EXPECT_EQ(victims, result.app_total.evictions);
}

}  // namespace
}  // namespace cmcp::core
