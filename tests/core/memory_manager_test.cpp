// Fault-path behaviour of the hierarchical memory manager.
#include "core/memory_manager.h"

#include <gtest/gtest.h>

namespace cmcp::core {
namespace {

struct Fixture {
  explicit Fixture(std::uint64_t capacity, PageTableKind pt = PageTableKind::kPspt,
                   PolicyKind policy = PolicyKind::kFifo, CoreId cores = 4,
                   PageSizeClass size = PageSizeClass::k4K, bool preload = false,
                   std::uint64_t area_pages = 64)
      : machine([&] {
          sim::MachineConfig mc;
          mc.num_cores = cores;
          mc.page_size = size;
          return mc;
        }()),
        area(0, area_pages, size),
        mm(machine, area, [&] {
          MemoryManagerConfig config;
          config.pt_kind = pt;
          config.policy.kind = policy;
          config.capacity_units = capacity;
          config.preload = preload;
          return config;
        }()) {}

  Cycles touch(CoreId core, Vpn vpn, bool write = false) {
    const Cycles cost = mm.access(core, vpn, write, machine.clock(core));
    machine.advance(core, cost);
    return cost;
  }

  sim::Machine machine;
  mm::ComputationArea area;
  MemoryManager mm;
};

TEST(MemoryManager, FirstTouchMajorFaultFetchesOverPcie) {
  Fixture f(16);
  f.touch(0, 5);
  const auto& ctr = f.machine.counters(0);
  EXPECT_EQ(ctr.major_faults, 1u);
  EXPECT_EQ(ctr.dtlb_misses, 1u);
  EXPECT_EQ(ctr.pcie_bytes_in, 4096u);
  EXPECT_TRUE(f.mm.page_table().has_mapping(0, 5));
  EXPECT_EQ(f.mm.registry().size(), 1u);
}

TEST(MemoryManager, SecondTouchHitsTlb) {
  Fixture f(16);
  f.touch(0, 5);
  const Cycles hit = f.touch(0, 5);
  const auto& cost = f.machine.cost();
  EXPECT_EQ(hit, cost.tlb_hit + cost.memory_access);
  EXPECT_EQ(f.machine.counters(0).dtlb_misses, 1u);
  EXPECT_EQ(f.machine.counters(0).accesses, 2u);
}

TEST(MemoryManager, PsptSecondCoreTakesMinorFault) {
  Fixture f(16);
  f.touch(0, 5);
  f.touch(1, 5);
  EXPECT_EQ(f.machine.counters(1).minor_faults, 1u);
  EXPECT_EQ(f.machine.counters(1).major_faults, 0u);
  EXPECT_EQ(f.machine.counters(1).pcie_bytes_in, 0u);  // no data moved
  const UnitIdx unit = f.area.unit_of(5);
  EXPECT_EQ(f.mm.page_table().core_map_count(unit), 2u);
  EXPECT_EQ(f.mm.registry().find(unit)->core_map_count, 2u);
}

TEST(MemoryManager, RegularTableSecondCoreJustWalks) {
  Fixture f(16, PageTableKind::kRegular);
  f.touch(0, 5);
  f.touch(1, 5);
  EXPECT_EQ(f.machine.counters(1).minor_faults, 0u);
  EXPECT_EQ(f.machine.counters(1).major_faults, 0u);
  EXPECT_EQ(f.machine.counters(1).dtlb_misses, 1u);
}

TEST(MemoryManager, EvictionAtCapacityRecyclesFrames) {
  Fixture f(/*capacity=*/4);
  for (Vpn v = 0; v < 4; ++v) f.touch(0, v);
  EXPECT_EQ(f.machine.counters(0).evictions, 0u);
  f.touch(0, 10);  // capacity exceeded: FIFO evicts page 0
  EXPECT_EQ(f.machine.counters(0).evictions, 1u);
  EXPECT_EQ(f.mm.registry().size(), 4u);
  EXPECT_FALSE(f.mm.page_table().any_mapping(0));
  EXPECT_TRUE(f.mm.page_table().any_mapping(10));
}

TEST(MemoryManager, DirtyEvictionWritesBack) {
  Fixture f(1);
  f.touch(0, 0, /*write=*/true);
  f.touch(0, 1);  // evicts dirty page 0
  const auto& ctr = f.machine.counters(0);
  EXPECT_EQ(ctr.writebacks, 1u);
  EXPECT_EQ(ctr.pcie_bytes_out, 4096u);
}

TEST(MemoryManager, CleanEvictionSkipsWriteback) {
  Fixture f(1);
  f.touch(0, 0, /*write=*/false);
  f.touch(0, 1);
  EXPECT_EQ(f.machine.counters(0).writebacks, 0u);
  EXPECT_EQ(f.machine.counters(0).pcie_bytes_out, 0u);
}

TEST(MemoryManager, RefaultAfterEvictionMovesDataAgain) {
  Fixture f(1);
  f.touch(0, 0);
  f.touch(0, 1);
  f.touch(0, 0);  // page 0 must come back over PCIe
  EXPECT_EQ(f.machine.counters(0).major_faults, 3u);
  EXPECT_EQ(f.machine.counters(0).pcie_bytes_in, 3u * 4096);
}

TEST(MemoryManager, PsptEvictionShootsDownOnlyMappingCores) {
  Fixture f(/*capacity=*/2, PageTableKind::kPspt, PolicyKind::kFifo, 4);
  f.touch(0, 0);
  f.touch(1, 0);  // unit 0 mapped by cores 0 and 1
  f.touch(2, 1);  // unit 1 mapped by core 2
  f.touch(3, 2);  // evicts unit 0 -> shootdown of cores 0 and 1 only
  EXPECT_EQ(f.machine.counters(0).remote_invalidations_received, 1u);
  EXPECT_EQ(f.machine.counters(1).remote_invalidations_received, 1u);
  EXPECT_EQ(f.machine.counters(2).remote_invalidations_received, 0u);
  EXPECT_EQ(f.machine.counters(3).shootdowns_initiated, 1u);
}

TEST(MemoryManager, RegularEvictionShootsDownEveryCore) {
  Fixture f(/*capacity=*/2, PageTableKind::kRegular, PolicyKind::kFifo, 4);
  f.touch(0, 0);
  f.touch(0, 1);
  f.touch(1, 2);  // evicts unit 0: every other core gets the IPI
  for (CoreId c : {CoreId{0}, CoreId{2}, CoreId{3}})
    EXPECT_EQ(f.machine.counters(c).remote_invalidations_received, 1u)
        << "core " << c;
  // The initiator handled its own INVLPG locally.
  EXPECT_EQ(f.machine.counters(1).remote_invalidations_received, 0u);
}

TEST(MemoryManager, EvictionInvalidatesStaleTlbEntries) {
  Fixture f(2, PageTableKind::kPspt, PolicyKind::kFifo, 2);
  f.touch(0, 0);
  f.touch(0, 1);
  f.touch(1, 2);  // evicts unit 0 from core 1's fault
  // Core 0's next touch of page 0 must re-fault, not hit a stale TLB entry.
  f.touch(0, 0);
  EXPECT_EQ(f.machine.counters(0).major_faults, 3u);
}

TEST(MemoryManager, PreloadedRunNeverMovesData) {
  Fixture f(64, PageTableKind::kPspt, PolicyKind::kFifo, 4,
            PageSizeClass::k4K, /*preload=*/true);
  for (CoreId c = 0; c < 4; ++c)
    for (Vpn v = 0; v < 64; ++v) f.touch(c, v);
  metrics::CoreCounters total = f.machine.aggregate_app_counters();
  EXPECT_EQ(total.major_faults, 0u);
  EXPECT_EQ(total.pcie_bytes_in, 0u);
  EXPECT_EQ(total.evictions, 0u);
  EXPECT_GT(total.minor_faults, 0u);  // first-touch PTE setup only
}

TEST(MemoryManager, SixtyFourKUnitsCoverSixteenBasePages) {
  Fixture f(4, PageTableKind::kPspt, PolicyKind::kFifo, 2,
            PageSizeClass::k64K, false, /*area_pages=*/64);
  f.touch(0, 0);
  f.touch(0, 15);  // same 64 kB unit: TLB hit, no new fault
  EXPECT_EQ(f.machine.counters(0).major_faults, 1u);
  EXPECT_EQ(f.machine.counters(0).pcie_bytes_in, 65536u);
  f.touch(0, 16);  // next unit
  EXPECT_EQ(f.machine.counters(0).major_faults, 2u);
}

TEST(MemoryManager, TwoMegUnitsMoveTwoMegabytes) {
  Fixture f(2, PageTableKind::kPspt, PolicyKind::kFifo, 1,
            PageSizeClass::k2M, false, /*area_pages=*/1024);
  f.touch(0, 3);
  EXPECT_EQ(f.machine.counters(0).pcie_bytes_in, 2u * 1024 * 1024);
  EXPECT_EQ(f.mm.area().num_units(), 2u);
}

TEST(MemoryManager, SharingHistogramCountsMappingCores) {
  Fixture f(16, PageTableKind::kPspt, PolicyKind::kFifo, 4);
  f.touch(0, 0);
  f.touch(1, 0);
  f.touch(2, 0);  // unit 0: 3 cores
  f.touch(0, 1);  // unit 1: 1 core
  f.touch(1, 2);
  f.touch(2, 2);  // unit 2: 2 cores
  const auto hist = f.mm.sharing_histogram();
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(MemoryManager, RegularFaultsSerializeOnAddressSpaceLock) {
  Fixture f(16, PageTableKind::kRegular, PolicyKind::kFifo, 4);
  // Two cores fault at the same instant; the second must wait for the lock.
  f.mm.access(0, 0, false, 0);
  const Cycles c1 = f.mm.access(1, 1, false, 0);
  Fixture g(16, PageTableKind::kRegular, PolicyKind::kFifo, 4);
  const Cycles alone = g.mm.access(1, 1, false, 0);
  EXPECT_GT(c1, alone);
  EXPECT_GT(f.machine.counters(1).cycles_lock_wait, 0u);
}

TEST(MemoryManagerDeath, PreloadRequiresFullCapacity) {
  sim::MachineConfig mc;
  mc.num_cores = 2;
  sim::Machine machine(mc);
  mm::ComputationArea area(0, 64, PageSizeClass::k4K);
  MemoryManagerConfig config;
  config.capacity_units = 32;
  config.preload = true;
  EXPECT_DEATH(MemoryManager(machine, area, config), "preload");
}

}  // namespace
}  // namespace cmcp::core
