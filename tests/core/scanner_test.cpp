// The access-bit scanner daemon: the mechanism whose shootdown cost is the
// paper's central argument against LRU-style policies on many-cores.
#include <gtest/gtest.h>

#include "core/memory_manager.h"
#include "testing/policy_harness.h"

namespace cmcp::core {
namespace {

struct ScannerFixture {
  explicit ScannerFixture(PolicyKind policy, std::uint64_t capacity = 32,
                          CoreId cores = 4)
      : machine([&] {
          sim::MachineConfig mc;
          mc.num_cores = cores;
          return mc;
        }()),
        area(0, 64, PageSizeClass::k4K),
        mm(machine, area, [&] {
          MemoryManagerConfig config;
          config.pt_kind = PageTableKind::kPspt;
          config.policy.kind = policy;
          config.capacity_units = capacity;
          return config;
        }()) {}

  void touch(CoreId core, Vpn vpn) {
    machine.advance(core, mm.access(core, vpn, false, machine.clock(core)));
  }

  sim::Machine machine;
  mm::ComputationArea area;
  MemoryManager mm;
};

TEST(Scanner, DisabledForFifo) {
  ScannerFixture f(PolicyKind::kFifo);
  EXPECT_FALSE(f.mm.scanner_enabled());
  f.touch(0, 1);
  f.mm.run_periodic(10 * f.machine.cost().scan_period);
  EXPECT_EQ(f.mm.scans_completed(), 0u);
  EXPECT_EQ(f.machine.counters(0).remote_invalidations_received, 0u);
}

TEST(Scanner, DisabledForCmcp) {
  // The headline property: CMCP needs no usage sampling, hence no scanner
  // and no scanning shootdowns at all.
  ScannerFixture f(PolicyKind::kCmcp);
  EXPECT_FALSE(f.mm.scanner_enabled());
  for (Vpn v = 0; v < 16; ++v) f.touch(0, v);
  f.mm.run_periodic(10 * f.machine.cost().scan_period);
  EXPECT_EQ(f.mm.scans_completed(), 0u);
  metrics::CoreCounters total = f.machine.aggregate_app_counters();
  EXPECT_EQ(total.remote_invalidations_received, 0u);
}

TEST(Scanner, RunsAtConfiguredPeriodForLru) {
  ScannerFixture f(PolicyKind::kLru);
  EXPECT_TRUE(f.mm.scanner_enabled());
  f.touch(0, 1);
  const Cycles period = f.machine.cost().scan_period;
  f.mm.run_periodic(period - 1);
  EXPECT_EQ(f.mm.scans_completed(), 0u);
  f.mm.run_periodic(period);
  EXPECT_EQ(f.mm.scans_completed(), 1u);
  f.mm.run_periodic(3 * period);
  EXPECT_EQ(f.mm.scans_completed(), 3u);
}

TEST(Scanner, ClearingAccessedBitsShootsDownMappingCores) {
  ScannerFixture f(PolicyKind::kLru);
  f.touch(0, 1);
  f.touch(1, 1);  // unit 1 mapped (and referenced) by cores 0 and 1
  f.mm.run_periodic(f.machine.cost().scan_period);
  // Both mapping cores received the invalidation; core 2 did not.
  EXPECT_GE(f.machine.counters(0).remote_invalidations_received, 1u);
  EXPECT_GE(f.machine.counters(1).remote_invalidations_received, 1u);
  EXPECT_EQ(f.machine.counters(2).remote_invalidations_received, 0u);
  // The accessed bit really is clear afterwards.
  EXPECT_FALSE(f.mm.page_table().test_accessed(f.area.unit_of(1), nullptr));
}

TEST(Scanner, UnreferencedPagesCostNoShootdowns) {
  ScannerFixture f(PolicyKind::kLru);
  f.touch(0, 1);
  const Cycles period = f.machine.cost().scan_period;
  f.mm.run_periodic(period);  // clears the bit, one shootdown
  const auto invals_after_first =
      f.machine.counters(0).remote_invalidations_received;
  f.mm.run_periodic(2 * period);  // page untouched since: no shootdown
  EXPECT_EQ(f.machine.counters(0).remote_invalidations_received,
            invals_after_first);
}

TEST(Scanner, RetouchAfterScanRefaultsTlbAndSetsBitAgain) {
  ScannerFixture f(PolicyKind::kLru);
  f.touch(0, 1);
  const auto misses_before = f.machine.counters(0).dtlb_misses;
  f.mm.run_periodic(f.machine.cost().scan_period);
  // The shootdown dropped the TLB entry: next touch walks again.
  f.touch(0, 1);
  EXPECT_EQ(f.machine.counters(0).dtlb_misses, misses_before + 1);
  EXPECT_TRUE(f.mm.page_table().test_accessed(f.area.unit_of(1), nullptr));
}

TEST(Scanner, ScannerTimeAdvancesOnItsOwnCore) {
  ScannerFixture f(PolicyKind::kLru);
  for (Vpn v = 0; v < 32; ++v) f.touch(0, v);
  const CoreId scanner = f.machine.scanner_core();
  f.mm.run_periodic(f.machine.cost().scan_period);
  EXPECT_GE(f.machine.clock(scanner), f.machine.cost().scan_period);
  // App cores paid interrupt cost but not scan-loop cost.
  EXPECT_GT(f.machine.counters(scanner).cycles_shootdown +
                f.machine.counters(scanner).cycles_lock_wait,
            0u);
}

TEST(Scanner, OverrunSkipsTicksInsteadOfDiverging) {
  // With many referenced pages and a short period, the scan takes longer
  // than the period; the scanner must skip ticks (timers cannot re-enter).
  ScannerFixture f(PolicyKind::kLru, /*capacity=*/64, /*cores=*/4);
  for (CoreId c = 0; c < 4; ++c)
    for (Vpn v = 0; v < 64; ++v) f.touch(c, v);
  const Cycles period = f.machine.cost().scan_period;
  f.mm.run_periodic(100 * period);
  // Scans completed is bounded by wall progress, not by tick count.
  EXPECT_GT(f.mm.scans_completed(), 0u);
  EXPECT_LE(f.mm.scans_completed(), 100u);
}

TEST(Scanner, FeedsPolicyScanEvents) {
  ScannerFixture f(PolicyKind::kLru);
  f.touch(0, 1);
  const Cycles period = f.machine.cost().scan_period;
  // Two referenced scans promote the page (two-touch rule): after that the
  // policy's active list is non-empty.
  f.mm.run_periodic(period);
  f.touch(0, 1);
  f.mm.run_periodic(2 * period);
  f.touch(0, 1);
  f.mm.run_periodic(3 * period);
  EXPECT_GE(testing::stat_of(f.mm.policy(), "promotions"), 1u);
}

}  // namespace
}  // namespace cmcp::core
