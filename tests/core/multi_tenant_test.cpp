// Multi-tenant runner semantics: a 1-tenant run through run_multi_tenant is
// the same simulation as core::Simulation; tenants with disjoint barriers
// finish independently; partition floors actually protect a tenant under a
// noisy neighbor; frame ownership accounting survives the full engine.
#include "core/multi_tenant.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "workloads/access_stream.h"

namespace cmcp::core {
namespace {

class ScriptedWorkload final : public wl::Workload {
 public:
  ScriptedWorkload(CoreId cores, std::uint64_t pages,
                   std::vector<std::vector<wl::Op>> scripts)
      : cores_(cores), pages_(pages) {
    for (auto& ops : scripts)
      scripts_.push_back(
          std::make_shared<const std::vector<wl::Op>>(std::move(ops)));
  }

  std::string_view name() const override { return "scripted"; }
  CoreId num_cores() const override { return cores_; }
  std::uint64_t footprint_base_pages() const override { return pages_; }
  std::unique_ptr<wl::AccessStream> make_stream(CoreId core) const override {
    return std::make_unique<wl::VectorStream>(scripts_[core]);
  }

 private:
  CoreId cores_;
  std::uint64_t pages_;
  std::vector<std::shared_ptr<const std::vector<wl::Op>>> scripts_;
};

std::vector<wl::Op> thrash_script(std::uint64_t pages) {
  return {wl::Op::access(0, true, static_cast<std::uint32_t>(pages)),
          wl::Op::barrier(),
          wl::Op::access(0, false, static_cast<std::uint32_t>(pages))};
}

bool counters_equal(const metrics::CoreCounters& a,
                    const metrics::CoreCounters& b) {
  return a.accesses == b.accesses && a.major_faults == b.major_faults &&
         a.minor_faults == b.minor_faults && a.evictions == b.evictions &&
         a.shootdowns_initiated == b.shootdowns_initiated &&
         a.remote_invalidations_received == b.remote_invalidations_received &&
         a.pcie_bytes_in == b.pcie_bytes_in &&
         a.pcie_bytes_out == b.pcie_bytes_out &&
         a.cycles_fault == b.cycles_fault &&
         a.cycles_barrier == b.cycles_barrier;
}

TEST(MultiTenant, SingleTenantMatchesSimulation) {
  // The multi-tenant engine with one tenant must BE the single-tenant
  // engine: same machine layout (scanner pseudo-core included), same
  // virtual-time interleaving, same counters, same makespan.
  const auto make = [] {
    return ScriptedWorkload(2, 24, {thrash_script(24), thrash_script(24)});
  };

  SimulationConfig sconfig;
  sconfig.machine.num_cores = 2;
  sconfig.policy.kind = PolicyKind::kCmcp;
  sconfig.memory_fraction = 0.5;
  const ScriptedWorkload solo = make();
  Simulation sim(sconfig, solo);
  const SimulationResult expected = sim.run();

  wl::MultiTenantSpec spec;
  spec.add(std::make_unique<ScriptedWorkload>(make()));
  MultiTenantConfig mconfig;
  mconfig.memory_fraction = 0.5;
  std::vector<TenantRunConfig> tenants(1);
  tenants[0].policy.kind = PolicyKind::kCmcp;
  const MultiTenantResult actual = run_multi_tenant(mconfig, spec, tenants);

  ASSERT_EQ(actual.tenants.size(), 1u);
  EXPECT_EQ(actual.makespan, expected.makespan);
  EXPECT_TRUE(counters_equal(actual.tenants[0].total, expected.app_total));
  EXPECT_EQ(actual.tenants[0].scans, expected.scans);
  EXPECT_EQ(actual.shared_capacity_units, expected.capacity_units);
}

TEST(MultiTenant, TenantsFinishIndependently) {
  // Tenant 0 is short, tenant 1 long, both with internal barriers. If the
  // barrier groups leaked across tenants the short one would deadlock
  // waiting for cores that never reach "its" barrier.
  wl::MultiTenantSpec spec;
  spec.add(std::make_unique<ScriptedWorkload>(
      2, 8, std::vector<std::vector<wl::Op>>{thrash_script(8),
                                             thrash_script(8)}));
  spec.add(std::make_unique<ScriptedWorkload>(
      2, 64, std::vector<std::vector<wl::Op>>{thrash_script(64),
                                              thrash_script(64)}));
  MultiTenantConfig config;
  config.memory_fraction = 1.0;
  std::vector<TenantRunConfig> tenants(2);
  const MultiTenantResult result = run_multi_tenant(config, spec, tenants);
  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_GT(result.tenants[0].makespan, 0u);
  EXPECT_LT(result.tenants[0].makespan, result.tenants[1].makespan);
  EXPECT_EQ(result.makespan, result.tenants[1].makespan);
}

TEST(MultiTenant, StaticReserveProtectsQuietTenant) {
  // A small quiet tenant with a floor covering its whole footprint vs a
  // thrashing hog: the quiet tenant's pages can never be stolen, so after
  // its first pass it faults no more — its major faults equal exactly its
  // footprint (cold misses), regardless of the hog.
  constexpr std::uint64_t kQuietPages = 8;
  constexpr std::uint64_t kHogPages = 96;
  wl::MultiTenantSpec spec;
  spec.add(std::make_unique<ScriptedWorkload>(
      1, kQuietPages,
      std::vector<std::vector<wl::Op>>{
          {wl::Op::access(0, false, kQuietPages),
           wl::Op::access(0, false, kQuietPages),
           wl::Op::access(0, false, kQuietPages)}}));
  spec.add(std::make_unique<ScriptedWorkload>(
      1, kHogPages,
      std::vector<std::vector<wl::Op>>{
          {wl::Op::access(0, true, kHogPages),
           wl::Op::access(0, true, kHogPages)}}));

  MultiTenantConfig config;
  config.partition = mm::PartitionKind::kStaticReserve;
  config.capacity_units_override = 32;  // hog alone overflows this
  std::vector<TenantRunConfig> tenants(2);
  tenants[0].policy.kind = PolicyKind::kFifo;
  tenants[1].policy.kind = PolicyKind::kFifo;
  tenants[0].share.reserve_units = kQuietPages;
  const MultiTenantResult result = run_multi_tenant(config, spec, tenants);

  EXPECT_EQ(result.tenants[0].total.major_faults, kQuietPages);
  // The hog thrashes: more major faults than its footprint.
  EXPECT_GT(result.tenants[1].total.major_faults, kHogPages);
  // And the quiet tenant still holds its full floor at the end.
  EXPECT_EQ(result.tenants[0].resident_units_end, kQuietPages);
}

TEST(MultiTenant, ProportionalShareEvictsNoisyNeighbor) {
  // Equal weights, one tenant twice the footprint: under contention the
  // small tenant must keep at least its target's worth of progress — the
  // noisy neighbor is the preferred victim once it exceeds its target.
  wl::MultiTenantSpec spec;
  spec.add(std::make_unique<ScriptedWorkload>(
      1, 16,
      std::vector<std::vector<wl::Op>>{{wl::Op::access(0, false, 16),
                                        wl::Op::access(0, false, 16)}}));
  spec.add(std::make_unique<ScriptedWorkload>(
      1, 64,
      std::vector<std::vector<wl::Op>>{{wl::Op::access(0, true, 64),
                                        wl::Op::access(0, true, 64)}}));
  MultiTenantConfig config;
  config.partition = mm::PartitionKind::kProportionalShare;
  config.capacity_units_override = 32;  // targets: 16/16
  std::vector<TenantRunConfig> tenants(2);
  tenants[0].policy.kind = PolicyKind::kFifo;
  tenants[1].policy.kind = PolicyKind::kFifo;
  const MultiTenantResult result = run_multi_tenant(config, spec, tenants);

  // The small tenant fits inside its target: only cold misses.
  EXPECT_EQ(result.tenants[0].total.major_faults, 16u);
  EXPECT_GT(result.tenants[1].total.major_faults, 64u);
  // Frame accounting cross-foot at end of run.
  EXPECT_LE(result.tenants[0].resident_units_end +
                result.tenants[1].resident_units_end,
            result.shared_capacity_units);
}

}  // namespace
}  // namespace cmcp::core
