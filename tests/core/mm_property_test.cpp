// Whole-manager property test: random access traces against a reference
// model, across page-table kinds, policies and page sizes. Checks the
// bookkeeping invariants every experiment depends on:
//   * residency never exceeds capacity; frames in use == resident units
//   * a page-table mapping exists only for resident units
//   * PSPT core-map counts equal the set of cores that touched the unit
//     since it last became resident
//   * every major fault moves exactly one unit of data device-ward
//   * counters are internally consistent (evictions vs faults vs capacity)
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "core/memory_manager.h"

namespace cmcp::core {
namespace {

struct Params {
  PageTableKind pt;
  PolicyKind policy;
  PageSizeClass size;
  std::uint64_t seed;
};

class MmPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(MmPropertyTest, BookkeepingInvariantsUnderRandomTrace) {
  const Params& p = GetParam();
  constexpr CoreId kCores = 6;
  const std::uint64_t base_pages = 64 * base_pages_per_unit(p.size);
  const std::uint64_t capacity = 24;  // of 64 units

  sim::MachineConfig mc;
  mc.num_cores = kCores;
  mc.page_size = p.size;
  sim::Machine machine(mc);
  mm::ComputationArea area(0, base_pages, p.size);
  MemoryManagerConfig config;
  config.pt_kind = p.pt;
  config.policy.kind = p.policy;
  config.capacity_units = capacity;
  MemoryManager mm(machine, area, config);

  // Reference: which units are resident, and who mapped them since load.
  std::map<UnitIdx, std::set<CoreId>> resident;
  Rng rng(p.seed);
  Cycles watermark = 0;

  for (int step = 0; step < 6000; ++step) {
    const CoreId core = static_cast<CoreId>(rng.next_below(kCores));
    const Vpn vpn = rng.next_below(base_pages);
    const UnitIdx unit = area.unit_of(vpn);
    const bool write = (rng.next() & 1) != 0;

    const bool was_resident = resident.contains(unit);
    const auto faults_before = machine.counters(core).major_faults;
    const auto bytes_before = machine.counters(core).pcie_bytes_in;

    const Cycles now = machine.clock(core);
    machine.advance(core, mm.access(core, vpn, write, now));
    watermark = std::max(watermark, machine.clock(core));
    mm.run_periodic(watermark);

    // Fault/data-movement consistency for this access.
    const auto faults_after = machine.counters(core).major_faults;
    if (!was_resident) {
      ASSERT_EQ(faults_after, faults_before + 1);
      ASSERT_EQ(machine.counters(core).pcie_bytes_in,
                bytes_before + unit_bytes(p.size));
    } else {
      ASSERT_EQ(faults_after, faults_before);
    }

    // Update the reference model: the touched unit is now resident and
    // mapped by this core; any unit evicted by the manager disappears.
    std::set<UnitIdx> still_resident;
    mm.registry();  // (const access below)
    for (auto it = resident.begin(); it != resident.end();) {
      if (mm.registry().find(it->first) == nullptr)
        it = resident.erase(it);  // evicted
      else
        ++it;
    }
    resident[unit].insert(core);
    // Eviction wipes mapping history; if our unit was just (re)loaded the
    // only mapper is `core`.
    if (!was_resident) resident[unit] = {core};

    // --- invariants -------------------------------------------------------
    ASSERT_LE(mm.registry().size(), capacity);
    ASSERT_EQ(mm.registry().size(), resident.size());

    for (const auto& [u, cores] : resident) {
      const mm::ResidentPage* page = mm.registry().find(u);
      ASSERT_NE(page, nullptr);
      ASSERT_TRUE(mm.page_table().any_mapping(u));
      if (p.pt == PageTableKind::kPspt) {
        // Exact core-map count == cores that touched since residency.
        ASSERT_EQ(mm.page_table().core_map_count(u), cores.size())
            << "unit " << u << " at step " << step;
        for (CoreId c = 0; c < kCores; ++c)
          ASSERT_EQ(mm.page_table().has_mapping(c, u), cores.contains(c));
      }
    }
    (void)still_resident;
  }

  // Global counter consistency: evictions == majors - resident-at-end.
  metrics::CoreCounters total = machine.aggregate_app_counters();
  ASSERT_EQ(total.evictions, total.major_faults - mm.registry().size());
  // Every writeback corresponds to a dirty eviction; bytes match counts.
  ASSERT_EQ(total.pcie_bytes_out, total.writebacks * unit_bytes(p.size));
  ASSERT_EQ(total.pcie_bytes_in, total.major_faults * unit_bytes(p.size));
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  std::string name = std::string(to_string(info.param.pt)) + "_" +
                     std::string(to_string(info.param.policy)) + "_" +
                     std::string(to_string(info.param.size)) + "_s" +
                     std::to_string(info.param.seed);
  for (char& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MmPropertyTest,
    ::testing::Values(
        Params{PageTableKind::kPspt, PolicyKind::kFifo, PageSizeClass::k4K, 1},
        Params{PageTableKind::kPspt, PolicyKind::kLru, PageSizeClass::k4K, 2},
        Params{PageTableKind::kPspt, PolicyKind::kCmcp, PageSizeClass::k4K, 3},
        Params{PageTableKind::kPspt, PolicyKind::kClock, PageSizeClass::k4K, 4},
        Params{PageTableKind::kPspt, PolicyKind::kLfu, PageSizeClass::k4K, 5},
        Params{PageTableKind::kPspt, PolicyKind::kRandom, PageSizeClass::k4K, 6},
        Params{PageTableKind::kPspt, PolicyKind::kCmcpDynamicP,
               PageSizeClass::k4K, 7},
        Params{PageTableKind::kRegular, PolicyKind::kFifo, PageSizeClass::k4K, 8},
        Params{PageTableKind::kRegular, PolicyKind::kLru, PageSizeClass::k4K, 9},
        Params{PageTableKind::kPspt, PolicyKind::kCmcp, PageSizeClass::k64K, 10},
        Params{PageTableKind::kPspt, PolicyKind::kFifo, PageSizeClass::k64K, 11},
        Params{PageTableKind::kPspt, PolicyKind::kCmcp, PageSizeClass::k2M, 12},
        Params{PageTableKind::kRegular, PolicyKind::kCmcp, PageSizeClass::k4K, 13},
        Params{PageTableKind::kPspt, PolicyKind::kArc, PageSizeClass::k4K, 14}),
    param_name);

}  // namespace
}  // namespace cmcp::core
