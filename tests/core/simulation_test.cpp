// Engine-level tests: barriers, op semantics, result assembly.
#include "core/simulation.h"

#include <gtest/gtest.h>

#include "workloads/synthetic.h"

namespace cmcp::core {
namespace {

/// Minimal scripted workload for engine tests.
class ScriptedWorkload final : public wl::Workload {
 public:
  ScriptedWorkload(CoreId cores, std::uint64_t pages,
                   std::vector<std::vector<wl::Op>> scripts)
      : cores_(cores), pages_(pages) {
    for (auto& ops : scripts)
      scripts_.push_back(std::make_shared<const std::vector<wl::Op>>(std::move(ops)));
  }

  std::string_view name() const override { return "scripted"; }
  CoreId num_cores() const override { return cores_; }
  std::uint64_t footprint_base_pages() const override { return pages_; }
  std::unique_ptr<wl::AccessStream> make_stream(CoreId core) const override {
    return std::make_unique<wl::VectorStream>(scripts_[core]);
  }

 private:
  CoreId cores_;
  std::uint64_t pages_;
  std::vector<std::shared_ptr<const std::vector<wl::Op>>> scripts_;
};

SimulationConfig basic_config(CoreId cores) {
  SimulationConfig config;
  config.machine.num_cores = cores;
  config.memory_fraction = 1.0;
  return config;
}

TEST(Simulation, ComputeOpsAdvanceClock) {
  ScriptedWorkload w(1, 8, {{wl::Op::compute(1000), wl::Op::compute(500)}});
  auto result = run_simulation(basic_config(1), w);
  EXPECT_EQ(result.makespan, 1500u);
  EXPECT_EQ(result.app_total.cycles_compute, 1500u);
  EXPECT_EQ(result.app_total.accesses, 0u);
}

TEST(Simulation, AccessOpTouchesEveryPageInRange) {
  ScriptedWorkload w(1, 16, {{wl::Op::access(0, false, 16)}});
  auto result = run_simulation(basic_config(1), w);
  EXPECT_EQ(result.app_total.accesses, 16u);
  EXPECT_EQ(result.app_total.major_faults, 16u);
}

TEST(Simulation, RepeatReferencesSamePage) {
  ScriptedWorkload w(1, 4, {{wl::Op::access(2, false, 1, 5)}});
  auto result = run_simulation(basic_config(1), w);
  EXPECT_EQ(result.app_total.accesses, 5u);
  EXPECT_EQ(result.app_total.major_faults, 1u);  // 4 TLB hits after the fault
}

TEST(Simulation, PerPageComputeCharged) {
  ScriptedWorkload w(1, 8, {{wl::Op::access(0, false, 4, 1, /*compute=*/100)}});
  auto result = run_simulation(basic_config(1), w);
  EXPECT_EQ(result.app_total.cycles_compute, 400u);
}

TEST(Simulation, StrideSkipsPages) {
  ScriptedWorkload w(1, 32, {{wl::Op::access(0, false, 4, 1, 0, /*stride=*/8)}});
  auto result = run_simulation(basic_config(1), w);
  EXPECT_EQ(result.app_total.major_faults, 4u);  // pages 0, 8, 16, 24
}

TEST(Simulation, BarrierSynchronizesClocks) {
  // Core 0 computes 10k cycles, core 1 computes 100; after the barrier both
  // run one more op. The makespan reflects the straggler.
  ScriptedWorkload w(2, 8,
                     {{wl::Op::compute(10000), wl::Op::barrier(), wl::Op::compute(5)},
                      {wl::Op::compute(100), wl::Op::barrier(), wl::Op::compute(5)}});
  auto result = run_simulation(basic_config(2), w);
  EXPECT_EQ(result.makespan, 10005u);
  // The fast core idled at the barrier.
  EXPECT_EQ(result.per_core[1].cycles_barrier, 9900u);
  EXPECT_EQ(result.per_core[0].cycles_barrier, 0u);
}

TEST(Simulation, ConsecutiveBarriers) {
  std::vector<wl::Op> script = {wl::Op::barrier(), wl::Op::barrier(),
                                wl::Op::compute(10)};
  ScriptedWorkload w(3, 8, {script, script, script});
  auto result = run_simulation(basic_config(3), w);
  EXPECT_EQ(result.makespan, 10u);
}

TEST(Simulation, EndedCoreReleasesBarrier) {
  // Core 1 ends without reaching the barrier; core 0 must not deadlock.
  ScriptedWorkload w(2, 8,
                     {{wl::Op::compute(50), wl::Op::barrier(), wl::Op::compute(5)},
                      {wl::Op::compute(20)}});
  auto result = run_simulation(basic_config(2), w);
  EXPECT_EQ(result.makespan, 55u);
}

TEST(Simulation, CapacityFromMemoryFraction) {
  SimulationConfig config = basic_config(1);
  config.memory_fraction = 0.5;
  ScriptedWorkload w(1, 100, {{wl::Op::access(0, false, 100)}});
  Simulation sim(config, w);
  auto result = sim.run();
  EXPECT_EQ(result.capacity_units, 50u);
  EXPECT_EQ(result.footprint_units, 100u);
  EXPECT_EQ(result.app_total.evictions, 50u);
}

TEST(Simulation, CapacityOverrideWins) {
  SimulationConfig config = basic_config(1);
  config.memory_fraction = 0.5;
  config.capacity_units_override = 7;
  ScriptedWorkload w(1, 100, {{wl::Op::access(0, false, 10)}});
  auto result = run_simulation(config, w);
  EXPECT_EQ(result.capacity_units, 7u);
}

TEST(Simulation, PreloadForcesFullCapacity) {
  SimulationConfig config = basic_config(2);
  config.preload = true;
  config.memory_fraction = 0.1;  // overridden by preload
  ScriptedWorkload w(2, 64,
                     {{wl::Op::access(0, false, 64)}, {wl::Op::access(0, false, 64)}});
  auto result = run_simulation(config, w);
  EXPECT_EQ(result.capacity_units, 64u);
  EXPECT_EQ(result.app_total.major_faults, 0u);
  EXPECT_EQ(result.app_total.pcie_bytes_in, 0u);
}

TEST(Simulation, ResultAveragesMatchTotals) {
  ScriptedWorkload w(2, 16,
                     {{wl::Op::access(0, false, 8)}, {wl::Op::access(8, false, 8)}});
  auto result = run_simulation(basic_config(2), w);
  EXPECT_DOUBLE_EQ(result.avg_major_faults_per_core(),
                   static_cast<double>(result.app_total.major_faults) / 2.0);
  EXPECT_DOUBLE_EQ(result.avg_dtlb_misses_per_core(),
                   static_cast<double>(result.app_total.dtlb_misses) / 2.0);
}

TEST(SimulationDeath, RunIsSingleUse) {
  ScriptedWorkload w(1, 8, {{wl::Op::compute(1)}});
  Simulation sim(basic_config(1), w);
  sim.run();
  EXPECT_DEATH(sim.run(), "single-use");
}

TEST(Simulation, UniformWorkloadRunsEndToEnd) {
  wl::UniformParams params;
  params.base.cores = 4;
  params.pages = 256;
  params.touches_per_core = 2000;
  wl::UniformWorkload w(params);
  SimulationConfig config = basic_config(4);
  config.memory_fraction = 0.5;
  auto result = run_simulation(config, w);
  EXPECT_EQ(result.app_total.accesses, 4u * 2000);
  EXPECT_GT(result.app_total.major_faults, 0u);
  EXPECT_GT(result.makespan, 0u);
}

}  // namespace
}  // namespace cmcp::core
