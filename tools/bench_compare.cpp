// CLI gate over metrics::bench_compare: diff two wall-clock bench documents
// (bench/wallclock --json output) and exit non-zero when the current one
// regressed past the tolerance, dropped a row, or missed a required speedup.
//
//   bench_compare BASELINE.json CURRENT.json [--tolerance 0.25]
//                 [--metric refs_per_sec|ns_per_ref] [--require-speedup 1.5]
//                 [--rows SUBSTR]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "metrics/bench_compare.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--tolerance F] "
               "[--metric refs_per_sec|ns_per_ref] [--require-speedup F] "
               "[--rows SUBSTR]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string paths[2];
  int npaths = 0;
  cmcp::metrics::CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      options.tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc) {
      options.metric = argv[++i];
      if (options.metric != "refs_per_sec" && options.metric != "ns_per_ref")
        return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--require-speedup") == 0 && i + 1 < argc) {
      options.require_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      options.rows = argv[++i];
    } else if (argv[i][0] != '-' && npaths < 2) {
      paths[npaths++] = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (npaths != 2) return usage(argv[0]);

  const auto baseline = cmcp::metrics::load_bench_file(paths[0]);
  if (!baseline.ok) {
    std::fprintf(stderr, "bench_compare: cannot load baseline %s\n",
                 paths[0].c_str());
    return 2;
  }
  const auto current = cmcp::metrics::load_bench_file(paths[1]);
  if (!current.ok) {
    std::fprintf(stderr, "bench_compare: cannot load current %s\n",
                 paths[1].c_str());
    return 2;
  }

  const auto result = cmcp::metrics::compare_bench(baseline, current, options);
  cmcp::metrics::print_comparison(result, options, std::cout);
  return result.ok() ? 0 : 1;
}
