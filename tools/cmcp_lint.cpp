// cmcp_lint — the repo's domain linter (see src/lint/lint.h for the rule
// catalog and rationale). Replaces the old CI grep gates with real token-
// level analysis that understands comments, strings and template arguments.
//
// Usage:
//   cmcp_lint [-p <build-dir>] [--root <repo-root>] [--list-rules] [files...]
//
//   -p <build-dir>   also lint every file listed in
//                    <build-dir>/compile_commands.json that lives under the
//                    repo root (headers are picked up by the tree walk).
//   --root <dir>     repo root used for path-scoped rules (default: cwd).
//   --list-rules     print the rule catalog and exit.
//   files...         lint exactly these files instead of walking the tree.
//
// With no explicit file list, walks src/, tools/ and bench/ under the root.
// Exit codes follow the bench_compare convention: 0 = clean, 1 = findings,
// 2 = usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".hh" || ext == ".cpp" ||
         ext == ".cc" || ext == ".cxx" || ext == ".inl";
}

/// Minimal extraction of "file" values from compile_commands.json — enough
/// for CMake's output, with \\ and \" escapes unescaped.
std::vector<std::string> compile_db_files(const fs::path& db_path,
                                          bool& ok) {
  std::ifstream in(db_path);
  ok = static_cast<bool>(in);
  std::vector<std::string> files;
  if (!ok) return files;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == ':')) ++pos;
    if (pos >= text.size() || text[pos] != '"') continue;
    ++pos;
    std::string value;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      value.push_back(text[pos++]);
    }
    files.push_back(std::move(value));
  }
  return files;
}

/// Path of `p` relative to `root` with forward slashes, or empty if `p` is
/// not under `root`.
std::string relative_to_root(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(fs::weakly_canonical(p, ec), root, ec);
  if (ec || rel.empty()) return {};
  std::string s = rel.generic_string();
  if (s == "." || s.compare(0, 2, "..") == 0) return {};
  return s;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [-p <build-dir>] [--root <dir>] [--list-rules] [files...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path build_dir;
  std::vector<std::string> explicit_files;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-p") {
      if (++i >= argc) return usage(argv[0]);
      build_dir = argv[i];
    } else if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      explicit_files.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : cmcp::lint::rule_catalog())
      std::cout << rule.id << ": " << rule.summary << "\n";
    return 0;
  }

  std::error_code ec;
  root = fs::weakly_canonical(root, ec);
  if (ec || !fs::is_directory(root)) {
    std::cerr << "cmcp_lint: root is not a directory: " << root << "\n";
    return 2;
  }

  // Assemble the work list: (repo-relative path, absolute path).
  std::vector<std::pair<std::string, fs::path>> work;
  auto add = [&](const fs::path& abs) {
    std::string rel = relative_to_root(abs, root);
    if (!rel.empty()) work.emplace_back(std::move(rel), abs);
  };

  if (!explicit_files.empty()) {
    for (const std::string& f : explicit_files) {
      const fs::path abs = fs::absolute(f, ec);
      std::string rel = relative_to_root(abs, root);
      if (rel.empty()) {
        std::cerr << "cmcp_lint: " << f << " is outside root " << root << "\n";
        return 2;
      }
      work.emplace_back(std::move(rel), abs);
    }
  } else {
    for (const char* top : {"src", "tools", "bench"}) {
      const fs::path dir = root / top;
      if (!fs::is_directory(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (entry.is_regular_file() && has_source_extension(entry.path()))
          add(entry.path());
      }
    }
    if (!build_dir.empty()) {
      bool ok = false;
      for (const std::string& f :
           compile_db_files(build_dir / "compile_commands.json", ok)) {
        const fs::path p(f);
        if (has_source_extension(p)) add(p);
      }
      if (!ok) {
        std::cerr << "cmcp_lint: cannot read " << build_dir
                  << "/compile_commands.json (configure with "
                     "CMAKE_EXPORT_COMPILE_COMMANDS=ON)\n";
        return 2;
      }
    }
  }

  // Deterministic order, one visit per file.
  std::sort(work.begin(), work.end());
  work.erase(std::unique(work.begin(), work.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }),
             work.end());

  std::vector<cmcp::lint::Finding> findings;
  for (const auto& [rel, abs] : work) {
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      std::cerr << "cmcp_lint: cannot read " << abs << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    auto file_findings = cmcp::lint::lint_source(rel, content);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  cmcp::lint::sort_findings(findings);

  for (const auto& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "cmcp_lint: " << findings.size() << " finding(s) across "
            << work.size() << " file(s)\n";
  return findings.empty() ? 0 : 1;
}
