// trace_lint — offline protocol linter for JSONL event traces.
//
// Usage: trace_lint <trace.jsonl> [more traces...]
//        trace_lint -          (read one trace from stdin)
//
// Exit status: 0 all traces clean, 1 violations found, 2 usage / IO error.
// Diagnostics print as "path:line: [rule] message" so editors and CI
// annotations can jump to the offending line.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "check/trace_lint.h"

namespace {

void print_issues(const std::string& path,
                  const cmcp::check::LintResult& result) {
  for (const cmcp::check::LintIssue& issue : result.issues)
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", path.c_str(), issue.line,
                 issue.rule.c_str(), issue.message.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.jsonl>... | -\n", argv[0]);
    return 2;
  }

  bool violations = false;
  bool io_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    const cmcp::check::LintResult result =
        path == "-" ? cmcp::check::lint_jsonl_trace(std::cin)
                    : cmcp::check::lint_trace_file(path);
    if (result.ok()) {
      std::fprintf(stderr, "%s: OK (%llu events)\n", path.c_str(),
                   static_cast<unsigned long long>(result.events));
      continue;
    }
    print_issues(path, result);
    for (const cmcp::check::LintIssue& issue : result.issues)
      if (issue.rule == "io-error") io_error = true;
    violations = true;
  }
  if (io_error) return 2;
  return violations ? 1 : 0;
}
