// cmcp_sim — command-line front end for single simulation runs.
//
//   cmcp_sim --workload bt --cores 56 --policy cmcp --p 0.9
//            --fraction 0.64 --page-size 4k [--pt pspt] [--seed 42]
//            [--size small|big] [--prefetch N] [--hw-tlb] [--preload]
//            [--csv out.csv] [--json out.json] [--trace out.trace.json]
//
// Prints the run's headline observables; with --csv appends one row (with
// header when creating the file) for scripting sweeps; with --json writes a
// schema-versioned result document; with --trace records a structured event
// trace (Perfetto by default, see docs/observability.md).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "cmcp.h"
#include "metrics/resilience_report.h"

namespace {

using namespace cmcp;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --workload bt|lu|cg|scale   (default bt)\n"
      "  --size small|big            footprint class (default small)\n"
      "  --cores N                   simulated cores (default 56)\n"
      "  --threads N                 host worker threads (default 1 = serial;\n"
      "                              0 = hardware concurrency); results and\n"
      "                              traces are identical at any value\n"
      "  --policy fifo|lru|cmcp|clock|lfu|random|cmcp-dyn|arc (default cmcp)\n"
      "  --p X                       CMCP prioritized ratio (default per workload)\n"
      "  --pt pspt|regular           page tables (default pspt)\n"
      "  --fraction X                memory provided / footprint (default paper)\n"
      "  --page-size 4k|64k|2m       (default 4k)\n"
      "  --prefetch N                sequential readahead degree (default 0)\n"
      "  --scan-ms X                 LRU scan period in ms (default 10)\n"
      "  --hw-tlb                    hypothetical TLB directory hardware\n"
      "  --preload                   no-data-movement baseline\n"
      "  --seed N                    workload seed (default 1234)\n"
      "  --faults SPEC               deterministic fault injection, e.g.\n"
      "                              seed=7,pcie=0.01,poison=2 (docs/robustness.md)\n"
      "  --csv FILE                  append results as CSV\n"
      "  --json FILE                 write results as schema-versioned JSON\n"
      "  --trace FILE                record a structured event trace\n"
      "  --trace-format perfetto|jsonl  trace export format (default perfetto)\n"
      "  --dump-trace FILE           write the workload's access trace\n"
      "  --replay-trace FILE         run a recorded trace instead\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmcp;

  wl::PaperWorkload workload_kind = wl::PaperWorkload::kBt;
  wl::WorkloadSize size = wl::WorkloadSize::kSmall;
  core::SimulationConfig config;
  config.machine.num_cores = 56;
  config.policy.kind = PolicyKind::kCmcp;
  double fraction = -1.0;
  double p = -1.0;
  std::uint64_t seed = 1234;
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  std::optional<std::string> trace_path;
  sim::trace::Format trace_format = sim::trace::Format::kPerfetto;
  std::optional<std::string> dump_trace;
  std::optional<std::string> replay_trace;

  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--workload") {
      const std::string_view v = need_value(i);
      bool found = false;
      for (const auto candidate : wl::kAllPaperWorkloads)
        if (to_string(candidate) == v) {
          workload_kind = candidate;
          found = true;
        }
      if (!found) usage(argv[0]);
    } else if (arg == "--size") {
      const std::string_view v = need_value(i);
      if (v == "small")
        size = wl::WorkloadSize::kSmall;
      else if (v == "big")
        size = wl::WorkloadSize::kBig;
      else
        usage(argv[0]);
    } else if (arg == "--cores") {
      config.machine.num_cores = static_cast<CoreId>(std::atoi(need_value(i)));
    } else if (arg == "--threads") {
      // Execution knob only: deliberately kept out of the exported metadata
      // so traces stay byte-identical across thread counts.
      config.threads = static_cast<unsigned>(std::atoi(need_value(i)));
    } else if (arg == "--policy") {
      const std::string_view v = need_value(i);
      if (v == "fifo") config.policy.kind = PolicyKind::kFifo;
      else if (v == "lru") config.policy.kind = PolicyKind::kLru;
      else if (v == "cmcp") config.policy.kind = PolicyKind::kCmcp;
      else if (v == "clock") config.policy.kind = PolicyKind::kClock;
      else if (v == "lfu") config.policy.kind = PolicyKind::kLfu;
      else if (v == "random") config.policy.kind = PolicyKind::kRandom;
      else if (v == "cmcp-dyn") config.policy.kind = PolicyKind::kCmcpDynamicP;
      else if (v == "arc") config.policy.kind = PolicyKind::kArc;
      else usage(argv[0]);
    } else if (arg == "--p") {
      p = std::atof(need_value(i));
    } else if (arg == "--pt") {
      const std::string_view v = need_value(i);
      if (v == "pspt") config.pt_kind = PageTableKind::kPspt;
      else if (v == "regular") config.pt_kind = PageTableKind::kRegular;
      else usage(argv[0]);
    } else if (arg == "--fraction") {
      fraction = std::atof(need_value(i));
    } else if (arg == "--page-size") {
      const std::string_view v = need_value(i);
      if (v == "4k") config.machine.page_size = PageSizeClass::k4K;
      else if (v == "64k") config.machine.page_size = PageSizeClass::k64K;
      else if (v == "2m") config.machine.page_size = PageSizeClass::k2M;
      else usage(argv[0]);
    } else if (arg == "--prefetch") {
      config.prefetch_degree = static_cast<unsigned>(std::atoi(need_value(i)));
    } else if (arg == "--scan-ms") {
      config.machine.cost.scan_period = static_cast<Cycles>(
          std::atof(need_value(i)) * 1e6 * config.machine.cost.clock_ghz);
    } else if (arg == "--hw-tlb") {
      config.machine.tlb_coherence = sim::TlbCoherence::kHardwareDirectory;
    } else if (arg == "--preload") {
      config.preload = true;
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (arg == "--faults") {
      if (!sim::FaultPlanConfig::parse(need_value(i), &config.faults)) {
        std::fprintf(stderr, "malformed --faults spec\n");
        usage(argv[0]);
      }
    } else if (arg == "--csv") {
      csv_path = need_value(i);
    } else if (arg == "--json") {
      json_path = need_value(i);
    } else if (arg == "--trace") {
      trace_path = need_value(i);
    } else if (arg == "--trace-format") {
      if (!sim::trace::parse_format(need_value(i), &trace_format))
        usage(argv[0]);
    } else if (arg == "--dump-trace") {
      dump_trace = need_value(i);
    } else if (arg == "--replay-trace") {
      replay_trace = need_value(i);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage(argv[0]);
    }
  }

  config.memory_fraction =
      fraction > 0 ? fraction : wl::paper_memory_fraction(workload_kind);
  config.policy.cmcp.p = p >= 0 ? p : wl::paper_best_p(workload_kind);
  config.policy.dynamic_p.cmcp.p = config.policy.cmcp.p;

  std::unique_ptr<wl::Workload> workload;
  if (replay_trace) {
    workload = wl::TraceWorkload::load(*replay_trace);
    config.machine.num_cores = workload->num_cores();
  } else {
    wl::WorkloadParams params;
    params.cores = config.machine.num_cores;
    params.seed = seed;
    workload = wl::make_paper_workload(workload_kind, params, size);
  }
  if (dump_trace) {
    wl::save_trace(*workload, *dump_trace);
    std::printf("trace           : written to %s\n", dump_trace->c_str());
  }
  sim::trace::EventSink sink;
  if (trace_path) config.trace = &sink;
  const auto result = core::run_simulation(config, *workload);

  // Serialized run description shared by the trace and JSON exports: mirror
  // this invocation into a RunSpec so describe() covers every field, then
  // append the CLI-only knobs.
  metrics::RunSpec spec;
  spec.workload = workload_kind;
  spec.size = size;
  spec.cores = config.machine.num_cores;
  spec.pt_kind = config.pt_kind;
  spec.policy = config.policy;
  spec.memory_fraction = config.memory_fraction;
  spec.preload = config.preload;
  spec.page_size = config.machine.page_size;
  spec.seed = seed;
  spec.faults = config.faults;
  sim::trace::Metadata meta = spec.describe();
  meta.emplace_back("prefetch_degree", std::to_string(config.prefetch_degree));
  meta.emplace_back("scan_period",
                    std::to_string(config.machine.cost.scan_period));
  meta.emplace_back("tlb_coherence",
                    config.machine.tlb_coherence ==
                            sim::TlbCoherence::kHardwareDirectory
                        ? "hw_directory"
                        : "shootdown");
  if (replay_trace) meta.emplace_back("replay_trace", *replay_trace);

  const double seconds =
      metrics::cycles_to_seconds(result.makespan, config.machine.cost);
  std::printf("workload        : %s.%s, %u cores, seed %llu\n",
              std::string(to_string(workload_kind)).c_str(),
              std::string(size_suffix(size)).c_str(), config.machine.num_cores,
              static_cast<unsigned long long>(seed));
  std::printf("config          : %s + %s, %s pages, %.0f%% memory%s%s\n",
              std::string(to_string(config.pt_kind)).c_str(),
              std::string(to_string(config.policy.kind)).c_str(),
              std::string(to_string(config.machine.page_size)).c_str(),
              100.0 * config.memory_fraction,
              config.preload ? ", preloaded" : "",
              config.machine.tlb_coherence == sim::TlbCoherence::kHardwareDirectory
                  ? ", hw TLB directory"
                  : "");
  std::printf("runtime         : %llu cycles (%.3f s at %.3f GHz)\n",
              static_cast<unsigned long long>(result.makespan), seconds,
              config.machine.cost.clock_ghz);
  std::printf("major faults    : %llu (%.0f per core)\n",
              static_cast<unsigned long long>(result.app_total.major_faults),
              result.avg_major_faults_per_core());
  std::printf("minor faults    : %llu\n",
              static_cast<unsigned long long>(result.app_total.minor_faults));
  std::printf("remote invals   : %llu (%.0f per core)\n",
              static_cast<unsigned long long>(
                  result.app_total.remote_invalidations_received),
              result.avg_remote_invalidations_per_core());
  std::printf("dTLB misses     : %llu\n",
              static_cast<unsigned long long>(result.app_total.dtlb_misses));
  std::printf("PCIe moved      : %.2f GB in, %.2f GB out\n",
              result.app_total.pcie_bytes_in / 1e9,
              result.app_total.pcie_bytes_out / 1e9);
  if (result.app_total.prefetches > 0)
    std::printf("prefetches      : %llu issued, %llu hit\n",
                static_cast<unsigned long long>(result.app_total.prefetches),
                static_cast<unsigned long long>(result.app_total.prefetch_hits));
  if (result.faults_enabled)
    std::printf("%s", metrics::format_resilience_report(
                          result.fault_config, result.fault_stats,
                          result.capacity_units)
                          .c_str());

  if (trace_path) {
    sim::trace::write_trace_file(sink, meta, metrics::result_summary(result),
                                 trace_format, *trace_path);
    std::printf("trace           : %zu events written to %s (%s)\n",
                sink.size(), trace_path->c_str(),
                std::string(to_string(trace_format)).c_str());
  }

  if (csv_path || json_path) {
    metrics::ResultWriter writer;
    for (const auto& [key, value] : meta) writer.meta(key, value);
    auto& row = writer.add_row();
    // Column names predate ResultWriter; keep them so old files still append.
    row.set("workload", to_string(workload_kind))
        .set("size", size_suffix(size))
        .set("cores", config.machine.num_cores)
        .set("pt", to_string(config.pt_kind))
        .set("policy", to_string(config.policy.kind))
        .set("p", config.policy.cmcp.p)
        .set("page_size", to_string(config.machine.page_size))
        .set("fraction", config.memory_fraction)
        .set("preload", static_cast<int>(config.preload))
        .set("seed", seed)
        .set("makespan", result.makespan)
        .set("major_faults", result.app_total.major_faults)
        .set("minor_faults", result.app_total.minor_faults)
        .set("remote_invals", result.app_total.remote_invalidations_received)
        .set("dtlb_misses", result.app_total.dtlb_misses)
        .set("pcie_bytes_in", result.app_total.pcie_bytes_in)
        .set("pcie_bytes_out", result.app_total.pcie_bytes_out);
    if (csv_path) {
      writer.append_csv(*csv_path);
      std::printf("csv             : appended to %s\n", csv_path->c_str());
    }
    if (json_path) {
      // The JSON document has room for the full summary (policy stats
      // included) without disturbing the CSV column set.
      for (const auto& [key, value] : metrics::result_summary(result))
        row.set(key, value);
      writer.save_json(*json_path);
      std::printf("json            : written to %s\n", json_path->c_str());
    }
  }
  return 0;
}
